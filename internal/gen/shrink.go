package gen

import (
	"repro/internal/chart"
	"repro/internal/trace"
)

// Clone deep-copies a chart. Guard expressions are immutable and shared.
func Clone(c chart.Chart) chart.Chart {
	switch v := c.(type) {
	case nil:
		return nil
	case *chart.SCESC:
		return cloneSCESC(v)
	case *chart.Seq:
		return &chart.Seq{ChartName: v.ChartName, Children: cloneChildren(v.Children)}
	case *chart.Par:
		return &chart.Par{ChartName: v.ChartName, Children: cloneChildren(v.Children)}
	case *chart.Alt:
		return &chart.Alt{ChartName: v.ChartName, Children: cloneChildren(v.Children)}
	case *chart.Loop:
		return &chart.Loop{ChartName: v.ChartName, Body: Clone(v.Body), Min: v.Min, Max: v.Max}
	case *chart.Implies:
		return &chart.Implies{ChartName: v.ChartName, Trigger: Clone(v.Trigger),
			Consequent: Clone(v.Consequent), MaxDelay: v.MaxDelay}
	case *chart.Async:
		return &chart.Async{ChartName: v.ChartName, Children: cloneChildren(v.Children),
			CrossArrows: append([]chart.Arrow(nil), v.CrossArrows...)}
	default:
		return c
	}
}

func cloneChildren(cs []chart.Chart) []chart.Chart {
	out := make([]chart.Chart, len(cs))
	for i, c := range cs {
		out[i] = Clone(c)
	}
	return out
}

func cloneSCESC(sc *chart.SCESC) *chart.SCESC {
	out := &chart.SCESC{
		ChartName: sc.ChartName,
		Clock:     sc.Clock,
		Instances: append([]string(nil), sc.Instances...),
		Arrows:    append([]chart.Arrow(nil), sc.Arrows...),
	}
	out.Lines = make([]chart.GridLine, len(sc.Lines))
	for i, l := range sc.Lines {
		out.Lines[i] = chart.GridLine{
			Events: append([]chart.EventSpec(nil), l.Events...),
			Cond:   l.Cond,
		}
	}
	return out
}

// maxShrinkSteps bounds the number of accepted reductions; each accepted
// step strictly shrinks the input, so this is a safety net, not a tuning
// knob.
const maxShrinkSteps = 400

// Shrink greedily minimizes a failing (chart, trace) pair: it drops
// trace chunks, composition children, grid lines, markers, arrows and
// bounds as long as `fails` keeps reporting the divergence, and returns
// the smallest reproduction found. Candidates that no longer validate
// (or that admit the empty window) are skipped, so the result is always
// a well-formed replayable pair.
func Shrink(c chart.Chart, tr trace.Trace, fails func(chart.Chart, trace.Trace) bool) (chart.Chart, trace.Trace) {
	for step := 0; step < maxShrinkSteps; step++ {
		if tr2, ok := shrinkTrace(c, tr, fails); ok {
			tr = tr2
			continue
		}
		reduced := false
		for _, cand := range chartCandidates(c) {
			if cand.Validate() != nil || MinTicks(cand) == 0 {
				continue
			}
			if fails(cand, tr) {
				c = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return c, tr
		}
	}
	return c, tr
}

// shrinkTrace removes the largest chunk of ticks that keeps the failure.
func shrinkTrace(c chart.Chart, tr trace.Trace, fails func(chart.Chart, trace.Trace) bool) (trace.Trace, bool) {
	for size := len(tr) / 2; size >= 1; size /= 2 {
		for start := 0; start+size <= len(tr); start += size {
			cand := make(trace.Trace, 0, len(tr)-size)
			cand = append(cand, tr[:start]...)
			cand = append(cand, tr[start+size:]...)
			if len(cand) == 0 {
				continue
			}
			if fails(c, cand) {
				return cand, true
			}
		}
	}
	return nil, false
}

// chartCandidates enumerates one-step reductions of c, each a fresh
// deep-cloned chart. Order matters: structurally larger cuts (hoisting a
// child over the whole composition) come before local ones, so the
// greedy shrinker takes big steps first.
func chartCandidates(c chart.Chart) []chart.Chart {
	var out []chart.Chart
	switch v := c.(type) {
	case *chart.SCESC:
		out = append(out, scescCandidates(v)...)
	case *chart.Seq:
		out = append(out, hoistAndDrop(v.Children, 1, func(cs []chart.Chart) chart.Chart {
			return &chart.Seq{Children: cs}
		})...)
		out = append(out, spliceChildren(v.Children, func(cs []chart.Chart) chart.Chart {
			return &chart.Seq{Children: cs}
		})...)
	case *chart.Par:
		out = append(out, hoistAndDrop(v.Children, 2, func(cs []chart.Chart) chart.Chart {
			return &chart.Par{Children: cs}
		})...)
		out = append(out, spliceChildren(v.Children, func(cs []chart.Chart) chart.Chart {
			return &chart.Par{Children: cs}
		})...)
	case *chart.Alt:
		out = append(out, hoistAndDrop(v.Children, 2, func(cs []chart.Chart) chart.Chart {
			return &chart.Alt{Children: cs}
		})...)
		out = append(out, spliceChildren(v.Children, func(cs []chart.Chart) chart.Chart {
			return &chart.Alt{Children: cs}
		})...)
	case *chart.Loop:
		out = append(out, Clone(v.Body))
		if v.Max == chart.Unbounded {
			hi := v.Min + 1
			if hi < 1 {
				hi = 1
			}
			out = append(out, &chart.Loop{Body: Clone(v.Body), Min: v.Min, Max: hi})
		} else if v.Max > v.Min {
			out = append(out, &chart.Loop{Body: Clone(v.Body), Min: v.Min, Max: v.Max - 1})
		}
		if v.Min > 1 {
			out = append(out, &chart.Loop{Body: Clone(v.Body), Min: v.Min - 1, Max: v.Max})
		}
		for _, bc := range chartCandidates(v.Body) {
			out = append(out, &chart.Loop{Body: bc, Min: v.Min, Max: v.Max})
		}
	case *chart.Implies:
		out = append(out, Clone(v.Trigger), Clone(v.Consequent))
		if v.MaxDelay > 0 {
			out = append(out, &chart.Implies{Trigger: Clone(v.Trigger),
				Consequent: Clone(v.Consequent), MaxDelay: v.MaxDelay - 1})
		}
		for _, tc := range chartCandidates(v.Trigger) {
			out = append(out, &chart.Implies{Trigger: tc, Consequent: Clone(v.Consequent), MaxDelay: v.MaxDelay})
		}
		for _, cc := range chartCandidates(v.Consequent) {
			out = append(out, &chart.Implies{Trigger: Clone(v.Trigger), Consequent: cc, MaxDelay: v.MaxDelay})
		}
	case *chart.Async:
		for i := range v.Children {
			if len(v.Children) > 2 {
				cs := cloneChildren(v.Children)
				cand := &chart.Async{Children: append(cs[:i:i], cs[i+1:]...)}
				cand.CrossArrows = pruneCrossArrows(cand, v.CrossArrows)
				out = append(out, cand)
			}
		}
		if len(v.CrossArrows) > 0 {
			for i := range v.CrossArrows {
				cand := Clone(v).(*chart.Async)
				cand.CrossArrows = append(cand.CrossArrows[:i:i], cand.CrossArrows[i+1:]...)
				out = append(out, cand)
			}
		}
		for i := range v.Children {
			for _, cc := range chartCandidates(v.Children[i]) {
				cand := Clone(v).(*chart.Async)
				cand.Children[i] = cc
				cand.CrossArrows = pruneCrossArrows(cand, cand.CrossArrows)
				out = append(out, cand)
			}
		}
	}
	return out
}

// hoistAndDrop yields each child alone, then the composition with one
// child removed (respecting the minimum child count).
func hoistAndDrop(children []chart.Chart, minLeft int, rebuild func([]chart.Chart) chart.Chart) []chart.Chart {
	var out []chart.Chart
	for _, ch := range children {
		out = append(out, Clone(ch))
	}
	if len(children) > minLeft {
		for i := range children {
			cs := cloneChildren(children)
			out = append(out, rebuild(append(cs[:i:i], cs[i+1:]...)))
		}
	}
	return out
}

// spliceChildren substitutes each child's own candidates back into the
// composition.
func spliceChildren(children []chart.Chart, rebuild func([]chart.Chart) chart.Chart) []chart.Chart {
	var out []chart.Chart
	for i := range children {
		for _, cc := range chartCandidates(children[i]) {
			cs := cloneChildren(children)
			cs[i] = cc
			out = append(out, rebuild(cs))
		}
	}
	return out
}

func scescCandidates(sc *chart.SCESC) []chart.Chart {
	var out []chart.Chart
	if len(sc.Lines) > 1 {
		for i := range sc.Lines {
			cand := cloneSCESC(sc)
			cand.Lines = append(cand.Lines[:i:i], cand.Lines[i+1:]...)
			fixupArrows(cand)
			out = append(out, cand)
		}
	}
	for i := range sc.Arrows {
		cand := cloneSCESC(sc)
		cand.Arrows = append(cand.Arrows[:i:i], cand.Arrows[i+1:]...)
		out = append(out, cand)
	}
	for li, line := range sc.Lines {
		for mi := range line.Events {
			cand := cloneSCESC(sc)
			evs := cand.Lines[li].Events
			cand.Lines[li].Events = append(evs[:mi:mi], evs[mi+1:]...)
			fixupArrows(cand)
			out = append(out, cand)
		}
		if line.Cond != nil {
			cand := cloneSCESC(sc)
			cand.Lines[li].Cond = nil
			out = append(out, cand)
		}
	}
	return out
}

// fixupArrows drops arrows whose endpoints vanished or became ambiguous
// or non-forward after a line or marker was removed, and prunes instance
// declarations no marker references anymore.
func fixupArrows(sc *chart.SCESC) {
	labels := sc.Labels()
	var kept []chart.Arrow
	for _, a := range sc.Arrows {
		f, okF := labels[a.From]
		t, okT := labels[a.To]
		if okF && okT && f.Tick < t.Tick {
			kept = append(kept, a)
		}
	}
	sc.Arrows = kept
	used := map[string]bool{}
	for _, line := range sc.Lines {
		for _, e := range line.Events {
			if e.From != "" {
				used[e.From] = true
			}
			if e.To != "" {
				used[e.To] = true
			}
		}
	}
	var insts []string
	for _, in := range sc.Instances {
		if used[in] {
			insts = append(insts, in)
		}
	}
	sc.Instances = insts
}

// pruneCrossArrows keeps only cross arrows whose endpoints still resolve
// to labels in two different children.
func pruneCrossArrows(a *chart.Async, arrows []chart.Arrow) []chart.Arrow {
	var kept []chart.Arrow
	for _, arr := range arrows {
		fi, fok := findChild(a, arr.From)
		ti, tok := findChild(a, arr.To)
		if fok && tok && fi != ti {
			kept = append(kept, arr)
		}
	}
	return kept
}

func findChild(a *chart.Async, label string) (int, bool) {
	for i, ch := range a.Children {
		if _, _, ok := chart.FindLabel(ch, label); ok {
			return i, true
		}
	}
	return 0, false
}
