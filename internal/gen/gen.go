// Package gen is the generative side of the conformance harness: a
// seeded, size-bounded generator of well-formed CESC charts and of
// adversarial tick streams biased toward near-miss prefixes. Charts it
// returns always pass chart.Validate, keep every grid line (and every
// synchronous-overlay conjunction) satisfiable, and never admit the
// empty window — the invariants the synthesis pipeline assumes — so a
// campaign can draw thousands of charts and attribute every divergence
// to the system under test rather than to a malformed input. All
// randomness flows from one injectable rand.Source; reporting a seed is
// enough to reproduce a failure exactly.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/chart"
	"repro/internal/expr"
)

// Config bounds the generator. The zero value is usable: every field
// defaults to a small adversarial setting (few symbols, so generated
// windows collide and overlap often).
type Config struct {
	// Events and Props are the symbol pools for single-clock charts.
	Events []string
	Props  []string
	// Instances is the instance-name pool for event endpoints.
	Instances []string
	// Clock names the clock of single-clock charts.
	Clock string
	// MaxLines caps grid lines per SCESC leaf.
	MaxLines int
	// MaxMarkers caps event markers per grid line.
	MaxMarkers int
	// MaxChildren caps children of seq/alt compositions.
	MaxChildren int
	// MaxDepth caps composition nesting (0 = SCESC leaves only).
	MaxDepth int
	// MaxDelay caps the implies deadline.
	MaxDelay int
	// GuardProb, NegateProb, CondProb, EnvProb, EndpointProb, ArrowProb
	// steer marker decoration.
	GuardProb, NegateProb, CondProb, EnvProb, EndpointProb, ArrowProb float64
}

func (c Config) withDefaults() Config {
	if len(c.Events) == 0 {
		c.Events = []string{"e1", "e2", "e3"}
	}
	if len(c.Props) == 0 {
		c.Props = []string{"p1", "p2"}
	}
	if len(c.Instances) == 0 {
		c.Instances = []string{"mst", "slv"}
	}
	if c.Clock == "" {
		c.Clock = "clk"
	}
	if c.MaxLines <= 0 {
		c.MaxLines = 3
	}
	if c.MaxMarkers <= 0 {
		c.MaxMarkers = 2
	}
	if c.MaxChildren <= 0 {
		c.MaxChildren = 3
	}
	if c.MaxDepth < 0 {
		c.MaxDepth = 0
	} else if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2
	}
	if c.GuardProb == 0 {
		c.GuardProb = 0.4
	}
	if c.NegateProb == 0 {
		c.NegateProb = 0.25
	}
	if c.CondProb == 0 {
		c.CondProb = 0.2
	}
	if c.EnvProb == 0 {
		c.EnvProb = 0.15
	}
	if c.EndpointProb == 0 {
		c.EndpointProb = 0.5
	}
	if c.ArrowProb == 0 {
		c.ArrowProb = 0.5
	}
	return c
}

// Gen draws charts and traces from a Config and a random source.
type Gen struct {
	cfg      Config
	rng      *rand.Rand
	labelSeq int
}

// New returns a generator seeded with seed.
func New(seed int64, cfg Config) *Gen {
	return FromSource(rand.NewSource(seed), cfg)
}

// FromSource returns a generator over an injectable source, so harnesses
// that already own a seeded source (soak tests, cescfuzz) derive chart
// draws from it reproducibly.
func FromSource(src rand.Source, cfg Config) *Gen {
	return &Gen{cfg: cfg.withDefaults(), rng: rand.New(src)}
}

func (g *Gen) prob(p float64) bool { return g.rng.Float64() < p }

func (g *Gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *Gen) freshLabel() string {
	g.labelSeq++
	return fmt.Sprintf("L%d", g.labelSeq)
}

// Chart draws a single-clock chart: an SCESC leaf or a sequential /
// synchronous-parallel / alternative / loop / implication composition.
// The result always passes Validate, has strictly positive minimum
// window width, and keeps every grid line satisfiable.
func (g *Gen) Chart() chart.Chart {
	var c chart.Chart
	if g.prob(0.2) {
		c = g.implies()
	} else {
		c = g.window(g.cfg.MaxDepth)
	}
	forcePositiveWidth(c)
	if err := c.Validate(); err != nil {
		// The construction rules keep this unreachable; failing loudly
		// (with the chart shape) beats silently feeding a malformed chart
		// to a campaign that would misattribute the divergence.
		panic(fmt.Sprintf("gen: produced invalid chart %s: %v", chart.Describe(c), err))
	}
	return c
}

// window draws a chart denoting a window language (no implication), for
// use as a composition child.
func (g *Gen) window(depth int) chart.Chart {
	if depth <= 0 {
		return g.scesc(1+g.rng.Intn(g.cfg.MaxLines), g.prob(g.cfg.ArrowProb))
	}
	switch g.rng.Intn(6) {
	case 0, 1:
		return g.scesc(1+g.rng.Intn(g.cfg.MaxLines), g.prob(g.cfg.ArrowProb))
	case 2:
		return g.seq(depth)
	case 3:
		return g.par(depth)
	case 4:
		return g.alt(depth)
	default:
		return g.loop(depth)
	}
}

func (g *Gen) seq(depth int) *chart.Seq {
	n := 2 + g.rng.Intn(g.cfg.MaxChildren-1)
	children := make([]chart.Chart, n)
	for i := range children {
		children[i] = g.window(depth - 1)
	}
	return &chart.Seq{Children: children}
}

func (g *Gen) alt(depth int) *chart.Alt {
	n := 2 + g.rng.Intn(g.cfg.MaxChildren-1)
	children := make([]chart.Chart, n)
	for i := range children {
		children[i] = g.window(depth - 1)
	}
	return &chart.Alt{Children: children}
}

func (g *Gen) loop(depth int) *chart.Loop {
	l := &chart.Loop{Body: g.window(depth - 1), Min: 1 + g.rng.Intn(2)}
	if g.prob(0.2) {
		l.Max = chart.Unbounded
	} else {
		l.Max = l.Min + g.rng.Intn(3)
	}
	if g.prob(0.25) {
		// A zero-minimum loop is legal inside a wider window; if it ends
		// up admitting the empty window at top level, forcePositiveWidth
		// restores Min >= 1.
		l.Min = 0
	}
	return l
}

// par draws a synchronous overlay. Children are pattern-shaped and of
// equal width so the per-tick conjunction is defined, and every
// conjunction is checked satisfiable; occasionally one child is an
// alternative of same-width leaves, exercising the DFA-product path.
func (g *Gen) par(depth int) chart.Chart {
	width := 1 + g.rng.Intn(g.cfg.MaxLines)
	first := g.scesc(width, g.prob(g.cfg.ArrowProb))
	for attempt := 0; attempt < 16; attempt++ {
		var second chart.Chart
		if depth > 1 && g.prob(0.2) {
			second = &chart.Alt{Children: []chart.Chart{
				g.scesc(width, false),
				g.scesc(width, false),
			}}
		} else {
			second = g.scesc(width, false)
		}
		p := &chart.Par{Children: []chart.Chart{first, second}}
		if overlaySatisfiable(p) {
			return p
		}
	}
	// Conjunctions kept colliding; an overlay with an identical twin is
	// always satisfiable and still a legal (if easy) par. The twin is
	// stripped of labels and arrows so instrumentation is not duplicated.
	twin := cloneSCESC(first)
	twin.Arrows = nil
	for i := range twin.Lines {
		for j := range twin.Lines[i].Events {
			twin.Lines[i].Events[j].Label = ""
		}
	}
	return &chart.Par{Children: []chart.Chart{first, twin}}
}

func (g *Gen) implies() *chart.Implies {
	v := &chart.Implies{
		Trigger:  g.window(1),
		MaxDelay: g.rng.Intn(g.cfg.MaxDelay + 1),
	}
	// The trigger must denote a positive-width language on its own:
	// synthesizeImplies rejects triggers admitting the empty window even
	// when the implication as a whole has positive minimum width.
	forcePositiveWidth(v.Trigger)
	// The synthesized obligation requires a pattern-shaped consequent.
	if g.prob(0.3) {
		v.Consequent = &chart.Seq{Children: []chart.Chart{
			g.scesc(1+g.rng.Intn(2), false),
			g.scesc(1+g.rng.Intn(2), false),
		}}
	} else {
		v.Consequent = g.scesc(1+g.rng.Intn(g.cfg.MaxLines), false)
	}
	return v
}

// scesc draws one leaf with n grid lines. Every line's conjunction is
// satisfiable (retried against expr.SatAuto); when withArrows is set and
// the leaf spans several ticks, up to two forward causality arrows are
// attached to freshly labelled positive markers.
func (g *Gen) scesc(n int, withArrows bool) *chart.SCESC {
	sc := &chart.SCESC{Clock: g.cfg.Clock}
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		sc.Lines = append(sc.Lines, g.gridLine(used))
	}
	for inst := range used {
		sc.Instances = append(sc.Instances, inst)
	}
	// Map iteration order is randomized; fix a deterministic order so the
	// same seed always yields the identical chart.
	sort.Strings(sc.Instances)
	if withArrows && n >= 2 {
		g.addArrows(sc)
	}
	return sc
}

func (g *Gen) gridLine(usedInstances map[string]bool) chart.GridLine {
	for {
		line := chart.GridLine{}
		nm := 1 + g.rng.Intn(g.cfg.MaxMarkers)
		if nm > len(g.cfg.Events) {
			nm = len(g.cfg.Events)
		}
		for _, ev := range g.rng.Perm(len(g.cfg.Events))[:nm] {
			line.Events = append(line.Events, g.marker(g.cfg.Events[ev], usedInstances))
		}
		if g.prob(g.cfg.CondProb) {
			cond := expr.Pr(g.pick(g.cfg.Props))
			if g.prob(0.5) {
				cond = expr.Not(cond)
			}
			line.Cond = cond
		}
		if ok, err := expr.SatAuto(line.Expr()); err == nil && ok {
			return line
		}
		// Unsatisfiable conjunction (e.g. a guard clashing with the
		// condition): redraw the whole line.
	}
}

func (g *Gen) marker(ev string, usedInstances map[string]bool) chart.EventSpec {
	spec := chart.EventSpec{Event: ev}
	if g.prob(g.cfg.GuardProb) {
		spec.Guard = g.guard()
	}
	if g.prob(g.cfg.NegateProb) {
		spec.Negated = true
		return spec
	}
	switch {
	case g.prob(g.cfg.EnvProb):
		spec.Env = true
	case len(g.cfg.Instances) >= 2 && g.prob(g.cfg.EndpointProb):
		perm := g.rng.Perm(len(g.cfg.Instances))
		spec.From = g.cfg.Instances[perm[0]]
		spec.To = g.cfg.Instances[perm[1]]
		usedInstances[spec.From] = true
		usedInstances[spec.To] = true
	}
	return spec
}

func (g *Gen) guard() expr.Expr {
	p := expr.Pr(g.pick(g.cfg.Props))
	switch g.rng.Intn(4) {
	case 0:
		return expr.Not(p)
	case 1:
		if len(g.cfg.Props) > 1 {
			q := expr.Pr(g.pick(g.cfg.Props))
			if !expr.Equal(p, q) {
				if g.prob(0.5) {
					return expr.And(p, q)
				}
				return expr.Or(p, q)
			}
		}
		return p
	default:
		return p
	}
}

// addArrows labels up to two positive marker pairs on distinct ticks and
// connects them with forward causality arrows.
func (g *Gen) addArrows(sc *chart.SCESC) {
	type site struct{ tick, idx int }
	var positives []site
	for t, line := range sc.Lines {
		for i, e := range line.Events {
			if !e.Negated {
				positives = append(positives, site{t, i})
			}
		}
	}
	if len(positives) < 2 {
		return
	}
	narrows := 1
	if g.prob(0.3) {
		narrows = 2
	}
	for a := 0; a < narrows; a++ {
		// Draw two sites on distinct ticks, source first.
		var src, dst site
		found := false
		for attempt := 0; attempt < 8 && !found; attempt++ {
			i, j := g.rng.Intn(len(positives)), g.rng.Intn(len(positives))
			if positives[i].tick > positives[j].tick {
				i, j = j, i
			}
			if positives[i].tick < positives[j].tick {
				src, dst, found = positives[i], positives[j], true
			}
		}
		if !found {
			return
		}
		from := g.ensureLabel(sc, src.tick, src.idx)
		to := g.ensureLabel(sc, dst.tick, dst.idx)
		if from == to {
			continue
		}
		sc.Arrows = append(sc.Arrows, chart.Arrow{From: from, To: to})
	}
}

func (g *Gen) ensureLabel(sc *chart.SCESC, tick, idx int) string {
	e := &sc.Lines[tick].Events[idx]
	if e.Label != "" {
		return e.Label
	}
	e.Label = g.freshLabel()
	return e.Label
}

// MinTicks returns the least number of ticks any window of c spans.
func MinTicks(c chart.Chart) int {
	switch v := c.(type) {
	case *chart.SCESC:
		return v.NumTicks()
	case *chart.Seq:
		total := 0
		for _, ch := range v.Children {
			total += MinTicks(ch)
		}
		return total
	case *chart.Alt:
		best := -1
		for _, ch := range v.Children {
			if w := MinTicks(ch); best == -1 || w < best {
				best = w
			}
		}
		if best < 0 {
			return 0
		}
		return best
	case *chart.Par:
		best := 0
		for _, ch := range v.Children {
			if w := MinTicks(ch); w > best {
				best = w
			}
		}
		return best
	case *chart.Loop:
		return v.Min * MinTicks(v.Body)
	case *chart.Implies:
		return MinTicks(v.Trigger) + MinTicks(v.Consequent)
	default:
		return 0
	}
}

// forcePositiveWidth bumps zero-minimum loops until the chart no longer
// admits the empty window (which synthesizeNFA rejects: such a detector
// would accept vacuously at every tick).
func forcePositiveWidth(c chart.Chart) {
	for MinTicks(c) == 0 {
		if !bumpOneLoop(c) {
			return
		}
	}
}

func bumpOneLoop(c chart.Chart) bool {
	switch v := c.(type) {
	case *chart.Loop:
		if v.Min == 0 {
			v.Min = 1
			if v.Max != chart.Unbounded && v.Max < v.Min {
				v.Max = v.Min
			}
			return true
		}
		return bumpOneLoop(v.Body)
	case *chart.Seq:
		for _, ch := range v.Children {
			if MinTicks(ch) == 0 && bumpOneLoop(ch) {
				return true
			}
		}
	case *chart.Alt:
		for _, ch := range v.Children {
			if MinTicks(ch) == 0 && bumpOneLoop(ch) {
				return true
			}
		}
	case *chart.Par:
		for _, ch := range v.Children {
			if MinTicks(ch) == 0 && bumpOneLoop(ch) {
				return true
			}
		}
	case *chart.Implies:
		if MinTicks(v.Trigger) == 0 && bumpOneLoop(v.Trigger) {
			return true
		}
		return bumpOneLoop(v.Consequent)
	}
	return false
}

// overlaySatisfiable checks that every per-tick conjunction of the
// overlay's children (for every alternative choice) stays satisfiable.
func overlaySatisfiable(p *chart.Par) bool {
	combos := overlayLineSets(p)
	for _, lines := range combos {
		for _, e := range lines {
			if ok, err := expr.SatAuto(e); err != nil || !ok {
				return false
			}
		}
	}
	return len(combos) > 0
}

// overlayLineSets enumerates the per-tick conjunction sequences of a
// pattern-shaped chart, one per combination of alternative choices.
func overlayLineSets(c chart.Chart) [][]expr.Expr {
	switch v := c.(type) {
	case *chart.SCESC:
		lines := make([]expr.Expr, len(v.Lines))
		for i, l := range v.Lines {
			lines[i] = l.Expr()
		}
		return [][]expr.Expr{lines}
	case *chart.Seq:
		acc := [][]expr.Expr{{}}
		for _, ch := range v.Children {
			var next [][]expr.Expr
			for _, tail := range overlayLineSets(ch) {
				for _, head := range acc {
					joined := append(append([]expr.Expr{}, head...), tail...)
					next = append(next, joined)
				}
			}
			acc = next
		}
		return acc
	case *chart.Alt:
		var out [][]expr.Expr
		for _, ch := range v.Children {
			out = append(out, overlayLineSets(ch)...)
		}
		return out
	case *chart.Par:
		acc := [][]expr.Expr{}
		first := true
		for _, ch := range v.Children {
			sets := overlayLineSets(ch)
			if first {
				acc, first = sets, false
				continue
			}
			var next [][]expr.Expr
			for _, a := range acc {
				for _, b := range sets {
					if len(a) != len(b) {
						continue
					}
					joined := make([]expr.Expr, len(a))
					for i := range a {
						joined[i] = expr.And(a[i], b[i])
					}
					next = append(next, joined)
				}
			}
			acc = next
		}
		return acc
	default:
		return nil
	}
}
