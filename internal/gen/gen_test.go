package gen

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chart"
	"repro/internal/parser"
	"repro/internal/trace"
)

// TestGeneratedChartsWellFormed drives the generator across many seeds
// and holds every chart to the invariants the campaign relies on:
// validity, a parser/printer round trip that reproduces the chart
// exactly, a derivable support, and positive-width trace generation.
func TestGeneratedChartsWellFormed(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := New(seed, Config{})
		c := g.Chart()
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if MinTicks(c) == 0 {
			t.Fatalf("seed %d: zero-width chart %s", seed, chart.Describe(c))
		}
		src := parser.Print("roundtrip", c)
		c2, err := parser.ParseChart(src)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, src)
		}
		if !chart.Equal(c, c2) {
			t.Fatalf("seed %d: round-trip mismatch\n%s", seed, src)
		}
		sup, err := Support(c)
		if err != nil {
			t.Fatalf("seed %d: support: %v", seed, err)
		}
		tr := g.Trace(c, sup, 40)
		if len(tr) != 40 {
			t.Fatalf("seed %d: trace len %d", seed, len(tr))
		}
	}
}

// TestGeneratedAsyncWellFormed does the same for multi-clock charts,
// including the printed-form round trip the regression store depends on.
func TestGeneratedAsyncWellFormed(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		g := New(seed, Config{})
		spec := g.Async()
		if err := spec.Chart.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		src := parser.Print("roundtrip", spec.Chart)
		c2, err := parser.ParseChart(src)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, src)
		}
		if !chart.Equal(spec.Chart, c2) {
			t.Fatalf("seed %d: round-trip mismatch\n%s", seed, src)
		}
		phases := make([]int64, len(spec.Domains))
		for i := range phases {
			phases[i] = int64(i)
		}
		if gt, ok := g.AsyncGlobal(spec, phases, 3); ok && len(gt) == 0 {
			t.Fatalf("seed %d: empty global trace", seed)
		}
	}
}

// TestGeneratorDeterministic pins the seeding contract: the same seed
// must reproduce the same charts and traces, or printed reproduce lines
// are worthless.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := New(7, Config{}), New(7, Config{})
	for i := 0; i < 20; i++ {
		ca, cb := a.Chart(), b.Chart()
		if !chart.Equal(ca, cb) {
			t.Fatalf("draw %d: charts diverged", i)
		}
		supA, _ := Support(ca)
		supB, _ := Support(cb)
		ta, tb := a.Trace(ca, supA, 30), b.Trace(cb, supB, 30)
		for k := range ta {
			if !ta[k].Equal(tb[k]) {
				t.Fatalf("draw %d tick %d: traces diverged", i, k)
			}
		}
	}
}

// TestSpecCorpusRoundTrips holds the printer/parser pair to the same
// round-trip law over every checked-in spec, not just generated charts.
func TestSpecCorpusRoundTrips(t *testing.T) {
	paths, err := filepath.Glob("../../specs/*.cesc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for _, decl := range f.Charts {
			printed := parser.Print(decl.Name, decl.Chart)
			c2, err := parser.ParseChart(printed)
			if err != nil {
				t.Fatalf("%s/%s: reparse: %v\n%s", p, decl.Name, err, printed)
			}
			if !chart.Equal(decl.Chart, c2) {
				t.Fatalf("%s/%s: round-trip mismatch\n%s", p, decl.Name, printed)
			}
		}
	}
}

// TestShrinkPreservesFailure shrinks against a synthetic predicate and
// checks the contract: the result still fails the predicate, validates,
// and never grows.
func TestShrinkPreservesFailure(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := New(seed, Config{})
		c := g.Chart()
		sup, err := Support(c)
		if err != nil {
			t.Fatal(err)
		}
		tr := g.Trace(c, sup, 40)
		// A predicate most shrink steps can preserve, so the loop actually
		// exercises both trace and chart candidates.
		fails := func(c2 chart.Chart, tr2 trace.Trace) bool {
			return len(tr2) >= 3 && len(chart.Leaves(c2)) >= 1
		}
		c2, tr2 := Shrink(c, tr, fails)
		if !fails(c2, tr2) {
			t.Fatalf("seed %d: shrunk pair no longer fails", seed)
		}
		if err := c2.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk chart invalid: %v", seed, err)
		}
		if MinTicks(c2) == 0 {
			t.Fatalf("seed %d: shrunk chart has zero width", seed)
		}
		if len(tr2) > len(tr) {
			t.Fatalf("seed %d: trace grew from %d to %d", seed, len(tr), len(tr2))
		}
	}
}
