package gen

import (
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Support returns the event/prop support of a chart's symbols.
func Support(c chart.Chart) (*event.Support, error) {
	return event.NewSupport(chart.Symbols(c))
}

// noiseDensity is the probability a symbol is true on a filler tick.
// High enough that filler occasionally completes or extends candidate
// windows (the adversarial part), low enough that witnesses dominate.
const noiseDensity = 0.35

func (g *Gen) randState(sup *event.Support) event.State {
	var v event.Valuation
	for i := 0; i < sup.Len(); i++ {
		v = v.SetBit(i, g.prob(noiseDensity))
	}
	return sup.State(v)
}

// witnessExprs derives one per-tick constraint sequence whose
// satisfaction makes the chart match: alternatives and loop repetition
// counts are drawn randomly, implication delays are filled with nil
// (unconstrained) slots. ok is false when the drawn combination is
// unsatisfiable (e.g. a par overlay whose alternatives never align).
func (g *Gen) witnessExprs(c chart.Chart) ([]expr.Expr, bool) {
	switch v := c.(type) {
	case *chart.SCESC:
		out := make([]expr.Expr, len(v.Lines))
		for i, l := range v.Lines {
			out[i] = l.Expr()
		}
		return out, true
	case *chart.Seq:
		var out []expr.Expr
		for _, ch := range v.Children {
			part, ok := g.witnessExprs(ch)
			if !ok {
				return nil, false
			}
			out = append(out, part...)
		}
		return out, true
	case *chart.Alt:
		for _, i := range g.rng.Perm(len(v.Children)) {
			if part, ok := g.witnessExprs(v.Children[i]); ok {
				return part, true
			}
		}
		return nil, false
	case *chart.Loop:
		reps := v.Min
		if reps == 0 {
			reps = 1
		}
		span := 2
		if v.Max != chart.Unbounded && v.Max-reps < span {
			span = v.Max - reps
		}
		if span > 0 {
			reps += g.rng.Intn(span + 1)
		}
		var out []expr.Expr
		for r := 0; r < reps; r++ {
			part, ok := g.witnessExprs(v.Body)
			if !ok {
				return nil, false
			}
			out = append(out, part...)
		}
		return out, true
	case *chart.Par:
		for attempt := 0; attempt < 8; attempt++ {
			parts := make([][]expr.Expr, len(v.Children))
			ok := true
			for i, ch := range v.Children {
				parts[i], ok = g.witnessExprs(ch)
				if !ok || len(parts[i]) != len(parts[0]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out := make([]expr.Expr, len(parts[0]))
			sat := true
			for t := range out {
				terms := make([]expr.Expr, len(parts))
				for i := range parts {
					terms[i] = parts[i][t]
				}
				out[t] = expr.And(terms...)
				if isSat, err := expr.SatAuto(out[t]); err != nil || !isSat {
					sat = false
					break
				}
			}
			if sat {
				return out, true
			}
		}
		return nil, false
	case *chart.Implies:
		tw, ok := g.witnessExprs(v.Trigger)
		if !ok {
			return nil, false
		}
		cw, ok := g.witnessExprs(v.Consequent)
		if !ok {
			return nil, false
		}
		out := append([]expr.Expr{}, tw...)
		for d := g.rng.Intn(v.MaxDelay + 1); d > 0; d-- {
			out = append(out, nil)
		}
		return append(out, cw...), true
	default:
		return nil, false
	}
}

// Witness draws one trace window that satisfies c, sampling a random
// minterm of each per-tick constraint; ok is false when no satisfying
// assignment exists for a drawn combination.
func (g *Gen) Witness(c chart.Chart, sup *event.Support) (trace.Trace, bool) {
	exprs, ok := g.witnessExprs(c)
	if !ok {
		return nil, false
	}
	out := make(trace.Trace, len(exprs))
	for i, e := range exprs {
		if e == nil {
			out[i] = g.randState(sup)
			continue
		}
		ms := expr.Minterms(e, sup)
		if len(ms) == 0 {
			return nil, false
		}
		out[i] = sup.State(ms[g.rng.Intn(len(ms))])
	}
	return out, true
}

// Trace draws an adversarial tick stream of n ticks for c: random filler
// seeded with full and truncated witness windows at random (possibly
// overlapping) offsets, then a few random near-miss bit flips.
func (g *Gen) Trace(c chart.Chart, sup *event.Support, n int) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = g.randState(sup)
	}
	embeds := 1 + g.rng.Intn(3)
	for k := 0; k < embeds; k++ {
		w, ok := g.Witness(c, sup)
		if !ok || len(w) == 0 {
			break
		}
		if g.prob(0.3) && len(w) > 1 {
			// Near-miss prefix: all but the closing ticks of a witness.
			w = w[:1+g.rng.Intn(len(w)-1)]
		}
		if len(w) > n {
			w = w[:n]
		}
		at := g.rng.Intn(n - len(w) + 1)
		trace.Embed(tr, at, w)
	}
	if sup.Len() > 0 {
		for flips := g.rng.Intn(4); flips > 0; flips-- {
			t := g.rng.Intn(n)
			v := sup.Valuation(tr[t])
			bit := g.rng.Intn(sup.Len())
			tr[t] = sup.State(v.SetBit(bit, !v.Bit(bit)))
		}
	}
	return tr
}

// AsyncGlobal builds a global trace for an async chart: each domain gets
// noise around its witness window, and the domains are interleaved on a
// shared global clock with the given per-domain phases (periods all
// equal len(domains), so distinct phases mod that period guarantee a
// strict global order — no timestamp ties). pad bounds the noise padding
// per domain. ok is false when some child has no satisfiable witness.
func (g *Gen) AsyncGlobal(spec AsyncSpec, phases []int64, pad int) (trace.GlobalTrace, bool) {
	a := spec.Chart
	period := int64(len(a.Children))
	periods := make(map[string]int64, len(a.Children))
	phaseMap := make(map[string]int64, len(a.Children))
	traces := make(map[string]trace.Trace, len(a.Children))
	for i, ch := range a.Children {
		sup, err := Support(ch)
		if err != nil {
			return nil, false
		}
		w, ok := g.Witness(ch, sup)
		if !ok {
			return nil, false
		}
		pre, post := 0, 0
		if pad > 0 {
			pre, post = g.rng.Intn(pad+1), g.rng.Intn(pad+1)
		}
		tr := make(trace.Trace, 0, pre+len(w)+post)
		for k := 0; k < pre; k++ {
			tr = append(tr, g.randState(sup))
		}
		tr = append(tr, w...)
		for k := 0; k < post; k++ {
			tr = append(tr, g.randState(sup))
		}
		d := spec.Domains[i]
		periods[d] = period
		phaseMap[d] = phases[i%len(phases)] % period
		traces[d] = tr
	}
	gt, err := trace.Interleave(spec.Domains, periods, phaseMap, traces)
	if err != nil {
		return nil, false
	}
	return gt, true
}
