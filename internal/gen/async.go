package gen

import (
	"fmt"

	"repro/internal/chart"
)

// AsyncSpec is an Async chart plus the bookkeeping a campaign needs to
// build global traces for it: the per-domain sub-generators (sharing the
// parent's random source but scoped to disjoint symbol pools) and the
// cross-arrow endpoints.
type AsyncSpec struct {
	Chart *chart.Async
	// Domains lists the clock-domain names in child order.
	Domains []string
}

// Async draws a multi-clock chart: 2–3 pattern-shaped children on
// pairwise disjoint clock domains with disjoint symbol pools, plus up to
// two cross-domain causality arrows between labelled markers. Children
// are pattern-shaped (SCESC or Seq of SCESCs) because cross-arrow
// endpoints need fixed tick offsets, which mclock requires.
func (g *Gen) Async() AsyncSpec {
	n := 2 + g.rng.Intn(2)
	a := &chart.Async{}
	spec := AsyncSpec{Chart: a}
	// One scoped sub-generator per domain, all drawing from the parent's
	// random stream so a single seed reproduces the whole chart.
	subs := make([]*Gen, n)
	for i := 0; i < n; i++ {
		cfg := g.cfg
		cfg.Clock = fmt.Sprintf("ck%d", i)
		cfg.Events = domainSymbols(g.cfg.Events, i)
		cfg.Props = domainSymbols(g.cfg.Props, i)
		subs[i] = &Gen{cfg: cfg, rng: g.rng, labelSeq: g.labelSeq}
		var child chart.Chart
		if g.prob(0.3) {
			child = &chart.Seq{Children: []chart.Chart{
				subs[i].scesc(1+g.rng.Intn(2), false),
				subs[i].scesc(1+g.rng.Intn(2), false),
			}}
		} else {
			child = subs[i].scesc(1+g.rng.Intn(g.cfg.MaxLines), false)
		}
		g.labelSeq = subs[i].labelSeq
		a.Children = append(a.Children, child)
		spec.Domains = append(spec.Domains, cfg.Clock)
	}
	narrows := g.rng.Intn(3)
	for k := 0; k < narrows; k++ {
		src := g.rng.Intn(n)
		dst := g.rng.Intn(n)
		if src == dst {
			continue
		}
		from := g.labelSomeMarker(a.Children[src])
		to := g.labelSomeMarker(a.Children[dst])
		if from == "" || to == "" || from == to {
			continue
		}
		a.CrossArrows = append(a.CrossArrows, chart.Arrow{From: from, To: to})
	}
	if err := a.Validate(); err != nil {
		panic(fmt.Sprintf("gen: produced invalid async chart %s: %v", chart.Describe(a), err))
	}
	return spec
}

// domainSymbols derives a disjoint symbol pool for async child i by
// prefixing the base pool, so domains never share event or prop names
// (cross-arrow scoreboard entries are keyed by event name).
func domainSymbols(base []string, i int) []string {
	out := make([]string, len(base))
	for j, s := range base {
		out[j] = fmt.Sprintf("d%d_%s", i, s)
	}
	return out
}

// labelSomeMarker gives a fresh explicit label to a random positive
// marker of the (pattern-shaped) chart and returns it; "" when the chart
// has no positive markers.
func (g *Gen) labelSomeMarker(c chart.Chart) string {
	type site struct {
		sc        *chart.SCESC
		tick, idx int
	}
	var sites []site
	for _, sc := range chart.Leaves(c) {
		for t, line := range sc.Lines {
			for i, e := range line.Events {
				if !e.Negated {
					sites = append(sites, site{sc, t, i})
				}
			}
		}
	}
	if len(sites) == 0 {
		return ""
	}
	s := sites[g.rng.Intn(len(sites))]
	return g.ensureLabel(s.sc, s.tick, s.idx)
}
