package monitor_test

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// TestLaneBankFigMonitors is the acceptance-criterion differential on
// the paper's protocol figures: 64 lanes of each synthesized monitor,
// each lane fed its own deterministic model traffic, must match 64
// independent Compiled instances on every verdict, state, and
// scoreboard count.
func TestLaneBankFigMonitors(t *testing.T) {
	cases := []struct {
		name    string
		chart   chart.Chart
		traffic func(seed int64) []event.State
	}{
		{"Fig6OCP", ocp.SimpleReadChart(), func(seed int64) []event.State {
			return ocp.NewModel(ocp.Config{Gap: 2, Seed: seed}).GenerateTrace(1024)
		}},
		{"Fig7OCPBurst", ocp.BurstReadChart(), func(seed int64) []event.State {
			return ocp.NewModel(ocp.Config{Gap: 2, Seed: seed, Burst: true}).GenerateTrace(1024)
		}},
		{"Fig8AHB", amba.TransactionChart(), func(seed int64) []event.State {
			return amba.NewModel(amba.Config{Gap: 2, Seed: seed}).GenerateTrace(1024)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := synth.Synthesize(tc.chart, nil)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := monitor.CompileTable(m)
			if err != nil {
				t.Fatal(err)
			}
			bank := monitor.NewLaneBank(tab)
			refs := make([]*monitor.Compiled, monitor.MaxLanes)
			traces := make([][]event.State, monitor.MaxLanes)
			for i := range refs {
				if _, ok := bank.Join(); !ok {
					t.Fatal("bank full")
				}
				refs[i] = tab.NewInstance()
				traces[i] = tc.traffic(int64(i + 1))
			}
			var vals [monitor.MaxLanes]uint64
			for tick := 0; tick < 1024; tick++ {
				for l := range vals {
					vals[l] = uint64(tab.Support().Valuation(traces[l][tick]))
				}
				acceptMask, violMask := bank.StepAll(&vals)
				for l, c := range refs {
					prevViol := c.Violations()
					accepted := c.Step(traces[l][tick])
					if got := acceptMask>>uint(l)&1 == 1; got != accepted {
						t.Fatalf("tick %d lane %d: accept %v, reference %v", tick, l, got, accepted)
					}
					if got := violMask>>uint(l)&1 == 1; got != (c.Violations() > prevViol) {
						t.Fatalf("tick %d lane %d: violation bit mismatch", tick, l)
					}
					if bank.State(l) != c.State() {
						t.Fatalf("tick %d lane %d: state %d, reference %d", tick, l, bank.State(l), c.State())
					}
				}
			}
			for l, c := range refs {
				if bank.Accepts(l) != c.Accepts() || bank.Violations(l) != c.Violations() {
					t.Fatalf("lane %d: counters diverged (%d/%d vs %d/%d)",
						l, bank.Accepts(l), bank.Violations(l), c.Accepts(), c.Violations())
				}
				for _, e := range tab.ChkEvents() {
					if bank.Count(l, e) != c.Count(e) {
						t.Fatalf("lane %d: count[%s] %d, reference %d", l, e, bank.Count(l, e), c.Count(e))
					}
				}
			}
			if bank.Spilled() != 0 {
				t.Fatal("unexpected spill on fig traffic")
			}
		})
	}
}
