package monitor

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Diagnostic captures the context of one assert-mode violation: where
// the monitor was, what input broke the scenario, and the recent input
// window leading up to it — the counterexample excerpt a verification
// engineer needs to debug the failure.
type Diagnostic struct {
	// Monitor is the chart name of the violated specification.
	Monitor string
	// Tick is the engine-local tick at which the violation fired.
	Tick int
	// FromState is the automaton state abandoned.
	FromState int
	// GridLine is the chart grid line the monitor sat on when the
	// violation fired. For linear SCESC monitors states are synthesized
	// one per grid line, so GridLine equals FromState; for composed
	// (non-linear) monitors no single grid line applies and GridLine
	// is -1.
	GridLine int
	// Guard is the fired guard that routed the run into the violation
	// (rendered from the compiled program's slot names on compiled
	// tiers). Empty for a hard reset, where no guard matched at all.
	Guard string
	// Guards lists every candidate guard of the abandoned state, in
	// transition order — on a hard reset these are the guards that all
	// evaluated false against the offending input.
	Guards []string
	// Valuation is the offending input packed through the monitor's
	// support slot order — the exact table index / program input the
	// compiled tiers evaluated.
	Valuation uint64
	// Input is the offending trace element.
	Input event.State
	// Recent holds up to the configured depth of elements before the
	// offending one, oldest first.
	Recent []event.State
	// Scoreboard lists the live scoreboard entries at the violation.
	Scoreboard []string
}

// String renders a multi-line report.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation at tick %d (abandoned state %d)\n", d.Tick, d.FromState)
	if d.Monitor != "" {
		fmt.Fprintf(&b, "  monitor: %s", d.Monitor)
		if d.GridLine >= 0 {
			fmt.Fprintf(&b, " (grid line %d)", d.GridLine)
		}
		b.WriteByte('\n')
	}
	if d.Guard != "" {
		fmt.Fprintf(&b, "  guard: %s\n", d.Guard)
	} else if len(d.Guards) > 0 {
		fmt.Fprintf(&b, "  no guard matched of: %s\n", strings.Join(d.Guards, " | "))
	}
	for i, s := range d.Recent {
		fmt.Fprintf(&b, "  t-%d: %s\n", len(d.Recent)-i, s)
	}
	fmt.Fprintf(&b, "  t-0: %s   <- offending input\n", d.Input)
	if len(d.Scoreboard) > 0 {
		fmt.Fprintf(&b, "  scoreboard: %s\n", strings.Join(d.Scoreboard, ", "))
	}
	return b.String()
}

// maxDiagnostics bounds the retained reports: the ring keeps the most
// recent maxDiagnostics violations, and counters keep counting past it.
const maxDiagnostics = 32

// diagState is the engine's diagnostic machinery.
type diagState struct {
	depth   int
	ring    []event.State
	next    int
	filled  bool
	reports []Diagnostic
	// sup packs offending inputs for Diagnostic.Valuation (nil when the
	// monitor's support is unavailable).
	sup *event.Support
}

// EnableDiagnostics makes the engine retain the last `depth` inputs and
// record a Diagnostic for each violation (a bounded ring keeps the most
// recent reports). Call before stepping; depth <= 0 disables.
func (e *Engine) EnableDiagnostics(depth int) {
	if depth <= 0 {
		e.diag = nil
		return
	}
	e.diag = &diagState{depth: depth, ring: make([]event.State, depth)}
	if e.b != nil {
		e.diag.sup = e.b.prog.sup
	} else if sup, err := e.m.Support(); err == nil {
		e.diag.sup = sup
	}
}

// Diagnostics returns the recorded violation reports (nil when
// diagnostics are disabled or no violation occurred).
func (e *Engine) Diagnostics() []Diagnostic {
	if e.diag == nil {
		return nil
	}
	return e.diag.reports
}

// observe records an input before it is consumed.
func (d *diagState) observe(s event.State) {
	d.ring[d.next] = s.Clone()
	d.next = (d.next + 1) % d.depth
	if d.next == 0 {
		d.filled = true
	}
}

// recent returns the inputs before the one just observed, oldest first.
func (d *diagState) recent() []event.State {
	var out []event.State
	n := d.depth
	if !d.filled {
		n = d.next
	}
	// Exclude the most recent entry (the offending input itself).
	for i := n - 1; i >= 1; i-- {
		idx := (d.next - 1 - i + 2*d.depth) % d.depth
		out = append(out, d.ring[idx])
	}
	return out
}

// push appends d to the bounded report ring, dropping the oldest report
// once maxDiagnostics are retained.
func (d *diagState) push(rep Diagnostic) {
	if len(d.reports) >= maxDiagnostics {
		copy(d.reports, d.reports[1:])
		d.reports[len(d.reports)-1] = rep
		return
	}
	d.reports = append(d.reports, rep)
}

// recordViolation captures a diagnostic if armed. Provenance is rendered
// from whichever tier executed the step: program-bound engines decompile
// the fired compiled guard back to source form, interpreted engines
// render the guard AST directly — identical strings by construction.
func (e *Engine) recordViolation(res StepResult, input event.State) {
	if e.diag == nil {
		return
	}
	rep := Diagnostic{
		Monitor:    e.m.Name,
		Tick:       res.Tick,
		FromState:  res.From,
		GridLine:   gridLine(e.m, res.From),
		Guards:     e.guardStrings(res.From),
		Input:      input.Clone(),
		Recent:     e.diag.recent(),
		Scoreboard: e.sb.Live(),
	}
	if res.TransIndex >= 0 {
		rep.Guard = e.guardString(res.From, res.TransIndex)
	}
	if e.diag.sup != nil {
		rep.Valuation = uint64(e.diag.sup.Valuation(input))
	}
	e.diag.push(rep)
}

// guardString renders one guard of state s: from the compiled program's
// slot names on the program tier, from the guard AST otherwise.
func (e *Engine) guardString(s, idx int) string {
	if e.b != nil {
		return e.b.prog.GuardString(s, idx)
	}
	return e.m.Trans[s][idx].Guard.String()
}

// guardStrings renders every candidate guard of state s in transition
// order.
func (e *Engine) guardStrings(s int) []string {
	if s < 0 || s >= len(e.m.Trans) || len(e.m.Trans[s]) == 0 {
		return nil
	}
	out := make([]string, len(e.m.Trans[s]))
	for i := range e.m.Trans[s] {
		out[i] = e.guardString(s, i)
	}
	return out
}

// gridLine maps an automaton state to the chart grid line it represents:
// linear SCESC monitors synthesize one state per grid line, so the state
// index is the grid line; composed monitors have no such mapping.
func gridLine(m *Monitor, state int) int {
	if m.Linear {
		return state
	}
	return -1
}
