package monitor

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Diagnostic captures the context of one assert-mode violation: where
// the monitor was, what input broke the scenario, and the recent input
// window leading up to it — the counterexample excerpt a verification
// engineer needs to debug the failure.
type Diagnostic struct {
	// Tick is the engine-local tick at which the violation fired.
	Tick int
	// FromState is the automaton state abandoned.
	FromState int
	// Input is the offending trace element.
	Input event.State
	// Recent holds up to the configured depth of elements before the
	// offending one, oldest first.
	Recent []event.State
	// Scoreboard lists the live scoreboard entries at the violation.
	Scoreboard []string
}

// String renders a multi-line report.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation at tick %d (abandoned state %d)\n", d.Tick, d.FromState)
	for i, s := range d.Recent {
		fmt.Fprintf(&b, "  t-%d: %s\n", len(d.Recent)-i, s)
	}
	fmt.Fprintf(&b, "  t-0: %s   <- offending input\n", d.Input)
	if len(d.Scoreboard) > 0 {
		fmt.Fprintf(&b, "  scoreboard: %s\n", strings.Join(d.Scoreboard, ", "))
	}
	return b.String()
}

// maxDiagnostics bounds the retained reports; later violations only
// increment counters.
const maxDiagnostics = 32

// diagState is the engine's diagnostic machinery.
type diagState struct {
	depth   int
	ring    []event.State
	next    int
	filled  bool
	reports []Diagnostic
}

// EnableDiagnostics makes the engine retain the last `depth` inputs and
// record a Diagnostic for each violation (up to an internal cap).
// Call before stepping; depth <= 0 disables.
func (e *Engine) EnableDiagnostics(depth int) {
	if depth <= 0 {
		e.diag = nil
		return
	}
	e.diag = &diagState{depth: depth, ring: make([]event.State, depth)}
}

// Diagnostics returns the recorded violation reports (nil when
// diagnostics are disabled or no violation occurred).
func (e *Engine) Diagnostics() []Diagnostic {
	if e.diag == nil {
		return nil
	}
	return e.diag.reports
}

// observe records an input before it is consumed.
func (d *diagState) observe(s event.State) {
	d.ring[d.next] = s.Clone()
	d.next = (d.next + 1) % d.depth
	if d.next == 0 {
		d.filled = true
	}
}

// recent returns the inputs before the one just observed, oldest first.
func (d *diagState) recent() []event.State {
	var out []event.State
	n := d.depth
	if !d.filled {
		n = d.next
	}
	// Exclude the most recent entry (the offending input itself).
	for i := n - 1; i >= 1; i-- {
		idx := (d.next - 1 - i + 2*d.depth) % d.depth
		out = append(out, d.ring[idx])
	}
	return out
}

// recordViolation captures a diagnostic if armed and under the cap.
func (e *Engine) recordViolation(res StepResult, input event.State) {
	if e.diag == nil || len(e.diag.reports) >= maxDiagnostics {
		return
	}
	e.diag.reports = append(e.diag.reports, Diagnostic{
		Tick:       res.Tick,
		FromState:  res.From,
		Input:      input.Clone(),
		Recent:     e.diag.recent(),
		Scoreboard: e.sb.Live(),
	})
}
