package monitor

import (
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

// laneRig pairs a LaneBank with per-lane Compiled references sharing the
// same Table, the ground truth the bank must match tick for tick.
type laneRig struct {
	t    *testing.T
	tab  *Table
	bank *LaneBank
	ref  map[int]*Compiled // by lane
}

func newLaneRig(t *testing.T, m *Monitor) *laneRig {
	t.Helper()
	tab, err := CompileTable(m)
	if err != nil {
		t.Fatal(err)
	}
	return &laneRig{t: t, tab: tab, bank: NewLaneBank(tab), ref: map[int]*Compiled{}}
}

func (r *laneRig) join() int {
	r.t.Helper()
	lane, ok := r.bank.Join()
	if !ok {
		r.t.Fatal("bank full")
	}
	r.ref[lane] = r.tab.NewInstance()
	return lane
}

// stepAll feeds vals[lane] to the bank and the same expanded state to
// each reference, then checks verdict masks and full cursor parity.
func (r *laneRig) stepAll(tick int, vals *[MaxLanes]uint64) {
	r.t.Helper()
	prevViol := map[int]int{}
	for l, c := range r.ref {
		prevViol[l] = c.Violations()
	}
	acceptMask, violMask := r.bank.StepAll(vals)
	for l, c := range r.ref {
		accepted := c.Step(r.tab.Support().State(event.Valuation(vals[l])))
		if got := acceptMask>>uint(l)&1 == 1; got != accepted {
			r.t.Fatalf("tick %d lane %d: accept %v, reference %v", tick, l, got, accepted)
		}
		if got := violMask>>uint(l)&1 == 1; got != (c.Violations() > prevViol[l]) {
			r.t.Fatalf("tick %d lane %d: violation bit %v, reference %v", tick, l, got, c.Violations() > prevViol[l])
		}
	}
	r.verify(tick)
}

func (r *laneRig) verify(tick int) {
	r.t.Helper()
	for l, c := range r.ref {
		if s := r.bank.State(l); s != c.State() {
			r.t.Fatalf("tick %d lane %d: state %d, reference %d", tick, l, s, c.State())
		}
		if a := r.bank.Accepts(l); a != c.Accepts() {
			r.t.Fatalf("tick %d lane %d: accepts %d, reference %d", tick, l, a, c.Accepts())
		}
		if v := r.bank.Violations(l); v != c.Violations() {
			r.t.Fatalf("tick %d lane %d: violations %d, reference %d", tick, l, v, c.Violations())
		}
		if st := r.bank.Steps(l); st != c.Steps() {
			r.t.Fatalf("tick %d lane %d: steps %d, reference %d", tick, l, st, c.Steps())
		}
		for _, e := range r.tab.ChkEvents() {
			if n := r.bank.Count(l, e); n != c.Count(e) {
				r.t.Fatalf("tick %d lane %d: count[%s] %d, reference %d", tick, l, e, n, c.Count(e))
			}
		}
	}
}

// xorshift is the deterministic traffic source for the differential
// runs.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

func laneMonitors() map[string]*Monitor {
	return map[string]*Monitor{
		"twoStep": twoStep(),
		"prov":    provMonitor(),
	}
}

func TestLaneBankUniformMatchesCompiled(t *testing.T) {
	for name, m := range laneMonitors() {
		t.Run(name, func(t *testing.T) {
			r := newLaneRig(t, m)
			for i := 0; i < MaxLanes; i++ {
				r.join()
			}
			mask := uint64(1)<<uint(r.tab.Width()) - 1
			rng := xorshift(7)
			var vals [MaxLanes]uint64
			for tick := 0; tick < 2048; tick++ {
				v := rng.next() & mask
				// Uniform traffic through both entry points: they must agree.
				if tick%2 == 0 {
					for l := range vals {
						vals[l] = v
					}
					r.stepAll(tick, &vals)
				} else {
					acceptMask, _ := r.bank.StepUniform(v)
					s := r.tab.Support().State(event.Valuation(v))
					for l, c := range r.ref {
						accepted := c.Step(s)
						if got := acceptMask>>uint(l)&1 == 1; got != accepted {
							t.Fatalf("tick %d lane %d: accept %v, reference %v", tick, l, got, accepted)
						}
					}
					r.verify(tick)
				}
			}
		})
	}
}

func TestLaneBankPerLaneTraffic(t *testing.T) {
	for name, m := range laneMonitors() {
		t.Run(name, func(t *testing.T) {
			r := newLaneRig(t, m)
			for i := 0; i < MaxLanes; i++ {
				r.join()
			}
			mask := uint64(1)<<uint(r.tab.Width()) - 1
			rng := xorshift(11)
			var vals [MaxLanes]uint64
			for tick := 0; tick < 2048; tick++ {
				for l := range vals {
					vals[l] = rng.next() & mask
				}
				r.stepAll(tick, &vals)
			}
		})
	}
}

// TestLaneBankChurn joins, evicts, and rejoins lanes mid-stream: a lane
// joined at tick k must behave exactly like a fresh instance fed the
// suffix, and a reused lane slot must carry nothing over.
func TestLaneBankChurn(t *testing.T) {
	m := provMonitor()
	r := newLaneRig(t, m)
	mask := uint64(1)<<uint(r.tab.Width()) - 1
	rng := xorshift(23)
	var vals [MaxLanes]uint64
	for tick := 0; tick < 3000; tick++ {
		if tick%7 == 0 && r.bank.Len() < MaxLanes {
			r.join()
		}
		if tick%131 == 130 {
			// Evict the lowest live lane; its slot gets recycled above.
			for l := 0; l < MaxLanes; l++ {
				if r.bank.Occupied()&(1<<uint(l)) != 0 {
					r.bank.Evict(l)
					delete(r.ref, l)
					break
				}
			}
		}
		for l := range vals {
			vals[l] = rng.next() & mask
		}
		r.stepAll(tick, &vals)
	}
	if r.bank.Spilled() != 0 {
		t.Fatal("unexpected spill")
	}
}

func TestLaneBankSnapshotRoundTrip(t *testing.T) {
	m := provMonitor()
	r := newLaneRig(t, m)
	for i := 0; i < MaxLanes; i++ {
		r.join()
	}
	mask := uint64(1)<<uint(r.tab.Width()) - 1
	rng := xorshift(31)
	var vals [MaxLanes]uint64
	for tick := 0; tick < 500; tick++ {
		for l := range vals {
			vals[l] = rng.next() & mask
		}
		r.stepAll(tick, &vals)
	}
	// Move every lane into a fresh bank through its snapshot; the
	// references carry over untouched, so any loss shows as divergence.
	moved := &laneRig{t: t, tab: r.tab, bank: NewLaneBank(r.tab), ref: map[int]*Compiled{}}
	for l, c := range r.ref {
		snap, err := r.bank.Snapshot(l)
		if err != nil {
			t.Fatal(err)
		}
		nl, ok := moved.bank.JoinWith(snap)
		if !ok {
			t.Fatal("join with snapshot failed")
		}
		moved.ref[nl] = c
		got, err := moved.bank.Snapshot(nl)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != snap.State || got.Accepts != snap.Accepts ||
			got.Violations != snap.Violations || got.Steps != snap.Steps {
			t.Fatalf("snapshot not preserved: %+v vs %+v", got, snap)
		}
	}
	for tick := 500; tick < 1000; tick++ {
		for l := range vals {
			vals[l] = rng.next() & mask
		}
		moved.stepAll(tick, &vals)
	}
}

func TestLaneBankRestoreValidation(t *testing.T) {
	r := newLaneRig(t, provMonitor())
	if err := r.bank.Restore(3, LaneState{}); err == nil {
		t.Error("restore of dead lane accepted")
	}
	if _, ok := r.bank.JoinWith(LaneState{State: 99}); ok {
		t.Error("out-of-range state accepted")
	}
	if _, ok := r.bank.JoinWith(LaneState{Counts: []uint32{1 << 20}}); ok {
		t.Error("count above lane ceiling accepted")
	}
	for i := 0; i < MaxLanes; i++ {
		r.join()
	}
	if _, ok := r.bank.Join(); ok {
		t.Error("join succeeded on a full bank")
	}
}

// TestLaneBankSpill drives one scoreboard count to the 16-bit lane
// ceiling: the lane must be flagged for eviction rather than wrapping.
func TestLaneBankSpill(t *testing.T) {
	m := New("spill", "clk", 2)
	m.AddTransition(0, Transition{To: 0, Guard: expr.True, Actions: []Action{Add("e")}})
	m.AddTransition(1, Transition{To: 0, Guard: expr.Chk("e")}) // makes e guard-tested
	m.AddTransition(1, Transition{To: 0, Guard: expr.True})
	tab, err := CompileTable(m)
	if err != nil {
		t.Fatal(err)
	}
	b := NewLaneBank(tab)
	lane, _ := b.Join()
	for i := 0; i < (1<<laneCountBits)-1; i++ {
		b.StepUniform(0)
	}
	if b.Spilled() != 0 {
		t.Fatalf("spilled early: %x", b.Spilled())
	}
	if n := b.Count(lane, "e"); n != (1<<laneCountBits)-1 {
		t.Fatalf("count = %d", n)
	}
	b.StepUniform(0)
	if b.Spilled() != 1<<uint(lane) {
		t.Fatalf("spill not flagged: %x", b.Spilled())
	}
	if n := b.Count(lane, "e"); n != (1<<laneCountBits)-1 {
		t.Fatalf("count wrapped: %d", n)
	}
}

// fusedMonitors builds three overlapping chk-free monitors, one with a
// violation sink, for the product-table differential.
func fusedMonitors() []*Monitor {
	a, b, c := expr.Ev("a"), expr.Ev("b"), expr.Ev("c")
	m1 := New("seq-ab", "clk", 3)
	m1.AddTransition(0, Transition{To: 1, Guard: a})
	m1.AddTransition(0, Transition{To: 0, Guard: expr.Not(a)})
	m1.AddTransition(1, Transition{To: 2, Guard: b})
	m1.AddTransition(1, Transition{To: 0, Guard: expr.Not(b)})
	m1.AddTransition(2, Transition{To: 0, Guard: expr.True})

	m2 := New("b-then-c", "clk", 4)
	m2.Final = 2
	m2.Violation = 3
	m2.AddTransition(0, Transition{To: 1, Guard: b})
	m2.AddTransition(0, Transition{To: 0, Guard: expr.Not(b)})
	m2.AddTransition(1, Transition{To: 2, Guard: c})
	m2.AddTransition(1, Transition{To: 3, Guard: expr.Not(c)})
	m2.AddTransition(2, Transition{To: 0, Guard: expr.True})
	m2.AddTransition(3, Transition{To: 0, Guard: expr.True})

	m3 := New("pulse-c", "clk", 2)
	m3.AddTransition(0, Transition{To: 1, Guard: c})
	m3.AddTransition(0, Transition{To: 0, Guard: expr.Not(c)})
	m3.AddTransition(1, Transition{To: 0, Guard: expr.True})
	return []*Monitor{m1, m2, m3}
}

func TestFusedTableMatchesCompiled(t *testing.T) {
	ms := fusedMonitors()
	f, err := NewFusedTable(ms)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*Compiled, len(ms))
	for i, m := range ms {
		if refs[i], err = Compile(m); err != nil {
			t.Fatal(err)
		}
	}
	mask := uint64(1)<<uint(f.Support().Len()) - 1
	rng := xorshift(43)
	for tick := 0; tick < 4000; tick++ {
		v := rng.next() & mask
		s := f.Support().State(event.Valuation(v))
		prevViol := make([]int, len(refs))
		for i, c := range refs {
			prevViol[i] = c.Violations()
		}
		acceptMask, violMask := f.Step(v)
		for i, c := range refs {
			accepted := c.Step(s)
			if got := acceptMask>>uint(i)&1 == 1; got != accepted {
				t.Fatalf("tick %d monitor %d: accept %v, reference %v", tick, i, got, accepted)
			}
			if got := violMask>>uint(i)&1 == 1; got != (c.Violations() > prevViol[i]) {
				t.Fatalf("tick %d monitor %d: violation bit mismatch", tick, i)
			}
			if f.States()[i] != c.State() {
				t.Fatalf("tick %d monitor %d: state %d, reference %d", tick, i, f.States()[i], c.State())
			}
			if f.Accepts(i) != c.Accepts() || f.Violations(i) != c.Violations() {
				t.Fatalf("tick %d monitor %d: counter divergence", tick, i)
			}
		}
	}
	if f.Steps() != 4000 {
		t.Fatalf("steps = %d", f.Steps())
	}
	if f.TableBytes() <= 0 {
		t.Error("table size not reported")
	}
	f.Reset()
	for i, m := range ms {
		if f.States()[i] != m.Initial {
			t.Error("reset did not restore initial product state")
		}
	}
}

func TestFusedTableRejects(t *testing.T) {
	if _, err := NewFusedTable([]*Monitor{twoStep()}); err == nil {
		t.Error("chk-testing monitor fused")
	}
	if _, err := NewFusedTable(nil); err == nil {
		t.Error("empty set fused")
	}
	many := make([]*Monitor, maxFusedMonitors+1)
	ms := fusedMonitors()
	for i := range many {
		many[i] = ms[0]
	}
	if _, err := NewFusedTable(many); err == nil {
		t.Error("oversized set fused")
	}
}

// TestEngineStepFired pins the contract StepFired relies on: for a
// chk-free monitor with diagnostics off, resolving the fired index via
// the Table and finishing through the engine matches Step exactly.
func TestEngineStepFired(t *testing.T) {
	ms := fusedMonitors()
	for _, m := range ms {
		tab, err := CompileTable(m)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(m, nil, ModeDetect)
		ref := NewEngine(m, nil, ModeDetect)
		mask := uint64(1)<<uint(tab.Width()) - 1
		rng := xorshift(57)
		for tick := 0; tick < 2000; tick++ {
			v := rng.next() & mask
			s := tab.Support().State(event.Valuation(v))
			got := e.StepFired(tab.Fired(e.State(), v))
			want := ref.Step(s)
			if got.Outcome != want.Outcome || got.From != want.From || got.To != want.To ||
				got.TransIndex != want.TransIndex || got.Tick != want.Tick {
				t.Fatalf("%s tick %d: StepFired %+v, Step %+v", m.Name, tick, got, want)
			}
		}
		if e.Stats() != ref.Stats() {
			t.Fatalf("%s: stats diverged: %+v vs %+v", m.Name, e.Stats(), ref.Stats())
		}
	}
}
