package monitor

import (
	"testing"
	"testing/quick"
)

// TestScoreboardInvariants (property-based): under arbitrary interleaved
// Add/Del/Reset sequences the count never goes negative, Chk agrees with
// Count, and FirstAddedAt is present exactly when Count > 0.
func TestScoreboardInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		sb := NewScoreboard()
		names := []string{"a", "b", "c"}
		model := map[string]int{}
		for i, op := range ops {
			name := names[int(op>>2)%len(names)]
			switch op % 4 {
			case 0, 1: // bias toward adds
				sb.Add(int64(i), name)
				model[name]++
			case 2:
				sb.Del(name)
				if model[name] > 0 {
					model[name]--
				}
			case 3:
				sb.Reset()
				model = map[string]int{}
			}
			for _, n := range names {
				if sb.Count(n) != model[n] {
					return false
				}
				if sb.Chk(n) != (model[n] > 0) {
					return false
				}
				if _, ok := sb.FirstAddedAt(n); ok != (model[n] > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEngineStateInRange (property-based): the engine's state stays
// inside the automaton for arbitrary input sequences, and accepts never
// exceed steps.
func TestEngineStateInRange(t *testing.T) {
	m := twoStep()
	f := func(inputs []uint8) bool {
		e := NewEngine(m, nil, ModeDetect)
		for _, raw := range inputs {
			s := st()
			if raw&1 != 0 {
				s.Events["a"] = true
			}
			if raw&2 != 0 {
				s.Events["b"] = true
			}
			e.Step(s)
			if e.State() < 0 || e.State() >= m.States {
				return false
			}
		}
		stats := e.Stats()
		return stats.Accepts <= stats.Steps && stats.Violations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
