package monitor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

// TestScoreboardRaceStress hammers one shared Scoreboard from many
// goroutines, the way local monitors of different clock domains share it
// in multi-clock execution: each domain goroutine performs its own
// Add_evt/Del_evt cycles and Chk_evt probes, both on domain-private
// events and on one cross-domain event that every goroutine reads while
// one writer mutates it. Run under -race this locks in the mutex
// contract the shared-scoreboard design relies on; the final-count
// assertions catch lost updates even without the race detector.
func TestScoreboardRaceStress(t *testing.T) {
	const (
		domains = 8
		iters   = 2000
		shared  = "xdomain"
	)
	sb := NewScoreboard()
	var wg sync.WaitGroup
	for d := 0; d < domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			ev := fmt.Sprintf("dom%d_evt", d)
			for i := 0; i < iters; i++ {
				sb.Add(int64(i), ev)
				if !sb.Chk(ev) {
					t.Errorf("domain %d: own event not live after Add", d)
					return
				}
				// Cross-domain probes while other domains mutate.
				sb.Chk(shared)
				sb.Count(shared)
				if i%64 == 0 {
					sb.FirstAddedAt(ev)
					sb.Live()
				}
				sb.Del(ev)
			}
		}(d)
	}
	// One writer cycles the shared event so the readers above race with
	// genuine mutations; balanced adds/dels leave it empty at the end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sb.Add(int64(i), shared)
			sb.Del(shared)
		}
	}()
	wg.Wait()

	for d := 0; d < domains; d++ {
		ev := fmt.Sprintf("dom%d_evt", d)
		if c := sb.Count(ev); c != 0 {
			t.Errorf("event %s: final count %d, want 0 (lost update)", ev, c)
		}
	}
	if c := sb.Count(shared); c != 0 {
		t.Errorf("shared event: final count %d, want 0", c)
	}
	// Every Add and Del is one op: domains do 2 per iteration each, the
	// shared writer does 2 per iteration.
	wantOps := uint64((domains + 1) * iters * 2)
	if got := sb.Ops(); got != wantOps {
		t.Errorf("ops = %d, want %d (lost scoreboard operations)", got, wantOps)
	}
}

// TestScoreboardConcurrentEngines runs several monitor engines that
// share one scoreboard — the multi-clock deployment shape — each
// stepping its own req/resp stream in its own goroutine. Every
// transition performs Add_evt/Del_evt on both a domain-private event and
// one cross-domain event, and the resp guard evaluates Chk_evt, so the
// engines genuinely contend on the shared scoreboard. Engine state is
// per-engine; -race failures here mean the scoreboard contract broke.
func TestScoreboardConcurrentEngines(t *testing.T) {
	const (
		engines = 6
		rounds  = 500
		xpend   = "xpend"
	)
	sb := NewScoreboard()
	var wg sync.WaitGroup
	accepts := make([]int, engines)
	for e := 0; e < engines; e++ {
		req := fmt.Sprintf("req%d", e)
		resp := fmt.Sprintf("resp%d", e)
		pend := fmt.Sprintf("pend%d", e)
		m := New(fmt.Sprintf("eng%d", e), "clk", 3)
		m.Linear = true
		m.AddTransition(0, Transition{To: 1, Guard: expr.Ev(req), Actions: []Action{Add(pend, xpend)}})
		m.AddTransition(0, Transition{To: 0, Guard: expr.Not(expr.Ev(req))})
		m.AddTransition(1, Transition{To: 2, Guard: expr.And(expr.Ev(resp), expr.Chk(pend)), Actions: []Action{Del(pend, xpend)}})
		m.AddTransition(1, Transition{To: 1, Guard: expr.Not(expr.Ev(resp))})
		m.AddTransition(2, Transition{To: 1, Guard: expr.Ev(req), Actions: []Action{Add(pend, xpend)}})
		m.AddTransition(2, Transition{To: 0, Guard: expr.Not(expr.Ev(req))})
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(m, sb, ModeDetect)
		reqState := event.NewState().WithEvents(req)
		respState := event.NewState().WithEvents(resp)
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				eng.Step(reqState)
				eng.Step(respState)
			}
			accepts[e] = eng.Stats().Accepts
		}(e)
	}
	wg.Wait()

	for e, a := range accepts {
		if a != rounds {
			t.Errorf("engine %d: accepts = %d, want %d", e, a, rounds)
		}
	}
	if live := sb.Live(); len(live) != 0 {
		t.Errorf("scoreboard not balanced after concurrent engines: %v", live)
	}
	if c := sb.Count(xpend); c != 0 {
		t.Errorf("cross-domain event count = %d, want 0", c)
	}
}
