package monitor

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

// snapMonitor builds a small linear monitor with scoreboard actions so
// snapshots carry non-trivial pending/scoreboard state.
func snapMonitor(t *testing.T) *Monitor {
	t.Helper()
	ev := func(n string) expr.Expr { return expr.Ev(n) }
	m := New("snap", "clk", 4)
	m.Linear = true
	m.AddTransition(0, Transition{To: 1, Guard: ev("a"), Actions: []Action{Add("a")}})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(ev("a"))})
	m.AddTransition(1, Transition{To: 2, Guard: ev("b")})
	m.AddTransition(1, Transition{To: 0, Guard: expr.Not(ev("b")), Actions: []Action{Del("a")}})
	m.AddTransition(2, Transition{To: 3, Guard: expr.And(ev("c"), expr.Chk("a"))})
	m.AddTransition(2, Transition{To: 0, Guard: expr.Not(ev("c")), Actions: []Action{Del("a")}})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// snapTrace is a deterministic input mix: progress, acceptance,
// abandonment (violations in assert mode), and idle ticks.
func snapTrace(n int) []event.State {
	pattern := [][]string{
		{"a"}, {"b"}, {"c"}, // accept
		{"a"}, {"x"}, // hard reset (uncovered in state 1? "!b" covers; x has no b -> Del path)
		{}, {"a"}, {"b"}, {"q"}, // abandon at state 2
	}
	var tr []event.State
	for i := 0; len(tr) < n; i++ {
		tr = append(tr, event.NewState().WithEvents(pattern[i%len(pattern)]...))
	}
	return tr
}

// TestEngineSnapshotRoundTrip runs an engine halfway, snapshots it,
// restores into a fresh engine, finishes both, and demands identical
// stats, state, diagnostics, and scoreboard — the parity property WAL
// recovery relies on. The snapshot crosses a JSON round trip, as it
// does on disk.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeDetect, ModeAssert} {
		m := snapMonitor(t)
		tr := snapTrace(200)
		ref := NewEngine(m, nil, mode)
		ref.EnableDiagnostics(4)
		for _, s := range tr[:117] {
			ref.Step(s)
		}

		snap := ref.Snapshot()
		sbSnap := ref.Scoreboard().Snapshot()
		data, err := json.Marshal(struct {
			E EngineSnapshot
			S ScoreboardSnapshot
		}{snap, sbSnap})
		if err != nil {
			t.Fatal(err)
		}
		var back struct {
			E EngineSnapshot
			S ScoreboardSnapshot
		}
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}

		fresh := NewEngine(snapMonitor(t), nil, mode)
		if err := fresh.Restore(back.E); err != nil {
			t.Fatal(err)
		}
		fresh.Scoreboard().Restore(back.S)

		for _, s := range tr[117:] {
			wantRes := ref.Step(s)
			gotRes := fresh.Step(s)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("mode %v: step diverged: got %+v, want %+v", mode, gotRes, wantRes)
			}
		}
		if ref.Stats() != fresh.Stats() {
			t.Fatalf("mode %v: stats %+v, want %+v", mode, fresh.Stats(), ref.Stats())
		}
		if ref.State() != fresh.State() {
			t.Fatalf("mode %v: state %d, want %d", mode, fresh.State(), ref.State())
		}
		wantDiag, _ := json.Marshal(ref.Diagnostics())
		gotDiag, _ := json.Marshal(fresh.Diagnostics())
		if string(wantDiag) != string(gotDiag) {
			t.Fatalf("mode %v: diagnostics diverged:\n got %s\nwant %s", mode, gotDiag, wantDiag)
		}
		for _, ev := range []string{"a", "b", "c"} {
			if ref.Scoreboard().Count(ev) != fresh.Scoreboard().Count(ev) {
				t.Fatalf("mode %v: scoreboard %s count %d, want %d",
					mode, ev, fresh.Scoreboard().Count(ev), ref.Scoreboard().Count(ev))
			}
		}
	}
}

// TestRestoreValidation checks malformed snapshots are rejected.
func TestRestoreValidation(t *testing.T) {
	e := NewEngine(snapMonitor(t), nil, ModeDetect)
	if err := e.Restore(EngineSnapshot{State: 99}); err == nil {
		t.Error("out-of-range state accepted")
	}
	if err := e.Restore(EngineSnapshot{Tick: -1}); err == nil {
		t.Error("negative tick accepted")
	}
	if err := e.Restore(EngineSnapshot{Diag: &DiagSnapshot{Depth: 3, Ring: make([]event.State, 2)}}); err == nil {
		t.Error("mismatched diag ring accepted")
	}
}

// TestScoreboardSnapshotIsolated checks the snapshot shares no mutable
// structure with the live scoreboard.
func TestScoreboardSnapshotIsolated(t *testing.T) {
	sb := NewScoreboard()
	sb.Add(7, "e1", "e2")
	snap := sb.Snapshot()
	sb.Add(9, "e1")
	i := -1
	for j, name := range snap.Slots {
		if name == "e1" {
			i = j
		}
	}
	if i < 0 || snap.SlotCounts[i] != 1 || len(snap.SlotAddedAt[i]) != 1 {
		t.Fatalf("snapshot mutated by later ops: %+v", snap)
	}
	sb2 := NewScoreboard()
	sb2.Restore(snap)
	if sb2.Count("e1") != 1 || sb2.Count("e2") != 1 || sb2.Ops() != 2 {
		t.Fatalf("restored scoreboard = %s ops=%d", sb2, sb2.Ops())
	}
	if at, ok := sb2.FirstAddedAt("e2"); !ok || at != 7 {
		t.Fatalf("restored timestamp = %d/%v", at, ok)
	}
}
