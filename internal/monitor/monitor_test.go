package monitor

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

func TestActionString(t *testing.T) {
	if got := Add("MCmdRd", "Burst4").String(); got != "Add_evt(MCmdRd, Burst4)" {
		t.Errorf("Add string = %q", got)
	}
	if got := Del("e1").String(); got != "Del_evt(e1)" {
		t.Errorf("Del string = %q", got)
	}
}

// twoStep builds the minimal two-tick monitor: 0 -a-> 1 -b-> 2(final),
// with fallbacks to 0.
func twoStep() *Monitor {
	m := New("two", "clk", 3)
	m.Linear = true
	a := expr.Ev("a")
	b := expr.Ev("b")
	m.AddTransition(0, Transition{To: 1, Guard: a, Actions: []Action{Add("a")}})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(a)})
	m.AddTransition(1, Transition{To: 2, Guard: expr.And(b, expr.Chk("a"))})
	m.AddTransition(1, Transition{To: 1, Guard: expr.And(a, expr.Not(b))})
	m.AddTransition(1, Transition{To: 0, Guard: expr.And(expr.Not(a), expr.Not(b)), Actions: []Action{Del("a")}})
	m.AddTransition(2, Transition{To: 1, Guard: a, Actions: []Action{Del("a"), Add("a")}})
	m.AddTransition(2, Transition{To: 0, Guard: expr.Not(a), Actions: []Action{Del("a")}})
	return m
}

func st(events ...string) event.State {
	return event.NewState().WithEvents(events...)
}

func TestMonitorValidate(t *testing.T) {
	m := twoStep()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid monitor rejected: %v", err)
	}
	bad := New("bad", "clk", 2)
	bad.AddTransition(0, Transition{To: 5, Guard: expr.True})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range target not rejected")
	}
	bad2 := New("bad2", "clk", 2)
	bad2.AddTransition(0, Transition{To: 1, Guard: nil})
	if err := bad2.Validate(); err == nil {
		t.Error("nil guard not rejected")
	}
	bad3 := New("bad3", "clk", 2)
	bad3.AddTransition(0, Transition{To: 1, Guard: expr.True, Actions: []Action{{Kind: ActAdd}}})
	if err := bad3.Validate(); err == nil {
		t.Error("empty action not rejected")
	}
}

func TestMonitorValidateRanges(t *testing.T) {
	m := New("m", "clk", 1)
	m.Final = 3
	if err := m.Validate(); err == nil {
		t.Error("final out of range not rejected")
	}
	m2 := New("m", "clk", 1)
	m2.Initial = -1
	if err := m2.Validate(); err == nil {
		t.Error("initial out of range not rejected")
	}
	m3 := New("m", "clk", 2)
	m3.Violation = 9
	if err := m3.Validate(); err == nil {
		t.Error("violation out of range not rejected")
	}
	var m4 Monitor
	if err := m4.Validate(); err == nil {
		t.Error("zero-state monitor not rejected")
	}
}

func TestEngineAcceptsScenario(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeDetect)
	res := e.Step(st("a"))
	if res.Outcome != Advanced || res.To != 1 {
		t.Fatalf("step 1 = %+v, want advance to 1", res)
	}
	if !e.Scoreboard().Chk("a") {
		t.Fatal("Add_evt(a) not applied")
	}
	res = e.Step(st("b"))
	if res.Outcome != Accepted || res.To != 2 {
		t.Fatalf("step 2 = %+v, want accept at 2", res)
	}
	if got := e.Stats().Accepts; got != 1 {
		t.Errorf("accepts = %d, want 1", got)
	}
}

func TestEngineFallbackReversesScoreboard(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeDetect)
	e.Step(st("a"))
	if !e.Scoreboard().Chk("a") {
		t.Fatal("scoreboard missing a after anchor")
	}
	res := e.Step(st()) // neither a nor b: fall back to 0 with Del_evt(a)
	if res.Outcome != Fellback {
		t.Fatalf("outcome = %v, want fellback", res.Outcome)
	}
	if e.Scoreboard().Chk("a") {
		t.Error("Del_evt(a) not applied on fallback")
	}
}

func TestEngineAssertModeViolation(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.Step(st("a"))
	res := e.Step(st())
	if res.Outcome != Violated {
		t.Fatalf("assert-mode fallback outcome = %v, want violated", res.Outcome)
	}
	if e.Stats().Violations != 1 {
		t.Errorf("violations = %d, want 1", e.Stats().Violations)
	}
}

func TestEngineUncoveredInputHardResets(t *testing.T) {
	m := New("partial", "clk", 3)
	m.Linear = true
	m.AddTransition(0, Transition{To: 1, Guard: expr.Ev("x"), Actions: []Action{Add("x")}})
	m.AddTransition(1, Transition{To: 2, Guard: expr.Ev("y")})
	e := NewEngine(m, nil, ModeDetect)
	e.Step(st("x"))
	if e.State() != 1 {
		t.Fatalf("state = %d, want 1", e.State())
	}
	res := e.Step(st("z")) // uncovered in state 1
	if res.To != 0 || e.State() != 0 {
		t.Fatalf("hard reset expected, got %+v state %d", res, e.State())
	}
	if e.Scoreboard().Chk("x") {
		t.Error("pending Add_evt(x) not reversed on hard reset")
	}
}

func TestEngineViolationStateResets(t *testing.T) {
	m := New("viol", "clk", 3)
	m.Violation = 2
	m.Final = 1
	m.AddTransition(0, Transition{To: 2, Guard: expr.Ev("bad")})
	m.AddTransition(0, Transition{To: 1, Guard: expr.Not(expr.Ev("bad"))})
	e := NewEngine(m, nil, ModeDetect)
	res := e.Step(st("bad"))
	if res.Outcome != Violated {
		t.Fatalf("outcome = %v, want violated", res.Outcome)
	}
	if e.State() != m.Initial {
		t.Errorf("engine not reset after violation sink: state %d", e.State())
	}
}

func TestEngineRepeatedDetection(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeDetect)
	tr := []event.State{st("a"), st("b"), st("a"), st("b"), st(), st("a"), st("b")}
	stats := e.Run(tr)
	if stats.Accepts != 3 {
		t.Errorf("accepts = %d, want 3 (overlapping re-detection)", stats.Accepts)
	}
}

func TestEngineAcceptsResetsBetweenRuns(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeDetect)
	if !e.Accepts([]event.State{st("a"), st("b")}) {
		t.Error("conforming trace not accepted")
	}
	if e.Accepts([]event.State{st("b"), st("a")}) {
		t.Error("non-conforming trace accepted")
	}
}

func TestScoreboardCounts(t *testing.T) {
	sb := NewScoreboard()
	sb.Add(10, "e1", "e2")
	sb.Add(11, "e1")
	if got := sb.Count("e1"); got != 2 {
		t.Errorf("count e1 = %d, want 2", got)
	}
	if !sb.Chk("e2") {
		t.Error("Chk(e2) false after add")
	}
	sb.Del("e1")
	if got := sb.Count("e1"); got != 1 {
		t.Errorf("count e1 after del = %d, want 1", got)
	}
	sb.Del("e1")
	sb.Del("e1") // extra delete is benign
	if sb.Chk("e1") {
		t.Error("Chk(e1) true after full delete")
	}
	if at, ok := sb.FirstAddedAt("e2"); !ok || at != 10 {
		t.Errorf("FirstAddedAt(e2) = %d,%v want 10,true", at, ok)
	}
	if _, ok := sb.FirstAddedAt("e1"); ok {
		t.Error("FirstAddedAt(e1) should report absence")
	}
}

func TestScoreboardLiveAndString(t *testing.T) {
	sb := NewScoreboard()
	sb.Add(0, "b", "a")
	live := sb.Live()
	if len(live) != 2 || live[0] != "a" || live[1] != "b" {
		t.Errorf("live = %v, want [a b]", live)
	}
	s := sb.String()
	if !strings.Contains(s, "a:1") || !strings.Contains(s, "b:1") {
		t.Errorf("string = %q", s)
	}
	sb.Reset()
	if len(sb.Live()) != 0 {
		t.Error("reset did not clear scoreboard")
	}
}

func TestScoreboardConcurrentSafety(t *testing.T) {
	sb := NewScoreboard()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				sb.Add(int64(i), "x")
				sb.Chk("x")
				sb.Del("x")
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := sb.Ops(); got != 8000 {
		t.Errorf("ops = %d, want 8000", got)
	}
}

func TestGuardsDisjointDetectsOverlap(t *testing.T) {
	m := New("overlap", "clk", 2)
	m.AddTransition(0, Transition{To: 1, Guard: expr.Ev("a")})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Ev("a")}) // overlaps
	if ok, _ := m.GuardsDisjoint(); ok {
		t.Error("overlapping guards not detected")
	}
	m2 := twoStep()
	if ok, err := m2.GuardsDisjoint(); !ok {
		t.Errorf("disjoint guards flagged: %v", err)
	}
}

func TestTotalDetectsGap(t *testing.T) {
	m := New("gap", "clk", 2)
	m.AddTransition(0, Transition{To: 1, Guard: expr.Ev("a")})
	// state 0 lacks a !a transition; state 1 lacks everything.
	if ok, _ := m.Total(); ok {
		t.Error("non-total automaton not detected")
	}
	m2 := twoStep()
	if ok, err := m2.Total(); !ok {
		t.Errorf("total automaton flagged: %v", err)
	}
}

func TestGuardLegendAndString(t *testing.T) {
	m := twoStep()
	g := expr.Ev("a")
	m.NameGuard("a", g)
	legend := m.GuardLegend()
	if len(legend) != 1 || legend[0] != "a = a" {
		t.Errorf("legend = %v", legend)
	}
	s := m.String()
	for _, want := range []string{"monitor two", "3 states", "-> 1 on a"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestIsFinalWithFinalsSet(t *testing.T) {
	m := New("f", "clk", 4)
	m.Finals = []int{1, 3}
	if m.IsFinal(0) || m.IsFinal(2) {
		t.Error("non-final reported final")
	}
	if !m.IsFinal(1) || !m.IsFinal(3) {
		t.Error("final not reported")
	}
	m.Finals = nil
	if !m.IsFinal(m.Final) {
		t.Error("single final not honored")
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{
		Advanced: "advanced", Stayed: "stayed", Accepted: "accepted",
		Fellback: "fellback", Violated: "violated",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("outcome %d string = %q, want %q", int(o), o.String(), want)
		}
	}
}
