package monitor

import (
	"fmt"

	"repro/internal/event"
)

// Mode selects how the engine interprets the automaton.
type Mode int

const (
	// ModeDetect runs the monitor as the paper defines it: a detector
	// whose accepting runs witness the specified scenario. Fallbacks are
	// ordinary matching behaviour.
	ModeDetect Mode = iota
	// ModeAssert runs the monitor as a protocol checker: once a scenario
	// has begun (progress beyond the initial state), abandoning it —
	// a backward transition that is not an acceptance, or an input no
	// transition covers — is reported as a violation. This is the mode
	// used when the synthesized monitors check implementations (the
	// paper's future-work application, experiment E12).
	ModeAssert
)

// Outcome classifies a single engine step.
type Outcome int

const (
	// Advanced: moved to a strictly later state (or stayed at a
	// non-initial state on a stutter).
	Advanced Outcome = iota
	// Stayed: remained in the initial state (nothing matched yet).
	Stayed
	// Accepted: reached the final state — the scenario was observed.
	Accepted
	// Fellback: took a backward transition (partial match abandoned or
	// re-anchored). A violation in ModeAssert.
	Fellback
	// Violated: entered the explicit violation state, or fell back /
	// had no enabled transition while in ModeAssert with progress made.
	Violated
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Advanced:
		return "advanced"
	case Stayed:
		return "stayed"
	case Accepted:
		return "accepted"
	case Fellback:
		return "fellback"
	case Violated:
		return "violated"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// StepResult describes what one input element did to the monitor.
type StepResult struct {
	Outcome  Outcome
	From, To int
	// TransIndex is the index (within Trans[From]) of the fired
	// transition, or -1 when no transition covered the input (hard
	// reset). Coverage collectors key on (From, TransIndex).
	TransIndex int
	// Tick is the engine-local tick index of this step (0-based).
	Tick int
}

// Stats aggregates an engine's history.
type Stats struct {
	Steps      int
	Accepts    int
	Violations int
	Fallbacks  int
	// LastAcceptTick is the tick of the most recent acceptance, -1 if none.
	LastAcceptTick int
}

// Engine executes a Monitor over an input trace, one state element per
// clock tick, evaluating guards against the element and the shared
// scoreboard and applying scoreboard actions of fired transitions.
type Engine struct {
	m     *Monitor
	sb    *Scoreboard
	mode  Mode
	state int
	tick  int
	// now yields the global time recorded with Add_evt entries; for a
	// single-clock engine it defaults to the local tick index.
	now   func() int64
	stats Stats
	// pending tracks Add_evt events performed since the last visit to the
	// initial state, so a hard reset (uncovered input) can reverse them.
	pending []string
	// diag, when armed via EnableDiagnostics, retains recent inputs and
	// produces violation reports.
	diag *diagState
	// b, when non-nil, makes the engine evaluate compiled guard programs
	// over packed valuations instead of interpreting guard ASTs (see
	// Program.NewEngine); classification and bookkeeping are shared.
	b *progBinding
}

// NewEngine returns an engine for m over scoreboard sb (a fresh
// scoreboard is created when sb is nil).
func NewEngine(m *Monitor, sb *Scoreboard, mode Mode) *Engine {
	if sb == nil {
		sb = NewScoreboard()
	}
	e := &Engine{m: m, sb: sb, mode: mode, state: m.Initial}
	e.now = func() int64 { return int64(e.tick) }
	e.stats.LastAcceptTick = -1
	return e
}

// SetClockFunc overrides the global-time source used to timestamp
// scoreboard entries (multi-clock coordinators install the global clock).
func (e *Engine) SetClockFunc(now func() int64) { e.now = now }

// State returns the current automaton state.
func (e *Engine) State() int { return e.state }

// Scoreboard returns the engine's scoreboard.
func (e *Engine) Scoreboard() *Scoreboard { return e.sb }

// Stats returns aggregate counts so far.
func (e *Engine) Stats() Stats { return e.stats }

// Monitor returns the automaton being executed.
func (e *Engine) Monitor() *Monitor { return e.m }

// guardContext evaluates guards against an input element plus the
// scoreboard.
type guardContext struct {
	s  event.State
	sb *Scoreboard
}

func (c guardContext) Event(name string) bool { return c.s.Event(name) }
func (c guardContext) Prop(name string) bool  { return c.s.Prop(name) }
func (c guardContext) ChkEvt(name string) bool {
	return c.sb.Chk(name)
}

// Step consumes one input element. It fires the first transition of the
// current state whose guard holds, applies its scoreboard actions, and
// classifies the move. An input covered by no transition hard-resets the
// monitor to its initial state, reversing pending Add_evt entries.
func (e *Engine) Step(s event.State) StepResult {
	if e.diag != nil {
		e.diag.observe(s)
	}
	var fired int
	if e.b != nil {
		e.b.scratch = e.b.prog.sup.PackInto(s, e.b.scratch)
		fired = e.firedPacked(e.b.scratch, nil)
	} else {
		fired = e.firedAST(s)
	}
	return e.finish(fired, s)
}

// StepPacked consumes one packed input element; the engine must have
// been built from a Program. Input packed with the program's support
// uses support slot order (NewEngine); input packed with a session
// vocabulary (NewEngineVocab) is translated through the binding's remap.
// When diagnostics are armed the input is unpacked once for the ring.
func (e *Engine) StepPacked(in event.Packed) StepResult {
	if e.b == nil {
		panic("monitor: StepPacked on an engine without a compiled program")
	}
	var s event.State
	if e.diag != nil {
		s = e.b.unpack(in)
		e.diag.observe(s)
	}
	return e.finish(e.firedPacked(in, e.b.remap), s)
}

// StepFired applies an externally resolved fired-transition index —
// typically a shared Table lookup over a packed batch valuation — and
// classifies the move exactly as Step would. It is only equivalent to
// Step when the resolver sees everything a guard can: the caller must
// restrict it to chk-free monitors (no scoreboard in guards) with
// diagnostics off (no input ring to feed). Actions still apply.
func (e *Engine) StepFired(fired int) StepResult {
	return e.finish(fired, event.State{})
}

// firedAST scans the current state's transitions interpreting guard
// ASTs; it returns the fired transition index or -1.
func (e *Engine) firedAST(s event.State) int {
	ctx := guardContext{s: s, sb: e.sb}
	for i := range e.m.Trans[e.state] {
		if e.m.Trans[e.state][i].Guard.Eval(ctx) {
			return i
		}
	}
	return -1
}

// firedPacked scans the current state's compiled guards over a packed
// valuation, sampling the scoreboard once for all Chk_evt atoms — and
// not at all in states whose guards never test it.
func (e *Engine) firedPacked(in event.Packed, remap []int32) int {
	var chk uint64
	if e.b.prog.chkByState[e.state] {
		chk = e.sb.ChkBits(e.b.chkSlots)
	}
	for i, g := range e.b.prog.guards[e.state] {
		if g.EvalPacked(in, remap, chk) {
			return i
		}
	}
	return -1
}

// finish applies the fired transition (index into Trans[state], -1 for
// none) and classifies the move. s is only consulted for violation
// diagnostics and may be the zero State when diagnostics are off.
func (e *Engine) finish(firedIdx int, s event.State) StepResult {
	res := StepResult{From: e.state, TransIndex: firedIdx, Tick: e.tick}
	e.tick++
	e.stats.Steps++
	if firedIdx < 0 {
		// Uncovered input: hard reset.
		progressed := e.state != e.m.Initial
		e.reversePending()
		res.To = e.m.Initial
		e.state = e.m.Initial
		if progressed && e.mode == ModeAssert {
			e.stats.Violations++
			res.Outcome = Violated
			e.recordViolation(res, s)
		} else {
			res.Outcome = Stayed
		}
		return res
	}
	fired := &e.m.Trans[e.state][firedIdx]
	e.apply(firedIdx, fired)
	from := e.state
	e.state = fired.To
	res.To = fired.To
	switch {
	case e.m.Violation != NoState && fired.To == e.m.Violation:
		e.stats.Violations++
		res.Outcome = Violated
		// Violation sink behaves like a reset for pending bookkeeping.
		e.pending = nil
		e.state = e.m.Initial
		res.To = e.m.Initial
	case e.m.IsFinal(fired.To):
		e.stats.Accepts++
		e.stats.LastAcceptTick = res.Tick
		res.Outcome = Accepted
		e.pending = nil
	case fired.To == e.m.Initial && from != e.m.Initial:
		e.stats.Fallbacks++
		e.pending = nil
		// Abandoning from a final state is a benign reset — the scenario
		// completed; only abandoning in-progress matches violates.
		if e.mode == ModeAssert && !e.m.IsFinal(from) {
			e.stats.Violations++
			res.Outcome = Violated
		} else {
			res.Outcome = Fellback
		}
	case e.m.Linear && fired.To < from:
		// Re-anchor (e.g. KMP fallback to state 1 on a fresh anchor match).
		e.stats.Fallbacks++
		if e.mode == ModeAssert && !e.m.IsFinal(from) {
			e.stats.Violations++
			res.Outcome = Violated
		} else {
			res.Outcome = Fellback
		}
	case fired.To == e.m.Initial:
		res.Outcome = Stayed
	default:
		res.Outcome = Advanced
	}
	if res.Outcome == Violated {
		e.recordViolation(res, s)
	}
	return res
}

// apply performs the fired transition's scoreboard actions, maintaining
// the pending-adds list used for hard resets. Program-bound engines use
// pre-resolved scoreboard slots; the pending list stays name-based so
// snapshots and restores are format-identical across both paths.
func (e *Engine) apply(idx int, t *Transition) {
	if e.b != nil {
		for _, a := range e.b.actions[e.state][idx] {
			switch a.kind {
			case ActAdd:
				e.sb.AddSlots(e.now(), a.slots)
				if !a.sticky {
					e.pending = append(e.pending, a.names...)
				}
			case ActDel:
				e.sb.DelSlots(a.slots)
				e.unpend(a.names)
			}
		}
		return
	}
	for _, a := range t.Actions {
		switch a.Kind {
		case ActAdd:
			e.sb.Add(e.now(), a.Events...)
			if !a.Sticky {
				e.pending = append(e.pending, a.Events...)
			}
		case ActDel:
			e.sb.Del(a.Events...)
			e.unpend(a.Events)
		}
	}
}

func (e *Engine) unpend(events []string) {
	for _, ev := range events {
		for i := len(e.pending) - 1; i >= 0; i-- {
			if e.pending[i] == ev {
				e.pending = append(e.pending[:i], e.pending[i+1:]...)
				break
			}
		}
	}
}

func (e *Engine) reversePending() {
	if len(e.pending) > 0 {
		e.sb.Del(e.pending...)
		e.pending = nil
	}
}

// Run consumes a whole trace and returns the final stats.
func (e *Engine) Run(states []event.State) Stats {
	for _, s := range states {
		e.Step(s)
	}
	return e.stats
}

// Reset returns the engine to its initial state, reversing pending adds;
// accumulated stats are preserved.
func (e *Engine) Reset() {
	e.reversePending()
	e.state = e.m.Initial
}

// Accepts runs the engine over the trace from a fresh state and reports
// whether the scenario was detected at least once. The scoreboard is
// reset first; stats accumulate.
func (e *Engine) Accepts(states []event.State) bool {
	e.sb.Reset()
	e.Reset()
	before := e.stats.Accepts
	e.Run(states)
	return e.stats.Accepts > before
}
