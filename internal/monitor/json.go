package monitor

import (
	"encoding/json"
	"fmt"

	"repro/internal/event"
	"repro/internal/expr"
)

// The JSON form is the interchange format for synthesized monitors:
// stable, diff-friendly, and loadable by other tools (or later versions
// of this one) without re-running synthesis. Guards are serialized in
// the expression language's concrete syntax and re-parsed on load, with
// symbol kinds carried alongside so event/proposition references survive
// the round trip.

type jsonMonitor struct {
	Name      string            `json:"name"`
	Clock     string            `json:"clock"`
	States    int               `json:"states"`
	Initial   int               `json:"initial"`
	Final     int               `json:"final"`
	Finals    []int             `json:"finals,omitempty"`
	Violation int               `json:"violation"`
	Linear    bool              `json:"linear"`
	Symbols   map[string]string `json:"symbols"` // name -> "event"|"prop"
	Trans     [][]jsonTrans     `json:"transitions"`
	Guards    map[string]string `json:"guard_names,omitempty"`
}

type jsonTrans struct {
	To      int          `json:"to"`
	Guard   string       `json:"guard"`
	Actions []jsonAction `json:"actions,omitempty"`
}

type jsonAction struct {
	Kind   string   `json:"kind"` // "add" | "del"
	Events []string `json:"events"`
	Sticky bool     `json:"sticky,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Monitor) MarshalJSON() ([]byte, error) {
	jm := jsonMonitor{
		Name:      m.Name,
		Clock:     m.Clock,
		States:    m.States,
		Initial:   m.Initial,
		Final:     m.Final,
		Finals:    m.Finals,
		Violation: m.Violation,
		Linear:    m.Linear,
		Symbols:   map[string]string{},
		Guards:    m.GuardNames,
	}
	jm.Trans = make([][]jsonTrans, m.States)
	for s, ts := range m.Trans {
		jm.Trans[s] = make([]jsonTrans, 0, len(ts))
		for _, t := range ts {
			jt := jsonTrans{To: t.To, Guard: t.Guard.String()}
			for _, sym := range expr.SupportSymbols(t.Guard) {
				jm.Symbols[sym.Name] = sym.Kind.String()
			}
			for _, a := range t.Actions {
				kind := "add"
				if a.Kind == ActDel {
					kind = "del"
				}
				jt.Actions = append(jt.Actions, jsonAction{Kind: kind, Events: a.Events, Sticky: a.Sticky})
			}
			jm.Trans[s] = append(jm.Trans[s], jt)
		}
	}
	return json.Marshal(jm)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Monitor) UnmarshalJSON(data []byte) error {
	var jm jsonMonitor
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	kindOf := func(name string) (event.Kind, bool) {
		switch jm.Symbols[name] {
		case "prop":
			return event.KindProp, true
		case "event":
			return event.KindEvent, true
		default:
			// Symbols absent from the table (e.g. only referenced via
			// Chk_evt) default to events.
			return event.KindEvent, true
		}
	}
	out := Monitor{
		Name:      jm.Name,
		Clock:     jm.Clock,
		States:    jm.States,
		Initial:   jm.Initial,
		Final:     jm.Final,
		Finals:    jm.Finals,
		Violation: jm.Violation,
		Linear:    jm.Linear,
		Trans:     make([][]Transition, jm.States),
	}
	if jm.Guards != nil {
		out.GuardNames = jm.Guards
	}
	if len(jm.Trans) != jm.States {
		return fmt.Errorf("monitor: json has %d transition rows for %d states", len(jm.Trans), jm.States)
	}
	for s, ts := range jm.Trans {
		for _, jt := range ts {
			g, err := expr.Parse(jt.Guard, kindOf)
			if err != nil {
				return fmt.Errorf("monitor: state %d guard %q: %w", s, jt.Guard, err)
			}
			tr := Transition{To: jt.To, Guard: g}
			for _, ja := range jt.Actions {
				kind := ActAdd
				switch ja.Kind {
				case "add":
				case "del":
					kind = ActDel
				default:
					return fmt.Errorf("monitor: unknown action kind %q", ja.Kind)
				}
				tr.Actions = append(tr.Actions, Action{Kind: kind, Events: ja.Events, Sticky: ja.Sticky})
			}
			out.Trans[s] = append(out.Trans[s], tr)
		}
	}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("monitor: json decodes to invalid monitor: %w", err)
	}
	*m = out
	return nil
}
