package monitor

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

func TestJSONRoundTrip(t *testing.T) {
	m := twoStep()
	m.NameGuard("a", m.Trans[0][0].Guard)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Monitor
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if back.States != m.States || back.Initial != m.Initial || back.Final != m.Final {
		t.Fatalf("shape changed: %d/%d/%d", back.States, back.Initial, back.Final)
	}
	if !back.Linear {
		t.Error("linear flag lost")
	}
	// Behavioural equality on a probe trace.
	probe := []event.State{st("a"), st("b"), st(), st("a"), st("b")}
	e1 := NewEngine(m, nil, ModeDetect)
	e2 := NewEngine(&back, nil, ModeDetect)
	for i, s := range probe {
		r1, r2 := e1.Step(s), e2.Step(s)
		if r1.Outcome != r2.Outcome || r1.To != r2.To {
			t.Fatalf("tick %d: original %v->%d, decoded %v->%d", i, r1.Outcome, r1.To, r2.Outcome, r2.To)
		}
	}
	if len(back.GuardLegend()) != 1 {
		t.Error("guard legend lost")
	}
}

func TestJSONPreservesActionsAndSticky(t *testing.T) {
	m := New("sticky", "clk", 2)
	a := Add("x")
	a.Sticky = true
	m.AddTransition(0, Transition{To: 1, Guard: expr.MustParse("x", nil), Actions: []Action{a, Del("y")}})
	m.AddTransition(0, Transition{To: 0, Guard: expr.MustParse("!x", nil)})
	m.AddTransition(1, Transition{To: 0, Guard: expr.True})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sticky":true`) {
		t.Errorf("sticky flag not serialized: %s", data)
	}
	var back Monitor
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	acts := back.Trans[0][0].Actions
	if len(acts) != 2 || !acts[0].Sticky || acts[0].Kind != ActAdd || acts[1].Kind != ActDel {
		t.Errorf("actions = %+v", acts)
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{`,
		`{"states": 2, "transitions": []}`,
		`{"states": 1, "initial": 0, "final": 0, "violation": -1, "transitions": [[{"to": 5, "guard": "x"}]]}`,
		`{"states": 1, "initial": 0, "final": 0, "violation": -1, "transitions": [[{"to": 0, "guard": "(("}]]}`,
		`{"states": 1, "initial": 0, "final": 0, "violation": -1, "transitions": [[{"to": 0, "guard": "x", "actions": [{"kind": "zap", "events": ["e"]}]}]]}`,
	}
	for i, src := range cases {
		var m Monitor
		if err := json.Unmarshal([]byte(src), &m); err == nil {
			t.Errorf("case %d: corrupt json accepted", i)
		}
	}
}

func TestJSONKindsPreserved(t *testing.T) {
	m := New("kinds", "clk", 2)
	g := expr.And(expr.Pr("p"), expr.Ev("e"))
	m.AddTransition(0, Transition{To: 1, Guard: g})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(g)})
	m.AddTransition(1, Transition{To: 0, Guard: expr.True})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Monitor
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	sup, err := back.Support()
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range sup.Symbols() {
		switch sym.Name {
		case "p":
			if sym.Kind != event.KindProp {
				t.Errorf("p decoded as %v", sym.Kind)
			}
		case "e":
			if sym.Kind != event.KindEvent {
				t.Errorf("e decoded as %v", sym.Kind)
			}
		}
	}
}
