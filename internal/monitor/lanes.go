package monitor

import (
	"fmt"
	"math/bits"
)

// MaxLanes is the width of a LaneBank: one bit-sliced lane per bit of a
// uint64.
const MaxLanes = 64

// laneCountBits is the bit-sliced scoreboard counter width per lane. A
// count about to exceed the 16-bit ceiling marks its lane as spilled
// (see Spilled) instead of wrapping.
const laneCountBits = 16

// LaneBank steps up to 64 independent sessions of one Table in lockstep
// on uint64 lanes. State bits and scoreboard counters are transposed —
// plane p of statePlanes holds bit p of every lane's state, lane L in
// bit L — so the table's transition function is evaluated once per
// distinct (state, scoreboard, valuation) group per tick and the result
// is scattered to every lane of the group with a handful of word ops.
// With homogeneous traffic the 64 lanes collapse to one group and the
// amortized cost per monitor-tick is a few word operations.
//
// Semantics are exactly Compiled's: same table cells, same action
// counters (restricted to guard-tested chk events, the only ones that
// can influence stepping), same same-tick violation-sink reset, same
// accept convention. The differential tests in lanes_test.go and the
// conformance harness hold a LaneBank to byte-identical verdicts
// against per-session Compiled instances.
//
// A LaneBank is single-goroutine, like Compiled.
type LaneBank struct {
	t *Table

	occupied uint64
	spilled  uint64
	ticks    uint64

	// statePlanes[p] bit L = bit p of lane L's state.
	statePlanes []uint64
	// counts[c][p] bit L = bit p of lane L's count of chk event c.
	counts [][laneCountBits]uint64
	// chkNonzero[c] bit L = lane L's count of chk event c is > 0;
	// recomputed from the planes at the top of every step.
	chkNonzero []uint64

	joinTick   [MaxLanes]uint64
	accepts    [MaxLanes]int
	violations [MaxLanes]int
}

// NewLaneBank returns an empty bank over the shared table.
func NewLaneBank(t *Table) *LaneBank {
	planes := bits.Len(uint(t.m.States - 1))
	return &LaneBank{
		t:           t,
		statePlanes: make([]uint64, planes),
		counts:      make([][laneCountBits]uint64, len(t.chkEvents)),
		chkNonzero:  make([]uint64, len(t.chkEvents)),
	}
}

// Table returns the shared transition table the bank steps.
func (b *LaneBank) Table() *Table { return b.t }

// Occupied returns the mask of live lanes.
func (b *LaneBank) Occupied() uint64 { return b.occupied }

// Len returns the number of live lanes.
func (b *LaneBank) Len() int { return bits.OnesCount64(b.occupied) }

// Spilled returns the mask of lanes whose scoreboard counter hit the
// 16-bit lane ceiling. A spilled lane's count is clamped, so it can
// diverge from the unbounded reference once decremented back down —
// callers must evict spilled lanes to a scalar tier. In practice a
// count of 65535 outstanding transactions means the monitored design is
// already broken.
func (b *LaneBank) Spilled() uint64 { return b.spilled }

// Join claims a free lane starting at the initial state with a zero
// scoreboard, exactly like a fresh Compiled instance. ok is false when
// the bank is full.
func (b *LaneBank) Join() (lane int, ok bool) {
	return b.JoinWith(LaneState{State: b.t.m.Initial, Counts: nil})
}

// LaneState is the portable snapshot of one lane: automaton state and
// scoreboard counts indexed by the table's ChkEvents order. It is what
// Snapshot returns and JoinWith / Restore consume, and is the bridge
// for moving a session between a scalar Compiled cursor and a lane.
type LaneState struct {
	State      int
	Counts     []uint32 // by ChkEvents index; nil means all zero
	Steps      int
	Accepts    int
	Violations int
}

// JoinWith claims a free lane seeded from a snapshot (session revival,
// or migration from a scalar tier). ok is false when the bank is full
// or the snapshot is out of range for the lane representation.
func (b *LaneBank) JoinWith(st LaneState) (lane int, ok bool) {
	free := ^b.occupied
	if free == 0 {
		return 0, false
	}
	lane = bits.TrailingZeros64(free)
	if err := b.restore(lane, st); err != nil {
		return 0, false
	}
	b.occupied |= 1 << uint(lane)
	return lane, true
}

// Restore overwrites a live lane from a snapshot.
func (b *LaneBank) Restore(lane int, st LaneState) error {
	if uint(lane) >= MaxLanes || b.occupied&(1<<uint(lane)) == 0 {
		return fmt.Errorf("monitor: restore of dead lane %d", lane)
	}
	return b.restore(lane, st)
}

func (b *LaneBank) restore(lane int, st LaneState) error {
	if st.State < 0 || st.State >= b.t.m.States {
		return fmt.Errorf("monitor: lane state %d out of range", st.State)
	}
	if len(st.Counts) > len(b.t.chkEvents) {
		return fmt.Errorf("monitor: %d lane counts for %d chk events", len(st.Counts), len(b.t.chkEvents))
	}
	bit := uint64(1) << uint(lane)
	for p := range b.statePlanes {
		if st.State&(1<<uint(p)) != 0 {
			b.statePlanes[p] |= bit
		} else {
			b.statePlanes[p] &^= bit
		}
	}
	for c := range b.counts {
		var n uint32
		if c < len(st.Counts) {
			n = st.Counts[c]
		}
		if n >= 1<<laneCountBits {
			return fmt.Errorf("monitor: lane count %d exceeds %d-bit lane ceiling", n, laneCountBits)
		}
		for p := 0; p < laneCountBits; p++ {
			if n&(1<<uint(p)) != 0 {
				b.counts[c][p] |= bit
			} else {
				b.counts[c][p] &^= bit
			}
		}
	}
	b.spilled &^= bit
	b.accepts[lane] = st.Accepts
	b.violations[lane] = st.Violations
	b.joinTick[lane] = b.ticks - uint64(st.Steps)
	return nil
}

// Snapshot captures a live lane's full cursor.
func (b *LaneBank) Snapshot(lane int) (LaneState, error) {
	if uint(lane) >= MaxLanes || b.occupied&(1<<uint(lane)) == 0 {
		return LaneState{}, fmt.Errorf("monitor: snapshot of dead lane %d", lane)
	}
	st := LaneState{
		State:      b.laneState(lane),
		Steps:      int(b.ticks - b.joinTick[lane]),
		Accepts:    b.accepts[lane],
		Violations: b.violations[lane],
	}
	if len(b.counts) > 0 {
		st.Counts = make([]uint32, len(b.counts))
		for c := range b.counts {
			st.Counts[c] = b.laneCount(lane, c)
		}
	}
	return st, nil
}

// Evict releases a lane; its bits are cleared for reuse.
func (b *LaneBank) Evict(lane int) {
	if uint(lane) >= MaxLanes {
		return
	}
	bit := uint64(1) << uint(lane)
	b.occupied &^= bit
	b.spilled &^= bit
}

// State returns lane's current automaton state.
func (b *LaneBank) State(lane int) int { return b.laneState(lane) }

// Steps returns the number of ticks lane has consumed.
func (b *LaneBank) Steps(lane int) int { return int(b.ticks - b.joinTick[lane]) }

// Accepts returns lane's acceptance count.
func (b *LaneBank) Accepts(lane int) int { return b.accepts[lane] }

// Violations returns lane's violation count.
func (b *LaneBank) Violations(lane int) int { return b.violations[lane] }

// Count returns lane's scoreboard count of event e (0 for untracked
// events — only guard-tested chk events are observable to stepping).
func (b *LaneBank) Count(lane int, e string) int {
	c, ok := b.t.chkIndex[e]
	if !ok {
		return 0
	}
	return int(b.laneCount(lane, c))
}

func (b *LaneBank) laneState(lane int) int {
	s := 0
	for p, plane := range b.statePlanes {
		s |= int(plane>>uint(lane)&1) << uint(p)
	}
	return s
}

func (b *LaneBank) laneCount(lane int, c int) uint32 {
	var n uint32
	for p := 0; p < laneCountBits; p++ {
		n |= uint32(b.counts[c][p]>>uint(lane)&1) << uint(p)
	}
	return n
}

// StepUniform feeds the same packed support valuation to every live
// lane — the broadcast-traffic fast path — and returns the lanes that
// accepted and the lanes that entered the violation sink this tick.
func (b *LaneBank) StepUniform(val uint64) (acceptMask, violMask uint64) {
	return b.step(val, nil)
}

// StepAll feeds a per-lane valuation (vals[lane], only live lanes are
// read) and returns the accept and violation lane masks for the tick.
func (b *LaneBank) StepAll(vals *[MaxLanes]uint64) (acceptMask, violMask uint64) {
	return b.step(0, vals)
}

func (b *LaneBank) step(uniform uint64, vals *[MaxLanes]uint64) (acceptMask, violMask uint64) {
	t := b.t
	for c := range b.counts {
		nz := uint64(0)
		for p := 0; p < laneCountBits; p++ {
			nz |= b.counts[c][p]
		}
		b.chkNonzero[c] = nz
	}
	remaining := b.occupied
	for remaining != 0 {
		lead := bits.TrailingZeros64(remaining)
		// Gather the leader's cursor, then intersect planes to find every
		// remaining lane sharing it: the guard evaluates once per group.
		s := b.laneState(lead)
		group := remaining
		for p, plane := range b.statePlanes {
			if s&(1<<uint(p)) != 0 {
				group &= plane
			} else {
				group &= ^plane
			}
		}
		idx := uniform
		if vals != nil {
			idx = vals[lead]
		}
		for c, nz := range b.chkNonzero {
			if nz>>uint(lead)&1 != 0 {
				group &= nz
				idx |= 1 << (t.width + uint(c))
			} else {
				group &= ^nz
			}
		}
		if vals != nil {
			// Per-lane traffic: keep only lanes seeing the leader's valuation;
			// the rest stay in remaining for a later group.
			uniq := group
			for m := group; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if vals[l] != vals[lead] {
					uniq &^= 1 << uint(l)
				}
			}
			group = uniq
		}
		remaining &^= group

		cell := s*t.stride + int(idx&uint64(t.stride-1))
		to := int(t.next[cell])
		ti := t.trans[cell]
		if ti >= 0 {
			for _, op := range t.acts[s][ti] {
				if op.del {
					b.decCount(op.ci, group)
				} else {
					b.incCount(op.ci, group)
				}
			}
		}
		if t.m.Violation != NoState && to == t.m.Violation {
			violMask |= group
			to = t.m.Initial
		}
		for p := range b.statePlanes {
			if to&(1<<uint(p)) != 0 {
				b.statePlanes[p] |= group
			} else {
				b.statePlanes[p] &^= group
			}
		}
		if t.m.IsFinal(to) {
			acceptMask |= group
		}
	}
	b.ticks++
	for m := acceptMask; m != 0; m &= m - 1 {
		b.accepts[bits.TrailingZeros64(m)]++
	}
	for m := violMask; m != 0; m &= m - 1 {
		b.violations[bits.TrailingZeros64(m)]++
	}
	return acceptMask, violMask
}

// incCount adds one to chk slot c of every lane in mask — a ripple-
// carry increment across the bit planes. Lanes already at the ceiling
// saturate and are recorded in spilled.
func (b *LaneBank) incCount(c int, mask uint64) {
	sat := mask
	for p := 0; p < laneCountBits; p++ {
		sat &= b.counts[c][p]
	}
	if sat != 0 {
		b.spilled |= sat
		mask &^= sat
	}
	carry := mask
	for p := 0; p < laneCountBits && carry != 0; p++ {
		old := b.counts[c][p]
		b.counts[c][p] = old ^ carry
		carry &= old
	}
}

// decCount subtracts one from chk slot c of every lane in mask whose
// count is positive (the scoreboard's guarded del), via borrow ripple.
func (b *LaneBank) decCount(c int, mask uint64) {
	nz := uint64(0)
	for p := 0; p < laneCountBits; p++ {
		nz |= b.counts[c][p]
	}
	borrow := mask & nz
	for p := 0; p < laneCountBits && borrow != 0; p++ {
		old := b.counts[c][p]
		b.counts[c][p] = old ^ borrow
		borrow &= ^old
	}
}
