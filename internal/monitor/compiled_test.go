package monitor

import (
	"fmt"
	"testing"

	"repro/internal/expr"
)

func TestCompiledParityTwoStep(t *testing.T) {
	m := twoStep()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, nil, ModeDetect)
	probe := []struct{ evs []string }{
		{nil}, {[]string{"a"}}, {[]string{"b"}}, {[]string{"a"}},
		{[]string{"a", "b"}}, {nil}, {[]string{"b"}}, {[]string{"a"}}, {[]string{"b"}},
	}
	for i, p := range probe {
		s := st(p.evs...)
		got := c.Step(s)
		want := e.Step(s).Outcome == Accepted
		if got != want {
			t.Fatalf("tick %d: compiled=%v engine=%v", i, got, want)
		}
		if c.State() != e.State() {
			t.Fatalf("tick %d: compiled state %d != engine state %d", i, c.State(), e.State())
		}
	}
	if c.Accepts() != e.Stats().Accepts || c.Steps() != e.Stats().Steps {
		t.Errorf("counters diverged: %d/%d vs %d/%d",
			c.Accepts(), c.Steps(), e.Stats().Accepts, e.Stats().Steps)
	}
	if c.TableBytes() <= 0 {
		t.Error("table size not reported")
	}
}

func TestCompiledParityRandom(t *testing.T) {
	m := twoStep()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, nil, ModeDetect)
	// Pseudo-random but deterministic input stream over {a,b}.
	x := uint32(12345)
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		s := st()
		if x&1 != 0 {
			s.Events["a"] = true
		}
		if x&2 != 0 {
			s.Events["b"] = true
		}
		if c.Step(s) != (e.Step(s).Outcome == Accepted) {
			t.Fatalf("diverged at tick %d", i)
		}
	}
}

func TestCompiledReset(t *testing.T) {
	m := twoStep()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(st("a"))
	if c.State() != 1 {
		t.Fatalf("state = %d", c.State())
	}
	c.Reset()
	if c.State() != m.Initial {
		t.Error("reset did not restore initial state")
	}
	// Scoreboard cleared: the b-step requires Chk(a).
	if c.Step(st("b")) {
		t.Error("accepted without scoreboard entry after reset")
	}
}

func TestCompileRejectsWideMonitors(t *testing.T) {
	m := New("wide", "clk", 2)
	var terms []expr.Expr
	for i := 0; i < maxCompileBits+1; i++ {
		terms = append(terms, expr.Ev(fmt.Sprintf("w%02d", i)))
	}
	m.AddTransition(0, Transition{To: 1, Guard: expr.And(terms...)})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(expr.And(terms...))})
	m.AddTransition(1, Transition{To: 0, Guard: expr.True})
	if _, err := Compile(m); err == nil {
		t.Error("oversized table accepted")
	}
}

func TestCompileRejectsInvalidMonitor(t *testing.T) {
	bad := New("bad", "clk", 2)
	bad.AddTransition(0, Transition{To: 7, Guard: expr.True})
	if _, err := Compile(bad); err == nil {
		t.Error("invalid monitor compiled")
	}
}
