// Package monitor implements the paper's assertion monitor: a finite
// automaton <Q, Sigma, delta, s0, sf> whose transitions are labelled
// exp/act — a logical expression over EVENTS and PROP (including the
// scoreboard predicate Chk_evt) plus scoreboard actions Add_evt / Del_evt.
// Transitions are instantaneous and separated by single clock ticks,
// following the synchronous model. A sequence of transitions from the
// initial to the final state is an accepting run; the corresponding input
// trace is a finite word of the monitor's language.
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/expr"
)

// ActionKind distinguishes scoreboard operations.
type ActionKind int

const (
	// ActAdd is the paper's Add_evt: record event occurrences.
	ActAdd ActionKind = iota
	// ActDel is the paper's Del_evt: erase recorded occurrences (used on
	// backward transitions to reverse Add_evt actions of the abandoned
	// forward path).
	ActDel
)

// String returns Add_evt or Del_evt.
func (k ActionKind) String() string {
	if k == ActAdd {
		return "Add_evt"
	}
	return "Del_evt"
}

// Action is one scoreboard operation over a set of events.
type Action struct {
	Kind   ActionKind
	Events []string
	// Sticky marks Add_evt entries that record genuine cross-domain
	// event occurrences: they are not reversed when the engine abandons
	// the local window (see synth.InstrumentCrossDomain).
	Sticky bool
}

// String renders e.g. "Add_evt(MCmdRd, Burst4)".
func (a Action) String() string {
	return fmt.Sprintf("%s(%s)", a.Kind, strings.Join(a.Events, ", "))
}

// Add returns an Add_evt action.
func Add(events ...string) Action { return Action{Kind: ActAdd, Events: events} }

// Del returns a Del_evt action.
func Del(events ...string) Action { return Action{Kind: ActDel, Events: events} }

// Transition is one guarded edge of the monitor automaton.
type Transition struct {
	To      int
	Guard   expr.Expr
	Actions []Action
}

// String renders "-> 3 on a / Add_evt(e1)".
func (t Transition) String() string {
	s := fmt.Sprintf("-> %d on %s", t.To, t.Guard)
	for _, a := range t.Actions {
		s += " / " + a.String()
	}
	return s
}

// NoState marks an absent optional state (e.g. no violation state).
const NoState = -1

// Monitor is the synthesized automaton. States are integers 0..States-1;
// by the paper's construction for an SCESC of n ticks, States = n+1 with
// Initial = 0 and Final = n. Composition operators may introduce an
// explicit Violation sink for assertion mode.
type Monitor struct {
	Name   string
	Clock  string
	States int
	// Initial and Final are the paper's s0 and sf.
	Initial, Final int
	// Finals optionally lists additional accepting states produced by
	// composition (subset construction can yield several); when nil the
	// single Final applies.
	Finals []int
	// Linear marks monitors whose states are ordered by match progress
	// (the direct SCESC translation); the engine's fallback/violation
	// heuristics in assert mode rely on it.
	Linear bool
	// Violation is an explicit failure sink (NoState if none).
	Violation int
	// Trans lists the outgoing transitions per state. The engine fires
	// the first transition whose guard holds; synthesis produces disjoint
	// guards so order is immaterial for synthesized monitors.
	Trans [][]Transition
	// GuardNames optionally names guards for table rendering, mirroring
	// the paper's a, b, c... legends (keyed by guard string form).
	GuardNames map[string]string
}

// New returns a monitor with n states and no transitions.
func New(name, clock string, n int) *Monitor {
	return &Monitor{
		Name:      name,
		Clock:     clock,
		States:    n,
		Initial:   0,
		Final:     n - 1,
		Violation: NoState,
		Trans:     make([][]Transition, n),
	}
}

// IsFinal reports whether s is an accepting state.
func (m *Monitor) IsFinal(s int) bool {
	if len(m.Finals) == 0 {
		return s == m.Final
	}
	for _, f := range m.Finals {
		if f == s {
			return true
		}
	}
	return false
}

// AddTransition appends an edge from state `from`.
func (m *Monitor) AddTransition(from int, t Transition) {
	m.Trans[from] = append(m.Trans[from], t)
}

// NumTransitions counts all edges.
func (m *Monitor) NumTransitions() int {
	n := 0
	for _, ts := range m.Trans {
		n += len(ts)
	}
	return n
}

// Validate checks structural sanity: state indices in range, non-nil
// guards, initial/final valid.
func (m *Monitor) Validate() error {
	if m.States <= 0 {
		return fmt.Errorf("monitor %q: no states", m.Name)
	}
	if m.Initial < 0 || m.Initial >= m.States {
		return fmt.Errorf("monitor %q: initial state %d out of range", m.Name, m.Initial)
	}
	if m.Final < 0 || m.Final >= m.States {
		return fmt.Errorf("monitor %q: final state %d out of range", m.Name, m.Final)
	}
	if m.Violation != NoState && (m.Violation < 0 || m.Violation >= m.States) {
		return fmt.Errorf("monitor %q: violation state %d out of range", m.Name, m.Violation)
	}
	if len(m.Trans) != m.States {
		return fmt.Errorf("monitor %q: transition table has %d rows for %d states",
			m.Name, len(m.Trans), m.States)
	}
	for s, ts := range m.Trans {
		for i, t := range ts {
			if t.Guard == nil {
				return fmt.Errorf("monitor %q: state %d transition %d has nil guard", m.Name, s, i)
			}
			if t.To < 0 || t.To >= m.States {
				return fmt.Errorf("monitor %q: state %d transition %d targets %d (out of range)",
					m.Name, s, i, t.To)
			}
			for _, a := range t.Actions {
				if len(a.Events) == 0 {
					return fmt.Errorf("monitor %q: state %d transition %d has empty %s action",
						m.Name, s, i, a.Kind)
				}
			}
		}
	}
	return nil
}

// Support returns the input symbols referenced by any guard.
func (m *Monitor) Support() (*event.Support, error) {
	var syms []event.Symbol
	for _, ts := range m.Trans {
		for _, t := range ts {
			syms = append(syms, expr.SupportSymbols(t.Guard)...)
		}
	}
	return event.NewSupport(syms)
}

// GuardsDisjoint reports whether, in every state, at most one guard can
// hold per input valuation (ignoring Chk_evt, which is checked separately
// at runtime). Used by tests on synthesized monitors.
func (m *Monitor) GuardsDisjoint() (bool, error) {
	sup, err := m.Support()
	if err != nil {
		return false, err
	}
	for s, ts := range m.Trans {
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				a := stripChk(ts[i].Guard)
				b := stripChk(ts[j].Guard)
				if expr.Compatible(a, b, sup) {
					// Same input class may still be distinguished by
					// Chk_evt; only flag when both lack Chk refs.
					if len(expr.ChkRefs(ts[i].Guard)) == 0 && len(expr.ChkRefs(ts[j].Guard)) == 0 {
						return false, fmt.Errorf("monitor %q: state %d guards %d and %d overlap: %s vs %s",
							m.Name, s, i, j, ts[i].Guard, ts[j].Guard)
					}
				}
			}
		}
	}
	return true, nil
}

// Total reports whether every state has a transition for every input
// valuation (treating Chk_evt as satisfiable either way).
func (m *Monitor) Total() (bool, error) {
	sup, err := m.Support()
	if err != nil {
		return false, err
	}
	for s, ts := range m.Trans {
		guards := make([]expr.Expr, 0, len(ts))
		for _, t := range ts {
			guards = append(guards, stripChk(t.Guard))
		}
		cover := expr.Or(guards...)
		if !expr.Valid(cover, sup) {
			return false, fmt.Errorf("monitor %q: state %d transition guards do not cover all inputs", m.Name, s)
		}
		_ = s
	}
	return true, nil
}

// HasActions reports whether any transition carries scoreboard actions.
// Actionless monitors never touch the shared scoreboard, which widens
// the set of execution tiers that behave identically on hard resets
// (the table tier cannot reverse pending actions the way the engines
// do, so differential checks gate on this).
func (m *Monitor) HasActions() bool {
	for _, ts := range m.Trans {
		for _, t := range ts {
			if len(t.Actions) > 0 {
				return true
			}
		}
	}
	return false
}

// stripChk replaces Chk_evt(...) atoms by true, projecting a guard onto
// its input part.
func stripChk(e expr.Expr) expr.Expr {
	switch v := e.(type) {
	case expr.ChkExpr:
		return expr.True
	case expr.NotExpr:
		return expr.Not(stripChk(v.X))
	case expr.AndExpr:
		xs := make([]expr.Expr, len(v.Xs))
		for i, x := range v.Xs {
			xs[i] = stripChk(x)
		}
		return expr.And(xs...)
	case expr.OrExpr:
		xs := make([]expr.Expr, len(v.Xs))
		for i, x := range v.Xs {
			xs[i] = stripChk(x)
		}
		return expr.Or(xs...)
	default:
		return e
	}
}

// NameGuard records a display name for a guard, mirroring the paper's
// per-figure guard legends.
func (m *Monitor) NameGuard(name string, g expr.Expr) {
	if m.GuardNames == nil {
		m.GuardNames = make(map[string]string)
	}
	m.GuardNames[g.String()] = name
}

// GuardLegend returns "name = expr" lines sorted by name.
func (m *Monitor) GuardLegend() []string {
	var out []string
	for g, n := range m.GuardNames {
		out = append(out, fmt.Sprintf("%s = %s", n, g))
	}
	sort.Strings(out)
	return out
}

// String renders a readable transition table.
func (m *Monitor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "monitor %s (clock %s): %d states, initial %d, final %d",
		m.Name, m.Clock, m.States, m.Initial, m.Final)
	if m.Violation != NoState {
		fmt.Fprintf(&b, ", violation %d", m.Violation)
	}
	b.WriteByte('\n')
	for s, ts := range m.Trans {
		for _, t := range ts {
			fmt.Fprintf(&b, "  %d %s\n", s, t)
		}
	}
	for _, l := range m.GuardLegend() {
		fmt.Fprintf(&b, "  where %s\n", l)
	}
	return b.String()
}
