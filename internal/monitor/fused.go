package monitor

import (
	"fmt"
	"math/bits"

	"repro/internal/event"
)

// maxFusedMonitors bounds a fused set: verdict masks are one byte.
const maxFusedMonitors = 8

// maxFusedCells caps the product table footprint (cells, not bytes).
const maxFusedCells = 1 << 20

// FusedTable product-steps a small set of chk-free monitors as one
// automaton: the product state × union-support valuation transition
// function is precomputed, so a tick for the whole set is a single
// table load regardless of how many monitors it fuses. Violation-sink
// resets are folded into the stored target state per component, and the
// per-component accept/violation verdicts of each cell are stored as
// bit masks alongside it.
//
// Only chk-free monitors fuse: a scoreboard-testing guard would make
// the transition function depend on unbounded counter state that a
// finite product cannot enumerate — those monitors stay on the Compiled
// or LaneBank tiers. Scoreboard actions are permitted but their counts
// are not maintained (they are unobservable to chk-free stepping);
// callers needing Count parity use per-monitor tiers.
type FusedTable struct {
	ms  []*Monitor
	sup *event.Support // union support; index bits follow it

	stride int // 1 << union support bits
	next   []uint32
	accept []uint8
	viol   []uint8

	state      int
	steps      int
	accepts    [maxFusedMonitors]int
	violations [maxFusedMonitors]int
}

// NewFusedTable builds the product table of ms over their union
// support. It fails on non-chk-free monitors, more than 8 monitors, or
// a product exceeding the cell cap.
func NewFusedTable(ms []*Monitor) (*FusedTable, error) {
	if len(ms) == 0 || len(ms) > maxFusedMonitors {
		return nil, fmt.Errorf("monitor: fused set of %d monitors (want 1..%d)", len(ms), maxFusedMonitors)
	}
	tables := make([]*Table, len(ms))
	var sup *event.Support
	for i, m := range ms {
		t, err := CompileTable(m)
		if err != nil {
			return nil, fmt.Errorf("monitor: fusing %q: %w", m.Name, err)
		}
		if !t.ChkFree() {
			return nil, fmt.Errorf("monitor: %q tests the scoreboard; chk guards do not fuse", m.Name)
		}
		tables[i] = t
		if sup == nil {
			sup = t.Support()
		} else if sup, err = sup.Union(t.Support()); err != nil {
			return nil, fmt.Errorf("monitor: fusing %q: %w", m.Name, err)
		}
	}
	productStates := 1
	for _, m := range ms {
		productStates *= m.States
		if productStates > maxFusedCells {
			return nil, fmt.Errorf("monitor: fused product of states alone exceeds %d cells", maxFusedCells)
		}
	}
	if cells := productStates << uint(sup.Len()); cells > maxFusedCells {
		return nil, fmt.Errorf("monitor: fused product of %d states x %d valuations exceeds %d cells",
			productStates, uint64(1)<<uint(sup.Len()), maxFusedCells)
	}
	f := &FusedTable{ms: ms, sup: sup, stride: 1 << uint(sup.Len())}
	// remap[i][b] is the union-support bit feeding monitor i's support
	// bit b.
	remap := make([][]int, len(ms))
	for i, t := range tables {
		remap[i] = make([]int, t.Support().Len())
		for b, sym := range t.Support().Symbols() {
			remap[i][b] = sup.Index(sym.Name)
		}
	}
	f.next = make([]uint32, productStates*f.stride)
	f.accept = make([]uint8, len(f.next))
	f.viol = make([]uint8, len(f.next))
	comp := make([]int, len(ms))
	for ps := 0; ps < productStates; ps++ {
		decodeProduct(ms, ps, comp)
		for v := 0; v < f.stride; v++ {
			var acceptMask, violMask uint8
			nps := 0
			radix := 1
			for i, t := range tables {
				mv := uint64(0)
				for b, ub := range remap[i] {
					mv |= uint64(v>>uint(ub)&1) << uint(b)
				}
				to, _ := t.Lookup(comp[i], mv)
				if ms[i].Violation != NoState && to == ms[i].Violation {
					violMask |= 1 << uint(i)
					to = ms[i].Initial
				}
				if ms[i].IsFinal(to) {
					acceptMask |= 1 << uint(i)
				}
				nps += to * radix
				radix *= ms[i].States
			}
			cell := ps*f.stride + v
			f.next[cell] = uint32(nps)
			f.accept[cell] = acceptMask
			f.viol[cell] = violMask
		}
	}
	f.state = encodeProduct(ms, initialStates(ms))
	return f, nil
}

func initialStates(ms []*Monitor) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Initial
	}
	return out
}

func encodeProduct(ms []*Monitor, comp []int) int {
	ps, radix := 0, 1
	for i, m := range ms {
		ps += comp[i] * radix
		radix *= m.States
	}
	return ps
}

func decodeProduct(ms []*Monitor, ps int, comp []int) {
	for i, m := range ms {
		comp[i] = ps % m.States
		ps /= m.States
	}
}

// Support returns the union support the valuation bits follow.
func (f *FusedTable) Support() *event.Support { return f.sup }

// Monitors returns the fused set in mask-bit order.
func (f *FusedTable) Monitors() []*Monitor { return f.ms }

// TableBytes reports the product table footprint.
func (f *FusedTable) TableBytes() int { return 6 * len(f.next) }

// Step consumes one union-support valuation for the whole set: bit i of
// the returned masks is monitor i's accept / violation verdict.
func (f *FusedTable) Step(val uint64) (acceptMask, violMask uint8) {
	cell := f.state*f.stride + int(val&uint64(f.stride-1))
	f.state = int(f.next[cell])
	acceptMask = f.accept[cell]
	violMask = f.viol[cell]
	f.steps++
	for m := acceptMask; m != 0; m &= m - 1 {
		f.accepts[bits.TrailingZeros8(m)]++
	}
	for m := violMask; m != 0; m &= m - 1 {
		f.violations[bits.TrailingZeros8(m)]++
	}
	return acceptMask, violMask
}

// StepState packs a full input element onto the union support and
// steps.
func (f *FusedTable) StepState(s event.State) (acceptMask, violMask uint8) {
	return f.Step(uint64(f.sup.Valuation(s)))
}

// States returns the component automaton states in set order.
func (f *FusedTable) States() []int {
	comp := make([]int, len(f.ms))
	decodeProduct(f.ms, f.state, comp)
	return comp
}

// Steps returns the number of ticks consumed.
func (f *FusedTable) Steps() int { return f.steps }

// Accepts returns monitor i's acceptance count.
func (f *FusedTable) Accepts(i int) int { return f.accepts[i] }

// Violations returns monitor i's violation count.
func (f *FusedTable) Violations(i int) int { return f.violations[i] }

// Reset returns every component to its initial state; counters are
// preserved, matching Compiled.Reset.
func (f *FusedTable) Reset() { f.state = encodeProduct(f.ms, initialStates(f.ms)) }
