package monitor

import (
	"encoding/json"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

// provMonitor builds a complete (total-guard) monitor with an explicit
// violation sink, scoreboard traffic, and guards deep enough to exercise
// program decompilation: and/or/not over events plus Chk_evt.
func provMonitor() *Monitor {
	m := New("prov", "clk", 4)
	m.Linear = true
	m.Final = 2
	m.Violation = 3
	// State 0: advance on a (or the x&&y alias); noise records tok.
	m.AddTransition(0, Transition{To: 1, Guard: expr.Or(expr.Ev("a"), expr.And(expr.Ev("x"), expr.Ev("y")))})
	m.AddTransition(0, Transition{To: 0,
		Guard:   expr.Not(expr.Or(expr.Ev("a"), expr.And(expr.Ev("x"), expr.Ev("y")))),
		Actions: []Action{Add("tok")}})
	// State 1: accept only when tok was seen; everything else violates.
	m.AddTransition(1, Transition{To: 2, Guard: expr.And(expr.Ev("b"), expr.Chk("tok")), Actions: []Action{Del("tok")}})
	m.AddTransition(1, Transition{To: 3, Guard: expr.And(expr.Ev("b"), expr.Not(expr.Chk("tok")))})
	m.AddTransition(1, Transition{To: 3, Guard: expr.Not(expr.Ev("b"))})
	// Final and sink re-arm unconditionally (the sink is never dwelt in:
	// engines reset to initial in the violating tick).
	m.AddTransition(2, Transition{To: 0, Guard: expr.True})
	m.AddTransition(3, Transition{To: 0, Guard: expr.True})
	return m
}

// provTrace drives two violations: first the chk-guard branch (b with no
// tok recorded), then the !b branch with tok live on the scoreboard.
func provTrace() []event.State {
	return []event.State{
		st("a"),      // 0 -> 1, no tok yet
		st("b"),      // b && !Chk(tok): violation 1
		st(),         // noise at 0, Add tok
		st("x", "y"), // alias advance 0 -> 1
		st(),         // !b: violation 2, tok live
		st("a"),      // 0 -> 1
		st("b"),      // accept (tok live), Del tok
	}
}

// diagJSON normalizes reports for cross-tier comparison.
func diagJSON(t *testing.T, diags []Diagnostic) string {
	t.Helper()
	b, err := json.Marshal(diags)
	if err != nil {
		t.Fatalf("marshal diagnostics: %v", err)
	}
	return string(b)
}

// TestProvenanceIdenticalAcrossTiers is the conformance-style check the
// observability plane promises: the interpreted engine, the compiled
// guard-program engine (map input and vocabulary-packed input), and the
// transition-table tier must emit byte-identical structured provenance
// for the same violations.
func TestProvenanceIdenticalAcrossTiers(t *testing.T) {
	m := provMonitor()
	trace := provTrace()
	const depth = 3

	// Tier 1: interpreted AST engine.
	interp := NewEngine(m, nil, ModeDetect)
	interp.EnableDiagnostics(depth)
	for _, s := range trace {
		interp.Step(s)
	}

	// Tier 2a: program engine fed map states.
	p, err := CompileProgram(m)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	prog := p.NewEngine(nil, ModeDetect)
	prog.EnableDiagnostics(depth)
	for _, s := range trace {
		prog.Step(s)
	}

	// Tier 2b: program engine fed valuations packed with a session
	// vocabulary that is a strict superset of the support, so the remap
	// and diagnostic unpack paths are exercised.
	v := event.NewVocabulary()
	v.MustDeclare("unrelated", event.KindEvent)
	if err := v.DeclareSupport(p.Support()); err != nil {
		t.Fatalf("DeclareSupport: %v", err)
	}
	v.MustDeclare("trailing", event.KindProp)
	packed, err := p.NewEngineVocab(nil, ModeDetect, v)
	if err != nil {
		t.Fatalf("NewEngineVocab: %v", err)
	}
	packed.EnableDiagnostics(depth)
	for _, s := range trace {
		packed.StepPacked(v.Pack(s))
	}

	// Tier 3: transition-table tier.
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c.EnableDiagnostics(depth)
	for _, s := range trace {
		c.Step(s)
	}

	want := diagJSON(t, interp.Diagnostics())
	if len(interp.Diagnostics()) != 2 {
		t.Fatalf("interpreted tier recorded %d diagnostics, want 2:\n%s",
			len(interp.Diagnostics()), want)
	}
	for name, got := range map[string]string{
		"program":        diagJSON(t, prog.Diagnostics()),
		"program/packed": diagJSON(t, packed.Diagnostics()),
		"table":          diagJSON(t, c.Diagnostics()),
	} {
		if got != want {
			t.Errorf("%s tier provenance diverged:\n got %s\nwant %s", name, got, want)
		}
	}

	// Spot-check the provenance content itself.
	d := interp.Diagnostics()[0]
	if d.Monitor != "prov" || d.FromState != 1 || d.GridLine != 1 {
		t.Errorf("first violation site = %q state %d line %d", d.Monitor, d.FromState, d.GridLine)
	}
	if d.Guard != "b & !Chk_evt(tok)" {
		t.Errorf("first violation guard = %q", d.Guard)
	}
	if len(d.Guards) != 3 || d.Guards[0] != "b & Chk_evt(tok)" {
		t.Errorf("candidate guards = %v", d.Guards)
	}
	if len(d.Scoreboard) != 0 {
		t.Errorf("first violation scoreboard = %v, want empty", d.Scoreboard)
	}
	d2 := interp.Diagnostics()[1]
	if d2.Guard != "!b" || len(d2.Scoreboard) != 1 || d2.Scoreboard[0] != "tok" {
		t.Errorf("second violation guard/scoreboard = %q / %v", d2.Guard, d2.Scoreboard)
	}
	if d2.Valuation != 0 {
		t.Errorf("second violation valuation = %d, want 0 (empty input)", d2.Valuation)
	}
}

// TestGuardStringMatchesAST verifies the decompile-based rendering: every
// compiled guard, rendered purely from the program's slot names, equals
// the source AST's String().
func TestGuardStringMatchesAST(t *testing.T) {
	m := provMonitor()
	p, err := CompileProgram(m)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	for s, ts := range m.Trans {
		for i, tr := range ts {
			if got, want := p.GuardString(s, i), tr.Guard.String(); got != want {
				t.Errorf("state %d trans %d: GuardString = %q, want %q", s, i, got, want)
			}
		}
	}
	if p.GuardString(-1, 0) != "" || p.GuardString(0, 99) != "" {
		t.Error("out-of-range GuardString should be empty")
	}
}

// TestProvenanceHardReset covers the no-guard-matched case: a partial
// monitor's uncovered input in assert mode reports an empty Guard and
// the full candidate list that all evaluated false.
func TestProvenanceHardReset(t *testing.T) {
	m := New("partial", "clk", 3)
	m.Linear = true
	m.AddTransition(0, Transition{To: 1, Guard: expr.Ev("x")})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(expr.Ev("x"))})
	m.AddTransition(1, Transition{To: 2, Guard: expr.Ev("y")})

	p, err := CompileProgram(m)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	for name, e := range map[string]*Engine{
		"interpreted": NewEngine(m, nil, ModeAssert),
		"program":     p.NewEngine(nil, ModeAssert),
	} {
		e.EnableDiagnostics(2)
		e.Step(st("x"))
		e.Step(st("z"))
		diags := e.Diagnostics()
		if len(diags) != 1 {
			t.Fatalf("%s: diagnostics = %d, want 1", name, len(diags))
		}
		d := diags[0]
		if d.Guard != "" {
			t.Errorf("%s: hard reset guard = %q, want empty", name, d.Guard)
		}
		if len(d.Guards) != 1 || d.Guards[0] != "y" {
			t.Errorf("%s: candidate guards = %v, want [y]", name, d.Guards)
		}
	}
}

// TestDiagnosticsRingDropsOldest pins the bounded-ring retention: once
// the cap is reached new reports displace the oldest, so the retained
// window always ends at the most recent violation.
func TestDiagnosticsRingDropsOldest(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(2)
	for i := 0; i < maxDiagnostics+5; i++ {
		e.Step(st("a"))
		e.Step(st())
	}
	diags := e.Diagnostics()
	if len(diags) != maxDiagnostics {
		t.Fatalf("retained %d, want %d", len(diags), maxDiagnostics)
	}
	// Violations fire on every second step (odd ticks 1, 3, 5, ...); the
	// newest retained report must be the final violation.
	lastTick := (maxDiagnostics+5)*2 - 1
	if got := diags[len(diags)-1].Tick; got != lastTick {
		t.Errorf("newest retained tick = %d, want %d", got, lastTick)
	}
	if got := diags[0].Tick; got != lastTick-2*(maxDiagnostics-1) {
		t.Errorf("oldest retained tick = %d, want %d", got, lastTick-2*(maxDiagnostics-1))
	}
}
