package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scoreboard is the paper's dynamic scoreboard: it records event
// occurrences so that causality checks (Chk_evt) can be evaluated within
// a clock domain and across domains. Local monitors of different clock
// domains share one scoreboard and synchronize through it, so all
// operations are safe for concurrent use.
//
// Entries are reference-counted: Add_evt increments, Del_evt decrements
// (never below zero), Chk_evt is true while the count is positive. Each
// Add records the global time at which it happened, enabling cross-domain
// ordering diagnostics.
//
// Internally the scoreboard is index-based: event names are interned
// into dense slots on first use and counts live in a slice, so the
// name-keyed API pays one map lookup while the slot API used by compiled
// monitor programs (Slot / AddSlot / DelSlot / ChkBits) touches only
// slice cells. Slots are stable for the scoreboard's lifetime — Reset
// and Restore keep the interner so bound engines stay valid.
type Scoreboard struct {
	mu      sync.Mutex
	index   map[string]int32
	names   []string
	counts  []int32
	addedAt [][]int64
	ops     uint64
}

// NewScoreboard returns an empty scoreboard.
func NewScoreboard() *Scoreboard {
	return &Scoreboard{index: make(map[string]int32)}
}

// slotLocked interns name, returning its slot. Caller holds sb.mu.
func (sb *Scoreboard) slotLocked(name string) int32 {
	if i, ok := sb.index[name]; ok {
		return i
	}
	i := int32(len(sb.names))
	sb.index[name] = i
	sb.names = append(sb.names, name)
	sb.counts = append(sb.counts, 0)
	sb.addedAt = append(sb.addedAt, nil)
	return i
}

// Slot interns name and returns its stable slot index — the binding
// step compiled monitor programs perform once per engine, so that every
// later scoreboard operation is an index into slice counters.
func (sb *Scoreboard) Slot(name string) int32 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.slotLocked(name)
}

// Slots reports the number of interned slots — the scoreboard's
// resident width, live or not. The server's memory accounting prices a
// session's footprint from it.
func (sb *Scoreboard) Slots() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return len(sb.names)
}

// SlotName returns the event name interned at slot i.
func (sb *Scoreboard) SlotName(i int32) string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.names[i]
}

// Add records one occurrence of each named event at global time now.
func (sb *Scoreboard) Add(now int64, events ...string) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, e := range events {
		i := sb.slotLocked(e)
		sb.counts[i]++
		sb.addedAt[i] = append(sb.addedAt[i], now)
		sb.ops++
	}
}

// AddSlots records one occurrence of each slot at global time now.
func (sb *Scoreboard) AddSlots(now int64, slots []int32) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, i := range slots {
		sb.counts[i]++
		sb.addedAt[i] = append(sb.addedAt[i], now)
		sb.ops++
	}
}

// Del erases one recorded occurrence of each named event (no-op when the
// count is already zero — deleting an absent event is benign, matching
// the reversal semantics of backward transitions that may race with
// resets).
func (sb *Scoreboard) Del(events ...string) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, e := range events {
		sb.delLocked(sb.slotLocked(e))
	}
}

// DelSlots erases one recorded occurrence of each slot.
func (sb *Scoreboard) DelSlots(slots []int32) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, i := range slots {
		sb.delLocked(i)
	}
}

func (sb *Scoreboard) delLocked(i int32) {
	if sb.counts[i] > 0 {
		sb.counts[i]--
		if ts := sb.addedAt[i]; len(ts) > 0 {
			sb.addedAt[i] = ts[:len(ts)-1]
		}
	}
	sb.ops++
}

// Chk implements the Chk_evt predicate: event e is currently recorded.
func (sb *Scoreboard) Chk(e string) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if i, ok := sb.index[e]; ok {
		return sb.counts[i] > 0
	}
	return false
}

// ChkBits evaluates Chk_evt for up to 64 slots in one lock acquisition:
// bit i of the result is set when slots[i] is currently recorded. This
// is how a compiled monitor program samples the scoreboard once per tick
// instead of once per Chk_evt atom.
func (sb *Scoreboard) ChkBits(slots []int32) uint64 {
	if len(slots) == 0 {
		return 0
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	var bits uint64
	for i, s := range slots {
		if sb.counts[s] > 0 {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// Count returns the current occurrence count of e.
func (sb *Scoreboard) Count(e string) int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if i, ok := sb.index[e]; ok {
		return int(sb.counts[i])
	}
	return 0
}

// FirstAddedAt returns the global time of the oldest live occurrence of
// e, and whether one exists.
func (sb *Scoreboard) FirstAddedAt(e string) (int64, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	i, ok := sb.index[e]
	if !ok || len(sb.addedAt[i]) == 0 {
		return 0, false
	}
	return sb.addedAt[i][0], true
}

// Reset clears all entries. Interned slots are kept (engines bound to
// them remain valid); only counts and timestamps are dropped.
func (sb *Scoreboard) Reset() {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for i := range sb.counts {
		sb.counts[i] = 0
		sb.addedAt[i] = nil
	}
}

// Ops returns the total number of Add/Del operations performed, for the
// scoreboard-overhead benches.
func (sb *Scoreboard) Ops() uint64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.ops
}

// Live returns the names with positive counts, sorted.
func (sb *Scoreboard) Live() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	var out []string
	for i, c := range sb.counts {
		if c > 0 {
			out = append(out, sb.names[i])
		}
	}
	sort.Strings(out)
	return out
}

// String renders e.g. "scoreboard{MCmdRd:1, Burst4:1}".
func (sb *Scoreboard) String() string {
	live := sb.Live()
	sb.mu.Lock()
	defer sb.mu.Unlock()
	parts := make([]string, 0, len(live))
	for _, e := range live {
		parts = append(parts, fmt.Sprintf("%s:%d", e, sb.counts[sb.index[e]]))
	}
	return "scoreboard{" + strings.Join(parts, ", ") + "}"
}
