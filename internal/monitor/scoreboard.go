package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scoreboard is the paper's dynamic scoreboard: it records event
// occurrences so that causality checks (Chk_evt) can be evaluated within
// a clock domain and across domains. Local monitors of different clock
// domains share one scoreboard and synchronize through it, so all
// operations are safe for concurrent use.
//
// Entries are reference-counted: Add_evt increments, Del_evt decrements
// (never below zero), Chk_evt is true while the count is positive. Each
// Add records the global time at which it happened, enabling cross-domain
// ordering diagnostics.
type Scoreboard struct {
	mu      sync.Mutex
	counts  map[string]int
	addedAt map[string][]int64
	ops     uint64
}

// NewScoreboard returns an empty scoreboard.
func NewScoreboard() *Scoreboard {
	return &Scoreboard{
		counts:  make(map[string]int),
		addedAt: make(map[string][]int64),
	}
}

// Add records one occurrence of each named event at global time now.
func (sb *Scoreboard) Add(now int64, events ...string) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, e := range events {
		sb.counts[e]++
		sb.addedAt[e] = append(sb.addedAt[e], now)
		sb.ops++
	}
}

// Del erases one recorded occurrence of each named event (no-op when the
// count is already zero — deleting an absent event is benign, matching
// the reversal semantics of backward transitions that may race with
// resets).
func (sb *Scoreboard) Del(events ...string) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, e := range events {
		if sb.counts[e] > 0 {
			sb.counts[e]--
			if ts := sb.addedAt[e]; len(ts) > 0 {
				sb.addedAt[e] = ts[:len(ts)-1]
			}
		}
		sb.ops++
	}
}

// Chk implements the Chk_evt predicate: event e is currently recorded.
func (sb *Scoreboard) Chk(e string) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.counts[e] > 0
}

// Count returns the current occurrence count of e.
func (sb *Scoreboard) Count(e string) int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.counts[e]
}

// FirstAddedAt returns the global time of the oldest live occurrence of
// e, and whether one exists.
func (sb *Scoreboard) FirstAddedAt(e string) (int64, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	ts := sb.addedAt[e]
	if len(ts) == 0 {
		return 0, false
	}
	return ts[0], true
}

// Reset clears all entries.
func (sb *Scoreboard) Reset() {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.counts = make(map[string]int)
	sb.addedAt = make(map[string][]int64)
}

// Ops returns the total number of Add/Del operations performed, for the
// scoreboard-overhead benches.
func (sb *Scoreboard) Ops() uint64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.ops
}

// Live returns the names with positive counts, sorted.
func (sb *Scoreboard) Live() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	var out []string
	for e, c := range sb.counts {
		if c > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// String renders e.g. "scoreboard{MCmdRd:1, Burst4:1}".
func (sb *Scoreboard) String() string {
	live := sb.Live()
	sb.mu.Lock()
	defer sb.mu.Unlock()
	parts := make([]string, 0, len(live))
	for _, e := range live {
		parts = append(parts, fmt.Sprintf("%s:%d", e, sb.counts[e]))
	}
	return "scoreboard{" + strings.Join(parts, ", ") + "}"
}
