package monitor

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
)

// Program is a monitor with every guard compiled to a flat expr.Program
// over the monitor's support slots and scoreboard chk-bit indices. It
// works at any support width — unlike Compiled there is no 2^bits
// transition table, a step still scans the current state's guards — but
// each guard evaluation is allocation-free bit arithmetic instead of an
// AST walk over map-backed contexts.
//
// A Program is immutable after compilation and carries no execution
// state: one Program is shared by every session running the monitor,
// and each session binds it to its own Scoreboard via NewEngine /
// NewEngineVocab. Program-bound engines are ordinary *Engine values, so
// classification, diagnostics, pending-reversal, and snapshots behave
// identically to the interpreted path.
type Program struct {
	m   *Monitor
	sup *event.Support
	// chkNames are the scoreboard events guards test, sorted; a guard's
	// opChk arg indexes this list (and so a ChkBits mask).
	chkNames []string
	// guards[state][i] is the compiled guard of Trans[state][i].
	guards [][]*expr.Program
	// chkByState[s] reports whether any guard of state s samples the
	// scoreboard; states that don't skip the ChkBits lock entirely.
	chkByState []bool
}

// maxChkBits caps the scoreboard events one monitor's guards may test:
// chk bits are sampled as a single uint64 mask per step.
const maxChkBits = 64

// progResolver maps guard atoms to support slots / chk-bit indices.
type progResolver struct {
	sup      *event.Support
	chkIndex map[string]int
}

func (r progResolver) InputSlot(name string, _ event.Kind) int { return r.sup.Index(name) }
func (r progResolver) ChkSlot(name string) int {
	if i, ok := r.chkIndex[name]; ok {
		return i
	}
	return -1
}

// CompileProgram compiles every guard of m. Unlike Compile it has no
// support-width limit; it fails only on invalid monitors, guards deeper
// than expr.MaxProgramDepth, or more than 64 distinct Chk_evt events.
func CompileProgram(m *Monitor) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sup, err := m.Support()
	if err != nil {
		return nil, err
	}
	chkSet := map[string]bool{}
	for _, ts := range m.Trans {
		for _, t := range ts {
			for _, e := range expr.ChkRefs(t.Guard) {
				chkSet[e] = true
			}
		}
	}
	chkNames := make([]string, 0, len(chkSet))
	for e := range chkSet {
		chkNames = append(chkNames, e)
	}
	sort.Strings(chkNames)
	if len(chkNames) > maxChkBits {
		return nil, fmt.Errorf("monitor %q: %d scoreboard events exceed the %d chk-bit limit",
			m.Name, len(chkNames), maxChkBits)
	}
	r := progResolver{sup: sup, chkIndex: make(map[string]int, len(chkNames))}
	for i, e := range chkNames {
		r.chkIndex[e] = i
	}
	p := &Program{m: m, sup: sup, chkNames: chkNames,
		guards: make([][]*expr.Program, m.States), chkByState: make([]bool, m.States)}
	for s, ts := range m.Trans {
		p.guards[s] = make([]*expr.Program, len(ts))
		for i, t := range ts {
			g, err := expr.CompileProgram(t.Guard, r)
			if err != nil {
				return nil, fmt.Errorf("monitor %q: state %d transition %d: %w", m.Name, s, i, err)
			}
			p.guards[s][i] = g
			if g.UsesChk() {
				p.chkByState[s] = true
			}
		}
	}
	return p, nil
}

// Monitor returns the automaton the program was compiled from.
func (p *Program) Monitor() *Monitor { return p.m }

// Support returns the monitor's input support; packed inputs fed to a
// plain NewEngine must use this slot order.
func (p *Program) Support() *event.Support { return p.sup }

// ChkNames returns the scoreboard events the guards test, sorted.
func (p *Program) ChkNames() []string { return append([]string(nil), p.chkNames...) }

// progNamer renders a program's slots back to names — the inverse of
// progResolver, used to decompile guards for violation provenance.
type progNamer struct{ p *Program }

func (n progNamer) InputSym(slot int) (string, event.Kind) {
	syms := n.p.sup.Symbols()
	if slot < 0 || slot >= len(syms) {
		return "", 0
	}
	return syms[slot].Name, syms[slot].Kind
}

func (n progNamer) ChkName(idx int) string {
	if idx < 0 || idx >= len(n.p.chkNames) {
		return ""
	}
	return n.p.chkNames[idx]
}

// GuardString renders the compiled guard of Trans[state][idx] purely
// from the program's slot names: the postfix code is decompiled back to
// an AST (exact, because compilation preserves n-ary arity) and rendered
// with the standard expression syntax. The result equals the source
// guard's String() by construction, which is what lets every execution
// tier report identical provenance.
func (p *Program) GuardString(state, idx int) string {
	if state < 0 || state >= len(p.guards) || idx < 0 || idx >= len(p.guards[state]) {
		return ""
	}
	e, err := p.guards[state][idx].Decompile(progNamer{p})
	if err != nil {
		// Unreachable for programs this package compiled; keep provenance
		// usable anyway.
		return p.m.Trans[state][idx].Guard.String()
	}
	return e.String()
}

// Ops returns the total compiled instruction count (sizing diagnostics;
// the Program analog of Compiled.TableBytes).
func (p *Program) Ops() int {
	n := 0
	for _, gs := range p.guards {
		for _, g := range gs {
			n += g.Len()
		}
	}
	return n
}

// boundAction is one scoreboard action resolved to slots of a specific
// Scoreboard. Actions stay an ordered list (a Del after an Add of the
// same event must run after it) and keep the original names for the
// engine's pending-reversal bookkeeping and snapshots.
type boundAction struct {
	kind   ActionKind
	slots  []int32
	names  []string
	sticky bool
}

// progBinding ties a Program to one engine's scoreboard (and optionally
// to a session vocabulary for externally-packed input).
type progBinding struct {
	prog *Program
	// remap translates program support slots into the slot space of
	// externally packed input handed to StepPacked; nil means StepPacked
	// input is packed in support order.
	remap []int32
	// vocab, when non-nil, is the interner the StepPacked input was
	// packed with — needed to unpack inputs for diagnostics.
	vocab *event.Vocabulary
	// chkSlots are scoreboard slots of prog.chkNames, sampled once per
	// step via ChkBits.
	chkSlots []int32
	// actions[state][i] mirrors Trans[state][i].Actions.
	actions [][][]boundAction
	// scratch is the engine-private pack buffer used by Step.
	scratch event.Packed
}

// unpack expands a StepPacked input back to a map State for diagnostics.
func (b *progBinding) unpack(in event.Packed) event.State {
	if b.vocab != nil {
		return b.vocab.UnpackState(in)
	}
	return b.prog.sup.UnpackState(in)
}

// bind attaches p to the engine, resolving chk events and action events
// to scoreboard slots.
func (e *Engine) bind(p *Program, remap []int32, vocab *event.Vocabulary) {
	b := &progBinding{prog: p, remap: remap, vocab: vocab}
	b.chkSlots = make([]int32, len(p.chkNames))
	for i, n := range p.chkNames {
		b.chkSlots[i] = e.sb.Slot(n)
	}
	b.actions = make([][][]boundAction, len(p.m.Trans))
	for s, ts := range p.m.Trans {
		b.actions[s] = make([][]boundAction, len(ts))
		for i, t := range ts {
			bas := make([]boundAction, len(t.Actions))
			for j, a := range t.Actions {
				ba := boundAction{kind: a.Kind, names: a.Events, sticky: a.Sticky}
				ba.slots = make([]int32, len(a.Events))
				for k, ev := range a.Events {
					ba.slots[k] = e.sb.Slot(ev)
				}
				bas[j] = ba
			}
			b.actions[s][i] = bas
		}
	}
	e.b = b
}

// NewEngine returns an engine executing the compiled program against sb
// (a fresh scoreboard when nil). Step packs map states itself;
// StepPacked expects input packed in the program's support order.
func (p *Program) NewEngine(sb *Scoreboard, mode Mode) *Engine {
	if sb == nil {
		sb = NewScoreboard()
	}
	e := NewEngine(p.m, sb, mode)
	e.bind(p, nil, nil)
	return e
}

// NewEngineVocab returns a program engine whose StepPacked input is
// packed with the session vocabulary v (a superset interner shared by
// many monitors): support slots are remapped into v's slot space, so
// one vocabulary-packed valuation per tick serves every monitor of the
// session. Every support symbol must already be declared in v with the
// same kind (see event.Vocabulary.DeclareSupport).
func (p *Program) NewEngineVocab(sb *Scoreboard, mode Mode, v *event.Vocabulary) (*Engine, error) {
	remap := make([]int32, p.sup.Len())
	for i, sym := range p.sup.Symbols() {
		j := v.Lookup(sym.Name)
		if j < 0 {
			return nil, fmt.Errorf("monitor %q: support symbol %q not in session vocabulary", p.m.Name, sym.Name)
		}
		if v.Symbol(j).Kind != sym.Kind {
			return nil, fmt.Errorf("monitor %q: support symbol %q declared as %s in session vocabulary (want %s)",
				p.m.Name, sym.Name, v.Symbol(j).Kind, sym.Kind)
		}
		remap[i] = int32(j)
	}
	if sb == nil {
		sb = NewScoreboard()
	}
	e := NewEngine(p.m, sb, mode)
	e.bind(p, remap, v)
	return e, nil
}

// Programmed reports whether the engine executes compiled guard
// programs (true) or interprets guard ASTs (false).
func (e *Engine) Programmed() bool { return e.b != nil }
