package monitor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

// TestScoreboardSlotRaceStress is the slot-API counterpart of
// TestScoreboardRaceStress: many goroutines hammer one shared scoreboard
// through pre-interned slots (AddSlots/DelSlots/ChkBits) while others
// keep interning fresh names, the way program-bound engines of different
// clock domains share the index-based scoreboard. Run under -race this
// locks in the mutex contract of the interned implementation; the final
// counts and op totals catch lost updates without the race detector.
func TestScoreboardSlotRaceStress(t *testing.T) {
	const (
		domains = 8
		iters   = 2000
	)
	sb := NewScoreboard()
	shared := sb.Slot("xdomain")
	var wg sync.WaitGroup
	for d := 0; d < domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			slot := sb.Slot(fmt.Sprintf("dom%d_evt", d))
			own := []int32{slot}
			probe := []int32{slot, shared}
			for i := 0; i < iters; i++ {
				sb.AddSlots(int64(i), own)
				if sb.ChkBits(probe)&1 == 0 {
					t.Errorf("domain %d: own slot not live after AddSlots", d)
					return
				}
				if i%64 == 0 {
					// Interning churn while other domains run the hot
					// path: slots must stay stable under growth.
					sb.Slot(fmt.Sprintf("dom%d_extra%d", d, i))
					sb.Live()
				}
				sb.DelSlots(own)
			}
		}(d)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := []int32{shared}
		for i := 0; i < iters; i++ {
			sb.AddSlots(int64(i), x)
			sb.DelSlots(x)
		}
	}()
	wg.Wait()

	for d := 0; d < domains; d++ {
		if c := sb.Count(fmt.Sprintf("dom%d_evt", d)); c != 0 {
			t.Errorf("domain %d: final count %d, want 0 (lost update)", d, c)
		}
	}
	if c := sb.Count("xdomain"); c != 0 {
		t.Errorf("shared slot: final count %d, want 0", c)
	}
	wantOps := uint64((domains + 1) * iters * 2)
	if got := sb.Ops(); got != wantOps {
		t.Errorf("ops = %d, want %d (lost scoreboard operations)", got, wantOps)
	}
}

// TestScoreboardConcurrentProgramEngines mirrors
// TestScoreboardConcurrentEngines with every engine on the compiled
// guard-program path, stepping packed input: Chk_evt guards sample the
// shared scoreboard via ChkBits and actions run through AddSlots /
// DelSlots, so the index-based fast path itself is what contends across
// goroutines. Each engine must still complete every round.
func TestScoreboardConcurrentProgramEngines(t *testing.T) {
	const (
		engines = 6
		rounds  = 500
		xpend   = "xpend"
	)
	sb := NewScoreboard()
	var wg sync.WaitGroup
	accepts := make([]int, engines)
	for e := 0; e < engines; e++ {
		req := fmt.Sprintf("req%d", e)
		resp := fmt.Sprintf("resp%d", e)
		pend := fmt.Sprintf("pend%d", e)
		m := New(fmt.Sprintf("eng%d", e), "clk", 3)
		m.Linear = true
		m.AddTransition(0, Transition{To: 1, Guard: expr.Ev(req), Actions: []Action{Add(pend, xpend)}})
		m.AddTransition(0, Transition{To: 0, Guard: expr.Not(expr.Ev(req))})
		m.AddTransition(1, Transition{To: 2, Guard: expr.And(expr.Ev(resp), expr.Chk(pend)), Actions: []Action{Del(pend, xpend)}})
		m.AddTransition(1, Transition{To: 1, Guard: expr.Not(expr.Ev(resp))})
		m.AddTransition(2, Transition{To: 1, Guard: expr.Ev(req), Actions: []Action{Add(pend, xpend)}})
		m.AddTransition(2, Transition{To: 0, Guard: expr.Not(expr.Ev(req))})
		prog, err := CompileProgram(m)
		if err != nil {
			t.Fatal(err)
		}
		eng := prog.NewEngine(sb, ModeDetect)
		reqPacked := prog.Support().Pack(event.NewState().WithEvents(req))
		respPacked := prog.Support().Pack(event.NewState().WithEvents(resp))
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				eng.StepPacked(reqPacked)
				eng.StepPacked(respPacked)
			}
			accepts[e] = eng.Stats().Accepts
		}(e)
	}
	wg.Wait()

	for e, a := range accepts {
		if a != rounds {
			t.Errorf("engine %d: accepts = %d, want %d", e, a, rounds)
		}
	}
	if live := sb.Live(); len(live) != 0 {
		t.Errorf("scoreboard not balanced after concurrent program engines: %v", live)
	}
	if c := sb.Count(xpend); c != 0 {
		t.Errorf("cross-domain event count = %d, want 0", c)
	}
}
