package monitor

import (
	"fmt"

	"repro/internal/event"
)

// Execution-state snapshots: everything an Engine accumulates at
// runtime — automaton position, tick counter, stats, pending scoreboard
// reversals, the diagnostic ring, and the scoreboard itself — captured
// as plain JSON-marshalable values. The cescd WAL journals these
// periodically so crash recovery restores a session and replays only
// the journal tail, with verdicts identical to an uninterrupted run.
// The automaton itself is not part of the snapshot: it is rebuilt from
// the journaled spec source (see Monitor's own JSON form in json.go).

// EngineSnapshot is the serializable execution state of an Engine.
type EngineSnapshot struct {
	State   int           `json:"state"`
	Tick    int           `json:"tick"`
	Stats   Stats         `json:"stats"`
	Pending []string      `json:"pending,omitempty"`
	Diag    *DiagSnapshot `json:"diag,omitempty"`
}

// DiagSnapshot is the serializable state of an engine's diagnostics:
// the recent-input ring plus the recorded violation reports.
type DiagSnapshot struct {
	Depth   int           `json:"depth"`
	Ring    []event.State `json:"ring"`
	Next    int           `json:"next"`
	Filled  bool          `json:"filled"`
	Reports []Diagnostic  `json:"reports,omitempty"`
}

// Snapshot captures the engine's execution state. The returned value
// shares no mutable structure with the engine.
func (e *Engine) Snapshot() EngineSnapshot {
	snap := EngineSnapshot{
		State:   e.state,
		Tick:    e.tick,
		Stats:   e.stats,
		Pending: append([]string(nil), e.pending...),
	}
	if e.diag != nil {
		d := &DiagSnapshot{
			Depth:  e.diag.depth,
			Ring:   make([]event.State, len(e.diag.ring)),
			Next:   e.diag.next,
			Filled: e.diag.filled,
		}
		for i, s := range e.diag.ring {
			d.Ring[i] = cloneMaybe(s)
		}
		for _, r := range e.diag.reports {
			d.Reports = append(d.Reports, cloneDiagnostic(r))
		}
		snap.Diag = d
	}
	return snap
}

// Restore replaces the engine's execution state with a snapshot
// (automaton and mode are unchanged; the scoreboard is restored
// separately via Scoreboard.Restore).
func (e *Engine) Restore(snap EngineSnapshot) error {
	if snap.State < 0 || snap.State >= e.m.States {
		return fmt.Errorf("monitor: snapshot state %d out of range for %q (%d states)",
			snap.State, e.m.Name, e.m.States)
	}
	if snap.Tick < 0 {
		return fmt.Errorf("monitor: snapshot tick %d negative", snap.Tick)
	}
	e.state = snap.State
	e.tick = snap.Tick
	e.stats = snap.Stats
	e.pending = append([]string(nil), snap.Pending...)
	if snap.Diag == nil {
		e.diag = nil
		return nil
	}
	d := snap.Diag
	if d.Depth <= 0 || len(d.Ring) != d.Depth || d.Next < 0 || d.Next >= d.Depth {
		return fmt.Errorf("monitor: snapshot diagnostics malformed (depth %d, ring %d, next %d)",
			d.Depth, len(d.Ring), d.Next)
	}
	ds := &diagState{depth: d.Depth, ring: make([]event.State, d.Depth), next: d.Next, filled: d.Filled}
	// Rebind the support used for Valuation provenance, exactly as
	// EnableDiagnostics would.
	if e.b != nil {
		ds.sup = e.b.prog.sup
	} else if sup, err := e.m.Support(); err == nil {
		ds.sup = sup
	}
	for i, s := range d.Ring {
		ds.ring[i] = cloneMaybe(s)
	}
	for _, r := range d.Reports {
		ds.reports = append(ds.reports, cloneDiagnostic(r))
	}
	e.diag = ds
	return nil
}

// cloneMaybe deep-copies a state, tolerating the zero State (nil maps)
// that unfilled ring slots and JSON round trips produce.
func cloneMaybe(s event.State) event.State {
	if s.Events == nil && s.Props == nil {
		return s
	}
	c := event.NewState()
	for k, v := range s.Props {
		c.Props[k] = v
	}
	for k, v := range s.Events {
		c.Events[k] = v
	}
	return c
}

func cloneDiagnostic(d Diagnostic) Diagnostic {
	out := Diagnostic{
		Monitor:    d.Monitor,
		Tick:       d.Tick,
		FromState:  d.FromState,
		GridLine:   d.GridLine,
		Guard:      d.Guard,
		Guards:     append([]string(nil), d.Guards...),
		Valuation:  d.Valuation,
		Input:      cloneMaybe(d.Input),
		Scoreboard: append([]string(nil), d.Scoreboard...),
	}
	for _, r := range d.Recent {
		out.Recent = append(out.Recent, cloneMaybe(r))
	}
	return out
}

// ScoreboardSnapshot is the serializable state of a Scoreboard. Since
// the interned scoreboard (snapshot format v3) live entries are encoded
// as parallel slices keyed by slot name; the map fields are the v2
// (PR-2) encoding, which Restore still accepts so journals written
// before the format bump replay unchanged.
type ScoreboardSnapshot struct {
	// Packed (v3) form: Slots[i] has count SlotCounts[i] and live
	// timestamps SlotAddedAt[i]. Only live slots are emitted.
	Slots       []string  `json:"slots,omitempty"`
	SlotCounts  []int     `json:"slot_counts,omitempty"`
	SlotAddedAt [][]int64 `json:"slot_added_at,omitempty"`
	// Map (v2) form, accepted on restore for backward compatibility.
	Counts  map[string]int     `json:"counts,omitempty"`
	AddedAt map[string][]int64 `json:"added_at,omitempty"`
	Ops     uint64             `json:"ops"`
}

// Snapshot captures the scoreboard's entries and op counter in the
// packed form.
func (sb *Scoreboard) Snapshot() ScoreboardSnapshot {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	snap := ScoreboardSnapshot{Ops: sb.ops}
	for i, c := range sb.counts {
		if c == 0 && len(sb.addedAt[i]) == 0 {
			continue
		}
		snap.Slots = append(snap.Slots, sb.names[i])
		snap.SlotCounts = append(snap.SlotCounts, int(c))
		snap.SlotAddedAt = append(snap.SlotAddedAt, append([]int64(nil), sb.addedAt[i]...))
	}
	return snap
}

// Restore replaces the scoreboard's entries with a snapshot (either the
// packed v3 form or the map-based v2 form). Interned slots are kept and
// extended by name, so engines bound before the restore stay valid.
func (sb *Scoreboard) Restore(snap ScoreboardSnapshot) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for i := range sb.counts {
		sb.counts[i] = 0
		sb.addedAt[i] = nil
	}
	sb.ops = snap.Ops
	if len(snap.Slots) > 0 {
		for i, name := range snap.Slots {
			s := sb.slotLocked(name)
			if i < len(snap.SlotCounts) {
				sb.counts[s] = int32(snap.SlotCounts[i])
			}
			if i < len(snap.SlotAddedAt) {
				sb.addedAt[s] = append([]int64(nil), snap.SlotAddedAt[i]...)
			}
		}
		return
	}
	for k, v := range snap.Counts {
		sb.counts[sb.slotLocked(k)] = int32(v)
	}
	for k, v := range snap.AddedAt {
		sb.addedAt[sb.slotLocked(k)] = append([]int64(nil), v...)
	}
}
