package monitor

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func TestDiagnosticsCaptureViolation(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(4)
	e.Step(st("x1")) // noise (stays at 0)
	e.Step(st("x2")) // noise
	e.Step(st("a"))  // anchor: progress to 1
	e.Step(st())     // abandon: violation
	diags := e.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1", len(diags))
	}
	d := diags[0]
	if d.Tick != 3 || d.FromState != 1 {
		t.Errorf("diag tick/state = %d/%d, want 3/1", d.Tick, d.FromState)
	}
	if !d.Input.IsEmpty() {
		t.Errorf("offending input = %v, want empty", d.Input)
	}
	if len(d.Recent) != 3 {
		t.Fatalf("recent window = %d entries, want 3", len(d.Recent))
	}
	// Oldest first: x1, x2, a.
	if !d.Recent[0].Event("x1") || !d.Recent[2].Event("a") {
		t.Errorf("recent window wrong order: %v", d.Recent)
	}
	s := d.String()
	for _, want := range []string{"violation at tick 3", "offending input", "{a}"} {
		if !strings.Contains(s, want) {
			t.Errorf("diag string missing %q:\n%s", want, s)
		}
	}
}

func TestDiagnosticsScoreboardSnapshot(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(2)
	e.Step(st("a")) // Add_evt(a) fires
	// Manually add an extra entry so the snapshot shows live state even
	// though the violation's Del reverses "a".
	e.Scoreboard().Add(0, "zombie")
	e.Step(st())
	diags := e.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d", len(diags))
	}
	found := false
	for _, entry := range diags[0].Scoreboard {
		if entry == "zombie" {
			found = true
		}
	}
	if !found {
		t.Errorf("scoreboard snapshot = %v, want to include zombie", diags[0].Scoreboard)
	}
}

func TestDiagnosticsDisabled(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.Step(st("a"))
	e.Step(st())
	if e.Diagnostics() != nil {
		t.Error("diagnostics recorded while disabled")
	}
	e.EnableDiagnostics(0)
	if e.Diagnostics() != nil {
		t.Error("depth 0 should disable diagnostics")
	}
}

func TestDiagnosticsCapped(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(2)
	for i := 0; i < maxDiagnostics*3; i++ {
		e.Step(st("a"))
		e.Step(st())
	}
	if got := len(e.Diagnostics()); got != maxDiagnostics {
		t.Errorf("retained %d diagnostics, want cap %d", got, maxDiagnostics)
	}
	if e.Stats().Violations != maxDiagnostics*3 {
		t.Errorf("violations = %d, want %d (counting continues past cap)",
			e.Stats().Violations, maxDiagnostics*3)
	}
}

func TestDiagnosticsHardResetViolation(t *testing.T) {
	// Partial monitor: uncovered input in a progressed state violates in
	// assert mode and must also produce a diagnostic.
	m := New("partial", "clk", 3)
	m.Linear = true
	m.AddTransition(0, Transition{To: 1, Guard: expr.Ev("x")})
	m.AddTransition(0, Transition{To: 0, Guard: expr.Not(expr.Ev("x"))})
	m.AddTransition(1, Transition{To: 2, Guard: expr.Ev("y")})
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(3)
	e.Step(st("x"))
	e.Step(st("z"))
	diags := e.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1", len(diags))
	}
	if diags[0].FromState != 1 {
		t.Errorf("from state = %d, want 1", diags[0].FromState)
	}
}

func TestDiagnosticsRingWrap(t *testing.T) {
	m := twoStep()
	e := NewEngine(m, nil, ModeAssert)
	e.EnableDiagnostics(2)
	// More noise than the ring holds before the violation.
	for i := 0; i < 5; i++ {
		e.Step(st("noise"))
	}
	e.Step(st("a"))
	e.Step(st())
	diags := e.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d", len(diags))
	}
	if len(diags[0].Recent) != 1 {
		t.Fatalf("recent = %d entries, want 1 (depth 2 minus offender)", len(diags[0].Recent))
	}
	if !diags[0].Recent[0].Event("a") {
		t.Errorf("recent entry = %v, want the anchor", diags[0].Recent[0])
	}
}
