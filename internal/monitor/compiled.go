package monitor

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
)

// Table is the immutable, shareable core of the table-driven execution
// tier: the transition function of a monitor precomputed over every
// (input valuation, scoreboard-bit vector) pair. One Table backs any
// number of Compiled instances and LaneBanks concurrently — it is
// read-only after CompileTable returns, so sharing needs no locks.
type Table struct {
	m   *Monitor
	sup *event.Support
	// chkEvents are the scoreboard events guards test, in index order.
	chkEvents []string
	chkIndex  map[string]int
	width     uint // support bits
	// next[state*stride + idx] is the target state; trans holds the
	// fired transition's index within Trans[state] (-1 for none).
	stride int
	next   []int32
	trans  []int32
	// acts[state][ti] is the transition's chk-slot action footprint:
	// the action list pre-resolved to chkEvents indices, in original
	// action order (order matters — a del of a zero count is a no-op, so
	// del-then-add and add-then-del differ). Events outside chkEvents can
	// never influence a guard and are dropped from the resolved form
	// (Compiled keeps its name-keyed counts for the diagnostics surface).
	acts [][][]tableOp
}

// tableOp is one chk-slot increment (del=false) or guarded decrement
// (del=true) of a transition's action list.
type tableOp struct {
	ci  int
	del bool
}

// maxCompileBits caps the table: 2^(support+chk) entries per state.
const maxCompileBits = 20

// CompileTable builds the shared table-driven form of m. It fails when
// the combined support and scoreboard-bit width would make the table
// excessive.
func CompileTable(m *Monitor) (*Table, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sup, err := m.Support()
	if err != nil {
		return nil, err
	}
	chkSet := map[string]bool{}
	for _, ts := range m.Trans {
		for _, t := range ts {
			for _, e := range expr.ChkRefs(t.Guard) {
				chkSet[e] = true
			}
		}
	}
	var chkEvents []string
	for e := range chkSet {
		chkEvents = append(chkEvents, e)
	}
	sort.Strings(chkEvents)
	totalBits := sup.Len() + len(chkEvents)
	if totalBits > maxCompileBits {
		return nil, fmt.Errorf("monitor: %d support + %d scoreboard bits exceed compile limit %d",
			sup.Len(), len(chkEvents), maxCompileBits)
	}
	t := &Table{
		m:         m,
		sup:       sup,
		chkEvents: chkEvents,
		chkIndex:  map[string]int{},
		width:     uint(sup.Len()),
		stride:    1 << uint(totalBits),
	}
	for i, e := range chkEvents {
		t.chkIndex[e] = i
	}
	t.next = make([]int32, m.States*t.stride)
	t.trans = make([]int32, m.States*t.stride)
	for s := 0; s < m.States; s++ {
		for idx := 0; idx < t.stride; idx++ {
			val := event.Valuation(uint64(idx) & ((1 << t.width) - 1))
			chkBits := uint64(idx) >> t.width
			ctx := compiledCtx{sup: sup, val: val, chk: chkBits, chkIndex: t.chkIndex}
			to, ti := m.Initial, int32(-1)
			for i, tr := range m.Trans[s] {
				if tr.Guard.Eval(ctx) {
					to, ti = tr.To, int32(i)
					break
				}
			}
			t.next[s*t.stride+idx] = int32(to)
			t.trans[s*t.stride+idx] = ti
		}
	}
	t.acts = make([][][]tableOp, m.States)
	for s := 0; s < m.States; s++ {
		t.acts[s] = make([][]tableOp, len(m.Trans[s]))
		for i, tr := range m.Trans[s] {
			for _, a := range tr.Actions {
				for _, e := range a.Events {
					ci, tracked := t.chkIndex[e]
					if !tracked {
						continue
					}
					switch a.Kind {
					case ActAdd:
						t.acts[s][i] = append(t.acts[s][i], tableOp{ci: ci})
					case ActDel:
						t.acts[s][i] = append(t.acts[s][i], tableOp{ci: ci, del: true})
					}
				}
			}
		}
	}
	return t, nil
}

// Monitor returns the automaton the table was compiled from.
func (t *Table) Monitor() *Monitor { return t.m }

// Support returns the support the valuation index bits follow.
func (t *Table) Support() *event.Support { return t.sup }

// ChkEvents returns the scoreboard events guards test (index order).
func (t *Table) ChkEvents() []string { return t.chkEvents }

// Width returns the number of support bits in a table index.
func (t *Table) Width() int { return int(t.width) }

// Stride returns the number of table entries per state.
func (t *Table) Stride() int { return t.stride }

// TableBytes reports the transition table footprint, for sizing
// diagnostics.
func (t *Table) TableBytes() int { return 8 * len(t.next) }

// Lookup resolves one (state, index) cell: the raw target state (before
// the violation-sink reset) and the fired transition index (-1 none).
// idx is the support valuation in the low width bits or'd with the chk
// bits above them; bits beyond the stride are masked off.
func (t *Table) Lookup(state int, idx uint64) (to int, fired int) {
	i := state*t.stride + int(idx&uint64(t.stride-1))
	return int(t.next[i]), int(t.trans[i])
}

// Fired resolves only the fired transition index of a (state, index)
// cell. For chk-free monitors idx is just the packed support valuation,
// which lets batch steppers replace per-guard program evaluation with
// one load.
func (t *Table) Fired(state int, idx uint64) int {
	return int(t.trans[state*t.stride+int(idx&uint64(t.stride-1))])
}

// ChkFree reports whether no guard of the monitor tests the scoreboard;
// only then is a table index a pure support valuation.
func (t *Table) ChkFree() bool { return len(t.chkEvents) == 0 }

// Compiled is the table-driven fast path for monitor execution: a
// private cursor (state + scoreboard counters) over a shared Table, so
// a step is two table lookups and a handful of counter updates instead
// of guard-tree evaluation. It exists to close the throughput gap
// between synthesized monitors and hand-written checkers (experiment
// E10); parity with the interpreted engine is property-tested.
//
// The fast path is single-goroutine and owns a private scoreboard (plain
// counters, no locking), so it does not participate in multi-clock
// shared-scoreboard execution — use the interpreted Engine there.
type Compiled struct {
	t *Table
	// counts is the private scoreboard.
	counts map[string]int

	state      int
	accepts    int
	steps      int
	violations int
	// diag, when armed via EnableDiagnostics, retains recent inputs and
	// produces the same violation reports as the interpreted engine.
	diag *diagState
}

// Compile builds the table-driven form of m with a fresh private
// cursor. The underlying table is not shared; use CompileTable +
// NewInstance to share one table across many instances.
func Compile(m *Monitor) (*Compiled, error) {
	t, err := CompileTable(m)
	if err != nil {
		return nil, err
	}
	return t.NewInstance(), nil
}

// NewInstance returns a fresh cursor over the shared table, starting at
// the initial state with an empty scoreboard.
func (t *Table) NewInstance() *Compiled {
	return &Compiled{t: t, counts: map[string]int{}, state: t.m.Initial}
}

// compiledCtx evaluates guards during table construction.
type compiledCtx struct {
	sup      *event.Support
	val      event.Valuation
	chk      uint64
	chkIndex map[string]int
}

func (c compiledCtx) Event(name string) bool {
	i := c.sup.Index(name)
	return i >= 0 && c.val.Bit(i)
}

func (c compiledCtx) Prop(name string) bool {
	i := c.sup.Index(name)
	return i >= 0 && c.val.Bit(i)
}

func (c compiledCtx) ChkEvt(name string) bool {
	i, ok := c.chkIndex[name]
	return ok && c.chk&(1<<uint(i)) != 0
}

// Step consumes one input element; it reports whether the monitor
// accepted at this tick.
func (c *Compiled) Step(s event.State) bool {
	if c.diag != nil {
		c.diag.observe(s)
	}
	t := c.t
	val := uint64(t.sup.Valuation(s))
	idx := val
	for i, e := range t.chkEvents {
		if c.counts[e] > 0 {
			idx |= 1 << (t.width + uint(i))
		}
	}
	base := c.state * t.stride
	to := int(t.next[base+int(idx)])
	ti := t.trans[base+int(idx)]
	if ti >= 0 {
		for _, a := range t.m.Trans[c.state][ti].Actions {
			switch a.Kind {
			case ActAdd:
				for _, e := range a.Events {
					c.counts[e]++
				}
			case ActDel:
				for _, e := range a.Events {
					if c.counts[e] > 0 {
						c.counts[e]--
					}
				}
			}
		}
	}
	// Mirror Engine.finish: the violation sink behaves like a reset, so
	// the table re-arms at Initial in the same tick rather than parking in
	// the sink until the next uncovered input.
	if t.m.Violation != NoState && to == t.m.Violation {
		c.violations++
		if c.diag != nil {
			c.recordViolation(int(ti), val, s)
		}
		to = t.m.Initial
	}
	c.state = to
	c.steps++
	if t.m.IsFinal(to) {
		c.accepts++
		return true
	}
	return false
}

// EnableDiagnostics arms violation reporting exactly as on the
// interpreted engine; depth <= 0 disables.
func (c *Compiled) EnableDiagnostics(depth int) {
	if depth <= 0 {
		c.diag = nil
		return
	}
	c.diag = &diagState{depth: depth, ring: make([]event.State, depth), sup: c.t.sup}
}

// Diagnostics returns the recorded violation reports (nil when
// diagnostics are disabled or no violation occurred).
func (c *Compiled) Diagnostics() []Diagnostic {
	if c.diag == nil {
		return nil
	}
	return c.diag.reports
}

// recordViolation captures provenance matching Engine.recordViolation:
// same tick convention (pre-increment), same pre-move state, and the
// private counts scoreboard rendered exactly as Scoreboard.Live would.
func (c *Compiled) recordViolation(ti int, val uint64, s event.State) {
	m := c.t.m
	rep := Diagnostic{
		Monitor:    m.Name,
		Tick:       c.steps,
		FromState:  c.state,
		GridLine:   gridLine(m, c.state),
		Guards:     c.guardStrings(c.state),
		Valuation:  val,
		Input:      s.Clone(),
		Recent:     c.diag.recent(),
		Scoreboard: c.liveCounts(),
	}
	if ti >= 0 {
		rep.Guard = m.Trans[c.state][ti].Guard.String()
	}
	c.diag.push(rep)
}

// guardStrings renders the candidate guards of state s in transition
// order.
func (c *Compiled) guardStrings(s int) []string {
	m := c.t.m
	if s < 0 || s >= len(m.Trans) || len(m.Trans[s]) == 0 {
		return nil
	}
	out := make([]string, len(m.Trans[s]))
	for i := range m.Trans[s] {
		out[i] = m.Trans[s][i].Guard.String()
	}
	return out
}

// liveCounts renders the private scoreboard the way Scoreboard.Live
// does: names with positive counts, sorted.
func (c *Compiled) liveCounts() []string {
	var out []string
	for e, n := range c.counts {
		if n > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Table returns the shared transition table backing this instance.
func (c *Compiled) Table() *Table { return c.t }

// State returns the current automaton state.
func (c *Compiled) State() int { return c.state }

// Accepts returns the number of acceptances so far.
func (c *Compiled) Accepts() int { return c.accepts }

// Steps returns the number of inputs consumed.
func (c *Compiled) Steps() int { return c.steps }

// Violations returns the number of violation-sink entries so far.
func (c *Compiled) Violations() int { return c.violations }

// Count returns the private scoreboard's occurrence count of e (for
// cross-implementation differential tests).
func (c *Compiled) Count(e string) int { return c.counts[e] }

// Reset returns the monitor to its initial state and clears the private
// scoreboard; counters are preserved.
func (c *Compiled) Reset() {
	c.state = c.t.m.Initial
	c.counts = map[string]int{}
}

// TableBytes reports the transition table footprint, for sizing
// diagnostics.
func (c *Compiled) TableBytes() int { return c.t.TableBytes() }
