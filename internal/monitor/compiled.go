package monitor

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
)

// Compiled is the table-driven fast path for monitor execution: the
// transition function is precomputed over every (input valuation,
// scoreboard-bit vector) pair, so a step is two table lookups and a
// handful of counter updates instead of guard-tree evaluation. It exists
// to close the throughput gap between synthesized monitors and
// hand-written checkers (experiment E10); parity with the interpreted
// engine is property-tested.
//
// The fast path is single-goroutine and owns a private scoreboard (plain
// counters, no locking), so it does not participate in multi-clock
// shared-scoreboard execution — use the interpreted Engine there.
type Compiled struct {
	m   *Monitor
	sup *event.Support
	// chkEvents are the scoreboard events guards test, in index order.
	chkEvents []string
	chkIndex  map[string]int
	width     uint // support bits
	// next[state*stride + idx] is the target state; trans holds the
	// fired transition's index within Trans[state] (-1 for none).
	stride int
	next   []int32
	trans  []int32
	// counts is the private scoreboard.
	counts map[string]int

	state      int
	accepts    int
	steps      int
	violations int
	// diag, when armed via EnableDiagnostics, retains recent inputs and
	// produces the same violation reports as the interpreted engine.
	diag *diagState
}

// maxCompileBits caps the table: 2^(support+chk) entries per state.
const maxCompileBits = 20

// Compile builds the table-driven form of m. It fails when the combined
// support and scoreboard-bit width would make the table excessive.
func Compile(m *Monitor) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sup, err := m.Support()
	if err != nil {
		return nil, err
	}
	chkSet := map[string]bool{}
	for _, ts := range m.Trans {
		for _, t := range ts {
			for _, e := range expr.ChkRefs(t.Guard) {
				chkSet[e] = true
			}
		}
	}
	var chkEvents []string
	for e := range chkSet {
		chkEvents = append(chkEvents, e)
	}
	// Deterministic order.
	for i := 0; i < len(chkEvents); i++ {
		for j := i + 1; j < len(chkEvents); j++ {
			if chkEvents[j] < chkEvents[i] {
				chkEvents[i], chkEvents[j] = chkEvents[j], chkEvents[i]
			}
		}
	}
	totalBits := sup.Len() + len(chkEvents)
	if totalBits > maxCompileBits {
		return nil, fmt.Errorf("monitor: %d support + %d scoreboard bits exceed compile limit %d",
			sup.Len(), len(chkEvents), maxCompileBits)
	}
	c := &Compiled{
		m:         m,
		sup:       sup,
		chkEvents: chkEvents,
		chkIndex:  map[string]int{},
		width:     uint(sup.Len()),
		stride:    1 << uint(totalBits),
		counts:    map[string]int{},
		state:     m.Initial,
	}
	for i, e := range chkEvents {
		c.chkIndex[e] = i
	}
	c.next = make([]int32, m.States*c.stride)
	c.trans = make([]int32, m.States*c.stride)
	for s := 0; s < m.States; s++ {
		for idx := 0; idx < c.stride; idx++ {
			val := event.Valuation(uint64(idx) & ((1 << c.width) - 1))
			chkBits := uint64(idx) >> c.width
			ctx := compiledCtx{sup: sup, val: val, chk: chkBits, chkIndex: c.chkIndex}
			to, ti := m.Initial, int32(-1)
			for i, t := range m.Trans[s] {
				if t.Guard.Eval(ctx) {
					to, ti = t.To, int32(i)
					break
				}
			}
			c.next[s*c.stride+idx] = int32(to)
			c.trans[s*c.stride+idx] = ti
		}
	}
	return c, nil
}

// compiledCtx evaluates guards during table construction.
type compiledCtx struct {
	sup      *event.Support
	val      event.Valuation
	chk      uint64
	chkIndex map[string]int
}

func (c compiledCtx) Event(name string) bool {
	i := c.sup.Index(name)
	return i >= 0 && c.val.Bit(i)
}

func (c compiledCtx) Prop(name string) bool {
	i := c.sup.Index(name)
	return i >= 0 && c.val.Bit(i)
}

func (c compiledCtx) ChkEvt(name string) bool {
	i, ok := c.chkIndex[name]
	return ok && c.chk&(1<<uint(i)) != 0
}

// Step consumes one input element; it reports whether the monitor
// accepted at this tick.
func (c *Compiled) Step(s event.State) bool {
	if c.diag != nil {
		c.diag.observe(s)
	}
	val := uint64(c.sup.Valuation(s))
	idx := val
	for i, e := range c.chkEvents {
		if c.counts[e] > 0 {
			idx |= 1 << (c.width + uint(i))
		}
	}
	base := c.state * c.stride
	to := int(c.next[base+int(idx)])
	ti := c.trans[base+int(idx)]
	if ti >= 0 {
		for _, a := range c.m.Trans[c.state][ti].Actions {
			switch a.Kind {
			case ActAdd:
				for _, e := range a.Events {
					c.counts[e]++
				}
			case ActDel:
				for _, e := range a.Events {
					if c.counts[e] > 0 {
						c.counts[e]--
					}
				}
			}
		}
	}
	// Mirror Engine.finish: the violation sink behaves like a reset, so
	// the table re-arms at Initial in the same tick rather than parking in
	// the sink until the next uncovered input.
	if c.m.Violation != NoState && to == c.m.Violation {
		c.violations++
		if c.diag != nil {
			c.recordViolation(int(ti), val, s)
		}
		to = c.m.Initial
	}
	c.state = to
	c.steps++
	if c.m.IsFinal(to) {
		c.accepts++
		return true
	}
	return false
}

// EnableDiagnostics arms violation reporting exactly as on the
// interpreted engine; depth <= 0 disables.
func (c *Compiled) EnableDiagnostics(depth int) {
	if depth <= 0 {
		c.diag = nil
		return
	}
	c.diag = &diagState{depth: depth, ring: make([]event.State, depth), sup: c.sup}
}

// Diagnostics returns the recorded violation reports (nil when
// diagnostics are disabled or no violation occurred).
func (c *Compiled) Diagnostics() []Diagnostic {
	if c.diag == nil {
		return nil
	}
	return c.diag.reports
}

// recordViolation captures provenance matching Engine.recordViolation:
// same tick convention (pre-increment), same pre-move state, and the
// private counts scoreboard rendered exactly as Scoreboard.Live would.
func (c *Compiled) recordViolation(ti int, val uint64, s event.State) {
	rep := Diagnostic{
		Monitor:    c.m.Name,
		Tick:       c.steps,
		FromState:  c.state,
		GridLine:   gridLine(c.m, c.state),
		Guards:     c.guardStrings(c.state),
		Valuation:  val,
		Input:      s.Clone(),
		Recent:     c.diag.recent(),
		Scoreboard: c.liveCounts(),
	}
	if ti >= 0 {
		rep.Guard = c.m.Trans[c.state][ti].Guard.String()
	}
	c.diag.push(rep)
}

// guardStrings renders the candidate guards of state s in transition
// order.
func (c *Compiled) guardStrings(s int) []string {
	if s < 0 || s >= len(c.m.Trans) || len(c.m.Trans[s]) == 0 {
		return nil
	}
	out := make([]string, len(c.m.Trans[s]))
	for i := range c.m.Trans[s] {
		out[i] = c.m.Trans[s][i].Guard.String()
	}
	return out
}

// liveCounts renders the private scoreboard the way Scoreboard.Live
// does: names with positive counts, sorted.
func (c *Compiled) liveCounts() []string {
	var out []string
	for e, n := range c.counts {
		if n > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// State returns the current automaton state.
func (c *Compiled) State() int { return c.state }

// Accepts returns the number of acceptances so far.
func (c *Compiled) Accepts() int { return c.accepts }

// Steps returns the number of inputs consumed.
func (c *Compiled) Steps() int { return c.steps }

// Violations returns the number of violation-sink entries so far.
func (c *Compiled) Violations() int { return c.violations }

// Count returns the private scoreboard's occurrence count of e (for
// cross-implementation differential tests).
func (c *Compiled) Count(e string) int { return c.counts[e] }

// Reset returns the monitor to its initial state and clears the private
// scoreboard; counters are preserved.
func (c *Compiled) Reset() {
	c.state = c.m.Initial
	c.counts = map[string]int{}
}

// TableBytes reports the transition table footprint, for sizing
// diagnostics.
func (c *Compiled) TableBytes() int { return 8 * len(c.next) }
