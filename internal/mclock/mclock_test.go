package mclock

import (
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/readproto"
	"repro/internal/semantics"
	"repro/internal/trace"
)

func TestSynthesizeFig2Structure(t *testing.T) {
	mm, err := Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Domains) != 2 || mm.Domains[0] != "clk1" || mm.Domains[1] != "clk2" {
		t.Fatalf("domains = %v, want [clk1 clk2]", mm.Domains)
	}
	// clk1's local monitor: 4 ticks -> 5 states; clk2: 3 ticks -> 4.
	if mm.Locals[0].States != 5 || mm.Locals[1].States != 4 {
		t.Errorf("local state counts = %d, %d; want 5, 4", mm.Locals[0].States, mm.Locals[1].States)
	}
	// Cross arrow e2 -> e4: source domain adds req2 when consuming its
	// tick 1; target domain checks req2 when consuming its tick 0.
	adv1 := transTo(t, mm.Locals[0], 1, 2)
	if !hasAction(adv1, "Add_evt(req2)") {
		t.Errorf("clk1 tick-1 advance lacks Add_evt(req2): %v", adv1.Actions)
	}
	adv2 := transTo(t, mm.Locals[1], 0, 1)
	if !strings.Contains(adv2.Guard.String(), "Chk_evt(req2)") {
		t.Errorf("clk2 anchor guard %q lacks Chk_evt(req2)", adv2.Guard)
	}
	// Cross arrow e6 -> e3: clk2 adds data2; clk1's final consumption
	// checks it.
	adv3 := transTo(t, mm.Locals[1], 2, 3)
	if !hasAction(adv3, "Add_evt(data2)") {
		t.Errorf("clk2 tick-2 advance lacks Add_evt(data2): %v", adv3.Actions)
	}
	fin := transTo(t, mm.Locals[0], 3, 4)
	if !strings.Contains(fin.Guard.String(), "Chk_evt(data2)") {
		t.Errorf("clk1 final guard %q lacks Chk_evt(data2)", fin.Guard)
	}
	if s := mm.String(); !strings.Contains(s, "2 clock domains") {
		t.Errorf("String() = %q", s)
	}
}

func transTo(t *testing.T, m *monitor.Monitor, from, to int) monitor.Transition {
	t.Helper()
	for _, tr := range m.Trans[from] {
		if tr.To == to {
			return tr
		}
	}
	t.Fatalf("no transition %d -> %d in:\n%s", from, to, m)
	return monitor.Transition{}
}

func hasAction(tr monitor.Transition, want string) bool {
	for _, a := range tr.Actions {
		if a.String() == want {
			return true
		}
	}
	return false
}

// TestFig2GoodTraceAccepted is experiment E2's core: the conforming
// global trace is accepted coherently, and the semantics oracle agrees.
func TestFig2GoodTraceAccepted(t *testing.T) {
	a := readproto.MultiClockChart()
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := readproto.GoodGlobalTrace(0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := NewExec(mm, monitor.ModeDetect)
	v, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 1 {
		t.Errorf("multi-clock accepts = %d, want 1\n%s", v.Accepts, mm)
	}
	if _, ok := semantics.AsyncSatisfied(a, g); !ok {
		t.Error("oracle rejects the conforming global trace")
	}
}

// TestFig2CrossCausalityViolated: if the clk2 side serves the request
// *before* the clk1 side forwarded it, the scoreboard check must block
// acceptance, even though each domain's local pattern matches.
func TestFig2CrossCausalityViolated(t *testing.T) {
	a := readproto.MultiClockChart()
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a global trace where clk2's whole window precedes clk1's.
	mk := func(events ...string) event.State {
		return event.NewState().WithEvents(events...)
	}
	clk2 := trace.Trace{
		mk(readproto.EvReq3, readproto.EvRd3, readproto.EvAddr3),
		mk(readproto.EvRdy3, readproto.EvRdy2),
		mk(readproto.EvData3, readproto.EvData2),
	}
	clk1 := trace.Trace{
		mk(readproto.EvReq1, readproto.EvRd1, readproto.EvAddr1),
		mk(readproto.EvReq2, readproto.EvRd2, readproto.EvAddr2),
		mk(readproto.EvRdy1, readproto.EvRdyDone),
		mk(readproto.EvData1, readproto.EvDataDone),
	}
	g, err := trace.Interleave(
		[]string{"clk2", "clk1"},
		map[string]int64{"clk1": 2, "clk2": 2},
		map[string]int64{"clk1": 100, "clk2": 0}, // clk1 strictly later
		map[string]trace.Trace{"clk1": clk1, "clk2": clk2},
	)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExec(mm, monitor.ModeDetect)
	v, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// clk2's anchor requires Chk_evt(req2), which clk1 only adds later:
	// the clk2 local monitor must not accept, so no coherent accept.
	if v.Accepts != 0 {
		t.Errorf("accepts = %d for causality-violating trace, want 0", v.Accepts)
	}
	if _, ok := semantics.AsyncSatisfied(a, g); ok {
		t.Error("oracle accepted the causality-violating trace")
	}
}

func TestExecUnknownDomain(t *testing.T) {
	mm, err := Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExec(mm, monitor.ModeDetect)
	_, err = ex.StepTick(trace.GlobalTick{Domain: "clk9", State: event.NewState()})
	if err == nil {
		t.Error("tick for unknown domain accepted")
	}
	if ex.Engine("clk1") == nil || ex.Engine("clk9") != nil {
		t.Error("Engine lookup misbehaves")
	}
}

func TestSynthesizeRejectsBadEndpoints(t *testing.T) {
	a := readproto.MultiClockChart()
	a.CrossArrows = append(a.CrossArrows, chart.Arrow{From: "nope", To: "e4"})
	if _, err := Synthesize(a, nil); err == nil {
		t.Error("unknown cross-arrow endpoint accepted")
	}
}

func TestScoreboardSharedAcrossDomains(t *testing.T) {
	mm, err := Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExec(mm, monitor.ModeDetect)
	g := readproto.GoodGlobalTrace(0)
	// Step only through clk1's forward (adds req2), then inspect.
	for _, tk := range g {
		if _, err := ex.StepTick(tk); err != nil {
			t.Fatal(err)
		}
		if tk.Domain == "clk1" && tk.State.Event(readproto.EvReq2) {
			break
		}
	}
	if !ex.Scoreboard().Chk(readproto.EvReq2) {
		t.Error("req2 not visible on the shared scoreboard after clk1 forwarded")
	}
	if at, ok := ex.Scoreboard().FirstAddedAt(readproto.EvReq2); !ok || at != 4 {
		t.Errorf("req2 added at %d,%v; want global time 4", at, ok)
	}
}
