package mclock

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/synth"
	"repro/internal/trace"
)

// leaf builds a one-domain SCESC matching ev at each of n consecutive
// ticks of the given clock.
func edgeLeaf(clock, ev string, n int) *chart.SCESC {
	sc := &chart.SCESC{Clock: clock}
	for i := 0; i < n; i++ {
		sc.Lines = append(sc.Lines, chart.GridLine{
			Events: []chart.EventSpec{{Event: ev}},
		})
	}
	return sc
}

// TestIdenticalPeriodDomains runs two domains whose clocks tick in
// lockstep (same period, adjacent phases). Each domain sees its own
// two-tick scenario; the executor must count exactly one coherent accept
// per joint completion, not one per domain.
func TestIdenticalPeriodDomains(t *testing.T) {
	a := &chart.Async{Children: []chart.Chart{
		edgeLeaf("cka", "a", 2),
		edgeLeaf("ckb", "b", 2),
	}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	var g trace.GlobalTrace
	for i := int64(0); i < 6; i++ {
		g = append(g,
			trace.GlobalTick{Domain: "cka", Time: 2 * i, State: event.NewState().WithEvents("a")},
			trace.GlobalTick{Domain: "ckb", Time: 2*i + 1, State: event.NewState().WithEvents("b")},
		)
	}
	v, err := NewExec(mm, monitor.ModeDetect).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Six ticks per domain, a two-tick scenario matching everywhere:
	// windows overlap, so each domain accepts at local ticks 1..5, and
	// every lockstep round after the first completes a coherent accept.
	if v.Accepts != 5 {
		t.Errorf("coherent accepts = %d, want 5\n%s", v.Accepts, mm)
	}
	for i, pd := range v.PerDomain {
		if pd.Accepts != 5 {
			t.Errorf("domain %d accepts = %d, want 5", i, pd.Accepts)
		}
	}
}

// TestNeverTickingDomain starves one domain entirely: however often the
// live domain completes its scenario, no coherent accept may be counted,
// and the starved domain's engine must consume zero steps.
func TestNeverTickingDomain(t *testing.T) {
	a := &chart.Async{Children: []chart.Chart{
		edgeLeaf("live", "a", 1),
		edgeLeaf("dead", "b", 1),
	}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExec(mm, monitor.ModeDetect)
	var g trace.GlobalTrace
	for i := int64(0); i < 10; i++ {
		g = append(g, trace.GlobalTick{Domain: "live", Time: i, State: event.NewState().WithEvents("a")})
	}
	v, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 0 {
		t.Errorf("coherent accepts = %d with a starved domain, want 0", v.Accepts)
	}
	if v.PerDomain[0].Accepts != 10 {
		t.Errorf("live domain accepts = %d, want 10", v.PerDomain[0].Accepts)
	}
	if v.PerDomain[1].Steps != 0 {
		t.Errorf("starved domain consumed %d steps, want 0", v.PerDomain[1].Steps)
	}
}

// TestSingleDomainDegenerate pins the degenerate async-parallel case:
// with every other domain silent and no cross arrows, the one live
// domain's local monitor must behave verdict-for-verdict like the plain
// single-clock monitor synthesized from the same child (Async requires
// two children, so degeneracy means starving the second).
func TestSingleDomainDegenerate(t *testing.T) {
	child := edgeLeaf("clk", "a", 2)
	a := &chart.Async{Children: []chart.Chart{child, edgeLeaf("silent", "b", 1)}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := synth.Synthesize(child, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(plain, nil, monitor.ModeDetect)
	ex := NewExec(mm, monitor.ModeDetect)

	states := []struct {
		ev string
	}{{"a"}, {"a"}, {"x"}, {"a"}, {"a"}, {"a"}, {"x"}, {"a"}}
	for i, s := range states {
		st := event.NewState().WithEvents(s.ev)
		res := eng.Step(st)
		mres, err := ex.StepTick(trace.GlobalTick{Domain: "clk", Time: int64(i), State: st})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != mres.Outcome {
			t.Fatalf("tick %d: plain outcome %v, degenerate-async outcome %v", i, res.Outcome, mres.Outcome)
		}
	}
	v := ex.Verdict()
	if got, want := v.PerDomain[0].Accepts, eng.Stats().Accepts; got != want {
		t.Errorf("degenerate-async local accepts = %d, single-clock accepts = %d", got, want)
	}
	if v.Accepts != 0 {
		t.Errorf("coherent accepts = %d with a silent second domain, want 0", v.Accepts)
	}
}
