package mclock

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// threeDomainChart builds a GALS pipeline across three clock domains:
// a producer (clkA) hands off to a relay (clkB) which hands off to a
// consumer (clkC), with a causality chain spanning all three.
func threeDomainChart() *chart.Async {
	mk := func(name, clk string, specs ...[]chart.EventSpec) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: clk}
		for _, s := range specs {
			sc.Lines = append(sc.Lines, chart.GridLine{Events: s})
		}
		return sc
	}
	producer := mk("producer", "clkA",
		[]chart.EventSpec{{Event: "produce", Label: "p1"}},
		[]chart.EventSpec{{Event: "handoff_ab", Label: "p2"}},
	)
	relay := mk("relay", "clkB",
		[]chart.EventSpec{{Event: "relay_in", Label: "r1"}},
		[]chart.EventSpec{{Event: "handoff_bc", Label: "r2"}},
	)
	consumer := mk("consumer", "clkC",
		[]chart.EventSpec{{Event: "consume", Label: "c1"}},
	)
	return &chart.Async{
		ChartName: "three_way",
		Children:  []chart.Chart{producer, relay, consumer},
		CrossArrows: []chart.Arrow{
			{From: "p2", To: "r1"},
			{From: "r2", To: "c1"},
		},
	}
}

func mkTick(tm int64, dom string, evs ...string) trace.GlobalTick {
	return trace.GlobalTick{Time: tm, Domain: dom, State: event.NewState().WithEvents(evs...)}
}

func TestThreeDomainPipelineAccepted(t *testing.T) {
	a := threeDomainChart()
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Domains) != 3 {
		t.Fatalf("domains = %v", mm.Domains)
	}
	good := trace.GlobalTrace{
		mkTick(0, "clkA", "produce"),
		mkTick(1, "clkB"), // idle relay tick
		mkTick(2, "clkC"),
		mkTick(3, "clkA", "handoff_ab"),
		mkTick(4, "clkB", "relay_in"),
		mkTick(5, "clkC"),
		mkTick(6, "clkB", "handoff_bc"),
		mkTick(7, "clkC", "consume"),
	}
	ex := NewExec(mm, monitor.ModeDetect)
	v, err := ex.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 1 {
		t.Errorf("accepts = %d, want 1\n%s", v.Accepts, mm)
	}
	if _, ok := semantics.AsyncSatisfied(a, good); !ok {
		t.Error("oracle rejects the conforming pipeline trace")
	}
}

func TestThreeDomainBrokenChain(t *testing.T) {
	a := threeDomainChart()
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The consumer acts before the relay's handoff: the second hop of
	// the causality chain is violated.
	bad := trace.GlobalTrace{
		mkTick(0, "clkA", "produce"),
		mkTick(1, "clkA", "handoff_ab"),
		mkTick(2, "clkB", "relay_in"),
		mkTick(3, "clkC", "consume"), // before handoff_bc
		mkTick(4, "clkB", "handoff_bc"),
	}
	ex := NewExec(mm, monitor.ModeDetect)
	v, err := ex.Run(bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 0 {
		t.Errorf("accepts = %d for broken chain, want 0", v.Accepts)
	}
	if _, ok := semantics.AsyncSatisfied(a, bad); ok {
		t.Error("oracle accepts the broken chain")
	}
}

func TestThreeDomainRepeatedTransactions(t *testing.T) {
	a := threeDomainChart()
	mm, err := Synthesize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	var g trace.GlobalTrace
	tm := int64(0)
	push := func(dom string, evs ...string) {
		g = append(g, mkTick(tm, dom, evs...))
		tm++
	}
	for i := 0; i < 5; i++ {
		push("clkA", "produce")
		push("clkA", "handoff_ab")
		push("clkB", "relay_in")
		push("clkB", "handoff_bc")
		push("clkC", "consume")
	}
	ex := NewExec(mm, monitor.ModeDetect)
	v, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 5 {
		t.Errorf("accepts = %d, want 5", v.Accepts)
	}
}
