// Package mclock implements the paper's multi-clock monitor synthesis:
// for a CESC with asynchronous parallel composition, the synthesized
// monitor "consists of a number of local monitors one for each clock
// domain ... the monitors communicate and synchronize with each other
// exchanging the information about the local states using a
// scoreboard-like data structure". A MultiMonitor holds one local
// monitor per clock domain, all sharing one scoreboard; cross-domain
// causality arrows become Add_evt instrumentation in the source domain
// and Chk_evt guards in the target domain, evaluated against the global
// clock (the union of all component clocks' ticks).
package mclock

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/synth"
	"repro/internal/trace"
)

// MultiMonitor is the synthesized monitor for a multi-clock CESC.
type MultiMonitor struct {
	Name string
	// Domains lists the clock-domain names in child order.
	Domains []string
	// Locals holds the local monitor for each domain.
	Locals []*monitor.Monitor
}

// Synthesize builds the multi-clock monitor for an Async chart. Each
// child is synthesized into a local monitor on its own clock with the
// full single-clock algorithm (including in-domain causality); the
// async-level cross arrows are then instrumented into the affected local
// monitors, sharing event names on the common scoreboard.
func Synthesize(a *chart.Async, opts *synth.Options) (*MultiMonitor, error) {
	if opts == nil {
		opts = &synth.Options{}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	mm := &MultiMonitor{Name: a.ChartName}
	// Per-child instrumentation maps: tick -> events.
	adds := make([]map[int][]string, len(a.Children))
	chks := make([]map[int][]string, len(a.Children))
	for i := range a.Children {
		adds[i] = make(map[int][]string)
		chks[i] = make(map[int][]string)
	}
	for _, arr := range a.CrossArrows {
		srcChild, srcTick, srcEvent, err := resolveEndpoint(a, arr.From)
		if err != nil {
			return nil, err
		}
		dstChild, dstTick, _, err := resolveEndpoint(a, arr.To)
		if err != nil {
			return nil, err
		}
		adds[srcChild][srcTick] = append(adds[srcChild][srcTick], srcEvent)
		chks[dstChild][dstTick] = append(chks[dstChild][dstTick], srcEvent)
	}
	for i, ch := range a.Children {
		clocks := ch.Clocks()
		if len(clocks) != 1 {
			return nil, fmt.Errorf("mclock: async child %d spans clocks %v; nest Async charts flat", i, clocks)
		}
		local, err := synth.Synthesize(ch, opts)
		if err != nil {
			return nil, fmt.Errorf("mclock: child %d (%s): %w", i, clocks[0], err)
		}
		synth.InstrumentCrossDomain(local, adds[i], chks[i])
		if err := local.Validate(); err != nil {
			return nil, fmt.Errorf("mclock: child %d: %w", i, err)
		}
		mm.Domains = append(mm.Domains, clocks[0])
		mm.Locals = append(mm.Locals, local)
	}
	return mm, nil
}

// resolveEndpoint finds the child index, tick offset, and event name of a
// cross-arrow label.
func resolveEndpoint(a *chart.Async, label string) (child, tick int, eventName string, err error) {
	for i, ch := range a.Children {
		sc, site, ok := chart.FindLabel(ch, label)
		if !ok {
			continue
		}
		// Tick offsets are exact only for pattern-shaped children; labels
		// under Alt/Loop have no fixed offset and are rejected.
		off, ok := labelOffset(ch, sc, site)
		if !ok {
			return 0, 0, "", fmt.Errorf("mclock: cross arrow endpoint %q sits under a construct without a fixed tick offset", label)
		}
		return i, off, site.Event, nil
	}
	return 0, 0, "", fmt.Errorf("mclock: cross arrow endpoint %q not found in any async child", label)
}

func labelOffset(c chart.Chart, target *chart.SCESC, site chart.LabelSite) (int, bool) {
	switch v := c.(type) {
	case *chart.SCESC:
		if v == target {
			return site.Tick, true
		}
		return 0, false
	case *chart.Seq:
		off := 0
		for _, ch := range v.Children {
			if t, ok := labelOffset(ch, target, site); ok {
				return off + t, true
			}
			off += chartWidth(ch)
		}
		return 0, false
	case *chart.Par:
		for _, ch := range v.Children {
			if t, ok := labelOffset(ch, target, site); ok {
				return t, true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

func chartWidth(c chart.Chart) int {
	switch v := c.(type) {
	case *chart.SCESC:
		return v.NumTicks()
	case *chart.Seq:
		w := 0
		for _, ch := range v.Children {
			w += chartWidth(ch)
		}
		return w
	case *chart.Par:
		w := 0
		for _, ch := range v.Children {
			if cw := chartWidth(ch); cw > w {
				w = cw
			}
		}
		return w
	default:
		return 0
	}
}

// Verdict summarizes a multi-clock run.
type Verdict struct {
	// Accepts counts coherent multi-domain acceptances: each domain's
	// local monitor completed its scenario, and for every completion the
	// last domain to finish observed all others' completions (the
	// all-domains-accepted condition evaluated on the global clock).
	Accepts int
	// PerDomain holds each local engine's stats.
	PerDomain []monitor.Stats
	// Violations aggregates assert-mode violations across domains.
	Violations int
}

// Exec executes a MultiMonitor over a global trace. All local engines
// share one scoreboard; each consumes exactly the ticks of its domain, in
// global-time order, and Add_evt entries are stamped with the global
// time. A multi-clock acceptance is counted when every domain has
// accepted at least once and the current tick completes the last missing
// domain.
type Exec struct {
	mm      *MultiMonitor
	sb      *monitor.Scoreboard
	engines []*monitor.Engine
	byName  map[string]int
	now     int64
	// acceptedSince tracks, per domain, acceptances since the last
	// coherent multi-domain accept.
	acceptedSince []int
	verdict       Verdict
}

// NewExec prepares an execution of mm in the given mode.
func NewExec(mm *MultiMonitor, mode monitor.Mode) *Exec {
	ex := &Exec{
		mm:            mm,
		sb:            monitor.NewScoreboard(),
		byName:        make(map[string]int, len(mm.Domains)),
		acceptedSince: make([]int, len(mm.Domains)),
	}
	for i, lm := range mm.Locals {
		// Prefer the compiled-program path: guard evaluation over packed
		// slots with one scoreboard sample per step. Monitors the program
		// compiler rejects (e.g. > 64 Chk_evt events) run interpreted —
		// both paths share Engine semantics and the one scoreboard.
		var eng *monitor.Engine
		if prog, err := monitor.CompileProgram(lm); err == nil {
			eng = prog.NewEngine(ex.sb, mode)
		} else {
			eng = monitor.NewEngine(lm, ex.sb, mode)
		}
		eng.SetClockFunc(func() int64 { return ex.now })
		ex.engines = append(ex.engines, eng)
		ex.byName[mm.Domains[i]] = i
	}
	return ex
}

// Scoreboard returns the shared scoreboard.
func (ex *Exec) Scoreboard() *monitor.Scoreboard { return ex.sb }

// Engine returns the local engine for a domain (nil if unknown).
func (ex *Exec) Engine(domain string) *monitor.Engine {
	if i, ok := ex.byName[domain]; ok {
		return ex.engines[i]
	}
	return nil
}

// StepTick feeds one global tick to the owning domain's engine.
func (ex *Exec) StepTick(t trace.GlobalTick) (monitor.StepResult, error) {
	i, ok := ex.byName[t.Domain]
	if !ok {
		return monitor.StepResult{}, fmt.Errorf("mclock: tick for unknown domain %q", t.Domain)
	}
	ex.now = t.Time
	res := ex.engines[i].Step(t.State)
	if res.Outcome == monitor.Accepted {
		ex.acceptedSince[i]++
		if ex.allAccepted() {
			ex.verdict.Accepts++
			for j := range ex.acceptedSince {
				ex.acceptedSince[j] = 0
			}
		}
	}
	return res, nil
}

func (ex *Exec) allAccepted() bool {
	for _, n := range ex.acceptedSince {
		if n == 0 {
			return false
		}
	}
	return true
}

// Run consumes a whole global trace and returns the verdict.
func (ex *Exec) Run(g trace.GlobalTrace) (Verdict, error) {
	for _, t := range g {
		if _, err := ex.StepTick(t); err != nil {
			return ex.verdict, err
		}
	}
	return ex.Verdict(), nil
}

// Verdict snapshots the execution outcome.
func (ex *Exec) Verdict() Verdict {
	v := ex.verdict
	v.PerDomain = nil
	v.Violations = 0
	for _, eng := range ex.engines {
		st := eng.Stats()
		v.PerDomain = append(v.PerDomain, st)
		v.Violations += st.Violations
	}
	return v
}

// String describes the multi-monitor structure.
func (mm *MultiMonitor) String() string {
	s := fmt.Sprintf("multi-monitor %s: %d clock domains\n", mm.Name, len(mm.Domains))
	for i, d := range mm.Domains {
		s += fmt.Sprintf("-- domain %s --\n%s", d, mm.Locals[i])
	}
	return s
}
