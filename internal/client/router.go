package client

// Router is the ring-aware face of the client: it fetches the cluster's
// consistent-hash ring from GET /cluster/ring, computes the session
// owner locally with the same hash the nodes use, and sends each call
// straight to the owner. Requests opt into redirect routing
// (X-Cesc-Route: redirect), so a node that disagrees answers 307 with
// the owner's URL instead of proxying — the router follows the
// redirect, refreshes its ring, and stays one-hop in steady state.
// Transient 409s (session mid-handoff or mid-promotion) are paced by
// Retry-After and retried against the freshly refreshed ring, which is
// what carries a tick stream across a live migration or a failover
// without the caller noticing.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// Seeds are node base URLs used to bootstrap (and re-bootstrap)
	// ring discovery; at least one is required.
	Seeds []string
	// Client is the per-node client template; BaseURL, HTTPClient, and
	// ExtraHeader are overwritten per member.
	Client Options
	// MaxHops bounds redirect/refresh hops per call (default 4).
	MaxHops int
	// RefreshEvery re-fetches the ring in the background; 0 refreshes
	// only on demand (first use and routing misses).
	RefreshEvery time.Duration
}

// Router routes session calls to their ring owner.
type Router struct {
	opts RouterOptions

	mu      sync.Mutex
	ring    *cluster.Ring
	clients map[string]*Client // by base URL

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router over the given seed nodes. The first ring
// fetch happens lazily, so constructing a router is cheap and a dead
// seed only costs its caller a refresh error.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Seeds) == 0 {
		return nil, fmt.Errorf("cescd: router needs at least one seed URL")
	}
	if opts.MaxHops <= 0 {
		opts.MaxHops = 4
	}
	r := &Router{
		opts:    opts,
		clients: make(map[string]*Client),
		stop:    make(chan struct{}),
	}
	if opts.RefreshEvery > 0 {
		r.wg.Add(1)
		go r.refreshLoop()
	}
	return r, nil
}

// Close stops the background refresh loop, if any.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

func (r *Router) refreshLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.RefreshEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = r.Refresh(ctx)
			cancel()
		}
	}
}

// Refresh fetches the ring from every known node (current members plus
// seeds) and keeps the newest view — highest epoch, fingerprint as the
// tie-break, exactly the rule the nodes themselves use.
func (r *Router) Refresh(ctx context.Context) error {
	urls := map[string]bool{}
	for _, s := range r.opts.Seeds {
		urls[strings.TrimRight(s, "/")] = true
	}
	r.mu.Lock()
	if r.ring != nil {
		for _, m := range r.ring.Members() {
			urls[m.URL] = true
		}
	}
	r.mu.Unlock()

	var best *cluster.Ring
	var lastErr error
	for u := range urls {
		var info cluster.RingInfo
		if err := r.clientAt(u).do(ctx, http.MethodGet, "/cluster/ring", nil, &info); err != nil {
			lastErr = err
			continue
		}
		candidate := cluster.NewRingFromInfo(info)
		if candidate.Len() == 0 {
			continue
		}
		if best == nil || candidate.Epoch() > best.Epoch() ||
			(candidate.Epoch() == best.Epoch() && candidate.Fingerprint() > best.Fingerprint()) {
			best = candidate
		}
	}
	if best == nil {
		return fmt.Errorf("cescd: no node answered a ring fetch: %w", lastErr)
	}
	r.mu.Lock()
	cur := r.ring
	if cur == nil || best.Epoch() > cur.Epoch() ||
		(best.Epoch() == cur.Epoch() && best.Fingerprint() > cur.Fingerprint()) {
		r.ring = best
	}
	r.mu.Unlock()
	return nil
}

// Ring returns the router's current view (nil before the first
// successful refresh).
func (r *Router) Ring() *cluster.Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// clientAt returns (building if needed) the client for a node URL. Each
// member client opts into redirect routing and never auto-follows, so a
// 307 comes back to the router as an *APIError with the owner's URL.
func (r *Router) clientAt(baseURL string) *Client {
	baseURL = strings.TrimRight(baseURL, "/")
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[baseURL]; ok {
		return c
	}
	opts := r.opts.Client
	opts.BaseURL = baseURL
	opts.ExtraHeader = http.Header{cluster.HeaderRoute: []string{"redirect"}}
	if opts.HTTPClient == nil {
		timeout := opts.RequestTimeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		opts.HTTPClient = &http.Client{
			Timeout: timeout,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	c := New(opts)
	r.clients[baseURL] = c
	return c
}

// ownerURL picks the node a session call should go to: the ring owner
// when a ring is known, the first seed otherwise.
func (r *Router) ownerURL(id string) string {
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	if ring != nil {
		if owner, ok := ring.Owner(id); ok {
			return owner.URL
		}
	}
	return r.opts.Seeds[0]
}

// anyURL returns some reachable-looking node for non-session calls.
func (r *Router) anyURL() string { return r.ownerURL("") }

// do routes one call: send to the computed owner, follow a 307 to the
// node the cluster says owns the session, and on transient routing
// misses (409 with pacing, vanished session on a stale node) refresh
// the ring and try again, up to MaxHops.
func (r *Router) do(ctx context.Context, method, path, key string, body []byte, out any) error {
	target := r.ownerURL(key)
	var lastErr error
	for hop := 0; hop < r.opts.MaxHops; hop++ {
		err := r.clientAt(target).do(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			// Network-level failure after the member client's own
			// retries: the node is likely gone. Refresh and re-route.
			if ctx.Err() != nil {
				return err
			}
			_ = r.Refresh(ctx)
			next := r.ownerURL(key)
			if next == target {
				return err
			}
			target = next
			continue
		}
		switch apiErr.Code {
		case http.StatusTemporaryRedirect:
			if apiErr.Location == "" {
				return err
			}
			if apiErr.RetryAfter > 0 {
				if !sleepCtx(ctx, apiErr.RetryAfter) {
					return ctx.Err()
				}
			}
			target = baseOf(apiErr.Location)
			// The redirecting node knows a newer topology than we do.
			_ = r.Refresh(ctx)
		case http.StatusConflict, http.StatusNotFound:
			// Mid-handoff (409, already paced by the member client's
			// retry loop) or a stale view pointing at a node that no
			// longer holds the session (404). Refresh and re-route.
			if apiErr.RetryAfter > 0 {
				if !sleepCtx(ctx, apiErr.RetryAfter) {
					return ctx.Err()
				}
			}
			_ = r.Refresh(ctx)
			next := r.ownerURL(key)
			if next == target && apiErr.Code == http.StatusNotFound {
				return err // same owner, really no such session
			}
			target = next
		default:
			return err
		}
	}
	return fmt.Errorf("cescd: routing %s %s: gave up after %d hops: %w", method, path, r.opts.MaxHops, lastErr)
}

// baseOf strips the path from a Location URL, leaving the node base.
func baseOf(loc string) string {
	rest := loc
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	} else {
		return loc
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return loc[:len(loc)-len(rest)+i]
	}
	return loc
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// LoadSpecs loads .cesc source on every current ring member (specs are
// per-node state; a session can land anywhere).
func (r *Router) LoadSpecs(ctx context.Context, src string, replace bool) error {
	if r.Ring() == nil {
		if err := r.Refresh(ctx); err != nil {
			return err
		}
	}
	ring := r.Ring()
	if ring == nil {
		return fmt.Errorf("cescd: no ring view")
	}
	for _, m := range ring.Members() {
		if _, err := r.clientAt(m.URL).LoadSpecs(ctx, src, replace); err != nil {
			var apiErr *APIError
			// Tolerate re-loads: the member already has the spec.
			if errors.As(err, &apiErr) && apiErr.Code == http.StatusConflict {
				continue
			}
			return fmt.Errorf("cescd: loading specs on %s: %w", m.Name, err)
		}
	}
	return nil
}

// CreateSession opens a session on any live node; the node mints an ID
// it owns under the current ring, so the new session starts at home.
// A 429 with X-Cesc-Shed: sessions is terminal to the member client, so
// an overloaded node costs one attempt here and the loop hops to the
// next member — the routed view of "the ring steers creation to cooler
// nodes". A quota refusal (X-Cesc-Quota: sessions) hops too, which is
// correct while quotas are per-node state.
func (r *Router) CreateSession(ctx context.Context, mode string, specs ...string) (*RoutedSession, error) {
	if r.Ring() == nil {
		_ = r.Refresh(ctx)
	}
	urls := []string{}
	if ring := r.Ring(); ring != nil {
		for _, m := range ring.Members() {
			urls = append(urls, m.URL)
		}
	}
	urls = append(urls, r.opts.Seeds...)
	var lastErr error
	for _, u := range urls {
		sess, err := r.clientAt(u).CreateSession(ctx, mode, specs...)
		if err != nil {
			lastErr = err
			continue
		}
		return &RoutedSession{r: r, ID: sess.ID}, nil
	}
	return nil, fmt.Errorf("cescd: creating session: %w", lastErr)
}

// RoutedSession is a session handle that follows its session around the
// cluster: every call is routed to the current ring owner, and the
// sequence counter lives here so exactly-once ingest survives moves.
type RoutedSession struct {
	r         *Router
	ID        string
	seq       atomic.Uint64
	lastTrace atomic.Value // string: trace id of the last SendTicks
}

// LastTrace reports the trace id the most recent SendTicks traveled
// under ("" before the first) — the handle into GET /cluster/trace?trace=…,
// which merges that trace's spans across every node it touched.
func (s *RoutedSession) LastTrace() string {
	id, _ := s.lastTrace.Load().(string)
	return id
}

// Resume rebinds a routed handle to an existing session; nextSeq is the
// first unused sequence number (pass lastAcked+1).
func (r *Router) Resume(id string, nextSeq uint64) *RoutedSession {
	s := &RoutedSession{r: r, ID: id}
	if nextSeq > 0 {
		s.seq.Store(nextSeq - 1)
	}
	return s
}

// SendTicks streams one batch to the session's current owner.
func (s *RoutedSession) SendTicks(ctx context.Context, ticks []server.StateJSON, wait bool) (TickAck, error) {
	body, err := encodeTicks(ticks)
	if err != nil {
		return TickAck{}, err
	}
	// Every routed batch travels under one trace id (the caller's via
	// WithTraceID, or a minted one), stable across redirects, retries,
	// and failovers — so a single id stitches the batch's path through
	// the whole fleet.
	traceID := TraceIDFrom(ctx)
	if traceID == "" {
		traceID = s.r.clientAt(s.r.ownerURL(s.ID)).newTraceID()
		ctx = WithTraceID(ctx, traceID)
	}
	s.lastTrace.Store(traceID)
	seq := s.seq.Add(1)
	path := fmt.Sprintf("/sessions/%s/ticks?seq=%d", s.ID, seq)
	if wait {
		path += "&wait=1"
	}
	var ack TickAck
	if err := s.r.do(ctx, http.MethodPost, path, s.ID, body, &ack); err != nil {
		return TickAck{}, err
	}
	return ack, nil
}

// Verdicts fetches the session's accumulated verdicts from its owner.
func (s *RoutedSession) Verdicts(ctx context.Context) (server.VerdictsJSON, error) {
	var v server.VerdictsJSON
	err := s.r.do(ctx, http.MethodGet, "/sessions/"+s.ID+"/verdicts", s.ID, nil, &v)
	return v, err
}

// Info fetches the session's current info from its owner.
func (s *RoutedSession) Info(ctx context.Context) (server.SessionInfoJSON, error) {
	var info server.SessionInfoJSON
	err := s.r.do(ctx, http.MethodGet, "/sessions/"+s.ID, s.ID, nil, &info)
	return info, err
}

// Delete tears the session down wherever it lives.
func (s *RoutedSession) Delete(ctx context.Context) error {
	return s.r.do(ctx, http.MethodDelete, "/sessions/"+s.ID, s.ID, nil, nil)
}
