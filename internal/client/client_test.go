package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/server"
)

// fastOpts keeps test backoffs tiny and deterministic.
func fastOpts(url string) Options {
	return Options{
		BaseURL:        url,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffCap:     5 * time.Millisecond,
		Seed:           1,
	}
}

// TestRetryOn5xx checks transient server errors are retried and the
// eventual success is returned.
func TestRetryOn5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("client counted %d retries, want 2", got)
	}
}

// TestTerminalErrorNoRetry checks 4xx responses surface immediately as
// APIError without burning attempts.
func TestTerminalErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if apiErr.Message != "no such session" {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

// TestGivesUpAfterMaxAttempts checks the retry loop is bounded and the
// final error wraps the last failure.
func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"still down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped 500", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want MaxAttempts=4", got)
	}
}

// TestRetryAfterHonored checks a 429's Retry-After raises the backoff
// floor above the configured (tiny) exponential delay.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"slow down"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	start := time.Now()
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, Retry-After demanded >= 1s", elapsed)
	}
}

// TestContextCancellation checks a caller's context deadline cuts
// through the retry loop.
func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}

// --- end-to-end against the real daemon --------------------------------

func newDaemon(t *testing.T, cfg server.Config) (*server.Server, *Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := New(fastOpts(ts.URL))
	if _, err := c.LoadSpecs(context.Background(), parser.Print("OcpSimpleRead", ocp.SimpleReadChart()), false); err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func wireTicks(tr []event.State) []server.StateJSON {
	out := make([]server.StateJSON, len(tr))
	for i, s := range tr {
		out[i] = server.EncodeState(s)
	}
	return out
}

// TestExactlyOnceUnderResponseLoss is the client/server contract test:
// the server applies a batch but the response is lost (injected fault on
// the respond path); the client retries the same seq and the server
// acknowledges the duplicate without re-stepping — the monitor sees each
// tick exactly once.
func TestExactlyOnceUnderResponseLoss(t *testing.T) {
	faults := faultinject.New(1).Add(faultinject.Rule{
		Point: "server.ingest.respond", Kind: faultinject.KindError, After: 2, Count: 1,
	})
	srv, c := newDaemon(t, server.Config{Shards: 1, QueueDepth: 16, Faults: faults})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "detect", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 23, FaultRate: 0.2}).GenerateTrace(100)
	ticks := wireTicks(tr)
	var dupes int
	for at := 0; at < len(ticks); at += 20 {
		ack, err := sess.SendTicks(ctx, ticks[at:at+20], true)
		if err != nil {
			t.Fatalf("batch at %d: %v", at, err)
		}
		if ack.Duplicate {
			dupes++
		}
	}
	if c.Retries() == 0 {
		t.Fatal("fault never fired: no retries observed")
	}
	if dupes != 1 {
		t.Fatalf("duplicate acks = %d, want 1", dupes)
	}
	v, err := sess.Verdicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Monitors[0].Steps != len(tr) {
		t.Fatalf("steps = %d, want %d (tick lost or double-applied)", v.Monitors[0].Steps, len(tr))
	}
	if got := srv.Metrics().BatchesDeduped; got != 1 {
		t.Fatalf("batches_deduped = %d, want 1", got)
	}
}

// TestRetryOnInjected429 drives the backpressure path: the server
// answers 429 + Retry-After for a few attempts, the client backs off and
// the stream completes with no ticks lost.
func TestRetryOnInjected429(t *testing.T) {
	faults := faultinject.New(1).Add(faultinject.Rule{
		Point: "server.ingest", Kind: faultinject.KindError, Err: server.ErrInjected429, After: 1, Every: 1, Count: 2,
	})
	_, c := newDaemon(t, server.Config{Shards: 1, QueueDepth: 16, Faults: faults})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "detect", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 29}).GenerateTrace(60)
	ticks := wireTicks(tr)
	for at := 0; at < len(ticks); at += 20 {
		if _, err := sess.SendTicks(ctx, ticks[at:at+20], true); err != nil {
			t.Fatalf("batch at %d: %v", at, err)
		}
	}
	if c.Retries() < 2 {
		t.Fatalf("retries = %d, want >= 2 (two injected 429s)", c.Retries())
	}
	v, err := sess.Verdicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Monitors[0].Steps != len(tr) {
		t.Fatalf("steps = %d, want %d", v.Monitors[0].Steps, len(tr))
	}
}

// TestResumeAfterCrash is the full robustness loop: a journaling server
// crashes mid-stream, a new server recovers from the WAL, and the client
// resumes the same session — re-sending the batch whose ack it never
// saw, which the recovered server deduplicates off the journaled
// watermark. Final verdicts match an uninterrupted run.
func TestResumeAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Shards: 1, QueueDepth: 16, SnapshotEvery: 2, WALDir: dir}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 31, FaultRate: 0.2}).GenerateTrace(200)
	ticks := wireTicks(tr)
	ctx := context.Background()

	// Reference run, no crash.
	_, refC := newDaemon(t, server.Config{Shards: 1, QueueDepth: 16})
	refSess, err := refC.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	for at := 0; at < len(ticks); at += 20 {
		if _, err := refSess.SendTicks(ctx, ticks[at:at+20], true); err != nil {
			t.Fatal(err)
		}
	}
	refV, err := refSess.Verdicts(ctx)
	if err != nil {
		t.Fatal(err)
	}

	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := New(fastOpts(ts1.URL))
	if _, err := c1.LoadSpecs(ctx, parser.Print("OcpSimpleRead", ocp.SimpleReadChart()), false); err != nil {
		t.Fatal(err)
	}
	sess, err := c1.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	var acked uint64
	for at := 0; at < 100; at += 20 {
		if _, err := sess.SendTicks(ctx, ticks[at:at+20], true); err != nil {
			t.Fatal(err)
		}
		acked++
	}
	srv1.Crash()
	ts1.Close()

	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})
	c2 := New(fastOpts(ts2.URL))
	// The client never saw batch 5 fail, but a cautious resume re-sends
	// from the last acked batch: the recovered watermark absorbs it.
	resumed := c2.Resume(sess.ID, acked)
	ack, err := resumed.SendTicks(ctx, ticks[80:100], true)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Duplicate {
		t.Fatalf("re-sent batch not deduped: %+v", ack)
	}
	for at := 100; at < len(ticks); at += 20 {
		if _, err := resumed.SendTicks(ctx, ticks[at:at+20], true); err != nil {
			t.Fatal(err)
		}
	}
	gotV, err := resumed.Verdicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(gotV.Monitors)
	want, _ := json.Marshal(refV.Monitors)
	if string(got) != string(want) {
		t.Fatalf("resumed stream verdicts diverged:\n got %s\nwant %s", got, want)
	}
}

// TestTraceIDPropagation checks the client's half of the tracing
// contract: every request carries Accept: application/json and an
// X-Cesc-Trace id, the id is stable across retry attempts of one
// logical call, a caller-chosen id (WithTraceID) wins over the client's
// own, and the acked id is retained on the session.
func TestTraceIDPropagation(t *testing.T) {
	var calls atomic.Int64
	seen := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen <- r.Header.Get("X-Cesc-Trace")
		if r.Header.Get("Accept") != "application/json" {
			t.Errorf("missing Accept: application/json on %s %s", r.Method, r.URL.Path)
		}
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, `{"status":"ok","accepted":0,"trace":"ignored"}`)
	}))
	defer ts.Close()
	c := New(fastOpts(ts.URL))
	sess := c.Resume("fake", 0)
	ticks := []server.StateJSON{{}}
	if _, err := sess.SendTicks(context.Background(), ticks, false); err != nil {
		t.Fatalf("send: %v", err)
	}
	first, second := <-seen, <-seen
	if first == "" || first != second {
		t.Errorf("retry changed trace id: %q then %q", first, second)
	}

	const chosen = "caller-chose-this"
	ctx := WithTraceID(context.Background(), chosen)
	if _, err := sess.SendTicks(ctx, ticks, false); err != nil {
		t.Fatalf("send with trace: %v", err)
	}
	if got := <-seen; got != chosen {
		t.Errorf("WithTraceID sent %q, want %q", got, chosen)
	}
	if got := TraceIDFrom(ctx); got != chosen {
		t.Errorf("TraceIDFrom = %q, want %q", got, chosen)
	}
}

// TestTraceIDEndToEnd drives a real daemon with tracing enabled and
// checks SendTicks retains the server-acked trace id, which then
// correlates spans on GET /debug/trace.
func TestTraceIDEndToEnd(t *testing.T) {
	srv, c := newDaemon(t, server.Config{Shards: 2, TraceDepth: 128})
	sess, err := c.CreateSession(context.Background(), "detect", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 2}).GenerateTrace(32)
	ack, err := sess.SendTicks(context.Background(), wireTicks(tr), true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Trace == "" || sess.LastTrace() != ack.Trace {
		t.Fatalf("acked trace %q, LastTrace %q", ack.Trace, sess.LastTrace())
	}
	snap := srv.Metrics()
	if snap.TraceSpans == 0 {
		t.Fatal("server recorded no spans")
	}
}
