// Package client is the Go client for the cescd daemon: request
// timeouts, context cancellation, and transparent retry with
// exponential backoff and jitter. Tick batches carry client-assigned
// sequence numbers, which the server's dedup watermark turns into
// exactly-once ingestion — a retry of a batch the server already
// applied (because only the response was lost) is acknowledged without
// being re-processed, so it is always safe to retry.
package client

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// traceKey carries a caller-chosen X-Cesc-Trace id through a context.
type traceKey struct{}

// WithTraceID pins the trace id attached to requests made with ctx, so a
// caller can correlate its own logs with the daemon's /debug/trace spans.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom extracts a trace id set by WithTraceID ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Options tunes a Client; zero values select the documented defaults.
type Options struct {
	// BaseURL is the daemon's root URL (required), e.g. "http://host:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: http.Client with
	// RequestTimeout).
	HTTPClient *http.Client
	// RequestTimeout bounds each individual attempt (default 10s). The
	// caller's context still bounds the whole call including backoff.
	RequestTimeout time.Duration
	// MaxAttempts is the total number of tries per request, first
	// included (default 5).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// attempts: base*2^n capped, plus up to 50% jitter (defaults 50ms
	// and 2s). A 429's Retry-After raises the delay when larger.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed makes the jitter deterministic in tests (0 seeds from the
	// backoff parameters, still deterministic but arbitrary).
	Seed int64
	// ExtraHeader is added to every request (the cluster router uses it
	// to opt into redirect routing via X-Cesc-Route).
	ExtraHeader http.Header
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	return o
}

// APIError is a terminal (non-retryable) HTTP error response. For a
// 307 from a cluster node, Location carries the session owner's URL;
// RetryAfter echoes the response's Retry-After header when present, so
// a routing layer can honor the server's pacing before its next hop.
// Quota and Shed echo the daemon's X-Cesc-Quota / X-Cesc-Shed headers
// on 429s, distinguishing a per-tenant quota refusal from overload
// shedding (and both from ordinary queue backpressure).
type APIError struct {
	Code       int
	Message    string
	Location   string
	RetryAfter time.Duration
	Quota      string
	Shed       string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cescd: %d: %s", e.Code, e.Message)
}

// Client talks to one cescd daemon. Safe for concurrent use.
type Client struct {
	opts Options
	http *http.Client
	base string

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Uint64 // attempts beyond the first, across all calls
}

// New builds a client for the daemon at opts.BaseURL.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: opts.RequestTimeout}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = int64(opts.BackoffBase) ^ int64(opts.BackoffCap)
	}
	return &Client{
		opts: opts,
		http: hc,
		base: strings.TrimRight(opts.BaseURL, "/"),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Retries reports the attempts beyond the first across all calls — a
// test and observability hook.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// backoff computes the sleep before retry attempt n (0-based), honoring
// a server-provided floor (Retry-After).
func (c *Client) backoff(n int, floor time.Duration) time.Duration {
	d := c.opts.BackoffBase << uint(n)
	if d > c.opts.BackoffCap || d <= 0 {
		d = c.opts.BackoffCap
	}
	c.mu.Lock()
	d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	if d < floor {
		d = floor
	}
	return d
}

// retryAfter parses a 429/503 Retry-After header (seconds form).
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// newTraceID mints a client-side correlation id from the seeded rng, so
// test runs produce reproducible trace ids.
func (c *Client) newTraceID() string {
	var b [8]byte
	c.mu.Lock()
	for i := range b {
		b[i] = byte(c.rng.Intn(256))
	}
	c.mu.Unlock()
	return hex.EncodeToString(b[:])
}

// do runs one API call with per-attempt timeouts and retry on
// network errors, 429, and 5xx. Terminal HTTP errors come back as
// *APIError. The body is replayed from memory on each attempt, which is
// what makes retrying POSTs safe (combined with ?seq dedup for ticks).
// The X-Cesc-Trace header is the caller's id from WithTraceID when set;
// retries reuse the same id, so one logical call is one trace.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	traceID := TraceIDFrom(ctx)
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		var floor time.Duration
		retryable := false
		lastErr, floor, retryable = c.attempt(ctx, method, path, body, traceID, out)
		if lastErr == nil || !retryable {
			return lastErr
		}
		if attempt == c.opts.MaxAttempts-1 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff(attempt, floor)):
		}
	}
	return fmt.Errorf("cescd: %s %s: giving up after %d attempts: %w",
		method, path, c.opts.MaxAttempts, lastErr)
}

// attempt performs one HTTP round trip and classifies the outcome.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, traceID string, out any) (err error, floor time.Duration, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err, 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	if traceID != "" {
		req.Header.Set("X-Cesc-Trace", traceID)
	}
	for k, vs := range c.opts.ExtraHeader {
		req.Header[k] = vs
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Network-level failure (or attempt timeout): retryable unless
		// the caller's context is done.
		if ctx.Err() != nil {
			return ctx.Err(), 0, false
		}
		return err, 0, true
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err(), 0, false
		}
		return err, 0, true
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("cescd: decoding %s %s response: %w", method, path, err), 0, false
			}
		}
		return nil, 0, false
	}
	msg := strings.TrimSpace(string(data))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	apiErr := &APIError{
		Code: resp.StatusCode, Message: msg, RetryAfter: retryAfter(resp),
		Quota: resp.Header.Get("X-Cesc-Quota"),
		Shed:  resp.Header.Get("X-Cesc-Shed"),
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Three distinct 429s. A session-count quota refusal is terminal:
		// the tenant is at its cap and retrying the same request cannot
		// succeed. A shed session create is terminal to *this* node — the
		// Router hops to a cooler member instead of hammering a hot one.
		// Everything else (tick-rate quota, full shard queue) is pacing:
		// honor Retry-After and retry here.
		if apiErr.Quota == "sessions" || apiErr.Shed == "sessions" {
			return apiErr, apiErr.RetryAfter, false
		}
		return apiErr, apiErr.RetryAfter, true
	case resp.StatusCode == http.StatusServiceUnavailable:
		return apiErr, apiErr.RetryAfter, true
	case resp.StatusCode == http.StatusConflict:
		// 409 with Retry-After is a transient cluster condition (a
		// session mid-handoff or mid-promotion): honor the server's
		// pacing and retry. A bare 409 (e.g. a spec-name conflict) is
		// a real conflict and stays terminal.
		if resp.Header.Get("Retry-After") != "" {
			return apiErr, apiErr.RetryAfter, true
		}
		return apiErr, 0, false
	case resp.StatusCode == http.StatusTemporaryRedirect:
		// A routing answer, not a failure: surface the owner's URL (and
		// any Retry-After pacing) so the ring-aware router can hop.
		// Retrying the same node would just redirect again.
		apiErr.Location = resp.Header.Get("Location")
		return apiErr, 0, false
	case resp.StatusCode >= 500:
		return apiErr, 0, true
	default:
		return apiErr, 0, false
	}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the daemon metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (server.MetricsSnapshot, error) {
	var m server.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// LoadSpecs POSTs .cesc source; replace overwrites existing names.
func (c *Client) LoadSpecs(ctx context.Context, src string, replace bool) ([]string, error) {
	path := "/specs"
	if replace {
		path += "?replace=1"
	}
	var out struct {
		Loaded []string `json:"loaded"`
	}
	if err := c.do(ctx, http.MethodPost, path, []byte(src), &out); err != nil {
		return nil, err
	}
	return out.Loaded, nil
}

// CreateSession opens a monitoring session over the named specs.
func (c *Client) CreateSession(ctx context.Context, mode string, specs ...string) (*Session, error) {
	return c.CreateSessionDiag(ctx, mode, 0, specs...)
}

// CreateSessionDiag opens a session with an explicit violation-
// diagnostics window (0 keeps the mode default: 8 for assert, off for
// detect), so detect-mode sessions can serve provenance too.
func (c *Client) CreateSessionDiag(ctx context.Context, mode string, diagDepth int, specs ...string) (*Session, error) {
	body, err := json.Marshal(map[string]any{"specs": specs, "mode": mode, "diag_depth": diagDepth})
	if err != nil {
		return nil, err
	}
	var info server.SessionInfoJSON
	if err := c.do(ctx, http.MethodPost, "/sessions", body, &info); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: info.ID}, nil
}

// Session is one server-side monitor bank plus the client-side sequence
// counter that makes its tick stream idempotent under retries.
type Session struct {
	c  *Client
	ID string

	seq       atomic.Uint64
	lastTrace atomic.Value // string: trace id of the last SendTicks
}

// LastTrace reports the trace id attached to the most recent SendTicks
// call ("" before the first) — the handle into GET /debug/trace?trace=….
func (s *Session) LastTrace() string {
	id, _ := s.lastTrace.Load().(string)
	return id
}

// Resume rebinds a session handle to an existing (possibly recovered)
// server session. nextSeq is the first unused sequence number; pass
// lastAcked+1 when resuming a stream.
func (c *Client) Resume(id string, nextSeq uint64) *Session {
	s := &Session{c: c, ID: id}
	if nextSeq > 0 {
		s.seq.Store(nextSeq - 1)
	}
	return s
}

// TickAck is the ingest acknowledgment. Trace echoes the batch's
// X-Cesc-Trace correlation id when the daemon has tracing enabled.
type TickAck struct {
	Accepted  int    `json:"accepted"`
	Processed bool   `json:"processed"`
	Seq       uint64 `json:"seq"`
	Duplicate bool   `json:"duplicate"`
	Trace     string `json:"trace"`
}

// SendTicks streams one batch of valuation ticks. Each call consumes the
// next sequence number, so a batch retried after a lost response is
// deduplicated server-side: the ack then reports Duplicate with the
// original seq. wait makes the call block until the batch is processed.
func (s *Session) SendTicks(ctx context.Context, ticks []server.StateJSON, wait bool) (TickAck, error) {
	body, err := encodeTicks(ticks)
	if err != nil {
		return TickAck{}, err
	}
	seq := s.seq.Add(1)
	path := fmt.Sprintf("/sessions/%s/ticks?seq=%d", s.ID, seq)
	if wait {
		path += "&wait=1"
	}
	// Every batch travels under a trace id (caller's via WithTraceID, or a
	// fresh client-minted one), so any slow or violating batch can be
	// looked up in the daemon's /debug/trace afterwards.
	traceID := TraceIDFrom(ctx)
	if traceID == "" {
		traceID = s.c.newTraceID()
		ctx = WithTraceID(ctx, traceID)
	}
	var ack TickAck
	if err := s.c.do(ctx, http.MethodPost, path, body, &ack); err != nil {
		return TickAck{}, err
	}
	s.lastTrace.Store(traceID)
	return ack, nil
}

// encodeTicks renders a tick batch as the NDJSON ingest body.
func encodeTicks(ticks []server.StateJSON) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, tk := range ticks {
		if err := enc.Encode(tk); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Diagnostics fetches the session's violation-provenance reports.
func (s *Session) Diagnostics(ctx context.Context) (server.DiagnosticsJSON, error) {
	var d server.DiagnosticsJSON
	err := s.c.do(ctx, http.MethodGet, "/sessions/"+s.ID+"/diagnostics", nil, &d)
	return d, err
}

// Verdicts fetches the session's accumulated verdicts.
func (s *Session) Verdicts(ctx context.Context) (server.VerdictsJSON, error) {
	var v server.VerdictsJSON
	err := s.c.do(ctx, http.MethodGet, "/sessions/"+s.ID+"/verdicts", nil, &v)
	return v, err
}

// Info fetches the session's current info.
func (s *Session) Info(ctx context.Context) (server.SessionInfoJSON, error) {
	var info server.SessionInfoJSON
	err := s.c.do(ctx, http.MethodGet, "/sessions/"+s.ID, nil, &info)
	return info, err
}

// Delete tears the session down server-side.
func (s *Session) Delete(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/sessions/"+s.ID, nil, nil)
}
