package expr

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/event"
)

// KindResolver tells the parser whether an identifier names an event or a
// proposition. It reports the kind and whether the name is known.
type KindResolver func(name string) (event.Kind, bool)

// EventsByDefault is a KindResolver treating every identifier as an event.
func EventsByDefault(string) (event.Kind, bool) { return event.KindEvent, true }

// Parse parses a guard expression. Grammar (precedence low to high):
//
//	expr    := or
//	or      := and  ( ("|" | "||" | "or")  and )*
//	and     := unary ( ("&" | "&&" | "and") unary )*
//	unary   := ("!" | "not") unary | primary
//	primary := "true" | "false" | "(" expr ")"
//	         | "Chk_evt" "(" ident ")" | "chk" "(" ident ")"
//	         | "event" "(" ident ")" | "prop" "(" ident ")"
//	         | ident
//
// Bare identifiers are resolved through kindOf; if kindOf is nil,
// EventsByDefault is used. Unknown identifiers are an error.
func Parse(src string, kindOf KindResolver) (Expr, error) {
	if kindOf == nil {
		kindOf = EventsByDefault
	}
	p := &exprParser{src: src, kindOf: kindOf}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.lit)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string, kindOf KindResolver) Expr {
	e, err := Parse(src, kindOf)
	if err != nil {
		panic(err)
	}
	return e
}

type exprToken int

const (
	tokEOF exprToken = iota
	tokIdent
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
	tokError
)

type exprParser struct {
	src    string
	pos    int
	tok    exprToken
	lit    string
	kindOf KindResolver
}

func (p *exprParser) errorf(format string, args ...any) error {
	return fmt.Errorf("expr: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *exprParser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '&':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '&' {
			p.pos++
		}
		p.tok, p.lit = tokAnd, "&"
	case c == '|':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
		}
		p.tok, p.lit = tokOr, "|"
	case c == '!':
		p.pos++
		p.tok, p.lit = tokNot, "!"
	case c == '(':
		p.pos++
		p.tok, p.lit = tokLParen, "("
	case c == ')':
		p.pos++
		p.tok, p.lit = tokRParen, ")"
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		word := p.src[start:p.pos]
		switch strings.ToLower(word) {
		case "and":
			p.tok, p.lit = tokAnd, word
		case "or":
			p.tok, p.lit = tokOr, word
		case "not":
			p.tok, p.lit = tokNot, word
		default:
			p.tok, p.lit = tokIdent, word
		}
	default:
		p.tok, p.lit = tokError, string(c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (p *exprParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.tok == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	return Or(terms...), nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.tok == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	return And(terms...), nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.tok == tokNot {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	switch p.tok {
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.lit)
		}
		p.next()
		return e, nil
	case tokIdent:
		word := p.lit
		switch strings.ToLower(word) {
		case "true":
			p.next()
			return True, nil
		case "false":
			p.next()
			return False, nil
		case "chk", "chk_evt":
			p.next()
			name, err := p.parseCallArg(word)
			if err != nil {
				return nil, err
			}
			return Chk(name), nil
		case "event":
			p.next()
			name, err := p.parseCallArg(word)
			if err != nil {
				return nil, err
			}
			return Ev(name), nil
		case "prop":
			p.next()
			name, err := p.parseCallArg(word)
			if err != nil {
				return nil, err
			}
			return Pr(name), nil
		}
		p.next()
		kind, ok := p.kindOf(word)
		if !ok {
			return nil, p.errorf("unknown symbol %q", word)
		}
		if kind == event.KindProp {
			return Pr(word), nil
		}
		return Ev(word), nil
	case tokEOF:
		return nil, p.errorf("unexpected end of expression")
	default:
		return nil, p.errorf("unexpected token %q", p.lit)
	}
}

func (p *exprParser) parseCallArg(fn string) (string, error) {
	if p.tok != tokLParen {
		return "", p.errorf("expected '(' after %s", fn)
	}
	p.next()
	if p.tok != tokIdent {
		return "", p.errorf("expected identifier in %s(...)", fn)
	}
	name := p.lit
	p.next()
	if p.tok != tokRParen {
		return "", p.errorf("expected ')' closing %s(...)", fn)
	}
	p.next()
	return name, nil
}
