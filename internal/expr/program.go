package expr

import (
	"fmt"

	"repro/internal/event"
)

// Guard programs: a guard Expr compiled into a flat postfix instruction
// sequence over interned slot indices. Evaluation walks the code once
// with a fixed-size value stack — no AST pointer chasing, no map
// lookups, no allocation — so one immutable Program can be shared by
// every session running the same monitor. The AST remains the home of
// parsing, satisfiability, and minimization; Program is purely the
// runtime form.

// progOp is the opcode set. Operands are pushed left to right; opAnd /
// opOr pop their arity and push the combined value.
type progOp uint8

const (
	opTrue  progOp = iota // push true
	opFalse               // push false
	opInput               // push input slot arg (via the caller's remap)
	opChk                 // push scoreboard chk bit arg
	opNot                 // negate top of stack
	opAnd                 // pop arg values, push conjunction
	opOr                  // pop arg values, push disjunction
)

type progInstr struct {
	op  progOp
	arg int32
}

// MaxProgramDepth bounds the evaluation stack. Guards synthesized from
// charts are shallow; a guard deeper than this is rejected at compile
// time so EvalPacked can keep its whole boolean stack in a single
// uint64 register — one bit per stack cell, no memory traffic at all.
const MaxProgramDepth = 64

// Program is a compiled guard. The zero value is invalid; build with
// CompileProgram. Programs are immutable after compilation and safe for
// concurrent evaluation.
type Program struct {
	code   []progInstr
	depth  int
	hasChk bool
}

// SlotResolver supplies the interned slot index for each atom during
// compilation. InputSlot resolves events and propositions to input
// valuation slots; ChkSlot resolves scoreboard predicates to chk-bit
// indices. Returning a negative slot fails the compilation.
type SlotResolver interface {
	InputSlot(name string, kind event.Kind) int
	ChkSlot(name string) int
}

// CompileProgram flattens e into postfix code over r's slots.
func CompileProgram(e Expr, r SlotResolver) (*Program, error) {
	p := &Program{}
	depth, err := p.emit(e, r)
	if err != nil {
		return nil, err
	}
	p.depth = depth
	return p, nil
}

// emit appends code for e and returns the stack depth it needs.
func (p *Program) emit(e Expr, r SlotResolver) (int, error) {
	switch v := e.(type) {
	case trueExpr:
		p.code = append(p.code, progInstr{op: opTrue})
		return 1, nil
	case falseExpr:
		p.code = append(p.code, progInstr{op: opFalse})
		return 1, nil
	case EventRef:
		return p.emitInput(v.Name, event.KindEvent, r)
	case PropRef:
		return p.emitInput(v.Name, event.KindProp, r)
	case ChkExpr:
		slot := r.ChkSlot(v.Name)
		if slot < 0 {
			return 0, fmt.Errorf("expr: no chk slot for event %q", v.Name)
		}
		p.code = append(p.code, progInstr{op: opChk, arg: int32(slot)})
		p.hasChk = true
		return 1, nil
	case NotExpr:
		d, err := p.emit(v.X, r)
		if err != nil {
			return 0, err
		}
		p.code = append(p.code, progInstr{op: opNot})
		return d, nil
	case AndExpr:
		return p.emitNary(opAnd, v.Xs, r)
	case OrExpr:
		return p.emitNary(opOr, v.Xs, r)
	default:
		return 0, fmt.Errorf("expr: cannot compile %T", e)
	}
}

func (p *Program) emitInput(name string, kind event.Kind, r SlotResolver) (int, error) {
	slot := r.InputSlot(name, kind)
	if slot < 0 {
		return 0, fmt.Errorf("expr: no input slot for %s %q", kind, name)
	}
	p.code = append(p.code, progInstr{op: opInput, arg: int32(slot)})
	return 1, nil
}

func (p *Program) emitNary(op progOp, xs []Expr, r SlotResolver) (int, error) {
	depth := 0
	for i, x := range xs {
		d, err := p.emit(x, r)
		if err != nil {
			return 0, err
		}
		// Operand i sits on top of i already-pushed values.
		if i+d > depth {
			depth = i + d
		}
	}
	if depth > MaxProgramDepth {
		return 0, fmt.Errorf("expr: guard needs stack depth %d (limit %d)", depth, MaxProgramDepth)
	}
	p.code = append(p.code, progInstr{op: op, arg: int32(len(xs))})
	return depth, nil
}

// Len returns the instruction count (diagnostics and sizing).
func (p *Program) Len() int { return len(p.code) }

// UsesChk reports whether any instruction samples a scoreboard chk bit —
// callers that know no guard of the current automaton state tests the
// scoreboard can skip sampling it (and its lock) entirely.
func (p *Program) UsesChk() bool { return p.hasChk }

// SlotNamer is the inverse of SlotResolver: it renders compiled slot
// indices back to the names they were resolved from, so diagnostics can
// reconstruct a guard from its compiled form alone. InputSym returns the
// empty name for an unknown slot; ChkName likewise.
type SlotNamer interface {
	InputSym(slot int) (string, event.Kind)
	ChkName(idx int) string
}

// Decompile reconstructs the guard AST from the postfix code. The
// compiler preserves n-ary arity (opAnd/opOr carry the operand count),
// so the reconstruction is exact: for any e accepted by CompileProgram,
// Decompile(Compile(e)) renders to the same String() as e. Violation
// provenance relies on this to report the failing guard from the
// compiled program's slot names without keeping the source AST around.
func (p *Program) Decompile(n SlotNamer) (Expr, error) {
	stack := make([]Expr, 0, p.depth)
	for pc, ins := range p.code {
		switch ins.op {
		case opTrue:
			stack = append(stack, True)
		case opFalse:
			stack = append(stack, False)
		case opInput:
			name, kind := n.InputSym(int(ins.arg))
			if name == "" {
				return nil, fmt.Errorf("expr: no symbol for input slot %d", ins.arg)
			}
			if kind == event.KindProp {
				stack = append(stack, PropRef{Name: name})
			} else {
				stack = append(stack, EventRef{Name: name})
			}
		case opChk:
			name := n.ChkName(int(ins.arg))
			if name == "" {
				return nil, fmt.Errorf("expr: no name for chk slot %d", ins.arg)
			}
			stack = append(stack, ChkExpr{Name: name})
		case opNot:
			if len(stack) < 1 {
				return nil, fmt.Errorf("expr: stack underflow at pc %d", pc)
			}
			stack[len(stack)-1] = NotExpr{X: stack[len(stack)-1]}
		case opAnd, opOr:
			k := int(ins.arg)
			if len(stack) < k {
				return nil, fmt.Errorf("expr: stack underflow at pc %d", pc)
			}
			xs := append([]Expr(nil), stack[len(stack)-k:]...)
			stack = stack[:len(stack)-k]
			if ins.op == opAnd {
				stack = append(stack, AndExpr{Xs: xs})
			} else {
				stack = append(stack, OrExpr{Xs: xs})
			}
		default:
			return nil, fmt.Errorf("expr: unknown opcode %d at pc %d", ins.op, pc)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("expr: program leaves %d values on the stack", len(stack))
	}
	return stack[0], nil
}

// EvalPacked evaluates the program against a packed input valuation and
// a chk bitmask (bit i = chk slot i currently live on the scoreboard).
// remap, when non-nil, translates the program's input slots into the
// caller's packed slot space — how one compiled spec runs against any
// session vocabulary; a nil remap means the input is packed in the
// program's own slot order. The call performs no allocation and never
// mutates p, so concurrent evaluations are safe.
func (p *Program) EvalPacked(in event.Packed, remap []int32, chk uint64) bool {
	// The value stack is a uint64 bitmap: bit i is stack cell i, sp is
	// the stack height. MaxProgramDepth = 64 guarantees it fits; pushes
	// write their bit explicitly, so bits above sp may hold stale values.
	var stack uint64
	sp := uint(0)
	for _, ins := range p.code {
		switch ins.op {
		case opTrue:
			stack |= 1 << sp
			sp++
		case opFalse:
			stack &^= 1 << sp
			sp++
		case opInput:
			slot := ins.arg
			if remap != nil {
				slot = remap[slot]
			}
			if slot >= 0 && in.Bit(int(slot)) {
				stack |= 1 << sp
			} else {
				stack &^= 1 << sp
			}
			sp++
		case opChk:
			if chk&(1<<uint(ins.arg)) != 0 {
				stack |= 1 << sp
			} else {
				stack &^= 1 << sp
			}
			sp++
		case opNot:
			stack ^= 1 << (sp - 1)
		case opAnd:
			n := uint(ins.arg)
			sp -= n
			// n == 64 shifts 1<<n to zero, making mask all ones — still right.
			mask := uint64(1)<<n - 1
			if stack>>sp&mask == mask {
				stack |= 1 << sp
			} else {
				stack &^= 1 << sp
			}
			sp++
		case opOr:
			n := uint(ins.arg)
			sp -= n
			mask := uint64(1)<<n - 1
			if stack>>sp&mask != 0 {
				stack |= 1 << sp
			} else {
				stack &^= 1 << sp
			}
			sp++
		}
	}
	return stack&1 != 0
}
