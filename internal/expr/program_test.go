package expr

import (
	"testing"

	"repro/internal/event"
)

// tableSlots is a SlotResolver/SlotNamer pair over a fixed symbol table,
// mimicking how monitor.Program resolves supports and chk lists.
type tableSlots struct {
	inputs []event.Symbol
	chks   []string
}

func (t tableSlots) InputSlot(name string, _ event.Kind) int {
	for i, s := range t.inputs {
		if s.Name == name {
			return i
		}
	}
	return -1
}

func (t tableSlots) ChkSlot(name string) int {
	for i, c := range t.chks {
		if c == name {
			return i
		}
	}
	return -1
}

func (t tableSlots) InputSym(slot int) (string, event.Kind) {
	if slot < 0 || slot >= len(t.inputs) {
		return "", 0
	}
	return t.inputs[slot].Name, t.inputs[slot].Kind
}

func (t tableSlots) ChkName(idx int) string {
	if idx < 0 || idx >= len(t.chks) {
		return ""
	}
	return t.chks[idx]
}

func TestDecompileRoundTrip(t *testing.T) {
	slots := tableSlots{
		inputs: []event.Symbol{
			{Name: "a", Kind: event.KindEvent},
			{Name: "b", Kind: event.KindEvent},
			{Name: "p", Kind: event.KindProp},
			{Name: "q", Kind: event.KindProp},
		},
		chks: []string{"tok", "seen"},
	}
	kindOf := func(name string) (event.Kind, bool) {
		for _, s := range slots.inputs {
			if s.Name == name {
				return s.Kind, true
			}
		}
		return 0, false
	}
	for _, src := range []string{
		"true",
		"false",
		"a",
		"p",
		"!a",
		"!!a",
		"a & b",
		"a | b",
		"a & b & p & q",
		"a & !b | !(p & q)",
		"Chk_evt(tok)",
		"a & Chk_evt(tok) | b & !Chk_evt(seen)",
		"!(a | b) & (p | !q | Chk_evt(tok))",
	} {
		e := MustParse(src, kindOf)
		prog, err := CompileProgram(e, slots)
		if err != nil {
			t.Fatalf("%q: compile: %v", src, err)
		}
		back, err := prog.Decompile(slots)
		if err != nil {
			t.Fatalf("%q: decompile: %v", src, err)
		}
		if got, want := back.String(), e.String(); got != want {
			t.Errorf("%q: round trip = %q, want %q", src, got, want)
		}
		// Prop vs event kind must survive the round trip, not just the
		// rendered text.
		if !Equal(back, e) {
			t.Errorf("%q: round-tripped AST differs", src)
		}
	}
}

func TestDecompileBadNamer(t *testing.T) {
	slots := tableSlots{
		inputs: []event.Symbol{{Name: "a", Kind: event.KindEvent}},
		chks:   []string{"tok"},
	}
	prog, err := CompileProgram(AndExpr{Xs: []Expr{EventRef{Name: "a"}, ChkExpr{Name: "tok"}}}, slots)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// A namer that knows nothing must fail, not fabricate names.
	if _, err := prog.Decompile(tableSlots{}); err == nil {
		t.Error("decompile with an empty namer should fail")
	}
}
