package expr

import (
	"repro/internal/event"
)

// SupportOf builds the union support of the given expressions (Chk_evt
// references excluded — they read the scoreboard).
func SupportOf(es ...Expr) (*event.Support, error) {
	var syms []event.Symbol
	for _, e := range es {
		syms = append(syms, SupportSymbols(e)...)
	}
	return event.NewSupport(syms)
}

// Satisfiable reports whether some valuation of sup makes e true, with
// Chk_evt treated as false. sup must cover e's support symbols; symbols
// outside sup are false.
func Satisfiable(e Expr, sup *event.Support) bool {
	for v := event.Valuation(0); uint64(v) < sup.NumValuations(); v++ {
		if e.Eval(event.ValuationContext{Sup: sup, Val: v}) {
			return true
		}
	}
	return false
}

// Valid reports whether e holds under every valuation of sup.
func Valid(e Expr, sup *event.Support) bool {
	return !Satisfiable(Not(e), sup)
}

// Implies reports whether a -> b holds under every valuation of sup.
func Implies(a, b Expr, sup *event.Support) bool {
	return Valid(Or(Not(a), b), sup)
}

// Equivalent reports whether a and b agree under every valuation of sup.
func Equivalent(a, b Expr, sup *event.Support) bool {
	return Implies(a, b, sup) && Implies(b, a, sup)
}

// Compatible reports whether a and b can hold simultaneously — the
// element-by-element "matching" compatibility used when checking whether
// a pattern prefix can be a suffix of the abstracted trace (section 5 of
// the paper). Two grid-line expressions are compatible iff their
// conjunction is satisfiable.
func Compatible(a, b Expr, sup *event.Support) bool {
	return Satisfiable(And(a, b), sup)
}

// Orthogonal reports whether a and b are mutually exclusive (their
// conjunction is unsatisfiable). Patterns with pairwise-orthogonal
// elements make the paper's KMP fallback exact; see DESIGN.md §3.1.
func Orthogonal(a, b Expr, sup *event.Support) bool {
	return !Compatible(a, b, sup)
}

// The *Auto variants compute the minimal support themselves — the truth
// of these queries depends only on the symbols the expressions mention,
// so enumerating a wider ambient support (e.g. a whole pattern's) is
// pure waste; for long patterns over many signals it is the difference
// between 2^|pair| and 2^|pattern| work per check.

// SatAuto reports satisfiability of e over its own support.
func SatAuto(e Expr) (bool, error) {
	sup, err := SupportOf(e)
	if err != nil {
		return false, err
	}
	return Satisfiable(e, sup), nil
}

// ImpliesAuto reports a -> b over the union of their supports.
func ImpliesAuto(a, b Expr) (bool, error) {
	sup, err := SupportOf(a, b)
	if err != nil {
		return false, err
	}
	return Implies(a, b, sup), nil
}

// CompatibleAuto reports joint satisfiability over the union support.
func CompatibleAuto(a, b Expr) (bool, error) {
	sup, err := SupportOf(a, b)
	if err != nil {
		return false, err
	}
	return Compatible(a, b, sup), nil
}

// OrthogonalAuto reports mutual exclusion over the union support.
func OrthogonalAuto(a, b Expr) (bool, error) {
	c, err := CompatibleAuto(a, b)
	return !c, err
}

// Minterms enumerates the valuations of sup satisfying e (Chk_evt false).
func Minterms(e Expr, sup *event.Support) []event.Valuation {
	var out []event.Valuation
	for v := event.Valuation(0); uint64(v) < sup.NumValuations(); v++ {
		if e.Eval(event.ValuationContext{Sup: sup, Val: v}) {
			out = append(out, v)
		}
	}
	return out
}
