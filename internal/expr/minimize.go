package expr

import (
	"sort"

	"repro/internal/event"
)

// implicant is a cube over the support: value gives the fixed bits,
// mask has a 1 for every don't-care position.
type implicant struct {
	value uint64
	mask  uint64
}

func (im implicant) covers(m uint64) bool {
	return (m &^ im.mask) == (im.value &^ im.mask)
}

// qmMaxBits caps exact Quine-McCluskey minimization; beyond it,
// FromMinterms falls back to a plain sum-of-minterms form.
const qmMaxBits = 14

// FromMinterms converts a set of satisfying valuations over sup back into
// a compact symbolic expression. It is used by the synthesizer to turn
// the per-valuation transition function of compute_transition_func into
// the small human-readable guards of the paper's figures.
//
// For supports up to qmMaxBits symbols it performs full two-level
// minimization (Quine-McCluskey prime generation plus a greedy cover);
// beyond that it emits a sum of minterms directly.
func FromMinterms(sup *event.Support, ms []event.Valuation) Expr {
	n := sup.Len()
	total := sup.NumValuations()
	if len(ms) == 0 {
		return False
	}
	if uint64(len(ms)) == total {
		return True
	}
	if n > qmMaxBits {
		return sumOfMinterms(sup, ms)
	}
	primes := primeImplicants(ms, n)
	chosen := greedyCover(primes, ms)
	terms := make([]Expr, 0, len(chosen))
	for _, im := range chosen {
		terms = append(terms, cubeExpr(sup, im))
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].String() < terms[j].String() })
	return Or(terms...)
}

func sumOfMinterms(sup *event.Support, ms []event.Valuation) Expr {
	terms := make([]Expr, 0, len(ms))
	for _, m := range ms {
		terms = append(terms, cubeExpr(sup, implicant{value: uint64(m)}))
	}
	return Or(terms...)
}

func cubeExpr(sup *event.Support, im implicant) Expr {
	lits := make([]Expr, 0, sup.Len())
	for i, sym := range sup.Symbols() {
		bit := uint64(1) << uint(i)
		if im.mask&bit != 0 {
			continue
		}
		var ref Expr
		if sym.Kind == event.KindEvent {
			ref = Ev(sym.Name)
		} else {
			ref = Pr(sym.Name)
		}
		if im.value&bit != 0 {
			lits = append(lits, ref)
		} else {
			lits = append(lits, Not(ref))
		}
	}
	return And(lits...)
}

// primeImplicants runs the QM combining pass: repeatedly merge cubes
// differing in exactly one determined bit until no merges remain.
func primeImplicants(ms []event.Valuation, nbits int) []implicant {
	cur := make(map[implicant]bool, len(ms))
	for _, m := range ms {
		cur[implicant{value: uint64(m)}] = true
	}
	var primes []implicant
	for len(cur) > 0 {
		next := make(map[implicant]bool)
		merged := make(map[implicant]bool)
		keys := make([]implicant, 0, len(cur))
		for im := range cur {
			keys = append(keys, im)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].mask != keys[j].mask {
				return keys[i].mask < keys[j].mask
			}
			return keys[i].value < keys[j].value
		})
		// Group by mask; only same-mask cubes can merge.
		byMask := make(map[uint64][]implicant)
		for _, im := range keys {
			byMask[im.mask] = append(byMask[im.mask], im)
		}
		for _, group := range byMask {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					a, b := group[i], group[j]
					diff := (a.value ^ b.value) &^ a.mask
					if diff != 0 && diff&(diff-1) == 0 { // exactly one bit
						nm := implicant{value: a.value &^ diff, mask: a.mask | diff}
						next[nm] = true
						merged[a] = true
						merged[b] = true
					}
				}
			}
		}
		for _, im := range keys {
			if !merged[im] {
				primes = append(primes, im)
			}
		}
		cur = next
	}
	return primes
}

// greedyCover selects primes covering all minterms: essential primes
// first, then greedily by coverage count.
func greedyCover(primes []implicant, ms []event.Valuation) []implicant {
	uncovered := make(map[uint64]bool, len(ms))
	for _, m := range ms {
		uncovered[uint64(m)] = true
	}
	coveredBy := make(map[uint64][]int)
	for pi, p := range primes {
		for m := range uncovered {
			if p.covers(m) {
				coveredBy[m] = append(coveredBy[m], pi)
			}
		}
	}
	var chosen []implicant
	take := func(pi int) {
		chosen = append(chosen, primes[pi])
		for m := range uncovered {
			if primes[pi].covers(m) {
				delete(uncovered, m)
			}
		}
	}
	// Essential primes.
	ordered := make([]uint64, 0, len(uncovered))
	for m := range uncovered {
		ordered = append(ordered, m)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, m := range ordered {
		if !uncovered[m] {
			continue
		}
		if len(coveredBy[m]) == 1 {
			take(coveredBy[m][0])
		}
	}
	// Greedy for the rest.
	for len(uncovered) > 0 {
		best, bestCount := -1, 0
		for pi, p := range primes {
			count := 0
			for m := range uncovered {
				if p.covers(m) {
					count++
				}
			}
			if count > bestCount || (count == bestCount && count > 0 && best >= 0 && lessImplicant(p, primes[best])) {
				best, bestCount = pi, count
			}
		}
		if best < 0 {
			break // unreachable: every minterm is its own implicant
		}
		take(best)
	}
	return chosen
}

func lessImplicant(a, b implicant) bool {
	if a.mask != b.mask {
		return a.mask > b.mask // prefer larger cubes
	}
	return a.value < b.value
}

// Minimize re-expresses e as a minimized two-level form over its own
// support. Chk_evt references are preserved by conjoining them back:
// e is split as input-part relative to sup with Chk treated opaquely only
// when e contains no Chk references; otherwise e is returned unchanged.
func Minimize(e Expr) Expr {
	if len(ChkRefs(e)) > 0 {
		return e
	}
	sup, err := SupportOf(e)
	if err != nil {
		return e
	}
	if sup.Len() == 0 {
		if e.Eval(event.ValuationContext{Sup: sup, Val: 0}) {
			return True
		}
		return False
	}
	return FromMinterms(sup, Minterms(e, sup))
}
