package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestConstructorsFoldConstants(t *testing.T) {
	cases := []struct {
		got  Expr
		want string
	}{
		{And(), "true"},
		{Or(), "false"},
		{And(True, Ev("a")), "a"},
		{And(False, Ev("a")), "false"},
		{Or(True, Ev("a")), "true"},
		{Or(False, Ev("a")), "a"},
		{Not(True), "false"},
		{Not(Not(Ev("a"))), "a"},
		{And(Ev("a"), Ev("a")), "a"},
		{Or(Ev("a"), Ev("a")), "a"},
		{And(Ev("a"), Not(Ev("a"))), "false"},
		{Or(Ev("a"), Not(Ev("a"))), "true"},
		{And(And(Ev("a"), Ev("b")), Ev("c")), "a & b & c"},
		{Or(Or(Ev("a"), Ev("b")), Ev("c")), "a | b | c"},
	}
	for _, tc := range cases {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("got %q, want %q", got, tc.want)
		}
	}
}

func TestStringPrecedence(t *testing.T) {
	e := Or(And(Ev("a"), Ev("b")), Not(Or(Ev("c"), Pr("p"))))
	if got := e.String(); got != "a & b | !(c | p)" {
		t.Errorf("string = %q", got)
	}
	if got := And(Or(Ev("a"), Ev("b")), Ev("c")).String(); got != "(a | b) & c" {
		t.Errorf("string = %q", got)
	}
}

type mapCtx struct {
	ev, pr, chk map[string]bool
}

func (c mapCtx) Event(n string) bool  { return c.ev[n] }
func (c mapCtx) Prop(n string) bool   { return c.pr[n] }
func (c mapCtx) ChkEvt(n string) bool { return c.chk[n] }

func TestEval(t *testing.T) {
	ctx := mapCtx{
		ev:  map[string]bool{"e": true},
		pr:  map[string]bool{"p": true},
		chk: map[string]bool{"x": true},
	}
	cases := []struct {
		e    Expr
		want bool
	}{
		{True, true},
		{False, false},
		{Ev("e"), true},
		{Ev("f"), false},
		{Pr("p"), true},
		{Chk("x"), true},
		{Chk("y"), false},
		{And(Ev("e"), Pr("p"), Chk("x")), true},
		{And(Ev("e"), Ev("f")), false},
		{Or(Ev("f"), Chk("x")), true},
		{Not(Ev("f")), true},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(ctx); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestEvalState(t *testing.T) {
	s := event.NewState().WithEvents("e").WithProps("p")
	if !EvalState(And(Ev("e"), Pr("p")), s) {
		t.Error("state eval wrong")
	}
	if EvalState(Chk("e"), s) {
		t.Error("Chk must be false without a scoreboard")
	}
}

func TestSupportSymbolsExcludesChk(t *testing.T) {
	e := And(Ev("b"), Pr("a"), Chk("c"), Not(Ev("d")))
	syms := SupportSymbols(e)
	if len(syms) != 3 {
		t.Fatalf("symbols = %v", syms)
	}
	if syms[0].Name != "a" || syms[0].Kind != event.KindProp {
		t.Errorf("first symbol = %v", syms[0])
	}
	chks := ChkRefs(e)
	if len(chks) != 1 || chks[0] != "c" {
		t.Errorf("chk refs = %v", chks)
	}
}

func TestReferencesPolarity(t *testing.T) {
	if !References(And(Ev("a"), Pr("p")), "a") {
		t.Error("positive reference missed")
	}
	if References(Not(Ev("a")), "a") {
		t.Error("negated occurrence counted as positive")
	}
	if !References(Not(Not(Ev("a"))), "a") {
		t.Error("double negation lost polarity")
	}
	if !References(Or(Ev("b"), Ev("a")), "a") {
		t.Error("disjunct reference missed")
	}
	if References(Ev("b"), "a") {
		t.Error("wrong symbol matched")
	}
}

func sup2(t *testing.T, es ...Expr) *event.Support {
	t.Helper()
	s, err := SupportOf(es...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSatisfiableImpliesEquivalent(t *testing.T) {
	a, b := Ev("a"), Ev("b")
	sup := sup2(t, a, b)
	if !Satisfiable(And(a, b), sup) {
		t.Error("a&b unsat?")
	}
	if Satisfiable(And(a, Not(a)), sup) {
		t.Error("contradiction sat?")
	}
	if !Valid(Or(a, Not(a)), sup) {
		t.Error("tautology invalid?")
	}
	if !Implies(And(a, b), a, sup) {
		t.Error("a&b !=> a")
	}
	if Implies(a, And(a, b), sup) {
		t.Error("a => a&b?")
	}
	if !Equivalent(Not(And(a, b)), Or(Not(a), Not(b)), sup) {
		t.Error("De Morgan failed")
	}
	if !Orthogonal(And(a, Not(b)), And(b, Not(a)), sup) {
		t.Error("orthogonality missed")
	}
	if !Compatible(a, b, sup) {
		t.Error("compatibility missed")
	}
}

func TestMinterms(t *testing.T) {
	a, b := Ev("a"), Ev("b")
	sup := sup2(t, a, b)
	ms := Minterms(Or(a, b), sup)
	if len(ms) != 3 {
		t.Errorf("minterms of a|b = %v", ms)
	}
	if got := len(Minterms(True, sup)); got != 4 {
		t.Errorf("minterms of true = %d", got)
	}
}

func TestFromMintermsSpecialCases(t *testing.T) {
	sup := sup2(t, Ev("a"), Ev("b"))
	if got := FromMinterms(sup, nil); !Equal(got, False) {
		t.Errorf("empty minterms = %v", got)
	}
	all := Minterms(True, sup)
	if got := FromMinterms(sup, all); !Equal(got, True) {
		t.Errorf("full minterms = %v", got)
	}
}

// TestFromMintermsRoundTrip: the minimized expression has exactly the
// given satisfying valuations (property-based via testing/quick).
func TestFromMintermsRoundTrip(t *testing.T) {
	sup := sup2(t, Ev("a"), Ev("b"), Ev("c"), Pr("p"))
	nv := sup.NumValuations()
	f := func(mask uint16) bool {
		var ms []event.Valuation
		want := make(map[event.Valuation]bool)
		for v := uint64(0); v < nv; v++ {
			if mask&(1<<v) != 0 {
				ms = append(ms, event.Valuation(v))
				want[event.Valuation(v)] = true
			}
		}
		e := FromMinterms(sup, ms)
		for v := uint64(0); v < nv; v++ {
			got := e.Eval(event.ValuationContext{Sup: sup, Val: event.Valuation(v)})
			if got != want[event.Valuation(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFromMintermsMinimizes: a full subcube collapses to a small term.
func TestFromMintermsMinimizes(t *testing.T) {
	sup := sup2(t, Ev("a"), Ev("b"), Ev("c"))
	// All valuations with a=1: should minimize to just "a".
	var ms []event.Valuation
	ai := sup.Index("a")
	for v := uint64(0); v < sup.NumValuations(); v++ {
		if event.Valuation(v).Bit(ai) {
			ms = append(ms, event.Valuation(v))
		}
	}
	if got := FromMinterms(sup, ms).String(); got != "a" {
		t.Errorf("minimized = %q, want a", got)
	}
}

func TestMinimize(t *testing.T) {
	a, b := Ev("a"), Ev("b")
	// (a & b) | (a & !b) minimizes to a.
	e := Or(And(a, b), And(a, Not(b)))
	if got := Minimize(e).String(); got != "a" {
		t.Errorf("minimize = %q", got)
	}
	// Chk-containing expressions are preserved.
	withChk := And(a, Chk("x"))
	if got := Minimize(withChk); !Equal(got, withChk) {
		t.Errorf("chk expression altered: %v", got)
	}
	if got := Minimize(True); !Equal(got, True) {
		t.Errorf("minimize true = %v", got)
	}
	if got := Minimize(And(a, Not(a))); !Equal(got, False) {
		t.Errorf("minimize contradiction = %v", got)
	}
}

func TestParseExpressions(t *testing.T) {
	kind := func(n string) (event.Kind, bool) {
		switch n {
		case "p", "q":
			return event.KindProp, true
		case "a", "b", "c":
			return event.KindEvent, true
		}
		return 0, false
	}
	cases := []struct{ src, want string }{
		{"a", "a"},
		{"a & b", "a & b"},
		{"a && b || c", "a & b | c"},
		{"!(a | b)", "!(a | b)"},
		{"a and b or not c", "a & b | !c"},
		{"true", "true"},
		{"false & a", "false"},
		{"Chk_evt(a) & b", "Chk_evt(a) & b"},
		{"chk(a)", "Chk_evt(a)"},
		{"event(p)", "p"},
		{"prop(a)", "a"},
		{"p & a", "p & a"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.src, kind)
		if err != nil {
			t.Errorf("parse %q: %v", tc.src, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("parse %q = %q, want %q", tc.src, got, tc.want)
		}
	}
	// Kind resolution.
	e := MustParse("p & a", kind)
	syms := SupportSymbols(e)
	if syms[0].Name != "a" || syms[0].Kind != event.KindEvent {
		t.Errorf("a resolved to %v", syms[0])
	}
	if syms[1].Name != "p" || syms[1].Kind != event.KindProp {
		t.Errorf("p resolved to %v", syms[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "a &", "& a", "(a", "a)", "a b", "a ? b", "chk(", "chk(a", "chk()", "unknown_zz",
	} {
		kind := func(n string) (event.Kind, bool) {
			if n == "a" || n == "b" {
				return event.KindEvent, true
			}
			return 0, false
		}
		if _, err := Parse(src, kind); err == nil {
			t.Errorf("source %q accepted", src)
		}
	}
}

func TestParseDefaultResolver(t *testing.T) {
	e, err := Parse("x & y", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range SupportSymbols(e) {
		if s.Kind != event.KindEvent {
			t.Errorf("default resolver made %v", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("((", nil)
}

// TestParseRoundTrip: printing then reparsing preserves semantics.
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	names := []string{"a", "b", "c"}
	var gen func(depth int) Expr
	gen = func(depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return Ev(names[rng.Intn(len(names))])
		}
		switch rng.Intn(3) {
		case 0:
			return And(gen(depth-1), gen(depth-1))
		case 1:
			return Or(gen(depth-1), gen(depth-1))
		default:
			return Not(gen(depth - 1))
		}
	}
	for i := 0; i < 100; i++ {
		e := gen(4)
		back, err := Parse(e.String(), EventsByDefault)
		if err != nil {
			t.Fatalf("reparse %q: %v", e, err)
		}
		sup := sup2(t, e)
		if sup.Len() > 0 && !Equivalent(e, back, sup) {
			t.Fatalf("round trip changed semantics: %q vs %q", e, back)
		}
	}
}

func TestWalkAndEqualAndFmt(t *testing.T) {
	e := And(Ev("a"), Not(Or(Pr("p"), Chk("c"))))
	count := 0
	Walk(e, func(Expr) { count++ })
	if count != 6 {
		t.Errorf("walk visited %d nodes, want 6", count)
	}
	if !Equal(e, e) || Equal(e, True) {
		t.Error("Equal misbehaves")
	}
	if got := Fmt("a", Ev("x")); got != "a = x" {
		t.Errorf("Fmt = %q", got)
	}
	if !strings.Contains(Chk("e").String(), "Chk_evt(e)") {
		t.Error("chk string wrong")
	}
}
