// Package expr implements the logical expressions of the paper's monitor
// definition: guards formed over EVENTS and PROP with conjunction,
// disjunction and negation, plus the scoreboard predicate Chk_evt used by
// causality checks. It also provides satisfiability / implication /
// equivalence over finite supports and two-level minimization
// (Quine-McCluskey) used to render per-valuation transition functions
// back into the compact symbolic labels shown in the paper's figures.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
)

// Context supplies truth values during evaluation: the input trace element
// (events and propositions) and the scoreboard (Chk_evt).
type Context interface {
	Event(name string) bool
	Prop(name string) bool
	ChkEvt(name string) bool
}

// Expr is a logical expression over EVENTS and PROP.
type Expr interface {
	// Eval evaluates the expression in ctx.
	Eval(ctx Context) bool
	// String renders the expression with minimal parentheses.
	String() string
	prec() int
}

// Precedence levels for printing.
const (
	precOr = iota
	precAnd
	precNot
	precAtom
)

type trueExpr struct{}
type falseExpr struct{}

// EventRef references an event symbol (the paper's bare `e`).
type EventRef struct{ Name string }

// PropRef references a proposition symbol.
type PropRef struct{ Name string }

// ChkExpr is the scoreboard predicate Chk_evt(e): true iff event e is
// currently recorded on the scoreboard. It reads the scoreboard, not the
// input valuation.
type ChkExpr struct{ Name string }

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// AndExpr is n-ary conjunction (n >= 2 after construction).
type AndExpr struct{ Xs []Expr }

// OrExpr is n-ary disjunction (n >= 2 after construction).
type OrExpr struct{ Xs []Expr }

// True and False are the constant expressions.
var (
	True  Expr = trueExpr{}
	False Expr = falseExpr{}
)

func (trueExpr) Eval(Context) bool     { return true }
func (falseExpr) Eval(Context) bool    { return false }
func (e EventRef) Eval(c Context) bool { return c.Event(e.Name) }
func (e PropRef) Eval(c Context) bool  { return c.Prop(e.Name) }
func (e ChkExpr) Eval(c Context) bool  { return c.ChkEvt(e.Name) }
func (e NotExpr) Eval(c Context) bool  { return !e.X.Eval(c) }

func (e AndExpr) Eval(c Context) bool {
	for _, x := range e.Xs {
		if !x.Eval(c) {
			return false
		}
	}
	return true
}

func (e OrExpr) Eval(c Context) bool {
	for _, x := range e.Xs {
		if x.Eval(c) {
			return true
		}
	}
	return false
}

func (trueExpr) prec() int  { return precAtom }
func (falseExpr) prec() int { return precAtom }
func (EventRef) prec() int  { return precAtom }
func (PropRef) prec() int   { return precAtom }
func (ChkExpr) prec() int   { return precAtom }
func (NotExpr) prec() int   { return precNot }
func (AndExpr) prec() int   { return precAnd }
func (OrExpr) prec() int    { return precOr }

func (trueExpr) String() string   { return "true" }
func (falseExpr) String() string  { return "false" }
func (e EventRef) String() string { return e.Name }
func (e PropRef) String() string  { return e.Name }
func (e ChkExpr) String() string  { return "Chk_evt(" + e.Name + ")" }

func (e NotExpr) String() string {
	return "!" + wrap(e.X, precNot)
}

func (e AndExpr) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = wrap(x, precAnd)
	}
	return strings.Join(parts, " & ")
}

func (e OrExpr) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = wrap(x, precOr)
	}
	return strings.Join(parts, " | ")
}

func wrap(x Expr, outer int) string {
	if x.prec() < outer {
		return "(" + x.String() + ")"
	}
	return x.String()
}

// Ev returns an event reference.
func Ev(name string) Expr { return EventRef{Name: name} }

// Pr returns a proposition reference.
func Pr(name string) Expr { return PropRef{Name: name} }

// Chk returns the scoreboard predicate Chk_evt(name).
func Chk(name string) Expr { return ChkExpr{Name: name} }

// Not returns the negation of x with constant folding and double-negation
// elimination.
func Not(x Expr) Expr {
	switch v := x.(type) {
	case trueExpr:
		return False
	case falseExpr:
		return True
	case NotExpr:
		return v.X
	}
	return NotExpr{X: x}
}

// And returns the conjunction of xs, flattening nested conjunctions,
// folding constants, deduplicating, and detecting complementary literals.
func And(xs ...Expr) Expr {
	var flat []Expr
	for _, x := range xs {
		switch v := x.(type) {
		case nil:
			continue
		case trueExpr:
			continue
		case falseExpr:
			return False
		case AndExpr:
			flat = append(flat, v.Xs...)
		default:
			flat = append(flat, x)
		}
	}
	flat = dedupe(flat)
	if hasComplement(flat) {
		return False
	}
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return AndExpr{Xs: flat}
}

// Or returns the disjunction of xs, flattening, folding constants,
// deduplicating, and detecting complementary literals.
func Or(xs ...Expr) Expr {
	var flat []Expr
	for _, x := range xs {
		switch v := x.(type) {
		case nil:
			continue
		case falseExpr:
			continue
		case trueExpr:
			return True
		case OrExpr:
			flat = append(flat, v.Xs...)
		default:
			flat = append(flat, x)
		}
	}
	flat = dedupe(flat)
	if hasComplement(flat) {
		return True
	}
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return OrExpr{Xs: flat}
}

func dedupe(xs []Expr) []Expr {
	seen := make(map[string]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		k := x.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, x)
	}
	return out
}

func hasComplement(xs []Expr) bool {
	pos := make(map[string]bool)
	neg := make(map[string]bool)
	for _, x := range xs {
		if n, ok := x.(NotExpr); ok {
			neg[n.X.String()] = true
		} else {
			pos[x.String()] = true
		}
	}
	for k := range neg {
		if pos[k] {
			return true
		}
	}
	return false
}

// Equal reports structural equality (after the constructors' canonical
// flattening, but not full semantic equivalence — see Equivalent).
func Equal(a, b Expr) bool { return a.String() == b.String() }

// Walk calls fn on e and every subexpression, pre-order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch v := e.(type) {
	case NotExpr:
		Walk(v.X, fn)
	case AndExpr:
		for _, x := range v.Xs {
			Walk(x, fn)
		}
	case OrExpr:
		for _, x := range v.Xs {
			Walk(x, fn)
		}
	}
}

// SupportSymbols returns the input symbols (events and propositions)
// referenced by e, excluding Chk_evt references (those read the
// scoreboard, not the input valuation). The result is name-sorted.
func SupportSymbols(e Expr) []event.Symbol {
	seen := make(map[string]event.Kind)
	Walk(e, func(x Expr) {
		switch v := x.(type) {
		case EventRef:
			seen[v.Name] = event.KindEvent
		case PropRef:
			seen[v.Name] = event.KindProp
		}
	})
	out := make([]event.Symbol, 0, len(seen))
	for n, k := range seen {
		out = append(out, event.Symbol{Name: n, Kind: k})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ChkRefs returns the event names referenced via Chk_evt in e, sorted.
func ChkRefs(e Expr) []string {
	seen := make(map[string]bool)
	Walk(e, func(x Expr) {
		if v, ok := x.(ChkExpr); ok {
			seen[v.Name] = true
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// References reports whether e mentions the event name positively in its
// input part (an EventRef appears outside any negation). This is the
// paper's "transition depends on the occurrence of event ex" test used by
// add_causality_check.
func References(e Expr, name string) bool {
	return refs(e, name, true)
}

func refs(e Expr, name string, polarity bool) bool {
	switch v := e.(type) {
	case EventRef:
		return polarity && v.Name == name
	case NotExpr:
		return refs(v.X, name, !polarity)
	case AndExpr:
		for _, x := range v.Xs {
			if refs(x, name, polarity) {
				return true
			}
		}
	case OrExpr:
		for _, x := range v.Xs {
			if refs(x, name, polarity) {
				return true
			}
		}
	}
	return false
}

// StateContext adapts an event.State (with no scoreboard) to Context.
type StateContext struct{ S event.State }

// Event reports the state's event valuation.
func (c StateContext) Event(name string) bool { return c.S.Event(name) }

// Prop reports the state's proposition valuation.
func (c StateContext) Prop(name string) bool { return c.S.Prop(name) }

// ChkEvt is false: a bare state has no scoreboard.
func (c StateContext) ChkEvt(string) bool { return false }

// EvalState evaluates e against a state with an empty scoreboard.
func EvalState(e Expr, s event.State) bool { return e.Eval(StateContext{S: s}) }

// Fmt is a convenience for building labelled guard tables in diagnostics:
// "name = expr".
func Fmt(name string, e Expr) string { return fmt.Sprintf("%s = %s", name, e) }
