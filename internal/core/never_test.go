package core

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/readproto"
	"repro/internal/trace"
)

// forbiddenChart: a response arriving while no command is outstanding is
// specified as a never-scenario (response directly after response).
func forbiddenChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "double_response",
		Clock:     "clk",
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: "resp"}}},
			{Events: []chart.EventSpec{{Event: "resp"}}},
		},
	}
}

func TestNeverCheckerFlagsForbiddenScenario(t *testing.T) {
	art, err := CompileChart(forbiddenChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nc := art.NewNeverChecker()
	// Two back-to-back responses: one forbidden occurrence.
	tr := trace.NewBuilder().
		Tick().Events("cmd").
		Tick().Events("resp").
		Tick().Events("resp").
		Tick().
		Build()
	if got := nc.Run(tr); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	if nc.Violations() != 1 {
		t.Error("violation counter wrong")
	}
}

func TestNeverCheckerCleanTraffic(t *testing.T) {
	art, err := CompileChart(forbiddenChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nc := art.NewNeverChecker()
	tr := trace.NewBuilder().
		Tick().Events("cmd").
		Tick().Events("resp").
		Tick().Events("cmd").
		Tick().Events("resp").
		Build()
	if got := nc.Run(tr); got != 0 {
		t.Errorf("violations = %d on clean traffic", got)
	}
	// Step-level API: a command after the final response breaks the
	// forbidden pair.
	if nc.Step(trace.NewBuilder().Tick().Events("cmd").Build()[0]) {
		t.Error("command flagged as forbidden")
	}
}

func TestNeverCheckerPanicsOnMultiClock(t *testing.T) {
	art, err := CompileChart(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewNeverChecker did not panic on multi-clock artifact")
		}
	}()
	art.NewNeverChecker()
}
