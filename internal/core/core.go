// Package core is the top-level API of the CESC monitor-synthesis
// library: it compiles CESC specifications (from Go chart values or from
// .cesc source text) into executable assertion monitors, dispatching
// between single-clock synthesis (package synth) and multi-clock
// synthesis (package mclock), and exposes uniform runners over traces and
// simulations.
//
// Typical use:
//
//	art, err := core.CompileChart(ocp.SimpleReadChart(), nil)
//	det := art.NewDetector()
//	for _, s := range tr { det.Step(s) }
//	fmt.Println(det.Accepts())
package core

import (
	"fmt"
	"os"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Options re-exports the synthesis options.
type Options = synth.Options

// Artifact is a compiled CESC specification: exactly one of Single or
// Multi is set, depending on whether the chart spans one clock domain or
// several.
type Artifact struct {
	// Name is the chart's declared name.
	Name string
	// Chart is the validated source chart.
	Chart chart.Chart
	// Single is the synthesized monitor for single-clock charts.
	Single *monitor.Monitor
	// Multi is the synthesized multi-clock monitor for Async charts.
	Multi *mclock.MultiMonitor
}

// IsMultiClock reports whether the artifact spans several clock domains.
func (a *Artifact) IsMultiClock() bool { return a.Multi != nil }

// CompileChart synthesizes a monitor from a chart value.
func CompileChart(c chart.Chart, opts *Options) (*Artifact, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	art := &Artifact{Name: c.Name(), Chart: c}
	if ac, ok := c.(*chart.Async); ok {
		mm, err := mclock.Synthesize(ac, opts)
		if err != nil {
			return nil, err
		}
		art.Multi = mm
		return art, nil
	}
	m, err := synth.Synthesize(c, opts)
	if err != nil {
		return nil, err
	}
	art.Single = m
	return art, nil
}

// CompileSource parses .cesc source text and compiles every chart in it.
func CompileSource(src string, opts *Options) ([]*Artifact, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	arts := make([]*Artifact, 0, len(f.Charts))
	for _, n := range f.Charts {
		a, err := CompileChart(n.Chart, opts)
		if err != nil {
			return nil, fmt.Errorf("core: chart %q: %w", n.Name, err)
		}
		a.Name = n.Name
		arts = append(arts, a)
	}
	return arts, nil
}

// CompileFile reads and compiles a .cesc file.
func CompileFile(path string, opts *Options) ([]*Artifact, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return CompileSource(string(src), opts)
}

// Detector runs a single-clock artifact as a scenario detector over a
// trace.
type Detector struct {
	eng *monitor.Engine
}

// NewDetector returns a detection-mode runner; it panics on multi-clock
// artifacts (use NewMultiExec).
func (a *Artifact) NewDetector() *Detector {
	if a.Single == nil {
		panic("core: NewDetector on a multi-clock artifact; use NewMultiExec")
	}
	return &Detector{eng: monitor.NewEngine(a.Single, nil, monitor.ModeDetect)}
}

// NewChecker returns an assertion-mode runner (violations reported when
// in-progress scenarios are abandoned); it panics on multi-clock
// artifacts.
func (a *Artifact) NewChecker() *Detector {
	if a.Single == nil {
		panic("core: NewChecker on a multi-clock artifact; use NewMultiExec")
	}
	return &Detector{eng: monitor.NewEngine(a.Single, nil, monitor.ModeAssert)}
}

// NewMultiExec returns the multi-clock execution for an Async artifact.
func (a *Artifact) NewMultiExec(mode monitor.Mode) *mclock.Exec {
	if a.Multi == nil {
		panic("core: NewMultiExec on a single-clock artifact")
	}
	return mclock.NewExec(a.Multi, mode)
}

// NeverChecker treats the chart as a *forbidden* scenario: every
// detection of its window is a violation. This is the never-assertion
// form of assertion-based verification (e.g. "a second command is never
// accepted while a response is pending").
type NeverChecker struct {
	eng        *monitor.Engine
	violations int
}

// NewNeverChecker returns a forbidden-scenario runner; it panics on
// multi-clock artifacts.
func (a *Artifact) NewNeverChecker() *NeverChecker {
	if a.Single == nil {
		panic("core: NewNeverChecker on a multi-clock artifact")
	}
	return &NeverChecker{eng: monitor.NewEngine(a.Single, nil, monitor.ModeDetect)}
}

// Step consumes one element and reports whether the forbidden scenario
// completed at this tick (a violation).
func (n *NeverChecker) Step(s event.State) bool {
	if n.eng.Step(s).Outcome == monitor.Accepted {
		n.violations++
		return true
	}
	return false
}

// Run consumes a trace and returns the violation count.
func (n *NeverChecker) Run(tr trace.Trace) int {
	for _, s := range tr {
		n.Step(s)
	}
	return n.violations
}

// Violations returns the number of forbidden-scenario occurrences seen.
func (n *NeverChecker) Violations() int { return n.violations }

// Step consumes one trace element and reports whether the scenario
// completed at this tick.
func (d *Detector) Step(s event.State) bool {
	return d.eng.Step(s).Outcome == monitor.Accepted
}

// Run consumes a whole trace.
func (d *Detector) Run(tr trace.Trace) monitor.Stats {
	return d.eng.Run(tr)
}

// Accepts returns the number of scenarios detected so far.
func (d *Detector) Accepts() int { return d.eng.Stats().Accepts }

// Violations returns the number of assert-mode violations so far.
func (d *Detector) Violations() int { return d.eng.Stats().Violations }

// Engine exposes the underlying engine for advanced use (shared
// scoreboards, custom clocks).
func (d *Detector) Engine() *monitor.Engine { return d.eng }
