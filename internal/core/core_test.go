package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/readproto"
)

func TestCompileChartSingleClock(t *testing.T) {
	art, err := CompileChart(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if art.IsMultiClock() || art.Single == nil {
		t.Fatal("single-clock chart compiled wrong")
	}
	det := art.NewDetector()
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 31}).GenerateTrace(100)
	det.Run(tr)
	if det.Accepts() == 0 {
		t.Error("no detections on clean traffic")
	}
	if det.Violations() != 0 {
		t.Error("detect mode reported violations")
	}
	if det.Engine() == nil {
		t.Error("engine accessor nil")
	}
}

func TestCompileChartMultiClock(t *testing.T) {
	art, err := CompileChart(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !art.IsMultiClock() {
		t.Fatal("multi-clock chart not recognized")
	}
	ex := art.NewMultiExec(monitor.ModeDetect)
	v, err := ex.Run(readproto.GoodGlobalTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepts != 1 {
		t.Errorf("accepts = %d, want 1", v.Accepts)
	}
}

func TestCompileSourceAndFile(t *testing.T) {
	src := `
cesc Quick {
  scesc on clk {
    tick { req; }
    tick { ack; }
  }
}
`
	arts, err := CompileSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Name != "Quick" || arts[0].Single == nil {
		t.Fatalf("arts = %+v", arts)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "q.cesc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	arts2, err := CompileFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts2) != 1 {
		t.Fatal("file compile failed")
	}
	if _, err := CompileFile(filepath.Join(dir, "missing.cesc"), nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("cesc X {", nil); err == nil {
		t.Error("syntax error accepted")
	}
	// Parses but fails synthesis: contradictory grid line.
	bad := `
cesc Bad {
  scesc on clk {
    tick { x; !x; }
  }
}
`
	if _, err := CompileSource(bad, nil); err == nil {
		t.Error("contradictory chart accepted")
	}
}

func TestDetectorStepAndChecker(t *testing.T) {
	art, err := CompileChart(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	det := art.NewDetector()
	tr := ocp.NewModel(ocp.Config{Gap: 3, Seed: 32}).GenerateTrace(40)
	hits := 0
	for _, s := range tr {
		if det.Step(s) {
			hits++
		}
	}
	if hits != det.Accepts() {
		t.Errorf("step hits %d != accepts %d", hits, det.Accepts())
	}
	chk := art.NewChecker()
	faulty := ocp.NewModel(ocp.Config{Gap: 2, Seed: 33, FaultRate: 1}).GenerateTrace(100)
	chk.Run(faulty)
	if chk.Violations() == 0 {
		t.Error("checker reported no violations on all-faulty traffic")
	}
}

func TestFacadePanics(t *testing.T) {
	single, err := CompileChart(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := CompileChart(readproto.MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "NewDetector on multi", func() { multi.NewDetector() })
	mustPanic(t, "NewChecker on multi", func() { multi.NewChecker() })
	mustPanic(t, "NewMultiExec on single", func() { single.NewMultiExec(monitor.ModeDetect) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestCompileChartValidatesFirst(t *testing.T) {
	bad := ocp.SimpleReadChart()
	bad.Lines = nil
	if _, err := CompileChart(bad, nil); err == nil || !strings.Contains(err.Error(), "grid line") {
		t.Errorf("invalid chart error = %v", err)
	}
}
