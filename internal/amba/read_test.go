package amba

import (
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/synth"
)

func TestReadChartValidatesAndDetects(t *testing.T) {
	if err := ReadChart().Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := synth.Translate(ReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 4 {
		t.Errorf("states = %d, want 4", m.States)
	}
	model := NewModel(Config{Gap: 2, Seed: 81, Read: true})
	tr := model.GenerateTrace(300)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	if model.Issued() < 10 {
		t.Fatalf("issued only %d reads", model.Issued())
	}
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d reads", stats.Accepts, model.Issued())
	}
}

func TestReadChartCausality(t *testing.T) {
	m, err := synth.Translate(ReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	closing := transTo(t, m, 2, 3)
	for _, chk := range []string{"Chk_evt(init_transaction)", "Chk_evt(bus_set_data)"} {
		if !strings.Contains(closing.Guard.String(), chk) {
			t.Errorf("closing guard %q missing %s", closing.Guard, chk)
		}
	}
}

func TestReadWriteChartsAreDistinct(t *testing.T) {
	// A write transaction must not satisfy the read chart (the setup
	// cycle carries `write`, not `read`).
	m, err := synth.Translate(ReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	writes := NewModel(Config{Gap: 2, Seed: 82}).GenerateTrace(300)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if stats := eng.Run(writes); stats.Accepts != 0 {
		t.Errorf("read monitor accepted %d write transactions", stats.Accepts)
	}
	// And vice versa.
	mw, err := synth.Translate(TransactionChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reads := NewModel(Config{Gap: 2, Seed: 83, Read: true}).GenerateTrace(300)
	engW := monitor.NewEngine(mw, nil, monitor.ModeDetect)
	if stats := engW.Run(reads); stats.Accepts != 0 {
		t.Errorf("write monitor accepted %d read transactions", stats.Accepts)
	}
}

func TestReadFaultsSuppressWindows(t *testing.T) {
	m, err := synth.Translate(ReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []FaultKind{FaultDropMasterResponse, FaultDropBusResponse, FaultLateDataPhase, FaultMissingControlInfo} {
		model := NewModel(Config{Gap: 2, Seed: 84, Read: true, FaultRate: 1, FaultKinds: []FaultKind{kind}})
		tr := model.GenerateTrace(300)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		if stats := eng.Run(tr); stats.Accepts != 0 {
			t.Errorf("fault %v: %d windows detected, want 0", kind, stats.Accepts)
		}
	}
}
