package amba

import (
	"repro/internal/chart"
)

// ReadChart builds the AHB CLI read transaction companion to Figure 8's
// write: the setup cycle selects the slave with a read command, the data
// phase flows from the bus to the master, and the master closes with its
// response. Same causality discipline as the write: the initiation and
// the bus data-set must be live when the closing response is consumed.
const (
	EvRead = "read" // read command, the counterpart of EvWrite
)

// ReadChart returns the read-transaction SCESC.
func ReadChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "amba_ahb_cli_read",
		Clock:     "ahb_clk",
		Instances: []string{"Master", "Bus"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvInitTransaction, Label: "e1", From: "Master", To: "Bus"},
				{Event: EvMasterComplete, Label: "e2", From: "Master", To: "Bus"},
				{Event: EvGetSlave, Label: "e3", From: "Bus", To: "Master"},
				{Event: EvRead, Label: "e4", From: "Master", To: "Bus"},
				{Event: EvControlInfo, Label: "e5", From: "Master", To: "Bus"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvBusSetData, Label: "e8", From: "Bus", To: "Master"},
				{Event: EvMasterComplete, Label: "e7", From: "Master", To: "Bus"},
				{Event: EvBusResponse, Label: "e9", From: "Bus", To: "Master"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvMasterResponse, Label: "e10", From: "Master", To: "Bus"},
			}},
		},
		Arrows: []chart.Arrow{
			{From: "e1", To: "e10"},
			{From: "e8", To: "e10"},
		},
	}
}

// startRead schedules one read transaction (the model counterpart of
// startTransaction's write).
func (m *Model) startRead(fault FaultKind) int {
	setup := []string{EvInitTransaction, EvMasterComplete, EvGetSlave, EvRead, EvControlInfo}
	if fault == FaultMissingControlInfo {
		setup = setup[:4]
	}
	m.schedule(0, setup...)
	dataAt := 1
	if fault == FaultLateDataPhase {
		dataAt = 2
	}
	data := []string{EvBusSetData, EvMasterComplete, EvBusResponse}
	if fault == FaultDropBusResponse {
		data = data[:2]
	}
	m.schedule(dataAt, data...)
	if fault != FaultDropMasterResponse {
		m.schedule(dataAt+1, EvMasterResponse)
	}
	return dataAt + 2
}
