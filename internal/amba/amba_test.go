package amba

import (
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/synth"
)

func TestChartValidates(t *testing.T) {
	if err := TransactionChart().Validate(); err != nil {
		t.Fatalf("chart invalid: %v", err)
	}
}

// TestFig8MonitorStructure is experiment E8: four states; the setup cycle
// adds init_transaction (the paper's Add_evt(1)), the data cycle adds
// master_set_data (Add_evt(6)), abandoning after the data phase reverses
// init_transaction (Del_evt(1)), and leaving the final state reverses
// both (the paper's e / (Del_evt(1), Del_evt(6))).
func TestFig8MonitorStructure(t *testing.T) {
	m, err := synth.Translate(TransactionChart(), &synth.Options{NameGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 4 || m.Final != 3 {
		t.Fatalf("shape %d states final %d, want 4/3", m.States, m.Final)
	}
	adv0 := transTo(t, m, 0, 1)
	if got := actions(adv0); len(got) != 1 || got[0] != "Add_evt(init_transaction)" {
		t.Errorf("setup actions = %v, want [Add_evt(init_transaction)]", got)
	}
	adv1 := transTo(t, m, 1, 2)
	if got := actions(adv1); len(got) != 1 || got[0] != "Add_evt(master_set_data)" {
		t.Errorf("data-phase actions = %v, want [Add_evt(master_set_data)]", got)
	}
	// Closing guard checks both live scoreboard entries.
	adv2 := transTo(t, m, 2, 3)
	for _, chk := range []string{"Chk_evt(init_transaction)", "Chk_evt(master_set_data)"} {
		if !strings.Contains(adv2.Guard.String(), chk) {
			t.Errorf("closing guard %q missing %s", adv2.Guard, chk)
		}
	}
	if !strings.Contains(adv2.Guard.String(), EvMasterResponse) {
		t.Errorf("closing guard %q missing %s", adv2.Guard, EvMasterResponse)
	}
	// c / Del_evt(1): giving up after only the setup cycle matched.
	back1 := transTo(t, m, 1, 0)
	if got := actions(back1); len(got) != 1 || got[0] != "Del_evt(init_transaction)" {
		t.Errorf("state-1 give-up actions = %v, want [Del_evt(init_transaction)]", got)
	}
	// Giving up after the data phase reverses both recorded adds (the
	// paper's figure draws only Del_evt(1) here, which would leak the
	// master_set_data entry; see EXPERIMENTS.md E8).
	back2 := transTo(t, m, 2, 0)
	if got := actions(back2); len(got) != 1 || got[0] != "Del_evt(init_transaction, master_set_data)" {
		t.Errorf("state-2 give-up actions = %v, want [Del_evt(init_transaction, master_set_data)]", got)
	}
	// e / (Del_evt(1), Del_evt(6)): leaving the final state.
	back3 := transTo(t, m, 3, 0)
	if got := actions(back3); len(got) != 1 || got[0] != "Del_evt(init_transaction, master_set_data)" {
		t.Errorf("final give-up actions = %v, want [Del_evt(init_transaction, master_set_data)]", got)
	}
}

func transTo(t *testing.T, m *monitor.Monitor, from, to int) monitor.Transition {
	t.Helper()
	for _, tr := range m.Trans[from] {
		if tr.To == to {
			return tr
		}
	}
	t.Fatalf("no transition %d -> %d in:\n%s", from, to, m)
	return monitor.Transition{}
}

func actions(tr monitor.Transition) []string {
	var out []string
	for _, a := range tr.Actions {
		out = append(out, a.String())
	}
	return out
}

func TestModelCleanTransactionsDetected(t *testing.T) {
	m, err := synth.Translate(TransactionChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 4})
	tr := model.GenerateTrace(300)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	if model.Issued() < 10 {
		t.Fatalf("model issued only %d transactions", model.Issued())
	}
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d issued", stats.Accepts, model.Issued())
	}
}

func TestFaultsSuppressWindows(t *testing.T) {
	m, err := synth.Translate(TransactionChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []FaultKind{FaultDropMasterResponse, FaultDropBusResponse, FaultLateDataPhase, FaultMissingControlInfo} {
		model := NewModel(Config{Gap: 2, Seed: 5, FaultRate: 1, FaultKinds: []FaultKind{kind}})
		tr := model.GenerateTrace(300)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		stats := eng.Run(tr)
		if stats.Accepts != 0 {
			t.Errorf("fault %v: %d windows detected, want 0", kind, stats.Accepts)
		}
	}
}

func TestAssertModeFlagsFaults(t *testing.T) {
	m, err := synth.Translate(TransactionChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 6, FaultRate: 1, FaultKinds: []FaultKind{FaultDropMasterResponse}})
	tr := model.GenerateTrace(300)
	eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
	stats := eng.Run(tr)
	if stats.Violations == 0 {
		t.Error("assert mode reported no violations for always-faulty traffic")
	}
}

func TestFaultKindNames(t *testing.T) {
	for _, k := range []FaultKind{FaultNone, FaultDropMasterResponse, FaultDropBusResponse, FaultLateDataPhase, FaultMissingControlInfo} {
		if k.String() == "fault?" {
			t.Errorf("fault kind %d unnamed", int(k))
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	a := NewModel(Config{Gap: 1, Seed: 9, FaultRate: 0.3}).GenerateTrace(120)
	b := NewModel(Config{Gap: 1, Seed: 9, FaultRate: 0.3}).GenerateTrace(120)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at tick %d", i)
		}
	}
}
