// Package amba models the AMBA AHB Cycle Level Interface (CLI)
// master/bus transaction of the paper's Figure 8 (AHB CLI spec p. 23): a
// write transaction whose ten interface events spread over three bus
// cycles. As with package ocp, the model is cycle-accurate at the
// observed interface and supports fault injection for the bug-detection
// experiments.
package amba

import (
	"math/rand"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AHB CLI event names; the paper's figure numbers them 1..10.
const (
	EvInitTransaction = "init_transaction" // 1
	EvMasterComplete  = "master_complete"  // 2 and 7
	EvGetSlave        = "get_slave"        // 3
	EvWrite           = "write"            // 4
	EvControlInfo     = "control_info"     // 5
	EvMasterSetData   = "master_set_data"  // 6
	EvBusSetData      = "bus_set_data"     // 8
	EvBusResponse     = "bus_response"     // 9
	EvMasterResponse  = "master_response"  // 10
)

// TransactionChart builds the Fig. 8 SCESC: cycle 0 carries events 1-5
// (transaction setup: init, complete, slave selection, write command,
// control info), cycle 1 carries events 6-9 (data phase), cycle 2 carries
// event 10 (master response). Causality arrows require the initiation
// (1) and the data-set (6) to be live on the scoreboard when the closing
// response (10) is consumed, yielding the paper's Add_evt(1), Add_evt(6)
// and the composite Del_evt(1), Del_evt(6) reversal.
func TransactionChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "amba_ahb_cli",
		Clock:     "ahb_clk",
		Instances: []string{"Master", "Bus"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvInitTransaction, Label: "e1", From: "Master", To: "Bus"},
				{Event: EvMasterComplete, Label: "e2", From: "Master", To: "Bus"},
				{Event: EvGetSlave, Label: "e3", From: "Bus", To: "Master"},
				{Event: EvWrite, Label: "e4", From: "Master", To: "Bus"},
				{Event: EvControlInfo, Label: "e5", From: "Master", To: "Bus"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvMasterSetData, Label: "e6", From: "Master", To: "Bus"},
				{Event: EvMasterComplete, Label: "e7", From: "Master", To: "Bus"},
				{Event: EvBusSetData, Label: "e8", From: "Bus", To: "Master"},
				{Event: EvBusResponse, Label: "e9", From: "Bus", To: "Master"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvMasterResponse, Label: "e10", From: "Master", To: "Bus"},
			}},
		},
		Arrows: []chart.Arrow{
			{From: "e1", To: "e10"},
			{From: "e6", To: "e10"},
		},
	}
}

// FaultKind enumerates injectable deviations from the AHB CLI sequence.
type FaultKind int

const (
	// FaultNone performs the transaction correctly.
	FaultNone FaultKind = iota
	// FaultDropMasterResponse omits the closing master_response cycle.
	FaultDropMasterResponse
	// FaultDropBusResponse omits bus_response in the data phase.
	FaultDropBusResponse
	// FaultLateDataPhase inserts an idle cycle between setup and data.
	FaultLateDataPhase
	// FaultMissingControlInfo omits control_info during setup.
	FaultMissingControlInfo
)

// String names the fault.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropMasterResponse:
		return "drop-master-response"
	case FaultDropBusResponse:
		return "drop-bus-response"
	case FaultLateDataPhase:
		return "late-data-phase"
	case FaultMissingControlInfo:
		return "missing-control-info"
	default:
		return "fault?"
	}
}

// Config parameterizes the transaction generator.
type Config struct {
	// Gap is the number of idle bus cycles between transactions.
	Gap int
	// Read selects read transactions (ReadChart) instead of writes.
	Read bool
	// FaultRate is the probability of injecting a fault per transaction.
	FaultRate float64
	// FaultKinds lists faults to draw from (all kinds when empty).
	FaultKinds []FaultKind
	// Seed feeds the model's private PRNG.
	Seed int64
	// Source, when non-nil, supplies the model's randomness instead of a
	// fresh PRNG seeded with Seed — letting harnesses inject one shared,
	// reproducible stream across several models.
	Source rand.Source
}

// Model is an executable AHB CLI master/bus pair.
type Model struct {
	cfg     Config
	rng     *rand.Rand
	future  []event.State
	idle    int
	issued  int
	faulted int
}

// NewModel returns a model for cfg.
func NewModel(cfg Config) *Model {
	if cfg.Gap < 0 {
		cfg.Gap = 0
	}
	src := cfg.Source
	if src == nil {
		src = rand.NewSource(cfg.Seed)
	}
	m := &Model{cfg: cfg, rng: rand.New(src)}
	m.idle = 1
	return m
}

// Issued returns the number of transactions started.
func (m *Model) Issued() int { return m.issued }

// Faulted returns the number of transactions injected with a fault.
func (m *Model) Faulted() int { return m.faulted }

func (m *Model) at(i int) event.State {
	for len(m.future) <= i {
		m.future = append(m.future, event.NewState())
	}
	return m.future[i]
}

func (m *Model) schedule(offset int, events ...string) {
	s := m.at(offset)
	for _, e := range events {
		s.Events[e] = true
	}
}

func (m *Model) pickFault() FaultKind {
	if m.cfg.FaultRate <= 0 || m.rng.Float64() >= m.cfg.FaultRate {
		return FaultNone
	}
	kinds := m.cfg.FaultKinds
	if len(kinds) == 0 {
		kinds = []FaultKind{
			FaultDropMasterResponse, FaultDropBusResponse,
			FaultLateDataPhase, FaultMissingControlInfo,
		}
	}
	return kinds[m.rng.Intn(len(kinds))]
}

// startTransaction schedules one transaction and returns its cycle count.
func (m *Model) startTransaction() int {
	m.issued++
	fault := m.pickFault()
	if fault != FaultNone {
		m.faulted++
	}
	if m.cfg.Read {
		return m.startRead(fault)
	}
	setup := []string{EvInitTransaction, EvMasterComplete, EvGetSlave, EvWrite, EvControlInfo}
	if fault == FaultMissingControlInfo {
		setup = setup[:4]
	}
	m.schedule(0, setup...)
	dataAt := 1
	if fault == FaultLateDataPhase {
		dataAt = 2
	}
	data := []string{EvMasterSetData, EvMasterComplete, EvBusSetData, EvBusResponse}
	if fault == FaultDropBusResponse {
		data = data[:3]
	}
	m.schedule(dataAt, data...)
	if fault != FaultDropMasterResponse {
		m.schedule(dataAt+1, EvMasterResponse)
	}
	return dataAt + 2
}

// Step produces the event state for the next bus cycle.
func (m *Model) Step() event.State {
	if len(m.future) == 0 && m.idle == 0 {
		busy := m.startTransaction()
		m.idle = busy + m.cfg.Gap
	}
	var out event.State
	if len(m.future) > 0 {
		out = m.future[0]
		m.future = m.future[1:]
	} else {
		out = event.NewState()
	}
	if m.idle > 0 {
		m.idle--
	}
	return out
}

// GenerateTrace runs the model for n cycles.
func (m *Model) GenerateTrace(n int) trace.Trace {
	out := make(trace.Trace, n)
	for i := range out {
		out[i] = m.Step()
	}
	return out
}

// Process adapts the model to a simulator process.
func (m *Model) Process() sim.Process {
	return func(ctx *sim.TickCtx) {
		s := m.Step()
		for e, v := range s.Events {
			if v {
				ctx.Emit(e)
			}
		}
	}
}
