package cluster_test

// Cluster differential end-to-end tests: the Fig. 6 OCP trace streamed
// through a 3-node ring — with a live migration mid-trace and a
// kill + standby-promotion — must produce monitor verdicts
// byte-identical to a standalone server that saw the same trace, and
// exactly-once ingest must hold across every move (Steps equals the
// tick count, no duplicates, no loss).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/trace"
)

func specSource() string {
	return parser.Print("OcpSimpleRead", ocp.SimpleReadChart()) +
		parser.Print("OcpSimpleReadB", ocp.SimpleReadChart())
}

// toStateJSON converts a trace tick to the ingest wire form the same
// way the server does (sorted events, true props only).
func toStateJSON(s event.State) server.StateJSON {
	out := server.StateJSON{}
	for e, v := range s.Events {
		if v {
			out.Events = append(out.Events, e)
		}
	}
	sort.Strings(out.Events)
	for p, v := range s.Props {
		if v {
			if out.Props == nil {
				out.Props = make(map[string]bool)
			}
			out.Props[p] = true
		}
	}
	return out
}

func toStatesJSON(tr trace.Trace) []server.StateJSON {
	out := make([]server.StateJSON, len(tr))
	for i, s := range tr {
		out[i] = toStateJSON(s)
	}
	return out
}

// monitorsJSON renders a verdict set for byte-level comparison.
func monitorsJSON(t *testing.T, v server.VerdictsJSON) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v.Monitors, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceVerdicts streams the whole trace through one standalone
// server and returns the canonical verdict bytes.
func referenceVerdicts(t *testing.T, tr trace.Trace, batchLen int) []byte {
	t.Helper()
	srv, err := server.New(server.Config{Shards: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if _, err := srv.LoadSpecSource(specSource()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(client.Options{BaseURL: ts.URL})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	if err != nil {
		t.Fatal(err)
	}
	states := toStatesJSON(tr)
	for at := 0; at < len(states); at += batchLen {
		end := min(at+batchLen, len(states))
		if _, err := sess.SendTicks(ctx, states[at:end], true); err != nil {
			t.Fatalf("reference SendTicks at %d: %v", at, err)
		}
	}
	v, err := sess.Verdicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return monitorsJSON(t, v)
}

// handlerBox gives atomic.Value a single concrete type to hold while
// the stored handler changes concrete type (placeholder → node mux).
type handlerBox struct{ h http.Handler }

// testCluster is an in-process ring of cluster.Nodes, each behind its own
// httptest listener so peers and clients reach them over real HTTP.
type testCluster struct {
	t     *testing.T
	names []string
	nodes map[string]*cluster.Node
	srvs  map[string]*httptest.Server
	dead  map[string]bool
}

func newTestCluster(t *testing.T, refresh time.Duration, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:     t,
		names: names,
		nodes: make(map[string]*cluster.Node),
		srvs:  make(map[string]*httptest.Server),
		dead:  make(map[string]bool),
	}
	handlers := make(map[string]*atomic.Value)
	var peers []cluster.Member
	for _, name := range names {
		h := &atomic.Value{}
		h.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "node starting", http.StatusServiceUnavailable)
		})})
		hv := h
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hv.Load().(handlerBox).h.ServeHTTP(w, r)
		}))
		handlers[name] = h
		tc.srvs[name] = ts
		peers = append(peers, cluster.Member{Name: name, URL: ts.URL})
	}
	for _, name := range names {
		dir := t.TempDir()
		n, err := cluster.New(cluster.Config{
			Name:         name,
			AdvertiseURL: tc.srvs[name].URL,
			Peers:        peers,
			RefreshEvery: refresh,
			StandbyDir:   filepath.Join(dir, "standby"),
			Server: server.Config{
				Shards:        2,
				QueueDepth:    16,
				SnapshotEvery: 4,
				WALDir:        filepath.Join(dir, "wal"),
				TraceDepth:    256,
			},
		})
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		if _, err := n.Server().LoadSpecSource(specSource()); err != nil {
			t.Fatalf("loading specs on %s: %v", name, err)
		}
		handlers[name].Store(handlerBox{n.Handler()})
		tc.nodes[name] = n
	}
	t.Cleanup(func() {
		for _, name := range names {
			if tc.dead[name] {
				continue
			}
			tc.srvs[name].Close()
			tc.nodes[name].Close()
		}
	})
	return tc
}

func (tc *testCluster) seeds() []string {
	urls := make([]string, 0, len(tc.names))
	for _, name := range tc.names {
		if !tc.dead[name] {
			urls = append(urls, tc.srvs[name].URL)
		}
	}
	return urls
}

// holder returns the node currently holding a session.
func (tc *testCluster) holder(id string) (string, bool) {
	for name, n := range tc.nodes {
		if !tc.dead[name] && n.Server().HasSession(id) {
			return name, true
		}
	}
	return "", false
}

// kill simulates abrupt node death: the listener drops and the wrapped
// server crashes without a final sync.
func (tc *testCluster) kill(name string) {
	tc.srvs[name].Close()
	tc.nodes[name].Kill()
	tc.dead[name] = true
}

func (tc *testCluster) post(t *testing.T, name, path string, body any, out any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.srvs[name].URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s on %s: %v", path, name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s on %s: status %d", path, name, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s on %s: decoding: %v", path, name, err)
		}
	}
}

func newRouter(t *testing.T, tc *testCluster) *client.Router {
	t.Helper()
	r, err := client.NewRouter(client.RouterOptions{
		Seeds: tc.seeds(),
		Client: client.Options{
			RequestTimeout: 5 * time.Second,
			MaxAttempts:    4,
			BackoffBase:    20 * time.Millisecond,
			BackoffCap:     500 * time.Millisecond,
		},
		MaxHops: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestClusterDifferentialParity is the acceptance test of ISSUE 6: the
// Fig. 6 OCP trace through a 3-node ring with one mid-trace drain
// migration and one kill + standby promotion must match a single node
// byte-for-byte, with exactly-once ingest throughout.
func TestClusterDifferentialParity(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 3, FaultRate: 0.2}).GenerateTrace(600)
	states := toStatesJSON(tr)
	want := referenceVerdicts(t, tr, 32)

	tc := newTestCluster(t, 0, "alpha", "beta", "gamma")
	router := newRouter(t, tc)
	ctx := context.Background()

	sess, err := router.CreateSession(ctx, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	first, ok := tc.holder(sess.ID)
	if !ok {
		t.Fatalf("no node holds freshly created session %s", sess.ID)
	}
	if owner, ok := tc.nodes[first].Ring().Owner(sess.ID); !ok || owner.Name != first {
		t.Fatalf("session %s minted on %s but ring owner is %v", sess.ID, first, owner)
	}

	send := func(from, to int) {
		t.Helper()
		for at := from; at < to; at += 32 {
			end := min(at+32, to)
			if _, err := sess.SendTicks(ctx, states[at:end], true); err != nil {
				t.Fatalf("SendTicks[%d:%d]: %v", at, end, err)
			}
		}
	}

	// Phase 1: first 300 ticks land on the minting owner.
	send(0, 300)

	// Live migration: drain the owner out of the ring. The handler is
	// synchronous, so when it returns the session lives elsewhere.
	var drained struct {
		Migrated int `json:"migrated"`
	}
	tc.post(t, first, "/cluster/drain", map[string]string{}, &drained)
	if drained.Migrated != 1 {
		t.Fatalf("drain migrated %d sessions, want 1", drained.Migrated)
	}
	second, ok := tc.holder(sess.ID)
	if !ok || second == first {
		t.Fatalf("after drain, session holder = %q (was %q)", second, first)
	}

	// Phase 2: the session keeps answering under its ID via the router.
	send(300, 450)

	// Ship the WAL tail to the standby before the owner dies, so the
	// failover loses nothing (at most the unacked tail is at risk, and
	// here everything is acked).
	var flush struct {
		Lag int64 `json:"lag_bytes"`
	}
	tc.post(t, second, "/cluster/flush", map[string]string{}, &flush)
	if flush.Lag != 0 {
		t.Fatalf("replication lag %d bytes after flush, want 0", flush.Lag)
	}

	// Failover: kill the owner, declare it dead on the survivor, and
	// let standby promotion take over.
	tc.kill(second)
	var survivor string
	for _, name := range tc.names {
		if name != first && name != second {
			survivor = name
		}
	}
	tc.post(t, survivor, "/cluster/leave", map[string]string{"name": second}, nil)

	deadline := time.Now().Add(10 * time.Second)
	for !tc.nodes[survivor].Server().HasSession(sess.ID) {
		if time.Now().After(deadline) {
			t.Fatalf("standby promotion of %s on %s did not happen", sess.ID, survivor)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := tc.nodes[survivor].Status(); st.Promotions != 1 {
		t.Fatalf("survivor promotions = %d, want 1", st.Promotions)
	}

	// Phase 3: the rest of the trace, routed to the promoted session.
	send(450, 600)

	info, err := sess.Info(ctx)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Steps != 600 {
		t.Fatalf("steps after two moves = %d, want exactly 600 (exactly-once violated)", info.Steps)
	}
	v, err := sess.Verdicts(ctx)
	if err != nil {
		t.Fatalf("Verdicts: %v", err)
	}
	if got := monitorsJSON(t, v); string(got) != string(want) {
		t.Fatalf("cluster verdicts differ from single-node run:\n got %s\nwant %s", got, want)
	}
}

// TestClusterRingEndpointAndProxy covers the routing surface directly:
// /cluster/ring serves the table, a plain (ring-unaware) client talking
// to a non-owner is transparently proxied, and a redirect-opted request
// gets a 307 with the owner's Location.
func TestClusterRingEndpointAndProxy(t *testing.T) {
	tc := newTestCluster(t, 0, "alpha", "beta")
	ctx := context.Background()

	resp, err := http.Get(tc.srvs["alpha"].URL + "/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	var info cluster.RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Members) != 2 || info.Epoch != 1 {
		t.Fatalf("ring = %+v, want 2 members at epoch 1", info)
	}

	// Create on alpha; alpha mints an ID it owns.
	alpha := client.New(client.Options{BaseURL: tc.srvs["alpha"].URL})
	sess, err := alpha.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	if owner, _ := tc.nodes["alpha"].Ring().Owner(sess.ID); owner.Name != "alpha" {
		t.Fatalf("alpha minted %s but does not own it", sess.ID)
	}

	// A plain client pointed at beta is proxied to alpha transparently.
	beta := client.New(client.Options{BaseURL: tc.srvs["beta"].URL})
	betaSess := beta.Resume(sess.ID, 1)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7}).GenerateTrace(20)
	if _, err := betaSess.SendTicks(ctx, toStatesJSON(tr), true); err != nil {
		t.Fatalf("proxied SendTicks via beta: %v", err)
	}
	if st := tc.nodes["beta"].Status(); st.Proxied == 0 {
		t.Fatalf("beta proxied = 0, want > 0")
	}
	info2, err := betaSess.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Steps != 20 {
		t.Fatalf("steps via proxy = %d, want 20", info2.Steps)
	}

	// Redirect opt-in gets a 307 with Location at the owner.
	req, _ := http.NewRequest(http.MethodGet, tc.srvs["beta"].URL+"/sessions/"+sess.ID, nil)
	req.Header.Set(cluster.HeaderRoute, "redirect")
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	rresp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-opted status = %d, want 307", rresp.StatusCode)
	}
	wantLoc := tc.srvs["alpha"].URL + "/sessions/" + sess.ID
	if loc := rresp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("Location = %q, want %q", loc, wantLoc)
	}
	if rresp.Header.Get(cluster.HeaderOwner) != "alpha" {
		t.Fatalf("%s = %q, want alpha", cluster.HeaderOwner, rresp.Header.Get(cluster.HeaderOwner))
	}
}

// TestClusterMembershipChurnDuringIngest stresses concurrent ring
// changes against a live tick stream (run under -race via `make
// clustertest`): a session keeps ingesting through the router while a
// member repeatedly leaves and rejoins, forcing migrations back and
// forth. Exactly-once must hold and the final verdicts must match a
// standalone run.
func TestClusterMembershipChurnDuringIngest(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 11, FaultRate: 0.15}).GenerateTrace(400)
	states := toStatesJSON(tr)
	want := referenceVerdicts(t, tr, 10)

	tc := newTestCluster(t, 50*time.Millisecond, "alpha", "beta")
	router := newRouter(t, tc)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	sess, err := router.CreateSession(ctx, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		for at := 0; at < len(states); at += 10 {
			end := min(at+10, len(states))
			if _, err := sess.SendTicks(ctx, states[at:end], true); err != nil {
				done <- fmt.Errorf("SendTicks[%d:%d]: %w", at, end, err)
				return
			}
		}
		done <- nil
	}()

	// Churn: beta leaves and rejoins the ring while ticks flow.
	beta := cluster.Member{Name: "beta", URL: tc.srvs["beta"].URL}
	for i := 0; i < 3; i++ {
		time.Sleep(80 * time.Millisecond)
		tc.post(t, "alpha", "/cluster/leave", map[string]string{"name": "beta"}, nil)
		time.Sleep(80 * time.Millisecond)
		tc.post(t, "alpha", "/cluster/join", beta, nil)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Let the last rebalance settle, then check exactly-once and parity.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := sess.Info(ctx)
		if err == nil && info.Steps == len(states) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("steps never settled at %d (last: %+v, err %v)", len(states), info, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	v, err := sess.Verdicts(ctx)
	if err != nil {
		t.Fatalf("Verdicts: %v", err)
	}
	if got := monitorsJSON(t, v); string(got) != string(want) {
		t.Fatalf("verdicts after churn differ from standalone run:\n got %s\nwant %s", got, want)
	}
}
