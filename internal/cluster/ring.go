// Package cluster turns a fleet of cescd daemons into one logical
// monitor service. Sessions are partitioned across nodes by a
// consistent-hash ring over session IDs; every node answers for any
// session (serving locally, proxying, or redirecting to the owner); ring
// changes trigger live session migration fenced by a monotonic epoch;
// and each session's WAL streams asynchronously to its ring successor,
// which is promoted to owner when a node dies.
//
// The package is stdlib-only, like the rest of the repo: membership is a
// static peer list plus join/leave/drain admin calls, with an optional
// pull-based refresh loop that doubles as the failure detector.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one node of the cluster: a stable name plus the base URL its
// peers (and routing clients) reach it at.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// RingInfo is the wire form of the routing table, served from
// GET /cluster/ring and consumed by peers and the client-side router.
// Epoch totally orders ring versions: every membership change increments
// it, and migration handoffs carry it as a fence.
type RingInfo struct {
	Epoch   uint64   `json:"epoch"`
	VNodes  int      `json:"vnodes"`
	Members []Member `json:"members"`
}

// DefaultVNodes is the virtual-node count per member when the caller
// does not choose one. 64 keeps the expected per-member load imbalance
// in the low single-digit percents for small fleets while keeping the
// ring a few KB.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by
// a member.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash routing table. Build with
// NewRing; derive changed rings with WithMember/WithoutMember. Immutable
// means lookups need no locking — holders swap whole rings on change.
type Ring struct {
	epoch   uint64
	vnodes  int
	members []Member // sorted by name, unique
	points  []ringPoint
	byName  map[string]int
}

// NewRing builds a ring at the given epoch over the given members.
// Members are deduplicated by name (last URL wins) and sorted, so two
// nodes building a ring from the same member set agree on every lookup.
// vnodes <= 0 selects DefaultVNodes.
func NewRing(epoch uint64, vnodes int, members []Member) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	byName := make(map[string]Member, len(members))
	for _, m := range members {
		byName[m.Name] = m
	}
	uniq := make([]Member, 0, len(byName))
	for _, m := range byName {
		uniq = append(uniq, m)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Name < uniq[j].Name })
	r := &Ring{
		epoch:   epoch,
		vnodes:  vnodes,
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		byName:  make(map[string]int, len(uniq)),
	}
	for i, m := range uniq {
		r.byName[m.Name] = i
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m.Name, v), member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) break ties by member name
		// so every node orders the circle identically.
		return r.members[r.points[i].member].Name < r.members[r.points[j].member].Name
	})
	return r
}

// NewRingFromInfo rebuilds a ring from its wire form.
func NewRingFromInfo(info RingInfo) *Ring {
	return NewRing(info.Epoch, info.VNodes, info.Members)
}

// pointHash places virtual node v of a member on the circle (FNV-1a
// over "name#v", finalized by mix64 — raw FNV clusters badly on inputs
// that differ only in a counter, which is exactly what vnode labels are).
func pointHash(name string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	var buf [4]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// keyHash places a session ID on the circle.
func keyHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche that
// spreads structured hash inputs uniformly around the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Info renders the wire form.
func (r *Ring) Info() RingInfo {
	return RingInfo{Epoch: r.epoch, VNodes: r.vnodes, Members: append([]Member(nil), r.members...)}
}

// Epoch reports the ring version.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Members returns the member list, sorted by name.
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Lookup returns the member whose name is given.
func (r *Ring) Lookup(name string) (Member, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Member{}, false
	}
	return r.members[i], true
}

// Owner returns the member owning a session ID: the first virtual node
// at or clockwise of the key's point. ok is false on an empty ring.
func (r *Ring) Owner(id string) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	return r.members[r.points[r.search(keyHash(id))].member], true
}

// Successor returns the session's standby target: the first member
// clockwise of the key that is distinct from its owner. ok is false when
// the ring has fewer than two members.
func (r *Ring) Successor(id string) (Member, bool) {
	if len(r.members) < 2 {
		return Member{}, false
	}
	start := r.search(keyHash(id))
	owner := r.points[start].member
	for i := 1; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.member != owner {
			return r.members[p.member], true
		}
	}
	return Member{}, false
}

// search finds the index of the first point at or clockwise of h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// WithMember derives a ring with m added (or its URL updated) and the
// epoch advanced.
func (r *Ring) WithMember(m Member) *Ring {
	members := append(r.Members(), m)
	return NewRing(r.epoch+1, r.vnodes, members)
}

// WithoutMember derives a ring with the named member removed and the
// epoch advanced.
func (r *Ring) WithoutMember(name string) *Ring {
	members := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		if m.Name != name {
			members = append(members, m)
		}
	}
	return NewRing(r.epoch+1, r.vnodes, members)
}

// Fingerprint hashes the member set (names and URLs), breaking ties
// between rings that carry the same epoch but different membership —
// concurrent admin changes on different nodes. The higher fingerprint
// deterministically wins everywhere.
func (r *Ring) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, m := range r.members {
		fmt.Fprintf(h, "%s=%s;", m.Name, m.URL)
	}
	return h.Sum64()
}
