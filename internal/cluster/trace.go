package cluster

// Fleet observability endpoints. Each node can answer for the whole
// cluster:
//
//	GET /cluster/trace?trace=ID    fan out to every ring member's local
//	                               /debug/trace, merge the spans into one
//	                               causally ordered timeline (the HLC on
//	                               every span makes cross-node order
//	                               meaningful), and serve it as JSON or —
//	                               with ?format=text — as a rendered
//	                               timeline for a terminal.
//	GET /cluster/metrics           scrape every member's /metrics and
//	                               re-emit the union with a node label on
//	                               every sample, one ValidatePromText-clean
//	                               exposition for a fleet dashboard.
//	GET /readyz                    cluster-aware readiness: the wrapped
//	                               server's checks (not crashed, governor
//	                               not shedding, WAL writable) plus ring
//	                               membership — a node that is not in its
//	                               own ring view (draining, or not yet
//	                               joined) should not take traffic.
//
// Fan-outs are best effort: a dead peer contributes nothing to a trace
// merge and reports up=0 in the federation, never an error — these are
// the endpoints an operator leans on mid-incident, when nodes being
// unreachable is exactly what is being debugged.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// clusterTraceDefaultN bounds per-node span fetches when the caller does
// not pass ?n=.
const clusterTraceDefaultN = 512

// traceBody is the envelope of a member's GET /debug/trace answer.
type traceBody struct {
	Spans []obs.Span `json:"spans"`
}

// ClusterTraceJSON is the merged-timeline answer of GET /cluster/trace.
type ClusterTraceJSON struct {
	Trace string `json:"trace"`
	// Nodes maps each ring member to the span count it contributed; a
	// member that could not be reached maps to -1.
	Nodes map[string]int `json:"nodes"`
	Spans []obs.Span     `json:"spans"`
}

// handleClusterTrace merges one trace's spans from every ring member
// into a single causally ordered timeline.
func (n *Node) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	traceID := r.URL.Query().Get("trace")
	if traceID == "" {
		writeError(w, http.StatusBadRequest, "trace query parameter is required")
		return
	}
	limit := clusterTraceDefaultN
	if v := r.URL.Query().Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i <= 0 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		limit = i
	}

	members := n.currentRing().Members()
	perNode := make([][]obs.Span, len(members))
	counts := make(map[string]int, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, m := range members {
		if m.Name == n.self.Name {
			spans := n.srv.TraceSpans(traceID, limit)
			perNode[i] = spans
			mu.Lock()
			counts[m.Name] = len(spans)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			var body traceBody
			path := fmt.Sprintf("/debug/trace?trace=%s&n=%d", queryEscape(traceID), limit)
			_, err := n.getJSONHdr(m.URL, path, &body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				counts[m.Name] = -1
				return
			}
			perNode[i] = body.Spans
			counts[m.Name] = len(body.Spans)
		}(i, m)
	}
	wg.Wait()

	merged := obs.MergeTimeline(perNode...)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, obs.RenderTimeline(merged))
		return
	}
	writeJSON(w, http.StatusOK, ClusterTraceJSON{Trace: traceID, Nodes: counts, Spans: merged})
}

// queryEscape is the tiny subset of url.QueryEscape the trace ids the
// client mints ever need, kept inline so the fan-out path builds its
// URLs without allocating a Values map.
func queryEscape(s string) string {
	if !strings.ContainsAny(s, " %&+=?#") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(" %&+=?#", c) >= 0 {
			fmt.Fprintf(&b, "%%%02X", c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// handleClusterMetrics federates every member's Prometheus exposition
// under a node label. cescd_node_up reports which members answered the
// scrape, so a half-dead fleet still yields a usable (and valid) body.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	members := n.currentRing().Members()
	texts := make([]string, len(members))
	up := make([]bool, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if m.Name == n.self.Name {
			texts[i] = string(n.localMetricsText())
			up[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			body, err := n.getText(m.URL, "/metrics")
			if err != nil {
				return
			}
			texts[i], up[i] = body, true
		}(i, m)
	}
	wg.Wait()

	pw := obs.NewPromWriter()
	pw.Family("cescd_node_up", "gauge", "Whether the member answered the federation scrape.")
	for i, m := range members {
		pw.Sample("cescd_node_up", []obs.L{{Name: "node", Value: m.Name}}, b2f(up[i]))
	}
	for i, m := range members {
		if !up[i] {
			continue
		}
		// A peer's exposition is its own /metrics body — already valid
		// text 0.0.4 — re-emitted sample by sample with the node label
		// prepended; colliding family names across nodes collapse into
		// one family, which is the point of federation.
		_, _ = pw.AppendExposition(texts[i], []obs.L{{Name: "node", Value: m.Name}})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(pw.Bytes())
}

// localMetricsText renders this node's full exposition (server families
// plus cluster families) without going through the network.
func (n *Node) localMetricsText() []byte {
	req, _ := http.NewRequest(http.MethodGet, "/metrics", nil)
	rec := &respBuffer{hdr: make(http.Header)}
	n.srv.Handler().ServeHTTP(rec, req)
	return append(rec.buf.Bytes(), n.promText()...)
}

// getText fetches a peer endpoint as plain text.
func (n *Node) getText(baseURL, path string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(baseURL, "/")+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cluster: GET %s: %s", path, resp.Status)
	}
	return string(raw), nil
}

// handleReadyz answers the load balancer with cluster-aware readiness:
// everything the wrapped server checks, plus ring membership.
func (n *Node) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reasons := n.srv.Ready()
	n.mu.RLock()
	_, inRing := n.ring.Lookup(n.self.Name)
	draining := n.draining
	n.mu.RUnlock()
	if !inRing {
		ready, reasons["ring"] = false, "node is not a member of its own ring view"
	}
	if draining {
		ready, reasons["draining"] = false, "node is draining"
	}
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// traceParentToken mints the X-Cesc-Parent token for an outbound hop:
// the token carries this node's HLC reading, which the receiver folds
// into its clock before stamping its own spans, so the downstream spans
// order causally after ours in a merged timeline.
func (n *Node) traceParentToken() (uint64, string) {
	h := obs.Clock.Now()
	return h, obs.ParentToken(n.self.Name, h)
}
