package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("node-%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return ms
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15)
	}
	return keys
}

// TestRingBalance checks that 1k virtual nodes spread keys within a
// modest bound of the fair share: consistent hashing is never perfectly
// uniform, but no member may become a hot spot.
func TestRingBalance(t *testing.T) {
	const (
		nodes  = 5
		vnodes = 1000
		keys   = 20000
	)
	r := NewRing(1, vnodes, testMembers(nodes))
	counts := make(map[string]int)
	for _, k := range testKeys(keys) {
		m, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner on populated ring")
		}
		counts[m.Name]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d members own keys", len(counts), nodes)
	}
	fair := float64(keys) / nodes
	for name, c := range counts {
		dev := (float64(c) - fair) / fair
		if dev < -0.20 || dev > 0.20 {
			t.Errorf("member %s owns %d keys, %.1f%% from fair share %v", name, c, dev*100, fair)
		}
	}
}

// TestRingMinimalMovementOnJoin checks the defining property of
// consistent hashing: adding a member moves keys only TO the new member
// (never between survivors), and roughly 1/(n+1) of them.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const keys = 10000
	base := NewRing(1, 128, testMembers(4))
	joined := base.WithMember(Member{Name: "node-new", URL: "http://10.0.0.99:8080"})
	if joined.Epoch() != base.Epoch()+1 {
		t.Fatalf("join did not advance epoch: %d -> %d", base.Epoch(), joined.Epoch())
	}
	moved := 0
	for _, k := range testKeys(keys) {
		before, _ := base.Owner(k)
		after, _ := joined.Owner(k)
		if before.Name == after.Name {
			continue
		}
		moved++
		if after.Name != "node-new" {
			t.Fatalf("key %s moved between survivors: %s -> %s", k, before.Name, after.Name)
		}
	}
	share := float64(moved) / keys
	want := 1.0 / 5
	if share < want*0.5 || share > want*1.6 {
		t.Errorf("join moved %.1f%% of keys, want about %.1f%%", share*100, want*100)
	}
}

// TestRingMinimalMovementOnLeave checks the mirror property: removing a
// member moves only the keys it owned, and every one of them lands on
// what was the key's successor — which is why standby-on-successor makes
// promotion line up with reassignment.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const keys = 10000
	base := NewRing(7, 128, testMembers(5))
	gone := "node-2"
	shrunk := base.WithoutMember(gone)
	for _, k := range testKeys(keys) {
		before, _ := base.Owner(k)
		after, _ := shrunk.Owner(k)
		if before.Name != gone {
			if after.Name != before.Name {
				t.Fatalf("key %s moved although its owner survived: %s -> %s", k, before.Name, after.Name)
			}
			continue
		}
		succ, ok := base.Successor(k)
		if !ok {
			t.Fatalf("no successor for %s on a 5-member ring", k)
		}
		if after.Name != succ.Name {
			t.Fatalf("key %s reassigned to %s, but its standby was %s", k, after.Name, succ.Name)
		}
	}
}

func TestRingDeterminism(t *testing.T) {
	ms := testMembers(3)
	a := NewRing(3, 64, ms)
	// Same members in a different order must produce the same ring.
	b := NewRing(3, 64, []Member{ms[2], ms[0], ms[1]})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on member order")
	}
	for _, k := range testKeys(500) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("owner of %s differs: %v vs %v", k, ao, bo)
		}
		as, _ := a.Successor(k)
		bs, _ := b.Successor(k)
		if as != bs {
			t.Fatalf("successor of %s differs: %v vs %v", k, as, bs)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(1, 8, nil)
	if _, ok := empty.Owner("abc"); ok {
		t.Fatal("empty ring returned an owner")
	}
	solo := NewRing(1, 8, testMembers(1))
	if m, ok := solo.Owner("abc"); !ok || m.Name != "node-0" {
		t.Fatalf("solo ring owner = %v, %v", m, ok)
	}
	if _, ok := solo.Successor("abc"); ok {
		t.Fatal("solo ring returned a successor")
	}
	pair := NewRing(1, 8, testMembers(2))
	for _, k := range testKeys(100) {
		o, _ := pair.Owner(k)
		s, ok := pair.Successor(k)
		if !ok {
			t.Fatalf("no successor for %s on a 2-member ring", k)
		}
		if o.Name == s.Name {
			t.Fatalf("owner and successor coincide for %s", k)
		}
	}
	info := pair.Info()
	back := NewRingFromInfo(info)
	if back.Fingerprint() != pair.Fingerprint() || back.Epoch() != pair.Epoch() {
		t.Fatal("Info/NewRingFromInfo round trip changed the ring")
	}
}
