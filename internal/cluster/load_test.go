package cluster_test

// Overload load-routing e2e: a node whose admission governor is
// throttling new sessions must gossip that level on the ring probe,
// and a create POSTed at the hot node must be proxied to the cooler
// peer instead of answering 429 — while a request a peer already
// forwarded is served (and shed) locally, so two hot nodes can never
// ping-pong a create between them.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/ocp"
	"repro/internal/server"
)

// newSplitCluster mirrors newTestCluster but takes a per-node server
// configuration, so one node can run with a deliberately hot admission
// governor while its peer stays cool. WALDir is filled in per node.
func newSplitCluster(t *testing.T, refresh time.Duration, cfgs map[string]server.Config, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:     t,
		names: names,
		nodes: make(map[string]*cluster.Node),
		srvs:  make(map[string]*httptest.Server),
		dead:  make(map[string]bool),
	}
	handlers := make(map[string]*atomic.Value)
	var peers []cluster.Member
	for _, name := range names {
		h := &atomic.Value{}
		h.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "node starting", http.StatusServiceUnavailable)
		})})
		hv := h
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hv.Load().(handlerBox).h.ServeHTTP(w, r)
		}))
		handlers[name] = h
		tc.srvs[name] = ts
		peers = append(peers, cluster.Member{Name: name, URL: ts.URL})
	}
	for _, name := range names {
		dir := t.TempDir()
		scfg := cfgs[name]
		scfg.WALDir = filepath.Join(dir, "wal")
		n, err := cluster.New(cluster.Config{
			Name:         name,
			AdvertiseURL: tc.srvs[name].URL,
			Peers:        peers,
			RefreshEvery: refresh,
			StandbyDir:   filepath.Join(dir, "standby"),
			Server:       scfg,
		})
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		if _, err := n.Server().LoadSpecSource(specSource()); err != nil {
			t.Fatalf("loading specs on %s: %v", name, err)
		}
		handlers[name].Store(handlerBox{n.Handler()})
		tc.nodes[name] = n
	}
	t.Cleanup(func() {
		for _, name := range names {
			if tc.dead[name] {
				continue
			}
			tc.srvs[name].Close()
			tc.nodes[name].Close()
		}
	})
	return tc
}

// waitForCluster polls until cond holds or the deadline passes.
func waitForCluster(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterOverloadRoutesCreatesToCoolerPeer(t *testing.T) {
	base := server.Config{Shards: 2, QueueDepth: 16, SnapshotEvery: 4}
	hotCfg := base
	// The fault plane pins the hot node's governor at the
	// session-throttling level — GovernorState folds fault forcing in,
	// so the gossiped load matches what admission actually enforces.
	hotCfg.Faults = faultinject.New(1).Add(faultinject.Rule{
		Point: "governor.force.sessions", Kind: faultinject.KindError, Every: 1,
	})
	tc := newSplitCluster(t, 20*time.Millisecond, map[string]server.Config{
		"hot": hotCfg, "cool": base,
	}, "hot", "cool")
	hot, cool := tc.nodes["hot"], tc.nodes["cool"]

	// The ring probe doubles as load gossip: the hot node advertises its
	// throttling level on X-Cesc-Load, and learns that its peer is idle.
	resp, err := http.Get(tc.srvs["hot"].URL + "/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if load := resp.Header.Get(cluster.HeaderLoad); !strings.HasPrefix(load, "2 ") {
		t.Fatalf("hot node gossips %s %q, want level 2", cluster.HeaderLoad, load)
	}
	waitForCluster(t, 5*time.Second, func() bool {
		st := hot.Status()
		pl, ok := st.PeerLoads["cool"]
		return ok && pl.Level == 0 && st.GovernorLevel >= server.GovLevelThrottleSessions
	})
	if st := cool.Status(); st.GovernorLevel != 0 {
		t.Fatalf("cool node governor level = %d, want 0", st.GovernorLevel)
	}

	// A create POSTed at the hot node is proxied to the cooler peer: the
	// client sees a plain 201, the session materializes on the cool node,
	// and the hot node counts the routed create.
	body, _ := json.Marshal(map[string]any{"mode": "assert", "specs": []string{"OcpSimpleRead"}})
	resp, err = http.Post(tc.srvs["hot"].URL+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info server.SessionInfoJSON
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via hot node: status %d, want 201", resp.StatusCode)
	}
	if !cool.Server().HasSession(info.ID) {
		t.Fatalf("session %s not on cool node after overload routing", info.ID)
	}
	if hot.Server().HasSession(info.ID) {
		t.Fatalf("session %s landed on the throttling node", info.ID)
	}
	if routed := hot.Status().LoadRouted; routed < 1 {
		t.Fatalf("hot node LoadRouted = %d, want >= 1", routed)
	}

	// Ping-pong guard: a create that already carries the forwarded marker
	// must be served locally, which on the hot node means the honest 429.
	req, err := http.NewRequest("POST", tc.srvs["hot"].URL+"/sessions", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "cool")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("forwarded create on hot node: status %d, want 429", resp.StatusCode)
	}
	if shed := resp.Header.Get("X-Cesc-Shed"); shed != "sessions" {
		t.Fatalf("forwarded create X-Cesc-Shed = %q, want \"sessions\"", shed)
	}
	if routed := hot.Status().LoadRouted; routed != 1 {
		t.Fatalf("LoadRouted = %d after forwarded create, want still 1", routed)
	}

	// The routed session is fully usable where it landed: stream the
	// Fig. 6 trace at the cool node and read complete verdicts back.
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7, FaultRate: 0.2}).GenerateTrace(96)
	states := toStatesJSON(tr)
	ctx := context.Background()
	c := client.New(client.Options{BaseURL: tc.srvs["cool"].URL})
	sess := c.Resume(info.ID, 0)
	for at := 0; at < len(states); at += 32 {
		if _, err := sess.SendTicks(ctx, states[at:at+32], true); err != nil {
			t.Fatalf("SendTicks at %d: %v", at, err)
		}
	}
	got, err := sess.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != len(tr) {
		t.Fatalf("routed session steps = %d, want %d", got.Steps, len(tr))
	}
	if _, err := sess.Verdicts(ctx); err != nil {
		t.Fatalf("verdicts from routed session: %v", err)
	}
}
