package cluster_test

// Fleet observability tests: the cluster-merged trace timeline, the
// federated Prometheus exposition, and cluster-aware readiness — all
// against an in-process ring (run under -race via `make clustertest`).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/ocp"
)

// tracedGet issues a GET carrying a trace id, the way a ring-unaware
// but trace-aware caller would.
func tracedGet(t *testing.T, url, traceID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Cesc-Trace", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func clusterTrace(t *testing.T, base, traceID string) cluster.ClusterTraceJSON {
	t.Helper()
	resp, err := http.Get(base + "/cluster/trace?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/trace: status %d", resp.StatusCode)
	}
	var out cluster.ClusterTraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterTraceMergedTimeline drives one pinned trace id through the
// ring — ingest on the owner, a transparent proxy hop through a
// non-owner — and requires GET /cluster/trace to merge the spans from
// both nodes into one causally ordered timeline.
func TestClusterTraceMergedTimeline(t *testing.T) {
	tc := newTestCluster(t, 0, "alpha", "beta", "gamma")
	router := newRouter(t, tc)
	const traceID = "trace-merged-timeline"
	ctx := client.WithTraceID(context.Background(), traceID)

	sess, err := router.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	states := toStatesJSON(ocp.NewModel(ocp.Config{Gap: 2, Seed: 21}).GenerateTrace(64))
	if _, err := sess.SendTicks(ctx, states, true); err != nil {
		t.Fatal(err)
	}
	if sess.LastTrace() != traceID {
		t.Fatalf("LastTrace = %q, want the pinned %q", sess.LastTrace(), traceID)
	}
	owner, ok := tc.holder(sess.ID)
	if !ok {
		t.Fatalf("no holder for %s", sess.ID)
	}

	// A traced read through every non-owner is transparently proxied to
	// the owner; each hop records a proxy span under the same trace.
	for _, name := range tc.names {
		if name == owner {
			continue
		}
		resp := tracedGet(t, tc.srvs[name].URL+"/sessions/"+sess.ID, traceID)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxied GET via %s: status %d", name, resp.StatusCode)
		}
	}

	out := clusterTrace(t, tc.srvs["alpha"].URL, traceID)
	if out.Trace != traceID {
		t.Fatalf("answer for trace %q, want %q", out.Trace, traceID)
	}
	contributing := 0
	for name, count := range out.Nodes {
		if count < 0 {
			t.Fatalf("node %s unreachable in a healthy ring: %+v", name, out.Nodes)
		}
		if count > 0 {
			contributing++
		}
	}
	if contributing < 2 {
		t.Fatalf("spans from %d nodes, want >= 2: %+v", contributing, out.Nodes)
	}
	nodes := map[string]bool{}
	var proxies, steps int
	for i, sp := range out.Spans {
		if sp.Trace != traceID {
			t.Fatalf("span %d carries trace %q", i, sp.Trace)
		}
		if sp.Node == "" || sp.HLC == 0 {
			t.Fatalf("span %d missing node/HLC attribution: %+v", i, sp)
		}
		if i > 0 && sp.HLC < out.Spans[i-1].HLC {
			t.Fatalf("timeline not HLC-ordered at %d: %d after %d", i, sp.HLC, out.Spans[i-1].HLC)
		}
		nodes[sp.Node] = true
		switch {
		case sp.Kind == "proxy":
			proxies++
			if sp.Stage != obs.StageProxy {
				t.Fatalf("proxy span stage = %q", sp.Stage)
			}
		case sp.Stage == obs.StageStep:
			steps++
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("merged spans name %d nodes, want >= 2", len(nodes))
	}
	if proxies < 2 || steps == 0 {
		t.Fatalf("timeline has %d proxy spans and %d step spans, want >= 2 and >= 1:\n%+v",
			proxies, steps, out.Spans)
	}

	// The text rendering serves the same timeline for a terminal.
	resp, err := http.Get(tc.srvs["beta"].URL + "/cluster/trace?trace=" + traceID + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "[proxy]") || !strings.Contains(string(body), owner) {
		t.Fatalf("text timeline missing proxy hop or owner:\n%s", body)
	}

	// Parameter validation: no trace id, bad n.
	for _, path := range []string{"/cluster/trace", "/cluster/trace?trace=x&n=0"} {
		resp, err := http.Get(tc.srvs["alpha"].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestClusterTraceFanoutDuringIngest hammers the /cluster/trace fan-out
// from every node while ticks stream through the ring — the -race
// exercise for the merge path against live span writes.
func TestClusterTraceFanoutDuringIngest(t *testing.T) {
	tc := newTestCluster(t, 0, "alpha", "beta")
	router := newRouter(t, tc)
	const traceID = "trace-fanout-race"
	ctx := client.WithTraceID(context.Background(), traceID)

	sess, err := router.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	states := toStatesJSON(ocp.NewModel(ocp.Config{Gap: 2, Seed: 23}).GenerateTrace(300))

	done := make(chan error, 1)
	go func() {
		for at := 0; at < len(states); at += 10 {
			end := min(at+10, len(states))
			if _, err := sess.SendTicks(ctx, states[at:end], true); err != nil {
				done <- fmt.Errorf("SendTicks[%d:%d]: %w", at, end, err)
				return
			}
		}
		done <- nil
	}()

	var wg sync.WaitGroup
	for _, name := range tc.names {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(base string) {
				defer wg.Done()
				for j := 0; j < 25; j++ {
					out := clusterTrace(t, base, traceID)
					for k := 1; k < len(out.Spans); k++ {
						if out.Spans[k].HLC < out.Spans[k-1].HLC {
							t.Errorf("mid-ingest timeline unordered at %d", k)
							return
						}
					}
				}
			}(tc.srvs[name].URL)
		}
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	out := clusterTrace(t, tc.srvs["beta"].URL, traceID)
	if len(out.Spans) == 0 {
		t.Fatal("no spans after ingest settled")
	}
}

// TestClusterMetricsFederation requires GET /cluster/metrics to serve
// one ValidatePromText-clean exposition with every member's samples
// under a node label, and to degrade (up=0), not fail, when a member
// dies.
func TestClusterMetricsFederation(t *testing.T) {
	tc := newTestCluster(t, 0, "alpha", "beta")
	router := newRouter(t, tc)
	ctx := context.Background()
	sess, err := router.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatal(err)
	}
	states := toStatesJSON(ocp.NewModel(ocp.Config{Gap: 2, Seed: 29}).GenerateTrace(40))
	if _, err := sess.SendTicks(ctx, states, true); err != nil {
		t.Fatal(err)
	}

	fetch := func(base string) string {
		t.Helper()
		resp, err := http.Get(base + "/cluster/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("Content-Type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := fetch(tc.srvs["alpha"].URL)
	if n, err := obs.ValidatePromText(text); err != nil || n == 0 {
		t.Fatalf("federated exposition invalid (%d samples): %v\n%s", n, err, text)
	}
	for _, want := range []string{
		`cescd_node_up{node="alpha"} 1`,
		`cescd_node_up{node="beta"} 1`,
		`cescd_ticks_total{node="`,
		`cescd_build_info{node="alpha"`,
		`cescd_cluster_ring_epoch{node="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("federated exposition missing %q:\n%s", want, text)
		}
	}
	// Family declarations from the two nodes collapse into one.
	if got := strings.Count(text, "# TYPE cescd_ticks_total "); got != 1 {
		t.Fatalf("cescd_ticks_total declared %d times, want 1", got)
	}

	// Kill beta: the federation keeps answering, beta degrades to up=0,
	// and the document stays valid.
	tc.kill("beta")
	text = fetch(tc.srvs["alpha"].URL)
	if _, err := obs.ValidatePromText(text); err != nil {
		t.Fatalf("half-dead federation invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, `cescd_node_up{node="beta"} 0`) {
		t.Fatalf("dead member not reported down:\n%s", text)
	}
}

// TestReadyzClusterAware checks the load-balancer contract: ready while
// serving, 503 with a named reason once draining.
func TestReadyzClusterAware(t *testing.T) {
	tc := newTestCluster(t, 0, "alpha", "beta")

	resp, err := http.Get(tc.srvs["alpha"].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh node /readyz = %d, want 200", resp.StatusCode)
	}

	// Drain alpha out of the ring: it must stop advertising readiness
	// (both the draining flag and its absence from its own ring view).
	tc.post(t, "alpha", "/cluster/drain", map[string]string{}, nil)
	resp, err = http.Get(tc.srvs["alpha"].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining node /readyz = %d, want 503", resp.StatusCode)
	}
	var body struct {
		Ready   bool              `json:"ready"`
		Reasons map[string]string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Ready || len(body.Reasons) == 0 {
		t.Fatalf("draining /readyz body = %+v, want named reasons", body)
	}

	// The healthy peer still answers ready.
	resp2, err := http.Get(tc.srvs["beta"].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("peer /readyz = %d, want 200", resp2.StatusCode)
	}
}
