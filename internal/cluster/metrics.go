package cluster

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// nodeMetrics counts the cluster plane's own activity; the wrapped
// server's counters keep covering the monitor pipeline.
type nodeMetrics struct {
	migrationsOut    atomic.Uint64 // handoffs shipped and committed
	migrationsIn     atomic.Uint64 // handoffs received and adopted
	migrationsFailed atomic.Uint64 // exports aborted after a failed ship
	promotions       atomic.Uint64 // standby copies promoted to live sessions

	redirects atomic.Uint64 // 307 responses to ring-aware clients
	proxied   atomic.Uint64 // requests transparently proxied to the owner

	ringAdoptions     atomic.Uint64 // newer rings adopted from peers
	peersDeclaredDead atomic.Uint64 // members removed by the failure detector
	loadRouted        atomic.Uint64 // creates proxied to a cooler peer under overload

	recordsReplicated atomic.Uint64 // WAL records shipped to standbys
	replicationErrors atomic.Uint64 // failed replication reads or ships

	// mu guards the per-peer replication lag gauge, rewritten wholesale
	// by each replication cycle.
	mu      sync.Mutex
	peerLag map[string]int64
}

func newNodeMetrics() *nodeMetrics {
	return &nodeMetrics{peerLag: make(map[string]int64)}
}

// setPeerLag replaces the per-peer replication lag gauge.
func (m *nodeMetrics) setPeerLag(lag map[string]int64) {
	m.mu.Lock()
	m.peerLag = lag
	m.mu.Unlock()
}

func (m *nodeMetrics) peerLagSnapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.peerLag))
	for k, v := range m.peerLag {
		out[k] = v
	}
	return out
}

// StatusJSON is the body of GET /cluster/status: the node's view of the
// ring plus the cluster plane's counters.
type StatusJSON struct {
	Self     string   `json:"self"`
	Epoch    uint64   `json:"epoch"`
	Members  []Member `json:"members"`
	Draining bool     `json:"draining"`

	SessionsLocal   int      `json:"sessions_local"`
	StandbySessions []string `json:"standby_sessions,omitempty"`

	// Overload gossip: this node's own governor state plus the freshest
	// load sample cached for each peer.
	GovernorLevel int                     `json:"governor_level"`
	GovernorScore float64                 `json:"governor_score"`
	PeerLoads     map[string]PeerLoadJSON `json:"peer_loads,omitempty"`
	LoadRouted    uint64                  `json:"load_routed"`

	MigrationsOut    uint64 `json:"migrations_out"`
	MigrationsIn     uint64 `json:"migrations_in"`
	MigrationsFailed uint64 `json:"migrations_failed"`
	Promotions       uint64 `json:"promotions"`

	Redirects uint64 `json:"redirects"`
	Proxied   uint64 `json:"proxied"`

	RingAdoptions     uint64 `json:"ring_adoptions"`
	PeersDeclaredDead uint64 `json:"peers_declared_dead"`

	RecordsReplicated uint64           `json:"records_replicated"`
	ReplicationErrors uint64           `json:"replication_errors"`
	ReplicationLag    map[string]int64 `json:"replication_lag_bytes,omitempty"`
}

// PeerLoadJSON is one peer's gossiped admission-governor state.
type PeerLoadJSON struct {
	Level int     `json:"level"`
	Score float64 `json:"score"`
}

// promText renders the cluster families appended to the wrapped
// server's Prometheus exposition.
func (n *Node) promText() []byte {
	st := n.Status()
	w := obs.NewPromWriter()
	counter := func(name, help string, v uint64) {
		w.Family(name, "counter", help)
		w.Sample(name, nil, float64(v))
	}
	w.Family("cescd_cluster_ring_epoch", "gauge", "Current consistent-hash ring epoch.")
	w.Sample("cescd_cluster_ring_epoch", nil, float64(st.Epoch))
	w.Family("cescd_cluster_members", "gauge", "Members in the current ring.")
	w.Sample("cescd_cluster_members", nil, float64(len(st.Members)))
	w.Family("cescd_cluster_standby_sessions", "gauge", "Warm standby session copies held for peers.")
	w.Sample("cescd_cluster_standby_sessions", nil, float64(len(st.StandbySessions)))
	w.Family("cescd_cluster_draining", "gauge", "1 while the node is draining out of the ring.")
	w.Sample("cescd_cluster_draining", nil, b2f(st.Draining))
	counter("cescd_cluster_migrations_out_total", "Session handoffs shipped and committed.", st.MigrationsOut)
	counter("cescd_cluster_migrations_in_total", "Session handoffs received and adopted.", st.MigrationsIn)
	counter("cescd_cluster_migrations_failed_total", "Session handoffs aborted after a failed ship.", st.MigrationsFailed)
	counter("cescd_cluster_promotions_total", "Standby copies promoted to live sessions.", st.Promotions)
	counter("cescd_cluster_redirects_total", "307 redirects served to ring-aware clients.", st.Redirects)
	counter("cescd_cluster_proxied_total", "Requests transparently proxied to the session owner.", st.Proxied)
	counter("cescd_cluster_ring_adoptions_total", "Newer rings adopted from peers.", st.RingAdoptions)
	counter("cescd_cluster_peers_declared_dead_total", "Members removed by the failure detector.", st.PeersDeclaredDead)
	counter("cescd_cluster_load_routed_total", "Session creates proxied to a cooler peer under overload.", st.LoadRouted)
	w.Family("cescd_cluster_peer_load_level", "gauge", "Gossiped admission-governor level per peer.")
	loadPeers := make([]string, 0, len(st.PeerLoads))
	for p := range st.PeerLoads {
		loadPeers = append(loadPeers, p)
	}
	sort.Strings(loadPeers)
	for _, p := range loadPeers {
		w.Sample("cescd_cluster_peer_load_level", []obs.L{{Name: "peer", Value: p}}, float64(st.PeerLoads[p].Level))
	}
	counter("cescd_cluster_records_replicated_total", "WAL records shipped to standby holders.", st.RecordsReplicated)
	counter("cescd_cluster_replication_errors_total", "Failed replication reads or ships.", st.ReplicationErrors)
	w.Family("cescd_cluster_replication_lag_bytes", "gauge", "Journal bytes not yet shipped to the session's standby, per peer.")
	peers := make([]string, 0, len(st.ReplicationLag))
	for p := range st.ReplicationLag {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		w.Sample("cescd_cluster_replication_lag_bytes", []obs.L{{Name: "peer", Value: p}}, float64(st.ReplicationLag[p]))
	}
	return w.Bytes()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// unused import guard: strconv is used by node.go's header rendering —
// keep the compiler honest if that moves.
var _ = strconv.Itoa
