package cluster

// Warm-standby replication: each owner tails its sessions' WAL journals
// (wal.ReadFrom) and ships new records to the ring successor's standby
// store over POST /cluster/replicate. The successor is exactly where
// those keys land if the owner dies, so promotion is a local replay.
//
// The cursor protocol keeps a standby copy equal to a prefix of the
// owner's journal:
//
//   - A fresh cursor (new session, or the successor changed) ships with
//     reset=true: the receiver wipes any stale copy before appending.
//   - A checkpoint on the owner prunes old segments; ReadFrom detects
//     the prune and restarts from the snapshot with reset=true, and the
//     standby copy collapses to the same snapshot + tail.
//   - Ship failures leave the cursor untouched; the next cycle re-reads
//     the same records. Appending is idempelement only via reset, so a
//     half-applied ship is impossible: the receiver appends and syncs
//     before answering 200.
//
// Loss window: records appended after the last successful ship. The
// client's ?seq dedup watermark (inside the shipped records) makes
// cross-promotion retries exactly-once.

import (
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// recordJSON is one WAL record on the wire.
type recordJSON struct {
	Kind    byte   `json:"kind"`
	Payload []byte `json:"payload"`
}

type replicateRequest struct {
	Session string       `json:"session"`
	Reset   bool         `json:"reset,omitempty"`
	Records []recordJSON `json:"records"`
}

// replicator tails local session journals and ships them to standbys.
type replicator struct {
	n *Node

	// cycleMu serializes cycles: the background loop and explicit
	// POST /cluster/flush must not interleave over the same cursors.
	cycleMu sync.Mutex

	mu      sync.Mutex
	cursors map[string]*replCursor
}

type replCursor struct {
	pos     wal.Position
	peer    string // successor the cursor position is valid against
	started bool   // false until the first successful ship
}

func newReplicator(n *Node) *replicator {
	return &replicator{n: n, cursors: make(map[string]*replCursor)}
}

func (r *replicator) loop(every time.Duration) {
	defer r.n.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.n.stop:
			return
		case <-t.C:
			r.cycle()
		}
	}
}

// forget drops a session's cursor (it migrated away or was deleted).
func (r *replicator) forget(id string) {
	r.mu.Lock()
	delete(r.cursors, id)
	r.mu.Unlock()
}

// cycle ships one round of journal tails and returns the total
// replication lag in bytes afterwards.
func (r *replicator) cycle() int64 {
	r.cycleMu.Lock()
	defer r.cycleMu.Unlock()

	n := r.n
	wm := n.srv.WAL()
	if wm == nil {
		return 0
	}
	var total int64
	perPeer := make(map[string]int64)
	live := make(map[string]bool)
	for _, id := range n.srv.SessionIDs() {
		live[id] = true
		ring := n.currentRing()
		owner, ok := ring.Owner(id)
		if !ok || owner.Name != n.self.Name {
			continue // mid-migration; the new owner replicates it
		}
		succ, ok := ring.Successor(id)
		if !ok || succ.Name == n.self.Name {
			continue // no distinct successor to hold a standby
		}
		lag := r.shipSession(wm, id, succ)
		total += lag
		perPeer[succ.Name] += lag
	}
	r.mu.Lock()
	for id := range r.cursors {
		if !live[id] {
			delete(r.cursors, id)
		}
	}
	r.mu.Unlock()
	n.metrics.setPeerLag(perPeer)
	return total
}

// shipSession advances one session's cursor toward its successor and
// returns the remaining lag in bytes.
func (r *replicator) shipSession(wm *wal.Manager, id string, succ Member) int64 {
	n := r.n
	r.mu.Lock()
	cur := r.cursors[id]
	if cur == nil {
		cur = &replCursor{}
		r.cursors[id] = cur
	}
	pos, peer, started := cur.pos, cur.peer, cur.started
	r.mu.Unlock()

	reset := !started || peer != succ.Name
	if reset {
		pos = wal.Position{}
	}
	var recs []recordJSON
	next, wasReset, err := wm.ReadFrom(id, pos, func(rec wal.Record) error {
		recs = append(recs, recordJSON{Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
		return nil
	})
	if err != nil {
		n.metrics.replicationErrors.Add(1)
		return r.lag(wm, id, pos)
	}
	reset = reset || wasReset
	if len(recs) == 0 && !reset {
		return r.lag(wm, id, next)
	}
	req := replicateRequest{Session: id, Reset: reset, Records: recs}
	if err := n.postJSON(succ.URL, "/cluster/replicate", req, nil); err != nil {
		n.metrics.replicationErrors.Add(1)
		return r.lag(wm, id, pos)
	}
	r.mu.Lock()
	cur.pos, cur.peer, cur.started = next, succ.Name, true
	r.mu.Unlock()
	n.metrics.recordsReplicated.Add(uint64(len(recs)))
	return r.lag(wm, id, next)
}

func (r *replicator) lag(wm *wal.Manager, id string, pos wal.Position) int64 {
	d, err := wm.Distance(id, pos)
	if err != nil {
		return 0
	}
	return d
}

// ─── standby store ────────────────────────────────────────────────────

// standbyStore holds warm copies of peer sessions in a wal.Manager of
// its own (never the server's — the server would recover these as live
// sessions). Open journal handles are cached across ships and closed
// before any read or removal so promotion sees fully flushed files.
type standbyStore struct {
	mgr  *wal.Manager
	mu   sync.Mutex
	open map[string]*wal.Journal
}

func newStandbyStore(mgr *wal.Manager) *standbyStore {
	return &standbyStore{mgr: mgr, open: make(map[string]*wal.Journal)}
}

// append applies one replication ship: optionally wipe, then append
// records (checkpoints go through AppendCheckpoint so standby disk use
// tracks the owner's) and sync before acknowledging.
func (s *standbyStore) append(id string, reset bool, recs []recordJSON) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reset {
		if err := s.dropLocked(id); err != nil {
			return err
		}
	}
	j, err := s.journalLocked(id)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Kind == server.RecordSnapshot {
			err = j.AppendCheckpoint(rec.Kind, rec.Payload)
		} else {
			err = j.Append(rec.Kind, rec.Payload)
		}
		if err != nil {
			return err
		}
	}
	return j.Sync()
}

// take closes the cached handle and reads the full standby journal for
// promotion.
func (s *standbyStore) take(id string) ([]wal.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeLocked(id)
	var recs []wal.Record
	j, err := s.mgr.OpenJournal(id, func(rec wal.Record) error {
		recs = append(recs, wal.Record{Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	j.Abandon()
	return recs, nil
}

// drop closes and removes a standby copy.
func (s *standbyStore) drop(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropLocked(id)
}

// has reports whether a standby copy exists for the session.
func (s *standbyStore) has(id string) bool {
	s.mu.Lock()
	if _, ok := s.open[id]; ok {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	ids, err := s.mgr.List()
	if err != nil {
		return false
	}
	for _, have := range ids {
		if have == id {
			return true
		}
	}
	return false
}

// list names every session with a standby copy.
func (s *standbyStore) list() ([]string, error) {
	return s.mgr.List()
}

// closeAll releases every cached journal handle.
func (s *standbyStore) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.open {
		s.closeLocked(id)
	}
}

func (s *standbyStore) journalLocked(id string) (*wal.Journal, error) {
	if j, ok := s.open[id]; ok {
		return j, nil
	}
	j, err := s.mgr.OpenJournal(id, func(wal.Record) error { return nil })
	if err != nil {
		return nil, err
	}
	s.open[id] = j
	return j, nil
}

func (s *standbyStore) closeLocked(id string) {
	if j, ok := s.open[id]; ok {
		_ = j.Close()
		delete(s.open, id)
	}
}

func (s *standbyStore) dropLocked(id string) error {
	s.closeLocked(id)
	return s.mgr.Remove(id)
}
