// Package cluster turns a fleet of cescd daemons into one logical
// monitor service. Three mechanisms compose:
//
//   - A consistent-hash ring (ring.go) assigns every session ID an
//     owner. Each node wraps its server.Server with a routing layer:
//     requests for sessions it holds are served locally, everything
//     else is transparently proxied to the owner — or answered with a
//     307 redirect when the client opts in via `X-Cesc-Route: redirect`
//     (the ring-aware client does, so steady-state traffic needs no
//     extra hop).
//
//   - Ring changes trigger live session migration. The losing owner
//     freezes the session (ingest answers 409 + Retry-After), exports
//     one self-contained snapshot record — the WAL checkpoint encoding
//     — and ships it with the ring it is acting under. The receiver
//     adopts newer rings, rejects stale epochs, and rebuilds the
//     session through the recovery replay path, so a moved session is
//     byte-identical to one that never moved. The ?seq dedup watermark
//     travels inside the snapshot, keeping ingest exactly-once across
//     the move.
//
//   - Each owner asynchronously streams its sessions' WAL records to
//     the ring successor's standby store. When a node dies (failure
//     detector or explicit POST /cluster/leave), keys it owned land
//     exactly on their old successor — which holds the warm copy — and
//     promotion replays the standby journal into a live session. At
//     most the unacknowledged replication tail is lost, and the ?seq
//     watermark makes client retries across the promotion safe.
//
// Membership is static-peer with optional pull-based refresh: every
// node republishes its ring at GET /cluster/ring, polls peers on a
// timer, adopts strictly newer epochs (fingerprint breaks equal-epoch
// ties), and counts consecutive probe failures toward declaring a peer
// dead. There is no consensus layer — the ring is a CRDT-ish
// last-writer-wins table, which is the right weight for a monitor
// fleet where the WAL, not the ring, is the source of truth.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
)

// Routing and fencing headers.
const (
	// HeaderRoute, when set to "redirect" by a client, turns proxying
	// into a 307 + Location answer carrying the owner.
	HeaderRoute = "X-Cesc-Route"
	// HeaderForwarded marks a request already proxied once; a second
	// forward would mean the ring views disagree, so the node answers
	// 409 instead of looping.
	HeaderForwarded = "X-Cesc-Forwarded"
	// HeaderOwner and HeaderRingEpoch annotate redirect answers so
	// ring-aware clients can refresh without an extra round trip.
	HeaderOwner     = "X-Cesc-Owner"
	HeaderRingEpoch = "X-Cesc-Ring-Epoch"
	// HeaderLoad carries a node's admission-governor state as
	// "<level> <score>" on ring gossip responses. Peers cache it so
	// session creation can be routed away from overloaded nodes before
	// the local 429 is ever sent.
	HeaderLoad = "X-Cesc-Load"
)

// peerLoadTTL bounds how long a gossiped load sample steers routing; a
// stale sample (peer unreachable, refresh stopped) stops influencing
// create placement rather than pinning traffic on outdated data.
const peerLoadTTL = 30 * time.Second

// peerLoad is one cached load sample gossiped by a peer.
type peerLoad struct {
	level int
	score float64
	at    time.Time
}

// Config assembles a cluster node around an embedded server config.
type Config struct {
	// Name uniquely identifies this node in the ring.
	Name string
	// AdvertiseURL is the base URL peers and redirected clients use to
	// reach this node (e.g. "http://10.0.0.7:8080").
	AdvertiseURL string
	// Peers is the static membership (self is added automatically).
	// All nodes started with the same peer list converge immediately.
	Peers []Member
	// JoinURLs, when set, joins an existing cluster through any one of
	// the listed nodes instead of relying on a static peer list.
	JoinURLs []string
	// VNodes is the virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// RefreshEvery is the ring refresh + failure probe period; 0
	// disables the background loop (tests drive refresh explicitly).
	RefreshEvery time.Duration
	// FailAfter is the number of consecutive failed probes before a
	// peer is declared dead and removed from the ring (default 3).
	FailAfter int
	// ReplicateEvery is the standby shipping period; 0 disables the
	// background loop (replication can still be driven via
	// POST /cluster/flush).
	ReplicateEvery time.Duration
	// StandbyDir, when set, stores warm standby copies of peer
	// sessions this node is successor for. It must not live inside the
	// server's WALDir (the server would mistake standby journals for
	// its own).
	StandbyDir string
	// HTTPClient is used for peer-to-peer calls (default: 5s timeout).
	HTTPClient *http.Client
	// Server is the wrapped daemon's configuration. Its IDFilter is
	// overwritten: the node mints only session IDs it owns.
	Server server.Config
}

// Node is one member of a cescd cluster: a server.Server wrapped in
// ring routing, migration, and standby replication.
type Node struct {
	cfg     Config
	self    Member
	srv     *server.Server
	mux     *http.ServeMux
	hc      *http.Client
	metrics *nodeMetrics

	mu         sync.RWMutex // guards ring, draining, probeFails, peerLoads
	ring       *Ring
	draining   bool
	probeFails map[string]int
	peerLoads  map[string]peerLoad

	standby *standbyStore // nil when StandbyDir is empty
	repl    *replicator   // nil when the server has no WAL

	// migrateMu serializes rebalance scans (migration out, standby
	// promotion, standby GC) so two ring changes can't race each other
	// over the same session.
	migrateMu sync.Mutex

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds the node, starts the wrapped server (recovering its WAL),
// joins or forms the ring, and starts the refresh/replication loops.
func New(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node name is required")
	}
	if cfg.AdvertiseURL == "" {
		return nil, fmt.Errorf("cluster: advertise URL is required")
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.StandbyDir != "" && cfg.Server.WALDir != "" &&
		strings.HasPrefix(cfg.StandbyDir+"/", cfg.Server.WALDir+"/") {
		return nil, fmt.Errorf("cluster: standby dir %s must not live inside WAL dir %s", cfg.StandbyDir, cfg.Server.WALDir)
	}
	n := &Node{
		cfg:        cfg,
		self:       Member{Name: cfg.Name, URL: strings.TrimRight(cfg.AdvertiseURL, "/")},
		mux:        http.NewServeMux(),
		hc:         cfg.HTTPClient,
		metrics:    newNodeMetrics(),
		probeFails: make(map[string]int),
		peerLoads:  make(map[string]peerLoad),
		stop:       make(chan struct{}),
	}
	if n.hc == nil {
		n.hc = &http.Client{Timeout: 5 * time.Second}
	}
	members := append([]Member{n.self}, cfg.Peers...)
	n.ring = NewRing(1, cfg.VNodes, members)

	srvCfg := cfg.Server
	srvCfg.IDFilter = n.ownsID
	// Spans (and flight-recorder dumps) carry the ring member name, so a
	// cluster-merged timeline can attribute every span to its node.
	srvCfg.NodeName = cfg.Name
	srv, err := server.New(srvCfg)
	if err != nil {
		return nil, err
	}
	n.srv = srv

	if cfg.StandbyDir != "" {
		mgr, err := wal.OpenManager(wal.Options{Dir: cfg.StandbyDir})
		if err != nil {
			srv.Close()
			return nil, err
		}
		n.standby = newStandbyStore(mgr)
	}
	if srv.WAL() != nil {
		n.repl = newReplicator(n)
	}
	n.routes()

	if len(cfg.JoinURLs) > 0 {
		if err := n.join(); err != nil {
			n.closeStores()
			srv.Close()
			return nil, err
		}
	}
	// Settle ownership for whatever the ring and the recovered WAL say:
	// promote leftover standby copies we now own, migrate away recovered
	// sessions we no longer own.
	n.rebalance()

	if cfg.RefreshEvery > 0 {
		n.wg.Add(1)
		go n.refreshLoop()
	}
	if cfg.ReplicateEvery > 0 && n.repl != nil {
		n.wg.Add(1)
		go n.repl.loop(cfg.ReplicateEvery)
	}
	return n, nil
}

// Handler returns the node's HTTP surface: the cluster endpoints plus
// the ring-routed server API.
func (n *Node) Handler() http.Handler { return n.mux }

// Server exposes the wrapped daemon (tests compare verdicts directly).
func (n *Node) Server() *server.Server { return n.srv }

// Ring returns the node's current view of the ring.
func (n *Node) Ring() *Ring {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring
}

// Close stops the loops and shuts the wrapped server down cleanly.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		n.closeStores()
		n.srv.Close()
	})
}

// Kill simulates node death for failover tests: loops stop and the
// wrapped server crashes (queued work discarded, no final sync) — the
// rest of the cluster sees probe failures, nothing more.
func (n *Node) Kill() {
	n.closeOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		n.closeStores()
		n.srv.Crash()
	})
}

func (n *Node) closeStores() {
	if n.standby != nil {
		n.standby.closeAll()
	}
}

// ─── ring state ───────────────────────────────────────────────────────

func (n *Node) currentRing() *Ring {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring
}

func (n *Node) isDraining() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.draining
}

// ownsID is the server's IDFilter: freshly minted session IDs must land
// on this node under the current ring, so created sessions never start
// life needing a proxy hop.
func (n *Node) ownsID(id string) bool {
	n.mu.RLock()
	ring, draining := n.ring, n.draining
	n.mu.RUnlock()
	if draining {
		return false
	}
	if ring == nil || ring.Len() <= 1 {
		return true
	}
	owner, ok := ring.Owner(id)
	return ok && owner.Name == n.self.Name
}

// adoptInfo installs a peer's ring if it is strictly newer — higher
// epoch, or same epoch with a winning fingerprint (deterministic
// tie-break so concurrent equal-epoch edits converge fleet-wide).
func (n *Node) adoptInfo(info RingInfo) bool {
	if len(info.Members) == 0 {
		return false
	}
	incoming := NewRingFromInfo(info)
	n.mu.Lock()
	cur := n.ring
	adopt := incoming.Epoch() > cur.Epoch() ||
		(incoming.Epoch() == cur.Epoch() && incoming.Fingerprint() > cur.Fingerprint())
	if adopt {
		n.ring = incoming
	}
	n.mu.Unlock()
	if adopt {
		n.metrics.ringAdoptions.Add(1)
		n.onRingChange()
	}
	return adopt
}

// addMember grows the ring (idempotent) and gossips the result.
func (n *Node) addMember(m Member) *Ring {
	n.mu.Lock()
	cur := n.ring
	if existing, ok := cur.Lookup(m.Name); ok && existing.URL == m.URL {
		n.mu.Unlock()
		return cur
	}
	next := cur.WithMember(m)
	n.ring = next
	n.mu.Unlock()
	n.onRingChange()
	n.broadcast(next)
	return next
}

// removeMember shrinks the ring (idempotent) and gossips the result.
func (n *Node) removeMember(name string) *Ring {
	n.mu.Lock()
	cur := n.ring
	if _, ok := cur.Lookup(name); !ok {
		n.mu.Unlock()
		return cur
	}
	next := cur.WithoutMember(name)
	n.ring = next
	delete(n.probeFails, name)
	n.mu.Unlock()
	n.onRingChange()
	n.broadcast(next)
	return next
}

// onRingChange kicks an asynchronous rebalance scan. Handlers must not
// block on migrations, and the scan itself re-reads the ring per
// session, so back-to-back changes coalesce safely.
func (n *Node) onRingChange() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.rebalance()
	}()
}

// rebalance settles local state against the current ring: promote
// standby copies this node now owns, migrate away sessions it no longer
// owns, drop standby copies it is no longer successor for.
func (n *Node) rebalance() {
	n.migrateMu.Lock()
	defer n.migrateMu.Unlock()
	n.promoteLocked()
	n.migrateLocked()
	n.gcStandbyLocked()
}

// promoteLocked replays standby journals for sessions the ring now
// assigns to this node into live sessions.
func (n *Node) promoteLocked() {
	if n.standby == nil {
		return
	}
	ids, err := n.standby.list()
	if err != nil {
		return
	}
	for _, id := range ids {
		ring := n.currentRing()
		owner, ok := ring.Owner(id)
		if !ok || owner.Name != n.self.Name {
			continue
		}
		if n.srv.HasSession(id) {
			// Already live here (migrated in while we also held a
			// standby copy from an older topology) — the copy is stale.
			_ = n.standby.drop(id)
			continue
		}
		recs, err := n.standby.take(id)
		if err != nil || len(recs) == 0 {
			continue
		}
		if err := n.srv.AdoptSession(id, recs); err != nil {
			n.metrics.replicationErrors.Add(1)
			continue
		}
		_ = n.standby.drop(id)
		n.metrics.promotions.Add(1)
	}
}

// migrateLocked ships every local session whose ring owner is another
// node.
func (n *Node) migrateLocked() {
	for _, id := range n.srv.SessionIDs() {
		ring := n.currentRing()
		owner, ok := ring.Owner(id)
		if !ok || owner.Name == n.self.Name {
			continue
		}
		n.migrateSession(id, owner, ring)
	}
}

// migrateSession hands one session to its owner: freeze + export, ship
// snapshot fenced by the ring we acted under, commit (or thaw on
// failure). Reports whether the handoff committed.
func (n *Node) migrateSession(id string, owner Member, ring *Ring) bool {
	payload, err := n.srv.ExportSession(id)
	if err != nil {
		// Already gone or already mid-handoff — nothing to do.
		return false
	}
	req := migrateRequest{
		Ring:     ring.Info(),
		Session:  id,
		Snapshot: payload,
	}
	if err := n.postJSON(owner.URL, "/cluster/migrate", req, nil); err != nil {
		n.srv.AbortMigration(id)
		n.metrics.migrationsFailed.Add(1)
		return false
	}
	n.srv.CommitMigration(id)
	if n.repl != nil {
		n.repl.forget(id)
	}
	n.metrics.migrationsOut.Add(1)
	return true
}

// gcStandbyLocked drops standby copies for sessions this node is no
// longer the successor of; the owner re-ships to the new successor with
// a reset cursor.
func (n *Node) gcStandbyLocked() {
	if n.standby == nil {
		return
	}
	ids, err := n.standby.list()
	if err != nil {
		return
	}
	for _, id := range ids {
		ring := n.currentRing()
		if owner, ok := ring.Owner(id); ok && owner.Name == n.self.Name {
			continue // promotion candidate, not garbage
		}
		if succ, ok := ring.Successor(id); ok && succ.Name == n.self.Name {
			continue
		}
		_ = n.standby.drop(id)
	}
}

// Drain removes this node from its own ring, migrates every session
// away, and then gossips the shrunk ring — in that order, so a receiver
// that learns the new topology early simply sees migrations it already
// expects. Returns the number of sessions handed off.
func (n *Node) Drain() int {
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		return 0
	}
	n.draining = true
	next := n.ring.WithoutMember(n.self.Name)
	n.ring = next
	n.mu.Unlock()

	n.migrateMu.Lock()
	count := 0
	for _, id := range n.srv.SessionIDs() {
		ring := n.currentRing()
		owner, ok := ring.Owner(id)
		if !ok || owner.Name == n.self.Name {
			continue
		}
		if n.migrateSession(id, owner, ring) {
			count++
		}
	}
	n.migrateMu.Unlock()
	n.broadcast(n.currentRing())
	return count
}

// Status assembles the node's cluster-plane view.
func (n *Node) Status() StatusJSON {
	n.mu.RLock()
	ring, draining := n.ring, n.draining
	n.mu.RUnlock()
	lvl, score := n.srv.GovernorState()
	n.mu.RLock()
	peerLoads := make(map[string]PeerLoadJSON, len(n.peerLoads))
	for name, pl := range n.peerLoads {
		peerLoads[name] = PeerLoadJSON{Level: pl.level, Score: pl.score}
	}
	n.mu.RUnlock()
	st := StatusJSON{
		Self:     n.self.Name,
		Epoch:    ring.Epoch(),
		Members:  ring.Members(),
		Draining: draining,

		SessionsLocal: len(n.srv.SessionIDs()),

		GovernorLevel: lvl,
		GovernorScore: score,
		PeerLoads:     peerLoads,
		LoadRouted:    n.metrics.loadRouted.Load(),

		MigrationsOut:    n.metrics.migrationsOut.Load(),
		MigrationsIn:     n.metrics.migrationsIn.Load(),
		MigrationsFailed: n.metrics.migrationsFailed.Load(),
		Promotions:       n.metrics.promotions.Load(),
		Redirects:        n.metrics.redirects.Load(),
		Proxied:          n.metrics.proxied.Load(),

		RingAdoptions:     n.metrics.ringAdoptions.Load(),
		PeersDeclaredDead: n.metrics.peersDeclaredDead.Load(),

		RecordsReplicated: n.metrics.recordsReplicated.Load(),
		ReplicationErrors: n.metrics.replicationErrors.Load(),
		ReplicationLag:    n.metrics.peerLagSnapshot(),
	}
	if n.standby != nil {
		if ids, err := n.standby.list(); err == nil {
			st.StandbySessions = ids
		}
	}
	return st
}

// ─── membership: join, refresh, failure detection ─────────────────────

// join introduces this node to an existing cluster through any of the
// configured join URLs.
func (n *Node) join() error {
	var lastErr error
	for _, u := range n.cfg.JoinURLs {
		var info RingInfo
		if err := n.postJSON(u, "/cluster/join", n.self, &info); err != nil {
			lastErr = err
			continue
		}
		n.adoptInfo(info)
		return nil
	}
	return fmt.Errorf("cluster: joining via %v: %w", n.cfg.JoinURLs, lastErr)
}

func (n *Node) refreshLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.RefreshEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.refreshOnce()
		}
	}
}

// refreshOnce probes every peer for its ring, adopting newer views and
// counting consecutive failures toward declaring the peer dead. The
// probe response doubles as load gossip: each peer reports its
// admission-governor state in X-Cesc-Load, cached here so session
// creation can be steered toward cooler nodes.
func (n *Node) refreshOnce() {
	for _, m := range n.currentRing().Members() {
		if m.Name == n.self.Name {
			continue
		}
		var info RingInfo
		hdr, err := n.getJSONHdr(m.URL, "/cluster/ring", &info)
		if err != nil {
			n.mu.Lock()
			n.probeFails[m.Name]++
			fails := n.probeFails[m.Name]
			delete(n.peerLoads, m.Name)
			n.mu.Unlock()
			if fails >= n.cfg.FailAfter {
				n.declareDead(m.Name)
			}
			continue
		}
		n.mu.Lock()
		delete(n.probeFails, m.Name)
		if lvl, score, ok := parseLoad(hdr.Get(HeaderLoad)); ok {
			n.peerLoads[m.Name] = peerLoad{level: lvl, score: score, at: time.Now()}
		}
		n.mu.Unlock()
		n.adoptInfo(info)
	}
}

// parseLoad decodes an X-Cesc-Load header ("<level> <score>").
func parseLoad(v string) (level int, score float64, ok bool) {
	lvlStr, scoreStr, found := strings.Cut(v, " ")
	if !found {
		return 0, 0, false
	}
	lvl, err1 := strconv.Atoi(lvlStr)
	sc, err2 := strconv.ParseFloat(scoreStr, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return lvl, sc, true
}

// coolerPeer picks the least-loaded peer to take a session create. It
// reports false unless this node's own governor is throttling new
// sessions AND some peer gossiped a strictly lower level recently — in
// every other case the create is served (and possibly shed) locally.
func (n *Node) coolerPeer() (Member, bool) {
	lvl, _ := n.srv.GovernorState()
	if lvl < server.GovLevelThrottleSessions {
		return Member{}, false
	}
	ring := n.currentRing()
	n.mu.RLock()
	defer n.mu.RUnlock()
	var best Member
	bestLvl, bestScore, found := lvl, 0.0, false
	for _, m := range ring.Members() {
		if m.Name == n.self.Name {
			continue
		}
		pl, ok := n.peerLoads[m.Name]
		if !ok || time.Since(pl.at) > peerLoadTTL || pl.level >= lvl {
			continue
		}
		if !found || pl.level < bestLvl || (pl.level == bestLvl && pl.score < bestScore) {
			best, bestLvl, bestScore, found = m, pl.level, pl.score, true
		}
	}
	return best, found
}

// declareDead removes an unresponsive peer from the ring; its sessions
// re-home to their successors, where promotion finds the standby
// copies.
func (n *Node) declareDead(name string) {
	n.mu.RLock()
	_, present := n.ring.Lookup(name)
	n.mu.RUnlock()
	if !present || name == n.self.Name {
		return
	}
	n.metrics.peersDeclaredDead.Add(1)
	n.removeMember(name)
}

// broadcast pushes a ring to every other member, best effort.
func (n *Node) broadcast(r *Ring) {
	info := r.Info()
	for _, m := range r.Members() {
		if m.Name == n.self.Name {
			continue
		}
		m := m
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			_ = n.postJSON(m.URL, "/cluster/adopt", info, nil)
		}()
	}
}

// ─── HTTP surface ─────────────────────────────────────────────────────

type migrateRequest struct {
	Ring     RingInfo        `json:"ring"`
	Session  string          `json:"session"`
	Snapshot json.RawMessage `json:"snapshot"`
}

func (n *Node) routes() {
	n.mux.HandleFunc("GET /cluster/ring", func(w http.ResponseWriter, _ *http.Request) {
		lvl, score := n.srv.GovernorState()
		w.Header().Set(HeaderLoad, fmt.Sprintf("%d %.3f", lvl, score))
		writeJSON(w, http.StatusOK, n.currentRing().Info())
	})
	n.mux.HandleFunc("GET /cluster/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, n.Status())
	})
	n.mux.HandleFunc("POST /cluster/join", n.handleJoin)
	n.mux.HandleFunc("POST /cluster/leave", n.handleLeave)
	n.mux.HandleFunc("POST /cluster/adopt", n.handleAdopt)
	n.mux.HandleFunc("POST /cluster/migrate", n.handleMigrate)
	n.mux.HandleFunc("POST /cluster/replicate", n.handleReplicate)
	n.mux.HandleFunc("POST /cluster/drain", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"migrated": n.Drain()})
	})
	n.mux.HandleFunc("POST /cluster/flush", func(w http.ResponseWriter, _ *http.Request) {
		var lag int64
		if n.repl != nil {
			lag = n.repl.cycle()
		}
		writeJSON(w, http.StatusOK, map[string]int64{"lag_bytes": lag})
	})
	n.mux.HandleFunc("GET /cluster/trace", n.handleClusterTrace)
	n.mux.HandleFunc("GET /cluster/metrics", n.handleClusterMetrics)
	n.mux.HandleFunc("GET /readyz", n.handleReadyz)
	n.mux.HandleFunc("/", n.route)
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil || m.Name == "" || m.URL == "" {
		writeError(w, http.StatusBadRequest, "join needs {name, url}")
		return
	}
	ring := n.addMember(Member{Name: m.Name, URL: strings.TrimRight(m.URL, "/")})
	writeJSON(w, http.StatusOK, ring.Info())
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Name == "" {
		writeError(w, http.StatusBadRequest, "leave needs {name}")
		return
	}
	ring := n.removeMember(body.Name)
	writeJSON(w, http.StatusOK, ring.Info())
}

func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var info RingInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		writeError(w, http.StatusBadRequest, "adopt needs a ring")
		return
	}
	n.adoptInfo(info)
	writeJSON(w, http.StatusOK, n.currentRing().Info())
}

// handleMigrate is the gaining side of a handoff: adopt the sender's
// ring if newer, then fence — the handoff only lands if this node owns
// the session under a ring at least as new as the sender's.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" {
		writeError(w, http.StatusBadRequest, "migrate needs {ring, session, snapshot}")
		return
	}
	n.adoptInfo(req.Ring)
	ring := n.currentRing()
	if req.Ring.Epoch < ring.Epoch() {
		writeError(w, http.StatusConflict, "stale ring epoch %d (current %d)", req.Ring.Epoch, ring.Epoch())
		return
	}
	if owner, ok := ring.Owner(req.Session); !ok || owner.Name != n.self.Name {
		writeError(w, http.StatusConflict, "node %s does not own session %s under epoch %d", n.self.Name, req.Session, ring.Epoch())
		return
	}
	rec := wal.Record{Kind: server.RecordSnapshot, Payload: req.Snapshot}
	if err := n.srv.AdoptSession(req.Session, []wal.Record{rec}); err != nil {
		writeError(w, http.StatusInternalServerError, "adopting session %s: %v", req.Session, err)
		return
	}
	n.metrics.migrationsIn.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"adopted": req.Session})
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if n.standby == nil {
		writeError(w, http.StatusNotImplemented, "node %s has no standby store", n.self.Name)
		return
	}
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" {
		writeError(w, http.StatusBadRequest, "replicate needs {session, records}")
		return
	}
	if err := n.standby.append(req.Session, req.Reset, req.Records); err != nil {
		writeError(w, http.StatusInternalServerError, "standby append for %s: %v", req.Session, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"appended": len(req.Records)})
}

// route is the catch-all: session traffic is ring-routed, /metrics is
// augmented with the cluster families, everything else falls through to
// the wrapped server.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if rest, ok := strings.CutPrefix(path, "/sessions/"); ok {
		if id, _, _ := strings.Cut(rest, "/"); id != "" {
			n.routeSession(w, r, id)
			return
		}
	}
	if path == "/sessions" && r.Method == http.MethodPost {
		if n.isDraining() {
			n.proxyCreate(w, r)
			return
		}
		// Overload routing: when the local governor is throttling new
		// sessions and gossip shows a cooler peer, place the session
		// there instead of answering 429. A request a peer already
		// forwarded is served locally — two hot nodes must not ping-pong
		// a create between them.
		if r.Header.Get(HeaderForwarded) == "" {
			if m, ok := n.coolerPeer(); ok {
				n.metrics.loadRouted.Add(1)
				n.proxy(w, r, m)
				return
			}
		}
	}
	if path == "/metrics" && !strings.Contains(r.Header.Get("Accept"), "application/json") {
		n.serveMetrics(w, r)
		return
	}
	n.srv.Handler().ServeHTTP(w, r)
}

// routeSession serves locally held sessions first — the holder answers
// regardless of what any ring says, which keeps requests correct while
// a topology change is mid-flight — and routes the rest by ring.
func (n *Node) routeSession(w http.ResponseWriter, r *http.Request, id string) {
	if n.srv.HasSession(id) {
		n.srv.Handler().ServeHTTP(w, r)
		return
	}
	ring := n.currentRing()
	owner, ok := ring.Owner(id)
	if !ok || owner.Name == n.self.Name {
		if ring.Len() <= 1 {
			// Standalone: let the server produce its natural 404.
			n.srv.Handler().ServeHTTP(w, r)
			return
		}
		// This node owns the ID but doesn't hold the session: a handoff
		// or promotion is in flight (or the ID never existed). Kick the
		// rebalance scan in case a standby copy is waiting, and have
		// the client retry.
		if n.standby != nil && n.standby.has(id) {
			n.onRingChange()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "session %s is not at its owner yet (handoff in flight); retry", id)
		return
	}
	n.forward(w, r, owner, ring)
}

// forward sends a request toward the session's owner: 307 for
// ring-aware clients, transparent proxy otherwise.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner Member, ring *Ring) {
	if r.Header.Get(HeaderRoute) == "redirect" {
		loc := owner.URL + r.URL.RequestURI()
		w.Header().Set("Location", loc)
		w.Header().Set(HeaderOwner, owner.Name)
		w.Header().Set(HeaderRingEpoch, strconv.FormatUint(ring.Epoch(), 10))
		n.metrics.redirects.Add(1)
		if trace := r.Header.Get("X-Cesc-Trace"); trace != "" {
			// The client re-sends to the owner itself, so there is no
			// downstream request to decorate — the span alone records
			// that this hop happened and where it pointed.
			h := obs.Clock.Now()
			n.srv.Tracer().Record(-1, obs.Span{
				Trace: trace, Stage: obs.StageRedirect, Kind: "redirect",
				Parent: r.Header.Get("X-Cesc-Parent"), HLC: h,
				Start: time.Now(), Note: "-> " + owner.Name,
			})
		}
		writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
			"error":    "session owned by " + owner.Name,
			"location": loc,
		})
		return
	}
	if r.Header.Get(HeaderForwarded) != "" {
		// A peer proxied to us believing we own the session; our ring
		// disagrees. Refusing beats proxy ping-pong — the views
		// converge within a refresh period.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "ring views disagree about the owner; retry")
		return
	}
	n.proxy(w, r, owner)
}

// proxyCreate forwards a session create while draining to the first
// surviving member.
func (n *Node) proxyCreate(w http.ResponseWriter, r *http.Request) {
	for _, m := range n.currentRing().Members() {
		if m.Name != n.self.Name {
			n.proxy(w, r, m)
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "node is draining and no peer remains")
}

// proxy relays the request to a peer and streams the answer back. A
// traced request gets a proxy span on this node and an X-Cesc-Parent
// token on the outbound hop, so the owner's spans order causally after
// (and point back at) this hop in a merged timeline.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, m Member) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, m.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building proxy request: %v", err)
		return
	}
	out.Header = r.Header.Clone()
	out.Header.Set(HeaderForwarded, n.self.Name)
	out.ContentLength = r.ContentLength
	trace := r.Header.Get("X-Cesc-Trace")
	var hlc uint64
	if trace != "" {
		var token string
		hlc, token = n.traceParentToken()
		out.Header.Set("X-Cesc-Parent", token)
	}
	start := time.Now()
	resp, err := n.hc.Do(out)
	if trace != "" {
		sp := obs.Span{
			Trace: trace, Stage: obs.StageProxy, Kind: "proxy",
			Parent: r.Header.Get("X-Cesc-Parent"), HLC: hlc,
			Start: start, Dur: time.Since(start), Note: "-> " + m.Name,
		}
		if err != nil {
			sp.Note = "-> " + m.Name + ": " + err.Error()
		}
		n.srv.Tracer().Record(-1, sp)
	}
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusBadGateway, "proxy to owner %s failed: %v", m.Name, err)
		return
	}
	defer resp.Body.Close()
	n.metrics.proxied.Add(1)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// serveMetrics appends the cluster families to the wrapped server's
// Prometheus exposition.
func (n *Node) serveMetrics(w http.ResponseWriter, r *http.Request) {
	rec := &respBuffer{hdr: make(http.Header)}
	n.srv.Handler().ServeHTTP(rec, r)
	if rec.code != 0 && rec.code != http.StatusOK {
		for k, vs := range rec.hdr {
			w.Header()[k] = vs
		}
		w.WriteHeader(rec.code)
		_, _ = w.Write(rec.buf.Bytes())
		return
	}
	for k, vs := range rec.hdr {
		w.Header()[k] = vs
	}
	body := append(rec.buf.Bytes(), n.promText()...)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// respBuffer captures a handler's response for augmentation.
type respBuffer struct {
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func (b *respBuffer) Header() http.Header         { return b.hdr }
func (b *respBuffer) WriteHeader(c int)           { b.code = c }
func (b *respBuffer) Write(p []byte) (int, error) { return b.buf.Write(p) }

// ─── peer HTTP helpers ────────────────────────────────────────────────

func (n *Node) postJSON(baseURL, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimRight(baseURL, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return n.doJSON(req, out)
}

// getJSONHdr performs a GET and returns the response headers along with
// the decoded body — ring probes read the X-Cesc-Load gossip from them.
func (n *Node) getJSONHdr(baseURL, path string, out any) (http.Header, error) {
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(baseURL, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.Header, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.Header, fmt.Errorf("cluster: GET %s: %s: %s", req.URL.Path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out != nil {
		return resp.Header, json.Unmarshal(raw, out)
	}
	return resp.Header, nil
}

func (n *Node) doJSON(req *http.Request, out any) error {
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
