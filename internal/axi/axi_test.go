package axi

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/synth"
)

func TestBurstReadChartValid(t *testing.T) {
	c := BurstReadChart()
	if err := c.Validate(); err != nil {
		t.Fatalf("chart invalid: %v", err)
	}
	if len(c.Lines) != 1+(RespLatency-1)+BurstLen {
		t.Fatalf("unexpected line count %d", len(c.Lines))
	}
}

// TestCleanTraceAccepted runs a fault-free model against the burst-read
// monitor: one accept per issued burst, zero violations.
func TestCleanTraceAccepted(t *testing.T) {
	m := NewModel(Config{Gap: 2, Seed: 1})
	tr := m.GenerateTrace(400)
	mon, err := synth.Synthesize(BurstReadChart(), nil)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	accepts := 0
	for _, s := range tr {
		res := eng.Step(s)
		if res.Outcome == monitor.Accepted {
			accepts++
		}
		if res.Outcome == monitor.Violated {
			t.Fatalf("violation on clean trace")
		}
	}
	if accepts == 0 || m.Issued() == 0 {
		t.Fatalf("no bursts observed (issued %d, accepts %d)", m.Issued(), accepts)
	}
	// Every burst whose window completed inside the trace is accepted.
	if accepts < m.Issued()-1 {
		t.Fatalf("issued %d bursts but only %d accepts", m.Issued(), accepts)
	}
}

// TestFaultsBreakBurst checks each fault kind produces traces the oracle
// no longer fully matches: fewer complete burst windows than issued.
func TestFaultsBreakBurst(t *testing.T) {
	kinds := []FaultKind{FaultDropLast, FaultShortBurst, FaultDropBeat, FaultMissingData, FaultDropReady}
	c := BurstReadChart()
	for _, k := range kinds {
		m := NewModel(Config{Gap: 2, FaultRate: 1, FaultKinds: []FaultKind{k}, Seed: 7})
		tr := m.GenerateTrace(300)
		o := semantics.NewOracle(tr)
		ends := o.EndTicks(c)
		if m.Issued() == 0 {
			t.Fatalf("%v: no bursts issued", k)
		}
		if len(ends) >= m.Issued() {
			t.Fatalf("%v: fault not observable (issued %d, matched %d)", k, m.Issued(), len(ends))
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := NewModel(Config{Gap: 1, FaultRate: 0.3, Seed: 42}).GenerateTrace(200)
	b := NewModel(Config{Gap: 1, FaultRate: 0.3, Seed: 42}).GenerateTrace(200)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tick %d differs across identically seeded models", i)
		}
	}
}
