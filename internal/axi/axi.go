// Package axi models an AXI4-style read burst channel pair — the first
// protocol model beyond the paper's OCP/AHB case studies. A master
// issues a fixed-length read burst on the AR (address read) channel with
// a same-cycle ARREADY handshake; after a fixed slave latency the R
// (read data) channel returns one beat per cycle, the final beat tagged
// RLAST. As with packages ocp and amba, the model is cycle-accurate at
// the observed interface: each tick emits the events a bus monitor would
// sample, and configurable fault injection perturbs the sequences for
// the bug-detection and spec-mining experiments.
package axi

import (
	"math/rand"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/trace"
)

// AXI4 read-channel event names (1-bit interface view).
const (
	EvARValid = "ARVALID" // master presents a read address
	EvARReady = "ARREADY" // slave accepts the address this cycle
	EvARLen4  = "ARLEN4"  // burst-length annotation: four beats
	EvRValid  = "RVALID"  // a read data beat is live
	EvRData   = "RDATA"   // the beat carries data
	EvRLast   = "RLAST"   // final beat of the burst
)

// RespLatency is the number of idle cycles between the accepted address
// handshake and the first data beat.
const RespLatency = 2

// BurstLen is the modelled burst length (ARLEN4).
const BurstLen = 4

// BurstReadChart builds the AXI4 burst-read SCESC: the address handshake
// on the first grid line, a latency line with no required events, then
// four data beats with RLAST closing the burst. The causality arrow
// requires the address handshake to be live on the scoreboard when the
// last beat is consumed.
func BurstReadChart() *chart.SCESC {
	lines := []chart.GridLine{
		{Events: []chart.EventSpec{
			{Event: EvARValid, Label: "ar", From: "Master", To: "Slave"},
			{Event: EvARReady, From: "Slave", To: "Master"},
			{Event: EvARLen4, From: "Master", To: "Slave"},
		}},
	}
	for i := 0; i < RespLatency-1; i++ {
		lines = append(lines, chart.GridLine{})
	}
	for beat := 1; beat <= BurstLen; beat++ {
		specs := []chart.EventSpec{
			{Event: EvRValid, From: "Slave", To: "Master"},
			{Event: EvRData, From: "Slave", To: "Master"},
		}
		if beat == BurstLen {
			specs = append(specs, chart.EventSpec{Event: EvRLast, Label: "last", From: "Slave", To: "Master"})
		}
		lines = append(lines, chart.GridLine{Events: specs})
	}
	return &chart.SCESC{
		ChartName: "axi4_burst_read",
		Clock:     "aclk",
		Instances: []string{"Master", "Slave"},
		Lines:     lines,
		Arrows:    []chart.Arrow{{From: "ar", To: "last"}},
	}
}

// FaultKind enumerates injectable deviations from the burst sequence.
type FaultKind int

const (
	// FaultNone performs the burst correctly.
	FaultNone FaultKind = iota
	// FaultDropLast omits the closing RLAST tag (the beat still occurs).
	FaultDropLast
	// FaultShortBurst returns only three of the four beats.
	FaultShortBurst
	// FaultDropBeat skips a middle beat entirely.
	FaultDropBeat
	// FaultMissingData raises RVALID on a beat without RDATA.
	FaultMissingData
	// FaultDropReady omits the ARREADY handshake on the address cycle.
	FaultDropReady
)

// String names the fault.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropLast:
		return "drop-last"
	case FaultShortBurst:
		return "short-burst"
	case FaultDropBeat:
		return "drop-beat"
	case FaultMissingData:
		return "missing-data"
	case FaultDropReady:
		return "drop-ready"
	default:
		return "fault?"
	}
}

// Config parameterizes the master/slave pair.
type Config struct {
	// Gap is the number of idle cycles between bursts.
	Gap int
	// FaultRate is the probability that a burst is injected with a fault
	// drawn from FaultKinds.
	FaultRate float64
	// FaultKinds lists the faults to draw from (defaults to all kinds
	// when empty).
	FaultKinds []FaultKind
	// Seed feeds the model's private PRNG.
	Seed int64
	// Source, when non-nil, supplies the model's randomness instead of a
	// fresh PRNG seeded with Seed.
	Source rand.Source
}

// Model is an executable AXI read channel pair producing the per-cycle
// event sets observed at the interface.
type Model struct {
	cfg Config
	rng *rand.Rand

	future  []event.State
	idle    int
	issued  int
	faulted int
}

// NewModel returns a model for cfg.
func NewModel(cfg Config) *Model {
	if cfg.Gap < 0 {
		cfg.Gap = 0
	}
	src := cfg.Source
	if src == nil {
		src = rand.NewSource(cfg.Seed)
	}
	m := &Model{cfg: cfg, rng: rand.New(src)}
	m.idle = 1 // settle one cycle before the first burst
	return m
}

// Issued returns the number of bursts started.
func (m *Model) Issued() int { return m.issued }

// Faulted returns the number of bursts injected with a fault.
func (m *Model) Faulted() int { return m.faulted }

func (m *Model) at(i int) event.State {
	for len(m.future) <= i {
		m.future = append(m.future, event.NewState())
	}
	return m.future[i]
}

func (m *Model) schedule(offset int, events ...string) {
	s := m.at(offset)
	for _, e := range events {
		s.Events[e] = true
	}
}

func (m *Model) pickFault() FaultKind {
	if m.cfg.FaultRate <= 0 || m.rng.Float64() >= m.cfg.FaultRate {
		return FaultNone
	}
	kinds := m.cfg.FaultKinds
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultDropLast, FaultShortBurst, FaultDropBeat, FaultMissingData, FaultDropReady}
	}
	return kinds[m.rng.Intn(len(kinds))]
}

// startBurst schedules the cycles of one burst starting at offset 0 and
// returns its total length in cycles.
func (m *Model) startBurst() int {
	m.issued++
	fault := m.pickFault()
	if fault != FaultNone {
		m.faulted++
	}
	ar := []string{EvARValid, EvARReady, EvARLen4}
	if fault == FaultDropReady {
		ar = []string{EvARValid, EvARLen4}
	}
	m.schedule(0, ar...)
	beats := BurstLen
	if fault == FaultShortBurst {
		beats = BurstLen - 1
	}
	skip := -1
	if fault == FaultDropBeat {
		skip = 1 + m.rng.Intn(BurstLen-2) // a middle beat
	}
	cycle := RespLatency
	for beat := 0; beat < beats; beat++ {
		if beat == skip {
			cycle++
			continue
		}
		evs := []string{EvRValid, EvRData}
		if fault == FaultMissingData && beat == beats-1 {
			evs = []string{EvRValid}
		}
		if beat == beats-1 && fault != FaultDropLast {
			evs = append(evs, EvRLast)
		}
		m.schedule(cycle, evs...)
		cycle++
	}
	return cycle
}

// Step produces the event state for the next cycle.
func (m *Model) Step() event.State {
	if len(m.future) == 0 && m.idle == 0 {
		busy := m.startBurst()
		m.idle = busy + m.cfg.Gap
	}
	var out event.State
	if len(m.future) > 0 {
		out = m.future[0]
		m.future = m.future[1:]
	} else {
		out = event.NewState()
	}
	if m.idle > 0 {
		m.idle--
	}
	return out
}

// GenerateTrace runs the model for n cycles.
func (m *Model) GenerateTrace(n int) trace.Trace {
	out := make(trace.Trace, n)
	for i := range out {
		out[i] = m.Step()
	}
	return out
}
