package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MergeTimeline folds per-node span snapshots into one causally-ordered
// timeline. Ordering is the hybrid-logical-clock reading (which Observe
// calls made consistent across hops), with node name and then per-node
// Seq breaking ties — never wall clocks, which the cluster does not
// trust to agree. Spans recorded before the HLC existed (HLC == 0, e.g.
// from a pre-PR-10 node) sort first in their node's Seq order, so mixed
// fleets degrade to per-node ordering instead of lying.
func MergeTimeline(perNode ...[]Span) []Span {
	var out []Span
	for _, spans := range perNode {
		out = append(out, spans...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.HLC != b.HLC {
			return a.HLC < b.HLC
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// RenderTimeline renders a merged timeline as aligned human-readable
// text, one line per span: relative time since the first span, node,
// stage, kind, session, tick count, duration, and note. The format is
// for eyes, not machines — the JSON rendering is the stable one.
func RenderTimeline(spans []Span) string {
	var b strings.Builder
	if len(spans) == 0 {
		b.WriteString("(no spans)\n")
		return b.String()
	}
	base := HLCWall(spans[0].HLC)
	for i := range spans {
		sp := &spans[i]
		at := time.Duration(0)
		if sp.HLC != 0 {
			at = HLCWall(sp.HLC).Sub(base)
		}
		node := sp.Node
		if node == "" {
			node = "-"
		}
		fmt.Fprintf(&b, "%+10s  %-8s %-10s", at.Round(time.Millisecond), node, sp.Stage)
		if sp.Kind != "" {
			fmt.Fprintf(&b, " [%s]", sp.Kind)
		}
		if sp.Session != "" {
			fmt.Fprintf(&b, " session=%s", sp.Session)
		}
		if sp.Ticks > 0 {
			fmt.Fprintf(&b, " ticks=%d", sp.Ticks)
		}
		fmt.Fprintf(&b, " dur=%s", sp.Dur.Round(time.Microsecond))
		if sp.Parent != "" {
			fmt.Fprintf(&b, " parent=%s", sp.Parent)
		}
		if sp.Note != "" {
			fmt.Fprintf(&b, " (%s)", sp.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
