package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// Watchdog flags slow tick processing: when a batch's per-tick stepping
// time exceeds the threshold it logs one structured warning carrying the
// offending trace id, so an operator can jump from "the daemon is slow"
// straight to the session, shard, and trace that made it so. Warnings
// are rate-limited (at most one per second) because a saturated daemon
// would otherwise turn every batch into a log line.
type Watchdog struct {
	threshold time.Duration
	logger    *slog.Logger
	lastLog   atomic.Int64 // unix nanos of the last warning
	slow      atomic.Uint64
}

// NewWatchdog builds a watchdog warning at perTick threshold; a zero or
// negative threshold disables it (Observe becomes a cheap branch).
// logger nil selects slog.Default.
func NewWatchdog(threshold time.Duration, logger *slog.Logger) *Watchdog {
	if logger == nil {
		logger = slog.Default()
	}
	return &Watchdog{threshold: threshold, logger: logger}
}

// Enabled reports whether the watchdog is armed.
func (w *Watchdog) Enabled() bool { return w != nil && w.threshold > 0 }

// Slow reports the number of slow batches observed (counted even while
// log output is rate-limited).
func (w *Watchdog) Slow() uint64 {
	if w == nil {
		return 0
	}
	return w.slow.Load()
}

// Observe checks one processed batch: dur is the stepping time for ticks
// valuation ticks. Returns true when the batch was flagged slow.
func (w *Watchdog) Observe(dur time.Duration, ticks int, trace, session string, shard int) bool {
	if w == nil || w.threshold <= 0 || ticks <= 0 {
		return false
	}
	perTick := dur / time.Duration(ticks)
	if perTick <= w.threshold {
		return false
	}
	w.slow.Add(1)
	now := time.Now().UnixNano()
	last := w.lastLog.Load()
	if now-last >= int64(time.Second) && w.lastLog.CompareAndSwap(last, now) {
		w.logger.Warn("slow tick batch",
			slog.String("trace", trace),
			slog.String("session", session),
			slog.Int("shard", shard),
			slog.Int("ticks", ticks),
			slog.Duration("batch", dur),
			slog.Duration("per_tick", perTick),
			slog.Duration("threshold", w.threshold),
		)
	}
	return true
}
