package obs

import (
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// HLC is a hybrid logical clock: 48 bits of physical milliseconds above a
// 16-bit logical counter, packed into one uint64 so a reading is a single
// atomic CAS loop. Timestamps are monotonic per process and merge across
// processes by Observe, which advances the local clock past any remote
// reading — so spans stamped on different nodes order causally whenever a
// message (proxy hop, replication frame, parent-span token) carried the
// sender's clock, even when the nodes' wall clocks disagree.
type HLC struct {
	state atomic.Uint64
}

// hlcLogicalBits is the width of the logical counter below the physical
// millisecond component.
const hlcLogicalBits = 16

// Now returns the next timestamp: max(physical-now, last)+ε.
func (c *HLC) Now() uint64 {
	phys := uint64(time.Now().UnixMilli()) << hlcLogicalBits
	for {
		old := c.state.Load()
		next := phys
		if next <= old {
			next = old + 1
		}
		if c.state.CompareAndSwap(old, next) {
			return next
		}
	}
}

// Observe merges a remote timestamp: the local clock advances strictly
// past it, so every subsequent local Now() orders after the remote event.
// A zero remote is a no-op.
func (c *HLC) Observe(remote uint64) {
	if remote == 0 {
		return
	}
	for {
		old := c.state.Load()
		if old >= remote {
			return
		}
		if c.state.CompareAndSwap(old, remote) {
			return
		}
	}
}

// Clock is the process-wide hybrid clock every tracer stamps spans from.
// One clock per process (not per tracer) is deliberate: a node's cluster
// plane and its wrapped server must read the same clock for their spans
// to interleave causally.
var Clock HLC

// HLCWall recovers the physical component of a hybrid timestamp as a
// wall-clock time (millisecond precision) — for human rendering only;
// ordering must always use the full value.
func HLCWall(ts uint64) time.Time {
	return time.UnixMilli(int64(ts >> hlcLogicalBits))
}

// ParentToken renders a parent-span reference as carried in the
// X-Cesc-Parent header: "node@hlc". The token is opaque to clients; nodes
// mint one when recording the span a downstream hop should attach to.
func ParentToken(node string, hlc uint64) string {
	return node + "@" + strconv.FormatUint(hlc, 10)
}

// ParseParentToken splits a parent-span token into its node name and
// hybrid timestamp. Malformed tokens yield ("", 0): propagation is best
// effort and must never fail a request.
func ParseParentToken(tok string) (node string, hlc uint64) {
	i := strings.LastIndexByte(tok, '@')
	if i < 0 {
		return "", 0
	}
	ts, err := strconv.ParseUint(tok[i+1:], 10, 64)
	if err != nil {
		return "", 0
	}
	return tok[:i], ts
}
