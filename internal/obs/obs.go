// Package obs is the daemon's zero-dependency observability plane:
// tick-trace spans captured in lock-free ring buffers, a Prometheus
// text-format exposition writer, and a slow-tick watchdog. The package
// deliberately imports nothing beyond the standard library — the paper's
// point is that synthesized monitors help an engineer *debug* a design,
// and this layer extends the same courtesy to the daemon itself: an
// operator can see which session, stage, and trace id a slow or
// violating tick belongs to, not just that the totals moved.
//
// Everything here is safe for concurrent use, and every disabled path is
// allocation-free: a Tracer that is off returns before touching its
// rings, so the packed hot path (monitor.Engine.StepPacked under a shard
// worker) pays one predictable branch.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage names the pipeline position a span measures. The set is small
// and fixed so metric label cardinality stays bounded.
const (
	StageIngest    = "ingest"     // HTTP handler: request accepted
	StageDecode    = "decode"     // wire ticks -> event.State (+ pack)
	StageEnqueue   = "enqueue"    // shard queue admission
	StageQueueWait = "queue_wait" // enqueue -> worker dequeue
	StageStep      = "step"       // monitor stepping (whole batch)
	StageVerdict   = "verdict"    // verdict/diagnostic readout
	StageWALAppend = "wal_append" // journal append for one batch
	StageWALReplay = "wal_replay" // recovery replay of one session
	StageProxy     = "proxy"      // cluster layer: request relayed to the ring owner
	StageRedirect  = "redirect"   // cluster layer: 307 answered with the owner
)

// Span is one timed pipeline stage of one tick batch. Spans are written
// by shard workers and HTTP handlers and read by the /debug/trace
// endpoint; they are correlated across stages (and across the network)
// by Trace, the client-propagated X-Cesc-Trace id.
type Span struct {
	// Seq is a tracer-global sequence number: snapshot order is Seq
	// order, which is write order.
	Seq uint64 `json:"seq"`
	// Trace is the correlation id (client-propagated or server-assigned).
	Trace string `json:"trace,omitempty"`
	// Session is the session the batch belongs to ("" for daemon-wide
	// work such as recovery of an unknown session).
	Session string `json:"session,omitempty"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Shard is the shard worker involved, -1 when not applicable.
	Shard int `json:"shard"`
	// Start is the wall-clock stage start.
	Start time.Time `json:"start"`
	// Dur is the stage duration.
	Dur time.Duration `json:"dur_ns"`
	// Ticks is the number of valuation ticks the stage covered.
	Ticks int `json:"ticks,omitempty"`
	// Note carries stage-specific detail (error text, record counts).
	Note string `json:"note,omitempty"`

	// Cross-node fields (PR 10). Node is the cluster member that recorded
	// the span (tracer-stamped, "" standalone); Parent is the parent-span
	// token ("node@hlc") the request carried in via X-Cesc-Parent, tying
	// this span under the hop that forwarded it; Kind classifies the span
	// beyond its pipeline stage ("proxy", "redirect", "promotion",
	// "recovery", "migration"); HLC is the hybrid-logical-clock reading
	// that makes the cluster-merged timeline causal rather than
	// wall-clock-ordered.
	Node   string `json:"node,omitempty"`
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind,omitempty"`
	HLC    uint64 `json:"hlc,omitempty"`
}

// Token renders this span's parent token for downstream hops.
func (sp *Span) Token() string { return ParentToken(sp.Node, sp.HLC) }

// Tracer captures spans into per-shard lock-free rings. The zero value
// is a disabled tracer; build a live one with NewTracer. All methods are
// safe for concurrent use from any number of goroutines.
type Tracer struct {
	rings   []*Ring
	seq     atomic.Uint64
	total   atomic.Uint64
	enabled atomic.Bool
	// node is stamped on every recorded span (set once before traffic via
	// SetNode; "" on standalone daemons keeps the field out of the JSON).
	node string
}

// SetNode names the cluster member this tracer records for. It must be
// called before any span is recorded (the server does so during
// construction); the field is read without synchronization afterwards.
func (t *Tracer) SetNode(name string) {
	if t != nil {
		t.node = name
	}
}

// Node returns the name stamped on recorded spans.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// NewTracer returns a tracer with one ring of depth slots per shard
// (plus one extra ring for work not pinned to a shard). depth <= 0
// disables tracing entirely: Record becomes a no-op branch.
func NewTracer(shards, depth int) *Tracer {
	t := &Tracer{}
	if depth <= 0 {
		return t
	}
	if shards < 1 {
		shards = 1
	}
	t.rings = make([]*Ring, shards+1)
	for i := range t.rings {
		t.rings[i] = NewRing(depth)
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether spans are being captured.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Spans reports the number of spans recorded since start (including
// those already overwritten in their rings).
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Record captures one span into the ring of shard (a negative shard
// selects the unpinned ring). When the tracer is disabled the call
// returns immediately and performs no allocation — the hot path's
// guarantee.
func (t *Tracer) Record(shard int, sp Span) {
	if t == nil || !t.enabled.Load() {
		return
	}
	sp.Seq = t.seq.Add(1)
	sp.Shard = shard
	if sp.Node == "" {
		sp.Node = t.node
	}
	if sp.HLC == 0 {
		sp.HLC = Clock.Now()
	}
	t.total.Add(1)
	r := t.rings[len(t.rings)-1]
	if shard >= 0 && shard < len(t.rings)-1 {
		r = t.rings[shard]
	}
	c := new(Span)
	*c = sp
	r.Put(c)
}

// RecordBatch records a batch's worth of spans with one sequence claim,
// one counter add, and one slab allocation for the whole batch — the
// amortized write path for batch-stepped shards, where per-span Record
// calls would tax the hot loop k times per batch. Span order within the
// batch is preserved in Seq order.
func (t *Tracer) RecordBatch(shard int, spans []Span) {
	if t == nil || len(spans) == 0 || !t.enabled.Load() {
		return
	}
	base := t.seq.Add(uint64(len(spans))) - uint64(len(spans))
	t.total.Add(uint64(len(spans)))
	r := t.rings[len(t.rings)-1]
	if shard >= 0 && shard < len(t.rings)-1 {
		r = t.rings[shard]
	}
	slab := make([]Span, len(spans))
	copy(slab, spans)
	for i := range slab {
		slab[i].Seq = base + uint64(i) + 1
		slab[i].Shard = shard
		if slab[i].Node == "" {
			slab[i].Node = t.node
		}
		if slab[i].HLC == 0 {
			slab[i].HLC = Clock.Now()
		}
		r.Put(&slab[i])
	}
}

// Snapshot collects the retained spans of every ring, filtered by keep
// (nil keeps all), ordered by Seq (write order), keeping only the newest
// n when n > 0.
func (t *Tracer) Snapshot(keep func(*Span) bool, n int) []Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	var out []Span
	for _, r := range t.rings {
		for _, sp := range r.Snapshot() {
			if keep == nil || keep(sp) {
				out = append(out, *sp)
			}
		}
	}
	sortSpans(out)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// sortSpans orders by Seq ascending (insertion sort is fine: snapshots
// are bounded by ring depth and nearly sorted per ring).
func sortSpans(s []Span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Seq < s[j-1].Seq; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
