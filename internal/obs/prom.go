package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4) without importing a client library. Families must be declared
// before their samples; the writer keeps declaration order and rejects
// duplicate declarations, so the output is deterministic and
// scrape-valid by construction.
type PromWriter struct {
	b        strings.Builder
	declared map[string]string // family name -> type
}

// NewPromWriter returns an empty exposition.
func NewPromWriter() *PromWriter {
	return &PromWriter{declared: make(map[string]string)}
}

// L is one label pair; samples take an ordered list so output is stable.
type L struct{ Name, Value string }

// Family declares a metric family: typ is "counter", "gauge", or
// "histogram". Declaring the same name twice is a no-op so helpers can
// declare defensively.
func (w *PromWriter) Family(name, typ, help string) {
	if _, ok := w.declared[name]; ok {
		return
	}
	w.declared[name] = typ
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample of a declared family.
func (w *PromWriter) Sample(name string, labels []L, value float64) {
	w.b.WriteString(name)
	writeLabels(&w.b, labels)
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(value))
	w.b.WriteByte('\n')
}

// Histogram emits a full histogram family sample set: cumulative
// `_bucket` series with `le` bounds (in seconds or any unit the caller
// chose), the mandatory `+Inf` bucket, `_sum`, and `_count`. counts are
// per-bucket (non-cumulative) tallies aligned with bounds, with one
// extra overflow bucket at the end.
func (w *PromWriter) Histogram(name string, labels []L, bounds []float64, counts []uint64, sum float64) {
	var cum uint64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		w.Sample(name+"_bucket", append(append([]L(nil), labels...), L{"le", formatValue(b)}), float64(cum))
	}
	for i := len(bounds); i < len(counts); i++ {
		cum += counts[i]
	}
	w.Sample(name+"_bucket", append(append([]L(nil), labels...), L{"le", "+Inf"}), float64(cum))
	w.Sample(name+"_sum", labels, sum)
	w.Sample(name+"_count", labels, float64(cum))
}

// AppendExposition re-emits an existing text exposition through this
// writer with extra labels prepended to every sample — the federation
// primitive behind GET /cluster/metrics, where each ring member's
// /metrics body is folded in under a node label. Family declarations are
// routed through Family, so identical families from multiple nodes
// declare once and the merged document stays scrape-valid; per-series
// histogram bucket cumulativity holds because the extra labels keep each
// node's series distinct. Returns the number of samples appended.
func (w *PromWriter) AppendExposition(text string, extra []L) (int, error) {
	help := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				return samples, fmt.Errorf("line %d: malformed HELP %q", ln+1, line)
			}
			help[fields[2]] = fields[3]
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				return samples, fmt.Errorf("line %d: malformed TYPE %q", ln+1, line)
			}
			w.Family(fields[2], fields[3], help[fields[2]])
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		name, labels, val, err := parsePromSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %w", ln+1, err)
		}
		merged := make([]L, 0, len(extra)+len(labels))
		merged = append(merged, extra...)
		merged = append(merged, labels...)
		w.Sample(name, merged, val)
		samples++
	}
	return samples, nil
}

// String returns the exposition body.
func (w *PromWriter) String() string { return w.b.String() }

// Bytes returns the exposition body.
func (w *PromWriter) Bytes() []byte { return []byte(w.b.String()) }

func writeLabels(b *strings.Builder, labels []L) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel applies the exposition-format label escaping: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidatePromText is a structural checker for the exposition format
// used by tests (and kept here so the format rules live next to the
// writer): every sample line must parse as name{labels} value, every
// sample's family must have HELP/TYPE headers above it, and histogram
// bucket counts must be cumulative. It returns the parsed sample count.
func ValidatePromText(text string) (int, error) {
	declared := map[string]bool{}
	samples := 0
	lastBucket := map[string]float64{} // series (sans le) -> last cumulative count
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				return samples, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			declared[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, val, err := parsePromSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %w", ln+1, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && declared[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !declared[base] {
			return samples, fmt.Errorf("line %d: sample %q has no HELP/TYPE declaration", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") {
			key := name + "|" + labelsSansLE(labels)
			if val < lastBucket[key] {
				return samples, fmt.Errorf("line %d: non-cumulative bucket for %s", ln+1, name)
			}
			lastBucket[key] = val
		}
		samples++
	}
	return samples, nil
}

func labelsSansLE(labels []L) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == "le" {
			continue
		}
		parts = append(parts, l.Name+"="+l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// parsePromSample splits one exposition sample line.
func parsePromSample(line string) (name string, labels []L, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err = parsePromLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" || !promNameOK(name) {
		return "", nil, 0, fmt.Errorf("bad metric name in %q", line)
	}
	v := strings.TrimSpace(rest)
	if v == "+Inf" {
		return name, labels, math.Inf(1), nil
	}
	value, err = strconv.ParseFloat(v, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", v)
	}
	return name, labels, value, nil
}

func parsePromLabels(s string) ([]L, error) {
	var out []L
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair")
		}
		name := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value")
		}
		out = append(out, L{name, val.String()})
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

func promNameOK(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
