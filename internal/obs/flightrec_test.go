package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Note("kind", "trace", "note")
	if path, err := f.Trip("reason", "", ""); path != "" || err != nil {
		t.Fatalf("nil Trip = (%q, %v)", path, err)
	}
	if path, err := f.Dump("reason"); path != "" || err != nil {
		t.Fatalf("nil Dump = (%q, %v)", path, err)
	}
	if f.Window() != 0 || f.Dumps() != 0 {
		t.Fatal("nil recorder reported state")
	}
}

func TestFlightRecorderSnapshotWindow(t *testing.T) {
	f := NewFlightRecorder(50*time.Millisecond, "", "n1", nil)
	f.Note("governor", "t-1", "level 0 -> 1")
	time.Sleep(80 * time.Millisecond)
	f.Note("watchdog", "t-2", "slow batch")

	d := f.Snapshot("test")
	if d.Node != "n1" || d.Reason != "test" || d.Tracing {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "watchdog" || d.Events[0].Trace != "t-2" {
		t.Fatalf("window kept %+v, want only the recent watchdog event", d.Events)
	}
	if d.Events[0].HLC == 0 {
		t.Fatal("event missing HLC stamp")
	}
}

func TestFlightRecorderRingBounded(t *testing.T) {
	f := NewFlightRecorder(time.Hour, "", "", nil)
	for i := 0; i < flightDepth+100; i++ {
		f.Note("shed", "", "x")
	}
	d := f.Snapshot("test")
	if len(d.Events) != flightDepth {
		t.Fatalf("ring kept %d events, want %d", len(d.Events), flightDepth)
	}
}

func TestFlightRecorderDumpAndTripRateLimit(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(1, 16)
	tr.SetNode("n1")
	tr.Record(0, Span{Trace: "t-1", Stage: StageStep, Ticks: 64, Start: time.Now()})
	f := NewFlightRecorder(time.Hour, dir, "n1", tr)

	path, err := f.Trip("quarantine", "t-1", "panic in monitor step")
	if err != nil || path == "" {
		t.Fatalf("first Trip = (%q, %v), want a dump file", path, err)
	}
	// A second trip inside the window records the event but skips the
	// file: one black box per incident window, not one per symptom.
	again, err := f.Trip("watchdog", "t-1", "slow batch")
	if err != nil || again != "" {
		t.Fatalf("rate-limited Trip = (%q, %v), want no file", again, err)
	}
	if f.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", f.Dumps())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Reason != "quarantine" || d.Node != "n1" || !d.Tracing {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "quarantine" {
		t.Fatalf("dump events = %+v", d.Events)
	}
	if len(d.Spans) != 1 || d.Spans[0].Trace != "t-1" || d.Spans[0].Node != "n1" {
		t.Fatalf("dump spans = %+v", d.Spans)
	}
	// Atomic rename: no temp files left behind, name carries the stamp.
	if !strings.HasPrefix(filepath.Base(path), "flightrec-") {
		t.Fatalf("dump name %q", path)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestFlightRecorderTripWithoutDirKeepsRing(t *testing.T) {
	f := NewFlightRecorder(time.Hour, "", "", nil)
	path, err := f.Trip("divergence", "t-9", "conformance mismatch")
	if err != nil || path != "" {
		t.Fatalf("dirless Trip = (%q, %v)", path, err)
	}
	d := f.Snapshot("live")
	if len(d.Events) != 1 || d.Events[0].Kind != "divergence" || d.Events[0].Trace != "t-9" {
		t.Fatalf("dirless trip lost the event: %+v", d.Events)
	}
	if f.Dumps() != 0 {
		t.Fatalf("Dumps() = %d, want 0", f.Dumps())
	}
}
