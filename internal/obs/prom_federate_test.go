package obs

import (
	"strings"
	"testing"
)

// nodeExposition builds one member's /metrics body for federation tests.
func nodeExposition(ticks float64) string {
	w := NewPromWriter()
	w.Family("cescd_ticks_total", "counter", "ticks processed")
	w.Sample("cescd_ticks_total", nil, ticks)
	w.Family("cescd_lat_seconds", "histogram", "latency")
	w.Histogram("cescd_lat_seconds", []L{{"stage", "step"}},
		[]float64{0.001, 0.01}, []uint64{3, 2, 1}, 0.05)
	return w.String()
}

func TestAppendExpositionFederatesUnderNodeLabel(t *testing.T) {
	pw := NewPromWriter()
	pw.Family("cescd_node_up", "gauge", "member answered")
	pw.Sample("cescd_node_up", []L{{"node", "alpha"}}, 1)
	pw.Sample("cescd_node_up", []L{{"node", "beta"}}, 1)
	for _, n := range []struct {
		name  string
		ticks float64
	}{{"alpha", 42}, {"beta", 7}} {
		added, err := pw.AppendExposition(nodeExposition(n.ticks), []L{{"node", n.name}})
		if err != nil {
			t.Fatalf("AppendExposition(%s): %v", n.name, err)
		}
		if added != 6 { // 1 counter + 3 buckets + sum + count
			t.Fatalf("appended %d samples for %s, want 6", added, n.name)
		}
	}
	text := pw.String()

	// The merged document must itself be scrape-valid: identical families
	// from both nodes collapse into one declaration, every sample carries
	// the node label, and each node's histogram stays cumulative because
	// the label keeps the series distinct.
	if _, err := ValidatePromText(text); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, text)
	}
	if got := strings.Count(text, "# TYPE cescd_ticks_total counter"); got != 1 {
		t.Fatalf("family declared %d times, want 1:\n%s", got, text)
	}
	for _, want := range []string{
		`cescd_ticks_total{node="alpha"} 42`,
		`cescd_ticks_total{node="beta"} 7`,
		`cescd_lat_seconds_bucket{node="alpha",stage="step",le="+Inf"} 6`,
		`cescd_lat_seconds_count{node="beta",stage="step"} 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, text)
		}
	}
}

func TestAppendExpositionRejectsGarbage(t *testing.T) {
	pw := NewPromWriter()
	for _, bad := range []string{
		"# HELP broken\n",
		"# TYPE broken\n",
		"# HELP x h\n# TYPE x counter\nx notanumber\n",
	} {
		if _, err := pw.AppendExposition(bad, nil); err == nil {
			t.Errorf("AppendExposition accepted %q", bad)
		}
	}
}
