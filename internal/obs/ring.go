package obs

import "sync/atomic"

// Ring is a bounded lock-free span buffer: writers claim a slot with one
// atomic increment and publish the span with one atomic pointer store;
// readers snapshot by loading the pointers. Overwriting the oldest entry
// is the eviction policy — the ring always holds the most recent spans,
// and neither side ever blocks the other. Multiple concurrent writers
// are safe (the claim is the atomic increment); a torn "write" is
// impossible because the span is fully built before its pointer is
// published.
type Ring struct {
	slots  []atomic.Pointer[Span]
	cursor atomic.Uint64
}

// NewRing returns a ring retaining the most recent depth spans.
func NewRing(depth int) *Ring {
	if depth < 1 {
		depth = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Span], depth)}
}

// Depth returns the ring capacity.
func (r *Ring) Depth() int { return len(r.slots) }

// Put publishes sp, overwriting the oldest retained span once the ring
// has wrapped. The caller must not mutate sp afterwards.
func (r *Ring) Put(sp *Span) {
	i := r.cursor.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(sp)
}

// Snapshot returns the currently retained spans in unspecified order
// (callers sort by Span.Seq). The returned pointers are immutable
// published spans; the slice is freshly allocated.
func (r *Ring) Snapshot() []*Span {
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}
