package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHLCMonotonic(t *testing.T) {
	var c HLC
	prev := c.Now()
	for i := 0; i < 10_000; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("Now() went backwards: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestHLCObserve(t *testing.T) {
	var c HLC
	local := c.Now()

	// A remote reading far in the future drags the clock forward: the
	// next local reading must order after it.
	future := local + (uint64(time.Hour/time.Millisecond) << 16)
	c.Observe(future)
	if got := c.Now(); got <= future {
		t.Fatalf("Now() after Observe(future) = %d, want > %d", got, future)
	}

	// A stale or zero remote reading never rewinds the clock.
	high := c.Now()
	c.Observe(local)
	c.Observe(0)
	if got := c.Now(); got <= high {
		t.Fatalf("Now() after stale Observe = %d, want > %d", got, high)
	}
}

func TestHLCConcurrentUnique(t *testing.T) {
	var c HLC
	const goroutines, per = 8, 2000
	out := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := make([]uint64, per)
			for i := range ts {
				ts[i] = c.Now()
			}
			out[g] = ts
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*per)
	for _, ts := range out {
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d across goroutines", v)
			}
			seen[v] = true
		}
	}
}

func TestHLCWallRecoversPhysical(t *testing.T) {
	var c HLC
	before := time.Now().Truncate(time.Millisecond)
	ts := c.Now()
	after := time.Now().Add(time.Millisecond)
	wall := HLCWall(ts)
	if wall.Before(before) || wall.After(after) {
		t.Fatalf("HLCWall(%d) = %v, want within [%v, %v]", ts, wall, before, after)
	}
}

func TestParentTokenRoundTrip(t *testing.T) {
	tok := ParentToken("node-a", 123456)
	node, hlc := ParseParentToken(tok)
	if node != "node-a" || hlc != 123456 {
		t.Fatalf("round trip = (%q, %d), want (node-a, 123456)", node, hlc)
	}

	// Node names containing '@' split on the last separator.
	node, hlc = ParseParentToken(ParentToken("we@ird", 7))
	if node != "we@ird" || hlc != 7 {
		t.Fatalf("@-name round trip = (%q, %d)", node, hlc)
	}

	// Malformed tokens degrade to the zero reading, never an error.
	for _, bad := range []string{"", "no-separator", "n@notanumber", "n@-1", "@"} {
		if node, hlc := ParseParentToken(bad); node != "" || hlc != 0 {
			t.Errorf("ParseParentToken(%q) = (%q, %d), want (\"\", 0)", bad, node, hlc)
		}
	}
}

func TestMergeTimelineCausalOrder(t *testing.T) {
	a := []Span{
		{Seq: 1, Node: "a", HLC: 10, Stage: StageIngest},
		{Seq: 2, Node: "a", HLC: 40, Stage: StageStep},
	}
	b := []Span{
		{Seq: 1, Node: "b", HLC: 20, Stage: StageProxy, Kind: "proxy"},
		{Seq: 2, Node: "b", HLC: 30, Stage: StageWALReplay, Kind: "promotion"},
	}
	got := MergeTimeline(a, b)
	if len(got) != 4 {
		t.Fatalf("merged %d spans, want 4", len(got))
	}
	for i, want := range []uint64{10, 20, 30, 40} {
		if got[i].HLC != want {
			t.Fatalf("merged[%d].HLC = %d, want %d (order %+v)", i, got[i].HLC, want, got)
		}
	}
}

func TestMergeTimelineZeroHLCFirst(t *testing.T) {
	// Spans from a pre-HLC node (HLC == 0) sort before stamped spans, in
	// their own Seq order, so mixed fleets degrade instead of lying.
	old := []Span{{Seq: 5, Node: "old"}, {Seq: 2, Node: "old"}}
	neu := []Span{{Seq: 1, Node: "new", HLC: 1}}
	got := MergeTimeline(old, neu)
	if got[0].Seq != 2 || got[1].Seq != 5 || got[2].HLC != 1 {
		t.Fatalf("zero-HLC spans not first in Seq order: %+v", got)
	}
}

func TestMergeTimelineTieBreak(t *testing.T) {
	// Equal HLC readings order by node name, then per-node Seq — total
	// and deterministic, so repeated merges agree.
	got := MergeTimeline(
		[]Span{{Seq: 2, Node: "b", HLC: 9}, {Seq: 1, Node: "b", HLC: 9}},
		[]Span{{Seq: 9, Node: "a", HLC: 9}},
	)
	if got[0].Node != "a" || got[1].Seq != 1 || got[2].Seq != 2 {
		t.Fatalf("tie break wrong: %+v", got)
	}
}

func TestRenderTimeline(t *testing.T) {
	if got := RenderTimeline(nil); got != "(no spans)\n" {
		t.Fatalf("empty render = %q", got)
	}
	text := RenderTimeline([]Span{
		{Node: "n1", HLC: 1 << 16, Stage: StageIngest, Session: "s-1", Ticks: 64, Dur: time.Millisecond},
		{Node: "n2", HLC: 2 << 16, Stage: StageProxy, Kind: "proxy", Parent: "n1@65536", Note: "-> n1"},
	})
	for _, want := range []string{"n1", "ingest", "session=s-1", "ticks=64", "[proxy]", "parent=n1@65536", "(-> n1)"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, text)
		}
	}
	if lines := strings.Count(text, "\n"); lines != 2 {
		t.Errorf("rendered %d lines, want 2:\n%s", lines, text)
	}
}
