package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRingConcurrentWritersReaders hammers one tracer from many writers
// and readers at once; run under -race this proves the lock-free ring's
// publication discipline (fully-built span, then atomic pointer store).
func TestRingConcurrentWritersReaders(t *testing.T) {
	tr := NewTracer(4, 64)
	const writers, readers, perWriter = 8, 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(w%4, Span{
					Stage:   StageStep,
					Session: "sess",
					Trace:   "trace",
					Start:   time.Now(),
					Dur:     time.Duration(i),
					Ticks:   i,
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spans := tr.Snapshot(nil, 0)
				for i := 1; i < len(spans); i++ {
					if spans[i].Seq <= spans[i-1].Seq {
						t.Error("snapshot not ordered by seq")
						return
					}
				}
				for _, sp := range spans {
					if sp.Stage != StageStep || sp.Session != "sess" {
						t.Errorf("torn span observed: %+v", sp)
						return
					}
				}
			}
		}()
	}

	// Let writers finish, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	<-done

	if got := tr.Spans(); got != writers*perWriter {
		t.Fatalf("recorded %d spans, want %d", got, writers*perWriter)
	}
	if got := len(tr.Snapshot(nil, 0)); got > 5*64 {
		t.Fatalf("snapshot holds %d spans, rings cap at %d", got, 5*64)
	}
}
