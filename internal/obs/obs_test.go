package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTracerDisabledIsNoop(t *testing.T) {
	var zero Tracer
	for _, tr := range []*Tracer{nil, &zero, NewTracer(4, 0)} {
		if tr.Enabled() {
			t.Fatalf("tracer %v enabled, want disabled", tr)
		}
		tr.Record(0, Span{Stage: StageStep})
		if got := tr.Snapshot(nil, 0); got != nil {
			t.Fatalf("snapshot of disabled tracer = %v, want nil", got)
		}
		if tr.Spans() != 0 {
			t.Fatalf("disabled tracer counted spans")
		}
	}
}

func TestTracerRecordSnapshotOrder(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Record(0, Span{Stage: StageDecode, Session: "a", Ticks: 3})
	tr.Record(1, Span{Stage: StageStep, Session: "b"})
	tr.Record(0, Span{Stage: StageStep, Session: "a"})
	tr.Record(-1, Span{Stage: StageWALReplay})
	got := tr.Snapshot(nil, 0)
	if len(got) != 4 {
		t.Fatalf("snapshot = %d spans, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("snapshot out of order: %+v", got)
		}
	}
	if got[0].Stage != StageDecode || got[0].Ticks != 3 || got[0].Shard != 0 {
		t.Errorf("first span = %+v", got[0])
	}
	if got[3].Shard != -1 {
		t.Errorf("unpinned span shard = %d, want -1", got[3].Shard)
	}
	if tr.Spans() != 4 {
		t.Errorf("Spans() = %d, want 4", tr.Spans())
	}

	// Filter + tail.
	sess := tr.Snapshot(func(sp *Span) bool { return sp.Session == "a" }, 1)
	if len(sess) != 1 || sess[0].Stage != StageStep {
		t.Errorf("filtered tail = %+v, want the newest session-a span", sess)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Put(&Span{Seq: uint64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d, want 4", len(snap))
	}
	min := snap[0].Seq
	for _, sp := range snap {
		if sp.Seq < min {
			min = sp.Seq
		}
	}
	if min != 7 {
		t.Errorf("oldest retained seq = %d, want 7 (newest 4 of 10)", min)
	}
}

func TestPromWriterFormat(t *testing.T) {
	w := NewPromWriter()
	w.Family("cescd_ticks_total", "counter", "ticks processed")
	w.Sample("cescd_ticks_total", nil, 42)
	w.Family("cescd_accepts_total", "counter", "per-spec accepts")
	w.Sample("cescd_accepts_total", []L{{"spec", `we"ird\na-me`}}, 7)
	w.Family("cescd_lat_seconds", "histogram", "latency")
	w.Histogram("cescd_lat_seconds", []L{{"stage", "step"}},
		[]float64{0.001, 0.01}, []uint64{3, 2, 1}, 0.05)
	text := w.String()

	n, err := ValidatePromText(text)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	if n != 7 { // 2 plain samples + 3 buckets + sum + count
		t.Errorf("parsed %d samples, want 7\n%s", n, text)
	}
	for _, want := range []string{
		"# TYPE cescd_ticks_total counter",
		`cescd_accepts_total{spec="we\"ird\\na-me"} 7`,
		`cescd_lat_seconds_bucket{stage="step",le="+Inf"} 6`,
		"cescd_lat_seconds_count{stage=\"step\"} 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPromValidatorCatchesGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_declaration 1\n",
		"# HELP x h\n# TYPE x counter\nx{unterminated=\"v 1\n",
		"# HELP x h\n# TYPE x counter\nx notanumber\n",
	} {
		if _, err := ValidatePromText(bad); err == nil {
			t.Errorf("validator accepted %q", bad)
		}
	}
}

func TestWatchdog(t *testing.T) {
	var buf bytes.Buffer
	wd := NewWatchdog(time.Millisecond, slog.New(slog.NewTextHandler(&buf, nil)))
	if wd.Observe(10*time.Millisecond, 100, "t1", "s1", 0) {
		t.Error("100µs/tick flagged slow at 1ms threshold")
	}
	if !wd.Observe(500*time.Millisecond, 10, "t2", "s2", 1) {
		t.Error("50ms/tick not flagged slow at 1ms threshold")
	}
	if wd.Slow() != 1 {
		t.Errorf("slow count = %d, want 1", wd.Slow())
	}
	out := buf.String()
	for _, want := range []string{"slow tick batch", "trace=t2", "session=s2"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q: %s", want, out)
		}
	}

	// Disabled watchdogs never flag.
	var nilWd *Watchdog
	if nilWd.Observe(time.Hour, 1, "", "", 0) || nilWd.Enabled() {
		t.Error("nil watchdog flagged a batch")
	}
	off := NewWatchdog(0, nil)
	if off.Observe(time.Hour, 1, "", "", 0) || off.Enabled() {
		t.Error("zero-threshold watchdog flagged a batch")
	}
}

func TestWatchdogRateLimit(t *testing.T) {
	var buf bytes.Buffer
	wd := NewWatchdog(time.Nanosecond, slog.New(slog.NewTextHandler(&buf, nil)))
	for i := 0; i < 50; i++ {
		wd.Observe(time.Second, 1, "t", "s", 0)
	}
	if wd.Slow() != 50 {
		t.Errorf("slow count = %d, want 50", wd.Slow())
	}
	if got := strings.Count(buf.String(), "slow tick batch"); got != 1 {
		t.Errorf("logged %d warnings in one second, want 1 (rate limit)", got)
	}
}

// TestTracerRecordBatch checks the amortized batch write path matches
// per-span Record semantics: sequencing interleaves correctly with
// scalar records, shard routing holds, and the span count is exact.
func TestTracerRecordBatch(t *testing.T) {
	tr := NewTracer(2, 16)
	var none *Tracer
	none.RecordBatch(0, []Span{{Stage: StageStep}}) // nil tracer is inert
	tr.RecordBatch(0, nil)                          // empty batch is free

	tr.Record(0, Span{Stage: StageDecode, Session: "a"})
	tr.RecordBatch(1, []Span{
		{Stage: StageQueueWait, Session: "b", Ticks: 64},
		{Stage: StageStep, Session: "b", Ticks: 64},
	})
	tr.Record(-1, Span{Stage: StageWALReplay})
	got := tr.Snapshot(nil, 0)
	if len(got) != 4 {
		t.Fatalf("snapshot = %d spans, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("sequence not dense: %+v", got)
		}
	}
	if got[1].Stage != StageQueueWait || got[2].Stage != StageStep {
		t.Fatalf("batch order not preserved: %+v", got)
	}
	if got[1].Shard != 1 || got[2].Shard != 1 {
		t.Fatalf("batch spans not pinned to shard: %+v", got)
	}
	if tr.Spans() != 4 {
		t.Errorf("Spans() = %d, want 4", tr.Spans())
	}
}
