package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent is one entry in the flight recorder's bounded ring: a
// governor state transition, a watchdog trip, a panic quarantine, a WAL
// error, a shed decision — the rare, load-bearing moments an operator
// wants to replay after the fact. Events are cheap (recorded off the
// per-tick hot path, at most once per batch) but never sampled away:
// unlike the span tracer, the recorder is always on.
type FlightEvent struct {
	HLC   uint64    `json:"hlc"`
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"`
	Trace string    `json:"trace,omitempty"`
	Note  string    `json:"note,omitempty"`
}

// FlightDump is the document written on a trip (and served by
// GET /debug/flightrec): the event ring plus the tracer's span rings,
// bounded to the recorder's window.
type FlightDump struct {
	Node    string        `json:"node,omitempty"`
	Reason  string        `json:"reason,omitempty"`
	At      time.Time     `json:"at"`
	Window  time.Duration `json:"window_ns"`
	Dumps   uint64        `json:"dumps"`
	Events  []FlightEvent `json:"events"`
	Spans   []Span        `json:"spans,omitempty"`
	Tracing bool          `json:"tracing"`
}

// flightDepth bounds the event ring. Events are rare (per batch at most,
// usually per incident), so a small fixed ring covers any sane window.
const flightDepth = 4096

// FlightRecorder is the daemon's black box: an always-on bounded ring of
// notable events plus a reference to the span tracer, dumped atomically
// to a timestamped file when something trips — panic quarantine, slow
// tick watchdog, conformance divergence, SIGQUIT. The daemon becomes an
// assertion monitor over itself: the last N seconds before an incident
// survive the incident.
type FlightRecorder struct {
	window time.Duration
	dir    string
	node   string
	tracer *Tracer

	mu     sync.Mutex
	events [flightDepth]FlightEvent
	next   uint64 // total events recorded; next slot is next % flightDepth

	dumps    atomic.Uint64
	lastDump atomic.Int64 // unix nanos; dumps are rate-limited to one per window
}

// NewFlightRecorder arms a recorder keeping window's worth of events
// (<= 0 selects 30s), dumping into dir on trips ("" disables file dumps
// but keeps the ring and the HTTP exposure live), attributing events to
// node, and snapshotting tracer's spans into each dump (nil is allowed).
func NewFlightRecorder(window time.Duration, dir, node string, tracer *Tracer) *FlightRecorder {
	if window <= 0 {
		window = 30 * time.Second
	}
	return &FlightRecorder{window: window, dir: dir, node: node, tracer: tracer}
}

// Window reports the retention window.
func (f *FlightRecorder) Window() time.Duration {
	if f == nil {
		return 0
	}
	return f.window
}

// Dumps reports how many dump files have been written.
func (f *FlightRecorder) Dumps() uint64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// Note records one event into the ring. Safe from any goroutine; called
// at most once per batch on the processing path, so the mutex is cold.
func (f *FlightRecorder) Note(kind, trace, note string) {
	if f == nil {
		return
	}
	ev := FlightEvent{HLC: Clock.Now(), Time: time.Now(), Kind: kind, Trace: trace, Note: note}
	f.mu.Lock()
	f.events[f.next%flightDepth] = ev
	f.next++
	f.mu.Unlock()
}

// Snapshot assembles the current dump document: ring events within the
// window (oldest first) plus the newest spans whose wall start falls
// inside it.
func (f *FlightRecorder) Snapshot(reason string) FlightDump {
	now := time.Now()
	d := FlightDump{Node: f.node, Reason: reason, At: now, Window: f.window, Dumps: f.dumps.Load()}
	cutoff := now.Add(-f.window)
	f.mu.Lock()
	n := f.next
	lo := uint64(0)
	if n > flightDepth {
		lo = n - flightDepth
	}
	for i := lo; i < n; i++ {
		ev := f.events[i%flightDepth]
		if ev.Time.Before(cutoff) {
			continue
		}
		d.Events = append(d.Events, ev)
	}
	f.mu.Unlock()
	if d.Events == nil {
		d.Events = []FlightEvent{}
	}
	if f.tracer.Enabled() {
		d.Tracing = true
		d.Spans = f.tracer.Snapshot(func(sp *Span) bool {
			return !sp.Start.Before(cutoff)
		}, 0)
	}
	return d
}

// Trip records the triggering event and writes one dump file, rate
// limited to one per window so a storm of trips (every slow batch under
// sustained overload) costs one file, not thousands. It returns the
// path written ("" when skipped by the rate limit or when no dump dir is
// configured).
func (f *FlightRecorder) Trip(reason, trace, note string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.Note(reason, trace, note)
	if f.dir == "" {
		return "", nil
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if now-last < int64(f.window) || !f.lastDump.CompareAndSwap(last, now) {
		return "", nil
	}
	return f.Dump(reason)
}

// Dump writes the current snapshot to a timestamped file in the dump
// directory, atomically: the document lands under a temp name and is
// renamed into place, so a reader never sees a torn black box.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil || f.dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	d := f.Snapshot(reason)
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	stamp := d.At.UTC().Format("20060102T150405.000000000Z")
	path := filepath.Join(f.dir, fmt.Sprintf("flightrec-%s.json", stamp))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	f.dumps.Add(1)
	return path, nil
}
