package mine

import (
	"strings"
	"testing"
)

// FuzzMine feeds arbitrary bytes through the whole mining pipeline:
// the corpus reader must reject garbage with an error (never a panic),
// and whatever charts the miner emits must be valid, synthesizable, and
// round-trip the printer and parser byte-identically — Mine itself
// enforces the round trip and reports any breach as an error, which the
// fuzz target escalates to a failure.
func FuzzMine(f *testing.F) {
	f.Add(`{"events":["req"]}` + "\n" + `{"events":["ack"]}` + "\n\n" +
		`{"events":["req"]}` + "\n" + `{"events":["ack"]}` + "\n\n" +
		`{"events":["req"]}` + "\n" + `{"events":["ack"]}` + "\n")
	f.Add(`{"events":["a","b"],"props":{"p":true}}` + "\n" + `{"props":{"p":false}}` + "\n")
	f.Add(`{"domain":"fast","state":{"events":["x"]}}` + "\n" + `{"domain":"slow","state":{"events":["y"]}}` + "\n")
	f.Add("# comment\n{}\n{}\n")
	f.Add("{not json")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadNDJSON(strings.NewReader(src))
		if err != nil {
			return // malformed corpus: rejected, not mined
		}
		// Bound the work: mining cost scales with ticks × symbols ×
		// window, and synthesis is exponential in line width.
		if c.Ticks() > 512 {
			return
		}
		evs, prs := c.Symbols()
		if len(evs)+len(prs) > 8 {
			return
		}
		for _, sym := range append(append([]string(nil), evs...), prs...) {
			if len(sym) > 64 {
				return
			}
		}
		cfg := Config{MinSupport: 2, MaxWindow: 4, Negatives: true, Seed: 1}
		ms, err := Mine(c, cfg)
		if err != nil {
			t.Fatalf("mined chart broke the round-trip guarantee: %v", err)
		}
		for _, m := range ms {
			res := Validate(m, c, cfg) // must not panic on any corpus
			_ = Shrink(m, c, cfg)
			_ = res
		}
	})
}
