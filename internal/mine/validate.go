package mine

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Result reports the validation gate's verdict for one mined chart.
// A chart passes only when (a) both views compile, (b) the assert view
// sees zero violations over the source corpus in every comparable
// execution tier and in the reference-semantics oracle (soundness on
// the corpus), (c) the scenario view's accepts agree across tiers,
// stay inside the oracle's end ticks, and are non-empty, and (d) the
// assert monitor flags at least MinKill of the constructed near-miss
// mutants (non-vacuity).
type Result struct {
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	// Reason is the first gate failure ("" when passing).
	Reason string `json:"reason,omitempty"`
	// Accepts counts scenario-view accepts over the corpus.
	Accepts int `json:"accepts"`
	// Violations counts assert-view violations over the corpus
	// (interpreted engine; must be 0 to pass).
	Violations int `json:"violations"`
	// OracleViolations counts reference-semantics violations (must be 0).
	OracleViolations int `json:"oracle_violations"`
	// Mutants and Killed describe the discrimination check.
	Mutants int `json:"mutants"`
	Killed  int `json:"killed"`
	// Divergent marks a failure of tier parity or of the oracle sandwich
	// — a bug in the execution stack, not a property of the mined chart.
	// The conformance harness escalates these; ordinary gate rejections
	// (violations on the corpus, weak kill rate) it does not.
	Divergent bool `json:"divergent,omitempty"`
}

// KillRate returns the fraction of mutants flagged (1 when none built).
func (r *Result) KillRate() float64 {
	if r.Mutants == 0 {
		return 1
	}
	return float64(r.Killed) / float64(r.Mutants)
}

func (r *Result) fail(format string, args ...any) *Result {
	if r.Reason == "" {
		r.Reason = fmt.Sprintf(format, args...)
	}
	r.Pass = false
	return r
}

// segmentsFor resolves the segment set a mined chart was derived from.
func (c *Corpus) segmentsFor(domain string) []trace.Trace {
	if domain != "" {
		return c.Domains[domain]
	}
	return c.Segments
}

// Validate runs the full gate for one mined chart against its source
// corpus.
func Validate(m *Mined, c *Corpus, cfg Config) *Result {
	cfg = cfg.withDefaults()
	segs := c.segmentsFor(m.Domain)
	res := &Result{Name: m.Name}

	scenMon, err := synth.Synthesize(m.Scenario, nil)
	if err != nil {
		return res.fail("scenario does not compile: %v", err)
	}
	assertMon, err := synth.Synthesize(m.Assert, nil)
	if err != nil {
		return res.fail("assert view does not compile: %v", err)
	}
	scenProg, err := monitor.CompileProgram(scenMon)
	if err != nil {
		return res.fail("scenario program compile: %v", err)
	}
	assertProg, err := monitor.CompileProgram(assertMon)
	if err != nil {
		return res.fail("assert program compile: %v", err)
	}

	// The transition table cannot reverse pending scoreboard actions on a
	// hard reset, so it is only differential-comparable when no hard
	// reset can occur or no actions exist (same gate as the conformance
	// harness).
	assertTotal, _ := assertMon.Total()
	assertComparable := assertTotal || !assertMon.HasActions()
	scenTotal, _ := scenMon.Total()
	scenComparable := scenTotal || !scenMon.HasActions()

	for si, seg := range segs {
		// Scenario view: accept ticks must agree across tiers and stay
		// inside what the reference semantics justifies.
		interp := stepTicks(monitor.NewEngine(scenMon, nil, monitor.ModeDetect).Step, seg, monitor.Accepted)
		prog := stepTicks(scenProg.NewEngine(nil, monitor.ModeDetect).Step, seg, monitor.Accepted)
		if !equalInts(interp, prog) {
			res.Divergent = true
			return res.fail("segment %d: scenario tier divergence interp=%v program=%v", si, interp, prog)
		}
		packedEng := scenProg.NewEngine(nil, monitor.ModeDetect)
		sup := scenProg.Support()
		packed := stepTicks(func(s event.State) monitor.StepResult {
			return packedEng.StepPacked(sup.Pack(s))
		}, seg, monitor.Accepted)
		if !equalInts(interp, packed) {
			res.Divergent = true
			return res.fail("segment %d: scenario tier divergence interp=%v packed=%v", si, interp, packed)
		}
		if scenComparable {
			if tbl, err := monitor.Compile(scenMon); err == nil {
				var tblTicks []int
				for i, s := range seg {
					if tbl.Step(s) {
						tblTicks = append(tblTicks, i)
					}
				}
				if !equalInts(interp, tblTicks) {
					res.Divergent = true
					return res.fail("segment %d: scenario tier divergence interp=%v table=%v", si, interp, tblTicks)
				}
			}
		}
		o := semantics.NewOracle(seg)
		if d := missingFrom(interp, o.EndTicks(m.Scenario)); d >= 0 {
			res.Divergent = true
			return res.fail("segment %d: scenario accept at tick %d not justified by the oracle", si, d)
		}
		res.Accepts += len(interp)

		// Assert view: zero violations in every comparable tier and in
		// the oracle.
		aviol := stepTicks(monitor.NewEngine(assertMon, nil, monitor.ModeDetect).Step, seg, monitor.Violated)
		aprog := stepTicks(assertProg.NewEngine(nil, monitor.ModeDetect).Step, seg, monitor.Violated)
		if !equalInts(aviol, aprog) {
			res.Divergent = true
			return res.fail("segment %d: assert tier divergence interp=%v program=%v", si, aviol, aprog)
		}
		if assertComparable {
			if tbl, err := monitor.CompileTable(assertMon); err == nil {
				inst := tbl.NewInstance()
				var tblViol []int
				for i, s := range seg {
					before := inst.Violations()
					inst.Step(s)
					if inst.Violations() > before {
						tblViol = append(tblViol, i)
					}
				}
				if !equalInts(aviol, tblViol) {
					res.Divergent = true
					return res.fail("segment %d: assert tier divergence interp=%v table=%v", si, aviol, tblViol)
				}
			}
		}
		res.Violations += len(aviol)
		res.OracleViolations += len(o.ImpliesViolations(m.Assert))
	}

	if res.Accepts == 0 {
		return res.fail("scenario never accepts on its own corpus")
	}
	if res.Violations > 0 {
		return res.fail("assert view violates its own corpus %d time(s)", res.Violations)
	}
	if res.OracleViolations > 0 {
		return res.fail("oracle reports %d violation(s) on the corpus", res.OracleViolations)
	}

	mutateAndCheck(m, segs, cfg, assertMon, res)
	if res.Reason != "" {
		return res
	}
	if res.Mutants == 0 {
		return res.fail("no near-miss mutants constructible (vacuous pattern)")
	}
	if res.KillRate() < cfg.MinKill {
		return res.fail("mutant kill rate %.2f below %.2f (%d/%d)",
			res.KillRate(), cfg.MinKill, res.Killed, res.Mutants)
	}
	res.Pass = true
	return res
}

// mutateAndCheck builds near-miss traces from the chart's own mining
// windows — one marker perturbed per mutant — and counts how many the
// assert monitor flags. Positive consequent markers are deleted at
// their offset, negated markers injected, and condition props flipped.
// A mutant only counts toward the denominator when the reference
// semantics agrees it is a violation, so engine kills are measured
// against semantically real near-misses.
func mutateAndCheck(m *Mined, segs []trace.Trace, cfg Config, assertMon *monitor.Monitor, res *Result) {
	L := len(m.Scenario.Lines)
	rng := rand.New(rand.NewSource(cfg.Seed))

	full := make([]anchorAt, 0, len(m.windows))
	for _, w := range m.windows {
		if w.tick+L <= len(segs[w.seg]) {
			full = append(full, w)
		}
	}
	if len(full) == 0 {
		return
	}

	type perturb struct {
		offset int
		apply  func(st event.State) bool // returns false when inapplicable
	}
	var perturbs []perturb
	for d := 1; d < L; d++ {
		line := m.Scenario.Lines[d]
		for _, es := range line.Events {
			ev := es.Event
			if es.Negated {
				perturbs = append(perturbs, perturb{offset: d, apply: func(st event.State) bool {
					if st.Events[ev] {
						return false
					}
					st.Events[ev] = true
					return true
				}})
			} else {
				perturbs = append(perturbs, perturb{offset: d, apply: func(st event.State) bool {
					if !st.Events[ev] {
						return false
					}
					delete(st.Events, ev)
					return true
				}})
			}
		}
		if line.Cond != nil {
			for _, sym := range exprProps(line.Cond) {
				p := sym
				perturbs = append(perturbs, perturb{offset: d, apply: func(st event.State) bool {
					st.Props[p] = !st.Props[p]
					return true
				}})
			}
		}
	}

	for _, pt := range perturbs {
		picks := sampleWindows(full, cfg.MutantsPerMarker, rng)
		for _, w := range picks {
			mut := cloneWindow(segs[w.seg], w.tick, L)
			if !pt.apply(mut[pt.offset]) {
				continue
			}
			if len(semantics.ImpliesViolations(m.Assert, mut)) == 0 {
				continue // perturbation happens to stay legal; not a near-miss
			}
			res.Mutants++
			viol := stepTicks(monitor.NewEngine(assertMon, nil, monitor.ModeDetect).Step, mut, monitor.Violated)
			if len(viol) > 0 {
				res.Killed++
			}
		}
	}
}

// exprProps lists the proposition symbols referenced by a condition.
func exprProps(e expr.Expr) []string {
	var out []string
	for _, s := range expr.SupportSymbols(e) {
		if s.Kind == event.KindProp {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// sampleWindows picks up to n windows via a seeded shuffle.
func sampleWindows(ws []anchorAt, n int, rng *rand.Rand) []anchorAt {
	if len(ws) <= n {
		return ws
	}
	idx := rng.Perm(len(ws))[:n]
	out := make([]anchorAt, n)
	for i, j := range idx {
		out[i] = ws[j]
	}
	return out
}

// cloneWindow deep-copies seg[tick : tick+n].
func cloneWindow(seg trace.Trace, tick, n int) trace.Trace {
	out := make(trace.Trace, n)
	for i := 0; i < n; i++ {
		src := seg[tick+i]
		st := event.NewState()
		for e, v := range src.Events {
			st.Events[e] = v
		}
		for p, v := range src.Props {
			st.Props[p] = v
		}
		out[i] = st
	}
	return out
}

// stepTicks runs one engine step function over the trace and returns the
// ticks producing the wanted outcome.
func stepTicks(step func(event.State) monitor.StepResult, tr trace.Trace, want monitor.Outcome) []int {
	var out []int
	for i, s := range tr {
		if step(s).Outcome == want {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// missingFrom returns the first element of sub absent from super, or -1.
func missingFrom(sub, super []int) int {
	in := make(map[int]bool, len(super))
	for _, t := range super {
		in[t] = true
	}
	for _, t := range sub {
		if !in[t] {
			return t
		}
	}
	return -1
}
