// Package mine infers CESC charts from trace corpora — the inverse of
// the synthesis pipeline. Where internal/synth compiles a hand-written
// chart into a monitor, mine reads a corpus of communication traces
// (NDJSON tick streams or VCD dumps), discovers recurring anchored tick
// windows whose per-offset event/prop invariants clear configurable
// support and confidence thresholds, infers causality arrows from
// inverse confidence, and emits the result as well-formed linear CESC
// charts through the canonical printer so they round-trip the parser.
//
// Mined charts are validated, never trusted: Validate compiles each
// candidate with internal/synth, replays the source corpus through
// every execution tier and the internal/semantics oracle demanding zero
// violations (soundness on the corpus), and checks discrimination
// against constructed near-miss mutants (non-vacuity). Shrink then
// drops over-specific decorations that the gate proves redundant.
package mine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/event"
	"repro/internal/trace"
)

// tickJSON mirrors the daemon's NDJSON tick wire format (StateJSON in
// internal/server, not imported here to keep server → mine acyclic).
// Domain-tagged lines use the conformance regression global-tick form.
type tickJSON struct {
	Events []string        `json:"events,omitempty"`
	Props  map[string]bool `json:"props,omitempty"`

	Domain string    `json:"domain,omitempty"`
	Time   int64     `json:"time,omitempty"`
	State  *tickJSON `json:"state,omitempty"`
}

func (t tickJSON) toState() event.State {
	s := event.NewState()
	src := t
	if t.State != nil {
		src = *t.State
	}
	for _, e := range src.Events {
		s.Events[e] = true
	}
	for p, v := range src.Props {
		s.Props[p] = v
	}
	return s
}

// Corpus is a set of trace segments to mine. Segments are independent
// observations: windows never span a segment boundary, and in
// trace-aligned mode each segment contributes exactly one anchor.
// Multi-clock corpora additionally carry per-domain projections keyed by
// clock-domain name.
type Corpus struct {
	// Segments holds the single-clock (or already projected) traces.
	Segments []trace.Trace
	// Domains maps a clock-domain name to its per-domain segments, when
	// the corpus was domain-tagged. Single-clock corpora leave it nil.
	Domains map[string][]trace.Trace
}

// Ticks returns the total number of ticks across all segments.
func (c *Corpus) Ticks() int {
	n := 0
	for _, s := range c.Segments {
		n += len(s)
	}
	return n
}

// DomainNames returns the sorted clock-domain names of a multi-clock
// corpus (nil for single-clock).
func (c *Corpus) DomainNames() []string {
	if len(c.Domains) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.Domains))
	for d := range c.Domains {
		names = append(names, d)
	}
	sort.Strings(names)
	return names
}

// Symbols returns every event and prop name occurring in the corpus,
// each sorted.
func (c *Corpus) Symbols() (events, props []string) {
	evs := map[string]bool{}
	prs := map[string]bool{}
	collect := func(segs []trace.Trace) {
		for _, seg := range segs {
			for _, st := range seg {
				for e := range st.Events {
					evs[e] = true
				}
				for p := range st.Props {
					prs[p] = true
				}
			}
		}
	}
	collect(c.Segments)
	for _, segs := range c.Domains {
		collect(segs)
	}
	for e := range evs {
		events = append(events, e)
	}
	for p := range prs {
		props = append(props, p)
	}
	sort.Strings(events)
	sort.Strings(props)
	return events, props
}

// maxLine bounds a single NDJSON line (same order as the daemon's ingest
// limit); longer lines are a corpus error, not a crash.
const maxLine = 1 << 20

// ReadNDJSON parses an NDJSON tick corpus: one JSON tick per line in the
// daemon's ingest wire format ({"events":[...],"props":{...}}), blank
// lines separating independent trace segments, and '#'-prefixed comment
// lines ignored. Lines carrying a "domain" field (the conformance
// global-tick form) build a multi-clock corpus instead: ticks are
// projected per domain, preserving order within each segment.
func ReadNDJSON(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	c := &Corpus{}
	var cur trace.Trace
	curDomains := map[string]trace.Trace{}
	lineNo := 0
	flush := func() {
		if len(cur) > 0 {
			c.Segments = append(c.Segments, cur)
			cur = nil
		}
		if len(curDomains) > 0 {
			if c.Domains == nil {
				c.Domains = map[string][]trace.Trace{}
			}
			for d, seg := range curDomains {
				c.Domains[d] = append(c.Domains[d], seg)
			}
			curDomains = map[string]trace.Trace{}
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		trimmed := 0
		for trimmed < len(line) && (line[trimmed] == ' ' || line[trimmed] == '\t' || line[trimmed] == '\r') {
			trimmed++
		}
		line = line[trimmed:]
		if len(line) == 0 {
			flush()
			continue
		}
		if line[0] == '#' {
			continue
		}
		var t tickJSON
		if err := json.Unmarshal(line, &t); err != nil {
			return nil, fmt.Errorf("corpus line %d: %w", lineNo, err)
		}
		if t.Domain != "" {
			curDomains[t.Domain] = append(curDomains[t.Domain], t.toState())
		} else {
			cur = append(cur, t.toState())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus line %d: %w", lineNo+1, err)
	}
	flush()
	if len(c.Segments) == 0 && len(c.Domains) == 0 {
		return nil, fmt.Errorf("empty corpus")
	}
	if len(c.Segments) > 0 && len(c.Domains) > 0 {
		return nil, fmt.Errorf("corpus mixes domain-tagged and untagged ticks")
	}
	return c, nil
}

// ReadVCD parses a VCD dump into a single-segment corpus via the
// streaming decoder. Signals named in props are sampled as propositions
// (level-significant); every other 1-bit signal is an event (a tick
// carries the event when the signal is high).
func ReadVCD(r io.Reader, props []string) (*Corpus, error) {
	isProp := make(map[string]bool, len(props))
	for _, p := range props {
		isProp[p] = true
	}
	kindOf := func(name string) event.Kind {
		if isProp[name] {
			return event.KindProp
		}
		return event.KindEvent
	}
	var seg trace.Trace
	err := trace.StreamVCD(r, kindOf, func(s event.State) error {
		seg = append(seg, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(seg) == 0 {
		return nil, fmt.Errorf("empty corpus")
	}
	return &Corpus{Segments: []trace.Trace{seg}}, nil
}
