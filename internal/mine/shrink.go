package mine

import (
	"repro/internal/chart"
	"repro/internal/expr"
)

// Shrink greedily drops over-specific decorations from a mined chart —
// negated markers, condition literals, then arrows — keeping a removal
// only when the validation gate's verdict does not regress: violations
// and oracle violations must not grow, the mutant kill count must not
// drop, and the scenario must keep accepting its corpus. Positive event
// markers are never dropped: they are the confidence-thresholded
// invariant content, and each one backs the mutants that establish
// non-vacuity. Shrinking therefore both trims a passing chart down to
// its load-bearing markers and can rescue a failing one whose only sin
// is an over-fitted negative, condition, or arrow. The shrunk chart
// replaces m's views in place; the final Result is returned.
func Shrink(m *Mined, c *Corpus, cfg Config) *Result {
	cfg = cfg.withDefaults()
	best := Validate(m, c, cfg)
	for {
		improved := false
		// Arrows are mined content: only offer to drop them when the
		// chart is failing and losing one might rescue it.
		for _, cand := range shrinkCandidates(m.Scenario, !best.Pass) {
			trial := &Mined{
				Name:     m.Name,
				Anchor:   m.Anchor,
				Domain:   m.Domain,
				Support:  m.Support,
				Scenario: cand,
				Assert:   buildAssert(cand),
				windows:  m.windows,
			}
			if trial.Scenario.Validate() != nil || trial.Assert.Validate() != nil {
				continue
			}
			res := Validate(trial, c, cfg)
			if !regressed(best, res) {
				m.Scenario = trial.Scenario
				m.Assert = trial.Assert
				best = res
				improved = true
				break
			}
		}
		if !improved {
			return best
		}
	}
}

// regressed reports whether the candidate verdict is worse than the
// current one on any gate axis.
func regressed(cur, cand *Result) bool {
	if cur.Pass && !cand.Pass {
		return true
	}
	if cand.Violations > cur.Violations || cand.OracleViolations > cur.OracleViolations {
		return true
	}
	if cand.Killed < cur.Killed {
		return true
	}
	return cand.Accepts == 0
}

// shrinkCandidates enumerates one-step reductions of the scenario chart
// in deterministic order: drop a negated marker, drop one condition
// literal, and — only when rescuing a failing chart — drop an arrow
// (with its then-unreferenced labels).
func shrinkCandidates(sc *chart.SCESC, tryArrows bool) []*chart.SCESC {
	var out []*chart.SCESC
	for li, line := range sc.Lines {
		for ei, es := range line.Events {
			if !es.Negated {
				continue
			}
			c := cloneSCESC(sc)
			c.Lines[li].Events = append(c.Lines[li].Events[:ei:ei], c.Lines[li].Events[ei+1:]...)
			out = append(out, c)
		}
		if line.Cond != nil {
			lits := condLiterals(line.Cond)
			if len(lits) > 1 {
				for drop := range lits {
					c := cloneSCESC(sc)
					kept := append(append([]expr.Expr(nil), lits[:drop]...), lits[drop+1:]...)
					c.Lines[li].Cond = expr.And(kept...)
					out = append(out, c)
				}
			} else {
				c := cloneSCESC(sc)
				c.Lines[li].Cond = nil
				out = append(out, c)
			}
		}
	}
	if !tryArrows {
		return out
	}
	for ai, a := range sc.Arrows {
		c := cloneSCESC(sc)
		c.Arrows = append(c.Arrows[:ai:ai], c.Arrows[ai+1:]...)
		clearLabel(c, a.To)
		if len(c.Arrows) == 0 {
			clearLabel(c, a.From)
		}
		out = append(out, c)
	}
	return out
}

// condLiterals splits a conjunction into its literals.
func condLiterals(e expr.Expr) []expr.Expr {
	if and, ok := e.(expr.AndExpr); ok {
		var out []expr.Expr
		for _, x := range and.Xs {
			out = append(out, condLiterals(x)...)
		}
		return out
	}
	return []expr.Expr{e}
}

func cloneSCESC(sc *chart.SCESC) *chart.SCESC {
	return &chart.SCESC{
		ChartName: sc.ChartName,
		Clock:     sc.Clock,
		Instances: append([]string(nil), sc.Instances...),
		Lines:     cloneLines(sc.Lines),
		Arrows:    append([]chart.Arrow(nil), sc.Arrows...),
	}
}

func clearLabel(sc *chart.SCESC, label string) {
	for _, a := range sc.Arrows {
		if a.From == label || a.To == label {
			return // still referenced by another arrow
		}
	}
	for li := range sc.Lines {
		for ei := range sc.Lines[li].Events {
			if sc.Lines[li].Events[ei].Label == label {
				sc.Lines[li].Events[ei].Label = ""
			}
		}
	}
}
