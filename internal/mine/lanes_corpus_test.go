package mine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestStepAllCorpusReplay drives LaneBank.StepAll — the non-uniform
// mega-step the PR 8 refactor left as a follow-up seam — with 64 lanes
// replaying *different* slices of the checked-in mining corpora against
// per-lane scalar Compiled cursors. Every lane gets its own valuation
// every tick (distinct offsets into distinct segments), so the grouped
// bit-plane path is exercised with maximally divergent lane states, and
// accept bit, violation bit, and automaton state must match the scalar
// engine lane-for-lane at every tick.
func TestStepAllCorpusReplay(t *testing.T) {
	for _, g := range goldenCorpora {
		g := g
		t.Run(g.cfg.ChartName, func(t *testing.T) {
			f, err := os.Open(filepath.Join(corpusDir, g.file))
			if err != nil {
				t.Fatalf("corpus missing (run golden tests with -update): %v", err)
			}
			c, err := ReadNDJSON(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			ms, rs, err := MineValidated(c, g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range ms {
				if !rs[i].Pass {
					continue
				}
				for _, view := range []struct {
					name string
					mon  func() (*monitor.Monitor, error)
				}{
					{"scenario", func() (*monitor.Monitor, error) { return synth.Synthesize(m.Scenario, nil) }},
					{"assert", func() (*monitor.Monitor, error) { return synth.Synthesize(m.Assert, nil) }},
				} {
					mon, err := view.mon()
					if err != nil {
						t.Fatalf("%s %s: synth: %v", m.Name, view.name, err)
					}
					tbl, err := monitor.CompileTable(mon)
					if err != nil {
						continue // shape not table-compilable; lane tier not offered
					}
					replayLanes(t, m.Name+"/"+view.name, tbl, c.Segments)
				}
			}
		})
	}
}

// replayLanes steps a full 64-lane bank where lane l replays the corpus
// starting at segment l mod S with a phase shift of l ticks, comparing
// against a scalar cursor per lane.
func replayLanes(t *testing.T, name string, tbl *monitor.Table, segs []trace.Trace) {
	t.Helper()
	sup := tbl.Support()

	// Build one flattened per-lane stream: segment (l mod S) rotated by
	// l ticks, so no two lanes see the same valuation sequence.
	const ticks = 192
	streams := make([][]uint64, monitor.MaxLanes)
	states := make([][]event.State, monitor.MaxLanes)
	for l := 0; l < monitor.MaxLanes; l++ {
		seg := segs[l%len(segs)]
		streams[l] = make([]uint64, ticks)
		states[l] = make([]event.State, ticks)
		for i := 0; i < ticks; i++ {
			st := seg[(l+i)%len(seg)]
			streams[l][i] = uint64(sup.Valuation(st))
			states[l][i] = st
		}
	}

	bank := monitor.NewLaneBank(tbl)
	refs := make([]*monitor.Compiled, monitor.MaxLanes)
	for l := 0; l < monitor.MaxLanes; l++ {
		if _, ok := bank.Join(); !ok {
			t.Fatalf("%s: bank refused lane %d", name, l)
		}
		refs[l] = tbl.NewInstance()
	}

	var vals [monitor.MaxLanes]uint64
	for i := 0; i < ticks; i++ {
		for l := 0; l < monitor.MaxLanes; l++ {
			vals[l] = streams[l][i]
		}
		acceptMask, violMask := bank.StepAll(&vals)
		for l := 0; l < monitor.MaxLanes; l++ {
			prevViol := refs[l].Violations()
			accepted := refs[l].Step(states[l][i])
			if got := acceptMask>>uint(l)&1 == 1; got != accepted {
				t.Fatalf("%s: tick %d lane %d accept: lane %v, scalar %v", name, i, l, got, accepted)
			}
			if got := violMask>>uint(l)&1 == 1; got != (refs[l].Violations() > prevViol) {
				t.Fatalf("%s: tick %d lane %d violation bit mismatch", name, i, l)
			}
			if bank.State(l) != refs[l].State() {
				t.Fatalf("%s: tick %d lane %d state %d, scalar %d", name, i, l, bank.State(l), refs[l].State())
			}
		}
	}
}
