package mine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/trace"
)

// Config tunes the miner.
type Config struct {
	// MinSupport is the minimum number of anchor windows a pattern (and
	// every grid line of it) must be observed in. Default 3.
	MinSupport int
	// Confidence is the fraction of covering windows in which an event
	// must occur to become a positive marker, and the inverse-confidence
	// bar for causality arrows. Default 1.0 (exact invariants).
	Confidence float64
	// MaxWindow bounds the pattern length in ticks. Default 8.
	MaxWindow int
	// Negatives additionally emits negated markers (!e) for events that
	// never occur at an offset but do occur elsewhere in the corpus.
	Negatives bool
	// AlignTraces anchors one window at tick 0 of every corpus segment
	// instead of discovering rising-edge anchors — the mode used by the
	// conformance round-trip, where each segment is one chart witness.
	AlignTraces bool
	// Clock names the clock of mined single-clock charts. Default "clk".
	// Multi-clock corpora use the domain name instead.
	Clock string
	// ChartName is the base name for mined charts. Default "mined".
	ChartName string
	// Seed drives mutant sampling during validation.
	Seed int64
	// MinKill is the near-miss mutant kill rate the validation gate
	// demands. Default 0.95.
	MinKill float64
	// MutantsPerMarker caps the windows mutated per marker. Default 4.
	MutantsPerMarker int
}

func (cfg Config) withDefaults() Config {
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 3
	}
	if cfg.Confidence <= 0 {
		cfg.Confidence = 1.0
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 8
	}
	if cfg.Clock == "" {
		cfg.Clock = "clk"
	}
	if cfg.ChartName == "" {
		cfg.ChartName = "mined"
	}
	if cfg.MinKill <= 0 {
		cfg.MinKill = 0.95
	}
	if cfg.MutantsPerMarker <= 0 {
		cfg.MutantsPerMarker = 4
	}
	return cfg
}

// Mined is one inferred pattern in both of its chart views: the linear
// scenario SCESC carrying every grid line plus the causality arrows
// (the paper's Fig. 6 idiom, run in detect mode), and the implication
// chart asserting "whenever the anchor line matches, the remaining
// lines must follow" (the view the validation gate monitors for
// violations).
type Mined struct {
	// Name is the scenario chart name.
	Name string
	// Anchor is the rising-edge anchor event ("" in trace-aligned mode).
	Anchor string
	// Domain is the clock domain mined from ("" for single-clock).
	Domain string
	// Support is the number of anchor windows the pattern was mined from.
	Support int
	// Scenario is the linear SCESC view (all lines, labels, arrows).
	Scenario *chart.SCESC
	// Assert is the implication view used by the validation gate.
	Assert *chart.Implies

	// windows are the anchor positions the pattern was mined from,
	// retained for validation-time mutant construction.
	windows []anchorAt
}

type anchorAt struct {
	seg  int // index into the mined segment slice
	tick int
}

// Source renders both chart views as one canonical .cesc file.
func (m *Mined) Source() string {
	return parser.Print(m.Name, m.Scenario) + parser.Print(m.Name+"_assert", m.Assert)
}

// Mine infers charts from the corpus. Single-clock corpora are mined
// directly; domain-tagged corpora are mined per clock domain with the
// domain name as the chart clock. Results are deterministic for a given
// corpus and config, sorted by chart name, and every emitted chart is
// guaranteed to round-trip the printer and the parser.
func Mine(c *Corpus, cfg Config) ([]*Mined, error) {
	cfg = cfg.withDefaults()
	var out []*Mined
	if len(c.Domains) > 0 {
		for _, d := range c.DomainNames() {
			sub := cfg
			sub.Clock = d
			sub.ChartName = cfg.ChartName + "_" + sanitizeIdent(d)
			ms, err := mineSegments(c.Domains[d], sub)
			if err != nil {
				return nil, err
			}
			for _, m := range ms {
				m.Domain = d
			}
			out = append(out, ms...)
		}
	} else {
		ms, err := mineSegments(c.Segments, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// MineValidated runs the full pipeline — mine, shrink, validate — and
// returns every mined chart with its gate verdict (aligned slices).
// Only charts whose Result.Pass is true should be trusted; shrinking
// has already been applied in place.
func MineValidated(c *Corpus, cfg Config) ([]*Mined, []*Result, error) {
	ms, err := Mine(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	results := make([]*Result, len(ms))
	for i, m := range ms {
		results[i] = Shrink(m, c, cfg)
		if results[i].Pass {
			if err := checkRoundTrip(m); err != nil {
				return nil, nil, err
			}
		}
	}
	return ms, results, nil
}

// mineSegments runs anchor discovery and window statistics over one
// segment set.
func mineSegments(segs []trace.Trace, cfg Config) ([]*Mined, error) {
	events, props := segmentSymbols(segs)
	if len(events) == 0 {
		return nil, nil
	}

	type candidate struct {
		anchor  string
		windows []anchorAt
	}
	var cands []candidate
	if cfg.AlignTraces {
		var ws []anchorAt
		for i, seg := range segs {
			if len(seg) > 0 {
				ws = append(ws, anchorAt{seg: i, tick: 0})
			}
		}
		cands = append(cands, candidate{anchor: "", windows: ws})
	} else {
		for _, a := range events {
			var ws []anchorAt
			for i, seg := range segs {
				for t, st := range seg {
					if st.Events[a] && (t == 0 || !seg[t-1].Events[a]) {
						ws = append(ws, anchorAt{seg: i, tick: t})
					}
				}
			}
			cands = append(cands, candidate{anchor: a, windows: ws})
		}
	}

	var out []*Mined
	seen := map[string]bool{}
	for _, cand := range cands {
		if len(cand.windows) < cfg.MinSupport {
			continue
		}
		m := minePattern(segs, events, props, cand.anchor, cand.windows, cfg)
		if m == nil {
			continue
		}
		key := patternKey(m.Scenario)
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := checkRoundTrip(m); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// minePattern computes the per-offset invariants of one anchor's aligned
// windows and assembles the two chart views. Returns nil when no pattern
// of length ≥ 2 clears the thresholds.
func minePattern(segs []trace.Trace, events, props []string, anchor string, windows []anchorAt, cfg Config) *Mined {
	W := cfg.MaxWindow
	cover := make([]int, W)
	pos := make([]map[string]int, W)
	propTrue := make([]map[string]int, W)
	for d := 0; d < W; d++ {
		pos[d] = map[string]int{}
		propTrue[d] = map[string]int{}
	}
	for _, w := range windows {
		seg := segs[w.seg]
		for d := 0; d < W && w.tick+d < len(seg); d++ {
			cover[d]++
			st := seg[w.tick+d]
			for e, v := range st.Events {
				if v {
					pos[d][e]++
				}
			}
			for p, v := range st.Props {
				if v {
					propTrue[d][p]++
				}
			}
		}
	}

	// A grid line exists at offset d when enough windows still cover it;
	// the pattern ends at the last offset holding a positive marker.
	type marker struct {
		event   string
		negated bool
	}
	lines := make([][]marker, 0, W)
	conds := make([][]expr.Expr, 0, W)
	last := -1
	for d := 0; d < W; d++ {
		if cover[d] < cfg.MinSupport {
			break
		}
		var ms []marker
		for _, e := range events {
			n := pos[d][e]
			if n > 0 && float64(n) >= cfg.Confidence*float64(cover[d]) {
				ms = append(ms, marker{event: e})
				last = d
			} else if cfg.Negatives && n == 0 {
				ms = append(ms, marker{event: e, negated: true})
			}
		}
		var cs []expr.Expr
		for _, p := range props {
			switch propTrue[d][p] {
			case cover[d]:
				cs = append(cs, expr.Pr(p))
			case 0:
				cs = append(cs, expr.Not(expr.Pr(p)))
			}
		}
		lines = append(lines, ms)
		conds = append(conds, cs)
	}
	if last < 1 {
		return nil // no consequent: nothing worth asserting
	}
	L := last + 1
	lines = lines[:L]
	conds = conds[:L]
	if anchor != "" {
		found := false
		for _, m := range lines[0] {
			if !m.negated && m.event == anchor {
				found = true
			}
		}
		if !found {
			return nil // anchor fell below confidence on its own line
		}
	}

	// Causality arrows: anchor → marker (e, d≥1) when the inverse
	// confidence clears the bar — every occurrence of e is explained by
	// an anchor window d ticks earlier, so the pair is uniquely
	// positioned rather than coincidentally aligned.
	arrowTo := map[int]map[string]bool{}
	if anchor != "" {
		anchorAtTick := map[[2]int]bool{}
		for _, w := range windows {
			anchorAtTick[[2]int{w.seg, w.tick}] = true
		}
		for d := 1; d < L; d++ {
			for _, m := range lines[d] {
				if m.negated {
					continue
				}
				total, explained := 0, 0
				for si, seg := range segs {
					for t, st := range seg {
						if st.Events[m.event] {
							total++
							if t-d >= 0 && anchorAtTick[[2]int{si, t - d}] {
								explained++
							}
						}
					}
				}
				if total > 0 && float64(explained) >= cfg.Confidence*float64(total) {
					if arrowTo[d] == nil {
						arrowTo[d] = map[string]bool{}
					}
					arrowTo[d][m.event] = true
				}
			}
		}
	}

	// Assemble the scenario SCESC.
	name := cfg.ChartName
	if anchor != "" {
		name = cfg.ChartName + "_" + sanitizeIdent(strings.ToLower(anchor))
	}
	sc := &chart.SCESC{ChartName: name, Clock: cfg.Clock}
	anchorLabel := ""
	var arrows []chart.Arrow
	for d := 0; d < L; d++ {
		var gl chart.GridLine
		for _, m := range lines[d] {
			es := chart.EventSpec{Event: m.event, Negated: m.negated}
			if !m.negated {
				if d == 0 && m.event == anchor {
					anchorLabel = labelFor(d, m.event)
					es.Label = anchorLabel
				} else if arrowTo[d][m.event] {
					es.Label = labelFor(d, m.event)
					arrows = append(arrows, chart.Arrow{From: anchorLabel, To: es.Label})
				}
			}
			gl.Events = append(gl.Events, es)
		}
		if cs := conds[d]; len(cs) > 0 {
			gl.Cond = expr.And(cs...)
		}
		sc.Lines = append(sc.Lines, gl)
	}
	if anchorLabel != "" {
		sc.Arrows = arrows
	}
	if err := sc.Validate(); err != nil {
		// Arrow labels can collide with marker defaults on adversarial
		// corpora; retry without arrows before giving up.
		sc = stripArrows(sc)
		if err := sc.Validate(); err != nil {
			return nil
		}
	}

	imp := buildAssert(sc)
	if err := imp.Validate(); err != nil {
		return nil
	}
	return &Mined{
		Name:     name,
		Anchor:   anchor,
		Support:  len(windows),
		Scenario: sc,
		Assert:   imp,
		windows:  windows,
	}
}

// buildAssert derives the implication view from a scenario SCESC: line 0
// becomes the trigger, the remaining lines the consequent (MaxDelay 0).
// Arrows cannot span the trigger/consequent split, so only arrows whose
// endpoints both sit in the consequent survive (none, for anchor-rooted
// arrows); labels are kept.
func buildAssert(sc *chart.SCESC) *chart.Implies {
	trig := &chart.SCESC{
		ChartName: sc.ChartName + "_trig",
		Clock:     sc.Clock,
		Instances: append([]string(nil), sc.Instances...),
		Lines:     cloneLines(sc.Lines[:1]),
	}
	cons := &chart.SCESC{
		ChartName: sc.ChartName + "_cons",
		Clock:     sc.Clock,
		Instances: append([]string(nil), sc.Instances...),
		Lines:     cloneLines(sc.Lines[1:]),
	}
	return &chart.Implies{
		ChartName:  sc.ChartName + "_assert",
		Trigger:    trig,
		Consequent: cons,
	}
}

func cloneLines(lines []chart.GridLine) []chart.GridLine {
	out := make([]chart.GridLine, len(lines))
	for i, l := range lines {
		out[i].Events = append([]chart.EventSpec(nil), l.Events...)
		out[i].Cond = l.Cond
	}
	return out
}

// stripArrows returns a copy of sc without arrows or labels.
func stripArrows(sc *chart.SCESC) *chart.SCESC {
	out := &chart.SCESC{
		ChartName: sc.ChartName,
		Clock:     sc.Clock,
		Instances: append([]string(nil), sc.Instances...),
		Lines:     cloneLines(sc.Lines),
	}
	for i := range out.Lines {
		for j := range out.Lines[i].Events {
			out.Lines[i].Events[j].Label = ""
		}
	}
	return out
}

// patternKey canonicalizes a scenario chart for deduplication: two
// anchors rising on the same tick mine the same marker content and
// differ only in name, labels and arrows, so the key strips all three.
func patternKey(sc *chart.SCESC) string {
	k := stripArrows(sc)
	k.ChartName = "k"
	return parser.Print("k", k)
}

// labelFor names a marker label deterministically from its offset and
// event. The "m<d>_" prefix keeps labels distinct from event symbols in
// well-behaved corpora; collisions on adversarial corpora are caught by
// Validate and resolved by dropping arrows.
func labelFor(d int, ev string) string {
	return fmt.Sprintf("m%d_%s", d, sanitizeIdent(strings.ToLower(ev)))
}

// sanitizeIdent maps an arbitrary symbol to a CESC identifier.
func sanitizeIdent(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('x')
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// segmentSymbols lists the event and prop names in the segment set.
func segmentSymbols(segs []trace.Trace) (events, props []string) {
	c := Corpus{Segments: segs}
	return c.Symbols()
}

// checkRoundTrip asserts the mined charts survive print → parse →
// print byte-identically — the guarantee FuzzMine leans on.
func checkRoundTrip(m *Mined) error {
	src := m.Source()
	f, err := parser.Parse(src)
	if err != nil {
		return fmt.Errorf("mined chart %s does not re-parse: %w\n%s", m.Name, err, src)
	}
	if len(f.Charts) != 2 {
		return fmt.Errorf("mined chart %s: expected 2 charts in source, got %d", m.Name, len(f.Charts))
	}
	again := parser.Print(f.Charts[0].Name, f.Charts[0].Chart) + parser.Print(f.Charts[1].Name, f.Charts[1].Chart)
	if again != src {
		return fmt.Errorf("mined chart %s does not round-trip the printer", m.Name)
	}
	return nil
}
