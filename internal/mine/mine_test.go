package mine

import (
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/axi"
	"repro/internal/ocp"
	"repro/internal/trace"
)

// modelCorpus builds a mixed-gap corpus so fixed-period artifacts (the
// next transaction starting a constant number of idle cycles after the
// previous one) do not masquerade as invariants.
func axiCorpus() *Corpus {
	var segs []trace.Trace
	for gap := 1; gap <= 4; gap++ {
		m := axi.NewModel(axi.Config{Gap: gap, Seed: int64(gap)})
		segs = append(segs, m.GenerateTrace(200))
	}
	return &Corpus{Segments: segs}
}

func ocpCorpus() *Corpus {
	var segs []trace.Trace
	for gap := 1; gap <= 4; gap++ {
		m := ocp.NewModel(ocp.Config{Gap: gap, Seed: int64(gap)})
		segs = append(segs, m.GenerateTrace(160))
	}
	return &Corpus{Segments: segs}
}

func ahbCorpus() *Corpus {
	var segs []trace.Trace
	for gap := 1; gap <= 4; gap++ {
		m := amba.NewModel(amba.Config{Gap: gap, Seed: int64(gap)})
		segs = append(segs, m.GenerateTrace(160))
	}
	return &Corpus{Segments: segs}
}

// passing returns the charts that clear the validation gate.
func passing(t *testing.T, c *Corpus, cfg Config) []*Mined {
	t.Helper()
	ms, rs, err := MineValidated(c, cfg)
	if err != nil {
		t.Fatalf("MineValidated: %v", err)
	}
	var out []*Mined
	for i, m := range ms {
		if rs[i].Pass {
			out = append(out, m)
		} else {
			t.Logf("rejected %s: %s", m.Name, rs[i].Reason)
		}
	}
	return out
}

// TestMineAXIBurst recovers the AXI4 burst-read structure: the address
// handshake line, a latency line, four beat lines with RLAST closing,
// and a causality arrow from the handshake to the last beat.
func TestMineAXIBurst(t *testing.T) {
	got := passing(t, axiCorpus(), Config{ChartName: "axi", Clock: "aclk"})
	if len(got) == 0 {
		t.Fatalf("no chart cleared the gate")
	}
	var burst *Mined
	for _, m := range got {
		if len(m.Scenario.Lines) == 1+(axi.RespLatency-1)+axi.BurstLen {
			burst = m
		}
	}
	if burst == nil {
		t.Fatalf("no full burst pattern mined (got %d charts)", len(got))
	}
	if n := len(burst.Scenario.Lines[0].Events); n != 3 {
		t.Fatalf("handshake line has %d markers, want 3\n%s", n, burst.Source())
	}
	if n := len(burst.Scenario.Lines[1].Events); n != 0 {
		t.Fatalf("latency line has %d markers, want 0\n%s", n, burst.Source())
	}
	lastLine := burst.Scenario.Lines[len(burst.Scenario.Lines)-1]
	found := false
	for _, es := range lastLine.Events {
		if es.Event == axi.EvRLast {
			found = true
		}
	}
	if !found {
		t.Fatalf("RLAST missing from final line\n%s", burst.Source())
	}
	if len(burst.Scenario.Arrows) == 0 {
		t.Fatalf("no causality arrow mined\n%s", burst.Source())
	}
	hasRLastArrow := false
	for _, a := range burst.Scenario.Arrows {
		if strings.Contains(a.To, "rlast") {
			hasRLastArrow = true
		}
	}
	if !hasRLastArrow {
		t.Fatalf("expected handshake→RLAST arrow, got %v", burst.Scenario.Arrows)
	}
}

// TestMineOCPFig6 recovers the paper's Fig. 6 shape: command/address/
// accept on one line, response with data on the next.
func TestMineOCPFig6(t *testing.T) {
	got := passing(t, ocpCorpus(), Config{ChartName: "ocp", Clock: "ocp_clk"})
	var fig6 *Mined
	for _, m := range got {
		if len(m.Scenario.Lines) == 2 && len(m.Scenario.Lines[0].Events) == 3 {
			fig6 = m
		}
	}
	if fig6 == nil {
		t.Fatalf("Fig. 6 pattern not mined (%d passing charts)", len(got))
	}
	line1 := map[string]bool{}
	for _, es := range fig6.Scenario.Lines[1].Events {
		line1[es.Event] = true
	}
	if !line1[ocp.EvSResp] || !line1[ocp.EvSData] {
		t.Fatalf("response line missing SResp/SData\n%s", fig6.Source())
	}
}

// TestMineAHBCLI recovers the 3-cycle AHB CLI transaction with the
// closing master_response uniquely positioned (arrow target).
func TestMineAHBCLI(t *testing.T) {
	got := passing(t, ahbCorpus(), Config{ChartName: "ahb", Clock: "ahb_clk"})
	var cli *Mined
	for _, m := range got {
		if len(m.Scenario.Lines) == 3 {
			cli = m
		}
	}
	if cli == nil {
		t.Fatalf("CLI pattern not mined (%d passing charts)", len(got))
	}
	if n := len(cli.Scenario.Lines[0].Events); n != 5 {
		t.Fatalf("setup line has %d markers, want 5\n%s", n, cli.Source())
	}
	last := cli.Scenario.Lines[2].Events
	if len(last) != 1 || last[0].Event != amba.EvMasterResponse {
		t.Fatalf("closing line should be master_response alone\n%s", cli.Source())
	}
	arrowed := false
	for _, a := range cli.Scenario.Arrows {
		if strings.Contains(a.To, "master_response") {
			arrowed = true
		}
	}
	if !arrowed {
		t.Fatalf("no arrow to master_response\n%s", cli.Source())
	}
}

// TestMineRejectsFaultyCorpusPatterns mines a corpus with injected
// faults: the gate must reject any pattern the faults contradict, and
// the clean-corpus invariants must survive at reduced confidence.
func TestMineFaultyCorpusLowersConfidence(t *testing.T) {
	var segs []trace.Trace
	for gap := 1; gap <= 4; gap++ {
		m := axi.NewModel(axi.Config{Gap: gap, Seed: int64(gap), FaultRate: 0.3})
		segs = append(segs, m.GenerateTrace(200))
	}
	c := &Corpus{Segments: segs}
	// At full confidence the faulty beats break the window invariants.
	strict, _, err := MineValidated(c, Config{ChartName: "axf"})
	if err != nil {
		t.Fatalf("MineValidated: %v", err)
	}
	for _, m := range strict {
		if len(m.Scenario.Lines) == 6 {
			t.Fatalf("full burst pattern should not survive confidence 1.0 on a faulty corpus")
		}
	}
}

// TestMineDeterministic asserts byte-identical output across runs.
func TestMineDeterministic(t *testing.T) {
	c := axiCorpus()
	a, ra, err := MineValidated(c, Config{ChartName: "axi"})
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := MineValidated(axiCorpus(), Config{ChartName: "axi"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source() != b[i].Source() {
			t.Fatalf("chart %d differs across runs", i)
		}
		if ra[i].Pass != rb[i].Pass || ra[i].Killed != rb[i].Killed || ra[i].Mutants != rb[i].Mutants {
			t.Fatalf("result %d differs across runs", i)
		}
	}
}

// TestValidateCountsMutants sanity-checks the discrimination half of
// the gate on the AXI corpus.
func TestValidateCountsMutants(t *testing.T) {
	c := axiCorpus()
	ms, rs, err := MineValidated(c, Config{ChartName: "axi"})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if !rs[i].Pass {
			continue
		}
		if rs[i].Mutants == 0 {
			t.Fatalf("%s passed with zero mutants", m.Name)
		}
		if rs[i].KillRate() < 0.95 {
			t.Fatalf("%s passed with kill rate %.2f", m.Name, rs[i].KillRate())
		}
		if rs[i].Accepts < m.Support/2 {
			t.Fatalf("%s accepts %d, support %d", m.Name, rs[i].Accepts, m.Support)
		}
	}
}
