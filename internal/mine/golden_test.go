package mine

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/axi"
	"repro/internal/event"
	"repro/internal/ocp"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "regenerate testdata/corpus and golden mined charts")

// corpusDir is the checked-in mining corpus shared with `make minetest`
// and the cescmine CLI smoke.
const corpusDir = "../../testdata/corpus"

// goldenCorpora defines the checked-in corpora: each is generated from
// a protocol model at mixed gaps (fixed per segment, varied across
// segments, so fixed-period artifacts cannot clear confidence 1.0) and
// mined with the default thresholds.
var goldenCorpora = []struct {
	file string // NDJSON corpus basename
	cfg  Config
	gen  func() []trace.Trace
	// minPass is the number of charts that must clear the gate.
	minPass int
}{
	{
		file: "ocp_fig6_read.ndjson",
		cfg:  Config{ChartName: "ocp_read", Clock: "ocp_clk", Seed: 1},
		gen: func() []trace.Trace {
			return modelSegments(func(gap int) stepper { return ocp.NewModel(ocp.Config{Gap: gap, Seed: int64(gap)}) }, 160)
		},
		minPass: 1,
	},
	{
		file: "ahb_cli.ndjson",
		cfg:  Config{ChartName: "ahb_cli", Clock: "ahb_clk", Seed: 1},
		gen: func() []trace.Trace {
			return modelSegments(func(gap int) stepper { return amba.NewModel(amba.Config{Gap: gap, Seed: int64(gap)}) }, 160)
		},
		minPass: 1,
	},
	{
		file: "axi4_burst.ndjson",
		cfg:  Config{ChartName: "axi4_burst", Clock: "aclk", Seed: 1},
		gen: func() []trace.Trace {
			return modelSegments(func(gap int) stepper { return axi.NewModel(axi.Config{Gap: gap, Seed: int64(gap)}) }, 200)
		},
		minPass: 1,
	},
}

type stepper interface{ GenerateTrace(n int) trace.Trace }

func modelSegments(mk func(gap int) stepper, n int) []trace.Trace {
	var segs []trace.Trace
	for gap := 1; gap <= 6; gap++ {
		segs = append(segs, mk(gap).GenerateTrace(n))
	}
	return segs
}

// encodeCorpus renders segments in the NDJSON corpus format (sorted
// event lists, blank-line segment separators) — the same wire format
// the daemon ingests.
func encodeCorpus(segs []trace.Trace) []byte {
	var b bytes.Buffer
	for i, seg := range segs {
		if i > 0 {
			b.WriteByte('\n')
		}
		for _, st := range seg {
			b.WriteString(encodeStateLine(st))
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

// encodeStateLine renders one tick as the daemon's StateJSON wire form
// (sorted, stable). Kept local: importing internal/server here would
// cycle through its mine dependency.
func encodeStateLine(st event.State) string {
	var evs, prs []string
	for e, v := range st.Events {
		if v {
			evs = append(evs, e)
		}
	}
	for p, v := range st.Props {
		if v {
			prs = append(prs, p)
		}
	}
	sort.Strings(evs)
	sort.Strings(prs)
	var b strings.Builder
	b.WriteByte('{')
	if len(evs) > 0 {
		b.WriteString(`"events":[`)
		for i, e := range evs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q", e)
		}
		b.WriteByte(']')
	}
	if len(prs) > 0 {
		if len(evs) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`"props":{`)
		for i, p := range prs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q:true", p)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

func TestGoldenCorpora(t *testing.T) {
	for _, g := range goldenCorpora {
		g := g
		t.Run(strings.TrimSuffix(g.file, ".ndjson"), func(t *testing.T) {
			path := filepath.Join(corpusDir, g.file)
			if *update {
				if err := os.MkdirAll(corpusDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, encodeCorpus(g.gen()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("corpus missing (run with -update to regenerate): %v", err)
			}
			// The checked-in corpus must be byte-identical to the model run:
			// the corpus is itself a regression artifact.
			if want := encodeCorpus(g.gen()); !bytes.Equal(raw, want) {
				t.Fatalf("%s drifted from its generating model (run with -update)", g.file)
			}
			c, err := ReadNDJSON(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadNDJSON: %v", err)
			}

			ms, rs, err := MineValidated(c, g.cfg)
			if err != nil {
				t.Fatalf("MineValidated: %v", err)
			}
			var srcs []string
			pass := 0
			for i, m := range ms {
				if !rs[i].Pass {
					t.Logf("gate rejected %s: %s", m.Name, rs[i].Reason)
					continue
				}
				pass++
				// Acceptance gate: zero violations, ≥95% mutant kill.
				if rs[i].Violations != 0 || rs[i].OracleViolations != 0 {
					t.Errorf("%s: violations on own corpus", m.Name)
				}
				if rs[i].KillRate() < 0.95 {
					t.Errorf("%s: kill rate %.2f", m.Name, rs[i].KillRate())
				}
				srcs = append(srcs, fmt.Sprintf("// support=%d accepts=%d mutants=%d killed=%d\n%s",
					m.Support, rs[i].Accepts, rs[i].Mutants, rs[i].Killed, m.Source()))
			}
			if pass < g.minPass {
				t.Fatalf("only %d charts cleared the gate, want >= %d", pass, g.minPass)
			}
			goldenPath := filepath.Join(corpusDir, "golden", strings.TrimSuffix(g.file, ".ndjson")+".cesc")
			got := strings.Join(srcs, "\n")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("golden missing (run with -update): %v", err)
			}
			// Byte-stable mining on fixed seeds.
			if got != string(want) {
				t.Fatalf("mined output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestGoldenVCDRoundTrip writes the OCP corpus's first segment as VCD,
// reads it back through the streaming decoder, and checks mining sees
// the same Fig. 6 pattern — exercising the second ingest format
// end-to-end against a checked-in .vcd file.
func TestGoldenVCDRoundTrip(t *testing.T) {
	path := filepath.Join(corpusDir, "ocp_fig6_read.vcd")
	seg := modelSegments(func(gap int) stepper { return ocp.NewModel(ocp.Config{Gap: gap, Seed: int64(gap)}) }, 160)[0]
	if *update {
		var b bytes.Buffer
		if err := trace.WriteVCD(&b, "ocp", seg); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("vcd corpus missing (run with -update): %v", err)
	}
	defer f.Close()
	c, err := ReadVCD(f, nil)
	if err != nil {
		t.Fatalf("ReadVCD: %v", err)
	}
	if c.Ticks() != len(seg) {
		t.Fatalf("vcd decoded %d ticks, want %d", c.Ticks(), len(seg))
	}
	for i, st := range c.Segments[0] {
		if !st.Equal(seg[i]) {
			t.Fatalf("vcd tick %d differs from model", i)
		}
	}
}
