package verif

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Report summarizes a fault-injection campaign (experiments E6-E8, E12):
// a protocol model generates a long run with a configurable fraction of
// faulty transactions, and the synthesized monitor's detections are
// compared against the injected ground truth.
type Report struct {
	// Cycles is the simulated cycle count.
	Cycles int
	// Transactions and Faulted come from the model's ground truth.
	Transactions, Faulted int
	// Accepts is the number of scenario windows the monitor detected.
	Accepts int
	// Violations is the assert-mode violation count.
	Violations int
	// ScoreboardOps counts Add/Del operations performed.
	ScoreboardOps uint64
	// StateCoverage and TransitionCoverage are the monitor's structural
	// coverage over the campaign.
	StateCoverage, TransitionCoverage float64
	// Diagnostics holds violation reports (assert mode, capped).
	Diagnostics []monitor.Diagnostic
}

// Clean returns the number of fault-free transactions.
func (r Report) Clean() int { return r.Transactions - r.Faulted }

// DetectionRate is the fraction of clean transactions detected (a
// correct detector scores 1.0: every clean transaction's window is
// found, and no faulty transaction produces one).
func (r Report) DetectionRate() float64 {
	if r.Clean() == 0 {
		return 0
	}
	return float64(r.Accepts) / float64(r.Clean())
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("cycles=%d transactions=%d faulted=%d accepts=%d violations=%d detection=%.3f sbops=%d statecov=%.2f transcov=%.2f",
		r.Cycles, r.Transactions, r.Faulted, r.Accepts, r.Violations, r.DetectionRate(),
		r.ScoreboardOps, r.StateCoverage, r.TransitionCoverage)
}

// groundTruth is the model-side interface campaigns need.
type groundTruth interface {
	Step() event.State
	Issued() int
	Faulted() int
}

// runCampaign drives any model against a synthesized monitor with
// coverage collection and (in assert mode) violation diagnostics.
func runCampaign(mon *monitor.Monitor, model groundTruth, cycles int, mode monitor.Mode) Report {
	eng := NewCoveredEngine(mon, nil, mode)
	if mode == monitor.ModeAssert {
		eng.EnableDiagnostics(8)
	}
	for i := 0; i < cycles; i++ {
		eng.Step(model.Step())
	}
	st := eng.Stats()
	return Report{
		Cycles:             cycles,
		Transactions:       model.Issued(),
		Faulted:            model.Faulted(),
		Accepts:            st.Accepts,
		Violations:         st.Violations,
		ScoreboardOps:      eng.Scoreboard().Ops(),
		StateCoverage:      eng.Cov.StateCoverage(),
		TransitionCoverage: eng.Cov.TransitionCoverage(),
		Diagnostics:        eng.Diagnostics(),
	}
}

// RunOCPCampaign synthesizes the monitor for the OCP chart matching the
// configuration (simple read, posted write, or pipelined burst read),
// generates cycles of traffic from the model, and reports detections
// against ground truth.
func RunOCPCampaign(cfg ocp.Config, cycles int, mode monitor.Mode) (Report, error) {
	var ch chart.Chart = ocp.SimpleReadChart()
	switch {
	case cfg.Burst:
		ch = ocp.BurstReadChart()
	case cfg.Write && cfg.AcceptDelay > 0:
		ch = ocp.HandshakeChart(cfg.AcceptDelay)
	case cfg.Write:
		ch = ocp.WriteChart()
	}
	mon, err := synth.Synthesize(ch, nil)
	if err != nil {
		return Report{}, err
	}
	return runCampaign(mon, ocp.NewModel(cfg), cycles, mode), nil
}

// RunAMBACampaign is RunOCPCampaign for the AHB CLI transaction charts
// (write by default, read when cfg.Read is set).
func RunAMBACampaign(cfg amba.Config, cycles int, mode monitor.Mode) (Report, error) {
	ch := amba.TransactionChart()
	if cfg.Read {
		ch = amba.ReadChart()
	}
	mon, err := synth.Translate(ch, nil)
	if err != nil {
		return Report{}, err
	}
	return runCampaign(mon, amba.NewModel(cfg), cycles, mode), nil
}

// ParityResult compares a synthesized monitor against a manual baseline
// on the same trace (experiment E10).
type ParityResult struct {
	SynthAccepts  []int
	ManualAccepts []int
}

// Agree reports whether both detectors accepted at identical ticks.
func (p ParityResult) Agree() bool {
	if len(p.SynthAccepts) != len(p.ManualAccepts) {
		return false
	}
	for i := range p.SynthAccepts {
		if p.SynthAccepts[i] != p.ManualAccepts[i] {
			return false
		}
	}
	return true
}

// OCPSimpleReadParity runs the synthesized Fig. 6 monitor and the manual
// checker over the same trace.
func OCPSimpleReadParity(tr trace.Trace) (ParityResult, error) {
	mon, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		return ParityResult{}, err
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	manual := &ManualOCPSimpleRead{}
	res := ParityResult{
		SynthAccepts: EngineAcceptTicks(eng, tr),
		ManualAccepts: AcceptTicks(tr, func(i int) bool {
			return manual.Step(tr[i])
		}),
	}
	return res, nil
}

// OCPBurstReadParity is the Fig. 7 counterpart.
func OCPBurstReadParity(tr trace.Trace) (ParityResult, error) {
	mon, err := synth.Translate(ocp.BurstReadChart(), nil)
	if err != nil {
		return ParityResult{}, err
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	manual := &ManualOCPBurstRead{}
	res := ParityResult{
		SynthAccepts: EngineAcceptTicks(eng, tr),
		ManualAccepts: AcceptTicks(tr, func(i int) bool {
			return manual.Step(tr[i])
		}),
	}
	return res, nil
}

// AHBTransactionParity is the Fig. 8 counterpart.
func AHBTransactionParity(tr trace.Trace) (ParityResult, error) {
	mon, err := synth.Translate(amba.TransactionChart(), nil)
	if err != nil {
		return ParityResult{}, err
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	manual := &ManualAHBTransaction{}
	res := ParityResult{
		SynthAccepts: EngineAcceptTicks(eng, tr),
		ManualAccepts: AcceptTicks(tr, func(i int) bool {
			return manual.Step(tr[i])
		}),
	}
	return res, nil
}
