package verif

import (
	"repro/internal/amba"
	"repro/internal/event"
	"repro/internal/ocp"
)

// The manual monitors below are the baseline the paper argues against:
// checkers hand-written in a native language for each scenario. They are
// written the way a verification engineer would write them — explicit
// state variables and if-ladders — and are compared against the
// synthesized monitors for accept-tick parity (experiment E10) and
// throughput (BenchmarkBaseline*).

// ManualOCPSimpleRead detects the Fig. 6 scenario: request+address+accept
// on one cycle, response+data on the next.
type ManualOCPSimpleRead struct {
	pending bool
	accepts int
}

// Step consumes one cycle, reporting whether the scenario completed here.
func (m *ManualOCPSimpleRead) Step(s event.State) bool {
	hit := false
	if m.pending && s.Event(ocp.EvSResp) && s.Event(ocp.EvSData) {
		m.accepts++
		hit = true
	}
	m.pending = s.Event(ocp.EvMCmdRd) && s.Event(ocp.EvAddr) && s.Event(ocp.EvSCmdAccept)
	return hit
}

// Accepts counts detected scenarios.
func (m *ManualOCPSimpleRead) Accepts() int { return m.accepts }

// ManualOCPBurstRead detects the Fig. 7 pipelined burst read of length 4.
type ManualOCPBurstRead struct {
	// stage is the number of consecutive matching cycles seen (0..6).
	stage   int
	accepts int
}

// Step consumes one cycle.
func (m *ManualOCPBurstRead) Step(s event.State) bool {
	resp := s.Event(ocp.EvSResp) && s.Event(ocp.EvSData)
	req := func(burst string) bool {
		return s.Event(ocp.EvBMCmdRd) && s.Event(burst) && s.Event(ocp.EvAddr)
	}
	anchor := req(ocp.EvBurst4) && s.Event(ocp.EvSCmdAccept)
	var ok bool
	switch m.stage {
	case 0:
		ok = anchor
	case 1:
		ok = req(ocp.EvBurst3)
	case 2:
		ok = req(ocp.EvBurst2) && resp
	case 3:
		ok = req(ocp.EvBurst1) && resp
	case 4, 5:
		ok = resp
	}
	if ok {
		m.stage++
		if m.stage == 6 {
			m.accepts++
			m.stage = 0
			return true
		}
		return false
	}
	// Mismatch: maybe this cycle anchors a new attempt.
	if anchor {
		m.stage = 1
	} else {
		m.stage = 0
	}
	return false
}

// Accepts counts detected scenarios.
func (m *ManualOCPBurstRead) Accepts() int { return m.accepts }

// ManualAHBTransaction detects the Fig. 8 AHB CLI write transaction.
type ManualAHBTransaction struct {
	stage   int
	accepts int
}

// Step consumes one bus cycle.
func (m *ManualAHBTransaction) Step(s event.State) bool {
	setup := s.Event(amba.EvInitTransaction) && s.Event(amba.EvMasterComplete) &&
		s.Event(amba.EvGetSlave) && s.Event(amba.EvWrite) && s.Event(amba.EvControlInfo)
	data := s.Event(amba.EvMasterSetData) && s.Event(amba.EvMasterComplete) &&
		s.Event(amba.EvBusSetData) && s.Event(amba.EvBusResponse)
	resp := s.Event(amba.EvMasterResponse)
	var ok bool
	switch m.stage {
	case 0:
		ok = setup
	case 1:
		ok = data
	case 2:
		ok = resp
	}
	if ok {
		m.stage++
		if m.stage == 3 {
			m.accepts++
			m.stage = 0
			return true
		}
		return false
	}
	if setup {
		m.stage = 1
	} else {
		m.stage = 0
	}
	return false
}

// Accepts counts detected transactions.
func (m *ManualAHBTransaction) Accepts() int { return m.accepts }
