package verif

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Bank runs a whole verification plan — many monitors, possibly in
// different modes — over one input stream, with per-monitor coverage.
// This is the executable form of the paper's "verification plan
// consisting of different scenarios specified as CESCs".
type Bank struct {
	names   []string
	engines []*CoveredEngine
}

// NewBank returns an empty bank.
func NewBank() *Bank { return &Bank{} }

// Add registers a monitor under a display name and returns its engine
// for detailed inspection. Diagnostics are armed for assert mode.
func (b *Bank) Add(name string, m *monitor.Monitor, mode monitor.Mode) *CoveredEngine {
	eng := NewCoveredEngine(m, nil, mode)
	if mode == monitor.ModeAssert {
		eng.EnableDiagnostics(8)
	}
	b.names = append(b.names, name)
	b.engines = append(b.engines, eng)
	return eng
}

// Len reports the number of registered monitors.
func (b *Bank) Len() int { return len(b.engines) }

// Step feeds one trace element to every monitor.
func (b *Bank) Step(s event.State) {
	for _, eng := range b.engines {
		eng.Step(s)
	}
}

// Run feeds a whole trace to every monitor.
func (b *Bank) Run(tr trace.Trace) {
	for _, s := range tr {
		b.Step(s)
	}
}

// Engine returns the engine registered under name (nil if unknown).
func (b *Bank) Engine(name string) *CoveredEngine {
	for i, n := range b.names {
		if n == name {
			return b.engines[i]
		}
	}
	return nil
}

// Failed reports whether any monitor recorded a violation.
func (b *Bank) Failed() bool {
	for _, eng := range b.engines {
		if eng.Stats().Violations > 0 {
			return true
		}
	}
	return false
}

// Summary renders one line per monitor: accepts, violations, coverage.
func (b *Bank) Summary() string {
	var sb strings.Builder
	width := 0
	for _, n := range b.names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i, n := range b.names {
		st := b.engines[i].Stats()
		verdict := "PASS"
		if st.Violations > 0 {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "%-*s accepts=%-6d violations=%-5d statecov=%.2f transcov=%.2f %s\n",
			width, n, st.Accepts, st.Violations,
			b.engines[i].Cov.StateCoverage(), b.engines[i].Cov.TransitionCoverage(), verdict)
	}
	return sb.String()
}

// AttachBank wires the bank to a simulator clock domain.
func AttachBank(s *sim.Simulator, domain string, b *Bank) {
	s.Observe(sim.ObserverFunc(func(t trace.GlobalTick) {
		if t.Domain == domain {
			b.Step(t.State)
		}
	}))
}
