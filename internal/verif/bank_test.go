package verif

import (
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/sim"
	"repro/internal/synth"
)

func TestBankRunsPlan(t *testing.T) {
	read, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	write, err := synth.Translate(ocp.WriteChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBank()
	b.Add("simple_read", read, monitor.ModeDetect)
	b.Add("simple_write", write, monitor.ModeDetect)
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	// Read-only traffic: the read monitor detects, the write monitor
	// stays silent.
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 91}).GenerateTrace(500)
	b.Run(tr)
	if b.Engine("simple_read").Stats().Accepts == 0 {
		t.Error("read monitor detected nothing")
	}
	if got := b.Engine("simple_write").Stats().Accepts; got != 0 {
		t.Errorf("write monitor detected %d on read traffic", got)
	}
	if b.Engine("nosuch") != nil {
		t.Error("unknown engine lookup returned non-nil")
	}
	sum := b.Summary()
	for _, want := range []string{"simple_read", "simple_write", "PASS"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	if b.Failed() {
		t.Error("detect-mode bank reported failure")
	}
}

func TestBankFlagsFailures(t *testing.T) {
	read, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBank()
	eng := b.Add("read_assert", read, monitor.ModeAssert)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 92, FaultRate: 1,
		FaultKinds: []ocp.FaultKind{ocp.FaultDropResponse}}).GenerateTrace(300)
	b.Run(tr)
	if !b.Failed() {
		t.Fatal("bank did not flag violations")
	}
	if len(eng.Diagnostics()) == 0 {
		t.Error("assert-mode bank entry has no diagnostics")
	}
	if !strings.Contains(b.Summary(), "FAIL") {
		t.Errorf("summary lacks FAIL:\n%s", b.Summary())
	}
}

func TestAttachBankToSimulator(t *testing.T) {
	read, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBank()
	b.Add("read", read, monitor.ModeDetect)
	s := sim.New()
	d := s.MustAddDomain("ocp_clk", 1, 0)
	model := ocp.NewModel(ocp.Config{Gap: 2, Seed: 93})
	d.AddProcess(model.Process())
	AttachBank(s, "ocp_clk", b)
	if err := s.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if b.Engine("read").Stats().Accepts < model.Issued()-1 {
		t.Errorf("bank accepts = %d for %d issued", b.Engine("read").Stats().Accepts, model.Issued())
	}
}
