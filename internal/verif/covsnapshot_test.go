package verif

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// TestCoverageSnapshotRoundTrip runs a covered engine halfway, moves the
// collector state through a snapshot into a fresh collector, finishes
// both, and demands identical coverage numbers.
func TestCoverageSnapshotRoundTrip(t *testing.T) {
	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 11, FaultRate: 0.2}).GenerateTrace(400)

	ref := NewCoveredEngine(m, nil, monitor.ModeAssert)
	for _, s := range tr[:250] {
		ref.Step(s)
	}
	snap := ref.Cov.Snapshot()
	restored := NewCoverage(m)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// NewCoverage pre-counts the initial state; Restore must overwrite,
	// not add. Feed both collectors the same remaining results.
	cont := monitor.NewEngine(m, nil, monitor.ModeAssert)
	if err := cont.Restore(ref.Engine.Snapshot()); err != nil {
		t.Fatal(err)
	}
	cont.Scoreboard().Restore(ref.Engine.Scoreboard().Snapshot())
	for _, s := range tr[250:] {
		restored.Record(cont.Step(s))
		ref.Step(s)
	}
	if restored.StateCoverage() != ref.Cov.StateCoverage() ||
		restored.TransitionCoverage() != ref.Cov.TransitionCoverage() ||
		restored.HardResets() != ref.Cov.HardResets() {
		t.Fatalf("coverage diverged: got %.4f/%.4f/%d, want %.4f/%.4f/%d",
			restored.StateCoverage(), restored.TransitionCoverage(), restored.HardResets(),
			ref.Cov.StateCoverage(), ref.Cov.TransitionCoverage(), ref.Cov.HardResets())
	}
	if got, want := restored.UncoveredTransitions(), ref.Cov.UncoveredTransitions(); len(got) != len(want) {
		t.Fatalf("uncovered = %v, want %v", got, want)
	}

	// Shape mismatches are rejected.
	other := NewCoverage(m)
	bad := snap
	bad.StateHits = bad.StateHits[:1]
	if err := other.Restore(bad); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}
