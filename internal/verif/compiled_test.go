package verif

import (
	"math/rand"
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// TestCompiledParityCaseStudies: the table-driven fast path and the
// interpreted engine accept at identical ticks on every case-study
// monitor over mixed clean/faulty traffic.
func TestCompiledParityCaseStudies(t *testing.T) {
	cases := []struct {
		name  string
		chart chart.Chart
		trace func() []event.State
	}{
		{"ocp-simple", ocp.SimpleReadChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 101, FaultRate: 0.3}).GenerateTrace(3000)
		}},
		{"ocp-burst", ocp.BurstReadChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 102, FaultRate: 0.3, Burst: true}).GenerateTrace(3000)
		}},
		{"ocp-write", ocp.WriteChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 103, FaultRate: 0.3, Write: true}).GenerateTrace(3000)
		}},
		{"ahb-write", amba.TransactionChart(), func() []event.State {
			return amba.NewModel(amba.Config{Gap: 1, Seed: 104, FaultRate: 0.3}).GenerateTrace(3000)
		}},
		{"ahb-read", amba.ReadChart(), func() []event.State {
			return amba.NewModel(amba.Config{Gap: 1, Seed: 105, FaultRate: 0.3, Read: true}).GenerateTrace(3000)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := synth.Synthesize(tc.chart, nil)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := monitor.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
			tr := tc.trace()
			for i, s := range tr {
				got := compiled.Step(s)
				want := eng.Step(s).Outcome == monitor.Accepted
				if got != want {
					t.Fatalf("tick %d: compiled=%v engine=%v", i, got, want)
				}
			}
			if compiled.Accepts() == 0 {
				t.Error("no acceptances exercised")
			}
		})
	}
}

// randGuard builds a random guard over the support symbols and the
// scoreboard event pool.
func randGuard(r *rand.Rand, sup []event.Symbol, chkPool []string, depth int) expr.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return expr.True
		case 1:
			return expr.False
		case 2, 3:
			sym := sup[r.Intn(len(sup))]
			if sym.Kind == event.KindEvent {
				return expr.Ev(sym.Name)
			}
			return expr.Pr(sym.Name)
		default:
			return expr.Chk(chkPool[r.Intn(len(chkPool))])
		}
	}
	switch r.Intn(3) {
	case 0:
		return expr.Not(randGuard(r, sup, chkPool, depth-1))
	case 1:
		return expr.And(randGuard(r, sup, chkPool, depth-1), randGuard(r, sup, chkPool, depth-1))
	default:
		return expr.Or(randGuard(r, sup, chkPool, depth-1), randGuard(r, sup, chkPool, depth-1))
	}
}

// randTotalMonitor builds a random total monitor: every state ends with
// a catch-all transition, so no input ever hard-resets the engine. (Hard
// resets reverse pending Add_evt entries in the interpreted/program
// engines but not in the table-driven Compiled — synthesized monitors
// are total, so the differential test constrains itself to that class.)
func randTotalMonitor(r *rand.Rand, sup []event.Symbol, chkPool []string) *monitor.Monitor {
	states := 3 + r.Intn(3)
	m := monitor.New("fuzz", "clk", states)
	randActions := func() []monitor.Action {
		var acts []monitor.Action
		for _, e := range chkPool {
			switch r.Intn(4) {
			case 0:
				acts = append(acts, monitor.Add(e))
			case 1:
				acts = append(acts, monitor.Del(e))
			}
		}
		return acts
	}
	for s := 0; s < states; s++ {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			m.AddTransition(s, monitor.Transition{
				To:      r.Intn(states),
				Guard:   randGuard(r, sup, chkPool, 3),
				Actions: randActions(),
			})
		}
		m.AddTransition(s, monitor.Transition{
			To:      r.Intn(states),
			Guard:   expr.True,
			Actions: randActions(),
		})
	}
	return m
}

// TestDifferentialEngines cross-checks four independent implementations
// of the paper's transition relation Tr over random total monitors and
// random tick streams: the interpreted AST engine, the compiled
// guard-program engine (both the map-input Step and the
// vocabulary-packed StepPacked path, the latter exercising slot
// remapping), and the table-driven Compiled. Verdicts, automaton
// states, accept counts, and scoreboard contents must agree tick for
// tick.
func TestDifferentialEngines(t *testing.T) {
	supSyms := []event.Symbol{
		{Name: "a", Kind: event.KindEvent},
		{Name: "b", Kind: event.KindEvent},
		{Name: "c", Kind: event.KindEvent},
		{Name: "p", Kind: event.KindProp},
	}
	chkPool := []string{"x", "y"}
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 150; iter++ {
		m := randTotalMonitor(r, supSyms, chkPool)
		prog, err := monitor.CompileProgram(m)
		if err != nil {
			t.Fatalf("iter %d: CompileProgram: %v", iter, err)
		}
		table, err := monitor.Compile(m)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", iter, err)
		}
		// Vocabulary with padding symbols declared first, so the packed
		// slot space differs from the support's and remapping is real.
		vocab := event.NewVocabulary()
		vocab.MustDeclare("pad0", event.KindEvent)
		vocab.MustDeclare("pad1", event.KindProp)
		if err := vocab.DeclareSupport(prog.Support()); err != nil {
			t.Fatalf("iter %d: DeclareSupport: %v", iter, err)
		}

		ast := monitor.NewEngine(m, nil, monitor.ModeDetect)
		pmap := prog.NewEngine(nil, monitor.ModeDetect)
		ppacked, err := prog.NewEngineVocab(nil, monitor.ModeDetect, vocab)
		if err != nil {
			t.Fatalf("iter %d: NewEngineVocab: %v", iter, err)
		}

		var buf event.Packed
		for tick := 0; tick < 120; tick++ {
			s := event.NewState()
			for _, sym := range supSyms {
				if r.Intn(2) == 0 {
					continue
				}
				if sym.Kind == event.KindEvent {
					s.Events[sym.Name] = true
				} else {
					s.Props[sym.Name] = true
				}
			}
			ra := ast.Step(s)
			rm := pmap.Step(s)
			buf = vocab.PackInto(s, buf)
			rp := ppacked.StepPacked(buf)
			tb := table.Step(s)

			if ra.Outcome != rm.Outcome || ra.Outcome != rp.Outcome ||
				ra.To != rm.To || ra.To != rp.To ||
				ra.TransIndex != rm.TransIndex || ra.TransIndex != rp.TransIndex {
				t.Fatalf("iter %d tick %d: step diverged on %s:\n ast=%+v\n prog=%+v\n packed=%+v\nmonitor:\n%s",
					iter, tick, s, ra, rm, rp, m)
			}
			if tb != (ra.Outcome == monitor.Accepted) {
				t.Fatalf("iter %d tick %d: table accept=%v, ast outcome=%v on %s\nmonitor:\n%s",
					iter, tick, tb, ra.Outcome, s, m)
			}
			if table.State() != ast.State() {
				t.Fatalf("iter %d tick %d: table state=%d, ast state=%d", iter, tick, table.State(), ast.State())
			}
			for _, e := range chkPool {
				na := ast.Scoreboard().Count(e)
				if nm := pmap.Scoreboard().Count(e); nm != na {
					t.Fatalf("iter %d tick %d: scoreboard[%s] ast=%d prog=%d", iter, tick, e, na, nm)
				}
				if np := ppacked.Scoreboard().Count(e); np != na {
					t.Fatalf("iter %d tick %d: scoreboard[%s] ast=%d packed=%d", iter, tick, e, na, np)
				}
				if nt := table.Count(e); nt != na {
					t.Fatalf("iter %d tick %d: scoreboard[%s] ast=%d table=%d", iter, tick, e, na, nt)
				}
			}
		}
		if ast.Stats().Accepts != table.Accepts() || ast.Stats().Accepts != pmap.Stats().Accepts ||
			ast.Stats().Accepts != ppacked.Stats().Accepts {
			t.Fatalf("iter %d: accept totals diverged: ast=%d prog=%d packed=%d table=%d",
				iter, ast.Stats().Accepts, pmap.Stats().Accepts, ppacked.Stats().Accepts, table.Accepts())
		}
	}
}
