package verif

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// TestCompiledParityCaseStudies: the table-driven fast path and the
// interpreted engine accept at identical ticks on every case-study
// monitor over mixed clean/faulty traffic.
func TestCompiledParityCaseStudies(t *testing.T) {
	cases := []struct {
		name  string
		chart chart.Chart
		trace func() []event.State
	}{
		{"ocp-simple", ocp.SimpleReadChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 101, FaultRate: 0.3}).GenerateTrace(3000)
		}},
		{"ocp-burst", ocp.BurstReadChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 102, FaultRate: 0.3, Burst: true}).GenerateTrace(3000)
		}},
		{"ocp-write", ocp.WriteChart(), func() []event.State {
			return ocp.NewModel(ocp.Config{Gap: 1, Seed: 103, FaultRate: 0.3, Write: true}).GenerateTrace(3000)
		}},
		{"ahb-write", amba.TransactionChart(), func() []event.State {
			return amba.NewModel(amba.Config{Gap: 1, Seed: 104, FaultRate: 0.3}).GenerateTrace(3000)
		}},
		{"ahb-read", amba.ReadChart(), func() []event.State {
			return amba.NewModel(amba.Config{Gap: 1, Seed: 105, FaultRate: 0.3, Read: true}).GenerateTrace(3000)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := synth.Synthesize(tc.chart, nil)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := monitor.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
			tr := tc.trace()
			for i, s := range tr {
				got := compiled.Step(s)
				want := eng.Step(s).Outcome == monitor.Accepted
				if got != want {
					t.Fatalf("tick %d: compiled=%v engine=%v", i, got, want)
				}
			}
			if compiled.Accepts() == 0 {
				t.Error("no acceptances exercised")
			}
		})
	}
}
