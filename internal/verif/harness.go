// Package verif is the verification harness closing the paper's Figure 4
// flow: it attaches synthesized monitors to the simulation environment,
// collects verdicts, runs fault-injection campaigns against the protocol
// models, and hosts the hand-coded baseline monitors that the paper's
// automated synthesis replaces.
package verif

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Attach wires a monitor engine to a simulator so it consumes every tick
// of the given clock domain.
func Attach(s *sim.Simulator, domain string, eng *monitor.Engine) {
	s.Observe(sim.ObserverFunc(func(t trace.GlobalTick) {
		if t.Domain == domain {
			eng.Step(t.State)
		}
	}))
}

// AttachMulti wires a multi-clock execution to a simulator: each global
// tick is routed to the local monitor of its domain, with the global time
// driving scoreboard timestamps. Ticks of domains the multi-monitor does
// not know are ignored.
func AttachMulti(s *sim.Simulator, ex *mclock.Exec) {
	s.Observe(sim.ObserverFunc(func(t trace.GlobalTick) {
		if ex.Engine(t.Domain) == nil {
			return
		}
		if _, err := ex.StepTick(t); err != nil {
			// Unreachable: domain membership was checked above.
			panic(fmt.Sprintf("verif: %v", err))
		}
	}))
}

// Detector is anything that consumes trace elements and reports window
// completions — satisfied by the tiered detector over the synthesized
// engines (see NewDetector) as well as hand-written baselines.
type Detector interface {
	// StepDetect consumes one element and reports whether a scenario
	// window completed at this tick.
	StepDetect(s event.State) bool
}

// AcceptTicks runs any per-tick accept predicate over a trace.
func AcceptTicks(tr trace.Trace, step func(i int) bool) []int {
	var out []int
	for i := range tr {
		if step(i) {
			out = append(out, i)
		}
	}
	return out
}

// EngineAcceptTicks runs a synthesized monitor engine over a trace and
// returns the ticks at which it accepted.
func EngineAcceptTicks(eng *monitor.Engine, tr trace.Trace) []int {
	return AcceptTicks(tr, func(i int) bool {
		return eng.Step(tr[i]).Outcome == monitor.Accepted
	})
}
