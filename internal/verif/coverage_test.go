package verif

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
	"repro/internal/trace"
)

func TestCoverageFullOnRichTraffic(t *testing.T) {
	m, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewCoveredEngine(m, nil, monitor.ModeDetect)
	// Mixed clean and faulty traffic exercises advances and give-ups.
	tr := ocp.NewModel(ocp.Config{Gap: 0, Seed: 51, FaultRate: 0.4}).GenerateTrace(3000)
	eng.Run(tr)
	if got := eng.Cov.StateCoverage(); got != 1.0 {
		t.Errorf("state coverage = %.2f, want 1.0", got)
	}
	if got := eng.Cov.TransitionCoverage(); got < 0.7 {
		t.Errorf("transition coverage = %.2f, want >= 0.7\n%s", got, eng.Cov.Report())
	}
	// The only legs this workload cannot reach are the re-anchor edges
	// (a request in the cycle immediately after another request), which
	// the model never produces — a genuine coverage hole the report must
	// name precisely.
	for _, u := range eng.Cov.UncoveredTransitions() {
		if !strings.Contains(u, "MCmd_rd & Addr & SCmd_accept") {
			t.Errorf("unexpected uncovered transition: %s", u)
		}
	}
}

func TestCoveragePartialIdentifiesHoles(t *testing.T) {
	m, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewCoveredEngine(m, nil, monitor.ModeDetect)
	// Idle-only traffic: only the state-0 self loop fires.
	eng.Run(trace.NewBuilder().Idle(50).Build())
	if got := eng.Cov.StateCoverage(); got >= 1.0 {
		t.Errorf("state coverage = %.2f on idle traffic", got)
	}
	un := eng.Cov.UncoveredTransitions()
	if len(un) == 0 {
		t.Fatal("no uncovered transitions reported")
	}
	found := false
	for _, u := range un {
		if strings.Contains(u, "Chk_evt(MCmd_rd)") {
			found = true
		}
	}
	if !found {
		t.Errorf("response transition not reported uncovered: %v", un)
	}
	rep := eng.Cov.Report()
	if !strings.Contains(rep, "uncovered transitions:") {
		t.Errorf("report lacks uncovered section:\n%s", rep)
	}
}

func TestCoverageCountsHardResets(t *testing.T) {
	// A deliberately partial monitor: only one guarded transition.
	m := monitor.New("partial", "clk", 2)
	m.AddTransition(0, monitor.Transition{To: 1, Guard: expr.Ev("x")})
	eng := NewCoveredEngine(m, nil, monitor.ModeDetect)
	eng.Run(trace.NewBuilder().Idle(5).Build())
	if eng.Cov.HardResets() != 5 {
		t.Errorf("hard resets = %d, want 5", eng.Cov.HardResets())
	}
	if !strings.Contains(eng.Cov.Report(), "hard resets") {
		t.Error("report omits hard resets")
	}
}

func TestCoverageInitialStateCounted(t *testing.T) {
	m, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cov := NewCoverage(m)
	if cov.StateCoverage() <= 0 {
		t.Error("initial state not counted before any step")
	}
}
