package verif

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// wideMonitor builds a monitor whose support is `width` distinct events —
// past the table compiler's maxCompileBits the 2^bits table is
// impossible, which is exactly the shape the program tier exists for.
func wideMonitor(width int) *monitor.Monitor {
	m := monitor.New("wide", "clk", 3)
	evs := make([]expr.Expr, width)
	names := make([]string, width)
	for i := range evs {
		names[i] = fmt.Sprintf("w%02d", i)
		evs[i] = expr.Ev(names[i])
	}
	// 0 -> 1 when any of the first half occurs, 1 -> 2 (accept) when any
	// of the second half occurs; stutter otherwise.
	m.AddTransition(0, monitor.Transition{To: 1, Guard: expr.Or(evs[:width/2]...)})
	m.AddTransition(0, monitor.Transition{To: 0, Guard: expr.True})
	m.AddTransition(1, monitor.Transition{To: 2, Guard: expr.Or(evs[width/2:]...)})
	m.AddTransition(1, monitor.Transition{To: 1, Guard: expr.True})
	m.AddTransition(2, monitor.Transition{To: 0, Guard: expr.True})
	return m
}

// TestDetectorTiers checks NewDetector picks the strongest tier the
// monitor admits: table for narrow synthesized monitors, the program
// engine when the support exceeds the table compile limit, and the
// interpreted engine when even program compilation is impossible.
func TestDetectorTiers(t *testing.T) {
	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier() != TierTable {
		t.Errorf("narrow monitor tier = %v, want table", d.Tier())
	}

	wide := wideMonitor(24)
	if _, err := monitor.Compile(wide); err == nil {
		t.Fatal("24-bit support unexpectedly fit the table compiler")
	}
	d, err = NewDetector(wide)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier() != TierProgram {
		t.Errorf("wide monitor tier = %v, want program", d.Tier())
	}

	// A guard needing more stack than expr.MaxProgramDepth defeats the
	// program compiler too; the detector must still come up, interpreted.
	deep := wideMonitor(expr.MaxProgramDepth + 2)
	if _, err := monitor.CompileProgram(deep); err == nil {
		t.Fatal("over-deep guard unexpectedly compiled to a program")
	}
	d, err = NewDetector(deep)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier() != TierInterp {
		t.Errorf("over-deep monitor tier = %v, want interpreted", d.Tier())
	}
}

// TestDetectorWideParity: on a support too wide for the table tier, the
// program-backed detector must agree tick for tick with the interpreted
// reference engine.
func TestDetectorWideParity(t *testing.T) {
	wide := wideMonitor(24)
	d, err := NewDetector(wide)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier() != TierProgram {
		t.Fatalf("tier = %v, want program", d.Tier())
	}
	ref := monitor.NewEngine(wide, nil, monitor.ModeDetect)
	r := rand.New(rand.NewSource(7))
	for tick := 0; tick < 5000; tick++ {
		s := event.NewState()
		// Sparse ticks with occasional bursts, so both halves of the
		// guard disjunction and the stutter paths are all exercised.
		for i := 0; i < 24; i++ {
			if r.Intn(24) == 0 {
				s.Events[fmt.Sprintf("w%02d", i)] = true
			}
		}
		got := d.StepDetect(s)
		want := ref.Step(s).Outcome == monitor.Accepted
		if got != want {
			t.Fatalf("tick %d: detector=%v reference=%v on %s", tick, got, want, s)
		}
	}
	if d.Accepts() == 0 {
		t.Error("no acceptances exercised")
	}
	if d.Accepts() != ref.Stats().Accepts {
		t.Errorf("accepts: detector=%d reference=%d", d.Accepts(), ref.Stats().Accepts)
	}
}
