package verif

import (
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/sim"
	"repro/internal/synth"
)

// TestBaselineParitySimpleRead is experiment E10: the synthesized Fig. 6
// monitor and the hand-written checker accept at identical ticks, on
// clean and on fault-injected traffic.
func TestBaselineParitySimpleRead(t *testing.T) {
	for _, cfg := range []ocp.Config{
		{Gap: 2, Seed: 1},
		{Gap: 0, Seed: 2},
		{Gap: 1, Seed: 3, FaultRate: 0.4},
	} {
		tr := ocp.NewModel(cfg).GenerateTrace(500)
		res, err := OCPSimpleReadParity(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agree() {
			t.Errorf("cfg %+v: synth %v != manual %v", cfg, res.SynthAccepts, res.ManualAccepts)
		}
	}
}

func TestBaselineParityBurstRead(t *testing.T) {
	for _, cfg := range []ocp.Config{
		{Gap: 2, Seed: 4, Burst: true},
		{Gap: 0, Seed: 5, Burst: true},
		{Gap: 1, Seed: 6, Burst: true, FaultRate: 0.4},
	} {
		tr := ocp.NewModel(cfg).GenerateTrace(800)
		res, err := OCPBurstReadParity(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agree() {
			t.Errorf("cfg %+v: synth %v != manual %v", cfg, res.SynthAccepts, res.ManualAccepts)
		}
	}
}

func TestBaselineParityAHB(t *testing.T) {
	for _, cfg := range []amba.Config{
		{Gap: 2, Seed: 7},
		{Gap: 0, Seed: 8},
		{Gap: 1, Seed: 9, FaultRate: 0.4},
	} {
		tr := amba.NewModel(cfg).GenerateTrace(600)
		res, err := AHBTransactionParity(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agree() {
			t.Errorf("cfg %+v: synth %v != manual %v", cfg, res.SynthAccepts, res.ManualAccepts)
		}
	}
}

// TestCampaignCleanTrafficFullDetection: with no faults, every completed
// transaction is detected (detection rate ~1 modulo the horizon cutoff).
func TestCampaignCleanTrafficFullDetection(t *testing.T) {
	rep, err := RunOCPCampaign(ocp.Config{Gap: 2, Seed: 10}, 1000, monitor.ModeDetect)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted != 0 {
		t.Errorf("faulted = %d", rep.Faulted)
	}
	if rep.Accepts < rep.Transactions-1 {
		t.Errorf("accepts %d < transactions-1 %d", rep.Accepts, rep.Transactions-1)
	}
	if rep.DetectionRate() < 0.99 {
		t.Errorf("detection rate = %.3f", rep.DetectionRate())
	}
	if !strings.Contains(rep.String(), "detection=") {
		t.Errorf("report string = %q", rep)
	}
}

// TestCampaignFaultsReduceDetections: faulty transactions never produce
// scenario windows, so accepts track the clean count.
func TestCampaignFaultsReduceDetections(t *testing.T) {
	rep, err := RunOCPCampaign(ocp.Config{Gap: 2, Seed: 11, FaultRate: 0.5}, 2000, monitor.ModeDetect)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted == 0 {
		t.Fatal("no faults injected at rate 0.5")
	}
	if rep.Accepts > rep.Clean() {
		t.Errorf("accepts %d exceed clean transactions %d", rep.Accepts, rep.Clean())
	}
	if rep.Accepts < rep.Clean()-1 {
		t.Errorf("accepts %d below clean-1 %d: clean windows missed", rep.Accepts, rep.Clean()-1)
	}
}

// TestCampaignAssertModeFlagsFaults is experiment E12's kernel: in
// assert mode the faulty transactions surface as violations.
func TestCampaignAssertModeFlagsFaults(t *testing.T) {
	rep, err := RunAMBACampaign(amba.Config{Gap: 2, Seed: 12, FaultRate: 1}, 1500, monitor.ModeAssert)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("assert mode reported no violations for all-faulty traffic")
	}
	if rep.Accepts != 0 {
		t.Errorf("accepts = %d for all-faulty traffic", rep.Accepts)
	}
}

func TestCampaignBurst(t *testing.T) {
	rep, err := RunOCPCampaign(ocp.Config{Gap: 3, Seed: 13, Burst: true}, 2000, monitor.ModeDetect)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transactions < 50 {
		t.Errorf("only %d bursts in 2000 cycles", rep.Transactions)
	}
	if rep.DetectionRate() < 0.99 {
		t.Errorf("burst detection rate = %.3f", rep.DetectionRate())
	}
	if rep.ScoreboardOps == 0 {
		t.Error("burst campaign performed no scoreboard operations")
	}
}

// TestAttachRoutesOnlyOwnDomain: a monitor attached to one domain never
// sees another domain's ticks.
func TestAttachRoutesOnlyOwnDomain(t *testing.T) {
	s := sim.New()
	d1 := s.MustAddDomain("ocp_clk", 1, 0)
	s.MustAddDomain("other", 1, 0)
	model := ocp.NewModel(ocp.Config{Gap: 2, Seed: 14})
	d1.AddProcess(model.Process())

	mon, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	Attach(s, "ocp_clk", eng)
	if err := s.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	// 301 ticks of ocp_clk only; the `other` domain contributed nothing.
	if got := eng.Stats().Steps; got != 301 {
		t.Errorf("engine stepped %d times, want 301", got)
	}
	if eng.Stats().Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d issued", eng.Stats().Accepts, model.Issued())
	}
}

// TestFlowEndToEnd is experiment E4: the full Figure 4 flow — textual
// CESC in, synthesized monitor attached to a running simulation, verdict
// out — exercised through the readproto system (multi-clock) in
// mclock_test and here through the single-clock OCP path.
func TestFlowEndToEnd(t *testing.T) {
	s := sim.New()
	d := s.MustAddDomain("ocp_clk", 1, 0)
	model := ocp.NewModel(ocp.Config{Gap: 1, Seed: 15})
	d.AddProcess(model.Process())
	mon, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	Attach(s, "ocp_clk", eng)
	if err := s.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Accepts == 0 {
		t.Fatal("flow produced no detections")
	}
}

func TestEngineAcceptTicksHelper(t *testing.T) {
	mon, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := ocp.NewModel(ocp.Config{Gap: 3, Seed: 16}).GenerateTrace(60)
	eng := monitor.NewEngine(mon, nil, monitor.ModeDetect)
	ticks := EngineAcceptTicks(eng, tr)
	if len(ticks) == 0 {
		t.Fatal("no accept ticks")
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Error("accept ticks not increasing")
		}
	}
}
