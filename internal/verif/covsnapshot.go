package verif

import "fmt"

// CoverageSnapshot is the serializable state of a Coverage collector,
// journaled by the cescd WAL so recovered sessions report coverage
// identical to an uninterrupted run.
type CoverageSnapshot struct {
	StateHits  []uint64   `json:"state_hits"`
	TransHits  [][]uint64 `json:"trans_hits"`
	HardResets uint64     `json:"hard_resets"`
}

// Snapshot captures the collector's counters; the result shares no
// structure with the collector.
func (c *Coverage) Snapshot() CoverageSnapshot {
	snap := CoverageSnapshot{
		StateHits:  append([]uint64(nil), c.stateHits...),
		TransHits:  make([][]uint64, len(c.transHits)),
		HardResets: c.uncovered,
	}
	for i, hs := range c.transHits {
		snap.TransHits[i] = append([]uint64(nil), hs...)
	}
	return snap
}

// Restore replaces the collector's counters with a snapshot, validating
// that its shape matches the collector's monitor.
func (c *Coverage) Restore(snap CoverageSnapshot) error {
	if len(snap.StateHits) != len(c.stateHits) || len(snap.TransHits) != len(c.transHits) {
		return fmt.Errorf("verif: coverage snapshot shape %d/%d does not match monitor %q (%d/%d)",
			len(snap.StateHits), len(snap.TransHits), c.m.Name, len(c.stateHits), len(c.transHits))
	}
	for i, hs := range snap.TransHits {
		if len(hs) != len(c.transHits[i]) {
			return fmt.Errorf("verif: coverage snapshot state %d has %d transitions, monitor %q has %d",
				i, len(hs), c.m.Name, len(c.transHits[i]))
		}
	}
	copy(c.stateHits, snap.StateHits)
	for i, hs := range snap.TransHits {
		copy(c.transHits[i], hs)
	}
	c.uncovered = snap.HardResets
	return nil
}
