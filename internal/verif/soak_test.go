package verif

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/monitor"
	"repro/internal/ocp"
)

// TestSoakMixedFaultCampaigns is experiment E12: long randomized runs
// with per-kind fault injection across every scenario; the invariants
// are exact detection accounting (accepts track clean transactions,
// in-window faults produce violations, no false accepts).
func TestSoakMixedFaultCampaigns(t *testing.T) {
	cycles := 20000
	if testing.Short() {
		cycles = 3000
	}
	type cfg struct {
		name string
		run  func(seed int64) (Report, error)
	}
	cases := []cfg{
		{"ocp-read", func(seed int64) (Report, error) {
			return RunOCPCampaign(ocp.Config{Gap: 1, Seed: seed, FaultRate: 0.25}, cycles, monitor.ModeAssert)
		}},
		{"ocp-burst", func(seed int64) (Report, error) {
			return RunOCPCampaign(ocp.Config{Gap: 1, Seed: seed, FaultRate: 0.25, Burst: true}, cycles, monitor.ModeAssert)
		}},
		{"ocp-write", func(seed int64) (Report, error) {
			return RunOCPCampaign(ocp.Config{Gap: 1, Seed: seed, FaultRate: 0.25, Write: true}, cycles, monitor.ModeAssert)
		}},
		{"ahb-write", func(seed int64) (Report, error) {
			return RunAMBACampaign(amba.Config{Gap: 1, Seed: seed, FaultRate: 0.25}, cycles, monitor.ModeAssert)
		}},
		{"ahb-read", func(seed int64) (Report, error) {
			return RunAMBACampaign(amba.Config{Gap: 1, Seed: seed, FaultRate: 0.25, Read: true}, cycles, monitor.ModeAssert)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				rep, err := tc.run(seed)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Transactions < 100 {
					t.Fatalf("seed %d: only %d transactions", seed, rep.Transactions)
				}
				if rep.Faulted == 0 {
					t.Fatalf("seed %d: no faults injected", seed)
				}
				// No false accepts: every detection corresponds to a
				// clean transaction (modulo the horizon-cut final one).
				if rep.Accepts > rep.Clean() {
					t.Errorf("seed %d: accepts %d > clean %d", seed, rep.Accepts, rep.Clean())
				}
				// No missed clean windows.
				if rep.Accepts < rep.Clean()-1 {
					t.Errorf("seed %d: accepts %d < clean-1 %d", seed, rep.Accepts, rep.Clean()-1)
				}
				// Faults that start a window must be flagged.
				if rep.Violations == 0 {
					t.Errorf("seed %d: no violations despite %d faulted transactions", seed, rep.Faulted)
				}
				// Assert-mode campaigns carry diagnostics.
				if len(rep.Diagnostics) == 0 {
					t.Errorf("seed %d: no diagnostics recorded", seed)
				}
			}
		})
	}
}
