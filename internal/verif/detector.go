package verif

import (
	"repro/internal/event"
	"repro/internal/monitor"
)

// Tier identifies which execution strategy backs a tiered detector, in
// descending per-step cost effectiveness.
type Tier int

const (
	// TierTable is monitor.Compile: a precomputed 2^bits transition
	// table, the fastest step but bounded by maxCompileBits of combined
	// support and scoreboard width.
	TierTable Tier = iota
	// TierProgram is the compiled guard-program engine: allocation-free
	// packed evaluation at any support width.
	TierProgram
	// TierInterp is the interpreted AST engine, the reference semantics.
	TierInterp
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierTable:
		return "table"
	case TierProgram:
		return "program"
	default:
		return "interpreted"
	}
}

// TieredDetector runs a synthesized monitor in detect mode on the
// fastest execution tier its shape admits: the transition table when the
// monitor fits under the compile limit, otherwise the compiled guard
// programs, otherwise the interpreted engine. Construction never fails —
// a monitor too wide for one tier silently degrades to the next — which
// is what the harness wants when it attaches arbitrary synthesized
// monitors to a campaign.
type TieredDetector struct {
	tier  Tier
	table *monitor.Compiled
	eng   *monitor.Engine
}

// NewDetector builds the fastest detector for m. Only a structurally
// invalid monitor errors (every tier would reject it).
func NewDetector(m *monitor.Monitor) (*TieredDetector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c, err := monitor.Compile(m); err == nil {
		return &TieredDetector{tier: TierTable, table: c}, nil
	}
	if p, err := monitor.CompileProgram(m); err == nil {
		return &TieredDetector{tier: TierProgram, eng: p.NewEngine(nil, monitor.ModeDetect)}, nil
	}
	return &TieredDetector{tier: TierInterp, eng: monitor.NewEngine(m, nil, monitor.ModeDetect)}, nil
}

// Tier reports the execution strategy in use.
func (d *TieredDetector) Tier() Tier { return d.tier }

// StepDetect consumes one element and reports whether the scenario
// completed at this tick.
func (d *TieredDetector) StepDetect(s event.State) bool {
	if d.table != nil {
		return d.table.Step(s)
	}
	return d.eng.Step(s).Outcome == monitor.Accepted
}

// Accepts returns the number of acceptances so far.
func (d *TieredDetector) Accepts() int {
	if d.table != nil {
		return d.table.Accepts()
	}
	return d.eng.Stats().Accepts
}
