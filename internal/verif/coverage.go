package verif

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/monitor"
)

// Coverage accumulates structural coverage of a monitor during
// simulation: which states were visited and which transitions fired.
// Monitor coverage is the standard closure metric of assertion-based
// verification — an uncovered transition means the stimuli never
// exercised that leg of the specified scenario.
type Coverage struct {
	m         *monitor.Monitor
	stateHits []uint64
	transHits [][]uint64
	uncovered uint64 // hard resets (inputs no transition covered)
}

// NewCoverage returns a collector for m.
func NewCoverage(m *monitor.Monitor) *Coverage {
	c := &Coverage{
		m:         m,
		stateHits: make([]uint64, m.States),
		transHits: make([][]uint64, m.States),
	}
	for s := range c.transHits {
		c.transHits[s] = make([]uint64, len(m.Trans[s]))
	}
	// The initial state is occupied before any step.
	c.stateHits[m.Initial]++
	return c
}

// Record accumulates one step result.
func (c *Coverage) Record(res monitor.StepResult) {
	c.stateHits[res.To]++
	if res.TransIndex >= 0 {
		c.transHits[res.From][res.TransIndex]++
	} else {
		c.uncovered++
	}
}

// CoveredEngine wraps an engine so every step feeds the collector.
type CoveredEngine struct {
	*monitor.Engine
	Cov *Coverage
}

// NewCoveredEngine builds an engine plus collector for m.
func NewCoveredEngine(m *monitor.Monitor, sb *monitor.Scoreboard, mode monitor.Mode) *CoveredEngine {
	return &CoveredEngine{
		Engine: monitor.NewEngine(m, sb, mode),
		Cov:    NewCoverage(m),
	}
}

// Step consumes one element, recording coverage.
func (e *CoveredEngine) Step(s event.State) monitor.StepResult {
	res := e.Engine.Step(s)
	e.Cov.Record(res)
	return res
}

// Run consumes a trace, recording coverage.
func (e *CoveredEngine) Run(states []event.State) monitor.Stats {
	for _, s := range states {
		e.Step(s)
	}
	return e.Engine.Stats()
}

// StateCoverage returns the fraction of states visited at least once.
func (c *Coverage) StateCoverage() float64 {
	hit := 0
	for _, n := range c.stateHits {
		if n > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(c.stateHits))
}

// TransitionCoverage returns the fraction of transitions fired at least
// once (1.0 for a monitor with no transitions).
func (c *Coverage) TransitionCoverage() float64 {
	total, hit := 0, 0
	for s := range c.transHits {
		for _, n := range c.transHits[s] {
			total++
			if n > 0 {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// UncoveredTransitions lists "state N on GUARD" for every transition that
// never fired, in state order.
func (c *Coverage) UncoveredTransitions() []string {
	var out []string
	for s := range c.transHits {
		for i, n := range c.transHits[s] {
			if n == 0 {
				out = append(out, fmt.Sprintf("state %d on %s", s, c.m.Trans[s][i].Guard))
			}
		}
	}
	return out
}

// HardResets counts inputs no transition covered.
func (c *Coverage) HardResets() uint64 { return c.uncovered }

// Report renders a human-readable coverage summary.
func (c *Coverage) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage of monitor %s: states %.1f%%, transitions %.1f%%\n",
		c.m.Name, 100*c.StateCoverage(), 100*c.TransitionCoverage())
	if un := c.UncoveredTransitions(); len(un) > 0 {
		b.WriteString("uncovered transitions:\n")
		for _, u := range un {
			fmt.Fprintf(&b, "  %s\n", u)
		}
	}
	if c.uncovered > 0 {
		fmt.Fprintf(&b, "hard resets (inputs outside every guard): %d\n", c.uncovered)
	}
	return b.String()
}
