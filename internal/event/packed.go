package event

// Packed is a bitset valuation over interned symbol slots: bit i is the
// truth value of the symbol at index i of the Support or Vocabulary that
// packed it. It is the runtime representation of the paper's state
// s = (f1, f2) on the fast path: the symbol table is consulted once per
// tick when the state is packed, and every subsequent guard evaluation
// is pure bit arithmetic over slot indices. Unlike Valuation it has no
// width limit, so one Packed can span the union vocabulary of many
// monitors.
type Packed []uint64

// PackedWords returns the number of 64-bit words needed for n slots.
func PackedWords(n int) int { return (n + 63) / 64 }

// NewPacked returns an all-false valuation with room for n slots.
func NewPacked(n int) Packed { return make(Packed, PackedWords(n)) }

// Bit reports the truth value of slot i (false when out of range, so a
// narrow Packed behaves like a valuation padded with false).
func (p Packed) Bit(i int) bool {
	w := i >> 6
	if w >= len(p) {
		return false
	}
	return p[w]&(1<<uint(i&63)) != 0
}

// Set makes slot i true. Slot i must be within the packed width.
func (p Packed) Set(i int) { p[i>>6] |= 1 << uint(i&63) }

// Clear makes slot i false. Slot i must be within the packed width.
func (p Packed) Clear(i int) { p[i>>6] &^= 1 << uint(i&63) }

// Zero resets every slot to false, keeping the allocation.
func (p Packed) Zero() {
	for i := range p {
		p[i] = 0
	}
}

// Clone returns an independent copy.
func (p Packed) Clone() Packed {
	c := make(Packed, len(p))
	copy(c, p)
	return c
}

// Equal reports whether two packed valuations assign the same truth
// values (missing high words are false).
func (p Packed) Equal(q Packed) bool {
	long, short := p, q
	if len(q) > len(p) {
		long, short = q, p
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ensureWidth grows p (reusing the backing array when possible) so it
// can hold n slots, and zeroes it.
func ensureWidth(p Packed, n int) Packed {
	w := PackedWords(n)
	if cap(p) < w {
		return make(Packed, w)
	}
	p = p[:w]
	p.Zero()
	return p
}

// packSym sets slot i when the state's valuation of sym is true.
func packSym(p Packed, i int, sym Symbol, s State) {
	switch sym.Kind {
	case KindEvent:
		if s.Events[sym.Name] {
			p.Set(i)
		}
	case KindProp:
		if s.Props[sym.Name] {
			p.Set(i)
		}
	}
}

// PackInto projects a State onto the support's slots, reusing buf when
// it has capacity. Symbols absent from the support are dropped — exact
// for guard evaluation, which can only mention support symbols.
func (sp *Support) PackInto(s State, buf Packed) Packed {
	buf = ensureWidth(buf, len(sp.symbols))
	for i, sym := range sp.symbols {
		packSym(buf, i, sym, s)
	}
	return buf
}

// Pack projects a State onto the support's slots into a fresh Packed.
func (sp *Support) Pack(s State) Packed { return sp.PackInto(s, nil) }

// UnpackState expands a packed valuation back into a map-based State.
// The round trip State -> Pack -> UnpackState is lossless over the
// support's symbols (absent map keys are false on both sides).
func (sp *Support) UnpackState(p Packed) State {
	s := NewState()
	for i, sym := range sp.symbols {
		if !p.Bit(i) {
			continue
		}
		switch sym.Kind {
		case KindEvent:
			s.Events[sym.Name] = true
		case KindProp:
			s.Props[sym.Name] = true
		}
	}
	return s
}

// PackInto projects a State onto the vocabulary's slots, reusing buf.
// Like Support.PackInto, symbols the vocabulary has not declared are
// dropped.
func (v *Vocabulary) PackInto(s State, buf Packed) Packed {
	buf = ensureWidth(buf, len(v.symbols))
	// Iterate the state's true entries rather than the vocabulary: a
	// session vocabulary spans every loaded monitor while one tick
	// mentions only a handful of symbols.
	for name, val := range s.Events {
		if !val {
			continue
		}
		if i, ok := v.index[name]; ok && v.symbols[i].Kind == KindEvent {
			buf.Set(i)
		}
	}
	for name, val := range s.Props {
		if !val {
			continue
		}
		if i, ok := v.index[name]; ok && v.symbols[i].Kind == KindProp {
			buf.Set(i)
		}
	}
	return buf
}

// Pack projects a State onto the vocabulary's slots into a fresh Packed.
func (v *Vocabulary) Pack(s State) Packed { return v.PackInto(s, nil) }

// UnpackState expands a packed valuation back into a map-based State
// over the vocabulary's symbols.
func (v *Vocabulary) UnpackState(p Packed) State {
	s := NewState()
	for i, sym := range v.symbols {
		if !p.Bit(i) {
			continue
		}
		switch sym.Kind {
		case KindEvent:
			s.Events[sym.Name] = true
		case KindProp:
			s.Props[sym.Name] = true
		}
	}
	return s
}

// DeclareSupport declares every symbol of sp into the vocabulary,
// erroring on kind conflicts. It is how a session builds one shared
// interner over the union of its monitors' supports.
func (v *Vocabulary) DeclareSupport(sp *Support) error {
	for _, sym := range sp.Symbols() {
		if _, err := v.Declare(sym.Name, sym.Kind); err != nil {
			return err
		}
	}
	return nil
}
