package event

import (
	"fmt"
	"sort"
)

// Support is an ordered set of symbols over which synthesis enumerates
// valuations. The paper's compute_transition_func ranges over "each
// valuation e in 2^Sigma"; restricting Sigma to the symbols actually
// mentioned by a pattern is exact (transitions are insensitive to the
// rest) and keeps enumeration tractable.
type Support struct {
	symbols []Symbol
	index   map[string]int
}

// MaxSupportBits bounds the number of distinct symbols a single pattern
// may mention; 2^MaxSupportBits valuations are enumerated during
// synthesis.
const MaxSupportBits = 24

// NewSupport builds a support from symbols, deduplicated and sorted by
// name for determinism. It errors if more than MaxSupportBits distinct
// symbols are supplied or if a name appears with two kinds.
func NewSupport(symbols []Symbol) (*Support, error) {
	seen := make(map[string]Kind)
	var uniq []Symbol
	for _, s := range symbols {
		if k, ok := seen[s.Name]; ok {
			if k != s.Kind {
				return nil, fmt.Errorf("event: symbol %q used as both %s and %s", s.Name, k, s.Kind)
			}
			continue
		}
		seen[s.Name] = s.Kind
		uniq = append(uniq, s)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Name < uniq[j].Name })
	if len(uniq) > MaxSupportBits {
		return nil, fmt.Errorf("event: support of %d symbols exceeds limit %d", len(uniq), MaxSupportBits)
	}
	idx := make(map[string]int, len(uniq))
	for i, s := range uniq {
		idx[s.Name] = i
	}
	return &Support{symbols: uniq, index: idx}, nil
}

// Len returns the number of symbols in the support.
func (sp *Support) Len() int { return len(sp.symbols) }

// Symbols returns the ordered symbols (caller must not mutate).
func (sp *Support) Symbols() []Symbol { return sp.symbols }

// Index returns the bit position of name, or -1.
func (sp *Support) Index(name string) int {
	if i, ok := sp.index[name]; ok {
		return i
	}
	return -1
}

// NumValuations returns 2^Len, the number of distinct valuations.
func (sp *Support) NumValuations() uint64 { return uint64(1) << uint(len(sp.symbols)) }

// Valuation is a compact assignment of truth values to a Support's
// symbols: bit i is the value of symbol i.
type Valuation uint64

// Bit reports the truth value of symbol index i.
func (v Valuation) Bit(i int) bool { return v&(1<<uint(i)) != 0 }

// SetBit returns v with symbol index i set to b.
func (v Valuation) SetBit(i int, b bool) Valuation {
	if b {
		return v | (1 << uint(i))
	}
	return v &^ (1 << uint(i))
}

// State expands the valuation into a full State over the support.
func (sp *Support) State(v Valuation) State {
	s := NewState()
	for i, sym := range sp.symbols {
		if !v.Bit(i) {
			continue
		}
		switch sym.Kind {
		case KindEvent:
			s.Events[sym.Name] = true
		case KindProp:
			s.Props[sym.Name] = true
		}
	}
	return s
}

// Valuation projects a State onto the support.
func (sp *Support) Valuation(s State) Valuation {
	var v Valuation
	for i, sym := range sp.symbols {
		var b bool
		switch sym.Kind {
		case KindEvent:
			b = s.Event(sym.Name)
		case KindProp:
			b = s.Prop(sym.Name)
		}
		v = v.SetBit(i, b)
	}
	return v
}

// Union merges two supports. It errors on kind conflicts or overflow.
func (sp *Support) Union(other *Support) (*Support, error) {
	all := make([]Symbol, 0, len(sp.symbols)+len(other.symbols))
	all = append(all, sp.symbols...)
	all = append(all, other.symbols...)
	return NewSupport(all)
}

// ValuationContext adapts (Support, Valuation) to a guard-evaluation
// context with no scoreboard: ChkEvt is false for every event.
type ValuationContext struct {
	Sup *Support
	Val Valuation
}

// Event reports the valuation of an event symbol; absent symbols are false.
func (c ValuationContext) Event(name string) bool {
	i := c.Sup.Index(name)
	return i >= 0 && c.Val.Bit(i)
}

// Prop reports the valuation of a proposition symbol.
func (c ValuationContext) Prop(name string) bool {
	i := c.Sup.Index(name)
	return i >= 0 && c.Val.Bit(i)
}

// ChkEvt always reports false: there is no scoreboard in a pure valuation.
func (c ValuationContext) ChkEvt(string) bool { return false }
