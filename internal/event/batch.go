package event

import (
	"fmt"
	"unicode/utf16"
	"unicode/utf8"
)

// PackedBatch is a dense column of packed valuations: n ticks, each
// occupying stride words, in one contiguous backing array. It is the
// wire-to-lane landing zone of the batch ingest path — the decoder
// writes symbol bits straight into it, and steppers read each tick as a
// Packed view without copying.
type PackedBatch struct {
	words  []uint64
	stride int
	n      int
}

// Reset prepares the batch for decoding against a symbol table of the
// given slot count, dropping any previous ticks but keeping the backing
// array.
func (b *PackedBatch) Reset(slots int) {
	b.stride = PackedWords(slots)
	b.n = 0
	b.words = b.words[:0]
}

// Len returns the number of ticks in the batch.
func (b *PackedBatch) Len() int { return b.n }

// Stride returns the number of words per tick.
func (b *PackedBatch) Stride() int { return b.stride }

// Tick returns tick i as a Packed view into the batch's backing array.
// The view is valid until the next Reset.
func (b *PackedBatch) Tick(i int) Packed {
	return Packed(b.words[i*b.stride : (i+1)*b.stride])
}

// Word returns word w of tick i; ticks narrower than w+1 words read as
// zero. Lane steppers use Word(i, 0) for supports within 64 slots.
func (b *PackedBatch) Word(i, w int) uint64 {
	if w >= b.stride {
		return 0
	}
	return b.words[i*b.stride+w]
}

// appendTick grows the batch by one zeroed tick and returns its view.
func (b *PackedBatch) appendTick() Packed {
	need := (b.n + 1) * b.stride
	if cap(b.words) < need {
		grown := make([]uint64, need, need*2+b.stride)
		copy(grown, b.words)
		b.words = grown
	} else {
		b.words = b.words[:need]
	}
	w := b.words[b.n*b.stride : need]
	for i := range w {
		w[i] = 0
	}
	b.n++
	return Packed(w)
}

// BatchDecoder decodes a whitespace-separated stream of NDJSON tick
// objects — the cescd ingest wire format,
//
//	{"events":["cmd","resp"],"props":{"busy":true}}
//
// — directly into a PackedBatch, packing each named symbol into its
// vocabulary slot as the bytes are scanned. No intermediate maps, no
// event.State, and no per-tick allocations: symbol names are resolved
// against the vocabulary via sub-slice map lookups, escape sequences are
// unescaped into a reused scratch buffer, and ticks land in the batch's
// single backing array. The packing semantics match
// Vocabulary.PackInto(StateJSON.ToState(tick)) exactly: undeclared
// symbols and kind mismatches are dropped, false props are ignored.
//
// The decoder is strict where encoding/json is lenient (unknown or
// duplicate fields, non-string event entries, trailing garbage all
// error); callers fall back to the encoding/json path on any error, so
// strictness costs speed only, never behaviour.
type BatchDecoder struct {
	vocab   *Vocabulary
	scratch []byte
}

// NewBatchDecoder returns a decoder that packs against v's slots.
func NewBatchDecoder(v *Vocabulary) *BatchDecoder {
	return &BatchDecoder{vocab: v}
}

// Decode scans data as whitespace-separated tick objects into dst
// (which is Reset first). When maxTicks > 0 and the stream holds more
// ticks, decoding stops with errTooManyTicks after maxTicks+1 ticks —
// enough for callers to distinguish "over limit" from a short batch.
// It returns the number of ticks decoded.
func (d *BatchDecoder) Decode(data []byte, dst *PackedBatch, maxTicks int) (int, error) {
	dst.Reset(d.vocab.Len())
	i := skipSpace(data, 0)
	for i < len(data) {
		if maxTicks > 0 && dst.Len() >= maxTicks {
			return dst.Len() + 1, errTooManyTicks
		}
		var err error
		i, err = d.tick(data, i, dst.appendTick())
		if err != nil {
			return 0, err
		}
		i = skipSpace(data, i)
	}
	return dst.Len(), nil
}

// errTooManyTicks reports a batch over the caller's tick limit.
var errTooManyTicks = fmt.Errorf("event: batch exceeds tick limit")

// IsTooManyTicks reports whether err is the decoder's over-limit error.
func IsTooManyTicks(err error) bool { return err == errTooManyTicks }

func skipSpace(data []byte, i int) int {
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// tick parses one {"events":[...],"props":{...}} object starting at
// data[i], setting slots on p, and returns the index after it.
func (d *BatchDecoder) tick(data []byte, i int, p Packed) (int, error) {
	if i >= len(data) || data[i] != '{' {
		return 0, fmt.Errorf("event: tick %d: expected '{'", i)
	}
	i = skipSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		return i + 1, nil
	}
	var sawEvents, sawProps bool
	for {
		key, j, err := d.str(data, i)
		if err != nil {
			return 0, err
		}
		i = skipSpace(data, j)
		if i >= len(data) || data[i] != ':' {
			return 0, fmt.Errorf("event: offset %d: expected ':'", i)
		}
		i = skipSpace(data, i+1)
		switch string(key) {
		case "events":
			if sawEvents {
				return 0, fmt.Errorf("event: duplicate events field")
			}
			sawEvents = true
			i, err = d.events(data, i, p)
		case "props":
			if sawProps {
				return 0, fmt.Errorf("event: duplicate props field")
			}
			sawProps = true
			i, err = d.props(data, i, p)
		default:
			return 0, fmt.Errorf("event: unknown tick field %q", key)
		}
		if err != nil {
			return 0, err
		}
		i = skipSpace(data, i)
		if i >= len(data) {
			return 0, fmt.Errorf("event: unterminated tick object")
		}
		switch data[i] {
		case ',':
			i = skipSpace(data, i+1)
		case '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("event: offset %d: expected ',' or '}'", i)
		}
	}
}

// events parses null or an array of event-name strings, setting the
// slot of every name the vocabulary declares as an event.
func (d *BatchDecoder) events(data []byte, i int, p Packed) (int, error) {
	if next, ok := literal(data, i, "null"); ok {
		return next, nil
	}
	if i >= len(data) || data[i] != '[' {
		return 0, fmt.Errorf("event: offset %d: expected events array", i)
	}
	i = skipSpace(data, i+1)
	if i < len(data) && data[i] == ']' {
		return i + 1, nil
	}
	for {
		name, j, err := d.str(data, i)
		if err != nil {
			return 0, err
		}
		if slot, ok := d.vocab.index[string(name)]; ok && d.vocab.symbols[slot].Kind == KindEvent {
			p.Set(slot)
		}
		i = skipSpace(data, j)
		if i >= len(data) {
			return 0, fmt.Errorf("event: unterminated events array")
		}
		switch data[i] {
		case ',':
			i = skipSpace(data, i+1)
		case ']':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("event: offset %d: expected ',' or ']'", i)
		}
	}
}

// props parses null or an object of name:bool pairs, setting the slot
// of every true name the vocabulary declares as a prop.
func (d *BatchDecoder) props(data []byte, i int, p Packed) (int, error) {
	if next, ok := literal(data, i, "null"); ok {
		return next, nil
	}
	if i >= len(data) || data[i] != '{' {
		return 0, fmt.Errorf("event: offset %d: expected props object", i)
	}
	i = skipSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		return i + 1, nil
	}
	for {
		name, j, err := d.str(data, i)
		if err != nil {
			return 0, err
		}
		i = skipSpace(data, j)
		if i >= len(data) || data[i] != ':' {
			return 0, fmt.Errorf("event: offset %d: expected ':'", i)
		}
		i = skipSpace(data, i+1)
		if next, ok := literal(data, i, "true"); ok {
			if slot, ok := d.vocab.index[string(name)]; ok && d.vocab.symbols[slot].Kind == KindProp {
				p.Set(slot)
			}
			i = next
		} else if next, ok := literal(data, i, "false"); ok {
			i = next
		} else {
			return 0, fmt.Errorf("event: offset %d: expected true or false", i)
		}
		i = skipSpace(data, i)
		if i >= len(data) {
			return 0, fmt.Errorf("event: unterminated props object")
		}
		switch data[i] {
		case ',':
			i = skipSpace(data, i+1)
		case '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("event: offset %d: expected ',' or '}'", i)
		}
	}
}

// literal matches a bare JSON literal at data[i] and returns the index
// after it. The byte following must not extend an identifier, so
// "nullx" does not match "null".
func literal(data []byte, i int, lit string) (int, bool) {
	if i+len(lit) > len(data) || string(data[i:i+len(lit)]) != lit {
		return 0, false
	}
	j := i + len(lit)
	if j < len(data) {
		switch c := data[j]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			return 0, false
		}
	}
	return j, true
}

// str parses the JSON string starting at data[i] (which must be '"').
// It returns the decoded bytes — a sub-slice of data when no escapes
// occur, the reused scratch buffer otherwise — and the index after the
// closing quote. The returned slice is valid until the next str call.
func (d *BatchDecoder) str(data []byte, i int) ([]byte, int, error) {
	if i >= len(data) || data[i] != '"' {
		return nil, 0, fmt.Errorf("event: offset %d: expected string", i)
	}
	i++
	start := i
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			return data[start:i], i + 1, nil
		case c == '\\':
			return d.strSlow(data, start, i)
		case c < 0x20:
			return nil, 0, fmt.Errorf("event: control byte in string")
		}
		i++
	}
	return nil, 0, fmt.Errorf("event: unterminated string")
}

// strSlow finishes parsing a string that contains escapes, unescaping
// into the scratch buffer.
func (d *BatchDecoder) strSlow(data []byte, start, i int) ([]byte, int, error) {
	d.scratch = append(d.scratch[:0], data[start:i]...)
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			return d.scratch, i + 1, nil
		case c < 0x20:
			return nil, 0, fmt.Errorf("event: control byte in string")
		case c != '\\':
			d.scratch = append(d.scratch, c)
			i++
			continue
		}
		i++
		if i >= len(data) {
			return nil, 0, fmt.Errorf("event: unterminated escape")
		}
		switch data[i] {
		case '"', '\\', '/':
			d.scratch = append(d.scratch, data[i])
			i++
		case 'b':
			d.scratch = append(d.scratch, '\b')
			i++
		case 'f':
			d.scratch = append(d.scratch, '\f')
			i++
		case 'n':
			d.scratch = append(d.scratch, '\n')
			i++
		case 'r':
			d.scratch = append(d.scratch, '\r')
			i++
		case 't':
			d.scratch = append(d.scratch, '\t')
			i++
		case 'u':
			r, next, err := hexRune(data, i+1)
			if err != nil {
				return nil, 0, err
			}
			i = next
			if utf16.IsSurrogate(r) {
				// A high surrogate may pair with an immediately following
				// \uXXXX low surrogate; anything else is the replacement
				// rune, matching encoding/json.
				if i+1 < len(data) && data[i] == '\\' && data[i+1] == 'u' {
					r2, next2, err := hexRune(data, i+2)
					if err != nil {
						return nil, 0, err
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						r = dec
						i = next2
					} else {
						r = utf8.RuneError
					}
				} else {
					r = utf8.RuneError
				}
			}
			d.scratch = utf8.AppendRune(d.scratch, r)
		default:
			return nil, 0, fmt.Errorf("event: bad escape \\%c", data[i])
		}
	}
	return nil, 0, fmt.Errorf("event: unterminated string")
}

// hexRune parses the four hex digits of a \uXXXX escape starting at
// data[i] and returns the rune plus the index after the digits.
func hexRune(data []byte, i int) (rune, int, error) {
	if i+4 > len(data) {
		return 0, 0, fmt.Errorf("event: truncated \\u escape")
	}
	var r rune
	for _, c := range data[i : i+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, 0, fmt.Errorf("event: bad \\u escape digit %q", c)
		}
	}
	return r, i + 4, nil
}
