package event

import (
	"testing"
	"testing/quick"
)

func TestVocabularyDeclare(t *testing.T) {
	v := NewVocabulary()
	i, err := v.Declare("req", KindEvent)
	if err != nil || i != 0 {
		t.Fatalf("declare = %d, %v", i, err)
	}
	j, err := v.Declare("req", KindEvent)
	if err != nil || j != 0 {
		t.Errorf("idempotent redeclare = %d, %v", j, err)
	}
	if _, err := v.Declare("req", KindProp); err == nil {
		t.Error("kind conflict not rejected")
	}
	if _, err := v.Declare("", KindEvent); err == nil {
		t.Error("empty name not rejected")
	}
	v.MustDeclare("ready", KindProp)
	if v.Len() != 2 {
		t.Errorf("len = %d", v.Len())
	}
	if v.Lookup("ready") != 1 || v.Lookup("nope") != -1 {
		t.Error("lookup misbehaves")
	}
	if v.Symbol(1).Kind != KindProp {
		t.Error("symbol kind lost")
	}
	names := v.Names()
	if len(names) != 2 || names[0] != "req" {
		t.Errorf("names = %v", names)
	}
}

func TestMustDeclarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDeclare did not panic on conflict")
		}
	}()
	v := NewVocabulary()
	v.MustDeclare("x", KindEvent)
	v.MustDeclare("x", KindProp)
}

func TestKindString(t *testing.T) {
	if KindEvent.String() != "event" || KindProp.String() != "prop" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	s := Symbol{Name: "req", Kind: KindEvent}
	if s.String() != "req:event" {
		t.Errorf("symbol string = %q", s.String())
	}
}

func TestStateOperations(t *testing.T) {
	s := NewState().WithEvents("a", "b").WithProps("p").WithProp("q", false)
	if !s.Event("a") || !s.Event("b") || s.Event("c") {
		t.Error("event valuation wrong")
	}
	if !s.Prop("p") || s.Prop("q") || s.Prop("r") {
		t.Error("prop valuation wrong")
	}
	if s.IsEmpty() {
		t.Error("non-empty state reported empty")
	}
	if !NewState().IsEmpty() {
		t.Error("empty state not empty")
	}
	// q:false is equivalent to q absent.
	other := NewState().WithEvents("a", "b").WithProps("p")
	if !s.Equal(other) {
		t.Error("false entry breaks equality with absent entry")
	}
	c := s.Clone()
	c.Events["a"] = false
	if !s.Event("a") {
		t.Error("clone aliases original")
	}
}

func TestStateString(t *testing.T) {
	s := NewState().WithEvents("b", "a").WithProps("p1")
	if got := s.String(); got != "{a, b | p1}" {
		t.Errorf("string = %q", got)
	}
	if got := NewState().String(); got != "{}" {
		t.Errorf("empty = %q", got)
	}
	if got := NewState().WithProps("p").String(); got != "{| p}" {
		t.Errorf("props-only = %q", got)
	}
}

func TestSupportConstruction(t *testing.T) {
	sp, err := NewSupport([]Symbol{
		{Name: "b", Kind: KindEvent},
		{Name: "a", Kind: KindProp},
		{Name: "b", Kind: KindEvent}, // dup
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 2 {
		t.Fatalf("len = %d", sp.Len())
	}
	// Sorted by name.
	if sp.Symbols()[0].Name != "a" || sp.Index("b") != 1 {
		t.Error("ordering wrong")
	}
	if sp.Index("zz") != -1 {
		t.Error("missing index not -1")
	}
	if sp.NumValuations() != 4 {
		t.Errorf("valuations = %d", sp.NumValuations())
	}
	if _, err := NewSupport([]Symbol{{Name: "x", Kind: KindEvent}, {Name: "x", Kind: KindProp}}); err == nil {
		t.Error("kind conflict not rejected")
	}
}

func TestSupportTooLarge(t *testing.T) {
	syms := make([]Symbol, MaxSupportBits+1)
	for i := range syms {
		syms[i] = Symbol{Name: string(rune('a'+i/26)) + string(rune('a'+i%26)), Kind: KindEvent}
	}
	if _, err := NewSupport(syms); err == nil {
		t.Error("oversized support accepted")
	}
}

func TestValuationBits(t *testing.T) {
	var v Valuation
	v = v.SetBit(3, true)
	if !v.Bit(3) || v.Bit(2) {
		t.Error("bit ops wrong")
	}
	v = v.SetBit(3, false)
	if v != 0 {
		t.Error("clear failed")
	}
}

// TestValuationStateRoundTrip: projecting the expansion of any valuation
// returns the valuation (property-based).
func TestValuationStateRoundTrip(t *testing.T) {
	sp, err := NewSupport([]Symbol{
		{Name: "e1", Kind: KindEvent},
		{Name: "e2", Kind: KindEvent},
		{Name: "p1", Kind: KindProp},
		{Name: "p2", Kind: KindProp},
		{Name: "p3", Kind: KindProp},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint8) bool {
		v := Valuation(raw) & Valuation(sp.NumValuations()-1)
		return sp.Valuation(sp.State(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupportUnion(t *testing.T) {
	a, _ := NewSupport([]Symbol{{Name: "x", Kind: KindEvent}})
	b, _ := NewSupport([]Symbol{{Name: "y", Kind: KindProp}, {Name: "x", Kind: KindEvent}})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union len = %d", u.Len())
	}
	c, _ := NewSupport([]Symbol{{Name: "x", Kind: KindProp}})
	if _, err := a.Union(c); err == nil {
		t.Error("union kind conflict not rejected")
	}
}

func TestValuationContext(t *testing.T) {
	sp, _ := NewSupport([]Symbol{
		{Name: "e", Kind: KindEvent},
		{Name: "p", Kind: KindProp},
	})
	ctx := ValuationContext{Sup: sp, Val: Valuation(0).SetBit(sp.Index("e"), true)}
	if !ctx.Event("e") || ctx.Prop("p") || ctx.Event("absent") {
		t.Error("context valuation wrong")
	}
	if ctx.ChkEvt("e") {
		t.Error("ChkEvt must be false in a pure valuation")
	}
}
