package event

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// refTick mirrors server.StateJSON for the reference decode path.
type refTick struct {
	Events []string        `json:"events,omitempty"`
	Props  map[string]bool `json:"props,omitempty"`
}

func (t refTick) toState() State {
	s := NewState()
	for _, e := range t.Events {
		s.Events[e] = true
	}
	for p, v := range t.Props {
		s.Props[p] = v
	}
	return s
}

// refDecode is the slow path the decoder must match bit-for-bit:
// encoding/json into StateJSON-shaped structs, ToState, PackInto.
func refDecode(t *testing.T, v *Vocabulary, body string) []Packed {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(body))
	var out []Packed
	for dec.More() {
		var tick refTick
		if err := dec.Decode(&tick); err != nil {
			t.Fatalf("reference decode: %v", err)
		}
		out = append(out, v.Pack(tick.toState()))
	}
	return out
}

func testVocab(t *testing.T) *Vocabulary {
	t.Helper()
	v := NewVocabulary()
	for _, e := range []string{"cmd", "resp", "data", `quo"te`, "esc\\ape", "unié"} {
		v.MustDeclare(e, KindEvent)
	}
	for _, p := range []string{"busy", "ready", "tab\tprop"} {
		v.MustDeclare(p, KindProp)
	}
	return v
}

func TestBatchDecoderMatchesJSONPath(t *testing.T) {
	v := testVocab(t)
	bodies := []string{
		`{"events":["cmd"],"props":{"busy":true}}`,
		`{"events":["cmd","resp","data"]}` + "\n" + `{"props":{"busy":true,"ready":false}}`,
		"  \t\n" + `{ "events" : [ "cmd" , "resp" ] , "props" : { "ready" : true } }` + "\r\n  ",
		`{}` + "\n" + `{"events":[],"props":{}}` + "\n" + `{"events":null,"props":null}`,
		// Field order reversed, unknown symbols dropped, kind mismatches
		// dropped (cmd as prop, busy as event).
		`{"props":{"cmd":true,"busy":true,"nosuch":true},"events":["busy","nosuch","resp"]}`,
		// Escapes resolving to declared symbols.
		`{"events":["quo\"te","esc\\ape","unié"],"props":{"tab\tprop":true}}`,
		`{"events":["cmd"]}`,
		// False props and empty ticks interleaved.
		`{"props":{"busy":false}}` + `{"events":["data"]}`,
	}
	for i, body := range bodies {
		want := refDecode(t, v, body)
		d := NewBatchDecoder(v)
		var got PackedBatch
		n, err := d.Decode([]byte(body), &got, 0)
		if err != nil {
			t.Fatalf("body %d: decode: %v", i, err)
		}
		if n != len(want) {
			t.Fatalf("body %d: decoded %d ticks, want %d", i, n, len(want))
		}
		for j := range want {
			if !got.Tick(j).Equal(want[j]) {
				t.Errorf("body %d tick %d: packed %x, want %x", i, j, got.Tick(j), want[j])
			}
		}
	}
}

func TestBatchDecoderRandomizedEquivalence(t *testing.T) {
	v := testVocab(t)
	names := append([]string{}, v.Names()...)
	names = append(names, "unknown1", "unknown2")
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		var sb strings.Builder
		nticks := rng.Intn(8)
		for k := 0; k < nticks; k++ {
			tick := refTick{Props: map[string]bool{}}
			for _, n := range names {
				switch rng.Intn(5) {
				case 0:
					tick.Events = append(tick.Events, n)
				case 1:
					tick.Props[n] = rng.Intn(2) == 0
				}
			}
			data, err := json.Marshal(tick)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(data)
			sb.WriteByte('\n')
		}
		body := sb.String()
		want := refDecode(t, v, body)
		d := NewBatchDecoder(v)
		var got PackedBatch
		n, err := d.Decode([]byte(body), &got, 0)
		if err != nil {
			t.Fatalf("round %d: decode: %v\nbody: %s", round, err, body)
		}
		if n != len(want) {
			t.Fatalf("round %d: decoded %d ticks, want %d", round, n, len(want))
		}
		for j := range want {
			if !got.Tick(j).Equal(want[j]) {
				t.Errorf("round %d tick %d: packed %x, want %x", round, j, got.Tick(j), want[j])
			}
		}
	}
}

func TestBatchDecoderErrors(t *testing.T) {
	v := testVocab(t)
	bad := []string{
		`{"events":["cmd"]`,            // unterminated object
		`{"events":"cmd"}`,             // not an array
		`{"events":[123]}`,             // not a string
		`{"props":{"busy":1}}`,         // not a bool
		`{"props":{"busy":truex}}`,     // bad literal
		`{"extra":true}`,               // unknown field (json would ignore; we fall back)
		`{"events":["a"],"events":[]}`, // duplicate field
		`{"events":["\q"]}`,            // bad escape
		`{"events":["\u00"]}`,          // truncated \u
		`[{"events":["cmd"]}]`,         // array wrapper, not NDJSON
		`{"events":["cmd"]} trailing`,  // trailing garbage
	}
	for i, body := range bad {
		d := NewBatchDecoder(v)
		var got PackedBatch
		if _, err := d.Decode([]byte(body), &got, 0); err == nil {
			t.Errorf("body %d (%s): expected error", i, body)
		}
	}
}

func TestBatchDecoderTickLimit(t *testing.T) {
	v := testVocab(t)
	body := strings.Repeat(`{"events":["cmd"]}`+"\n", 5)
	d := NewBatchDecoder(v)
	var got PackedBatch
	n, err := d.Decode([]byte(body), &got, 3)
	if !IsTooManyTicks(err) {
		t.Fatalf("err = %v, want too-many-ticks", err)
	}
	if n <= 3 {
		t.Fatalf("n = %d, want > limit to signal overflow", n)
	}
	if _, err := d.Decode([]byte(body), &got, 5); err != nil {
		t.Fatalf("at-limit decode: %v", err)
	}
	if _, err := d.Decode([]byte(body), &got, 6); err != nil {
		t.Fatalf("under-limit decode: %v", err)
	}
}

func TestBatchDecoderSurrogatePairs(t *testing.T) {
	v := NewVocabulary()
	v.MustDeclare("pair\U0001D11E", KindEvent) // U+1D11E musical G clef
	body := `{"events":["pair𝄞"]}`
	d := NewBatchDecoder(v)
	var got PackedBatch
	if _, err := d.Decode([]byte(body), &got, 0); err != nil {
		t.Fatal(err)
	}
	if !got.Tick(0).Bit(0) {
		t.Fatal("literal astral-plane name did not resolve")
	}
	escaped := `{"events":["pair\uD834\uDD1E"]}`
	var gotEsc PackedBatch
	if _, err := d.Decode([]byte(escaped), &gotEsc, 0); err != nil {
		t.Fatal(err)
	}
	if !gotEsc.Tick(0).Bit(0) {
		t.Fatal("surrogate-pair escaped name did not resolve")
	}
	// Lone surrogates become the replacement rune, exactly like
	// encoding/json — verified against the reference path.
	lone := `{"events":["pair\uD834"]}`
	want := refDecode(t, v, lone)
	var got2 PackedBatch
	if _, err := d.Decode([]byte(lone), &got2, 0); err != nil {
		t.Fatal(err)
	}
	if !got2.Tick(0).Equal(want[0]) {
		t.Fatalf("lone surrogate: packed %x, want %x", got2.Tick(0), want[0])
	}
}

// TestBatchDecoderZeroAlloc locks in the acceptance criterion: steady
// state decoding allocates nothing per tick (the backing array is
// reused across Decodes).
func TestBatchDecoderZeroAlloc(t *testing.T) {
	v := testVocab(t)
	var sb strings.Builder
	for k := 0; k < 64; k++ {
		fmt.Fprintf(&sb, `{"events":["cmd","resp"],"props":{"busy":true}}`+"\n")
	}
	body := []byte(sb.String())
	d := NewBatchDecoder(v)
	var batch PackedBatch
	if _, err := d.Decode(body, &batch, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.Decode(body, &batch, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocates %.1f/op, want 0", allocs)
	}
}
