// Package event defines the vocabulary over which CESC specifications and
// their synthesized monitors operate: events, propositions, states
// (valuations of both), and compact supports used during monitor synthesis.
//
// Following the paper's semantics, a state s is a pair of valuations
// (f1, f2) with f1 : PROP -> Bool and f2 : EVENTS -> Bool. A run is a
// sequence of states indexed by clock ticks.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the two symbol namespaces of the paper's alphabet
// Sigma = EVENTS ∪ PROP.
type Kind int

const (
	// KindEvent is a pulse-like occurrence (f2 in the paper).
	KindEvent Kind = iota
	// KindProp is a level-like proposition over system variables (f1).
	KindProp
)

// String returns "event" or "prop".
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindProp:
		return "prop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Symbol is a named member of the alphabet.
type Symbol struct {
	Name string
	Kind Kind
}

// String formats the symbol as name:kind.
func (s Symbol) String() string { return s.Name + ":" + s.Kind.String() }

// Vocabulary is a symbol table assigning stable indices to symbols.
// The zero value is not usable; construct with NewVocabulary.
type Vocabulary struct {
	symbols []Symbol
	index   map[string]int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Declare registers a symbol, returning its index. Re-declaring the same
// name with the same kind is idempotent; with a different kind it errors.
func (v *Vocabulary) Declare(name string, kind Kind) (int, error) {
	if name == "" {
		return -1, fmt.Errorf("event: empty symbol name")
	}
	if i, ok := v.index[name]; ok {
		if v.symbols[i].Kind != kind {
			return -1, fmt.Errorf("event: symbol %q redeclared as %s (was %s)",
				name, kind, v.symbols[i].Kind)
		}
		return i, nil
	}
	i := len(v.symbols)
	v.symbols = append(v.symbols, Symbol{Name: name, Kind: kind})
	v.index[name] = i
	return i, nil
}

// MustDeclare is Declare that panics on error; for tests and literals.
func (v *Vocabulary) MustDeclare(name string, kind Kind) int {
	i, err := v.Declare(name, kind)
	if err != nil {
		panic(err)
	}
	return i
}

// Lookup returns the index of name, or -1 if undeclared.
func (v *Vocabulary) Lookup(name string) int {
	if i, ok := v.index[name]; ok {
		return i
	}
	return -1
}

// Symbol returns the symbol at index i.
func (v *Vocabulary) Symbol(i int) Symbol { return v.symbols[i] }

// Len returns the number of declared symbols.
func (v *Vocabulary) Len() int { return len(v.symbols) }

// Names returns all declared names in declaration order.
func (v *Vocabulary) Names() []string {
	out := make([]string, len(v.symbols))
	for i, s := range v.symbols {
		out[i] = s.Name
	}
	return out
}

// State is a valuation of propositions and events — the paper's
// s = (f1, f2). Absent keys are false, matching the intuition that an
// unmentioned event does not occur and an unmentioned proposition does
// not hold.
type State struct {
	Props  map[string]bool
	Events map[string]bool
}

// NewState returns an empty state (all symbols false).
func NewState() State {
	return State{Props: make(map[string]bool), Events: make(map[string]bool)}
}

// WithEvents returns a copy of s with the named events set true.
func (s State) WithEvents(names ...string) State {
	c := s.Clone()
	for _, n := range names {
		c.Events[n] = true
	}
	return c
}

// WithProps returns a copy of s with the named propositions set true.
func (s State) WithProps(names ...string) State {
	c := s.Clone()
	for _, n := range names {
		c.Props[n] = true
	}
	return c
}

// WithProp returns a copy of s with proposition name set to val.
func (s State) WithProp(name string, val bool) State {
	c := s.Clone()
	c.Props[name] = val
	return c
}

// Clone returns a deep copy of s.
func (s State) Clone() State {
	c := NewState()
	for k, v := range s.Props {
		c.Props[k] = v
	}
	for k, v := range s.Events {
		c.Events[k] = v
	}
	return c
}

// Event reports f2(name).
func (s State) Event(name string) bool { return s.Events[name] }

// Prop reports f1(name).
func (s State) Prop(name string) bool { return s.Props[name] }

// IsEmpty reports whether no event occurs and no proposition holds.
func (s State) IsEmpty() bool {
	for _, v := range s.Events {
		if v {
			return false
		}
	}
	for _, v := range s.Props {
		if v {
			return false
		}
	}
	return true
}

// Equal reports whether two states assign the same truth values
// (absent keys are false).
func (s State) Equal(t State) bool {
	return mapsAgree(s.Events, t.Events) && mapsAgree(s.Props, t.Props)
}

func mapsAgree(a, b map[string]bool) bool {
	for k, v := range a {
		if v != b[k] {
			return false
		}
	}
	for k, v := range b {
		if v != a[k] {
			return false
		}
	}
	return true
}

// String renders the true symbols in deterministic order, e.g.
// "{req1, rd1 | p1}" (events | props). The empty state renders as "{}".
func (s State) String() string {
	var evs, prs []string
	for k, v := range s.Events {
		if v {
			evs = append(evs, k)
		}
	}
	for k, v := range s.Props {
		if v {
			prs = append(prs, k)
		}
	}
	sort.Strings(evs)
	sort.Strings(prs)
	if len(evs) == 0 && len(prs) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(strings.Join(evs, ", "))
	if len(prs) > 0 {
		if len(evs) > 0 {
			b.WriteString(" | ")
		} else {
			b.WriteString("| ")
		}
		b.WriteString(strings.Join(prs, ", "))
	}
	b.WriteByte('}')
	return b.String()
}
