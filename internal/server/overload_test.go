package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ocp"
)

// doJSONHdr is doJSON plus request headers (tenant keying tests).
func doJSONHdr(t *testing.T, method, url string, hdr map[string]string, body []byte, wantCode int, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

// createTenantSession opens a session keyed to an explicit tenant.
func createTenantSession(t *testing.T, base, tenant, mode string, specs ...string) SessionInfoJSON {
	t.Helper()
	body, _ := json.Marshal(createSessionRequest{Specs: specs, Mode: mode})
	var info SessionInfoJSON
	doJSONHdr(t, "POST", base+"/sessions", map[string]string{"X-Cesc-Tenant": tenant}, body, http.StatusCreated, &info)
	if info.Tenant != tenant {
		t.Fatalf("session tenant = %q, want %q", info.Tenant, tenant)
	}
	return info
}

// TestTenantTickQuota: a tenant that outruns its token bucket gets 429 +
// Retry-After with X-Cesc-Quota: ticks, and the refusal is accounted to
// the tenant, not the server.
func TestTenantTickQuota(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16, QuotaTickRate: 1, QuotaTickBurst: 64}
	s, ts := newTestServer(t, cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 31, FaultRate: 0.2}).GenerateTrace(128)
	sess := createTenantSession(t, ts.URL, "acme", "assert", "OcpSimpleRead")

	url := fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID)
	// The burst covers the first 64 ticks exactly.
	doJSON(t, "POST", url, ndjson(t, tr[:64]), http.StatusOK, nil)
	// The second batch outruns the 1 tick/s refill.
	resp := doJSON(t, "POST", url, ndjson(t, tr[64:]), http.StatusTooManyRequests, nil)
	if q := resp.Header.Get("X-Cesc-Quota"); q != "ticks" {
		t.Fatalf("X-Cesc-Quota = %q, want \"ticks\"", q)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want >= 1 second", resp.Header.Get("Retry-After"))
	}

	m := s.Metrics()
	ten, ok := m.Tenants["acme"]
	if !ok {
		t.Fatalf("tenant acme missing from metrics: %v", m.Tenants)
	}
	if ten.Ticks != 64 || ten.Rejections["ticks"] != 1 {
		t.Fatalf("tenant acme: ticks=%d rejections=%v, want 64 ticks and one \"ticks\" rejection", ten.Ticks, ten.Rejections)
	}
	if m.RejectedTotal == 0 {
		t.Fatal("rejected_total = 0, want > 0")
	}
	// The session is intact: only the over-quota batch was refused.
	var info SessionInfoJSON
	doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Steps != 64 {
		t.Fatalf("steps = %d, want 64", info.Steps)
	}
}

// TestTenantSessionQuota: QuotaMaxSessions caps open sessions per tenant
// (hot + cold) with a terminal 429 + X-Cesc-Quota: sessions; other
// tenants are unaffected.
func TestTenantSessionQuota(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16, QuotaMaxSessions: 2}
	s, ts := newTestServer(t, cfg)
	createTenantSession(t, ts.URL, "acme", "detect", "OcpSimpleRead")
	createTenantSession(t, ts.URL, "acme", "detect", "OcpSimpleRead")

	body, _ := json.Marshal(createSessionRequest{Specs: []string{"OcpSimpleRead"}, Mode: "detect"})
	resp := doJSONHdr(t, "POST", ts.URL+"/sessions", map[string]string{"X-Cesc-Tenant": "acme"},
		body, http.StatusTooManyRequests, nil)
	if q := resp.Header.Get("X-Cesc-Quota"); q != "sessions" {
		t.Fatalf("X-Cesc-Quota = %q, want \"sessions\"", q)
	}
	// A different tenant — and the header-less session-ID-prefix default
	// — still create fine.
	createTenantSession(t, ts.URL, "bob", "detect", "OcpSimpleRead")
	createSession(t, ts.URL, "detect", "OcpSimpleRead")

	ten := s.Metrics().Tenants["acme"]
	if ten.HotSessions != 2 || ten.Rejections["sessions"] != 1 {
		t.Fatalf("tenant acme: hot=%d rejections=%v, want 2 hot and one \"sessions\" rejection",
			ten.HotSessions, ten.Rejections)
	}
}

// TestTenantHotSessionFairness: QuotaHotSessions is fairness, not
// rejection — a tenant going past its hot cap gets its own coldest
// session paged out, and a revival that re-breaches the cap pages the
// other one, never the session just touched.
func TestTenantHotSessionFairness(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16, QuotaHotSessions: 1}
	s, ts := newWALServer(t, t.TempDir(), cfg)
	a := createTenantSession(t, ts.URL, "acme", "assert", "OcpSimpleRead")
	time.Sleep(3 * time.Millisecond) // make a strictly the colder session
	b := createTenantSession(t, ts.URL, "acme", "assert", "OcpSimpleRead")

	// Creating b pushed acme past the cap; a (coldest) was paged, b kept.
	cold := coldIDs(t, ts.URL)
	if !cold[a.ID] || cold[b.ID] {
		t.Fatalf("cold set = %v, want exactly the older session %s", cold, a.ID)
	}
	ten := s.Metrics().Tenants["acme"]
	if ten.HotSessions != 1 || ten.ColdSessions != 1 {
		t.Fatalf("tenant acme: hot=%d cold=%d, want 1/1", ten.HotSessions, ten.ColdSessions)
	}

	// Touching a revives it and demotes b — a revival never evicts itself.
	verdictFor(t, ts.URL, a.ID, "OcpSimpleRead")
	cold = coldIDs(t, ts.URL)
	if cold[a.ID] || !cold[b.ID] {
		t.Fatalf("cold set after reviving %s = %v, want %s cold", a.ID, cold, b.ID)
	}
	if paged := s.Metrics().SessionsPaged; paged != 2 {
		t.Fatalf("sessions_paged = %d, want 2", paged)
	}
}

// TestGovernorForcedShedWait: degradation level 1 via the
// governor.force.wait fault point — a ?wait=1 batch is accepted and
// processed but answered 202 + X-Cesc-Shed: wait immediately, with
// processed=false, and nothing is lost.
func TestGovernorForcedShedWait(t *testing.T) {
	faults := faultinject.New(1).Add(faultinject.Rule{Point: "governor.force.wait", Kind: faultinject.KindError, Every: 1})
	cfg := Config{Shards: 1, QueueDepth: 16, Faults: faults}
	s, ts := newTestServer(t, cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 32, FaultRate: 0.2}).GenerateTrace(32)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")

	var resp map[string]any
	r := doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID),
		ndjson(t, tr), http.StatusAccepted, &resp)
	if shed := r.Header.Get("X-Cesc-Shed"); shed != "wait" {
		t.Fatalf("X-Cesc-Shed = %q, want \"wait\"", shed)
	}
	if resp["processed"] != false || resp["accepted"] != float64(32) {
		t.Fatalf("shed-wait response = %v, want accepted=32 processed=false", resp)
	}
	// The batch was still fully processed — only the latency coupling
	// was shed.
	waitFor(t, 5*time.Second, func() bool {
		var info SessionInfoJSON
		doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
		return info.Steps == 32
	})
	if shed := s.Metrics().ShedWait; shed == 0 {
		t.Fatal("shed_wait = 0, want > 0")
	}
}

// TestGovernorForcedThrottleSessions: degradation level 2 via the
// governor.force.sessions fault point — POST /sessions answers 429 +
// X-Cesc-Shed: sessions with a jittered Retry-After in [1,3], while
// existing sessions keep ingesting.
func TestGovernorForcedThrottleSessions(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16}
	// Create the existing session before arming the fault.
	faults := faultinject.New(1)
	cfg.Faults = faults
	s, ts := newTestServer(t, cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 33, FaultRate: 0.2}).GenerateTrace(32)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")

	faults.Add(faultinject.Rule{Point: "governor.force.sessions", Kind: faultinject.KindError, Every: 1})
	body, _ := json.Marshal(createSessionRequest{Specs: []string{"OcpSimpleRead"}, Mode: "assert"})
	r := doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusTooManyRequests, nil)
	if shed := r.Header.Get("X-Cesc-Shed"); shed != "sessions" {
		t.Fatalf("X-Cesc-Shed = %q, want \"sessions\"", shed)
	}
	ra, err := strconv.Atoi(r.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("Retry-After = %q, want jittered 1..3", r.Header.Get("Retry-After"))
	}
	// The existing session's ingest is NOT refused at level 2 — the
	// batch is accepted (202, with the level-1 wait shed also active)
	// and fully processed.
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID),
		ndjson(t, tr), http.StatusAccepted, nil)
	waitFor(t, 5*time.Second, func() bool {
		var info SessionInfoJSON
		doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
		return info.Steps == 32
	})
	if shed := s.Metrics().ShedSessions; shed == 0 {
		t.Fatal("shed_sessions = 0, want > 0")
	}
}

// TestGovernorForcedPageout: degradation level 3 via the
// governor.force.pageout fault point — the janitor is kicked and drains
// hot state, the shed is counted, and the paged session still answers
// with complete verdicts when revived. The stream retries through the
// page-out races, so forced paging costs latency, never data.
func TestGovernorForcedPageout(t *testing.T) {
	faults := faultinject.New(1)
	cfg := Config{Shards: 1, QueueDepth: 16, MemBudget: 1, SweepEvery: time.Hour, Faults: faults}
	s, ts := newWALServer(t, t.TempDir(), cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 34, FaultRate: 0.2}).GenerateTrace(192)

	// Create first: level 3 implies level 2, so creation would be shed
	// once the rule is armed.
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	faults.Add(faultinject.Rule{Point: "governor.force.pageout", Kind: faultinject.KindError, Every: 1})
	seq := 0
	for at := 0; at < len(tr); at += 32 {
		seq++
		body := ndjson(t, tr[at:at+32])
		url := fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=%d", ts.URL, sess.ID, seq)
		for {
			code := postTicksStatus(t, url, body)
			if code == http.StatusOK || code == http.StatusAccepted {
				break
			}
			if code != http.StatusConflict && code != http.StatusTooManyRequests {
				t.Fatalf("batch %d: status %d", seq, code)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		m := s.Metrics()
		return m.SessionsPaged > 0 && m.ShedPageouts > 0 && m.SessionsRevived > 0
	})
	// Batches answered under the wait shed finish processing async; the
	// journal already holds them all, so the processed-tick counter
	// converges. (Session info can't be polled for this: a forced
	// pageout may land last, and a cold stub reports no step count —
	// info reads deliberately don't revive.)
	waitFor(t, 5*time.Second, func() bool {
		return s.Metrics().TicksTotal == uint64(len(tr))
	})
	v := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if v.Steps != len(tr) {
		t.Fatalf("steps after forced paging = %d, want %d", v.Steps, len(tr))
	}
}

// TestGovernorLevelsAndLatencySignal covers the score→level mapping and
// the latency leg of the score: with a (deliberately absurd) 1ns
// saturation latency, one processed batch drives the smoothed step time
// past every threshold.
func TestGovernorLevelsAndLatencySignal(t *testing.T) {
	for _, tc := range []struct {
		score float64
		level int
	}{
		{0.0, govLevelOK},
		{0.74, govLevelOK},
		{0.75, govLevelShedWait},
		{0.89, govLevelShedWait},
		{0.90, govLevelThrottleSessions},
		{0.99, govLevelThrottleSessions},
		{1.0, govLevelForcePageout},
		{7.5, govLevelForcePageout},
	} {
		if got := levelForScore(tc.score); got != tc.level {
			t.Errorf("levelForScore(%v) = %d, want %d", tc.score, got, tc.level)
		}
	}
	for _, lvl := range []int{govLevelShedWait, govLevelThrottleSessions, govLevelForcePageout} {
		if levelForScore(levelThreshold(lvl)) != lvl {
			t.Errorf("levelThreshold(%d) does not round-trip through levelForScore", lvl)
		}
	}

	cfg := Config{Shards: 1, QueueDepth: 16, GovernorLatency: time.Nanosecond}
	s, ts := newTestServer(t, cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 35, FaultRate: 0.2}).GenerateTrace(64)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID),
		ndjson(t, tr), http.StatusOK, nil)
	waitFor(t, 5*time.Second, func() bool {
		// Outwait the recompute cache.
		lvl, score := s.GovernorState()
		return lvl == govLevelForcePageout && score >= 1.0
	})
}
