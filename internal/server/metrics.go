package server

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// metrics aggregates daemon-wide counters. Shard workers are the only
// writers of the throughput counters (one writer per shard, atomics for
// cross-shard aggregation); HTTP handlers write the request counters.
type metrics struct {
	start time.Time

	ticksTotal      atomic.Uint64 // valuation ticks processed
	batchesTotal    atomic.Uint64 // tick batches processed
	laneGroupTicks  atomic.Uint64 // ticks stepped via bit-sliced lane groups
	rejectedTotal   atomic.Uint64 // 429 responses (shard queue full)
	acceptsTotal    atomic.Uint64 // monitor acceptances across sessions
	violationsTotal atomic.Uint64 // monitor violations across sessions
	sessionsCreated atomic.Uint64
	// The old sessions_evicted counter conflated losing a session with
	// parking it; it is now split. The JSON field SessionsEvicted remains
	// as the sum for dashboard compatibility.
	sessionsPaged   atomic.Uint64 // checkpointed to WAL and dropped cold (idle or pressure)
	sessionsDeleted atomic.Uint64 // explicit deletes + WAL-less idle evictions (state gone)
	sessionsRevived atomic.Uint64 // cold sessions rebuilt on first touch

	// Shed counters, one per governor degradation stage.
	shedWait     atomic.Uint64 // ?wait=1 demoted to async 202
	shedSessions atomic.Uint64 // session creations throttled 429
	shedPageouts atomic.Uint64 // pressure/governor-forced page-outs

	monitorsQuarantined atomic.Uint64 // engines fenced off after a step panic
	sessionsRecovered   atomic.Uint64 // sessions rebuilt from the WAL at startup
	batchesReplayed     atomic.Uint64 // journal-tail batches re-applied at startup
	batchesDeduped      atomic.Uint64 // ?seq retries absorbed by the watermark
	walErrors           atomic.Uint64 // journal append/snapshot failures
	walSnapshots        atomic.Uint64 // checkpoints written
	journalBytes        atomic.Int64  // measured on-disk journal bytes (gauge)
	journalPruned       atomic.Uint64 // cold sessions deleted by the journal budget

	sessionsMigratedOut atomic.Uint64 // live handoffs shipped to a new owner
	sessionsMigratedIn  atomic.Uint64 // sessions adopted (handoff or standby promotion)

	latency *histogram // enqueue-to-processed latency per tick

	// stage histograms dimension the pipeline: one fixed histogram per
	// processing stage. The map is built once and never mutated, so
	// lookups need no lock.
	stages map[string]*histogram

	// Per-spec verdict counters live here — on the daemon, not the
	// session — so evicting or deleting a session never loses the
	// verdict totals of the specs it ran.
	specMu         sync.Mutex
	specAccepts    map[string]uint64
	specViolations map[string]uint64
}

// stageNames are the dimensioned pipeline stages; each gets a latency
// histogram labelled stage=<name> in the Prometheus exposition.
var stageNames = []string{"decode", "enqueue", "queue_wait", "step", "verdict", "wal_append", "wal_replay"}

func newMetrics() *metrics {
	m := &metrics{
		start:          time.Now(),
		latency:        newHistogram(),
		stages:         make(map[string]*histogram, len(stageNames)),
		specAccepts:    make(map[string]uint64),
		specViolations: make(map[string]uint64),
	}
	for _, st := range stageNames {
		m.stages[st] = newHistogram()
	}
	return m
}

// observeStage records one latency sample for a pipeline stage; unknown
// stages are dropped rather than allocated, keeping label cardinality
// fixed.
func (m *metrics) observeStage(stage string, d time.Duration) {
	if h, ok := m.stages[stage]; ok {
		h.observe(d)
	}
}

// addSpecCounts folds one batch's per-spec verdict deltas into the
// daemon-lifetime counters.
func (m *metrics) addSpecCounts(spec string, accepts, violations uint64) {
	if accepts == 0 && violations == 0 {
		return
	}
	m.specMu.Lock()
	m.specAccepts[spec] += accepts
	m.specViolations[spec] += violations
	m.specMu.Unlock()
}

// specCounts snapshots the per-spec counters.
func (m *metrics) specCounts() (accepts, violations map[string]uint64) {
	m.specMu.Lock()
	defer m.specMu.Unlock()
	accepts = make(map[string]uint64, len(m.specAccepts))
	for k, v := range m.specAccepts {
		accepts[k] = v
	}
	violations = make(map[string]uint64, len(m.specViolations))
	for k, v := range m.specViolations {
		violations[k] = v
	}
	return accepts, violations
}

// ShardSnapshot reports one shard's queue state.
type ShardSnapshot struct {
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Ticks      uint64 `json:"ticks"`
	Sessions   int    `json:"sessions"`
}

// MetricsSnapshot is the JSON body of GET /metrics.
type MetricsSnapshot struct {
	UptimeSec       float64 `json:"uptime_sec"`
	TicksTotal      uint64  `json:"ticks_total"`
	TicksPerSec     float64 `json:"ticks_per_sec"`
	BatchesTotal    uint64  `json:"batches_total"`
	LaneGroupTicks  uint64  `json:"lane_group_ticks"`
	RejectedTotal   uint64  `json:"rejected_total"`
	AcceptsTotal    uint64  `json:"accepts_total"`
	ViolationsTotal uint64  `json:"violations_total"`
	SessionsActive  int     `json:"sessions_active"`
	SessionsCreated uint64  `json:"sessions_created"`
	// SessionsEvicted is the legacy sum SessionsPaged + SessionsDeleted,
	// kept so pre-split dashboards keep reading a meaningful series.
	SessionsEvicted uint64 `json:"sessions_evicted"`
	SessionsPaged   uint64 `json:"sessions_paged"`
	SessionsDeleted uint64 `json:"sessions_deleted"`
	SessionsRevived uint64 `json:"sessions_revived"`
	SessionsCold    int    `json:"sessions_cold"`

	// Memory budget and overload control (zero when unconfigured).
	MemUsedBytes   int64   `json:"mem_used_bytes"`
	MemBudgetBytes int64   `json:"mem_budget_bytes,omitempty"`
	GovernorLevel  int     `json:"governor_level"`
	GovernorScore  float64 `json:"governor_score"`
	ShedWait       uint64  `json:"shed_wait"`
	ShedSessions   uint64  `json:"shed_sessions"`
	ShedPageouts   uint64  `json:"shed_pageouts"`

	// Tenants maps tenant keys to their quota accounting.
	Tenants        map[string]TenantSnapshot `json:"tenants,omitempty"`
	SpecsLoaded    int                       `json:"specs_loaded"`
	Shards         []ShardSnapshot           `json:"shards"`
	TickLatencyP50 int64                     `json:"tick_latency_p50_ns"`
	TickLatencyP99 int64                     `json:"tick_latency_p99_ns"`
	TickLatencyN   uint64                    `json:"tick_latency_samples"`

	MonitorsQuarantined uint64     `json:"monitors_quarantined"`
	SessionsRecovered   uint64     `json:"sessions_recovered"`
	BatchesReplayed     uint64     `json:"batches_replayed"`
	BatchesDeduped      uint64     `json:"batches_deduped"`
	WALErrors           uint64     `json:"wal_errors"`
	WALSnapshots        uint64     `json:"wal_snapshots"`
	JournalBytes        int64      `json:"journal_bytes"`
	JournalBudgetBytes  int64      `json:"journal_budget_bytes,omitempty"`
	JournalPruned       uint64     `json:"journal_pruned"`
	WAL                 *wal.Stats `json:"wal,omitempty"` // nil when journaling is off

	// Cluster handoff counters (always present; zero on a standalone
	// node). The cluster layer's own metrics ride on top at
	// /cluster/status.
	SessionsMigratedOut uint64 `json:"sessions_migrated_out"`
	SessionsMigratedIn  uint64 `json:"sessions_migrated_in"`

	// Dimensioned observability (PR 5): per-spec verdict counters that
	// survive session eviction, per-stage p99 latencies, and the tracing
	// plane's own counters.
	PerSpecAccepts    map[string]uint64 `json:"per_spec_accepts,omitempty"`
	PerSpecViolations map[string]uint64 `json:"per_spec_violations,omitempty"`
	StageLatencyP99   map[string]int64  `json:"stage_latency_p99_ns,omitempty"`
	TraceSpans        uint64            `json:"trace_spans"`
	SlowBatches       uint64            `json:"slow_batches"`
}

// snapshot assembles the exported view; the server fills in the parts it
// owns (shards, sessions, specs).
func (m *metrics) snapshot() MetricsSnapshot {
	uptime := time.Since(m.start).Seconds()
	ticks := m.ticksTotal.Load()
	rate := 0.0
	if uptime > 0 {
		rate = float64(ticks) / uptime
	}
	accepts, violations := m.specCounts()
	stageP99 := make(map[string]int64, len(m.stages))
	for name, h := range m.stages {
		if h.count() > 0 {
			stageP99[name] = int64(h.quantile(0.99))
		}
	}
	return MetricsSnapshot{
		PerSpecAccepts:    accepts,
		PerSpecViolations: violations,
		StageLatencyP99:   stageP99,

		UptimeSec:       uptime,
		TicksTotal:      ticks,
		TicksPerSec:     rate,
		BatchesTotal:    m.batchesTotal.Load(),
		LaneGroupTicks:  m.laneGroupTicks.Load(),
		RejectedTotal:   m.rejectedTotal.Load(),
		AcceptsTotal:    m.acceptsTotal.Load(),
		ViolationsTotal: m.violationsTotal.Load(),
		SessionsCreated: m.sessionsCreated.Load(),
		SessionsEvicted: m.sessionsPaged.Load() + m.sessionsDeleted.Load(),
		SessionsPaged:   m.sessionsPaged.Load(),
		SessionsDeleted: m.sessionsDeleted.Load(),
		SessionsRevived: m.sessionsRevived.Load(),
		ShedWait:        m.shedWait.Load(),
		ShedSessions:    m.shedSessions.Load(),
		ShedPageouts:    m.shedPageouts.Load(),
		TickLatencyP50:  int64(m.latency.quantile(0.50)),
		TickLatencyP99:  int64(m.latency.quantile(0.99)),
		TickLatencyN:    m.latency.count(),

		MonitorsQuarantined: m.monitorsQuarantined.Load(),
		SessionsRecovered:   m.sessionsRecovered.Load(),
		BatchesReplayed:     m.batchesReplayed.Load(),
		BatchesDeduped:      m.batchesDeduped.Load(),
		WALErrors:           m.walErrors.Load(),
		WALSnapshots:        m.walSnapshots.Load(),
		JournalBytes:        m.journalBytes.Load(),
		JournalPruned:       m.journalPruned.Load(),

		SessionsMigratedOut: m.sessionsMigratedOut.Load(),
		SessionsMigratedIn:  m.sessionsMigratedIn.Load(),
	}
}

// expvar integration: the most recently constructed server is exported
// under the "cescd" var so /debug/vars includes daemon metrics. expvar
// forbids re-publishing a name, hence the once + swappable pointer
// (tests construct many servers in one process).
var (
	expvarOnce sync.Once
	expvarSrv  atomic.Pointer[Server]
)

func publishExpvar(s *Server) {
	expvarSrv.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("cescd", expvar.Func(func() any {
			if srv := expvarSrv.Load(); srv != nil {
				return srv.Metrics()
			}
			return nil
		}))
	})
}
