package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verif"
	"repro/internal/wal"
)

// laneChart is the Fig. 6 simple read without its causality arrow: no
// scoreboard actions, no Chk guards, so the synthesized table is
// chk-free and a single-spec detect session on it is lane-steppable.
func laneChart() *chart.SCESC {
	c := ocp.SimpleReadChart()
	c.ChartName = "lane_read"
	c.Arrows = nil
	return c
}

// newLaneServer builds a server with both the lane-eligible spec and
// the arrowed (chk-carrying) original loaded.
func newLaneServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := parser.Print("LaneRead", laneChart()) +
		parser.Print("OcpSimpleRead", ocp.SimpleReadChart())
	if _, err := s.LoadSpecSource(src); err != nil {
		t.Fatalf("loading spec: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// prettyNDJSON renders the trace as indented, multi-line JSON values.
// The lenient stream decoder accepts this; the strict byte-level batch
// decoder does not, so a body in this shape is guaranteed to take the
// slow map path.
func prettyNDJSON(t *testing.T, tr trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range tr {
		data, err := json.MarshalIndent(stateJSON(s), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestBatchFastPathParity streams the same trace through the zero-copy
// batch decoder (compact NDJSON) and the lenient map decoder (indented
// JSON, which the strict decoder rejects) into two sessions of the same
// server: verdicts, coverage, and accept ticks must be byte-identical,
// and both must match the in-process reference engine.
func TestBatchFastPathParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, QueueDepth: 16})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7, FaultRate: 0.15}).GenerateTrace(300)

	fast := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	slow := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	for at := 0; at < len(tr); at += 60 {
		end := at + 60
		if end > len(tr) {
			end = len(tr)
		}
		doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, fast.ID),
			ndjson(t, tr[at:end]), http.StatusOK, nil)
		doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, slow.ID),
			prettyNDJSON(t, tr[at:end]), http.StatusOK, nil)
	}

	got, want := monitorsJSON(t, ts.URL, fast.ID), monitorsJSON(t, ts.URL, slow.ID)
	if string(got) != string(want) {
		t.Fatalf("fast path diverged from slow path:\n fast %s\n slow %s", got, want)
	}
	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAccepts := verif.EngineAcceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect), tr)
	v := verdictFor(t, ts.URL, fast.ID, "OcpSimpleRead")
	if v.Steps != len(tr) || v.Accepts != len(wantAccepts) {
		t.Fatalf("fast path verdict steps=%d accepts=%d, want %d/%d",
			v.Steps, v.Accepts, len(tr), len(wantAccepts))
	}
}

// TestFastPathJournalRecoveryParity checks the raw-batch journal frame
// end to end: fast-path batches are journaled as verbatim NDJSON
// (recBatchRaw), survive a crash, and replay to byte-identical verdicts.
func TestFastPathJournalRecoveryParity(t *testing.T) {
	dir := t.TempDir()
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 21, FaultRate: 0.1}).GenerateTrace(200)
	// SnapshotEvery < 0 keeps the whole journal, so recovery must replay
	// every raw batch rather than lean on a checkpoint.
	s1, ts1 := newWALServer(t, dir, Config{Shards: 1, QueueDepth: 16, SnapshotEvery: -1})
	sess := createSession(t, ts1.URL, "detect", "OcpSimpleRead")
	streamTicks(t, ts1.URL, sess.ID, tr, 25)
	want := monitorsJSON(t, ts1.URL, sess.ID)
	s1.Crash()
	ts1.Close()

	// The journal of a fast-path session must actually hold raw frames —
	// otherwise this test would only re-prove the map-batch path.
	mgr, err := wal.OpenManager(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rawRecords := 0
	j, err := mgr.OpenJournal(sess.ID, func(rec wal.Record) error {
		if rec.Kind == RecordBatchRaw {
			rawRecords++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Abandon()
	if rawRecords == 0 {
		t.Fatal("no raw batch records journaled; fast path did not engage")
	}

	s2, ts2 := newWALServer(t, dir, Config{Shards: 1, QueueDepth: 16, SnapshotEvery: -1})
	if got := monitorsJSON(t, ts2.URL, sess.ID); string(got) != string(want) {
		t.Fatalf("recovered verdicts diverged:\n got %s\nwant %s", got, want)
	}
	if replayed := s2.Metrics().BatchesReplayed; replayed == 0 {
		t.Fatal("no batches replayed from the raw journal")
	}
}

// TestLanePageoutRevivalParity checks the snapshot round trip of a
// lane-eligible session: page it out mid-stream, revive it with more
// fast-path traffic, and compare against an uninterrupted run.
func TestLanePageoutRevivalParity(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Shards: 1, QueueDepth: 16, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpecSource(parser.Print("LaneRead", laneChart())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 5, FaultRate: 0.1}).GenerateTrace(240)
	sess := createSession(t, ts.URL, "detect", "LaneRead")
	live, ok := s.session(sess.ID)
	if !ok || live.laneTab == nil {
		t.Fatalf("session not lane-eligible (laneTab nil); fast path preconditions regressed")
	}
	streamTicks(t, ts.URL, sess.ID, tr[:120], 30)
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/pageout", ts.URL, sess.ID), nil, http.StatusOK, nil)
	if s.Metrics().SessionsCold != 1 {
		t.Fatal("session not cold after pageout")
	}
	streamTicks(t, ts.URL, sess.ID, tr[120:], 30) // revives, then continues fast
	got := verdictFor(t, ts.URL, sess.ID, "LaneRead")

	m, err := synth.Synthesize(laneChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAccepts := verif.EngineAcceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect), tr)
	if got.Steps != len(tr) || got.Accepts != len(wantAccepts) {
		t.Fatalf("revived session verdict steps=%d accepts=%d, want %d/%d",
			got.Steps, got.Accepts, len(tr), len(wantAccepts))
	}
	if s.Metrics().SessionsRevived != 1 {
		t.Fatal("revival not counted")
	}
}

// TestLaneGroupWindow drives processWindow directly with a window of
// packed batches for five lane-eligible sessions sharing one table, one
// slow-path batch, and a second batch for the first session (which, by
// the first-batch-only rule, must run on the scalar path after the
// group). Every session must report verdicts identical to the reference
// engine over its own full input, in order.
func TestLaneGroupWindow(t *testing.T) {
	s, ts := newLaneServer(t, Config{Shards: 1, QueueDepth: 64})
	const lanes = 5
	sessions := make([]*session, lanes)
	traces := make([]trace.Trace, lanes)
	window := make([]*batch, 0, lanes+2)
	for i := 0; i < lanes; i++ {
		info := createSession(t, ts.URL, "detect", "LaneRead")
		live, ok := s.session(info.ID)
		if !ok || live.laneTab == nil {
			t.Fatalf("session %d not lane-eligible", i)
		}
		sessions[i] = live
		traces[i] = ocp.NewModel(ocp.Config{Gap: 2, Seed: int64(i + 1), FaultRate: 0.1}).GenerateTrace(100)
		window = append(window, packedBatch(t, live, traces[i]))
	}
	// A chk-carrying session rides the same window on the scalar path.
	chkInfo := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	chkSess, _ := s.session(chkInfo.ID)
	chkTrace := ocp.NewModel(ocp.Config{Gap: 2, Seed: 9}).GenerateTrace(80)
	window = append(window, &batch{sess: chkSess, states: append(trace.Trace(nil), chkTrace...), enqueued: time.Now()})
	// Second batch for session 0: must not join the group (ordering).
	tail := ocp.NewModel(ocp.Config{Gap: 2, Seed: 99, FaultRate: 0.1}).GenerateTrace(60)
	window = append(window, packedBatch(t, sessions[0], tail))

	s.processWindow(s.shards[0], window)

	if got := s.Metrics().LaneGroupTicks; got != uint64(lanes*100) {
		t.Fatalf("lane_group_ticks = %d, want %d", got, lanes*100)
	}
	m, err := synth.Synthesize(laneChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lanes; i++ {
		input := traces[i]
		if i == 0 {
			input = append(append(trace.Trace(nil), traces[0]...), tail...)
		}
		wantAccepts := verif.EngineAcceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect), input)
		v := verdictFor(t, ts.URL, sessions[i].id, "LaneRead")
		if v.Steps != len(input) || v.Accepts != len(wantAccepts) {
			t.Fatalf("lane session %d: steps=%d accepts=%d, want %d/%d",
				i, v.Steps, v.Accepts, len(input), len(wantAccepts))
		}
		for j, tick := range v.AcceptTicks {
			if tick != wantAccepts[j] {
				t.Fatalf("lane session %d accept tick %d = %d, want %d", i, j, tick, wantAccepts[j])
			}
		}
	}
	mo, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantChk := verif.EngineAcceptTicks(monitor.NewEngine(mo, nil, monitor.ModeDetect), chkTrace)
	if v := verdictFor(t, ts.URL, chkInfo.ID, "OcpSimpleRead"); v.Accepts != len(wantChk) {
		t.Fatalf("scalar session in mixed window: accepts=%d, want %d", v.Accepts, len(wantChk))
	}
}

// packedBatch builds a fast-path batch for the session from the trace,
// through the same decoder ingest uses.
func packedBatch(t *testing.T, sess *session, tr trace.Trace) *batch {
	t.Helper()
	body := ndjson(t, tr)
	pb := new(event.PackedBatch)
	n, err := event.NewBatchDecoder(sess.vocab).Decode(body, pb, 1<<20)
	if err != nil || n != len(tr) {
		t.Fatalf("packing batch: n=%d err=%v", n, err)
	}
	return &batch{sess: sess, packed: pb, raw: body, enqueued: time.Now()}
}

// TestLaneChurnStress churns lane membership under concurrent traffic:
// sessions stream fast-path batches, page out, revive, and delete while
// sharing shards. Run with -race in CI; here it must simply converge to
// correct per-session verdicts.
func TestLaneChurnStress(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Shards: 2, QueueDepth: 64, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpecSource(parser.Print("LaneRead", laneChart())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	m, err := synth.Synthesize(laneChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: int64(w + 1), FaultRate: 0.1}).GenerateTrace(256)
			info := createSession(t, ts.URL, "detect", "LaneRead")
			streamTicks(t, ts.URL, info.ID, tr[:128], 32)
			if w%2 == 0 {
				doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/pageout", ts.URL, info.ID), nil, http.StatusOK, nil)
			}
			streamTicks(t, ts.URL, info.ID, tr[128:], 32)
			wantAccepts := verif.EngineAcceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect), tr)
			v := verdictFor(t, ts.URL, info.ID, "LaneRead")
			if v.Steps != len(tr) || v.Accepts != len(wantAccepts) {
				errs <- fmt.Sprintf("worker %d: steps=%d accepts=%d, want %d/%d",
					w, v.Steps, v.Accepts, len(tr), len(wantAccepts))
			}
			if w%3 == 0 {
				doJSON(t, "DELETE", fmt.Sprintf("%s/sessions/%s", ts.URL, info.ID), nil, http.StatusOK, nil)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
}

// TestJournalBudgetPruning checks the disk cap: cold paged sessions are
// pruned oldest-checkpoint-first once the journal directory outgrows
// the budget, hot sessions are never touched, and the gauge/counters
// report it.
func TestJournalBudgetPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Shards: 1, QueueDepth: 16, WALDir: dir, JournalBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpecSource(ocpSimpleReadSource(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 3}).GenerateTrace(40)
	cold := make([]SessionInfoJSON, 2)
	for i := range cold {
		cold[i] = createSession(t, ts.URL, "detect", "OcpSimpleRead")
		streamTicks(t, ts.URL, cold[i].ID, tr, 20)
		doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/pageout", ts.URL, cold[i].ID), nil, http.StatusOK, nil)
	}
	hot := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	streamTicks(t, ts.URL, hot.ID, tr, 20)

	if got := s.Metrics().JournalBytes; got == 0 {
		t.Fatal("journal_bytes gauge not populated")
	}
	s.sweep(time.Now())

	snap := s.Metrics()
	if snap.JournalPruned != 2 {
		t.Fatalf("journal_pruned = %d, want 2", snap.JournalPruned)
	}
	if snap.SessionsCold != 0 {
		t.Fatalf("sessions_cold = %d after pruning, want 0", snap.SessionsCold)
	}
	// Pruned sessions are gone for good; the hot one is untouched.
	for _, c := range cold {
		doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s/verdicts", ts.URL, c.ID), nil, http.StatusNotFound, nil)
	}
	if v := verdictFor(t, ts.URL, hot.ID, "OcpSimpleRead"); v.Steps != len(tr) {
		t.Fatalf("hot session damaged by pruning: %+v", v)
	}
	ids, err := s.wal.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != hot.ID {
		t.Fatalf("journal dirs after pruning = %v, want only %s", ids, hot.ID)
	}
}
