package server

// Per-tenant quotas and fairness. Every session belongs to a tenant —
// the value of Config.TenantHeader at creation, or a session-ID prefix
// when the client sends none — and the daemon accounts hot/cold session
// counts, ingested ticks, and quota rejections per tenant. Enforcement
// is three-fold:
//
//   - token-bucket ingest limits (QuotaTickRate/QuotaTickBurst): a
//     batch that outruns the bucket is answered 429 + Retry-After with
//     the X-Cesc-Quota: ticks header, sized so a well-behaved client
//     paces itself to exactly the allowed rate;
//   - max open sessions (QuotaMaxSessions, hot + cold): creation beyond
//     the cap is a terminal 429 with X-Cesc-Quota: sessions;
//   - max hot sessions (QuotaHotSessions): fairness, not rejection — a
//     tenant reviving or creating past the cap gets its own coldest
//     session paged out, so one tenant cannot monopolize hot memory.
//
// The hot/cold counters are mutated only inside Server.smu critical
// sections (the same ones that move sessions between tables), which is
// what keeps them exact; the table's own lock guards the buckets and
// the monotonic counters.

import (
	"math"
	"sync"
	"time"
)

// tenant is one accounting bucket.
type tenant struct {
	hot  int // sessions in the hot table (guarded by Server.smu)
	cold int // sessions in the cold table (guarded by Server.smu)

	tokens   float64 // tick tokens available (guarded by tenantTable.mu)
	lastFill time.Time

	ticks      uint64            // ticks accepted
	rejections map[string]uint64 // quota kind → rejected requests
}

// tenantTable maps tenant keys to their accounting state.
type tenantTable struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	rate    float64 // tick tokens per second; <= 0 disables the bucket
	burst   float64
}

func newTenantTable(rate, burst float64) *tenantTable {
	if burst <= 0 {
		burst = rate // default burst: one second's allowance
	}
	return &tenantTable{tenants: make(map[string]*tenant), rate: rate, burst: burst}
}

func (tt *tenantTable) ensure(name string) *tenant {
	t, ok := tt.tenants[name]
	if !ok {
		t = &tenant{tokens: tt.burst, lastFill: time.Now(), rejections: make(map[string]uint64)}
		tt.tenants[name] = t
	}
	return t
}

// addHot/addCold adjust the session counts. Callers hold Server.smu.
func (tt *tenantTable) addHot(name string, d int) {
	tt.mu.Lock()
	tt.ensure(name).hot += d
	tt.mu.Unlock()
}

func (tt *tenantTable) addCold(name string, d int) {
	tt.mu.Lock()
	tt.ensure(name).cold += d
	tt.mu.Unlock()
}

// counts reads a tenant's session counts.
func (tt *tenantTable) counts(name string) (hot, cold int) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	t, ok := tt.tenants[name]
	if !ok {
		return 0, 0
	}
	return t.hot, t.cold
}

// takeTicks charges n ticks against the tenant's bucket. With force set
// the charge always succeeds and may drive the bucket negative (the VCD
// upload path, which applies backpressure by blocking, pays its debt by
// throttling the tenant's subsequent batches). On refusal, retryAfter
// is how long until the bucket holds n tokens again.
func (tt *tenantTable) takeTicks(name string, n int, force bool) (ok bool, retryAfter time.Duration) {
	if tt.rate <= 0 {
		return true, 0
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	t := tt.ensure(name)
	now := time.Now()
	t.tokens = math.Min(tt.burst, t.tokens+tt.rate*now.Sub(t.lastFill).Seconds())
	t.lastFill = now
	need := float64(n)
	if t.tokens >= need || force {
		t.tokens -= need
		t.ticks += uint64(n)
		return true, 0
	}
	t.rejections["ticks"]++
	secs := (need - t.tokens) / tt.rate
	return false, time.Duration(math.Ceil(secs)) * time.Second
}

// rejectSessions counts a session-quota refusal.
func (tt *tenantTable) rejectSessions(name string) {
	tt.mu.Lock()
	tt.ensure(name).rejections["sessions"]++
	tt.mu.Unlock()
}

// TenantSnapshot is one tenant's accounting in /metrics.
type TenantSnapshot struct {
	HotSessions  int               `json:"hot_sessions"`
	ColdSessions int               `json:"cold_sessions"`
	Ticks        uint64            `json:"ticks"`
	Rejections   map[string]uint64 `json:"rejections,omitempty"`
}

// snapshot exports every tenant with any recorded state.
func (tt *tenantTable) snapshot() map[string]TenantSnapshot {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if len(tt.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantSnapshot, len(tt.tenants))
	for name, t := range tt.tenants {
		ts := TenantSnapshot{HotSessions: t.hot, ColdSessions: t.cold, Ticks: t.ticks}
		if len(t.rejections) > 0 {
			ts.Rejections = make(map[string]uint64, len(t.rejections))
			for k, v := range t.rejections {
				ts.Rejections[k] = v
			}
		}
		out[name] = ts
	}
	return out
}

// enforceHotLimit pages out the tenant's coldest hot session(s) while
// the tenant exceeds QuotaHotSessions. keep (the session that just
// became hot) is never chosen, so a revival cannot evict itself.
func (s *Server) enforceHotLimit(name string, keep *session) {
	limit := s.cfg.QuotaHotSessions
	if limit <= 0 {
		return
	}
	for {
		hot, _ := s.tenants.counts(name)
		if hot <= limit {
			return
		}
		victim := s.coldestLiveOf(name, keep)
		if victim == nil {
			return
		}
		if err := s.pageOutSession(victim); err != nil {
			return
		}
	}
}

// coldestLiveOf finds the tenant's least recently active journaled hot
// session, excluding keep.
func (s *Server) coldestLiveOf(name string, keep *session) *session {
	s.smu.RLock()
	defer s.smu.RUnlock()
	var victim *session
	for _, sess := range s.sessions {
		if sess == keep || sess.tenant != name || !sess.journaled.Load() {
			continue
		}
		if victim == nil || sess.lastActive.Load() < victim.lastActive.Load() {
			victim = sess
		}
	}
	return victim
}
