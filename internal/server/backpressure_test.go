package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/synth"
	"repro/internal/verif"
)

// postTicks posts one async batch and returns the HTTP status.
func postTicks(t *testing.T, base, id string, body []byte) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/sessions/%s/ticks", base, id),
		"application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header
}

// TestBackpressure429 saturates a one-shard, depth-one queue and checks
// that (a) the overflowing batch is rejected with 429 + Retry-After and
// (b) every accepted batch is processed completely and in order — no
// drops, no reordering.
func TestBackpressure429(t *testing.T) {
	s, err := New(Config{Shards: 1, QueueDepth: 1, TickDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	src := ocpSimpleReadSource(t)
	if _, err := s.LoadSpecSource(src); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	model := ocp.NewModel(ocp.Config{Gap: 2, Seed: 3})
	full := model.GenerateTrace(60)
	seg1, seg2 := full[:30], full[30:]

	// Batch 1 occupies the worker (30 ticks x 10ms).
	if code, _ := postTicks(t, ts.URL, sess.ID, ndjson(t, seg1)); code != http.StatusAccepted {
		t.Fatalf("batch 1 status %d", code)
	}
	// Wait until the worker has dequeued batch 1 (queue slot empty, worker
	// busy for 30 ticks x 10ms), so batch 2 deterministically lands in the
	// empty queue slot.
	waitFor(t, time.Second, func() bool { return s.Metrics().Shards[0].QueueDepth == 0 })

	if code, _ := postTicks(t, ts.URL, sess.ID, ndjson(t, seg2)); code != http.StatusAccepted {
		t.Fatalf("batch 2 status %d", code)
	}
	// Queue now full: the next batch must bounce with 429 + Retry-After.
	code, hdr := postTicks(t, ts.URL, sess.ID, ndjson(t, full))
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch 3 status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if s.Metrics().RejectedTotal == 0 {
		t.Errorf("rejected_total not incremented")
	}

	// Drain and verify: exactly the accepted ticks, in order.
	waitFor(t, 5*time.Second, func() bool {
		return verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead").Steps == len(full)
	})
	got := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if got.Steps != len(full) {
		t.Fatalf("steps = %d, want %d (accepted ticks must not be dropped)", got.Steps, len(full))
	}
	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := verif.EngineAcceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect), full)
	if len(got.AcceptTicks) != len(want) {
		t.Fatalf("accepts = %v, want %v", got.AcceptTicks, want)
	}
	for i := range want {
		if got.AcceptTicks[i] != want[i] {
			t.Fatalf("accept tick %d = %d, want %d (accepted batches reordered?)",
				i, got.AcceptTicks[i], want[i])
		}
	}
}

// TestGracefulDrain checks Close processes every accepted batch before
// returning, and that ingest after drain starts is refused with 503.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{Shards: 1, QueueDepth: 8, TickDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSpecSource(ocpSimpleReadSource(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 4}).GenerateTrace(30)
	for at := 0; at < len(tr); at += 10 {
		if code, _ := postTicks(t, ts.URL, sess.ID, ndjson(t, tr[at:at+10])); code != http.StatusAccepted {
			t.Fatalf("batch at %d: status %d", at, code)
		}
	}
	s.Close() // must block until all 30 ticks are processed

	got := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if got.Steps != len(tr) {
		t.Fatalf("after drain steps = %d, want %d", got.Steps, len(tr))
	}
	// New ingest is refused while drained.
	code, _ := postTicks(t, ts.URL, sess.ID, ndjson(t, tr[:1]))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest status %d, want 503", code)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func ocpSimpleReadSource(t *testing.T) string {
	t.Helper()
	return parser.Print("OcpSimpleRead", ocp.SimpleReadChart())
}
