// Package server is the monitor-as-a-service layer: a long-running HTTP
// daemon (cmd/cescd) that loads .cesc specifications, synthesizes their
// assertion monitors, and runs them against valuation-tick streams sent
// by network clients. It closes the gap between the paper's offline
// Fig. 4 flow — attach monitors to one simulation run, read verdicts —
// and a production setting where long communication traces from live
// designs arrive continuously and monitors live inside the running
// system.
//
// Concurrency model: sessions are pinned to shards by ID hash; each
// shard is one worker goroutine draining a bounded FIFO queue of tick
// batches. One writer per session means engines need no locking beyond
// the session mutex that serializes verdict reads, per-session tick
// order is queue order, and a full queue is surfaced to clients as 429 +
// Retry-After rather than unbounded buffering. Shutdown closes the
// queues and drains every accepted batch before returning.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config tunes the daemon; zero values select the documented defaults.
type Config struct {
	// Shards is the number of worker goroutines (default 4).
	Shards int
	// QueueDepth is the per-shard bounded queue length in batches
	// (default 64). A full queue rejects ticks with 429.
	QueueDepth int
	// MaxBatchTicks caps the ticks accepted in one request (default
	// 65536; larger bodies get 413).
	MaxBatchTicks int
	// IdleTTL pages out sessions with no activity for this long (0
	// disables the idle sweep). With journaling enabled the session's
	// state is checkpointed to its WAL and revived transparently on the
	// next request; without a journal, idle eviction remains deletion.
	IdleTTL time.Duration
	// SweepEvery is the janitor sweep period (default IdleTTL/4,
	// minimum 1s; 1s when only MemBudget arms the janitor).
	SweepEvery time.Duration

	// MemBudget caps the estimated resident bytes of hot session state
	// (priced per session from packed scoreboard sizes); past it, the
	// janitor pages out the coldest journaled sessions until back under
	// budget. 0 disables the budget. Effective only with WALDir set —
	// sessions without a journal have nowhere durable to page to.
	MemBudget int64

	// JournalBudget caps the on-disk bytes of the WALDir journal
	// directory. Past it, the janitor deletes the journals of cold paged
	// sessions oldest-checkpoint-first (state loss, counted in
	// journal_pruned); hot sessions' journals are never touched. 0
	// disables the cap. Effective only with WALDir set.
	JournalBudget int64

	// TenantHeader names the request header whose value keys a new
	// session to a tenant for quota accounting (default "X-Cesc-Tenant").
	// Sessions created without the header are keyed by their session-ID
	// prefix.
	TenantHeader string
	// QuotaTickRate arms per-tenant token-bucket ingest limits, in ticks
	// per second (0 disables); QuotaTickBurst is the bucket size
	// (default: one second's rate). A batch that outruns the bucket is
	// rejected 429 + Retry-After with X-Cesc-Quota: ticks.
	QuotaTickRate  float64
	QuotaTickBurst float64
	// QuotaMaxSessions caps a tenant's open sessions, hot + cold
	// (0 disables); creation past the cap is a terminal 429 with
	// X-Cesc-Quota: sessions.
	QuotaMaxSessions int
	// QuotaHotSessions caps a tenant's hot sessions (0 disables). This
	// is fairness, not rejection: a tenant going past it gets its own
	// coldest session paged out instead.
	QuotaHotSessions int

	// GovernorLatency is the smoothed per-tick step latency the load
	// governor treats as saturation (score 1.0; default 100ms).
	GovernorLatency time.Duration

	// ColdStart registers journaled sessions found at startup as cold
	// instead of eagerly replaying them, so a node fronting a huge
	// session population is ready immediately and pays replay lazily on
	// first touch. Default off: small fleets prefer warm caches.
	ColdStart bool
	// TickDelay inserts an artificial per-tick processing delay — a load
	// and backpressure test aid, never set in production.
	TickDelay time.Duration

	// WALDir enables crash-safe session journaling: every session's
	// accepted batches are appended to a per-session journal under this
	// directory, and New rebuilds journaled sessions found there. Empty
	// disables journaling.
	WALDir string
	// WALSegmentBytes is the journal segment rotation size (see
	// wal.Options; 0 selects the wal default).
	WALSegmentBytes int64
	// Fsync selects the journal durability policy (default
	// wal.SyncInterval); FsyncEvery is the interval policy's period.
	Fsync      wal.SyncPolicy
	FsyncEvery time.Duration
	// SnapshotEvery checkpoints a session's monitor state every N
	// journaled batches and prunes the journal behind the checkpoint, so
	// recovery replays only the tail (default 256; negative disables
	// snapshots, keeping the whole journal).
	SnapshotEvery int

	// TraceDepth enables tick tracing: each shard keeps a lock-free ring
	// of the most recent TraceDepth pipeline spans (ingest, decode,
	// enqueue, queue wait, step, WAL append/replay), served as JSON from
	// GET /debug/trace. 0 disables tracing entirely — the record path
	// becomes a single branch with no allocation.
	TraceDepth int
	// SlowTick arms the slow-tick watchdog: a batch whose per-tick
	// stepping time exceeds this threshold is counted and logged (rate
	// limited) with its trace id. 0 disables.
	SlowTick time.Duration

	// NodeName is the cluster member name stamped on every recorded span
	// (and the flight recorder's dumps), so cluster-merged timelines can
	// attribute spans to nodes. Empty on standalone daemons.
	NodeName string

	// FlightWindow is the black-box flight recorder's retention window:
	// the last FlightWindow of notable events (governor transitions,
	// watchdog trips, quarantines, WAL errors) and spans are kept ready to
	// dump. <= 0 selects 30s; the recorder itself is always on.
	FlightWindow time.Duration
	// FlightDir is where trip-triggered flight-recorder dumps land as
	// timestamped JSON files. Empty disables file dumps; the live buffer
	// stays served from GET /debug/flightrec regardless.
	FlightDir string

	// Faults wires a deterministic fault-injection plane through the
	// daemon (WAL writes, monitor stepping, ingest responses). Tests
	// only; nil means no faults.
	Faults *faultinject.Plane

	// IDFilter, when set, constrains freshly minted session IDs: session
	// creation draws random IDs until the filter accepts one. The cluster
	// layer uses it to mint only IDs the local node owns under the
	// current hash ring, so a freshly created session never needs an
	// immediate migration. Must be fast and side-effect free.
	IDFilter func(id string) bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatchTicks <= 0 {
		c.MaxBatchTicks = 65536
	}
	if (c.IdleTTL > 0 || c.MemBudget > 0 || c.JournalBudget > 0) && c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleTTL / 4
		if c.SweepEvery < time.Second {
			c.SweepEvery = time.Second
		}
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Cesc-Tenant"
	}
	if c.GovernorLatency <= 0 {
		c.GovernorLatency = defaultGovLat
	}
	return c
}

// Server is the cescd daemon core: spec registry, session table, shard
// pool, and HTTP API. Create with New, serve via Handler, stop with
// Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	specs    *registry
	metrics  *metrics
	tracer   *obs.Tracer   // disabled (nil-safe no-op) unless Config.TraceDepth > 0
	watchdog *obs.Watchdog // disabled unless Config.SlowTick > 0
	flight   *obs.FlightRecorder
	wal      *wal.Manager // nil when journaling is disabled

	// lastShedLog rate-limits governor shed-decision log lines (1/s), the
	// same discipline the watchdog applies — shedding under sustained
	// overload must not turn every request into a log write.
	lastShedLog atomic.Int64

	// smu guards both session tables; hot/cold transitions mutate them
	// (and the per-tenant counts) inside one critical section, so a
	// session is always in exactly one of the two.
	smu      sync.RWMutex
	sessions map[string]*session      // hot: live engines + open journal
	paged    map[string]*pagedSession // cold: state parked in the WAL checkpoint

	// reviveMu serializes cold-session revivals (one journal replay per
	// ID, concurrent callers adopt the winner's session).
	reviveMu sync.Mutex

	// memUsed is the estimated resident bytes of hot session state,
	// charged/credited as sessions enter and leave the hot table.
	memUsed atomic.Int64
	// underPressure asks the next sweep to drain to the low watermark.
	underPressure atomic.Bool
	pressureCh    chan struct{}

	tenants *tenantTable
	gov     *governor

	// qmu guards enqueues against Close closing the shard queues.
	qmu      sync.RWMutex
	draining bool
	shards   []*shard

	// crashed is set by Crash (the simulated power cut): workers drop
	// in-flight batches instead of processing them and handlers refuse
	// new work.
	crashed atomic.Bool

	// adoptMu serializes AdoptSession calls so two concurrent handoffs
	// (or a handoff racing a standby promotion) of the same session
	// cannot both build it.
	adoptMu sync.Mutex

	wg        sync.WaitGroup
	janitorWG sync.WaitGroup
	stopSweep chan struct{}
	closeOnce sync.Once
}

// New constructs a server and starts its shard workers (and the idle
// janitor when eviction is configured). With Config.WALDir set it also
// opens the journal directory and rebuilds every journaled session
// before returning, so the HTTP API never exposes a half-recovered
// state.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:        cfg.withDefaults(),
		mux:        http.NewServeMux(),
		specs:      newRegistry(),
		metrics:    newMetrics(),
		sessions:   make(map[string]*session),
		paged:      make(map[string]*pagedSession),
		stopSweep:  make(chan struct{}),
		pressureCh: make(chan struct{}, 1),
	}
	s.tenants = newTenantTable(s.cfg.QuotaTickRate, s.cfg.QuotaTickBurst)
	s.gov = &governor{srv: s}
	s.tracer = obs.NewTracer(s.cfg.Shards, s.cfg.TraceDepth)
	s.tracer.SetNode(s.cfg.NodeName)
	s.watchdog = obs.NewWatchdog(s.cfg.SlowTick, nil)
	s.flight = obs.NewFlightRecorder(s.cfg.FlightWindow, s.cfg.FlightDir, s.cfg.NodeName, s.tracer)
	if s.cfg.WALDir != "" {
		mgr, err := wal.OpenManager(wal.Options{
			Dir:          s.cfg.WALDir,
			SegmentBytes: s.cfg.WALSegmentBytes,
			Sync:         s.cfg.Fsync,
			SyncEvery:    s.cfg.FsyncEvery,
			Faults:       s.cfg.Faults,
		})
		if err != nil {
			return nil, err
		}
		s.wal = mgr
	}
	for i := 0; i < s.cfg.Shards; i++ {
		sh := &shard{idx: i, queue: make(chan *batch, s.cfg.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.runShard(sh)
	}
	if s.wal != nil {
		recover := s.recoverSessions
		if s.cfg.ColdStart {
			recover = s.registerColdSessions
		}
		if err := recover(); err != nil {
			s.Close()
			return nil, err
		}
	}
	if s.cfg.SweepEvery > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	s.routes()
	publishExpvar(s)
	return s, nil
}

// LoadSpecSource compiles .cesc source into the registry (startup path;
// the HTTP hot-load endpoint shares the same registry).
func (s *Server) LoadSpecSource(src string) ([]string, error) {
	return s.specs.LoadSource(src, false)
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the current metrics snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.metrics.snapshot()
	snap.SpecsLoaded = s.specs.Len()
	snap.TraceSpans = s.tracer.Spans()
	snap.SlowBatches = s.watchdog.Slow()
	if s.wal != nil {
		st := s.wal.Stats()
		snap.WAL = &st
		// Refresh the disk gauge on demand so /metrics reflects reality
		// even between janitor sweeps (and with no janitor armed at all).
		if total, _, err := s.wal.DiskUsage(); err == nil {
			s.metrics.journalBytes.Store(total)
			snap.JournalBytes = total
		}
		snap.JournalBudgetBytes = s.cfg.JournalBudget
	}
	s.smu.RLock()
	snap.SessionsActive = len(s.sessions)
	snap.SessionsCold = len(s.paged)
	perShard := make([]int, len(s.shards))
	for _, sess := range s.sessions {
		perShard[sess.shard]++
	}
	s.smu.RUnlock()
	snap.MemUsedBytes = s.memUsed.Load()
	snap.MemBudgetBytes = s.cfg.MemBudget
	snap.GovernorLevel, snap.GovernorScore = s.GovernorState()
	snap.Tenants = s.tenants.snapshot()
	for i, sh := range s.shards {
		snap.Shards = append(snap.Shards, ShardSnapshot{
			QueueDepth: len(sh.queue),
			QueueCap:   cap(sh.queue),
			Ticks:      sh.ticks.Load(),
			Sessions:   perShard[i],
		})
	}
	return snap
}

// Close drains: no new batches are accepted, shard queues are closed,
// every already-accepted batch is processed, and session journals are
// synced shut before Close returns.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.qmu.Lock()
		s.draining = true
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.qmu.Unlock()
		close(s.stopSweep)
		s.wg.Wait()
		s.janitorWG.Wait()
		s.smu.Lock()
		for _, sess := range s.sessions {
			if sess.jrnl != nil {
				_ = sess.jrnl.Close()
			}
		}
		s.smu.Unlock()
	})
}

// Crash simulates a power cut for recovery tests: handlers start
// refusing work, queued batches are discarded unprocessed, and journals
// are abandoned without a final sync — whatever the WAL already holds is
// all a restarted server gets. The in-memory session table is dropped.
func (s *Server) Crash() {
	s.closeOnce.Do(func() {
		s.crashed.Store(true)
		s.qmu.Lock()
		s.draining = true
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.qmu.Unlock()
		close(s.stopSweep)
		s.wg.Wait()
		s.janitorWG.Wait()
		s.smu.Lock()
		for _, sess := range s.sessions {
			if sess.jrnl != nil {
				sess.jrnl.Abandon()
			}
		}
		s.sessions = make(map[string]*session)
		s.smu.Unlock()
	})
}

// janitor runs the sweep on a fixed period, plus immediately whenever
// the governor (or a revival over budget) kicks pressureCh.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case now := <-t.C:
			s.sweep(now)
		case <-s.pressureCh:
			s.sweep(time.Now())
		}
	}
}

func (s *Server) session(id string) (*session, bool) {
	s.smu.RLock()
	defer s.smu.RUnlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// --- HTTP API -----------------------------------------------------------

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /specs", s.handleListSpecs)
	s.mux.HandleFunc("POST /specs", s.handleLoadSpecs)
	s.mux.HandleFunc("POST /specs/mine", s.handleMineSpecs)
	s.mux.HandleFunc("POST /sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /sessions/{id}/pageout", s.handlePageOut)
	s.mux.HandleFunc("POST /sessions/{id}/ticks", s.handleTicks)
	s.mux.HandleFunc("POST /sessions/{id}/vcd", s.handleVCD)
	s.mux.HandleFunc("GET /sessions/{id}/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("GET /sessions/{id}/diagnostics", s.handleDiagnostics)
	s.mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/flightrec", s.handleFlightRec)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.crashed.Load() {
		writeError(w, http.StatusServiceUnavailable, "crashed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.metrics.start).Seconds(),
	})
}

// Ready reports whether the node should receive load-balanced traffic:
// not crashed, not draining, the governor below the session-throttling
// level, and — when journaling is configured — the WAL directory still
// writable. The reasons map names every failing check; /healthz stays
// pure liveness. The cluster layer adds its own ring-adoption check on
// top.
func (s *Server) Ready() (bool, map[string]string) {
	reasons := map[string]string{}
	if s.crashed.Load() {
		reasons["crashed"] = "simulated power cut"
	}
	s.qmu.RLock()
	draining := s.draining
	s.qmu.RUnlock()
	if draining {
		reasons["draining"] = "shutting down"
	}
	if lvl := s.govLevel(); lvl >= govLevelThrottleSessions {
		reasons["governor"] = fmt.Sprintf("shedding at level %d", lvl)
	}
	if s.wal != nil {
		if err := s.wal.Writable(); err != nil {
			reasons["wal"] = err.Error()
		}
	}
	return len(reasons) == 0, reasons
}

// handleReadyz is the load-balancer readiness probe: 200 while Ready,
// 503 with the failing checks otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reasons := s.Ready()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// Tracer exposes the span tracer to the cluster layer, which records
// proxy/redirect spans of its own and answers /cluster/trace fan-outs.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// FlightRecorder exposes the black box to the cluster layer and
// cmd/cescd (the SIGQUIT dump path).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// TraceSpans returns the retained spans of one correlation id, newest
// last — the per-node slice /cluster/trace merges across the ring.
func (s *Server) TraceSpans(traceID string, n int) []obs.Span {
	return s.tracer.Snapshot(func(sp *obs.Span) bool { return sp.Trace == traceID }, n)
}

// handleFlightRec serves the flight recorder's live buffer — the same
// document a trip dumps to disk, minus the reason.
func (s *Server) handleFlightRec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.Snapshot(""))
}

// handleMetrics serves the daemon metrics. The default body is the
// Prometheus text exposition (version 0.0.4) with per-spec, per-shard,
// and per-stage labels; clients that ask for application/json (the CLI
// and the Go client do) get the MetricsSnapshot JSON instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.promText())
}

// handleDiagnostics serves the per-session violation provenance ring:
// for each monitor, the retained Diagnostic reports with chart name,
// grid line, fired (or candidate) guards, and packed valuation — the
// same fields every execution tier emits identically.
func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	sess, err := s.fetchSession(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrNoSession) {
			writeError(w, http.StatusNotFound, "no such session")
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	sess.touch()
	start := time.Now()
	body := sess.diagnostics()
	s.metrics.observeStage(obs.StageVerdict, time.Since(start))
	writeJSON(w, http.StatusOK, body)
}

// handleDebugTrace serves the tracer rings as JSON, newest last.
// ?session=ID keeps one session's spans, ?trace=ID one correlation id,
// ?stage=NAME one pipeline stage, and ?n=N only the newest N spans.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if !s.tracer.Enabled() {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "spans": []obs.Span{}})
		return
	}
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = parsed
	}
	session, traceID, stage := q.Get("session"), q.Get("trace"), q.Get("stage")
	var keep func(*obs.Span) bool
	if session != "" || traceID != "" || stage != "" {
		keep = func(sp *obs.Span) bool {
			return (session == "" || sp.Session == session) &&
				(traceID == "" || sp.Trace == traceID) &&
				(stage == "" || sp.Stage == stage)
		}
	}
	spans := s.tracer.Snapshot(keep, n)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"total":   s.tracer.Spans(),
		"spans":   spans,
	})
}

func (s *Server) handleListSpecs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"specs": s.specs.List()})
}

// handleLoadSpecs hot-loads .cesc source from the request body.
// ?replace=1 overwrites existing names (sessions keep the monitors they
// were created with).
func (s *Server) handleLoadSpecs(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	names, err := s.specs.LoadSource(string(src), r.URL.Query().Get("replace") == "1")
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already loaded") {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"loaded": names})
}

// createSessionRequest is the body of POST /sessions. DiagDepth, when
// positive, arms violation diagnostics (the provenance ring served from
// /sessions/{id}/diagnostics) with a recent-window of that many ticks in
// any mode; assert-mode sessions default to a window of 8.
type createSessionRequest struct {
	Specs     []string `json:"specs"`
	Mode      string   `json:"mode,omitempty"`
	DiagDepth int      `json:"diag_depth,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.govLevel() >= govLevelThrottleSessions {
		// Degradation level 2: new sessions are the sheddable work —
		// existing sessions keep ingesting. The jittered Retry-After
		// decorrelates the retry stampede; the cluster layer routes
		// creations to cooler peers before this is ever reached.
		s.metrics.shedSessions.Add(1)
		s.logShed("sessions", r.Header.Get("X-Cesc-Trace"), "")
		w.Header().Set("X-Cesc-Shed", "sessions")
		w.Header().Set("Retry-After", strconv.Itoa(s.sessionThrottleRetryAfter()))
		writeError(w, http.StatusTooManyRequests, "node overloaded; new sessions throttled")
		return
	}
	var req createSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "session needs at least one spec")
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.DiagDepth < 0 || req.DiagDepth > maxDiagDepth {
		writeError(w, http.StatusBadRequest, "diag_depth must be in [0, %d]", maxDiagDepth)
		return
	}
	specs := make([]*Spec, 0, len(req.Specs))
	for _, name := range req.Specs {
		sp, ok := s.specs.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "spec %q not loaded", name)
			return
		}
		if sp.MultiClock {
			writeError(w, http.StatusBadRequest,
				"spec %q is multi-clock; sessions stream a single clock domain", name)
			return
		}
		specs = append(specs, sp)
	}
	id, ok := s.mintSessionID()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "could not mint an acceptable session id")
		return
	}
	tenantKey := r.Header.Get(s.cfg.TenantHeader)
	if tenantKey == "" {
		tenantKey = fallbackTenant(id)
	}
	if max := s.cfg.QuotaMaxSessions; max > 0 {
		if hot, cold := s.tenants.counts(tenantKey); hot+cold >= max {
			// Terminal for this tenant — retrying elsewhere won't help,
			// the quota is cluster-agnostic per key. X-Cesc-Quota lets
			// the client tell quota exhaustion from overload shedding.
			s.tenants.rejectSessions(tenantKey)
			w.Header().Set("X-Cesc-Quota", "sessions")
			writeError(w, http.StatusTooManyRequests,
				"tenant %s at its session quota (%d open)", tenantKey, max)
			return
		}
	}
	sess := newSession(id, mode, shardFor(id, len(s.shards)), specs, s.cfg.Faults, req.DiagDepth)
	sess.tenant = tenantKey
	if s.wal != nil {
		// The meta record must be durable before the id is handed out:
		// a session the client knows about must survive a crash.
		if err := s.journalCreate(sess, specs); err != nil {
			s.metrics.walErrors.Add(1)
			writeError(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}
	s.trackLive(sess)
	s.metrics.sessionsCreated.Add(1)
	s.enforceHotLimit(tenantKey, sess)
	if b := s.cfg.MemBudget; b > 0 && s.memUsed.Load() > b {
		s.kickPressure()
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

// mintSessionID draws random session IDs until Config.IDFilter accepts
// one (and it is unused). The filter typically accepts ~1/n of draws on
// an n-node cluster, so the try budget is effectively unreachable.
func (s *Server) mintSessionID() (string, bool) {
	for tries := 0; tries < 4096; tries++ {
		id := newSessionID()
		if s.cfg.IDFilter != nil && !s.cfg.IDFilter(id) {
			continue
		}
		if s.HasSession(id) { // hot or cold — a paged ID is still taken
			continue
		}
		return id, true
	}
	return "", false
}

// handleListSessions lists hot and cold sessions. Cold entries come
// from the paged table alone — listing must never trigger a revival
// stampede across a million parked sessions.
func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	s.smu.RLock()
	infos := make([]SessionInfoJSON, 0, len(s.sessions)+len(s.paged))
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	for _, cold := range s.paged {
		infos = append(infos, cold.info())
	}
	s.smu.RUnlock()
	for _, sess := range sessions {
		infos = append(infos, sess.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if sess, ok := s.session(id); ok {
		writeJSON(w, http.StatusOK, sess.info())
		return
	}
	// A cold session answers from its paged entry without reviving —
	// info polls must not defeat the pager.
	s.smu.RLock()
	cold, ok := s.paged[id]
	s.smu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, cold.info())
}

// handleDeleteSession removes a session, hot or cold. The hot table
// entry goes first (so no new request adopts the pointer), then the
// journal is dropped under ingestMu — which also serializes against an
// in-flight page-out of the same session.
func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.smu.Lock()
	sess, hot := s.sessions[id]
	if hot {
		delete(s.sessions, id)
		s.tenants.addHot(sess.tenant, -1)
	}
	cold, wasCold := s.paged[id]
	if wasCold {
		delete(s.paged, id)
		s.tenants.addCold(cold.tenant, -1)
	}
	s.smu.Unlock()
	switch {
	case hot:
		sess.ingestMu.Lock()
		s.dropJournal(sess)
		sess.ingestMu.Unlock()
		s.releaseSessionMem(sess)
	case wasCold:
		if s.wal != nil {
			_ = s.wal.Remove(id)
		}
	default:
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	s.metrics.sessionsDeleted.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// ErrInjected429 is a sentinel for faultinject rules on the
// "server.ingest" point: a rule carrying it makes the handler answer
// 429 + Retry-After instead of 500, so client retry/backoff paths can be
// driven deterministically.
var ErrInjected429 = errors.New("injected backpressure")

// handleTicks ingests NDJSON valuation ticks (one StateJSON object per
// line; a plain JSON stream also decodes). The batch is enqueued to the
// session's shard: 202 on acceptance, 429 + Retry-After when the shard
// queue is full, 503 when draining. ?wait=1 blocks until the batch has
// been processed and returns 200.
//
// ?seq=N attaches a client-assigned, per-session-monotonic sequence
// number: a batch whose seq is not above the session's watermark is
// acknowledged as a duplicate without being processed, which upgrades
// at-least-once retries into exactly-once ingestion. With journaling
// enabled the batch is appended to the session's WAL (in accept order,
// under the same per-session lock as the dedup check) before the
// response; an append failure returns 500 and the client's retry is
// absorbed by the dedup watermark.
func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	ingestStart := time.Now()
	sess, err := s.fetchSession(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrNoSession) {
			writeError(w, http.StatusNotFound, "no such session")
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	sess.touch()
	// The trace id correlates this batch's spans across pipeline stages.
	// Clients propagate their own via X-Cesc-Trace; otherwise the server
	// assigns one (only when tracing is on — the id is echoed back either
	// way so the client can cite it). X-Cesc-Parent carries the upstream
	// hop's span token ("node@hlc"): observing its clock reading makes
	// every local span order causally after the hop that forwarded the
	// batch, even across machines with disagreeing wall clocks.
	traceID := r.Header.Get("X-Cesc-Trace")
	parent := r.Header.Get("X-Cesc-Parent")
	if _, remoteHLC := obs.ParseParentToken(parent); remoteHLC != 0 {
		obs.Clock.Observe(remoteHLC)
	}
	if s.tracer.Enabled() {
		if traceID == "" {
			traceID = newTraceID()
		}
		w.Header().Set("X-Cesc-Trace", traceID)
	}
	var seq uint64
	if q := r.URL.Query().Get("seq"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			writeError(w, http.StatusBadRequest, "seq must be a positive integer")
			return
		}
		seq = v
	}
	decodeStart := time.Now()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	// Fast path: when every monitor in the session steps packed, the
	// strict zero-copy batch decoder packs the NDJSON body straight into
	// bitset lanes — no map materialization, no per-tick allocation. Any
	// decode error (unknown field, malformed line, oversized batch) falls
	// back to the lenient map path below, which reproduces the exact
	// legacy error responses; the fast path only ever wins on input the
	// slow path would also have accepted, with bit-identical packing.
	var (
		states []event.State
		packed *event.PackedBatch
		raw    []byte
	)
	if sess.fastPath {
		pb := new(event.PackedBatch)
		bd := event.NewBatchDecoder(sess.vocab)
		if n, derr := bd.Decode(body, pb, s.cfg.MaxBatchTicks); derr == nil && n > 0 {
			packed, raw = pb, body
		}
	}
	if packed == nil {
		dec := json.NewDecoder(bytes.NewReader(body))
		for {
			var t StateJSON
			if err := dec.Decode(&t); err == io.EOF {
				break
			} else if err != nil {
				writeError(w, http.StatusBadRequest, "tick %d: %v", len(states), err)
				return
			}
			if len(states) >= s.cfg.MaxBatchTicks {
				writeError(w, http.StatusRequestEntityTooLarge,
					"batch exceeds %d ticks; split the stream", s.cfg.MaxBatchTicks)
				return
			}
			states = append(states, t.ToState())
		}
		if len(states) == 0 {
			writeError(w, http.StatusBadRequest, "no ticks in body")
			return
		}
	}
	nticks := len(states)
	if packed != nil {
		nticks = packed.Len()
	}
	decodeDur := time.Since(decodeStart)
	s.metrics.observeStage(obs.StageDecode, decodeDur)
	s.tracer.Record(sess.shard, obs.Span{
		Trace: traceID, Session: sess.id, Stage: obs.StageDecode,
		Start: decodeStart, Dur: decodeDur, Ticks: nticks,
	})
	if ok, retryAfter := s.tenants.takeTicks(sess.tenant, nticks, false); !ok {
		// Tenant outran its tick bucket. Retry-After is sized so a
		// client that honors it paces to exactly the allowed rate;
		// X-Cesc-Quota tells it this is its own quota, not server load.
		s.metrics.rejectedTotal.Add(1)
		w.Header().Set("X-Cesc-Quota", "ticks")
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		writeError(w, http.StatusTooManyRequests,
			"tenant %s over its tick rate; retry in %s", sess.tenant, retryAfter)
		return
	}
	if err := s.cfg.Faults.Hit("server.ingest"); err != nil {
		if errors.Is(err, ErrInjected429) {
			s.metrics.rejectedTotal.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	b := &batch{sess: sess, states: states, packed: packed, raw: raw,
		enqueued: time.Now(), trace: traceID}
	wait := r.URL.Query().Get("wait") == "1"
	shedWait := false
	if wait && s.govLevel() >= govLevelShedWait {
		// Degradation level 1: the batch is still accepted, journaled,
		// and processed — only the latency coupling is shed. The client
		// gets 202 + X-Cesc-Shed: wait instead of blocking on the shard.
		wait, shedWait = false, true
		s.logShed("wait", traceID, sess.id)
	}

	sess.ingestMu.Lock()
	if sess.pagedOut {
		// Raced a page-out while holding a stale pointer: the retry
		// resolves the ID again and revives the session.
		sess.ingestMu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "session %s was paged out; retry", sess.id)
		return
	}
	if sess.frozen {
		sess.ingestMu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "session %s is migrating to a new owner; retry", sess.id)
		return
	}
	if seq > 0 && seq <= sess.lastSeq {
		sess.ingestMu.Unlock()
		s.metrics.batchesDeduped.Add(1)
		writeJSON(w, http.StatusOK, map[string]any{"accepted": 0, "seq": seq, "duplicate": true})
		return
	}
	snapDue := false
	if sess.jrnl != nil {
		b.jseq = sess.walSeq + 1
		snapDue = s.cfg.SnapshotEvery > 0 && b.jseq%uint64(s.cfg.SnapshotEvery) == 0
	}
	if wait || snapDue {
		b.done = make(chan struct{})
	}
	enqStart := time.Now()
	switch err := s.tryEnqueue(b); err {
	case nil:
		enqDur := time.Since(enqStart)
		s.metrics.observeStage(obs.StageEnqueue, enqDur)
		s.tracer.Record(sess.shard, obs.Span{
			Trace: traceID, Session: sess.id, Stage: obs.StageEnqueue,
			Start: enqStart, Dur: enqDur, Ticks: nticks,
		})
	case errQueueFull:
		sess.ingestMu.Unlock()
		s.metrics.rejectedTotal.Add(1)
		s.tracer.Record(sess.shard, obs.Span{
			Trace: traceID, Session: sess.id, Stage: obs.StageEnqueue,
			Start: enqStart, Dur: time.Since(enqStart), Ticks: nticks, Note: "queue full",
		})
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "shard %d queue full", sess.shard)
		return
	default:
		sess.ingestMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	// The batch is accepted: advance the dedup watermark now, so a
	// client retry after a lost response (or a failed journal append)
	// never double-applies.
	if seq > 0 {
		sess.lastSeq = seq
	}
	if sess.jrnl != nil {
		sess.walSeq = b.jseq
		if err := s.journalBatch(sess, b, seq); err != nil {
			sess.ingestMu.Unlock()
			s.metrics.walErrors.Add(1)
			// The batch is applied in memory but not durable; 500 asks
			// the client to retry, and the retry is deduped above.
			writeError(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
	}
	if snapDue {
		// Snapshot barrier: wait (still under ingestMu, so no later
		// batch can be accepted meanwhile) until the worker has applied
		// this batch, then checkpoint — appliedJSeq now covers every
		// journaled record, making it safe for the checkpoint to prune
		// all older segments.
		<-b.done
		if err := s.snapshotSession(sess); err != nil {
			// Non-fatal: the journal tail still reconstructs the
			// session, recovery just replays more.
			s.metrics.walErrors.Add(1)
		}
	}
	sess.ingestMu.Unlock()
	if err := s.cfg.Faults.Hit("server.ingest.respond"); err != nil {
		// Simulated response-path failure after the batch was accepted:
		// the client sees an error and retries a batch the server has
		// already applied — the dedup watermark makes that exactly-once.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := map[string]any{"accepted": nticks}
	if seq > 0 {
		resp["seq"] = seq
	}
	if traceID != "" && s.tracer.Enabled() {
		resp["trace"] = traceID
	}
	ingestKind := ""
	if r.Header.Get("X-Cesc-Forwarded") != "" {
		ingestKind = "proxied"
	}
	if wait {
		<-b.done
		resp["processed"] = true
		s.recordIngest(sess, traceID, parent, ingestKind, ingestStart, nticks)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if shedWait {
		s.metrics.shedWait.Add(1)
		w.Header().Set("X-Cesc-Shed", "wait")
		resp["processed"] = false
	}
	s.recordIngest(sess, traceID, parent, ingestKind, ingestStart, nticks)
	writeJSON(w, http.StatusAccepted, resp)
}

// recordIngest closes the whole-request span of one accepted tick batch.
// parent is the upstream hop's span token; kind is "proxied" when the
// batch arrived through a cluster proxy forward ("" for a direct hit).
func (s *Server) recordIngest(sess *session, traceID, parent, kind string, start time.Time, ticks int) {
	s.tracer.Record(sess.shard, obs.Span{
		Trace: traceID, Session: sess.id, Stage: obs.StageIngest,
		Parent: parent, Kind: kind,
		Start: start, Dur: time.Since(start), Ticks: ticks,
	})
}

// logShed emits a rate-limited (1/s) governor shed-decision warning. The
// trace id joins the log line to its cluster timeline; the flight
// recorder keeps the decision even when the log line is rate-limited
// away.
func (s *Server) logShed(what, traceID, session string) {
	lvl, score := s.GovernorState()
	s.flight.Note("shed:"+what, traceID, fmt.Sprintf("level=%d score=%.2f session=%s", lvl, score, session))
	now := time.Now().UnixNano()
	last := s.lastShedLog.Load()
	if now-last < int64(time.Second) || !s.lastShedLog.CompareAndSwap(last, now) {
		return
	}
	slog.Warn("governor shed",
		slog.String("what", what),
		slog.String("trace", traceID),
		slog.String("session", session),
		slog.Int("level", lvl),
		slog.Float64("score", score),
	)
}

// newTraceID mints a server-assigned correlation id (same shape as
// session ids: 16 hex chars).
func newTraceID() string { return newSessionID() }

// vcdChunkTicks is the enqueue granularity of the VCD upload path: the
// request body is stream-parsed and handed to the shard in bounded
// chunks, so arbitrarily large dumps never materialize in memory.
const vcdChunkTicks = 256

// handleVCD ingests a Value Change Dump as the session's tick stream.
// ?props=a,b names signals read as propositions (level-holding); all
// others are events. Backpressure is applied by blocking the upload,
// never by dropping mid-stream.
func (s *Server) handleVCD(w http.ResponseWriter, r *http.Request) {
	sess, err := s.fetchSession(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrNoSession) {
			writeError(w, http.StatusNotFound, "no such session")
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	sess.touch()
	props := make(map[string]bool)
	if p := r.URL.Query().Get("props"); p != "" {
		for _, n := range strings.Split(p, ",") {
			props[strings.TrimSpace(n)] = true
		}
	}
	kindOf := func(name string) event.Kind {
		if props[name] {
			return event.KindProp
		}
		return event.KindEvent
	}
	total := 0
	chunk := make([]event.State, 0, vcdChunkTicks)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		b := &batch{
			sess:     sess,
			states:   chunk,
			enqueued: time.Now(),
			done:     make(chan struct{}),
		}
		// The VCD path applies backpressure by blocking, so the tick
		// quota is charged with force: the upload never fails mid-stream
		// on quota, it drives the bucket into debt and the tenant's
		// subsequent batches absorb the throttling.
		s.tenants.takeTicks(sess.tenant, len(chunk), true)
		sess.ingestMu.Lock()
		if sess.pagedOut {
			sess.ingestMu.Unlock()
			return errPagedOut
		}
		if sess.frozen {
			sess.ingestMu.Unlock()
			return errMigrating
		}
		snapDue := false
		if sess.jrnl != nil {
			b.jseq = sess.walSeq + 1
			snapDue = s.cfg.SnapshotEvery > 0 && b.jseq%uint64(s.cfg.SnapshotEvery) == 0
		}
		if err := s.enqueueWait(b); err != nil {
			sess.ingestMu.Unlock()
			return err
		}
		if sess.jrnl != nil {
			sess.walSeq = b.jseq
			if err := s.journalBatch(sess, b, 0); err != nil {
				sess.ingestMu.Unlock()
				s.metrics.walErrors.Add(1)
				return err
			}
		}
		<-b.done
		if snapDue {
			if err := s.snapshotSession(sess); err != nil {
				s.metrics.walErrors.Add(1)
			}
		}
		sess.ingestMu.Unlock()
		total += len(chunk)
		chunk = make([]event.State, 0, vcdChunkTicks)
		return nil
	}
	err = trace.StreamVCD(r.Body, kindOf, func(st event.State) error {
		chunk = append(chunk, st)
		if len(chunk) >= vcdChunkTicks {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case err == errDraining:
			code = http.StatusServiceUnavailable
		case errors.Is(err, errMigrating), errors.Is(err, errPagedOut):
			code = http.StatusConflict
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": total, "processed": true})
}

// handleVerdicts revives a cold session to answer: the verdict state is
// exactly what the checkpoint parked, so the response is byte-identical
// to one from a session that never paged.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	sess, err := s.fetchSession(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrNoSession) {
			writeError(w, http.StatusNotFound, "no such session")
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	sess.touch()
	start := time.Now()
	body := sess.verdicts()
	dur := time.Since(start)
	s.metrics.observeStage(obs.StageVerdict, dur)
	s.tracer.Record(sess.shard, obs.Span{
		Trace: r.Header.Get("X-Cesc-Trace"), Session: sess.id,
		Stage: obs.StageVerdict, Start: start, Dur: dur,
	})
	writeJSON(w, http.StatusOK, body)
}
