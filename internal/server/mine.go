package server

import (
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/mine"
)

// minedSpec is one mined chart in the POST /specs/mine response.
type minedSpec struct {
	Name   string       `json:"name"`
	Source string       `json:"source"`
	Result *mine.Result `json:"result"`
	Loaded bool         `json:"loaded"`
}

// handleMineSpecs mines CESC charts from an NDJSON trace corpus posted
// in the daemon's own wire format (one state per line, blank lines
// separating segments) and hot-loads every chart that clears the
// validation gate into the spec registry, ready for POST /sessions.
//
// Query parameters: name (chart base name), clock, min_support,
// confidence, max_window, negatives=1, validate=0 (skip the gate and
// load nothing), replace=1 (overwrite registry names). Responds 201
// with the mined charts and their gate verdicts, 422 when mining yields
// nothing that passes, 400 on a malformed corpus or parameters.
func (s *Server) handleMineSpecs(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	corpus, err := mine.ReadNDJSON(strings.NewReader(string(body)))
	if err != nil {
		writeError(w, http.StatusBadRequest, "corpus: %v", err)
		return
	}

	q := r.URL.Query()
	cfg := mine.Config{
		ChartName: q.Get("name"),
		Clock:     q.Get("clock"),
		Seed:      1,
	}
	for param, dst := range map[string]*int{
		"min_support": &cfg.MinSupport,
		"max_window":  &cfg.MaxWindow,
	} {
		if v := q.Get(param); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "%s must be a non-negative integer", param)
				return
			}
			*dst = n
		}
	}
	if v := q.Get("confidence"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "confidence must be in (0, 1]")
			return
		}
		cfg.Confidence = f
	}
	cfg.Negatives = q.Get("negatives") == "1"
	validate := q.Get("validate") != "0"
	replace := q.Get("replace") == "1"

	var specs []minedSpec
	if validate {
		ms, rs, err := mine.MineValidated(corpus, cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "mining: %v", err)
			return
		}
		for i, m := range ms {
			specs = append(specs, minedSpec{Name: m.Name, Source: m.Source(), Result: rs[i]})
		}
	} else {
		ms, err := mine.Mine(corpus, cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "mining: %v", err)
			return
		}
		for _, m := range ms {
			specs = append(specs, minedSpec{Name: m.Name, Source: m.Source()})
		}
	}

	// Load passing charts (every chart when the gate was skipped) into
	// the registry; LoadSource compiles before swapping, so a load
	// failure never leaves a half-registered chart.
	var loaded []string
	for i := range specs {
		if validate && (specs[i].Result == nil || !specs[i].Result.Pass) {
			continue
		}
		names, err := s.specs.LoadSource(specs[i].Source, replace)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "already loaded") {
				code = http.StatusConflict
			}
			writeError(w, code, "loading mined chart %s: %v", specs[i].Name, err)
			return
		}
		specs[i].Loaded = true
		loaded = append(loaded, names...)
	}
	if len(loaded) == 0 {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": "no mined chart passed the validation gate",
			"mined": specs,
		})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"loaded": loaded, "mined": specs})
}
