package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/monitor"
	"repro/internal/verif"
	"repro/internal/wal"
)

// maxAcceptTicks bounds the per-monitor accept-tick log returned by the
// verdicts endpoint; later acceptances only increment counters.
const maxAcceptTicks = 1024

// defaultDiagDepth is the counterexample window armed for assert-mode
// sessions, matching verif.Bank. Clients may request a different window
// (any mode) via diag_depth at session creation, up to maxDiagDepth.
const (
	defaultDiagDepth = 8
	maxDiagDepth     = 256
)

// session is one client's monitor bank. Its engines are mutated only by
// the shard worker the session is pinned to; mu serializes the worker
// against verdict reads from HTTP goroutines.
type session struct {
	id      string
	mode    monitor.Mode
	shard   int
	created time.Time
	// tenant is the quota/fairness accounting key, fixed at creation
	// (client header or session-ID prefix) and journaled so recovery and
	// revival keep charging the same tenant.
	tenant string
	// diagDepth is the client-requested diagnostics window (0 means the
	// mode default); journaled so recovery re-arms the same window.
	diagDepth int

	lastActive atomic.Int64 // unix nanos
	// footprint is the estimated resident bytes of the session's hot
	// state, charged against Config.MemBudget. Set at registration and
	// refreshed by the janitor sweep as scoreboards grow.
	footprint atomic.Int64

	mu   sync.Mutex
	mons []*sessionMonitor
	// vocab, when non-nil, is the session's union interner: the supports
	// of every loaded spec declared into one symbol table. Each tick is
	// then decoded once into packBuf (vocab slot space) and every
	// program-bound engine consumes the same packed valuation.
	vocab   *event.Vocabulary
	packBuf event.Packed
	// fastPath marks sessions eligible for zero-copy batch ingest: every
	// monitor consumes the shared packed valuation, so the byte-level
	// batch decoder can pack request bodies straight into lanes without
	// materializing event.State maps. Immutable after newSession.
	fastPath bool
	// laneTab, when non-nil, marks the session lane-steppable: a single
	// chk-free monitor with diagnostics off whose table tier compiled and
	// whose vocabulary order equals the table's support order, so the
	// shard worker may resolve each tick's fired transition with one
	// table lookup (Engine.StepFired) and step sessions sharing the same
	// table in lockstep. Immutable after newSession.
	laneTab *monitor.Table
	// appliedJSeq is the journal index of the last batch the shard worker
	// has applied (guarded by mu). Snapshots record it so recovery knows
	// which journal records are already folded in.
	appliedJSeq uint64

	// ingestMu serializes the accept path of one session: duplicate
	// detection, enqueue order, and journal appends must agree on batch
	// order, so they happen under one lock per session.
	ingestMu sync.Mutex
	lastSeq  uint64 // highest client seq accepted (dedup watermark)
	walSeq   uint64 // journal index of the last appended batch record
	jrnl     *wal.Journal
	// journaled mirrors jrnl != nil for lock-free readers (the janitor
	// sweep and fairness scans pick page-out candidates without taking
	// every session's ingestMu); jrnl itself is only touched under
	// ingestMu or before the session is exposed.
	journaled atomic.Bool
	meta      sessionMetaJSON
	// frozen fences ingest during a live migration (guarded by ingestMu):
	// ExportSession sets it after the final pre-handoff barrier, so no
	// tick can land between the exported snapshot and the handoff commit.
	// Ingest against a frozen session answers 409 + Retry-After; the
	// retry lands on the new owner (or here again if the handoff aborts).
	frozen bool
	// pagedOut marks a session whose state has been checkpointed to its
	// journal and dropped from the hot table (guarded by ingestMu, like
	// frozen). A handler holding a stale pointer answers 409 +
	// Retry-After; the retry looks the session up again and revives it.
	pagedOut bool

	faults *faultinject.Plane
}

// sessionMonitor pairs a spec's engine with its coverage collector and
// accept-tick log. A monitor that panics while stepping is quarantined:
// its engine state is suspect, so it stops consuming ticks while the
// rest of the session keeps running.
type sessionMonitor struct {
	spec string
	eng  *monitor.Engine
	// packed marks engines bound to the session vocabulary: they consume
	// the session's shared packed valuation via StepPacked instead of
	// re-reading the map state.
	packed      bool
	cov         *verif.Coverage
	acceptTicks []int

	// reportedAccepts/reportedViolations are the engine totals already
	// folded into the daemon's per-spec counters (guarded by session.mu);
	// the shard worker reports only the delta after each batch, so the
	// daemon counters survive session eviction without double counting.
	reportedAccepts    uint64
	reportedViolations uint64

	quarantined      bool
	quarantineReason string
}

// newSessionID returns a 16-hex-char random identifier.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// shardFor pins a session ID to a shard by FNV-1a hash, so every tick of
// one session is processed by one worker in arrival order.
func shardFor(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

func newSession(id string, mode monitor.Mode, shard int, specs []*Spec, faults *faultinject.Plane, diagDepth int) *session {
	s := &session{id: id, mode: mode, shard: shard, created: time.Now(), faults: faults, diagDepth: diagDepth}
	s.touch()
	depth := diagDepth
	if depth == 0 && mode == monitor.ModeAssert {
		depth = defaultDiagDepth
	}
	// Detect-mode sessions decode each tick once into a packed valuation
	// over the union vocabulary of their specs. Assert-mode sessions keep
	// the full map state per step so violation diagnostics capture the
	// input exactly as received; their engines still run compiled guard
	// programs. A vocabulary kind conflict across specs (same name used
	// as event and prop) disables the shared packing for the session.
	if mode == monitor.ModeDetect {
		vocab := event.NewVocabulary()
		ok := true
		for _, sp := range specs {
			if sp.compiled == nil {
				ok = false
				break
			}
			if err := vocab.DeclareSupport(sp.compiled.Support()); err != nil {
				ok = false
				break
			}
		}
		if ok {
			s.vocab = vocab
		}
	}
	for _, sp := range specs {
		sm := &sessionMonitor{spec: sp.Name, cov: verif.NewCoverage(sp.mon)}
		switch {
		case s.vocab != nil:
			eng, err := sp.compiled.Program.NewEngineVocab(nil, mode, s.vocab)
			if err != nil {
				// Unreachable after DeclareSupport succeeded; degrade
				// rather than refuse the session.
				sm.eng = monitor.NewEngine(sp.mon, nil, mode)
			} else {
				sm.eng = eng
				sm.packed = true
			}
		case sp.compiled != nil:
			sm.eng = sp.compiled.Program.NewEngine(nil, mode)
		default:
			sm.eng = monitor.NewEngine(sp.mon, nil, mode)
		}
		if depth > 0 {
			sm.eng.EnableDiagnostics(depth)
		}
		s.mons = append(s.mons, sm)
	}
	if s.vocab != nil {
		s.fastPath = true
		for _, sm := range s.mons {
			if !sm.packed {
				s.fastPath = false
				break
			}
		}
	}
	// Lane eligibility: one packed chk-free monitor, diagnostics off, and
	// a vocabulary that is exactly the table's support in slot order (a
	// single-spec vocabulary always is; the check guards the invariant).
	// Chk guards and diagnostics both read state StepFired cannot see, so
	// sessions carrying either stay on the per-tick engine path.
	if s.fastPath && depth == 0 && len(s.mons) == 1 && len(specs) == 1 && specs[0].compiled != nil {
		if tab, err := specs[0].compiled.Table(); err == nil && tab.ChkFree() && vocabIsSupport(s.vocab, tab.Support()) {
			s.laneTab = tab
		}
	}
	return s
}

// vocabIsSupport reports whether the vocabulary's slot order is exactly
// the support's symbol order, which makes a batch-decoded word usable as
// a table valuation index directly.
func vocabIsSupport(v *event.Vocabulary, sup *event.Support) bool {
	if v.Len() != sup.Len() {
		return false
	}
	for i, sym := range sup.Symbols() {
		if v.Symbol(i) != sym {
			return false
		}
	}
	return true
}

func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

func (s *session) idleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastActive.Load()))
}

// Footprint pricing for the memory budget. Exact accounting would mean
// walking every engine allocation; instead the estimate is anchored on
// what actually scales with session lifetime — interned scoreboard
// slots, the accept-tick log, and the diagnostics ring — plus fixed
// charges for the structs around them.
const (
	footprintBase       = 4096 // session struct, vocab, journal buffers
	footprintPerMonitor = 2048 // engine, program binding, coverage
	footprintPerSlot    = 96   // interned slot: name, count, timestamp log
	footprintPerAccept  = 8    // one accept-tick log entry
	footprintPerDiag    = 768  // one retained diagnostic with its recent window
)

// estimateFootprint prices the session's resident state in bytes.
func (s *session) estimateFootprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth := s.diagDepth
	if depth == 0 && s.mode == monitor.ModeAssert {
		depth = defaultDiagDepth
	}
	fp := int64(footprintBase)
	for _, sm := range s.mons {
		fp += footprintPerMonitor
		fp += int64(sm.eng.Scoreboard().Slots()) * footprintPerSlot
		fp += int64(len(sm.acceptTicks)) * footprintPerAccept
		fp += int64(depth) * footprintPerDiag
	}
	return fp
}

// fallbackTenant derives the default tenant key from a session ID: its
// first four characters. Random IDs spread tenants evenly, while a
// cluster's ID minting keeps one client's sessions co-keyed only if the
// client supplies an explicit tenant header.
func fallbackTenant(id string) string {
	if len(id) > 4 {
		return id[:4]
	}
	return id
}

// faultShot is one monitor's per-batch fault plan: the in-batch tick
// offset a scheduled fault lands on, and the closure that performs its
// effect there. A nil do means no rule fired for this batch.
type faultShot struct {
	off int
	do  func() error
}

// batchShots plans the "monitor.step.<spec>" fault point for a batch of
// n ticks: one HitBatch per monitor, so counted fault schedules advance
// per batch no matter how traffic was chunked, and a fired rule lands on
// one deterministic tick inside the batch. Nil when no plane is wired.
func (s *session) batchShots(n int) []faultShot {
	if s.faults == nil || n <= 0 {
		return nil
	}
	shots := make([]faultShot, len(s.mons))
	for i, sm := range s.mons {
		shots[i].off, shots[i].do = s.faults.HitBatch("monitor.step."+sm.spec, n)
	}
	return shots
}

// step feeds one tick to every monitor of the session — the single-tick
// path (journal replay, VCD chunks processed as batches of map states).
// Caller holds s.mu. It returns the number of acceptances, violations,
// and newly quarantined monitors at this tick.
func (s *session) step(st event.State) (accepts, violations, quarantines int) {
	return s.stepTick(st, nil, s.batchShots(1), 0)
}

// stepTick feeds tick i of a batch to every monitor. Caller holds s.mu.
// When in is non-nil it is the batch-decoded packed valuation in vocab
// slot order and st is ignored (the zero-copy fast path); otherwise st
// is packed here exactly as the batch decoder would have. shots is the
// batch's fault plan from batchShots (nil when no faults are wired).
func (s *session) stepTick(st event.State, in event.Packed, shots []faultShot, i int) (accepts, violations, quarantines int) {
	if in == nil && s.vocab != nil {
		s.packBuf = s.vocab.PackInto(st, s.packBuf)
		in = s.packBuf
	}
	for mi, sm := range s.mons {
		if sm.quarantined {
			continue
		}
		var fire func() error
		if shots != nil && shots[mi].do != nil && shots[mi].off == i {
			fire = shots[mi].do
		}
		res, panicked := sm.safeStep(fire, st, in)
		if panicked != nil {
			// The engine may have died mid-transition; its state is no
			// longer trustworthy, so the monitor is fenced off for the
			// rest of the session while its siblings keep stepping.
			sm.quarantined = true
			sm.quarantineReason = fmt.Sprintf("panic at step %d: %v", sm.eng.Stats().Steps, panicked)
			quarantines++
			continue
		}
		sm.cov.Record(res)
		switch res.Outcome {
		case monitor.Accepted:
			accepts++
			if len(sm.acceptTicks) < maxAcceptTicks {
				sm.acceptTicks = append(sm.acceptTicks, res.Tick)
			}
		case monitor.Violated:
			violations++
		}
	}
	return accepts, violations, quarantines
}

// safeStep runs one engine step behind a recover barrier so a panicking
// monitor cannot take down its shard worker. fire, when non-nil, is the
// batch fault plan's effect for this monitor at this tick — the
// "monitor.step.<spec>" injection point resolved per batch (error
// effects are ignored here, like the old per-tick Hit; latency sleeps
// and panics land as themselves).
func (sm *sessionMonitor) safeStep(fire func() error, st event.State, in event.Packed) (res monitor.StepResult, panicked any) {
	defer func() { panicked = recover() }()
	if fire != nil {
		_ = fire()
	}
	if sm.packed {
		return sm.eng.StepPacked(in), nil
	}
	return sm.eng.Step(st), nil
}

// safeStepFired is the lane-group step: the fired transition is resolved
// with one shared-table lookup and the engine consumes it via StepFired,
// behind the same recover barrier as safeStep. Valid only for the
// sessions laneTab marks (chk-free monitor, diagnostics off), where
// StepFired is verdict- and provenance-identical to StepPacked.
func (sm *sessionMonitor) safeStepFired(tab *monitor.Table, val uint64) (res monitor.StepResult, panicked any) {
	defer func() { panicked = recover() }()
	return sm.eng.StepFired(tab.Fired(sm.eng.State(), val)), nil
}

// modeString renders the session mode for JSON bodies.
func modeString(m monitor.Mode) string {
	if m == monitor.ModeAssert {
		return "assert"
	}
	return "detect"
}

// parseMode inverts modeString; empty defaults to detect.
func parseMode(s string) (monitor.Mode, error) {
	switch s {
	case "", "detect":
		return monitor.ModeDetect, nil
	case "assert":
		return monitor.ModeAssert, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want detect or assert)", s)
	}
}

// StateJSON is the wire form of an event.State: the events that occur
// and the propositions that hold at one tick. It doubles as the NDJSON
// tick format of the ingest endpoint.
type StateJSON struct {
	Events []string        `json:"events,omitempty"`
	Props  map[string]bool `json:"props,omitempty"`
}

// ToState materializes the wire form.
func (t StateJSON) ToState() event.State {
	s := event.NewState()
	for _, e := range t.Events {
		s.Events[e] = true
	}
	for p, v := range t.Props {
		s.Props[p] = v
	}
	return s
}

// EncodeState converts an engine-side state to the wire form — exported
// for the client package and the WAL journal, which both speak StateJSON.
func EncodeState(s event.State) StateJSON { return stateJSON(s) }

// stateJSON converts an engine-side state to the wire form (only true
// symbols are carried, sorted for stable output).
func stateJSON(s event.State) StateJSON {
	out := StateJSON{}
	for e, v := range s.Events {
		if v {
			out.Events = append(out.Events, e)
		}
	}
	sort.Strings(out.Events)
	for p, v := range s.Props {
		if v {
			if out.Props == nil {
				out.Props = make(map[string]bool)
			}
			out.Props[p] = true
		}
	}
	return out
}

// DiagnosticJSON is the wire form of a monitor.Diagnostic counterexample,
// carrying the full provenance every execution tier emits identically:
// the chart (monitor) name, the grid line of the abandoned state, the
// guard that fired into the violation (empty on a hard reset), the
// candidate guards of that state in transition order, and the input
// packed through the monitor's own support order.
type DiagnosticJSON struct {
	Tick      int      `json:"tick"`
	Monitor   string   `json:"monitor,omitempty"`
	GridLine  int      `json:"grid_line"`
	FromState int      `json:"from_state"`
	Guard     string   `json:"guard,omitempty"`
	Guards    []string `json:"guards,omitempty"`
	Valuation uint64   `json:"valuation"`

	Input      StateJSON   `json:"input"`
	Recent     []StateJSON `json:"recent,omitempty"`
	Scoreboard []string    `json:"scoreboard,omitempty"`
}

// diagnosticJSON renders one provenance report for the wire.
func diagnosticJSON(d monitor.Diagnostic) DiagnosticJSON {
	dj := DiagnosticJSON{
		Tick:       d.Tick,
		Monitor:    d.Monitor,
		GridLine:   d.GridLine,
		FromState:  d.FromState,
		Guard:      d.Guard,
		Guards:     d.Guards,
		Valuation:  d.Valuation,
		Input:      stateJSON(d.Input),
		Scoreboard: d.Scoreboard,
	}
	for _, r := range d.Recent {
		dj.Recent = append(dj.Recent, stateJSON(r))
	}
	return dj
}

// CoverageJSON summarizes verif coverage for one monitor.
type CoverageJSON struct {
	State      float64  `json:"state"`
	Transition float64  `json:"transition"`
	HardResets uint64   `json:"hard_resets"`
	Uncovered  []string `json:"uncovered,omitempty"`
}

// MonitorVerdictJSON is one monitor's accumulated verdict. Quarantined
// reports a monitor whose engine panicked while stepping: its counters
// are frozen at the last healthy tick and QuarantineReason says why.
type MonitorVerdictJSON struct {
	Spec             string           `json:"spec"`
	Steps            int              `json:"steps"`
	Accepts          int              `json:"accepts"`
	Violations       int              `json:"violations"`
	Fallbacks        int              `json:"fallbacks"`
	LastAcceptTick   int              `json:"last_accept_tick"`
	AcceptTicks      []int            `json:"accept_ticks,omitempty"`
	Coverage         CoverageJSON     `json:"coverage"`
	Diagnostics      []DiagnosticJSON `json:"diagnostics,omitempty"`
	Quarantined      bool             `json:"quarantined,omitempty"`
	QuarantineReason string           `json:"quarantine_reason,omitempty"`
}

// VerdictsJSON is the body of GET /sessions/{id}/verdicts.
type VerdictsJSON struct {
	Session  string               `json:"session"`
	Mode     string               `json:"mode"`
	Monitors []MonitorVerdictJSON `json:"monitors"`
}

// verdicts snapshots the session's accumulated results.
func (s *session) verdicts() VerdictsJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := VerdictsJSON{Session: s.id, Mode: modeString(s.mode)}
	for _, sm := range s.mons {
		st := sm.eng.Stats()
		mv := MonitorVerdictJSON{
			Spec:           sm.spec,
			Steps:          st.Steps,
			Accepts:        st.Accepts,
			Violations:     st.Violations,
			Fallbacks:      st.Fallbacks,
			LastAcceptTick: st.LastAcceptTick,
			AcceptTicks:    append([]int(nil), sm.acceptTicks...),
			Coverage: CoverageJSON{
				State:      sm.cov.StateCoverage(),
				Transition: sm.cov.TransitionCoverage(),
				HardResets: sm.cov.HardResets(),
				Uncovered:  sm.cov.UncoveredTransitions(),
			},
			Quarantined:      sm.quarantined,
			QuarantineReason: sm.quarantineReason,
		}
		for _, d := range sm.eng.Diagnostics() {
			mv.Diagnostics = append(mv.Diagnostics, diagnosticJSON(d))
		}
		out.Monitors = append(out.Monitors, mv)
	}
	return out
}

// MonitorDiagnosticsJSON is one monitor's retained provenance ring.
type MonitorDiagnosticsJSON struct {
	Spec        string           `json:"spec"`
	Violations  int              `json:"violations"`
	Diagnostics []DiagnosticJSON `json:"diagnostics,omitempty"`
}

// DiagnosticsJSON is the body of GET /sessions/{id}/diagnostics.
type DiagnosticsJSON struct {
	Session  string                   `json:"session"`
	Mode     string                   `json:"mode"`
	Monitors []MonitorDiagnosticsJSON `json:"monitors"`
}

// diagnostics snapshots the per-monitor provenance rings.
func (s *session) diagnostics() DiagnosticsJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := DiagnosticsJSON{Session: s.id, Mode: modeString(s.mode)}
	for _, sm := range s.mons {
		md := MonitorDiagnosticsJSON{Spec: sm.spec, Violations: sm.eng.Stats().Violations}
		for _, d := range sm.eng.Diagnostics() {
			md.Diagnostics = append(md.Diagnostics, diagnosticJSON(d))
		}
		out.Monitors = append(out.Monitors, md)
	}
	return out
}

// SessionInfoJSON is the body of GET /sessions/{id} and the elements of
// GET /sessions.
type SessionInfoJSON struct {
	ID        string   `json:"id"`
	Mode      string   `json:"mode"`
	Shard     int      `json:"shard"`
	Specs     []string `json:"specs"`
	Steps     int      `json:"steps"`
	IdleMilli int64    `json:"idle_ms"`
	// Tenant is the quota accounting key the session is charged to.
	Tenant string `json:"tenant,omitempty"`
	// Cold marks a paged-out session: its state lives in its WAL
	// checkpoint and the next tick revives it transparently. Cold
	// entries report no step count (reading one would mean reviving).
	Cold bool `json:"cold,omitempty"`
}

func (s *session) info() SessionInfoJSON {
	s.mu.Lock()
	steps := 0
	specs := make([]string, 0, len(s.mons))
	for _, sm := range s.mons {
		specs = append(specs, sm.spec)
		if st := sm.eng.Stats(); st.Steps > steps {
			steps = st.Steps
		}
	}
	s.mu.Unlock()
	return SessionInfoJSON{
		ID:        s.id,
		Mode:      modeString(s.mode),
		Shard:     s.shard,
		Specs:     specs,
		Steps:     steps,
		IdleMilli: s.idleFor(time.Now()).Milliseconds(),
		Tenant:    s.tenant,
	}
}
