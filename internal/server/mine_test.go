package server

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/ocp"
)

// ocpMiningCorpus renders an OCP simple-read corpus in the daemon's
// NDJSON wire format, one trace segment per gap so inter-transaction
// spacing varies across segments.
func ocpMiningCorpus(t *testing.T, ticks int) []byte {
	t.Helper()
	var b bytes.Buffer
	for gap := 1; gap <= 6; gap++ {
		if gap > 1 {
			b.WriteByte('\n')
		}
		m := ocp.NewModel(ocp.Config{Gap: gap, Seed: int64(gap)})
		b.Write(ndjson(t, m.GenerateTrace(ticks)))
	}
	return b.Bytes()
}

// TestMineSpecsEndpoint posts a trace corpus to POST /specs/mine and
// then runs a session on the mined chart: the full loop from raw traces
// to a live monitor without a hand-written spec.
func TestMineSpecsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})

	var mined struct {
		Loaded []string `json:"loaded"`
		Mined  []struct {
			Name   string `json:"name"`
			Loaded bool   `json:"loaded"`
			Result struct {
				Pass    bool `json:"pass"`
				Accepts int  `json:"accepts"`
				Mutants int  `json:"mutants"`
				Killed  int  `json:"killed"`
			} `json:"result"`
		} `json:"mined"`
	}
	doJSON(t, "POST", ts.URL+"/specs/mine?name=ocp_mined&clock=ocp_clk",
		ocpMiningCorpus(t, 160), http.StatusCreated, &mined)
	if len(mined.Loaded) == 0 {
		t.Fatal("no mined specs loaded")
	}
	var scenario string
	for _, m := range mined.Mined {
		if m.Loaded {
			if !m.Result.Pass || m.Result.Mutants == 0 || m.Result.Killed < m.Result.Mutants {
				t.Fatalf("loaded chart %s with weak gate result: %+v", m.Name, m.Result)
			}
			scenario = m.Name
		}
	}
	if scenario == "" {
		t.Fatal("no loaded chart in mined report")
	}

	var specs struct {
		Specs []struct {
			Name string `json:"name"`
		} `json:"specs"`
	}
	doJSON(t, "GET", ts.URL+"/specs", nil, http.StatusOK, &specs)
	found := false
	for _, sp := range specs.Specs {
		found = found || sp.Name == scenario
	}
	if !found {
		t.Fatalf("mined chart %s not listed in /specs (%+v)", scenario, specs.Specs)
	}

	// Run a live session on the mined scenario chart over a clean trace:
	// it must accept and never violate.
	sess := createSession(t, ts.URL, "detect", scenario)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 99}).GenerateTrace(120)
	streamTicks(t, ts.URL, sess.ID, tr, 64)
	verdict := verdictFor(t, ts.URL, sess.ID, scenario)
	if verdict.Accepts == 0 || verdict.Violations != 0 {
		t.Fatalf("mined monitor on clean trace: accepts=%d violations=%d", verdict.Accepts, verdict.Violations)
	}
}

// TestMineSpecsNothingPasses posts a corpus with no mineable structure
// and expects 422 with nothing loaded.
func TestMineSpecsNothingPasses(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	// One event at irregular, segment-varying offsets: no offset after
	// any anchor holds across windows, so nothing clears confidence 1.0.
	var b bytes.Buffer
	for seg, at := range [][]int{{0, 3, 7}, {1, 6, 11}, {2, 5, 9}} {
		if seg > 0 {
			b.WriteByte('\n')
		}
		hit := map[int]bool{}
		for _, i := range at {
			hit[i] = true
		}
		for i := 0; i < 12; i++ {
			if hit[i] {
				fmt.Fprintln(&b, `{"events":["a"]}`)
			} else {
				fmt.Fprintln(&b, `{"events":[]}`)
			}
		}
	}
	var out struct {
		Error string `json:"error"`
	}
	doJSON(t, "POST", ts.URL+"/specs/mine", b.Bytes(), http.StatusUnprocessableEntity, &out)
	if out.Error == "" {
		t.Fatal("expected an error message")
	}
	var specs struct {
		Specs []struct {
			Name string `json:"name"`
		} `json:"specs"`
	}
	doJSON(t, "GET", ts.URL+"/specs", nil, http.StatusOK, &specs)
	for _, sp := range specs.Specs {
		if sp.Name != "OcpSimpleRead" {
			t.Fatalf("unexpected spec %q registered by failed mine", sp.Name)
		}
	}
}

// TestMineSpecsBadRequests covers malformed corpora and parameters.
func TestMineSpecsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	var out struct {
		Error string `json:"error"`
	}
	doJSON(t, "POST", ts.URL+"/specs/mine", []byte("not json\n"), http.StatusBadRequest, &out)
	doJSON(t, "POST", ts.URL+"/specs/mine?confidence=2",
		[]byte(`{"events":["a"]}`+"\n"), http.StatusBadRequest, &out)
	doJSON(t, "POST", ts.URL+"/specs/mine?min_support=x",
		[]byte(`{"events":["a"]}`+"\n"), http.StatusBadRequest, &out)
}
