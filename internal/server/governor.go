package server

// Load governor: overload admission control with graceful degradation.
// The governor folds three saturation signals into one score —
//
//	queue:   max shard queue occupancy (len/cap)
//	memory:  estimated hot-state bytes over Config.MemBudget
//	latency: smoothed per-tick step time over Config.GovernorLatency
//
// — and maps the score to a shed level. Shedding follows a strict,
// documented order, chosen so that what is dropped is always latency
// coupling or *new* work, never accepted data:
//
//	level 1 (score ≥ 0.75): shed ?wait=1 — the batch is still accepted,
//	        journaled, and processed, but the response returns 202
//	        immediately (X-Cesc-Shed: wait) instead of blocking on the
//	        shard worker. Verdicts are unaffected; only the client's
//	        synchronization is degraded.
//	level 2 (score ≥ 0.90): throttle new sessions — POST /sessions
//	        answers 429 + jittered Retry-After (X-Cesc-Shed: sessions).
//	        Existing sessions keep ingesting. Clustered nodes gossip
//	        their level, so the ring routes creation to cooler peers
//	        before this rejection is ever seen.
//	level 3 (score ≥ 1.0): force page-outs — the janitor is kicked to
//	        drain hot state to the low watermark, trading revival
//	        latency for headroom.
//
// WAL appends and in-flight verdicts are never dropped at any level.
// Levels fall with a hysteresis margin so the daemon does not flap at a
// threshold, and the whole computation is cached for govRecompute so
// the hot path pays one atomic load. The fault-injection points
// governor.force.{wait,sessions,pageout} drive each level
// deterministically in tests.

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Shed levels, in degradation order.
const (
	govLevelOK               = 0
	govLevelShedWait         = 1
	govLevelThrottleSessions = 2
	govLevelForcePageout     = 3
)

const (
	govShedWaitAt = 0.75
	govThrottleAt = 0.90
	govPageoutAt  = 1.0
	govHysteresis = 0.10
	govRecompute  = 50 * time.Millisecond
	defaultGovLat = 100 * time.Millisecond
)

type governor struct {
	srv *Server

	// stepEWMA smooths per-tick step latency (nanoseconds), updated by
	// shard workers after every batch (7/8 old + 1/8 new). Concurrent
	// lost updates are harmless — it is a signal, not a ledger.
	stepEWMA atomic.Int64

	lastCalc atomic.Int64  // unix nanos of the last recompute
	score    atomic.Uint64 // math.Float64bits of the last score
	level    atomic.Int32
}

// observeStep folds one batch's per-tick step latency into the EWMA.
func (g *governor) observeStep(d time.Duration, ticks int) {
	if ticks <= 0 {
		return
	}
	per := d.Nanoseconds() / int64(ticks)
	old := g.stepEWMA.Load()
	g.stepEWMA.Store(old - old/8 + per/8)
}

// recompute refreshes score and level, at most once per govRecompute.
func (g *governor) recompute() {
	now := time.Now().UnixNano()
	last := g.lastCalc.Load()
	if now-last < int64(govRecompute) || !g.lastCalc.CompareAndSwap(last, now) {
		return
	}
	s := g.srv
	score := 0.0
	for _, sh := range s.shards {
		if f := float64(len(sh.queue)) / float64(cap(sh.queue)); f > score {
			score = f
		}
	}
	if b := s.cfg.MemBudget; b > 0 {
		if f := float64(s.memUsed.Load()) / float64(b); f > score {
			score = f
		}
	}
	if lat := s.cfg.GovernorLatency; lat > 0 {
		if f := float64(g.stepEWMA.Load()) / float64(lat.Nanoseconds()); f > score {
			score = f
		}
	}
	g.score.Store(math.Float64bits(score))
	target := levelForScore(score)
	cur := int(g.level.Load())
	switch {
	case target >= cur:
		g.level.Store(int32(target))
	case score < levelThreshold(cur)-govHysteresis:
		// Falling edge: only step down once the score is a full margin
		// below the level's own threshold.
		g.level.Store(int32(target))
	}
	if next := int(g.level.Load()); next != cur {
		// Level transitions are rare (hysteresis guarantees it) and are
		// exactly what an operator wants in the black box next to the
		// incident's spans.
		s.flight.Note("governor", "", fmt.Sprintf("level %d -> %d (score %.2f)", cur, next, score))
	}
	if int(g.level.Load()) >= govLevelForcePageout {
		s.kickPressure()
	}
}

func levelForScore(score float64) int {
	switch {
	case score >= govPageoutAt:
		return govLevelForcePageout
	case score >= govThrottleAt:
		return govLevelThrottleSessions
	case score >= govShedWaitAt:
		return govLevelShedWait
	default:
		return govLevelOK
	}
}

func levelThreshold(level int) float64 {
	switch level {
	case govLevelForcePageout:
		return govPageoutAt
	case govLevelThrottleSessions:
		return govThrottleAt
	case govLevelShedWait:
		return govShedWaitAt
	default:
		return 0
	}
}

// govLevel reports the current shed level on the admission path,
// letting the fault plane force a stage: a firing rule on
// governor.force.<stage> behaves exactly as if the score had crossed
// that stage's threshold, which is how the tests exercise every
// degradation step deterministically.
func (s *Server) govLevel() int {
	return s.govLevelAct(true)
}

// govLevelAct computes the shed level; act distinguishes the admission
// path (forced pageout levels kick the janitor) from pure state reads
// (GovernorState via /metrics and cluster gossip), which must not turn
// a poll loop into an eviction storm.
func (s *Server) govLevelAct(act bool) int {
	s.gov.recompute()
	lvl := int(s.gov.level.Load())
	if s.cfg.Faults != nil {
		switch {
		case s.cfg.Faults.Hit("governor.force.pageout") != nil:
			lvl = govLevelForcePageout
			if act {
				s.kickPressure()
			}
		case s.cfg.Faults.Hit("governor.force.sessions") != nil:
			lvl = govLevelThrottleSessions
		case s.cfg.Faults.Hit("governor.force.wait") != nil:
			if lvl < govLevelShedWait {
				lvl = govLevelShedWait
			}
		}
	}
	return lvl
}

// GovLevelThrottleSessions is the governor level at which new-session
// creation is shed, exported for the cluster router: a node at or above
// it proxies creates to a cooler peer before the local 429 is ever sent.
const GovLevelThrottleSessions = govLevelThrottleSessions

// GovernorState reports the governor's level and score — the cluster
// layer gossips it so the ring can route new sessions to cooler nodes.
// The level comes from govLevel, fault forcing included, so what a node
// gossips always matches what its admission path enforces.
func (s *Server) GovernorState() (level int, score float64) {
	lvl := s.govLevelAct(false)
	return lvl, math.Float64frombits(s.gov.score.Load())
}

// sessionThrottleRetryAfter jitters the Retry-After of a shed session
// creation across 1–3 seconds, decorrelating the retry stampede of many
// rejected clients. The jitter source is the shed counter itself —
// deterministic across runs, varied across rejections.
func (s *Server) sessionThrottleRetryAfter() int {
	n := s.metrics.shedSessions.Load()
	return int(1 + (n*2654435761)%3)
}
