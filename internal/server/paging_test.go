package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ocp"
)

// postTicksStatus posts one tick batch and returns the bare status code,
// for loops that must tolerate 409 (paged out / migrating) and 429
// (shed / quota) instead of failing like doJSON does.
func postTicksStatus(t *testing.T, url string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// coldIDs lists the sessions the server reports as cold.
func coldIDs(t *testing.T, base string) map[string]bool {
	t.Helper()
	var list struct {
		Sessions []SessionInfoJSON `json:"sessions"`
	}
	doJSON(t, "GET", base+"/sessions", nil, http.StatusOK, &list)
	out := make(map[string]bool)
	for _, info := range list.Sessions {
		if info.Cold {
			out[info.ID] = true
		}
	}
	return out
}

// TestPageOutRevivalParity is the paging acceptance test: a session
// paged out mid-stream through the ops endpoint and transparently
// revived by the next batch must report verdicts byte-identical to a
// session that never left memory, and the split eviction counters must
// attribute the round trip as paged+revived, not deleted.
func TestPageOutRevivalParity(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 11, FaultRate: 0.2}).GenerateTrace(600)
	cfg := Config{Shards: 2, QueueDepth: 16, SnapshotEvery: 4}

	// Reference: same specs, same trace, never paged.
	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 32)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	s, ts := newWALServer(t, t.TempDir(), cfg)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts.URL, sess.ID, tr[:300], 32)

	var paged map[string]string
	doJSON(t, "POST", ts.URL+"/sessions/"+sess.ID+"/pageout", nil, http.StatusOK, &paged)
	if paged["paged"] != sess.ID {
		t.Fatalf("pageout response = %v, want paged=%s", paged, sess.ID)
	}
	// Idempotent on an already-cold session; 404 on an unknown ID.
	doJSON(t, "POST", ts.URL+"/sessions/"+sess.ID+"/pageout", nil, http.StatusOK, nil)
	doJSON(t, "POST", ts.URL+"/sessions/no-such-session/pageout", nil, http.StatusNotFound, nil)

	// Cold sessions stay listed (from the cold table alone) and release
	// their memory charge.
	if cold := coldIDs(t, ts.URL); !cold[sess.ID] {
		t.Fatalf("session %s not listed cold after pageout: %v", sess.ID, cold)
	}
	m := s.Metrics()
	if m.SessionsPaged != 1 || m.SessionsDeleted != 0 || m.SessionsCold != 1 || m.SessionsActive != 0 {
		t.Fatalf("after pageout: paged=%d deleted=%d cold=%d active=%d",
			m.SessionsPaged, m.SessionsDeleted, m.SessionsCold, m.SessionsActive)
	}
	if m.MemUsedBytes != 0 {
		t.Fatalf("mem_used after paging the only session = %d, want 0", m.MemUsedBytes)
	}
	if m.SessionsEvicted != m.SessionsPaged+m.SessionsDeleted {
		t.Fatalf("legacy sessions_evicted = %d, want paged+deleted = %d",
			m.SessionsEvicted, m.SessionsPaged+m.SessionsDeleted)
	}

	// The rest of the stream revives the session transparently.
	streamTicks(t, ts.URL, sess.ID, tr[300:], 32)
	got := monitorsJSON(t, ts.URL, sess.ID)
	if string(got) != string(want) {
		t.Fatalf("verdicts after pageout+revival differ from unpaged run:\n got %s\nwant %s", got, want)
	}
	m = s.Metrics()
	if m.SessionsRevived != 1 || m.SessionsCold != 0 || m.SessionsActive != 1 {
		t.Fatalf("after revival: revived=%d cold=%d active=%d", m.SessionsRevived, m.SessionsCold, m.SessionsActive)
	}
}

// TestSeqDedupSurvivesPageOut pins the exactly-once contract across the
// cold round trip: the ?seq watermark travels inside the page-out
// checkpoint, so a batch retried against a revived session is still
// acknowledged as a duplicate without being re-stepped.
func TestSeqDedupSurvivesPageOut(t *testing.T) {
	s, ts := newWALServer(t, t.TempDir(), Config{Shards: 1, QueueDepth: 16})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 12, FaultRate: 0.2}).GenerateTrace(64)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")

	url := func(seq int) string {
		return fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=%d", ts.URL, sess.ID, seq)
	}
	doJSON(t, "POST", url(1), ndjson(t, tr[:32]), http.StatusOK, nil)
	if err := s.PageOutSession(sess.ID); err != nil {
		t.Fatalf("pageout: %v", err)
	}

	// Retry of the already-applied batch: revives, then dedups.
	var resp map[string]any
	doJSON(t, "POST", url(1), ndjson(t, tr[:32]), http.StatusOK, &resp)
	if resp["duplicate"] != true || resp["accepted"] != float64(0) {
		t.Fatalf("retried batch after pageout: %v, want duplicate with 0 accepted", resp)
	}
	doJSON(t, "POST", url(2), ndjson(t, tr[32:]), http.StatusOK, nil)

	var info SessionInfoJSON
	doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Steps != 64 {
		t.Fatalf("steps = %d, want 64 (duplicate must not re-step)", info.Steps)
	}
	m := s.Metrics()
	if m.BatchesDeduped != 1 || m.SessionsRevived != 1 {
		t.Fatalf("deduped=%d revived=%d, want 1/1", m.BatchesDeduped, m.SessionsRevived)
	}
}

// TestPageOutWithoutJournal: a session with no WAL has nowhere durable
// to page to — the ops endpoint answers 409.
func TestPageOutWithoutJournal(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 16})
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	doJSON(t, "POST", ts.URL+"/sessions/"+sess.ID+"/pageout", nil, http.StatusConflict, nil)
}

// TestIdleSweepPagesJournaled: with journaling on, the idle TTL pages
// (state preserved, counted as paged) instead of deleting, and the next
// touch revives.
func TestIdleSweepPagesJournaled(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16, IdleTTL: 40 * time.Millisecond, SweepEvery: 15 * time.Millisecond}
	s, ts := newWALServer(t, t.TempDir(), cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 13, FaultRate: 0.2}).GenerateTrace(64)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 32)

	waitFor(t, 5*time.Second, func() bool { return s.Metrics().SessionsPaged == 1 })
	m := s.Metrics()
	if m.SessionsDeleted != 0 || m.SessionsCold != 1 {
		t.Fatalf("idle sweep with journal: deleted=%d cold=%d, want 0/1", m.SessionsDeleted, m.SessionsCold)
	}
	// The verdict query revives the session with its state intact.
	v := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if v.Steps != 64 {
		t.Fatalf("revived verdict steps = %d, want 64", v.Steps)
	}
	if got := s.Metrics().SessionsRevived; got < 1 {
		t.Fatalf("sessions_revived = %d, want >= 1", got)
	}
}

// TestIdleSweepDeletesUnjournaled: without a journal, idle eviction
// remains deletion and is counted as such.
func TestIdleSweepDeletesUnjournaled(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 16, IdleTTL: 40 * time.Millisecond, SweepEvery: 15 * time.Millisecond}
	s, ts := newTestServer(t, cfg)
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")

	waitFor(t, 5*time.Second, func() bool { return s.Metrics().SessionsDeleted == 1 })
	m := s.Metrics()
	if m.SessionsPaged != 0 || m.SessionsCold != 0 {
		t.Fatalf("idle sweep without journal: paged=%d cold=%d, want 0/0", m.SessionsPaged, m.SessionsCold)
	}
	doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusNotFound, nil)
}

// TestMemBudgetPagesColdestFirst: sessions are priced into a global
// budget and the janitor relieves pressure by paging the least recently
// active sessions first, draining to the low watermark.
func TestMemBudgetPagesColdestFirst(t *testing.T) {
	// Price one idle session to size the budget exactly.
	ms, mts := newWALServer(t, t.TempDir(), Config{Shards: 1, QueueDepth: 16})
	createSession(t, mts.URL, "assert", "OcpSimpleRead")
	fp := ms.MemUsed()
	if fp <= 0 {
		t.Fatalf("measured footprint = %d, want > 0", fp)
	}

	// Budget holds three idle sessions; the fourth forces pressure, and
	// the low watermark (80%) demands two page-outs.
	cfg := Config{Shards: 1, QueueDepth: 16, MemBudget: fp*3 + fp/2, SweepEvery: 15 * time.Millisecond}
	s, ts := newWALServer(t, t.TempDir(), cfg)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, createSession(t, ts.URL, "assert", "OcpSimpleRead").ID)
		time.Sleep(5 * time.Millisecond) // distinct lastActive ordering
	}

	waitFor(t, 5*time.Second, func() bool { return s.Metrics().SessionsPaged == 2 })
	cold := coldIDs(t, ts.URL)
	if !cold[ids[0]] || !cold[ids[1]] || cold[ids[2]] || cold[ids[3]] {
		t.Fatalf("cold set = %v, want exactly the two coldest %v", cold, ids[:2])
	}
	if used := s.MemUsed(); used > cfg.MemBudget {
		t.Fatalf("mem used %d still over budget %d after sweep", used, cfg.MemBudget)
	}
}

// TestColdStartLazyRevival: Config.ColdStart registers journaled
// sessions as cold without replaying them, and the first touch pays the
// replay for that session alone — verdicts byte-identical to an
// uninterrupted run.
func TestColdStartLazyRevival(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 14, FaultRate: 0.2}).GenerateTrace(400)
	cfg := Config{Shards: 2, QueueDepth: 16, SnapshotEvery: 4}

	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 32)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	dir := t.TempDir()
	s1, ts1 := newWALServer(t, dir, cfg)
	a := createSession(t, ts1.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	b := createSession(t, ts1.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts1.URL, a.ID, tr[:200], 32)
	streamTicks(t, ts1.URL, b.ID, tr[:200], 32)
	ts1.Close()
	s1.Close()

	coldCfg := cfg
	coldCfg.ColdStart = true
	s2, ts2 := newWALServer(t, dir, coldCfg)
	m := s2.Metrics()
	if m.SessionsRecovered != 2 || m.SessionsCold != 2 || m.SessionsActive != 0 {
		t.Fatalf("cold start: recovered=%d cold=%d active=%d, want 2/2/0",
			m.SessionsRecovered, m.SessionsCold, m.SessionsActive)
	}
	if m.BatchesReplayed != 0 {
		t.Fatalf("cold start replayed %d batches, want 0 (lazy)", m.BatchesReplayed)
	}

	// Touching a revives it (and only it) with full state.
	streamTicks(t, ts2.URL, a.ID, tr[200:], 32)
	got := monitorsJSON(t, ts2.URL, a.ID)
	if string(got) != string(want) {
		t.Fatalf("verdicts after cold start differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	m = s2.Metrics()
	if m.SessionsRevived != 1 || m.SessionsCold != 1 || m.BatchesReplayed == 0 {
		t.Fatalf("after first touch: revived=%d cold=%d replayed=%d", m.SessionsRevived, m.SessionsCold, m.BatchesReplayed)
	}
}

// TestCrashMidPageOutRecovers: a page-out whose checkpoint append dies
// (injected WAL fault) leaves the session hot and serving; a crash right
// after, recovered on the same directory, still reproduces verdicts
// byte-identical to an uninterrupted run — the journal tail the failed
// checkpoint would have pruned is exactly what recovery replays.
func TestCrashMidPageOutRecovers(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 15, FaultRate: 0.2}).GenerateTrace(400)
	cfg := Config{Shards: 1, QueueDepth: 16, SnapshotEvery: 4}

	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 32)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	dir := t.TempDir()
	faults := faultinject.New(1)
	crashCfg := cfg
	crashCfg.Faults = faults
	s1, ts1 := newWALServer(t, dir, crashCfg)
	sess := createSession(t, ts1.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts1.URL, sess.ID, tr[:200], 32)

	// The next WAL append — the page-out's checkpoint record — fails.
	faults.Add(faultinject.Rule{
		Point: "wal.append",
		Kind:  faultinject.KindError,
		After: faults.Hits("wal.append"),
	})
	if err := s1.PageOutSession(sess.ID); err == nil {
		t.Fatal("pageout with failing checkpoint append succeeded, want error")
	}
	m := s1.Metrics()
	if m.SessionsPaged != 0 || m.SessionsActive != 1 || m.WALErrors == 0 {
		t.Fatalf("after failed pageout: paged=%d active=%d wal_errors=%d, want 0/1/>0",
			m.SessionsPaged, m.SessionsActive, m.WALErrors)
	}

	// Power cut immediately after; the tail is intact on disk.
	s1.Crash()
	ts1.Close()
	_, ts2 := newWALServer(t, dir, cfg)
	streamTicks(t, ts2.URL, sess.ID, tr[200:], 32)
	got := monitorsJSON(t, ts2.URL, sess.ID)
	if string(got) != string(want) {
		t.Fatalf("verdicts after crash mid-pageout differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestPageReviveIngestMigrateStress races a seq-numbered ingest stream
// against continuous page-outs and export/abort migration freezes on the
// same session (run under -race by `make race`/`make check`). Whatever
// interleaving happens, the final verdict state must be byte-identical
// to an undisturbed run — the 409/429 retry contract plus the dedup
// watermark make the chaos invisible.
func TestPageReviveIngestMigrateStress(t *testing.T) {
	cfg := Config{Shards: 2, QueueDepth: 64, SnapshotEvery: 8}
	_, refTS := newWALServer(t, t.TempDir(), cfg)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 21, FaultRate: 0.2}).GenerateTrace(600)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 24)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	s, ts := newWALServer(t, t.TempDir(), cfg)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // pager: demote the session whenever it is hot
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.PageOutSession(sess.ID) // errMigrating etc. are expected
			time.Sleep(3 * time.Millisecond)
		}
	}()
	go func() { // migrator: freeze/thaw via export + abort
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.ExportSession(sess.ID); err == nil {
				s.AbortMigration(sess.ID)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	seq := 0
	for at := 0; at < len(tr); at += 24 {
		end := at + 24
		if end > len(tr) {
			end = len(tr)
		}
		seq++
		body := ndjson(t, tr[at:end])
		url := fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=%d", ts.URL, sess.ID, seq)
		for {
			code := postTicksStatus(t, url, body)
			if code == http.StatusOK || code == http.StatusAccepted {
				break
			}
			if code != http.StatusConflict && code != http.StatusTooManyRequests {
				t.Fatalf("batch %d: status %d, want 200/202 or retryable 409/429", seq, code)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	// One deterministic final round trip, then byte parity.
	if err := s.PageOutSession(sess.ID); err != nil {
		t.Fatalf("final pageout: %v", err)
	}
	got := monitorsJSON(t, ts.URL, sess.ID)
	if string(got) != string(want) {
		t.Fatalf("verdicts after page/revive/migrate stress differ:\n got %s\nwant %s", got, want)
	}
	var info SessionInfoJSON
	doJSON(t, "GET", ts.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Steps != len(tr) {
		t.Fatalf("steps = %d, want %d (lost or doubled batches)", info.Steps, len(tr))
	}
	m := s.Metrics()
	if m.SessionsPaged == 0 || m.SessionsRevived == 0 {
		t.Fatalf("stress never paged/revived: paged=%d revived=%d", m.SessionsPaged, m.SessionsRevived)
	}
}
