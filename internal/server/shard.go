package server

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/obs"
)

// batch is one ingest request's worth of ticks, processed atomically in
// arrival order by the owning shard's worker.
type batch struct {
	sess *session
	// states carries the slow-path decode: one map state per tick. Nil
	// when the batch rode the zero-copy fast path.
	states []event.State
	// packed carries the fast-path decode: the request body packed
	// directly into bitset lanes by event.BatchDecoder, one stride of
	// words per tick in vocab slot order. Nil on the slow path.
	packed *event.PackedBatch
	// raw is the verbatim NDJSON request body of a fast-path batch; the
	// journal appends it as-is (one frame, no re-encode) and replay
	// re-decodes it, so durability never pays the map materialization
	// the fast path just avoided.
	raw      []byte
	enqueued time.Time
	// trace is the correlation id of the ingest request ("" when tracing
	// is off); the worker stamps it on queue-wait and step spans so an
	// operator can follow one batch end to end.
	trace string
	// jseq is the journal index assigned to this batch when the session
	// is journaled (0 otherwise); the worker records it as appliedJSeq so
	// snapshots know where the replay tail starts.
	jseq uint64
	// done, when non-nil, is closed after the last tick of the batch has
	// been processed (the ?wait=1 ingest path, the VCD upload, and
	// snapshot barriers).
	done chan struct{}
}

// tickCount returns the number of ticks in the batch on either decode
// path.
func (b *batch) tickCount() int {
	if b.packed != nil {
		return b.packed.Len()
	}
	return len(b.states)
}

// shard owns a bounded FIFO queue and a single worker goroutine.
// Sessions are pinned to shards by ID hash, so per-session tick order is
// the per-shard queue order — accepted batches are never reordered.
type shard struct {
	idx   int
	queue chan *batch
	ticks atomic.Uint64
}

var (
	// errQueueFull is surfaced as 429 + Retry-After.
	errQueueFull = errors.New("server: shard queue full")
	// errDraining is surfaced as 503: the daemon is shutting down.
	errDraining = errors.New("server: draining")
)

// tryEnqueue performs a non-blocking enqueue onto the session's shard.
func (s *Server) tryEnqueue(b *batch) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.shards[b.sess.shard].queue <- b:
		return nil
	default:
		return errQueueFull
	}
}

// enqueueWait enqueues with backpressure-by-blocking: when the shard
// queue is full it retries until space frees up or the server drains.
// Used by the VCD upload path, where a mid-stream 429 would tear a
// half-accepted trace.
func (s *Server) enqueueWait(b *batch) error {
	for {
		err := s.tryEnqueue(b)
		if err != errQueueFull {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// drainWindow bounds how many already-queued batches one worker pass
// collects for lockstep grouping.
const drainWindow = 16

// runShard is the worker loop: it drains the queue until Close closes
// it, which is what makes shutdown graceful — every accepted batch is
// fully processed before Close returns. Each pass collects whatever is
// already queued (up to drainWindow batches) so lane-steppable sessions
// sharing one transition table can step in lockstep.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	window := make([]*batch, 0, drainWindow)
	for b := range sh.queue {
		window = append(window[:0], b)
	fill:
		for len(window) < drainWindow {
			select {
			case nb, ok := <-sh.queue:
				if !ok {
					break fill
				}
				window = append(window, nb)
			default:
				break fill
			}
		}
		s.processWindow(sh, window)
	}
}

// laneGroupable reports whether a batch may join a lane group: a packed
// fast-path batch of a lane-steppable session, with no fault plane or
// tick-delay knob in play (both are per-tick semantics the fused loop
// does not reproduce).
func (s *Server) laneGroupable(b *batch) bool {
	return b.sess.laneTab != nil && b.packed != nil &&
		s.cfg.Faults == nil && s.cfg.TickDelay == 0
}

// processWindow applies one drained window. Batches of lane-steppable
// sessions are grouped by shared transition table and stepped in
// lockstep; everything else runs the per-batch scalar path in window
// order. Only a session's first batch in the window may join a group
// (groups run before the scalar remainder, which preserves per-session
// batch order; cross-session order carries no meaning).
func (s *Server) processWindow(sh *shard, window []*batch) {
	if len(window) == 1 {
		s.process(sh, window[0])
		return
	}
	var (
		order  []*monitor.Table
		groups map[*monitor.Table][]*batch
		rest   []*batch
	)
	seen := make(map[*session]bool, len(window))
	for _, b := range window {
		if s.laneGroupable(b) && !seen[b.sess] {
			if groups == nil {
				groups = make(map[*monitor.Table][]*batch)
			}
			tab := b.sess.laneTab
			if _, ok := groups[tab]; !ok {
				order = append(order, tab)
			}
			groups[tab] = append(groups[tab], b)
		} else {
			rest = append(rest, b)
		}
		seen[b.sess] = true
	}
	for _, tab := range order {
		if g := groups[tab]; len(g) == 1 {
			s.process(sh, g[0])
		} else {
			s.processLaneGroup(sh, tab, g)
		}
	}
	for _, b := range rest {
		s.process(sh, b)
	}
}

// process applies one batch to its session and updates metrics. Lock
// acquisition, fault planning, counter updates, the latency sample, and
// span writes are all amortized to once per batch; only the engine steps
// themselves run per tick.
func (s *Server) process(sh *shard, b *batch) {
	if s.crashed.Load() {
		// Simulated crash: discard in-memory work, but unblock any
		// handler waiting on the batch.
		if b.done != nil {
			close(b.done)
		}
		return
	}
	sess := b.sess
	dequeued := time.Now()
	queueWait := dequeued.Sub(b.enqueued)
	s.metrics.observeStage(obs.StageQueueWait, queueWait)
	n := b.tickCount()
	sess.mu.Lock()
	shots := sess.batchShots(n)
	var acc, vio, quar int
	for i := 0; i < n; i++ {
		if d := s.cfg.TickDelay; d > 0 {
			time.Sleep(d)
		}
		var a, v, q int
		if b.packed != nil {
			a, v, q = sess.stepTick(event.State{}, b.packed.Tick(i), shots, i)
		} else {
			a, v, q = sess.stepTick(b.states[i], nil, shots, i)
		}
		acc += a
		vio += v
		quar += q
	}
	if acc > 0 {
		s.metrics.acceptsTotal.Add(uint64(acc))
	}
	if vio > 0 {
		s.metrics.violationsTotal.Add(uint64(vio))
	}
	if quar > 0 {
		s.metrics.monitorsQuarantined.Add(uint64(quar))
		_, _ = s.flight.Trip("quarantine", b.trace,
			fmt.Sprintf("session %s: %d monitors quarantined", sess.id, quar))
	}
	s.foldSpecDeltas(sess)
	if b.jseq > 0 {
		sess.appliedJSeq = b.jseq
	}
	sess.mu.Unlock()
	sh.ticks.Add(uint64(n))
	s.metrics.ticksTotal.Add(uint64(n))
	if n > 0 {
		s.metrics.latency.observe(time.Since(b.enqueued))
	}
	stepDur := time.Since(dequeued)
	s.gov.observeStep(stepDur, n)
	s.metrics.observeStage(obs.StageStep, stepDur)
	s.tracer.RecordBatch(sh.idx, []obs.Span{
		{Trace: b.trace, Session: sess.id, Stage: obs.StageQueueWait,
			Start: b.enqueued, Dur: queueWait, Ticks: n},
		{Trace: b.trace, Session: sess.id, Stage: obs.StageStep,
			Start: dequeued, Dur: stepDur, Ticks: n},
	})
	if s.watchdog.Observe(stepDur, n, b.trace, sess.id, sh.idx) {
		_, _ = s.flight.Trip("slow_tick", b.trace,
			fmt.Sprintf("session %s shard %d: %d ticks in %s", sess.id, sh.idx, n, stepDur))
	}
	sess.touch()
	s.metrics.batchesTotal.Add(1)
	if b.done != nil {
		close(b.done)
	}
}

// foldSpecDeltas folds per-spec verdict deltas into daemon-lifetime
// counters — the engines' own totals die with the session on eviction,
// the daemon's do not. Caller holds sess.mu.
func (s *Server) foldSpecDeltas(sess *session) {
	for _, sm := range sess.mons {
		st := sm.eng.Stats()
		da, dv := uint64(st.Accepts)-sm.reportedAccepts, uint64(st.Violations)-sm.reportedViolations
		if da > 0 || dv > 0 {
			s.metrics.addSpecCounts(sm.spec, da, dv)
			sm.reportedAccepts, sm.reportedViolations = uint64(st.Accepts), uint64(st.Violations)
		}
	}
}

// processLaneGroup steps a group of lane-steppable sessions sharing one
// transition table in tick-major lockstep: at each tick index, every
// member session resolves its fired transition with one lookup in the
// shared table and advances via StepFired. The per-batch bookkeeping —
// locks, verdict folds, metrics, spans — is identical to process; only
// the stepping order is fused.
func (s *Server) processLaneGroup(sh *shard, tab *monitor.Table, batches []*batch) {
	if s.crashed.Load() {
		for _, b := range batches {
			if b.done != nil {
				close(b.done)
			}
		}
		return
	}
	dequeued := time.Now()
	maxN, total := 0, 0
	for _, b := range batches {
		s.metrics.observeStage(obs.StageQueueWait, dequeued.Sub(b.enqueued))
		b.sess.mu.Lock()
		n := b.packed.Len()
		total += n
		if n > maxN {
			maxN = n
		}
	}
	var acc, vio, quar uint64
	for t := 0; t < maxN; t++ {
		for _, b := range batches {
			if t >= b.packed.Len() {
				continue
			}
			sm := b.sess.mons[0]
			if sm.quarantined {
				continue
			}
			res, panicked := sm.safeStepFired(tab, b.packed.Word(t, 0))
			if panicked != nil {
				sm.quarantined = true
				sm.quarantineReason = fmt.Sprintf("panic at step %d: %v", sm.eng.Stats().Steps, panicked)
				quar++
				continue
			}
			sm.cov.Record(res)
			switch res.Outcome {
			case monitor.Accepted:
				acc++
				if len(sm.acceptTicks) < maxAcceptTicks {
					sm.acceptTicks = append(sm.acceptTicks, res.Tick)
				}
			case monitor.Violated:
				vio++
			}
		}
	}
	if acc > 0 {
		s.metrics.acceptsTotal.Add(acc)
	}
	if vio > 0 {
		s.metrics.violationsTotal.Add(vio)
	}
	if quar > 0 {
		s.metrics.monitorsQuarantined.Add(quar)
		_, _ = s.flight.Trip("quarantine", batches[0].trace,
			fmt.Sprintf("lane group: %d monitors quarantined", quar))
	}
	stepDur := time.Since(dequeued)
	// Lane-group attribution: every member's step span names the shared
	// lane bank (the spec whose table the group stepped — all members
	// share it by construction) and the member session count, so
	// /debug/trace can explain why one session's tick latency covers the
	// whole group's lockstep window.
	laneNote := fmt.Sprintf("lane group: %d sessions, bank %s",
		len(batches), batches[0].sess.mons[0].spec)
	spans := make([]obs.Span, 0, 2*len(batches))
	for _, b := range batches {
		sess := b.sess
		s.foldSpecDeltas(sess)
		if b.jseq > 0 {
			sess.appliedJSeq = b.jseq
		}
		sess.mu.Unlock()
		n := b.packed.Len()
		sh.ticks.Add(uint64(n))
		s.metrics.ticksTotal.Add(uint64(n))
		if n > 0 {
			s.metrics.latency.observe(time.Since(b.enqueued))
		}
		spans = append(spans,
			obs.Span{Trace: b.trace, Session: sess.id, Stage: obs.StageQueueWait,
				Start: b.enqueued, Dur: dequeued.Sub(b.enqueued), Ticks: n},
			obs.Span{Trace: b.trace, Session: sess.id, Stage: obs.StageStep,
				Start: dequeued, Dur: stepDur, Ticks: n,
				Kind: "lane", Note: laneNote})
		sess.touch()
		s.metrics.batchesTotal.Add(1)
	}
	s.metrics.laneGroupTicks.Add(uint64(total))
	s.gov.observeStep(stepDur, total)
	s.metrics.observeStage(obs.StageStep, stepDur)
	s.tracer.RecordBatch(sh.idx, spans)
	if s.watchdog.Observe(stepDur, total, batches[0].trace, batches[0].sess.id, sh.idx) {
		_, _ = s.flight.Trip("slow_tick", batches[0].trace,
			fmt.Sprintf("%s shard %d: %d ticks in %s", laneNote, sh.idx, total, stepDur))
	}
	for _, b := range batches {
		if b.done != nil {
			close(b.done)
		}
	}
}
