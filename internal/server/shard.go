package server

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/obs"
)

// batch is one ingest request's worth of ticks, processed atomically in
// arrival order by the owning shard's worker.
type batch struct {
	sess     *session
	states   []event.State
	enqueued time.Time
	// trace is the correlation id of the ingest request ("" when tracing
	// is off); the worker stamps it on queue-wait and step spans so an
	// operator can follow one batch end to end.
	trace string
	// jseq is the journal index assigned to this batch when the session
	// is journaled (0 otherwise); the worker records it as appliedJSeq so
	// snapshots know where the replay tail starts.
	jseq uint64
	// done, when non-nil, is closed after the last tick of the batch has
	// been processed (the ?wait=1 ingest path, the VCD upload, and
	// snapshot barriers).
	done chan struct{}
}

// shard owns a bounded FIFO queue and a single worker goroutine.
// Sessions are pinned to shards by ID hash, so per-session tick order is
// the per-shard queue order — accepted batches are never reordered.
type shard struct {
	idx   int
	queue chan *batch
	ticks atomic.Uint64
}

var (
	// errQueueFull is surfaced as 429 + Retry-After.
	errQueueFull = errors.New("server: shard queue full")
	// errDraining is surfaced as 503: the daemon is shutting down.
	errDraining = errors.New("server: draining")
)

// tryEnqueue performs a non-blocking enqueue onto the session's shard.
func (s *Server) tryEnqueue(b *batch) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.shards[b.sess.shard].queue <- b:
		return nil
	default:
		return errQueueFull
	}
}

// enqueueWait enqueues with backpressure-by-blocking: when the shard
// queue is full it retries until space frees up or the server drains.
// Used by the VCD upload path, where a mid-stream 429 would tear a
// half-accepted trace.
func (s *Server) enqueueWait(b *batch) error {
	for {
		err := s.tryEnqueue(b)
		if err != errQueueFull {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runShard is the worker loop: it drains the queue until Close closes
// it, which is what makes shutdown graceful — every accepted batch is
// fully processed before Close returns.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for b := range sh.queue {
		if s.crashed.Load() {
			// Simulated crash: discard in-memory work, but unblock any
			// handler waiting on the batch.
			if b.done != nil {
				close(b.done)
			}
			continue
		}
		s.process(sh, b)
	}
}

// process applies one batch to its session and updates metrics. The
// per-tick latency sample is enqueue-to-processed, so queue wait under
// load is visible in the histogram.
func (s *Server) process(sh *shard, b *batch) {
	sess := b.sess
	dequeued := time.Now()
	queueWait := dequeued.Sub(b.enqueued)
	s.metrics.observeStage(obs.StageQueueWait, queueWait)
	s.tracer.Record(sh.idx, obs.Span{
		Trace: b.trace, Session: sess.id, Stage: obs.StageQueueWait,
		Start: b.enqueued, Dur: queueWait, Ticks: len(b.states),
	})
	sess.mu.Lock()
	for _, st := range b.states {
		if d := s.cfg.TickDelay; d > 0 {
			time.Sleep(d)
		}
		acc, vio, quar := sess.step(st)
		if acc > 0 {
			s.metrics.acceptsTotal.Add(uint64(acc))
		}
		if vio > 0 {
			s.metrics.violationsTotal.Add(uint64(vio))
		}
		if quar > 0 {
			s.metrics.monitorsQuarantined.Add(uint64(quar))
		}
		sh.ticks.Add(1)
		s.metrics.ticksTotal.Add(1)
		s.metrics.latency.observe(time.Since(b.enqueued))
	}
	// Per-spec verdict deltas fold into daemon-lifetime counters here —
	// the engines' own totals die with the session on eviction, the
	// daemon's do not.
	for _, sm := range sess.mons {
		st := sm.eng.Stats()
		da, dv := uint64(st.Accepts)-sm.reportedAccepts, uint64(st.Violations)-sm.reportedViolations
		if da > 0 || dv > 0 {
			s.metrics.addSpecCounts(sm.spec, da, dv)
			sm.reportedAccepts, sm.reportedViolations = uint64(st.Accepts), uint64(st.Violations)
		}
	}
	if b.jseq > 0 {
		sess.appliedJSeq = b.jseq
	}
	sess.mu.Unlock()
	stepDur := time.Since(dequeued)
	s.gov.observeStep(stepDur, len(b.states))
	s.metrics.observeStage(obs.StageStep, stepDur)
	s.tracer.Record(sh.idx, obs.Span{
		Trace: b.trace, Session: sess.id, Stage: obs.StageStep,
		Start: dequeued, Dur: stepDur, Ticks: len(b.states),
	})
	s.watchdog.Observe(stepDur, len(b.states), b.trace, sess.id, sh.idx)
	sess.touch()
	s.metrics.batchesTotal.Add(1)
	if b.done != nil {
		close(b.done)
	}
}
