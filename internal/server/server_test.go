package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verif"
)

// newTestServer builds a server with the OCP simple-read spec loaded and
// an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := parser.Print("OcpSimpleRead", ocp.SimpleReadChart())
	if _, err := s.LoadSpecSource(src); err != nil {
		t.Fatalf("loading spec: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body []byte, wantCode int, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

func createSession(t *testing.T, base, mode string, specs ...string) SessionInfoJSON {
	t.Helper()
	body, _ := json.Marshal(createSessionRequest{Specs: specs, Mode: mode})
	var info SessionInfoJSON
	doJSON(t, "POST", base+"/sessions", body, http.StatusCreated, &info)
	return info
}

// ndjson renders a trace in the ingest endpoint's wire format.
func ndjson(t *testing.T, tr trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range tr {
		if err := enc.Encode(stateJSON(s)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// streamTicks posts the trace in batches with ?wait=1, so processing is
// complete when it returns.
func streamTicks(t *testing.T, base, id string, tr trace.Trace, batchLen int) {
	t.Helper()
	for at := 0; at < len(tr); at += batchLen {
		end := at + batchLen
		if end > len(tr) {
			end = len(tr)
		}
		doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", base, id),
			ndjson(t, tr[at:end]), http.StatusOK, nil)
	}
}

func verdictFor(t *testing.T, base, id, spec string) MonitorVerdictJSON {
	t.Helper()
	var v VerdictsJSON
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s/verdicts", base, id), nil, http.StatusOK, &v)
	for _, m := range v.Monitors {
		if m.Spec == spec {
			return m
		}
	}
	t.Fatalf("no verdict for spec %q in %+v", spec, v)
	return MonitorVerdictJSON{}
}

// TestE2ESimpleReadSession is the acceptance flow: a session streaming
// the Fig. 6 OCP simple-read trace over HTTP reports the same detect and
// assert verdicts as the in-process verif harness, and /metrics reports
// nonzero throughput and queue gauges.
func TestE2ESimpleReadSession(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, QueueDepth: 16})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 1, FaultRate: 0.2}).GenerateTrace(400)

	det := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	chk := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	streamTicks(t, ts.URL, det.ID, tr, 64)
	streamTicks(t, ts.URL, chk.ID, tr, 64)

	// In-process reference: same synthesis, same modes, same trace.
	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	refDet := monitor.NewEngine(m, nil, monitor.ModeDetect)
	wantAccepts := verif.EngineAcceptTicks(refDet, tr)
	refChk := monitor.NewEngine(m, nil, monitor.ModeAssert)
	refChk.EnableDiagnostics(defaultDiagDepth)
	refChk.Run(tr)

	gotDet := verdictFor(t, ts.URL, det.ID, "OcpSimpleRead")
	if gotDet.Steps != len(tr) {
		t.Errorf("detect steps = %d, want %d", gotDet.Steps, len(tr))
	}
	if gotDet.Accepts != len(wantAccepts) {
		t.Errorf("detect accepts = %d, want %d", gotDet.Accepts, len(wantAccepts))
	}
	if len(gotDet.AcceptTicks) != len(wantAccepts) {
		t.Fatalf("accept ticks %d, want %d", len(gotDet.AcceptTicks), len(wantAccepts))
	}
	for i, tick := range wantAccepts {
		if gotDet.AcceptTicks[i] != tick {
			t.Fatalf("accept tick %d = %d, want %d (order must match in-process run)",
				i, gotDet.AcceptTicks[i], tick)
		}
	}
	if gotDet.Coverage.State <= 0 || gotDet.Coverage.Transition <= 0 {
		t.Errorf("coverage empty: %+v", gotDet.Coverage)
	}

	gotChk := verdictFor(t, ts.URL, chk.ID, "OcpSimpleRead")
	wantStats := refChk.Stats()
	if gotChk.Accepts != wantStats.Accepts || gotChk.Violations != wantStats.Violations {
		t.Errorf("assert verdict accepts=%d violations=%d, want accepts=%d violations=%d",
			gotChk.Accepts, gotChk.Violations, wantStats.Accepts, wantStats.Violations)
	}
	wantDiags := refChk.Diagnostics()
	if len(gotChk.Diagnostics) != len(wantDiags) {
		t.Fatalf("diagnostics = %d, want %d", len(gotChk.Diagnostics), len(wantDiags))
	}
	for i, d := range gotChk.Diagnostics {
		if d.Tick != wantDiags[i].Tick || d.FromState != wantDiags[i].FromState {
			t.Errorf("diagnostic %d: tick %d state %d, want tick %d state %d",
				i, d.Tick, d.FromState, wantDiags[i].Tick, wantDiags[i].FromState)
		}
	}

	var snap MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
	if snap.TicksTotal != uint64(2*len(tr)) {
		t.Errorf("ticks_total = %d, want %d", snap.TicksTotal, 2*len(tr))
	}
	if snap.TicksPerSec <= 0 {
		t.Errorf("ticks_per_sec = %v, want > 0", snap.TicksPerSec)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	for i, sh := range snap.Shards {
		if sh.QueueCap != 16 {
			t.Errorf("shard %d queue_cap = %d, want 16", i, sh.QueueCap)
		}
	}
	if snap.TickLatencyN == 0 || snap.TickLatencyP99 <= 0 {
		t.Errorf("latency histogram empty: %+v", snap)
	}
	if snap.AcceptsTotal == 0 {
		t.Errorf("accepts_total = 0, want > 0")
	}
}

// TestVCDUpload checks the streaming VCD ingest path produces the same
// verdicts as NDJSON ingest of the equivalent trace.
func TestVCDUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 4})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 9}).GenerateTrace(600)
	var vcd strings.Builder
	if err := trace.WriteVCD(&vcd, "dut", tr); err != nil {
		t.Fatal(err)
	}
	// The VCD round trip is what the server will see.
	back, err := trace.ReadVCD(strings.NewReader(vcd.String()), nil)
	if err != nil {
		t.Fatal(err)
	}

	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	var res struct {
		Accepted  int  `json:"accepted"`
		Processed bool `json:"processed"`
	}
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/vcd", ts.URL, sess.ID),
		[]byte(vcd.String()), http.StatusOK, &res)
	if res.Accepted != len(back) || !res.Processed {
		t.Fatalf("vcd upload accepted=%d processed=%v, want %d ticks processed",
			res.Accepted, res.Processed, len(back))
	}

	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := monitor.NewEngine(m, nil, monitor.ModeDetect)
	want := verif.EngineAcceptTicks(ref, back)
	got := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if got.Steps != len(back) || got.Accepts != len(want) {
		t.Errorf("vcd session steps=%d accepts=%d, want steps=%d accepts=%d",
			got.Steps, got.Accepts, len(back), len(want))
	}
}

// TestHotLoadSpecs exercises POST /specs: load, conflict, replace.
func TestHotLoadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	burst := parser.Print("OcpBurstRead", ocp.BurstReadChart())

	var loaded struct {
		Loaded []string `json:"loaded"`
	}
	doJSON(t, "POST", ts.URL+"/specs", []byte(burst), http.StatusCreated, &loaded)
	if len(loaded.Loaded) != 1 || loaded.Loaded[0] != "OcpBurstRead" {
		t.Fatalf("loaded = %v", loaded.Loaded)
	}
	// Same name again: conflict without ?replace=1.
	doJSON(t, "POST", ts.URL+"/specs", []byte(burst), http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/specs?replace=1", []byte(burst), http.StatusCreated, nil)
	// Garbage is a 400.
	doJSON(t, "POST", ts.URL+"/specs", []byte("cesc Broken {"), http.StatusBadRequest, nil)

	var list struct {
		Specs []Spec `json:"specs"`
	}
	doJSON(t, "GET", ts.URL+"/specs", nil, http.StatusOK, &list)
	if len(list.Specs) != 2 {
		t.Fatalf("specs = %d, want 2 (%+v)", len(list.Specs), list.Specs)
	}
	for _, sp := range list.Specs {
		if sp.States == 0 || sp.Transitions == 0 {
			t.Errorf("spec %s missing structure: %+v", sp.Name, sp)
		}
	}
	// A session can use the hot-loaded spec immediately.
	sess := createSession(t, ts.URL, "detect", "OcpBurstRead", "OcpSimpleRead")
	if len(sess.Specs) != 2 {
		t.Fatalf("session specs = %v", sess.Specs)
	}
}

// TestAPIErrors covers the failure modes clients hit.
func TestAPIErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, MaxBatchTicks: 4})

	// Unknown spec, empty spec list, bad mode.
	body, _ := json.Marshal(createSessionRequest{Specs: []string{"Nope"}})
	doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusNotFound, nil)
	body, _ = json.Marshal(createSessionRequest{})
	doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusBadRequest, nil)
	body, _ = json.Marshal(createSessionRequest{Specs: []string{"OcpSimpleRead"}, Mode: "sideways"})
	doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusBadRequest, nil)

	// Multi-clock specs cannot back sessions.
	multi := `cesc TwoClocks {
  async {
    scesc DomA on clk_a { instances M, S; tick { e1 = evA @ M -> S; } }
    scesc DomB on clk_b { instances M2, S2; tick { e2 = evB @ M2 -> S2; } }
    cross e1 -> e2;
  }
}`
	doJSON(t, "POST", ts.URL+"/specs", []byte(multi), http.StatusCreated, nil)
	body, _ = json.Marshal(createSessionRequest{Specs: []string{"TwoClocks"}})
	doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusBadRequest, nil)

	// Unknown session everywhere.
	doJSON(t, "GET", ts.URL+"/sessions/deadbeef", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/sessions/deadbeef/ticks", []byte("{}"), http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/sessions/deadbeef/verdicts", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/sessions/deadbeef", nil, http.StatusNotFound, nil)

	// Tick batch errors: empty body, malformed NDJSON, oversized batch.
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks", ts.URL, sess.ID),
		nil, http.StatusBadRequest, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks", ts.URL, sess.ID),
		[]byte(`{"events":["a"]}`+"\nnot json\n"), http.StatusBadRequest, nil)
	big := strings.Repeat(`{"events":["MCmd_rd"]}`+"\n", 5)
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks", ts.URL, sess.ID),
		[]byte(big), http.StatusRequestEntityTooLarge, nil)

	// Delete, then the session is gone.
	doJSON(t, "DELETE", fmt.Sprintf("%s/sessions/%s", ts.URL, sess.ID), nil, http.StatusOK, nil)
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s", ts.URL, sess.ID), nil, http.StatusNotFound, nil)

	_ = s
}

// TestIdleEviction checks the janitor reaps sessions past the idle TTL.
func TestIdleEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, IdleTTL: 40 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := s.session(sess.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted within 2s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Metrics().SessionsEvicted; got == 0 {
		t.Errorf("sessions_evicted = %d, want > 0", got)
	}
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s", ts.URL, sess.ID), nil, http.StatusNotFound, nil)
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	var h struct {
		Status string `json:"status"`
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
}
