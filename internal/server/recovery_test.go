package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/trace"
	"repro/internal/wal"
)

// newWALServer builds a journaling server over dir with the OCP
// simple-read spec loaded (under two names, so quarantine tests have a
// sibling monitor) and an httptest front end.
func newWALServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.WALDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := parser.Print("OcpSimpleRead", ocp.SimpleReadChart()) +
		parser.Print("OcpSimpleReadB", ocp.SimpleReadChart())
	if _, err := s.LoadSpecSource(src); err != nil {
		t.Fatalf("loading spec: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// monitorsJSON renders the monitor verdicts of a session with the
// session-specific fields stripped, for byte-level parity comparison.
func monitorsJSON(t *testing.T, base, id string) []byte {
	t.Helper()
	var v VerdictsJSON
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s/verdicts", base, id), nil, http.StatusOK, &v)
	data, err := json.MarshalIndent(v.Monitors, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrashRecoveryParity is the crash-recovery acceptance test: a
// journaling server is killed mid-stream via the in-process crash hook,
// restarted on the same WAL directory, fed the rest of the Fig. 6 OCP
// trace, and must report verdict and coverage JSON byte-identical to a
// server that never crashed. SnapshotEvery is small so the run exercises
// checkpoints and journal pruning, not just raw replay.
func TestCrashRecoveryParity(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 3, FaultRate: 0.2}).GenerateTrace(600)
	cfg := Config{Shards: 2, QueueDepth: 16, SnapshotEvery: 4}

	// Reference: one server, no crash.
	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 32)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	// Crashing server: same spec, same trace, power cut at tick 300.
	dir := t.TempDir()
	s1, ts1 := newWALServer(t, dir, cfg)
	sess := createSession(t, ts1.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts1.URL, sess.ID, tr[:300], 32)
	s1.Crash()
	doJSON(t, "GET", ts1.URL+"/healthz", nil, http.StatusServiceUnavailable, nil)
	ts1.Close()

	s2, ts2 := newWALServer(t, dir, cfg)
	m := s2.Metrics()
	if m.SessionsRecovered != 1 {
		t.Fatalf("sessions_recovered = %d, want 1", m.SessionsRecovered)
	}
	if m.WAL == nil || m.WAL.Replayed == 0 {
		t.Fatalf("wal stats after recovery: %+v", m.WAL)
	}
	// The recovered session answers under its original ID.
	var info SessionInfoJSON
	doJSON(t, "GET", ts2.URL+"/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Steps != 300 {
		t.Fatalf("recovered session steps = %d, want 300", info.Steps)
	}
	streamTicks(t, ts2.URL, sess.ID, tr[300:], 32)
	got := monitorsJSON(t, ts2.URL, sess.ID)
	if string(got) != string(want) {
		t.Fatalf("verdicts after crash+recovery differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestRecoverySurvivesSecondCrash re-crashes the recovered server before
// any new traffic: recovery itself must leave a journal that still
// reconstructs the session.
func TestRecoverySurvivesSecondCrash(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 5, FaultRate: 0.1}).GenerateTrace(200)
	dir := t.TempDir()
	cfg := Config{Shards: 1, QueueDepth: 8, SnapshotEvery: 3}

	s1, ts1 := newWALServer(t, dir, cfg)
	sess := createSession(t, ts1.URL, "detect", "OcpSimpleRead")
	streamTicks(t, ts1.URL, sess.ID, tr[:100], 10)
	want := monitorsJSON(t, ts1.URL, sess.ID)
	s1.Crash()
	ts1.Close()

	s2, _ := newWALServer(t, dir, cfg)
	s2.Crash()

	_, ts3 := newWALServer(t, dir, cfg)
	if got := monitorsJSON(t, ts3.URL, sess.ID); string(got) != string(want) {
		t.Fatalf("second recovery diverged:\n got %s\nwant %s", got, want)
	}
}

// TestSeqDedup checks the exactly-once contract: a batch re-sent with
// the same ?seq is acknowledged without being applied, whether the first
// attempt succeeded or died after the accept point.
func TestSeqDedup(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 8})
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7}).GenerateTrace(20)
	body := ndjson(t, tr)

	url := fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=1", ts.URL, sess.ID)
	doJSON(t, "POST", url, body, http.StatusOK, nil)
	var dup struct {
		Accepted  int  `json:"accepted"`
		Duplicate bool `json:"duplicate"`
	}
	doJSON(t, "POST", url, body, http.StatusOK, &dup)
	if !dup.Duplicate || dup.Accepted != 0 {
		t.Fatalf("replay ack = %+v, want duplicate", dup)
	}
	if v := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead"); v.Steps != len(tr) {
		t.Fatalf("steps = %d, want %d (batch double-applied)", v.Steps, len(tr))
	}
	// Stale seq (not just the previous one) is also absorbed.
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=2", ts.URL, sess.ID), body, http.StatusOK, nil)
	doJSON(t, "POST", url, body, http.StatusOK, &dup)
	if !dup.Duplicate {
		t.Fatalf("stale seq ack = %+v, want duplicate", dup)
	}
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=0", ts.URL, sess.ID), body, http.StatusBadRequest, nil)
}

// TestJournalAppendFailure injects a WAL append error: the request gets
// a 500, but the batch was already accepted in memory and the client's
// retry with the same seq is deduped — applied once, journaled by the
// retry path never.
func TestJournalAppendFailure(t *testing.T) {
	faults := faultinject.New(1).Add(faultinject.Rule{
		Point: "wal.append", Kind: faultinject.KindError, After: 1, Count: 1,
	})
	s, ts := newWALServer(t, t.TempDir(), Config{Shards: 1, QueueDepth: 8, Faults: faults})
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 9}).GenerateTrace(10)

	url := fmt.Sprintf("%s/sessions/%s/ticks?wait=1&seq=1", ts.URL, sess.ID)
	doJSON(t, "POST", url, ndjson(t, tr), http.StatusInternalServerError, nil)
	var dup struct {
		Duplicate bool `json:"duplicate"`
	}
	doJSON(t, "POST", url, ndjson(t, tr), http.StatusOK, &dup)
	if !dup.Duplicate {
		t.Fatalf("retry after journal failure not deduped: %+v", dup)
	}
	waitFor(t, time.Second, func() bool {
		return verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead").Steps == len(tr)
	})
	if got := s.Metrics().WALErrors; got != 1 {
		t.Fatalf("wal_errors = %d, want 1", got)
	}
}

// TestQuarantine injects a panic into one monitor's step path: that
// monitor is fenced off with its counters frozen, the sibling monitor in
// the same session and a second session keep processing every tick, and
// the daemon stays healthy.
func TestQuarantine(t *testing.T) {
	// Step faults are counted per batch: After: 1 skips the first batch
	// and fires on the second (ticks 30..59), at a seeded in-batch offset.
	faults := faultinject.New(1).Add(faultinject.Rule{
		Point: "monitor.step.OcpSimpleRead", Kind: faultinject.KindPanic, After: 1, Count: 1,
	})
	s, ts := newWALServer(t, t.TempDir(), Config{Shards: 2, QueueDepth: 16, Faults: faults})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 11, FaultRate: 0.1}).GenerateTrace(120)

	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	other := createSession(t, ts.URL, "assert", "OcpSimpleReadB")
	streamTicks(t, ts.URL, sess.ID, tr, 30)
	streamTicks(t, ts.URL, other.ID, tr, 30)

	hurt := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead")
	if !hurt.Quarantined || hurt.QuarantineReason == "" {
		t.Fatalf("panicking monitor not quarantined: %+v", hurt)
	}
	if hurt.Steps >= len(tr) {
		t.Fatalf("quarantined monitor kept stepping: %d steps", hurt.Steps)
	}
	for _, v := range []MonitorVerdictJSON{
		verdictFor(t, ts.URL, sess.ID, "OcpSimpleReadB"),
		verdictFor(t, ts.URL, other.ID, "OcpSimpleReadB"),
	} {
		if v.Quarantined || v.Steps != len(tr) {
			t.Fatalf("healthy monitor affected by sibling panic: %+v", v)
		}
	}
	if got := s.Metrics().MonitorsQuarantined; got != 1 {
		t.Fatalf("monitors_quarantined = %d, want 1", got)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
}

// TestQuarantineSurvivesRecovery checks the quarantine flag is part of
// the journaled state: after a crash the recovered session reports the
// monitor as quarantined (replay re-fences it deterministically even
// without the fault plane, but snapshots must carry the flag too).
func TestQuarantineSurvivesRecovery(t *testing.T) {
	// Per-batch counting: the panic lands inside the second batch of 10.
	faults := faultinject.New(1).Add(faultinject.Rule{
		Point: "monitor.step.OcpSimpleRead", Kind: faultinject.KindPanic, After: 1, Count: 1,
	})
	dir := t.TempDir()
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 13}).GenerateTrace(60)
	s1, ts1 := newWALServer(t, dir, Config{Shards: 1, QueueDepth: 8, SnapshotEvery: 2, Faults: faults})
	sess := createSession(t, ts1.URL, "detect", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts1.URL, sess.ID, tr, 10)
	want := monitorsJSON(t, ts1.URL, sess.ID)
	s1.Crash()
	ts1.Close()

	// Recover WITHOUT the fault plane: quarantine state must come from
	// the snapshot, not from re-injecting the panic.
	_, ts2 := newWALServer(t, dir, Config{Shards: 1, QueueDepth: 8, SnapshotEvery: 2})
	if got := monitorsJSON(t, ts2.URL, sess.ID); string(got) != string(want) {
		t.Fatalf("recovered quarantine state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestHotLoadDuringTraffic hammers a session with ticks while POSTing a
// malformed spec update: the load is rejected, the previous version
// keeps serving both the session and new lookups, and a well-formed
// replace afterwards succeeds.
func TestHotLoadDuringTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, QueueDepth: 32})
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 17}).GenerateTrace(40)
	body := ndjson(t, tr)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID),
				body, http.StatusOK, nil)
		}
	}()

	for i := 0; i < 20; i++ {
		// Parse error and mid-batch synthesis-level error: both must
		// leave the registry untouched.
		doJSON(t, "POST", ts.URL+"/specs?replace=1", []byte("chart Broken {"), http.StatusBadRequest, nil)
		var specs struct {
			Specs []Spec `json:"specs"`
		}
		doJSON(t, "GET", ts.URL+"/specs", nil, http.StatusOK, &specs)
		if len(specs.Specs) != 1 || specs.Specs[0].Name != "OcpSimpleRead" {
			t.Errorf("registry changed by failed load: %+v", specs.Specs)
			break
		}
	}
	close(stop)
	wg.Wait()

	good := parser.Print("OcpSimpleRead", ocp.SimpleReadChart())
	doJSON(t, "POST", ts.URL+"/specs?replace=1", []byte(good), http.StatusCreated, nil)
	// The session still runs the monitors it was created with.
	if v := verdictFor(t, ts.URL, sess.ID, "OcpSimpleRead"); v.Steps == 0 {
		t.Fatalf("session stalled: %+v", v)
	}
}

// TestVCDRecoveryParity journals the VCD upload path too: a crash after
// a VCD upload recovers to the same verdicts.
func TestVCDRecoveryParity(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 19, FaultRate: 0.15}).GenerateTrace(500)
	var buf bytes.Buffer
	if err := trace.WriteVCD(&buf, "ocp", trace.Trace(tr)); err != nil {
		t.Fatal(err)
	}
	vcd := buf.Bytes()
	cfg := Config{Shards: 1, QueueDepth: 8, SnapshotEvery: 1}

	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "detect", "OcpSimpleRead")
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/vcd", refTS.URL, ref.ID), vcd, http.StatusOK, nil)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	dir := t.TempDir()
	s1, ts1 := newWALServer(t, dir, cfg)
	sess := createSession(t, ts1.URL, "detect", "OcpSimpleRead")
	doJSON(t, "POST", fmt.Sprintf("%s/sessions/%s/vcd", ts1.URL, sess.ID), vcd, http.StatusOK, nil)
	s1.Crash()
	ts1.Close()

	_, ts2 := newWALServer(t, dir, cfg)
	if got := monitorsJSON(t, ts2.URL, sess.ID); string(got) != string(want) {
		t.Fatalf("VCD session recovery diverged:\n got %s\nwant %s", got, want)
	}
}

// TestRecoveryFromV2Snapshot replays a PR-2-format journal: the packed
// (v3) snapshot records of a crashed server are down-converted to the
// map-based scoreboard encoding that pre-format-bump daemons wrote, and
// recovery from that journal must yield verdicts byte-identical to the
// uninterrupted run. This pins the decoder's backward compatibility, not
// just its self-round-trip.
func TestRecoveryFromV2Snapshot(t *testing.T) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 23, FaultRate: 0.2}).GenerateTrace(600)
	cfg := Config{Shards: 2, QueueDepth: 16, SnapshotEvery: 4}

	_, refTS := newWALServer(t, t.TempDir(), cfg)
	ref := createSession(t, refTS.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, refTS.URL, ref.ID, tr, 32)
	want := monitorsJSON(t, refTS.URL, ref.ID)

	dirA := t.TempDir()
	s1, ts1 := newWALServer(t, dirA, cfg)
	sess := createSession(t, ts1.URL, "assert", "OcpSimpleRead", "OcpSimpleReadB")
	streamTicks(t, ts1.URL, sess.ID, tr[:300], 32)
	s1.Crash()
	ts1.Close()

	// Rewrite the journal into dirB with every snapshot record in the
	// v2 encoding.
	type rawRec struct {
		kind    byte
		payload []byte
	}
	var recs []rawRec
	sawSnapshot := false
	mgrA, err := wal.OpenManager(wal.Options{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	jA, err := mgrA.OpenJournal(sess.ID, func(rec wal.Record) error {
		payload := append([]byte(nil), rec.Payload...)
		if rec.Kind == recSnapshot {
			var snap snapshotRecordJSON
			if err := json.Unmarshal(payload, &snap); err != nil {
				return err
			}
			snap.Format = 0
			for i := range snap.Monitors {
				sb := &snap.Monitors[i].Scoreboard
				sb.Counts = make(map[string]int)
				sb.AddedAt = make(map[string][]int64)
				for j, name := range sb.Slots {
					sb.Counts[name] = sb.SlotCounts[j]
					sb.AddedAt[name] = sb.SlotAddedAt[j]
				}
				sb.Slots, sb.SlotCounts, sb.SlotAddedAt = nil, nil, nil
			}
			var err error
			if payload, err = json.Marshal(snap); err != nil {
				return err
			}
			sawSnapshot = true
		}
		recs = append(recs, rawRec{kind: rec.Kind, payload: payload})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	jA.Abandon()
	if !sawSnapshot {
		t.Fatal("crashed journal contains no snapshot record; test exercises nothing")
	}

	dirB := t.TempDir()
	mgrB, err := wal.OpenManager(wal.Options{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	jB, err := mgrB.OpenJournal(sess.ID, func(wal.Record) error {
		return fmt.Errorf("fresh journal not empty")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := jB.Append(r.kind, r.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := jB.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newWALServer(t, dirB, cfg)
	streamTicks(t, ts2.URL, sess.ID, tr[300:], 32)
	if got := monitorsJSON(t, ts2.URL, sess.ID); string(got) != string(want) {
		t.Fatalf("recovery from v2-format snapshot diverged:\n got %s\nwant %s", got, want)
	}
}
