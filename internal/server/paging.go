package server

// Transparent session paging: the cold half of the tiered session
// lifecycle. A hot session owns live engines and a journal; paging it
// out checkpoints the execution state into the journal (the exact
// snapshot record crash recovery replays), closes the journal, and
// drops the session from the hot table into a lightweight cold entry.
// The next request against the ID replays the journal — the same
// restorer that rebuilds sessions after a crash — so a paged+revived
// session reports verdicts byte-identical to one that never left
// memory, and the ?seq dedup watermark (carried inside the snapshot)
// keeps ingest exactly-once across the round trip.
//
// Two pressures trigger paging: the idle TTL (which, with journaling
// on, now pages instead of deleting — eviction is no longer data loss)
// and the global memory budget, which the janitor enforces
// coldest-first over estimated per-session footprints. Sessions
// without a journal cannot page; for them idle eviction remains
// deletion, counted separately.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/wal"
)

// pagedSession is the cold-table entry: everything the daemon needs to
// answer listings, route requests, and order revival without touching
// the journal on disk.
type pagedSession struct {
	id         string
	tenant     string
	mode       string
	specs      []string
	shard      int
	pagedAt    time.Time
	lastActive int64 // unix nanos at page-out, for LRU ordering
}

func (p *pagedSession) info() SessionInfoJSON {
	return SessionInfoJSON{
		ID:        p.id,
		Mode:      p.mode,
		Shard:     p.shard,
		Specs:     append([]string(nil), p.specs...),
		IdleMilli: time.Since(time.Unix(0, p.lastActive)).Milliseconds(),
		Tenant:    p.tenant,
		Cold:      true,
	}
}

// errPagedOut marks a request that raced a page-out while holding a
// stale session pointer; the HTTP layer answers 409 + Retry-After and
// the retry revives the session through the cold table.
var errPagedOut = errors.New("server: session paged out")

// errNotJournaled reports a page-out attempt on a session without a
// journal: there is nowhere durable to put its state.
var errNotJournaled = errors.New("server: session has no journal to page to")

// --- memory accounting ---------------------------------------------------

// chargeSessionMem prices a newly registered session into the budget.
func (s *Server) chargeSessionMem(sess *session) {
	fp := sess.estimateFootprint()
	sess.footprint.Store(fp)
	s.memUsed.Add(fp)
}

// releaseSessionMem returns a departing session's charge. Swap makes it
// idempotent, so racing lifecycle paths cannot double-credit.
func (s *Server) releaseSessionMem(sess *session) {
	s.memUsed.Add(-sess.footprint.Swap(0))
}

// refreshSessionMem re-prices a live session (scoreboards grow).
func (s *Server) refreshSessionMem(sess *session) {
	fp := sess.estimateFootprint()
	s.memUsed.Add(fp - sess.footprint.Swap(fp))
}

// MemUsed reports the estimated resident bytes of hot session state.
func (s *Server) MemUsed() int64 { return s.memUsed.Load() }

// --- lifecycle transitions ----------------------------------------------

// trackLive registers a session in the hot table and its tenant's hot
// count, and charges its footprint. All hot/cold transitions mutate the
// tenant counters under smu, which is what keeps them consistent.
func (s *Server) trackLive(sess *session) {
	s.smu.Lock()
	s.sessions[sess.id] = sess
	s.tenants.addHot(sess.tenant, 1)
	s.smu.Unlock()
	s.chargeSessionMem(sess)
}

// liveSessions snapshots the hot table.
func (s *Server) liveSessions() []*session {
	s.smu.RLock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.smu.RUnlock()
	return out
}

// PageOutSession checkpoints a hot session to its journal and drops it
// cold. Paging an already-cold ID is a no-op; an unknown ID is
// ErrNoSession. Exposed for the ops endpoint, the cluster layer, and
// the conformance harness's page-every-batch campaign.
func (s *Server) PageOutSession(id string) error {
	if sess, ok := s.session(id); ok {
		return s.pageOutSession(sess)
	}
	s.smu.RLock()
	_, cold := s.paged[id]
	s.smu.RUnlock()
	if cold {
		return nil
	}
	return ErrNoSession
}

// pageOutSession is the page-out mechanics: barrier, checkpoint, close,
// demote. The barrier (an empty batch waited on under ingestMu) settles
// the shard worker, so the checkpoint covers every acknowledged batch —
// the same discipline ExportSession uses, and the reason a revived
// session is byte-identical.
func (s *Server) pageOutSession(sess *session) error {
	sess.ingestMu.Lock()
	defer sess.ingestMu.Unlock()
	if sess.pagedOut {
		return nil
	}
	if sess.frozen {
		return errMigrating
	}
	if sess.jrnl == nil {
		return errNotJournaled
	}
	b := &batch{sess: sess, done: make(chan struct{})}
	if err := s.enqueueWait(b); err != nil {
		return err
	}
	<-b.done
	if err := s.snapshotSession(sess); err != nil {
		// The session stays hot and keeps serving; the journal tail is
		// still intact, so nothing is lost.
		s.metrics.walErrors.Add(1)
		return err
	}
	cold := &pagedSession{
		id:         sess.id,
		tenant:     sess.tenant,
		mode:       modeString(sess.mode),
		shard:      sess.shard,
		pagedAt:    time.Now(),
		lastActive: sess.lastActive.Load(),
	}
	sess.mu.Lock()
	for _, sm := range sess.mons {
		cold.specs = append(cold.specs, sm.spec)
	}
	sess.mu.Unlock()
	sess.pagedOut = true
	_ = sess.jrnl.Close()
	sess.jrnl = nil
	sess.journaled.Store(false)
	s.smu.Lock()
	if cur, ok := s.sessions[sess.id]; !ok || cur != sess {
		// Deleted concurrently (DELETE removes from the hot table before
		// taking ingestMu): honor the delete — drop the journal files we
		// just checkpointed instead of resurrecting the session cold.
		s.smu.Unlock()
		_ = s.wal.Remove(sess.id)
		s.releaseSessionMem(sess)
		return nil
	}
	delete(s.sessions, sess.id)
	s.paged[sess.id] = cold
	s.tenants.addHot(sess.tenant, -1)
	s.tenants.addCold(sess.tenant, 1)
	s.smu.Unlock()
	s.releaseSessionMem(sess)
	s.metrics.sessionsPaged.Add(1)
	return nil
}

// fetchSession resolves an ID to a hot session, reviving it from the
// cold table if needed. ErrNoSession when the ID is unknown.
func (s *Server) fetchSession(id string) (*session, error) {
	if sess, ok := s.session(id); ok {
		return sess, nil
	}
	return s.reviveSession(id)
}

// reviveSession rebuilds a cold session by replaying its journal — the
// crash-recovery path reused as the page-in mechanism. reviveMu
// serializes revivals so two concurrent ticks for one cold session
// build it once; the double-check under the lock makes the second
// caller adopt the first one's result.
func (s *Server) reviveSession(id string) (*session, error) {
	s.reviveMu.Lock()
	defer s.reviveMu.Unlock()
	if sess, ok := s.session(id); ok {
		return sess, nil
	}
	s.smu.RLock()
	cold, ok := s.paged[id]
	s.smu.RUnlock()
	if !ok {
		return nil, ErrNoSession
	}
	sess, err := s.rebuildFromJournal(id, "revival")
	if err != nil {
		return nil, fmt.Errorf("server: reviving session %s: %w", id, err)
	}
	if sess == nil {
		// Journal vanished or held no meta — the cold entry is stale.
		s.smu.Lock()
		if _, still := s.paged[id]; still {
			delete(s.paged, id)
			s.tenants.addCold(cold.tenant, -1)
		}
		s.smu.Unlock()
		return nil, ErrNoSession
	}
	sess.touch()
	s.smu.Lock()
	if _, still := s.paged[id]; still {
		delete(s.paged, id)
		s.tenants.addCold(sess.tenant, -1)
	}
	s.sessions[id] = sess
	s.tenants.addHot(sess.tenant, 1)
	s.smu.Unlock()
	s.chargeSessionMem(sess)
	s.metrics.sessionsRevived.Add(1)
	// Fairness and budget both react to the new hot resident.
	s.enforceHotLimit(sess.tenant, sess)
	if b := s.cfg.MemBudget; b > 0 && s.memUsed.Load() > b {
		s.kickPressure()
	}
	return sess, nil
}

// coldSessionIDs snapshots the cold table's IDs.
func (s *Server) coldSessionIDs() []string {
	s.smu.RLock()
	ids := make([]string, 0, len(s.paged))
	for id := range s.paged {
		ids = append(ids, id)
	}
	s.smu.RUnlock()
	return ids
}

// --- janitor: idle paging + pressure eviction ---------------------------

// kickPressure wakes the janitor for an immediate pressure sweep that
// drains to the low watermark (80% of budget) rather than just under
// it, so the governor does not thrash at the threshold.
func (s *Server) kickPressure() {
	s.underPressure.Store(true)
	select {
	case s.pressureCh <- struct{}{}:
	default:
	}
}

// sweep is one janitor pass: refresh footprints, page (or, without a
// journal, delete) idle sessions, then enforce the memory budget
// coldest-first and the journal disk budget oldest-first.
func (s *Server) sweep(now time.Time) {
	live := s.liveSessions()
	for _, sess := range live {
		s.refreshSessionMem(sess)
	}
	if ttl := s.cfg.IdleTTL; ttl > 0 {
		for _, sess := range live {
			if sess.idleFor(now) <= ttl {
				continue
			}
			if sess.journaled.Load() {
				_ = s.pageOutSession(sess)
			} else {
				s.evictSession(sess)
			}
		}
	}
	s.enforceMemBudget()
	s.enforceJournalBudget()
}

// enforceMemBudget pages hot sessions coldest-first until estimated
// resident bytes are back under the memory budget (or its pressure
// watermark).
func (s *Server) enforceMemBudget() {
	budget := s.cfg.MemBudget
	if budget <= 0 {
		return
	}
	target := budget
	if s.underPressure.Swap(false) {
		target = budget - budget/5
	}
	if s.memUsed.Load() <= target {
		return
	}
	s.pageColdest(target, true)
}

// enforceJournalBudget caps the on-disk bytes of the journal directory.
// Hot journals cannot be dropped without losing acknowledged state, so
// the budget prunes cold paged sessions oldest-checkpoint-first: the
// cold entry and its journal are deleted together, counted as a
// deletion (the state really is gone — a later request gets 404). The
// measured total is published as the journal_bytes gauge either way.
func (s *Server) enforceJournalBudget() {
	if s.wal == nil {
		return
	}
	total, per, err := s.wal.DiskUsage()
	if err != nil {
		return
	}
	s.metrics.journalBytes.Store(total)
	budget := s.cfg.JournalBudget
	if budget <= 0 || total <= budget {
		return
	}
	// reviveMu excludes concurrent revivals, so a session observed cold
	// under smu stays cold while its journal is removed.
	s.reviveMu.Lock()
	defer s.reviveMu.Unlock()
	s.smu.RLock()
	cold := make([]*pagedSession, 0, len(s.paged))
	for _, p := range s.paged {
		cold = append(cold, p)
	}
	s.smu.RUnlock()
	sort.Slice(cold, func(i, j int) bool { return cold[i].pagedAt.Before(cold[j].pagedAt) })
	for _, p := range cold {
		if total <= budget {
			break
		}
		s.smu.Lock()
		if cur, ok := s.paged[p.id]; !ok || cur != p {
			s.smu.Unlock()
			continue
		}
		delete(s.paged, p.id)
		s.tenants.addCold(p.tenant, -1)
		s.smu.Unlock()
		_ = s.wal.Remove(p.id)
		total -= per[p.id]
		s.metrics.sessionsDeleted.Add(1)
		s.metrics.journalPruned.Add(1)
	}
	s.metrics.journalBytes.Store(total)
}

// pageColdest pages hot journaled sessions in rising lastActive order
// until the estimated usage is at or under target. forced marks
// governor/budget-driven page-outs in the shed counters.
func (s *Server) pageColdest(target int64, forced bool) {
	cands := s.liveSessions()
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].lastActive.Load() < cands[j].lastActive.Load()
	})
	for _, sess := range cands {
		if s.memUsed.Load() <= target {
			return
		}
		if !sess.journaled.Load() {
			continue
		}
		if err := s.pageOutSession(sess); err == nil && forced {
			s.metrics.shedPageouts.Add(1)
		}
	}
}

// evictSession deletes an idle session that has no journal — the
// pre-paging eviction semantics, now counted as a deletion because the
// state really is gone.
func (s *Server) evictSession(sess *session) {
	s.smu.Lock()
	if cur, ok := s.sessions[sess.id]; !ok || cur != sess {
		s.smu.Unlock()
		return
	}
	delete(s.sessions, sess.id)
	s.tenants.addHot(sess.tenant, -1)
	s.smu.Unlock()
	s.releaseSessionMem(sess)
	s.metrics.sessionsDeleted.Add(1)
}

// --- cold start ----------------------------------------------------------

// registerColdSessions is the Config.ColdStart alternative to eager
// recovery: every journaled session found at startup is registered cold
// (meta scanned, no replay), so a node fronting millions of sessions
// becomes ready immediately and pays replay lazily, per session, on
// first touch.
func (s *Server) registerColdSessions() error {
	ids, err := s.wal.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		meta, err := s.scanJournalMeta(id)
		if err != nil {
			return fmt.Errorf("server: cold-registering session %s: %w", id, err)
		}
		if meta == nil {
			// Never-acknowledged session (crash between mkdir and the
			// meta append): drop it, as eager recovery would.
			if err := s.wal.Remove(id); err != nil {
				return err
			}
			continue
		}
		tenant := meta.Tenant
		if tenant == "" {
			tenant = fallbackTenant(meta.ID)
		}
		specs := make([]string, 0, len(meta.Specs))
		for _, sp := range meta.Specs {
			specs = append(specs, sp.Name)
		}
		cold := &pagedSession{
			id:         id,
			tenant:     tenant,
			mode:       meta.Mode,
			specs:      specs,
			shard:      shardFor(id, len(s.shards)),
			pagedAt:    time.Now(),
			lastActive: time.Now().UnixNano(),
		}
		s.smu.Lock()
		s.paged[id] = cold
		s.tenants.addCold(tenant, 1)
		s.smu.Unlock()
		s.metrics.sessionsRecovered.Add(1)
	}
	return nil
}

// scanJournalMeta reads a journal just far enough to learn the session
// meta (from the meta record or a checkpoint's embedded copy), skipping
// batch replay entirely.
func (s *Server) scanJournalMeta(id string) (*sessionMetaJSON, error) {
	var meta *sessionMetaJSON
	j, err := s.wal.OpenJournal(id, func(rec wal.Record) error {
		switch rec.Kind {
		case recMeta:
			var m sessionMetaJSON
			if err := json.Unmarshal(rec.Payload, &m); err != nil {
				return fmt.Errorf("meta record: %w", err)
			}
			meta = &m
		case recSnapshot:
			var snap snapshotRecordJSON
			if err := json.Unmarshal(rec.Payload, &snap); err != nil {
				return fmt.Errorf("snapshot record: %w", err)
			}
			meta = &snap.Meta
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	j.Abandon() // read-only scan: nothing buffered, nothing to sync
	return meta, nil
}

// --- HTTP ---------------------------------------------------------------

// handlePageOut is POST /sessions/{id}/pageout: the ops hook to demote
// a session explicitly (tests, pre-maintenance cooling, external
// policy). Idempotent on cold sessions.
func (s *Server) handlePageOut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.PageOutSession(id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"paged": id})
	case errors.Is(err, ErrNoSession):
		writeError(w, http.StatusNotFound, "no such session")
	case errors.Is(err, errNotJournaled):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, errMigrating):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
