package server_test

// TestOverloadSoak is the overload acceptance soak (`make soaktest`):
// one node with a deliberately tiny memory budget takes a population of
// sessions, each streaming the Fig. 6 OCP trace through the retrying
// client, while the janitor pages and the governor sheds. The contract
// under pressure is absolute: zero lost verdicts (every session ends
// byte-identical to an unloaded reference), session memory settles back
// under budget, and the Prometheus exposition stays well-formed.
//
// It lives in the external test package so it can drive the real
// internal/client retry loop against the server without an import
// cycle, the same way an operator's ingest pipeline would.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/ocp"
	"repro/internal/parser"
	"repro/internal/server"
)

// soakServer builds a journaling server with the OCP simple-read spec.
func soakServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg.WALDir = t.TempDir()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.LoadSpecSource(parser.Print("OcpSimpleRead", ocp.SimpleReadChart())); err != nil {
		t.Fatalf("loading spec: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// soakMonitors fetches a session's verdicts with the session-specific
// fields stripped, for byte-level parity.
func soakMonitors(t *testing.T, c *client.Client, id string) []byte {
	t.Helper()
	v, err := c.Resume(id, 0).Verdicts(context.Background())
	if err != nil {
		t.Fatalf("verdicts %s: %v", id, err)
	}
	data, err := json.MarshalIndent(v.Monitors, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestOverloadSoak(t *testing.T) {
	nSessions := 12
	if v := os.Getenv("SOAK_SESSIONS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("SOAK_SESSIONS=%q is not a positive integer", v)
		}
		nSessions = n
	}
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 6, FaultRate: 0.2}).GenerateTrace(240)
	ticks := make([]server.StateJSON, len(tr))
	for i, st := range tr {
		ticks[i] = server.EncodeState(st)
	}

	// Unloaded reference run — and a footprint measurement to size the
	// budget at roughly a third of the hot population.
	refSrv, refTS := soakServer(t, server.Config{Shards: 1, QueueDepth: 16})
	refClient := client.New(client.Options{BaseURL: refTS.URL, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	refSess, err := refClient.CreateSession(ctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatalf("reference session: %v", err)
	}
	fp := refSrv.MemUsed()
	if _, err := refSess.SendTicks(ctx, ticks, true); err != nil {
		t.Fatalf("reference stream: %v", err)
	}
	want := soakMonitors(t, refClient, refSess.ID)

	budget := fp * int64(nSessions) / 3
	cfg := server.Config{
		Shards:          2,
		QueueDepth:      8,
		SnapshotEvery:   8,
		MemBudget:       budget,
		SweepEvery:      20 * time.Millisecond,
		GovernorLatency: 50 * time.Millisecond,
	}
	s, ts := soakServer(t, cfg)

	ids := make([]string, nSessions)
	errs := make(chan error, nSessions)
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(client.Options{
				BaseURL:     ts.URL,
				MaxAttempts: 10,
				BackoffBase: 2 * time.Millisecond,
				BackoffCap:  50 * time.Millisecond,
				Seed:        int64(i + 1),
			})
			// Session creation may be shed (429 X-Cesc-Shed: sessions,
			// terminal per call so a router could hop); a single node
			// just honors Retry-After and tries again.
			var sess *client.Session
			for {
				created, cerr := c.CreateSession(ctx, "assert", "OcpSimpleRead")
				if cerr == nil {
					sess = created
					break
				}
				var apiErr *client.APIError
				if errors.As(cerr, &apiErr) && apiErr.Code == http.StatusTooManyRequests {
					d := apiErr.RetryAfter
					if d <= 0 || d > 100*time.Millisecond {
						d = 100 * time.Millisecond
					}
					select {
					case <-time.After(d):
						continue
					case <-ctx.Done():
						errs <- fmt.Errorf("session %d: create timed out: %w", i, ctx.Err())
						return
					}
				}
				errs <- fmt.Errorf("session %d: create: %w", i, cerr)
				return
			}
			ids[i] = sess.ID
			for at := 0; at < len(ticks); at += 24 {
				end := at + 24
				if end > len(ticks) {
					end = len(ticks)
				}
				// The client retries queue-full 429s, paged-out 409s, and
				// lost responses internally; the seq watermark keeps the
				// retries exactly-once.
				if _, err := sess.SendTicks(ctx, ticks[at:end], true); err != nil {
					errs <- fmt.Errorf("session %d batch at %d: %w", i, at, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Zero lost verdicts: every session — hot or revived from its WAL
	// checkpoint — reports verdicts byte-identical to the unloaded run.
	check := client.New(client.Options{BaseURL: ts.URL, Seed: 99})
	for i, id := range ids {
		if got := soakMonitors(t, check, id); !bytes.Equal(got, want) {
			t.Fatalf("session %d (%s) diverged from unloaded reference:\n got %s\nwant %s", i, id, got, want)
		}
		info, err := check.Resume(id, 0).Info(ctx)
		if err != nil {
			t.Fatalf("info %s: %v", id, err)
		}
		if info.Steps != len(tr) {
			t.Fatalf("session %d steps = %d, want %d", i, info.Steps, len(tr))
		}
	}

	// The budget was real: paging happened, nothing was deleted, and the
	// hot set settles back under budget once the janitor catches up.
	m := s.Metrics()
	if m.SessionsPaged == 0 {
		t.Fatal("soak never paged a session; the budget was not exercised")
	}
	if m.SessionsDeleted != 0 {
		t.Fatalf("sessions_deleted = %d under paging, want 0 (eviction must not lose state)", m.SessionsDeleted)
	}
	if m.SessionsActive+m.SessionsCold != nSessions {
		t.Fatalf("hot %d + cold %d != population %d", m.SessionsActive, m.SessionsCold, nSessions)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.MemUsed() > budget {
		if time.Now().After(deadline) {
			t.Fatalf("mem used %d never settled under budget %d", s.MemUsed(), budget)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The Prometheus exposition stays valid under the new families.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ValidatePromText(string(text))
	if err != nil {
		t.Fatalf("invalid /metrics exposition after soak: %v", err)
	}
	if samples == 0 {
		t.Fatal("no samples in /metrics exposition")
	}
	for _, family := range []string{
		"cescd_sessions_paged_total", "cescd_sessions_revived_total",
		"cescd_mem_used_bytes", "cescd_governor_level", "cescd_shed_total",
		"cescd_tenant_sessions",
	} {
		if !bytes.Contains(text, []byte(family)) {
			t.Errorf("/metrics missing %s after soak", family)
		}
	}
	t.Logf("soak: %d sessions, paged=%d revived=%d shed_wait=%d shed_sessions=%d shed_pageouts=%d retries(ref client)=%d",
		nSessions, m.SessionsPaged, m.SessionsRevived, m.ShedWait, m.ShedSessions, m.ShedPageouts, refClient.Retries())
}
