package server

import (
	"sync/atomic"
	"time"
)

// histBounds are the fixed bucket upper bounds of the tick-latency
// histogram, a 1-2-5 series from 1µs to 10s. Latencies above the last
// bound land in an overflow bucket.
var histBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// histogram is a lock-free fixed-bucket latency histogram. Observations
// and quantile reads may race benignly: quantiles are computed from a
// per-bucket atomic snapshot, which is exact enough for monitoring.
type histogram struct {
	counts []atomic.Uint64 // len(histBounds)+1, last is overflow
	total  atomic.Uint64
	sumNs  atomic.Int64 // sum of samples, for the Prometheus _sum series
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(histBounds)+1)}
}

// observe records one latency sample.
func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(histBounds); i++ {
		if d <= histBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNs.Add(int64(d))
}

// count returns the number of samples recorded.
func (h *histogram) count() uint64 { return h.total.Load() }

// buckets snapshots the per-bucket (non-cumulative) counts — one per
// bound plus the overflow bucket — and the sample sum in seconds, the
// shape obs.PromWriter.Histogram consumes.
func (h *histogram) buckets() ([]uint64, float64) {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out, time.Duration(h.sumNs.Load()).Seconds()
}

// histBoundsSeconds renders the bucket bounds as seconds for the
// Prometheus `le` labels.
func histBoundsSeconds() []float64 {
	out := make([]float64, len(histBounds))
	for i, b := range histBounds {
		out[i] = b.Seconds()
	}
	return out
}

// quantile returns the upper bound of the bucket containing the p-th
// quantile (0 < p <= 1), or 0 when empty. The overflow bucket reports
// the largest bound.
func (h *histogram) quantile(p float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i >= len(histBounds) {
				return histBounds[len(histBounds)-1]
			}
			return histBounds[i]
		}
	}
	return histBounds[len(histBounds)-1]
}
