package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/verif"
	"repro/internal/wal"
)

// Session journaling. When Config.WALDir is set, every session owns one
// journal under <WALDir>/<session-id>/ and the accept path appends a
// record per accepted batch, so a crashed daemon restarted on the same
// directory rebuilds each session by replaying the journal and reports
// verdicts and coverage identical to an uninterrupted run.
//
// Record kinds:
//
//	recMeta     — session identity + the printed source of every spec,
//	              written (and synced) before the create response. The
//	              specs travel as source because the automaton is fully
//	              deterministic to resynthesize, which keeps snapshots
//	              small and versions the journal against the compiler.
//	recBatch    — one accepted tick batch, with its journal index (jseq)
//	              and the client's dedup seq, appended under ingestMu in
//	              accept order.
//	recSnapshot — periodic execution-state checkpoint. Appended via
//	              wal.AppendCheckpoint, which rotates first so every
//	              earlier record lands in an older segment and prunes
//	              those segments afterwards; the record is therefore
//	              self-contained (it repeats the session meta).
//	recBatchRaw — one accepted fast-path batch: a 16-byte little-endian
//	              header (jseq, then the client's dedup seq) followed by
//	              the verbatim NDJSON request body. The ingest path
//	              already validated the bytes with the strict batch
//	              decoder, so journaling is one copy — no re-encode —
//	              and replay re-decodes the same bytes.
//	recBatchRawTraced — the PR-10 frame-header bump of recBatchRaw: the
//	              same 16-byte header, then a uint16 trace-id length and
//	              the trace-id bytes, then the verbatim body. Written
//	              only when the batch carried a trace id, so a standby's
//	              promotion replay (the records replicate verbatim) can
//	              attribute recovered ticks to the originating trace.
//	              Replay accepts both forms — PR-8-format standby
//	              journals keep promoting, they just replay traceless.
const (
	recMeta           byte = 1
	recBatch          byte = 2
	recSnapshot       byte = 3
	recBatchRaw       byte = 4
	recBatchRawTraced byte = 5
)

// The record kinds are exported for the cluster layer, which passes
// journal records through verbatim: the replicator tails an owner's
// journal and appends the same records to the standby copy, applying
// RecordSnapshot via a checkpoint so the standby journal is pruned in
// lockstep with the owner's.
const (
	RecordMeta           = recMeta
	RecordBatch          = recBatch
	RecordSnapshot       = recSnapshot
	RecordBatchRaw       = recBatchRaw
	RecordBatchRawTraced = recBatchRawTraced
)

// rawBatchHeaderLen is the fixed prefix of a recBatchRaw payload: jseq
// and the client seq, little-endian uint64s. recBatchRawTraced extends
// it with a uint16 trace length and the trace bytes.
const rawBatchHeaderLen = 16

type specSourceJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type sessionMetaJSON struct {
	ID        string    `json:"id"`
	Mode      string    `json:"mode"`
	Created   time.Time `json:"created"`
	DiagDepth int       `json:"diag_depth,omitempty"`
	// Tenant keys quota accounting; journaled so recovery, revival, and
	// migration keep charging the same tenant. Absent in pre-tenancy
	// journals, which fall back to the session-ID prefix.
	Tenant string           `json:"tenant,omitempty"`
	Specs  []specSourceJSON `json:"specs"`
}

type batchRecordJSON struct {
	JSeq uint64 `json:"jseq"`
	Seq  uint64 `json:"seq,omitempty"`
	// Trace is the X-Cesc-Trace id the batch arrived under, kept so a
	// replay (recovery, revival, promotion) can attribute the recovered
	// ticks to the trace that originally carried them.
	Trace string      `json:"trace,omitempty"`
	Ticks []StateJSON `json:"ticks"`
}

type monitorSnapshotJSON struct {
	Spec             string                     `json:"spec"`
	Engine           monitor.EngineSnapshot     `json:"engine"`
	Scoreboard       monitor.ScoreboardSnapshot `json:"scoreboard"`
	Coverage         verif.CoverageSnapshot     `json:"coverage"`
	AcceptTicks      []int                      `json:"accept_ticks,omitempty"`
	Quarantined      bool                       `json:"quarantined,omitempty"`
	QuarantineReason string                     `json:"quarantine_reason,omitempty"`
}

// snapshotFormat versions the snapshot record. Absent/zero means the
// PR-2 encoding (map-keyed scoreboard entries); 3 means the packed
// encoding (slot-keyed parallel slices, see monitor.ScoreboardSnapshot).
// The decoder accepts both; writers emit the current format.
const snapshotFormat = 3

type snapshotRecordJSON struct {
	Format   int                   `json:"format,omitempty"`
	Meta     sessionMetaJSON       `json:"meta"`
	JSeq     uint64                `json:"jseq"`
	LastSeq  uint64                `json:"last_seq"`
	Monitors []monitorSnapshotJSON `json:"monitors"`
}

// journalCreate opens a fresh journal for a new session and makes its
// meta record durable before the create response is sent.
func (s *Server) journalCreate(sess *session, specs []*Spec) error {
	meta := sessionMetaJSON{ID: sess.id, Mode: modeString(sess.mode), Created: sess.created, DiagDepth: sess.diagDepth, Tenant: sess.tenant}
	for _, sp := range specs {
		meta.Specs = append(meta.Specs, specSourceJSON{Name: sp.Name, Source: sp.Source})
	}
	j, err := s.wal.OpenJournal(sess.id, func(wal.Record) error {
		return fmt.Errorf("journal for new session %s is not empty", sess.id)
	})
	if err != nil {
		return err
	}
	payload, err := json.Marshal(meta)
	if err != nil {
		j.Abandon()
		return err
	}
	if err := j.Append(recMeta, payload); err != nil {
		j.Abandon()
		return err
	}
	if err := j.Sync(); err != nil {
		j.Abandon()
		return err
	}
	sess.jrnl = j
	sess.journaled.Store(true)
	sess.meta = meta
	return nil
}

// journalBatch appends one accepted batch — one journal frame per batch
// on either decode path. A fast-path batch is framed as recBatchRaw (the
// header plus the verbatim request bytes, no re-encode); a slow-path
// batch re-encodes its map states as the JSON recBatch record. Caller
// holds sess.ingestMu and has already assigned b.jseq.
func (s *Server) journalBatch(sess *session, b *batch, seq uint64) error {
	var (
		kind    byte
		payload []byte
	)
	if b.packed != nil {
		if b.trace != "" && len(b.trace) <= 0xFFFF {
			// Traced batches take the extended frame so the trace id
			// survives into replicated standby journals. Untraced batches
			// keep the PR-8 frame byte for byte — tracing off costs the
			// WAL nothing.
			kind = recBatchRawTraced
			payload = make([]byte, rawBatchHeaderLen+2+len(b.trace)+len(b.raw))
			binary.LittleEndian.PutUint64(payload[0:8], b.jseq)
			binary.LittleEndian.PutUint64(payload[8:16], seq)
			binary.LittleEndian.PutUint16(payload[16:18], uint16(len(b.trace)))
			copy(payload[18:], b.trace)
			copy(payload[18+len(b.trace):], b.raw)
		} else {
			kind = recBatchRaw
			payload = make([]byte, rawBatchHeaderLen+len(b.raw))
			binary.LittleEndian.PutUint64(payload[0:8], b.jseq)
			binary.LittleEndian.PutUint64(payload[8:16], seq)
			copy(payload[rawBatchHeaderLen:], b.raw)
		}
	} else {
		kind = recBatch
		rec := batchRecordJSON{JSeq: b.jseq, Seq: seq, Trace: b.trace, Ticks: make([]StateJSON, len(b.states))}
		for i, st := range b.states {
			rec.Ticks[i] = stateJSON(st)
		}
		var err error
		payload, err = json.Marshal(rec)
		if err != nil {
			return err
		}
	}
	start := time.Now()
	err := sess.jrnl.Append(kind, payload)
	dur := time.Since(start)
	s.metrics.observeStage(obs.StageWALAppend, dur)
	sp := obs.Span{
		Trace: b.trace, Session: sess.id, Stage: obs.StageWALAppend,
		Start: start, Dur: dur, Ticks: b.tickCount(),
	}
	if err != nil {
		sp.Note = err.Error()
	}
	s.tracer.Record(sess.shard, sp)
	return err
}

// buildSnapshotRecord assembles a self-contained snapshot of the
// session's execution state. Caller holds sess.ingestMu (or otherwise
// guarantees no concurrent worker), so appliedJSeq and lastSeq are
// settled; sess.mu is taken for the engine reads.
func buildSnapshotRecord(sess *session) snapshotRecordJSON {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	rec := snapshotRecordJSON{Format: snapshotFormat, Meta: sess.meta, JSeq: sess.appliedJSeq, LastSeq: sess.lastSeq}
	for _, sm := range sess.mons {
		rec.Monitors = append(rec.Monitors, monitorSnapshotJSON{
			Spec:             sm.spec,
			Engine:           sm.eng.Snapshot(),
			Scoreboard:       sm.eng.Scoreboard().Snapshot(),
			Coverage:         sm.cov.Snapshot(),
			AcceptTicks:      append([]int(nil), sm.acceptTicks...),
			Quarantined:      sm.quarantined,
			QuarantineReason: sm.quarantineReason,
		})
	}
	return rec
}

// snapshotSession checkpoints the session's execution state. Caller
// holds sess.ingestMu and has waited for the batch that made the
// snapshot due, so appliedJSeq covers every journaled batch and the
// checkpoint may prune all older segments.
func (s *Server) snapshotSession(sess *session) error {
	payload, err := json.Marshal(buildSnapshotRecord(sess))
	if err != nil {
		return err
	}
	if err := sess.jrnl.AppendCheckpoint(recSnapshot, payload); err != nil {
		return err
	}
	s.metrics.walSnapshots.Add(1)
	return nil
}

// dropJournal closes a session's journal and removes it from disk
// (explicit delete and idle eviction — the session is gone, so its
// durability obligation is too).
func (s *Server) dropJournal(sess *session) {
	if sess.jrnl == nil {
		return
	}
	_ = sess.jrnl.Close()
	_ = s.wal.Remove(sess.id)
	sess.jrnl = nil
	sess.journaled.Store(false)
}

// recoverSessions rebuilds every journaled session found in the WAL
// directory. Called from New before the HTTP API is reachable, so the
// rebuilt sessions see no concurrent traffic.
func (s *Server) recoverSessions() error {
	ids, err := s.wal.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := s.recoverSession(id); err != nil {
			return fmt.Errorf("server: recovering session %s: %w", id, err)
		}
	}
	return nil
}

// sessionRestorer folds a stream of journal records into a session being
// rebuilt. It is the shared replay core of three paths that must agree
// byte for byte: crash recovery (records from the local journal),
// migration import (a single self-contained snapshot record shipped by
// the losing owner), and standby promotion (the records a dead owner
// replicated to this node).
type sessionRestorer struct {
	srv         *Server
	sess        *session
	replayed    uint64
	replayTicks int
	// lastTrace is the trace id of the newest replayed batch that carried
	// one, so the replay span can point back at the originating trace —
	// on a promoted standby this is how a cross-node timeline shows the
	// recovered ticks under the client's own trace id.
	lastTrace string
}

// apply folds one record into the session under construction.
func (rs *sessionRestorer) apply(rec wal.Record) error {
	switch rec.Kind {
	case recMeta:
		var meta sessionMetaJSON
		if err := json.Unmarshal(rec.Payload, &meta); err != nil {
			return fmt.Errorf("meta record: %w", err)
		}
		var err error
		rs.sess, err = rs.srv.sessionFromMeta(meta)
		return err
	case recSnapshot:
		var snap snapshotRecordJSON
		if err := json.Unmarshal(rec.Payload, &snap); err != nil {
			return fmt.Errorf("snapshot record: %w", err)
		}
		if snap.Format > snapshotFormat {
			return fmt.Errorf("snapshot format %d is newer than this build supports (%d)",
				snap.Format, snapshotFormat)
		}
		// Snapshots are self-contained: checkpointing pruned the
		// segments holding the meta record, so rebuild from here.
		sess, err := rs.srv.sessionFromMeta(snap.Meta)
		if err != nil {
			return err
		}
		if len(snap.Monitors) != len(sess.mons) {
			return fmt.Errorf("snapshot has %d monitors, session has %d", len(snap.Monitors), len(sess.mons))
		}
		for i, ms := range snap.Monitors {
			sm := sess.mons[i]
			if sm.spec != ms.Spec {
				return fmt.Errorf("snapshot monitor %d is %q, session has %q", i, ms.Spec, sm.spec)
			}
			if err := sm.eng.Restore(ms.Engine); err != nil {
				return err
			}
			sm.eng.Scoreboard().Restore(ms.Scoreboard)
			if err := sm.cov.Restore(ms.Coverage); err != nil {
				return err
			}
			sm.acceptTicks = append([]int(nil), ms.AcceptTicks...)
			sm.quarantined = ms.Quarantined
			sm.quarantineReason = ms.QuarantineReason
		}
		sess.appliedJSeq = snap.JSeq
		sess.walSeq = snap.JSeq
		sess.lastSeq = snap.LastSeq
		rs.sess = sess
		return nil
	case recBatch:
		if rs.sess == nil {
			return fmt.Errorf("batch record before session meta")
		}
		sess := rs.sess
		var br batchRecordJSON
		if err := json.Unmarshal(rec.Payload, &br); err != nil {
			return fmt.Errorf("batch record: %w", err)
		}
		if br.JSeq > sess.walSeq {
			sess.walSeq = br.JSeq
		}
		if br.Seq > sess.lastSeq {
			sess.lastSeq = br.Seq
		}
		if br.JSeq <= sess.appliedJSeq {
			// Folded into the snapshot already.
			return nil
		}
		if br.Trace != "" {
			rs.lastTrace = br.Trace
		}
		sess.mu.Lock()
		for _, t := range br.Ticks {
			sess.step(t.ToState())
		}
		sess.appliedJSeq = br.JSeq
		sess.mu.Unlock()
		rs.replayed++
		rs.replayTicks += len(br.Ticks)
		return nil
	case recBatchRaw:
		if rs.sess == nil {
			return fmt.Errorf("raw batch record before session meta")
		}
		if len(rec.Payload) < rawBatchHeaderLen {
			return fmt.Errorf("raw batch record: %d bytes, want at least %d", len(rec.Payload), rawBatchHeaderLen)
		}
		jseq := binary.LittleEndian.Uint64(rec.Payload[0:8])
		seq := binary.LittleEndian.Uint64(rec.Payload[8:16])
		return rs.applyRawBatch(jseq, seq, "", rec.Payload[rawBatchHeaderLen:])
	case recBatchRawTraced:
		if rs.sess == nil {
			return fmt.Errorf("traced raw batch record before session meta")
		}
		if len(rec.Payload) < rawBatchHeaderLen+2 {
			return fmt.Errorf("traced raw batch record: %d bytes, want at least %d", len(rec.Payload), rawBatchHeaderLen+2)
		}
		jseq := binary.LittleEndian.Uint64(rec.Payload[0:8])
		seq := binary.LittleEndian.Uint64(rec.Payload[8:16])
		tlen := int(binary.LittleEndian.Uint16(rec.Payload[16:18]))
		if len(rec.Payload) < rawBatchHeaderLen+2+tlen {
			return fmt.Errorf("traced raw batch record: trace length %d overruns %d-byte payload", tlen, len(rec.Payload))
		}
		trace := string(rec.Payload[18 : 18+tlen])
		return rs.applyRawBatch(jseq, seq, trace, rec.Payload[18+tlen:])
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
}

// applyRawBatch folds one fast-path batch record (either raw frame) into
// the session: watermark updates, snapshot skip, and a step replay of the
// verbatim NDJSON body.
func (rs *sessionRestorer) applyRawBatch(jseq, seq uint64, trace string, raw []byte) error {
	sess := rs.sess
	if jseq > sess.walSeq {
		sess.walSeq = jseq
	}
	if seq > sess.lastSeq {
		sess.lastSeq = seq
	}
	if jseq <= sess.appliedJSeq {
		// Folded into the snapshot already.
		return nil
	}
	if trace != "" {
		rs.lastTrace = trace
	}
	// The raw bytes passed the strict batch decoder at ingest, so the
	// lenient json path accepts them; an error here is corruption the
	// CRC framing missed, reported rather than skipped. Replaying
	// through the map path is verdict-identical to the fast path — the
	// decoder equivalence the conformance suite pins.
	var states []event.State
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var t StateJSON
		if err := dec.Decode(&t); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("raw batch record tick %d: %w", len(states), err)
		}
		states = append(states, t.ToState())
	}
	sess.mu.Lock()
	for _, st := range states {
		sess.step(st)
	}
	sess.appliedJSeq = jseq
	sess.mu.Unlock()
	rs.replayed++
	rs.replayTicks += len(states)
	return nil
}

// finish aligns the per-spec reporting watermarks with the restored
// engine totals: replayed verdicts are session state, not new daemon
// work, so the first live batch reports only its own delta (matching the
// daemon-wide accepts/violations counters, which ignore replay too).
func (rs *sessionRestorer) finish() {
	for _, sm := range rs.sess.mons {
		st := sm.eng.Stats()
		sm.reportedAccepts, sm.reportedViolations = uint64(st.Accepts), uint64(st.Violations)
	}
}

// rebuildFromJournal replays one session's journal into a fresh session
// — the shared core of startup crash recovery and cold-session revival
// (paging is crash recovery on demand). The returned session holds the
// open journal and is not yet registered; a nil session with nil error
// means the journal held no meta record (a never-acknowledged session)
// and was removed.
func (s *Server) rebuildFromJournal(id, traceTag string) (*session, error) {
	replayStart := time.Now()
	rs := &sessionRestorer{srv: s}
	j, err := s.wal.OpenJournal(id, rs.apply)
	if err != nil {
		return nil, err
	}
	if rs.sess == nil {
		j.Abandon()
		return nil, s.wal.Remove(id)
	}
	sess := rs.sess
	sess.jrnl = j
	sess.journaled.Store(true)
	rs.finish()
	replayDur := time.Since(replayStart)
	s.metrics.observeStage(obs.StageWALReplay, replayDur)
	// A replay that saw traced batches attributes the span to the newest
	// originating trace, so a merged cluster timeline shows the recovered
	// ticks under the client's own trace id; the tag ("recovery",
	// "revival", "promotion") stays visible as the span kind.
	spanTrace := traceTag
	if rs.lastTrace != "" {
		spanTrace = rs.lastTrace
	}
	s.tracer.Record(sess.shard, obs.Span{
		Trace: spanTrace, Session: sess.id, Stage: obs.StageWALReplay,
		Kind:  traceTag,
		Start: replayStart, Dur: replayDur, Ticks: rs.replayTicks,
		Note: fmt.Sprintf("replayed %d batches", rs.replayed),
	})
	s.metrics.batchesReplayed.Add(rs.replayed)
	return sess, nil
}

func (s *Server) recoverSession(id string) error {
	sess, err := s.rebuildFromJournal(id, "recovery")
	if err != nil || sess == nil {
		return err
	}
	s.trackLive(sess)
	s.metrics.sessionsRecovered.Add(1)
	return nil
}

// sessionFromMeta resynthesizes a session's monitors from the journaled
// spec sources and rebuilds the (empty) session around them.
func (s *Server) sessionFromMeta(meta sessionMetaJSON) (*session, error) {
	mode, err := parseMode(meta.Mode)
	if err != nil {
		return nil, err
	}
	specs := make([]*Spec, 0, len(meta.Specs))
	for _, ss := range meta.Specs {
		sp, err := compileSingleSpec(ss.Name, ss.Source)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	sess := newSession(meta.ID, mode, shardFor(meta.ID, len(s.shards)), specs, s.cfg.Faults, meta.DiagDepth)
	sess.created = meta.Created
	sess.meta = meta
	sess.tenant = meta.Tenant
	if sess.tenant == "" {
		sess.tenant = fallbackTenant(meta.ID)
	}
	return sess, nil
}
