package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/ocp"
	"repro/internal/synth"
)

// createSessionDiag creates a session with an explicit diagnostics ring
// depth (the diag_depth option).
func createSessionDiag(t *testing.T, base, mode string, diagDepth int, specs ...string) SessionInfoJSON {
	t.Helper()
	body, _ := json.Marshal(createSessionRequest{Specs: specs, Mode: mode, DiagDepth: diagDepth})
	var info SessionInfoJSON
	doJSON(t, "POST", base+"/sessions", body, http.StatusCreated, &info)
	return info
}

// TestPromExposition scrapes GET /metrics without an Accept header and
// checks the body is well-formed Prometheus text 0.0.4 carrying the
// dimensioned series: per-spec verdict counters, per-shard gauges, and
// per-stage latency histograms.
func TestPromExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, TraceDepth: 64})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 1, FaultRate: 0.2}).GenerateTrace(300)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 64)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	samples, err := obs.ValidatePromText(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	if samples == 0 {
		t.Fatal("exposition has no samples")
	}
	for _, want := range []string{
		`cescd_spec_accepts_total{spec="OcpSimpleRead"}`,
		`cescd_spec_violations_total{spec="OcpSimpleRead"}`,
		`cescd_shard_queue_depth{shard="0"}`,
		`cescd_shard_queue_depth{shard="1"}`,
		`cescd_stage_latency_seconds_bucket{stage="step",le="+Inf"}`,
		`cescd_stage_latency_seconds_count{stage="decode"}`,
		`cescd_tick_latency_seconds_bucket{le="+Inf"}`,
		`cescd_trace_spans_total`,
		`cescd_go_goroutines`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing series %s", want)
		}
	}
	// The JSON body stays available behind content negotiation.
	var snap MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
	if snap.PerSpecViolations["OcpSimpleRead"] == 0 {
		t.Errorf("JSON snapshot per-spec violations = 0, want > 0")
	}
	if snap.TicksTotal != uint64(len(tr)) {
		t.Errorf("ticks_total = %d, want %d", snap.TicksTotal, len(tr))
	}
}

// TestDiagnosticsEndpointDifferential checks that the provenance served
// by GET /sessions/{id}/diagnostics — produced by the map-fed compiled
// program engine backing assert sessions — is byte-identical JSON to
// what the interpreted AST engine and the vocabulary-packed program
// engine emit for the same trace. (The lookup-table tier's differential
// lives in internal/monitor/provenance_test.go: tables implement detect
// semantics, so partial monitors like the synthesized OCP one report
// hard-reset violations only on the engine tiers.)
func TestDiagnosticsEndpointDifferential(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7, FaultRate: 0.25}).GenerateTrace(400)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 64)

	var got DiagnosticsJSON
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s/diagnostics", ts.URL, sess.ID),
		nil, http.StatusOK, &got)
	if got.Session != sess.ID || got.Mode != "assert" || len(got.Monitors) != 1 {
		t.Fatalf("diagnostics envelope = %+v", got)
	}
	md := got.Monitors[0]
	if md.Spec != "OcpSimpleRead" || md.Violations == 0 || len(md.Diagnostics) == 0 {
		t.Fatalf("expected retained violations for OcpSimpleRead, got %+v", md)
	}
	for _, d := range md.Diagnostics {
		if d.Monitor == "" || d.Guard == "" || len(d.Guards) == 0 {
			t.Errorf("diagnostic missing provenance fields: %+v", d)
		}
	}

	m, err := synth.Synthesize(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	references := map[string][]monitor.Diagnostic{}
	interp := monitor.NewEngine(m, nil, monitor.ModeAssert)
	interp.EnableDiagnostics(defaultDiagDepth)
	interp.Run(tr)
	references["interpreted"] = interp.Diagnostics()
	p, err := monitor.CompileProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	v := event.NewVocabulary()
	if err := v.DeclareSupport(p.Support()); err != nil {
		t.Fatal(err)
	}
	packed, err := p.NewEngineVocab(nil, monitor.ModeAssert, v)
	if err != nil {
		t.Fatal(err)
	}
	packed.EnableDiagnostics(defaultDiagDepth)
	for _, s := range tr {
		packed.StepPacked(v.Pack(s))
	}
	references["program/packed"] = packed.Diagnostics()

	gotJSON, err := json.Marshal(md.Diagnostics)
	if err != nil {
		t.Fatal(err)
	}
	for tier, diags := range references {
		want := make([]DiagnosticJSON, 0, len(diags))
		for _, d := range diags {
			want = append(want, diagnosticJSON(d))
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("endpoint provenance diverges from %s tier:\n got %s\nwant %s",
				tier, gotJSON, wantJSON)
		}
	}
}

// TestDiagDepthOption checks the diag_depth session option: it bounds
// each report's recent-input window (depth-1 elements before the
// offending input) and rejects out-of-range values.
func TestDiagDepthOption(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 7, FaultRate: 0.25}).GenerateTrace(400)

	sess := createSessionDiag(t, ts.URL, "assert", 2, "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 64)
	var got DiagnosticsJSON
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s/diagnostics", ts.URL, sess.ID),
		nil, http.StatusOK, &got)
	md := got.Monitors[0]
	if md.Violations == 0 || len(md.Diagnostics) == 0 {
		t.Fatalf("expected violations with diag_depth=2, got %+v", md)
	}
	for _, d := range md.Diagnostics {
		if len(d.Recent) > 1 {
			t.Errorf("diag_depth=2 kept %d recent inputs, want <= 1", len(d.Recent))
		}
	}

	body, _ := json.Marshal(createSessionRequest{
		Specs: []string{"OcpSimpleRead"}, Mode: "assert", DiagDepth: maxDiagDepth + 1,
	})
	doJSON(t, "POST", ts.URL+"/sessions", body, http.StatusBadRequest, nil)
}

// TestPerSpecCountersSurviveEviction streams a violating trace, lets the
// idle janitor evict the session, and checks the per-spec verdict
// counters are unchanged: they live on the daemon, not the session.
func TestPerSpecCountersSurviveEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Shards: 1, IdleTTL: 30 * time.Millisecond, SweepEvery: 10 * time.Millisecond,
	})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 3, FaultRate: 0.2}).GenerateTrace(300)
	sess := createSession(t, ts.URL, "assert", "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 64)

	var before MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &before)
	if before.PerSpecAccepts["OcpSimpleRead"] == 0 || before.PerSpecViolations["OcpSimpleRead"] == 0 {
		t.Fatalf("expected nonzero per-spec counters before eviction, got %+v", before)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var snap MetricsSnapshot
		doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
		if snap.SessionsEvicted > 0 && snap.SessionsActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not evicted: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	doJSON(t, "GET", fmt.Sprintf("%s/sessions/%s", ts.URL, sess.ID), nil, http.StatusNotFound, nil)

	var after MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &after)
	if after.PerSpecAccepts["OcpSimpleRead"] != before.PerSpecAccepts["OcpSimpleRead"] ||
		after.PerSpecViolations["OcpSimpleRead"] != before.PerSpecViolations["OcpSimpleRead"] {
		t.Errorf("per-spec counters changed across eviction: before %v/%v, after %v/%v",
			before.PerSpecAccepts["OcpSimpleRead"], before.PerSpecViolations["OcpSimpleRead"],
			after.PerSpecAccepts["OcpSimpleRead"], after.PerSpecViolations["OcpSimpleRead"])
	}
}

// debugTraceBody is the JSON envelope of GET /debug/trace.
type debugTraceBody struct {
	Enabled bool       `json:"enabled"`
	Total   uint64     `json:"total"`
	Spans   []obs.Span `json:"spans"`
}

// TestDebugTraceCorrelation ingests with a client-chosen X-Cesc-Trace id
// and checks the id is echoed on the response and correlates the span
// chain (ingest -> decode -> enqueue -> queue_wait -> step) served by
// GET /debug/trace.
func TestDebugTraceCorrelation(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, TraceDepth: 256})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 1}).GenerateTrace(64)
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")

	const traceID = "obs-test-trace-1"
	req, err := http.NewRequest("POST",
		fmt.Sprintf("%s/sessions/%s/ticks?wait=1", ts.URL, sess.ID),
		bytes.NewReader(ndjson(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Cesc-Trace", traceID)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d, err %v: %s", resp.StatusCode, err, ack)
	}
	if got := resp.Header.Get("X-Cesc-Trace"); got != traceID {
		t.Errorf("response X-Cesc-Trace = %q, want %q", got, traceID)
	}
	var ackBody struct {
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(ack, &ackBody); err != nil {
		t.Fatal(err)
	}
	if ackBody.Trace != traceID {
		t.Errorf("ack trace = %q, want %q", ackBody.Trace, traceID)
	}

	var tb debugTraceBody
	doJSON(t, "GET", ts.URL+"/debug/trace?trace="+traceID, nil, http.StatusOK, &tb)
	if !tb.Enabled || tb.Total == 0 {
		t.Fatalf("trace endpoint = %+v, want enabled with spans", tb)
	}
	stages := map[string]bool{}
	var lastSeq uint64
	for _, sp := range tb.Spans {
		if sp.Trace != traceID {
			t.Errorf("span %+v leaked into trace filter %q", sp, traceID)
		}
		if sp.Seq < lastSeq {
			t.Errorf("spans out of Seq order: %d after %d", sp.Seq, lastSeq)
		}
		lastSeq = sp.Seq
		stages[sp.Stage] = true
	}
	for _, st := range []string{obs.StageIngest, obs.StageDecode, obs.StageEnqueue, obs.StageQueueWait, obs.StageStep} {
		if !stages[st] {
			t.Errorf("trace %q missing stage %s (got %v)", traceID, st, stages)
		}
	}

	// Session filter and newest-n truncation compose with the trace filter.
	doJSON(t, "GET", ts.URL+"/debug/trace?session="+sess.ID+"&n=2", nil, http.StatusOK, &tb)
	if len(tb.Spans) != 2 {
		t.Errorf("n=2 returned %d spans", len(tb.Spans))
	}
	doJSON(t, "GET", ts.URL+"/debug/trace?stage=step", nil, http.StatusOK, &tb)
	for _, sp := range tb.Spans {
		if sp.Stage != obs.StageStep {
			t.Errorf("stage filter leaked %+v", sp)
		}
	}
	doJSON(t, "GET", ts.URL+"/debug/trace?n=nope", nil, http.StatusBadRequest, nil)
}

// TestDebugTraceDisabled checks the endpoint reports enabled=false (and
// ingest responses carry no trace id) when TraceDepth is 0.
func TestDebugTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	var tb debugTraceBody
	doJSON(t, "GET", ts.URL+"/debug/trace", nil, http.StatusOK, &tb)
	if tb.Enabled || len(tb.Spans) != 0 {
		t.Errorf("disabled tracer served %+v", tb)
	}
}

// TestSlowTickWatchdog configures an absurdly low slow-tick threshold so
// every batch trips the watchdog, and checks the slow-batch counter
// surfaces in both metrics bodies.
func TestSlowTickWatchdog(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, SlowTick: time.Nanosecond, TickDelay: 10 * time.Microsecond})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 1}).GenerateTrace(32)
	sess := createSession(t, ts.URL, "detect", "OcpSimpleRead")
	streamTicks(t, ts.URL, sess.ID, tr, 32)

	var snap MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
	if snap.SlowBatches == 0 {
		t.Error("slow_batches = 0, want > 0 with 1ns threshold")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cescd_slow_batches_total") {
		t.Error("exposition missing cescd_slow_batches_total")
	}
}

// TestObsScrapeDuringIngest hammers the ingest path from several writer
// goroutines while scraping /metrics (both content types) and
// /debug/trace concurrently. Run under -race this proves the tracer
// rings, stage histograms, and per-spec counters tolerate concurrent
// readers; the assertions only check nothing 500s and totals add up.
func TestObsScrapeDuringIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4, QueueDepth: 64, TraceDepth: 128, SlowTick: time.Millisecond})
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 5, FaultRate: 0.1}).GenerateTrace(200)

	const writers = 4
	sessions := make([]SessionInfoJSON, writers)
	for i := range sessions {
		sessions[i] = createSession(t, ts.URL, "assert", "OcpSimpleRead")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			streamTicks(t, ts.URL, id, tr, 25)
		}(sessions[i].ID)
	}
	scrape := func(path, accept string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest("GET", ts.URL+path, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if accept != "" {
				req.Header.Set("Accept", accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
				return
			}
		}
	}
	wg.Add(3)
	go scrape("/metrics", "")
	go scrape("/metrics", "application/json")
	go scrape("/debug/trace?n=50", "")

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish on their own; scrapers spin until told to stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap MetricsSnapshot
		doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
		if snap.TicksTotal == uint64(writers*len(tr)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticks_total = %d, want %d", snap.TicksTotal, writers*len(tr))
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	<-done

	var snap MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, http.StatusOK, &snap)
	if snap.TraceSpans == 0 {
		t.Error("trace_spans = 0 with tracing enabled")
	}
	if snap.StageLatencyP99["step"] == 0 {
		t.Error("stage step has no p99 after ingest")
	}
}
