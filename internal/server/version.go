package server

// Build identity, stamped by the linker:
//
//	go build -ldflags "-X repro/internal/server.BuildVersion=v1.2.3 \
//	                   -X repro/internal/server.BuildCommit=abc1234"
//
// Exposed as the cescd_build_info metric so a federated /cluster/metrics
// scrape shows at a glance which build every node in the fleet runs —
// the first question of any mixed-fleet incident.
var (
	BuildVersion = "dev"
	BuildCommit  = "unknown"
)
