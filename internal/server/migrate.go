package server

// Live session migration primitives. The cluster layer drives the
// protocol (who moves where, epoch fencing, HTTP); this file owns the
// state mechanics on both ends of a handoff:
//
//	losing owner:  ExportSession  → ship payload → CommitMigration
//	                               → on failure → AbortMigration
//	gaining owner: AdoptSession(payload records)
//
// An export freezes the session first — ingest answers 409 until the
// handoff commits (the retry then lands on the new owner) or aborts. The
// exported payload is one self-contained snapshot record, the exact
// encoding the WAL checkpoint path writes, so adoption is recovery
// replay reusing the same restorer: byte-identical verdicts by
// construction. The ?seq dedup watermark travels inside the snapshot,
// which is what keeps ingest exactly-once across the move.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// ErrNoSession reports an operation against a session ID this node does
// not hold.
var ErrNoSession = errors.New("server: no such session")

// errMigrating marks ingest against a frozen (mid-handoff) session; the
// HTTP layer maps it to 409 + Retry-After.
var errMigrating = errors.New("server: session migrating")

// HasSession reports whether the session lives on this node, hot or
// cold — a paged-out session is still owned here (its state is in the
// local WAL), so routing, draining, and migration must all see it.
func (s *Server) HasSession(id string) bool {
	s.smu.RLock()
	defer s.smu.RUnlock()
	if _, ok := s.sessions[id]; ok {
		return true
	}
	_, ok := s.paged[id]
	return ok
}

// SessionIDs returns the IDs of every local session, hot and cold,
// sorted. Drain and rebalance iterate this list, so cold sessions
// migrate (reviving on export) instead of being stranded.
func (s *Server) SessionIDs() []string {
	s.smu.RLock()
	ids := make([]string, 0, len(s.sessions)+len(s.paged))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	for id := range s.paged {
		ids = append(ids, id)
	}
	s.smu.RUnlock()
	sort.Strings(ids)
	return ids
}

// WAL exposes the journal manager (nil when journaling is disabled) so
// the cluster replicator can tail session journals.
func (s *Server) WAL() *wal.Manager { return s.wal }

// ExportSession freezes a session and returns its state as one
// self-contained snapshot record payload (the WAL checkpoint encoding).
// The freeze persists after return: the caller must finish with either
// CommitMigration (the new owner acknowledged) or AbortMigration (the
// handoff failed; the session thaws and keeps serving here).
//
// The export barrier enqueues an empty batch and waits for it while
// holding the session's ingest lock, so the snapshot covers every batch
// ever acknowledged and nothing can be accepted between snapshot and
// freeze.
func (s *Server) ExportSession(id string) ([]byte, error) {
	// A cold session revives first: the handoff payload is built from
	// live state, the same path as a hot export, so a migrated-then-
	// revived session cannot diverge from a never-paged one.
	sess, err := s.fetchSession(id)
	if err != nil {
		return nil, err
	}
	sess.ingestMu.Lock()
	defer sess.ingestMu.Unlock()
	if sess.frozen {
		return nil, fmt.Errorf("server: session %s is already mid-handoff", id)
	}
	b := &batch{sess: sess, done: make(chan struct{})}
	if err := s.enqueueWait(b); err != nil {
		return nil, err
	}
	<-b.done
	sess.frozen = true
	payload, err := json.Marshal(buildSnapshotRecord(sess))
	if err != nil {
		sess.frozen = false
		return nil, err
	}
	return payload, nil
}

// CommitMigration finishes a handoff on the losing side: the session
// (still frozen, so nothing raced in) is dropped along with its journal
// — its durability obligation moved with it.
func (s *Server) CommitMigration(id string) {
	s.smu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		s.tenants.addHot(sess.tenant, -1)
	}
	// Exports revive cold sessions, but clear any cold entry too so a
	// racing page-out cannot leave a ghost behind.
	if cold, wasCold := s.paged[id]; wasCold {
		delete(s.paged, id)
		s.tenants.addCold(cold.tenant, -1)
	}
	s.smu.Unlock()
	if !ok {
		return
	}
	s.dropJournal(sess)
	s.releaseSessionMem(sess)
	s.metrics.sessionsMigratedOut.Add(1)
}

// AbortMigration thaws a frozen session after a failed handoff; it
// resumes serving on this node as if the export never happened.
func (s *Server) AbortMigration(id string) {
	sess, ok := s.session(id)
	if !ok {
		return
	}
	sess.ingestMu.Lock()
	sess.frozen = false
	sess.ingestMu.Unlock()
}

// AdoptSession rebuilds a session from a stream of journal records — a
// migration handoff's single snapshot record, or the full record
// sequence a dead owner replicated to this node's standby store — and
// registers it as live. With journaling enabled, the adopted state is
// made durable (a fresh journal holding one snapshot record, replacing
// any stale journal from an earlier ownership) before the session is
// exposed. Adopting an ID that is already live is a no-op, which makes
// handoff retries idempotent.
func (s *Server) AdoptSession(id string, recs []wal.Record) error {
	s.adoptMu.Lock()
	defer s.adoptMu.Unlock()
	if s.HasSession(id) {
		return nil
	}
	replayStart := time.Now()
	rs := &sessionRestorer{srv: s}
	for _, rec := range recs {
		if err := rs.apply(rec); err != nil {
			return fmt.Errorf("server: adopting session %s: %w", id, err)
		}
	}
	if rs.sess == nil {
		return fmt.Errorf("server: adopting session %s: no meta or snapshot record", id)
	}
	if rs.sess.id != id {
		return fmt.Errorf("server: adopting session %s: records describe session %s", id, rs.sess.id)
	}
	rs.finish()
	// Attribute the adoption replay. A standby promotion replays batch
	// records the dead owner replicated here, so the span carries the
	// originating trace id those batches arrived under — the link that
	// lets a merged timeline show recovery under the client's trace. A
	// migration handoff is a single snapshot record (no batches).
	kind := "migration"
	if rs.replayed > 0 {
		kind = "promotion"
	}
	spanTrace := kind
	if rs.lastTrace != "" {
		spanTrace = rs.lastTrace
	}
	replayDur := time.Since(replayStart)
	s.metrics.observeStage(obs.StageWALReplay, replayDur)
	s.tracer.Record(rs.sess.shard, obs.Span{
		Trace: spanTrace, Session: id, Stage: obs.StageWALReplay,
		Kind: kind, Start: replayStart, Dur: replayDur, Ticks: rs.replayTicks,
		Note: fmt.Sprintf("adopted: replayed %d batches", rs.replayed),
	})
	sess := rs.sess
	if s.wal != nil {
		if err := s.wal.Remove(id); err != nil {
			return fmt.Errorf("server: adopting session %s: clearing stale journal: %w", id, err)
		}
		j, err := s.wal.OpenJournal(id, func(wal.Record) error {
			return fmt.Errorf("journal for adopted session %s is not empty", id)
		})
		if err != nil {
			return fmt.Errorf("server: adopting session %s: %w", id, err)
		}
		payload, err := json.Marshal(buildSnapshotRecord(sess))
		if err == nil {
			err = j.Append(recSnapshot, payload)
		}
		if err == nil {
			err = j.Sync()
		}
		if err != nil {
			j.Abandon()
			return fmt.Errorf("server: adopting session %s: %w", id, err)
		}
		sess.jrnl = j
		sess.journaled.Store(true)
	}
	s.trackLive(sess)
	s.metrics.sessionsMigratedIn.Add(1)
	s.enforceHotLimit(sess.tenant, sess)
	return nil
}
