package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/synth"
)

// Spec is one loaded chart: the synthesized monitor plus compile-time
// facts reported by GET /specs. Multi-clock (async) charts are loaded
// and listed but cannot back sessions yet; they are the next ingest
// backend on the roadmap.
type Spec struct {
	Name        string `json:"name"`
	Source      string `json:"-"`
	MultiClock  bool   `json:"multi_clock"`
	Clock       string `json:"clock,omitempty"`
	States      int    `json:"states,omitempty"`
	Transitions int    `json:"transitions,omitempty"`
	// TableBytes is the monitor.Compile table footprint, 0 when the
	// combined support exceeds the compile limit (the interpreted engine
	// still runs such monitors).
	TableBytes int `json:"table_bytes,omitempty"`

	mon *monitor.Monitor
}

// registry holds the loaded specs; hot-loading via POST /specs appends
// under the lock, sessions resolve names at creation time.
type registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
}

func newRegistry() *registry {
	return &registry{specs: make(map[string]*Spec)}
}

// LoadSource parses .cesc source text, synthesizes a monitor per chart,
// and registers the results. Name collisions are rejected unless replace
// is set. Returns the registered spec names.
func (r *registry) LoadSource(src string, replace bool) ([]string, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	specs := make([]*Spec, 0, len(f.Charts))
	for _, n := range f.Charts {
		sp := &Spec{Name: n.Name, Source: parser.Print(n.Name, n.Chart)}
		if _, ok := n.Chart.(*chart.Async); ok {
			sp.MultiClock = true
		} else {
			m, err := synth.Synthesize(n.Chart, nil)
			if err != nil {
				return nil, fmt.Errorf("server: chart %q: %w", n.Name, err)
			}
			sp.mon = m
			sp.Clock = m.Clock
			sp.States = m.States
			sp.Transitions = m.NumTransitions()
			// Exercise the table-driven fast path; monitors too wide to
			// compile still run on the interpreted engine.
			if c, err := monitor.Compile(m); err == nil {
				sp.TableBytes = c.TableBytes()
			}
		}
		specs = append(specs, sp)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !replace {
		for _, sp := range specs {
			if _, ok := r.specs[sp.Name]; ok {
				return nil, fmt.Errorf("server: spec %q already loaded", sp.Name)
			}
		}
	}
	names := make([]string, 0, len(specs))
	for _, sp := range specs {
		r.specs[sp.Name] = sp
		names = append(names, sp.Name)
	}
	return names, nil
}

// Get returns the spec registered under name.
func (r *registry) Get(name string) (*Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.specs[name]
	return sp, ok
}

// List returns all specs sorted by name.
func (r *registry) List() []*Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Spec, 0, len(r.specs))
	for _, sp := range r.specs {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of loaded specs.
func (r *registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.specs)
}
