package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/synth"
)

// Spec is one loaded chart: the synthesized monitor plus compile-time
// facts reported by GET /specs. Multi-clock (async) charts are loaded
// and listed but cannot back sessions yet; they are the next ingest
// backend on the roadmap.
type Spec struct {
	Name        string `json:"name"`
	Source      string `json:"-"`
	MultiClock  bool   `json:"multi_clock"`
	Clock       string `json:"clock,omitempty"`
	States      int    `json:"states,omitempty"`
	Transitions int    `json:"transitions,omitempty"`
	// TableBytes is the monitor.Compile table footprint, 0 when the
	// combined support exceeds the compile limit (the interpreted engine
	// still runs such monitors).
	TableBytes int `json:"table_bytes,omitempty"`
	// ProgramOps is the compiled guard-program instruction count; 0 when
	// the program compiler rejected the monitor (sessions then fall back
	// to the interpreted engine).
	ProgramOps int `json:"program_ops,omitempty"`

	mon *monitor.Monitor
	// compiled is the immutable shared fast-path artifact (monitor +
	// guard programs + interned support); nil when program compilation
	// failed. Sessions bind engines to it, never mutate it.
	compiled *synth.CompiledSpec
}

// registry holds the loaded specs; hot-loading via POST /specs appends
// under the lock, sessions resolve names at creation time.
type registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
}

func newRegistry() *registry {
	return &registry{specs: make(map[string]*Spec)}
}

// compileChart synthesizes one chart into a Spec. A panic anywhere in
// synthesis is converted to an error so a malformed hot-load can never
// take the daemon (or the serving registry) down with it.
func compileChart(name string, c chart.Chart) (sp *Spec, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: chart %q: synthesis panic: %v", name, r)
		}
	}()
	sp = &Spec{Name: name, Source: parser.Print(name, c)}
	if _, ok := c.(*chart.Async); ok {
		sp.MultiClock = true
		return sp, nil
	}
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		return nil, fmt.Errorf("server: chart %q: %w", name, err)
	}
	sp.mon = m
	sp.Clock = m.Clock
	sp.States = m.States
	sp.Transitions = m.NumTransitions()
	// Exercise the table-driven fast path; monitors too wide to
	// compile still run on the interpreted engine.
	if cm, err := monitor.Compile(m); err == nil {
		sp.TableBytes = cm.TableBytes()
	}
	// Compile the shared guard programs (the width-unlimited fast path
	// sessions actually execute); failure degrades to interpretation.
	if cs, err := synth.NewCompiledSpec(m); err == nil {
		sp.compiled = cs
		sp.ProgramOps = cs.Program.Ops()
	}
	return sp, nil
}

// compileSource parses and synthesizes .cesc source without touching any
// registry — the shared compile path of hot-loading and WAL recovery.
func compileSource(src string) ([]*Spec, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	specs := make([]*Spec, 0, len(f.Charts))
	for _, n := range f.Charts {
		sp, err := compileChart(n.Name, n.Chart)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// compileSingleSpec rebuilds one journaled spec from its printed source
// (the WAL recovery path).
func compileSingleSpec(name, src string) (*Spec, error) {
	specs, err := compileSource(src)
	if err != nil {
		return nil, err
	}
	if len(specs) != 1 || specs[0].Name != name {
		return nil, fmt.Errorf("server: journaled source for %q compiled to %d spec(s)", name, len(specs))
	}
	return specs[0], nil
}

// LoadSource parses .cesc source text, synthesizes a monitor per chart,
// and registers the results — swap-on-success: the registry is only
// touched after the entire batch has compiled, so a malformed POST
// leaves every previously loaded version serving. Name collisions are
// rejected unless replace is set. Returns the registered spec names.
func (r *registry) LoadSource(src string, replace bool) ([]string, error) {
	specs, err := compileSource(src)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !replace {
		for _, sp := range specs {
			if _, ok := r.specs[sp.Name]; ok {
				return nil, fmt.Errorf("server: spec %q already loaded", sp.Name)
			}
		}
	}
	names := make([]string, 0, len(specs))
	for _, sp := range specs {
		r.specs[sp.Name] = sp
		names = append(names, sp.Name)
	}
	return names, nil
}

// Get returns the spec registered under name.
func (r *registry) Get(name string) (*Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp, ok := r.specs[name]
	return sp, ok
}

// List returns all specs sorted by name.
func (r *registry) List() []*Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Spec, 0, len(r.specs))
	for _, sp := range r.specs {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of loaded specs.
func (r *registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.specs)
}
