package server

import (
	"runtime"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// promText renders the daemon's metrics in the Prometheus text
// exposition format (version 0.0.4). Label cardinality is bounded by
// construction: `spec` ranges over loaded spec names, `shard` over the
// fixed shard count, and `stage` over the fixed pipeline-stage list.
func (s *Server) promText() []byte {
	snap := s.Metrics()
	w := obs.NewPromWriter()

	counter := func(name, help string, v float64) {
		w.Family(name, "counter", help)
		w.Sample(name, nil, v)
	}
	gauge := func(name, help string, v float64) {
		w.Family(name, "gauge", help)
		w.Sample(name, nil, v)
	}

	w.Family("cescd_build_info", "gauge", "Build identity; always 1, labels carry version and commit.")
	w.Sample("cescd_build_info", []obs.L{{Name: "version", Value: BuildVersion}, {Name: "commit", Value: BuildCommit}}, 1)
	gauge("cescd_start_time_seconds", "Unix time the daemon started.", float64(s.metrics.start.UnixNano())/1e9)
	gauge("cescd_uptime_seconds", "Daemon uptime.", snap.UptimeSec)
	counter("cescd_ticks_total", "Valuation ticks processed.", float64(snap.TicksTotal))
	counter("cescd_batches_total", "Tick batches processed.", float64(snap.BatchesTotal))
	counter("cescd_lane_group_ticks_total", "Ticks stepped via bit-sliced lane groups.", float64(snap.LaneGroupTicks))
	counter("cescd_rejected_total", "Ingest requests rejected with 429.", float64(snap.RejectedTotal))
	counter("cescd_accepts_total", "Monitor acceptances across sessions.", float64(snap.AcceptsTotal))
	counter("cescd_violations_total", "Monitor violations across sessions.", float64(snap.ViolationsTotal))
	gauge("cescd_sessions_active", "Live sessions.", float64(snap.SessionsActive))
	counter("cescd_sessions_created_total", "Sessions created.", float64(snap.SessionsCreated))
	counter("cescd_sessions_evicted_total", "Legacy sum of paged + deleted sessions (pre-split dashboards).", float64(snap.SessionsEvicted))
	counter("cescd_sessions_paged_total", "Sessions checkpointed to the WAL and parked cold.", float64(snap.SessionsPaged))
	counter("cescd_sessions_deleted_total", "Sessions whose state was discarded (delete or WAL-less idle eviction).", float64(snap.SessionsDeleted))
	counter("cescd_sessions_revived_total", "Cold sessions rebuilt from the WAL on first touch.", float64(snap.SessionsRevived))
	gauge("cescd_sessions_cold", "Sessions currently paged out to the WAL.", float64(snap.SessionsCold))
	gauge("cescd_mem_used_bytes", "Estimated bytes held by live session state.", float64(snap.MemUsedBytes))
	gauge("cescd_mem_budget_bytes", "Configured session memory budget (0 = unlimited).", float64(snap.MemBudgetBytes))
	gauge("cescd_governor_level", "Admission governor level (0 ok, 1 shed-wait, 2 throttle-sessions, 3 force-pageout).", float64(snap.GovernorLevel))
	gauge("cescd_governor_score", "Admission governor load score (max of queue, memory, latency fractions).", snap.GovernorScore)
	gauge("cescd_specs_loaded", "Specs loaded in the registry.", float64(snap.SpecsLoaded))

	w.Family("cescd_shed_total", "counter", "Requests degraded by the admission governor, by stage.")
	w.Sample("cescd_shed_total", []obs.L{{Name: "stage", Value: "wait"}}, float64(snap.ShedWait))
	w.Sample("cescd_shed_total", []obs.L{{Name: "stage", Value: "sessions"}}, float64(snap.ShedSessions))
	w.Sample("cescd_shed_total", []obs.L{{Name: "stage", Value: "pageout"}}, float64(snap.ShedPageouts))
	counter("cescd_monitors_quarantined_total", "Monitors fenced off after a step panic.", float64(snap.MonitorsQuarantined))
	counter("cescd_sessions_recovered_total", "Sessions rebuilt from the WAL at startup.", float64(snap.SessionsRecovered))
	counter("cescd_batches_replayed_total", "Journal-tail batches re-applied at startup.", float64(snap.BatchesReplayed))
	counter("cescd_batches_deduped_total", "Duplicate batches absorbed by the seq watermark.", float64(snap.BatchesDeduped))
	counter("cescd_wal_errors_total", "Journal append/snapshot failures.", float64(snap.WALErrors))
	counter("cescd_wal_snapshots_total", "Session checkpoints written.", float64(snap.WALSnapshots))
	counter("cescd_sessions_migrated_out_total", "Sessions handed off to a new owner.", float64(snap.SessionsMigratedOut))
	counter("cescd_sessions_migrated_in_total", "Sessions adopted from a peer (handoff or promotion).", float64(snap.SessionsMigratedIn))
	counter("cescd_trace_spans_total", "Tick-trace spans recorded.", float64(snap.TraceSpans))
	counter("cescd_slow_batches_total", "Batches flagged by the slow-tick watchdog.", float64(snap.SlowBatches))

	if snap.WAL != nil {
		counter("cescd_wal_appends_total", "WAL record appends.", float64(snap.WAL.Appends))
		counter("cescd_wal_syncs_total", "WAL fsyncs issued.", float64(snap.WAL.Syncs))
		counter("cescd_wal_bytes_total", "Bytes appended to the WAL.", float64(snap.WAL.Bytes))
		counter("cescd_wal_replayed_records_total", "WAL records replayed at open.", float64(snap.WAL.Replayed))
		counter("cescd_wal_torn_bytes_total", "Torn trailing bytes discarded at open.", float64(snap.WAL.TornBytes))
		gauge("cescd_journal_bytes", "On-disk bytes of the session journal directory.", float64(snap.JournalBytes))
		gauge("cescd_journal_budget_bytes", "Configured journal disk budget (0 = unlimited).", float64(snap.JournalBudgetBytes))
		counter("cescd_journal_pruned_total", "Cold session journals deleted by the disk budget.", float64(snap.JournalPruned))
	}

	w.Family("cescd_shard_queue_depth", "gauge", "Batches waiting in the shard queue.")
	w.Family("cescd_shard_queue_cap", "gauge", "Shard queue capacity.")
	w.Family("cescd_shard_sessions", "gauge", "Sessions pinned to the shard.")
	w.Family("cescd_shard_ticks_total", "counter", "Ticks processed by the shard.")
	for i, sh := range snap.Shards {
		l := []obs.L{{Name: "shard", Value: strconv.Itoa(i)}}
		w.Sample("cescd_shard_queue_depth", l, float64(sh.QueueDepth))
		w.Sample("cescd_shard_queue_cap", l, float64(sh.QueueCap))
		w.Sample("cescd_shard_sessions", l, float64(sh.Sessions))
		w.Sample("cescd_shard_ticks_total", l, float64(sh.Ticks))
	}

	w.Family("cescd_spec_accepts_total", "counter", "Monitor acceptances per spec (survives session eviction).")
	w.Family("cescd_spec_violations_total", "counter", "Monitor violations per spec (survives session eviction).")
	for _, name := range sortedKeys(snap.PerSpecAccepts, snap.PerSpecViolations) {
		l := []obs.L{{Name: "spec", Value: name}}
		w.Sample("cescd_spec_accepts_total", l, float64(snap.PerSpecAccepts[name]))
		w.Sample("cescd_spec_violations_total", l, float64(snap.PerSpecViolations[name]))
	}

	if len(snap.Tenants) > 0 {
		names := make([]string, 0, len(snap.Tenants))
		for name := range snap.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		w.Family("cescd_tenant_sessions", "gauge", "Sessions per tenant by residency.")
		w.Family("cescd_tenant_ticks_total", "counter", "Ticks accepted per tenant.")
		w.Family("cescd_tenant_rejections_total", "counter", "Quota rejections per tenant by kind.")
		for _, name := range names {
			ts := snap.Tenants[name]
			w.Sample("cescd_tenant_sessions", []obs.L{{Name: "tenant", Value: name}, {Name: "state", Value: "hot"}}, float64(ts.HotSessions))
			w.Sample("cescd_tenant_sessions", []obs.L{{Name: "tenant", Value: name}, {Name: "state", Value: "cold"}}, float64(ts.ColdSessions))
			w.Sample("cescd_tenant_ticks_total", []obs.L{{Name: "tenant", Value: name}}, float64(ts.Ticks))
			for _, kind := range sortedKeys(ts.Rejections) {
				w.Sample("cescd_tenant_rejections_total", []obs.L{{Name: "tenant", Value: name}, {Name: "kind", Value: kind}}, float64(ts.Rejections[kind]))
			}
		}
	}

	bounds := histBoundsSeconds()
	w.Family("cescd_tick_latency_seconds", "histogram", "Enqueue-to-processed latency per tick.")
	counts, sum := s.metrics.latency.buckets()
	w.Histogram("cescd_tick_latency_seconds", nil, bounds, counts, sum)

	w.Family("cescd_stage_latency_seconds", "histogram", "Per-stage pipeline latency.")
	stages := append([]string(nil), stageNames...)
	sort.Strings(stages)
	for _, st := range stages {
		counts, sum := s.metrics.stages[st].buckets()
		w.Histogram("cescd_stage_latency_seconds", []obs.L{{Name: "stage", Value: st}}, bounds, counts, sum)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("cescd_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("cescd_go_heap_alloc_bytes", "Heap bytes allocated and in use.", float64(ms.HeapAlloc))
	gauge("cescd_go_heap_objects", "Live heap objects.", float64(ms.HeapObjects))
	counter("cescd_go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	counter("cescd_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs)/1e9)

	return w.Bytes()
}

// sortedKeys merges and sorts the key sets of the per-spec maps so the
// exposition is deterministic and a spec with only one kind of verdict
// still gets both series.
func sortedKeys(ms ...map[string]uint64) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}
