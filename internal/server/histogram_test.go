package server

import (
	"testing"
	"time"
)

// TestHistogramBucketBoundaries checks that samples landing exactly on a
// bucket's upper bound are counted in that bucket (bounds are inclusive,
// matching Prometheus `le` semantics), and that quantiles over
// boundary-valued samples report the bound itself.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram()
	for _, b := range histBounds {
		h.observe(b) // exactly on the bound: must land at that index
	}
	counts, sum := h.buckets()
	if len(counts) != len(histBounds)+1 {
		t.Fatalf("buckets() returned %d counts, want %d", len(counts), len(histBounds)+1)
	}
	for i := range histBounds {
		if counts[i] != 1 {
			t.Errorf("bucket %d (le=%v) count = %d, want 1", i, histBounds[i], counts[i])
		}
	}
	if counts[len(histBounds)] != 0 {
		t.Errorf("overflow bucket count = %d, want 0", counts[len(histBounds)])
	}
	var wantSum time.Duration
	for _, b := range histBounds {
		wantSum += b
	}
	if got := wantSum.Seconds(); sum != got {
		t.Errorf("sum = %v seconds, want %v", sum, got)
	}

	// One nanosecond past a bound must fall into the next bucket.
	h2 := newHistogram()
	h2.observe(histBounds[0] + time.Nanosecond)
	c2, _ := h2.buckets()
	if c2[0] != 0 || c2[1] != 1 {
		t.Errorf("bound+1ns landed in bucket 0: counts %v", c2[:3])
	}

	// Beyond the last bound lands in the overflow bucket, and quantiles
	// there report the largest bound rather than inventing a value.
	h3 := newHistogram()
	h3.observe(histBounds[len(histBounds)-1] + time.Second)
	c3, _ := h3.buckets()
	if c3[len(histBounds)] != 1 {
		t.Errorf("overflow sample not in overflow bucket: %v", c3)
	}
	if q := h3.quantile(0.99); q != histBounds[len(histBounds)-1] {
		t.Errorf("overflow quantile = %v, want %v", q, histBounds[len(histBounds)-1])
	}
}

// TestHistogramQuantiles checks quantile selection across a known
// distribution: 90 samples in the first bucket and 10 in the fourth give
// p50 at the first bound and p99 at the fourth.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if q := h.quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.observe(histBounds[0])
	}
	for i := 0; i < 10; i++ {
		h.observe(histBounds[3])
	}
	if got := h.quantile(0.50); got != histBounds[0] {
		t.Errorf("p50 = %v, want %v", got, histBounds[0])
	}
	if got := h.quantile(0.90); got != histBounds[0] {
		t.Errorf("p90 = %v, want %v", got, histBounds[0])
	}
	if got := h.quantile(0.99); got != histBounds[3] {
		t.Errorf("p99 = %v, want %v", got, histBounds[3])
	}
	if got := h.quantile(1.0); got != histBounds[3] {
		t.Errorf("p100 = %v, want %v", got, histBounds[3])
	}
	if h.count() != 100 {
		t.Errorf("count = %d, want 100", h.count())
	}
}
