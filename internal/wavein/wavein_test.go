package wavein

import (
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
)

const ocpWave = `
// OCP simple read, hand-drawn: request+accept in cycle 1, response in 2.
clk         : 010101010101
MCmd_rd     : 001100000011
Addr        : 001100000011
SCmd_accept : 001100000011
SResp       : 000011000000
SData       : 000011000000
`

func TestParseWaveform(t *testing.T) {
	w, err := Parse(ocpWave)
	if err != nil {
		t.Fatal(err)
	}
	if w.ClockName != "clk" || w.Width != 12 {
		t.Fatalf("clock %q width %d", w.ClockName, w.Width)
	}
	if len(w.Order) != 5 {
		t.Fatalf("signals = %v", w.Order)
	}
	// Rising edges at columns 1,3,5,7,9,11 -> 6 ticks.
	if w.Ticks() != 6 {
		t.Errorf("ticks = %d, want 6", w.Ticks())
	}
}

func TestWaveformToTraceMatchesMonitor(t *testing.T) {
	w, err := Parse(ocpWave)
	if err != nil {
		t.Fatal(err)
	}
	tr := w.ToTrace(nil)
	m, err := synth.Translate(ocp.SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	// The waveform draws one complete transaction (the second request
	// has no response inside the window).
	if stats.Accepts != 1 {
		t.Errorf("accepts = %d, want 1\ntrace:\n%v", stats.Accepts, tr)
	}
}

func TestWaveformToChartRoundTrips(t *testing.T) {
	w, err := Parse(ocpWave)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := w.ToChart(ChartOptions{Name: "drawn_read"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Clock != "clk" || len(sc.Lines) != 6 {
		t.Fatalf("chart shape: clock %q lines %d", sc.Clock, len(sc.Lines))
	}
	// The formalized chart's monitor detects the waveform's own trace.
	m, err := synth.Translate(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(w.ToTrace(nil)) {
		t.Error("chart built from the waveform rejects the waveform")
	}
}

func TestWaveformNoClockRow(t *testing.T) {
	w, err := Parse(`
a : 101
b : 011
`)
	if err != nil {
		t.Fatal(err)
	}
	if w.ClockName != "" || w.Ticks() != 3 {
		t.Fatalf("clockless waveform: %q %d", w.ClockName, w.Ticks())
	}
	tr := w.ToTrace(nil)
	if !tr[0].Event("a") || tr[0].Event("b") || !tr[2].Event("b") {
		t.Errorf("trace wrong: %v", tr)
	}
}

func TestWaveformPropsAndAbsence(t *testing.T) {
	w, err := Parse(`
busy : 10
go   : 01
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := w.ToTrace(map[string]bool{"busy": true})
	if !tr[0].Prop("busy") || tr[0].Event("busy") {
		t.Error("prop classification wrong")
	}
	sc, err := w.ToChart(ChartOptions{
		Props:          map[string]bool{"busy": true},
		RequireAbsence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tick 0: busy & !go; tick 1: !busy & go.
	if got := sc.Lines[0].Expr().String(); got != "!go & busy" {
		t.Errorf("line 0 = %q", got)
	}
	if got := sc.Lines[1].Expr().String(); got != "go & !busy" {
		t.Errorf("line 1 = %q", got)
	}
}

func TestWaveformDotsAndUnderscores(t *testing.T) {
	w, err := Parse("sig : .._11_..\n")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.ToTrace(nil)
	if tr[2].Event("sig") || !tr[3].Event("sig") || !tr[4].Event("sig") || tr[5].Event("sig") {
		t.Errorf("dot/underscore lows wrong: %v", tr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no colon", "abc\n", "name : bits"},
		{"empty name", " : 101\n", "empty signal"},
		{"bad char", "a : 10x\n", "bad waveform"},
		{"ragged", "a : 101\nb : 10\n", "columns"},
		{"two clocks", "clk : 01\nclock : 01\na : 11\n", "second clock"},
		{"dup", "a : 01\na : 10\n", "duplicate"},
		{"empty", "\n// nothing\n", "no waveform rows"},
		{"clock only", "clk : 0101\n", "no data signals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestToChartNoEdges(t *testing.T) {
	w, err := Parse("clk : 000\nsig : 111\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ToChart(ChartOptions{}); err == nil {
		t.Error("edge-less waveform produced a chart")
	}
}
