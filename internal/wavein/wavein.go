// Package wavein imports ASCII timing diagrams — the notation the paper
// discusses as the industry's informal lingua franca (Section 2, [6,15])
// — as traces and as CESC charts. A waveform is a table of binary
// signals:
//
//	clk     : 0101010101
//	MCmd_rd : 0110000000
//	Addr    : 0110000000
//	SResp   : 0000110000
//
// Columns are samples. When a `clk` row is present, one trace tick is
// taken per rising edge (a 0->1 column pair) with the other signals
// sampled at the edge column; without a clock row every column is a
// tick. Signals named in the prop set become propositions; the rest are
// events.
//
// ToChart turns a waveform directly into an SCESC: each tick's high
// events become the grid line's markers, so a drawn scenario becomes a
// synthesizable specification — the "formalize the timing diagram"
// workflow CESC subsumes.
package wavein

import (
	"fmt"
	"strings"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Waveform is a parsed timing diagram.
type Waveform struct {
	// Order lists signal names in declaration order (clock excluded).
	Order []string
	// Samples maps signal name to its per-column bits.
	Samples map[string][]bool
	// Width is the number of columns.
	Width int
	// ClockName is the detected clock row ("" when absent).
	ClockName string
	clock     []bool
}

// ClockNames are row names recognized as the sampling clock.
var ClockNames = map[string]bool{"clk": true, "clock": true, "CLK": true}

// Parse reads the table. Rows are `name : bits` with '.', '_' and '0'
// all meaning low and '1' meaning high ('.' and '_' make hand-drawn
// waveforms readable). Blank lines and // comments are skipped.
func Parse(src string) (*Waveform, error) {
	w := &Waveform{Samples: map[string][]bool{}, Width: -1}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		name, bitsrc, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("wavein: line %d: expected `name : bits`, got %q", ln+1, line)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("wavein: line %d: empty signal name", ln+1)
		}
		bitsrc = strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' {
				return -1
			}
			return r
		}, bitsrc)
		bits := make([]bool, 0, len(bitsrc))
		for _, c := range bitsrc {
			switch c {
			case '1':
				bits = append(bits, true)
			case '0', '.', '_':
				bits = append(bits, false)
			default:
				return nil, fmt.Errorf("wavein: line %d: bad waveform character %q", ln+1, string(c))
			}
		}
		if w.Width == -1 {
			w.Width = len(bits)
		} else if len(bits) != w.Width {
			return nil, fmt.Errorf("wavein: line %d: signal %q has %d columns, want %d",
				ln+1, name, len(bits), w.Width)
		}
		if ClockNames[name] {
			if w.ClockName != "" {
				return nil, fmt.Errorf("wavein: line %d: second clock row %q", ln+1, name)
			}
			w.ClockName = name
			w.clock = bits
			continue
		}
		if _, dup := w.Samples[name]; dup {
			return nil, fmt.Errorf("wavein: line %d: duplicate signal %q", ln+1, name)
		}
		w.Order = append(w.Order, name)
		w.Samples[name] = bits
	}
	if w.Width <= 0 {
		return nil, fmt.Errorf("wavein: no waveform rows")
	}
	if len(w.Order) == 0 {
		return nil, fmt.Errorf("wavein: no data signals (only a clock row)")
	}
	return w, nil
}

// tickColumns returns the column index sampled for each trace tick.
func (w *Waveform) tickColumns() []int {
	if w.ClockName == "" {
		cols := make([]int, w.Width)
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	var cols []int
	for i := 1; i < w.Width; i++ {
		if w.clock[i] && !w.clock[i-1] {
			cols = append(cols, i)
		}
	}
	return cols
}

// Ticks reports the number of trace ticks the waveform yields.
func (w *Waveform) Ticks() int { return len(w.tickColumns()) }

// ToTrace samples the waveform into a trace. Names in props become
// propositions; everything else is an event.
func (w *Waveform) ToTrace(props map[string]bool) trace.Trace {
	cols := w.tickColumns()
	out := make(trace.Trace, len(cols))
	for t, col := range cols {
		s := event.NewState()
		for _, name := range w.Order {
			if !w.Samples[name][col] {
				continue
			}
			if props[name] {
				s.Props[name] = true
			} else {
				s.Events[name] = true
			}
		}
		out[t] = s
	}
	return out
}

// ChartOptions configures ToChart.
type ChartOptions struct {
	// Name and Clock label the produced SCESC (Clock defaults to the
	// waveform's clock row name or "clk").
	Name, Clock string
	// Props lists signal names to treat as grid-line conditions
	// (propositions) rather than events.
	Props map[string]bool
	// RequireAbsence adds a negated marker for every low event signal,
	// making the chart demand exactly the drawn activity; the default
	// leaves low signals unconstrained.
	RequireAbsence bool
}

// ToChart formalizes the waveform as an SCESC: one grid line per tick,
// with markers for the signals high at that tick.
func (w *Waveform) ToChart(opts ChartOptions) (*chart.SCESC, error) {
	clock := opts.Clock
	if clock == "" {
		clock = w.ClockName
	}
	if clock == "" {
		clock = "clk"
	}
	name := opts.Name
	if name == "" {
		name = "waveform"
	}
	sc := &chart.SCESC{ChartName: name, Clock: clock}
	cols := w.tickColumns()
	if len(cols) == 0 {
		return nil, fmt.Errorf("wavein: waveform has no clock edges to sample")
	}
	for _, col := range cols {
		var line chart.GridLine
		for _, sig := range w.Order {
			high := w.Samples[sig][col]
			if opts.Props[sig] {
				lit := expr.Expr(expr.Pr(sig))
				switch {
				case high:
					line.Cond = expr.And(line.Cond, lit)
				case opts.RequireAbsence:
					line.Cond = expr.And(line.Cond, expr.Not(lit))
				}
				continue
			}
			if high {
				line.Events = append(line.Events, chart.EventSpec{Event: sig})
			} else if opts.RequireAbsence {
				line.Events = append(line.Events, chart.EventSpec{Event: sig, Negated: true})
			}
		}
		sc.Lines = append(sc.Lines, line)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}
