// Package ltlmon is the prior-art baseline of experiment E10: monitor
// construction from temporal-logic properties, in the style the paper
// cites as related work ([17] Geilen's monitor construction, [18] FoCs).
// It implements finite-trace LTL with formula progression (rewriting):
// the monitor state is a formula, each trace element rewrites it, and
// verdicts fall out when it collapses to true or false.
//
// The package exists to reproduce the paper's qualitative claims: that
// capturing long event sequences in temporal logic is awkward (compare
// SequenceFormula's output against the chart constructors) and to give
// the throughput/size baseline for the synthesized automata.
package ltlmon

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Formula is a finite-trace LTL formula.
type Formula interface {
	String() string
	ltl()
}

// Atom embeds a state predicate (over EVENTS and PROP) as a formula.
type Atom struct{ E expr.Expr }

// TrueF and FalseF are the constant formulas.
var (
	TrueF  Formula = Atom{E: expr.True}
	FalseF Formula = Atom{E: expr.False}
)

// NotF is logical negation.
type NotF struct{ X Formula }

// AndF is binary conjunction.
type AndF struct{ L, R Formula }

// OrF is binary disjunction.
type OrF struct{ L, R Formula }

// NextF is the next-state operator X.
type NextF struct{ X Formula }

// UntilF is the until operator (L U R).
type UntilF struct{ L, R Formula }

// EventuallyF is F x = true U x.
type EventuallyF struct{ X Formula }

// AlwaysF is G x.
type AlwaysF struct{ X Formula }

func (Atom) ltl()        {}
func (NotF) ltl()        {}
func (AndF) ltl()        {}
func (OrF) ltl()         {}
func (NextF) ltl()       {}
func (UntilF) ltl()      {}
func (EventuallyF) ltl() {}
func (AlwaysF) ltl()     {}

func (a Atom) String() string        { return a.E.String() }
func (f NotF) String() string        { return "!(" + f.X.String() + ")" }
func (f AndF) String() string        { return "(" + f.L.String() + " && " + f.R.String() + ")" }
func (f OrF) String() string         { return "(" + f.L.String() + " || " + f.R.String() + ")" }
func (f NextF) String() string       { return "X(" + f.X.String() + ")" }
func (f UntilF) String() string      { return "(" + f.L.String() + " U " + f.R.String() + ")" }
func (f EventuallyF) String() string { return "F(" + f.X.String() + ")" }
func (f AlwaysF) String() string     { return "G(" + f.X.String() + ")" }

// Constructors with constant folding.

// Not negates f.
func Not(f Formula) Formula {
	switch v := f.(type) {
	case Atom:
		if expr.Equal(v.E, expr.True) {
			return FalseF
		}
		if expr.Equal(v.E, expr.False) {
			return TrueF
		}
	case NotF:
		return v.X
	}
	return NotF{X: f}
}

// And conjoins, folding constants and duplicates.
func And(l, r Formula) Formula {
	if isFalse(l) || isFalse(r) {
		return FalseF
	}
	if isTrue(l) {
		return r
	}
	if isTrue(r) {
		return l
	}
	if l.String() == r.String() {
		return l
	}
	return AndF{L: l, R: r}
}

// Or disjoins, folding constants and duplicates.
func Or(l, r Formula) Formula {
	if isTrue(l) || isTrue(r) {
		return TrueF
	}
	if isFalse(l) {
		return r
	}
	if isFalse(r) {
		return l
	}
	if l.String() == r.String() {
		return l
	}
	return OrF{L: l, R: r}
}

// Next wraps f in X.
func Next(f Formula) Formula {
	if isFalse(f) {
		return FalseF
	}
	return NextF{X: f}
}

func isTrue(f Formula) bool {
	a, ok := f.(Atom)
	return ok && expr.Equal(a.E, expr.True)
}

func isFalse(f Formula) bool {
	a, ok := f.(Atom)
	return ok && expr.Equal(a.E, expr.False)
}

// Progress rewrites f by one trace element s: the result holds of the
// remaining trace iff f held of s followed by that trace.
func Progress(f Formula, s event.State) Formula {
	switch v := f.(type) {
	case Atom:
		if expr.EvalState(v.E, s) {
			return TrueF
		}
		return FalseF
	case NotF:
		return Not(Progress(v.X, s))
	case AndF:
		return And(Progress(v.L, s), Progress(v.R, s))
	case OrF:
		return Or(Progress(v.L, s), Progress(v.R, s))
	case NextF:
		return v.X
	case UntilF:
		return Or(Progress(v.R, s), And(Progress(v.L, s), v))
	case EventuallyF:
		return Or(Progress(v.X, s), v)
	case AlwaysF:
		return And(Progress(v.X, s), v)
	default:
		return FalseF
	}
}

// SequenceFormula builds the window formula for a pattern: the paper's
// complaint made concrete — an n-tick scenario becomes n-1 nested X
// operators: p0 && X(p1 && X(... pn-1)).
func SequenceFormula(p []expr.Expr) Formula {
	if len(p) == 0 {
		return TrueF
	}
	f := Formula(Atom{E: p[len(p)-1]})
	for i := len(p) - 2; i >= 0; i-- {
		f = And(Atom{E: p[i]}, Next(f))
	}
	return f
}

// Verdict is a three-valued monitoring outcome.
type Verdict int

const (
	// Pending: the formula is not yet decided.
	Pending Verdict = iota
	// Satisfied: the formula collapsed to true.
	Satisfied
	// Violated: the formula collapsed to false.
	Violated
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	default:
		return "pending"
	}
}

// Checker progresses a single formula over a trace — the classic
// rewriting monitor for assertion-style properties (e.g. G(req -> X ack)).
type Checker struct {
	cur     Formula
	verdict Verdict
	steps   int
}

// NewChecker starts a checker on f.
func NewChecker(f Formula) *Checker { return &Checker{cur: f} }

// Step consumes one element; once decided, further steps are no-ops.
func (c *Checker) Step(s event.State) Verdict {
	c.steps++
	if c.verdict != Pending {
		return c.verdict
	}
	c.cur = Progress(c.cur, s)
	if isTrue(c.cur) {
		c.verdict = Satisfied
	} else if isFalse(c.cur) {
		c.verdict = Violated
	}
	return c.verdict
}

// Current returns the residual formula.
func (c *Checker) Current() Formula { return c.cur }

// Verdict returns the current verdict.
func (c *Checker) Verdict() Verdict { return c.verdict }

// Detector detects every occurrence of a window formula by spawning a
// progression instance at each tick (the FoCs-style checker-per-trigger
// discipline). It is the temporal-logic counterpart of the paper's
// scenario detectors, used as the throughput baseline.
type Detector struct {
	window  Formula
	active  []Formula
	scratch []Formula
	accepts int
}

// NewDetector builds a detector for the window formula.
func NewDetector(window Formula) *Detector { return &Detector{window: window} }

// Step consumes one element and reports whether a window completed here.
func (d *Detector) Step(s event.State) bool {
	d.active = append(d.active, d.window)
	hit := false
	d.scratch = d.scratch[:0]
	for _, f := range d.active {
		g := Progress(f, s)
		if isTrue(g) {
			hit = true
			continue
		}
		if isFalse(g) {
			continue
		}
		d.scratch = append(d.scratch, g)
	}
	d.active, d.scratch = d.scratch, d.active
	if hit {
		d.accepts++
	}
	return hit
}

// Accepts counts completed windows so far.
func (d *Detector) Accepts() int { return d.accepts }

// ActiveInstances reports the number of live progression instances — the
// baseline's memory cost the paper's automata avoid.
func (d *Detector) ActiveInstances() int { return len(d.active) }

// Run consumes a trace and returns the ticks at which windows completed.
func (d *Detector) Run(tr trace.Trace) []int {
	var out []int
	for i, s := range tr {
		if d.Step(s) {
			out = append(out, i)
		}
	}
	return out
}

// Size measures a formula's syntactic size (operator and atom count),
// used for the spec-size comparison of experiment E10.
func Size(f Formula) int {
	switch v := f.(type) {
	case Atom:
		return 1 + strings.Count(v.E.String(), "&") + strings.Count(v.E.String(), "|")
	case NotF:
		return 1 + Size(v.X)
	case AndF:
		return 1 + Size(v.L) + Size(v.R)
	case OrF:
		return 1 + Size(v.L) + Size(v.R)
	case NextF:
		return 1 + Size(v.X)
	case UntilF:
		return 1 + Size(v.L) + Size(v.R)
	case EventuallyF:
		return 1 + Size(v.X)
	case AlwaysF:
		return 1 + Size(v.X)
	default:
		panic(fmt.Sprintf("ltlmon: unknown formula %T", f))
	}
}
