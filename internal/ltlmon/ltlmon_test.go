package ltlmon

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/trace"
)

func st(events ...string) event.State {
	return event.NewState().WithEvents(events...)
}

func TestConstructorsFold(t *testing.T) {
	a := Formula(Atom{E: expr.Ev("a")})
	if And(TrueF, a) != a || And(a, TrueF) != a {
		t.Error("And true identity")
	}
	if And(FalseF, a).String() != "false" {
		t.Error("And false absorb")
	}
	if Or(FalseF, a) != a {
		t.Error("Or false identity")
	}
	if Or(TrueF, a).String() != "true" {
		t.Error("Or true absorb")
	}
	if And(a, a) != a || Or(a, a) != a {
		t.Error("idempotence")
	}
	if Not(Not(a)).String() != a.String() {
		t.Error("double negation")
	}
	if Not(TrueF).String() != "false" || Not(FalseF).String() != "true" {
		t.Error("constant negation")
	}
	if Next(FalseF).String() != "false" {
		t.Error("Next false")
	}
}

func TestProgressAtoms(t *testing.T) {
	a := Atom{E: expr.Ev("a")}
	if Progress(a, st("a")) != TrueF {
		t.Error("satisfied atom")
	}
	if Progress(a, st("b")) != FalseF {
		t.Error("unsatisfied atom")
	}
	if got := Progress(NextF{X: a}, st()); got.String() != "a" {
		t.Errorf("X progression = %v", got)
	}
}

func TestProgressUntil(t *testing.T) {
	// a U b: holds of trace a a b.
	f := UntilF{L: Atom{E: expr.Ev("a")}, R: Atom{E: expr.Ev("b")}}
	c := NewChecker(f)
	if v := c.Step(st("a")); v != Pending {
		t.Fatalf("after a: %v", v)
	}
	if v := c.Step(st("a")); v != Pending {
		t.Fatalf("after aa: %v", v)
	}
	if v := c.Step(st("b")); v != Satisfied {
		t.Fatalf("after aab: %v", v)
	}
	// a U b violated by neither-a-nor-b.
	c2 := NewChecker(f)
	if v := c2.Step(st("x")); v != Violated {
		t.Fatalf("violation verdict = %v", v)
	}
}

func TestProgressEventuallyAlways(t *testing.T) {
	fa := EventuallyF{X: Atom{E: expr.Ev("a")}}
	c := NewChecker(fa)
	c.Step(st())
	c.Step(st())
	if v := c.Step(st("a")); v != Satisfied {
		t.Errorf("F a verdict = %v", v)
	}
	ga := AlwaysF{X: Atom{E: expr.Ev("a")}}
	c2 := NewChecker(ga)
	if v := c2.Step(st("a")); v != Pending {
		t.Errorf("G a after a = %v", v)
	}
	if v := c2.Step(st("b")); v != Violated {
		t.Errorf("G a after b = %v", v)
	}
	// Once decided, further steps keep the verdict.
	if v := c2.Step(st("a")); v != Violated {
		t.Errorf("verdict changed: %v", v)
	}
}

func TestSequenceFormula(t *testing.T) {
	p := []expr.Expr{expr.Ev("a"), expr.Ev("b"), expr.Ev("c")}
	f := SequenceFormula(p)
	want := "(a && X((b && X(c))))"
	if got := f.String(); got != want {
		t.Errorf("sequence formula = %q, want %q", got, want)
	}
	if SequenceFormula(nil) != TrueF {
		t.Error("empty sequence formula")
	}
	// The nesting the paper complains about: size grows linearly with
	// pattern length.
	long := make([]expr.Expr, 10)
	for i := range long {
		long[i] = expr.Ev("e")
	}
	if Size(SequenceFormula(long)) <= Size(SequenceFormula(long[:5])) {
		t.Error("formula size does not grow with sequence length")
	}
}

func TestDetectorMatchesWindows(t *testing.T) {
	f := SequenceFormula([]expr.Expr{expr.Ev("a"), expr.Ev("b")})
	d := NewDetector(f)
	tx := trace.Trace{st("a"), st("b"), st("a"), st("a"), st("b")}
	got := d.Run(tx)
	if !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("detector hits = %v, want [1 4]", got)
	}
	if d.Accepts() != 2 {
		t.Errorf("accepts = %d", d.Accepts())
	}
}

func TestDetectorActiveInstances(t *testing.T) {
	// A pattern whose prefix keeps matching grows live instances — the
	// memory cost the synthesized automata avoid.
	f := SequenceFormula([]expr.Expr{expr.Ev("a"), expr.Ev("a"), expr.Ev("b")})
	d := NewDetector(f)
	for i := 0; i < 5; i++ {
		d.Step(st("a"))
	}
	if d.ActiveInstances() < 2 {
		t.Errorf("active instances = %d, want >= 2", d.ActiveInstances())
	}
}

func TestCheckerAssertStyle(t *testing.T) {
	// G(req -> X ack) on a finite trace.
	req := Atom{E: expr.Ev("req")}
	ack := Atom{E: expr.Ev("ack")}
	g := AlwaysF{X: Or(Not(req), Next(ack))}
	c := NewChecker(g)
	c.Step(st("req"))
	if v := c.Step(st("ack")); v != Pending {
		t.Errorf("conforming so far = %v", v)
	}
	c.Step(st("req"))
	if v := c.Step(st("nothing")); v != Violated {
		t.Errorf("missing ack = %v", v)
	}
}

func TestVerdictString(t *testing.T) {
	if Pending.String() != "pending" || Satisfied.String() != "satisfied" || Violated.String() != "violated" {
		t.Error("verdict names wrong")
	}
}

func TestFormulaStrings(t *testing.T) {
	a := Atom{E: expr.Ev("a")}
	b := Atom{E: expr.Ev("b")}
	cases := []struct {
		f    Formula
		want string
	}{
		{NotF{X: a}, "!(a)"},
		{AndF{L: a, R: b}, "(a && b)"},
		{OrF{L: a, R: b}, "(a || b)"},
		{NextF{X: a}, "X(a)"},
		{UntilF{L: a, R: b}, "(a U b)"},
		{EventuallyF{X: a}, "F(a)"},
		{AlwaysF{X: a}, "G(a)"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("string = %q, want %q", got, tc.want)
		}
	}
}

func TestSizeCountsOperators(t *testing.T) {
	a := Atom{E: expr.Ev("a")}
	if Size(a) != 1 {
		t.Errorf("atom size = %d", Size(a))
	}
	f := AndF{L: NextF{X: a}, R: UntilF{L: a, R: NotF{X: a}}}
	if got := Size(f); got != 7 {
		t.Errorf("size = %d, want 7", got)
	}
	if !strings.Contains(EventuallyF{X: a}.String(), "F(") {
		t.Error("eventual string")
	}
	if got := Size(EventuallyF{X: a}) + Size(AlwaysF{X: a}) + Size(OrF{L: a, R: a}); got != 2+2+3 {
		t.Errorf("combined size = %d", got)
	}
}
