package ltlmon

import (
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

func TestParseLTLForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a", "a"},
		{"a && b", "(a && b)"},
		{"a || b && c", "(a || (b && c))"},
		{"!a", "!(a)"},
		{"X a", "X(a)"},
		{"F (a && b)", "F((a && b))"},
		{"G (req || !ack)", "G((req || !(ack)))"},
		{"a U b", "(a U b)"},
		{"a U b U c", "((a U b) U c)"},
		{"next a", "X(a)"},
		{"eventually a", "F(a)"},
		{"always a", "G(a)"},
		{"not a", "!(a)"},
		{"true", "true"},
		{"false || a", "a"},
		{"G (req && X ack || !req)", "G(((req && X(ack)) || !(req)))"},
	}
	for _, tc := range cases {
		f, err := Parse(tc.src, nil)
		if err != nil {
			t.Errorf("parse %q: %v", tc.src, err)
			continue
		}
		if got := f.String(); got != tc.want {
			t.Errorf("parse %q = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseLTLKindResolution(t *testing.T) {
	kindOf := func(n string) (event.Kind, bool) {
		if n == "busy" {
			return event.KindProp, true
		}
		if n == "req" {
			return event.KindEvent, true
		}
		return 0, false
	}
	f := MustParse("G (busy || req)", kindOf)
	g, ok := f.(AlwaysF)
	if !ok {
		t.Fatalf("formula = %T", f)
	}
	or := g.X.(OrF)
	if _, isProp := or.L.(Atom).E.(expr.PropRef); !isProp {
		t.Error("busy not resolved as prop")
	}
	if _, isEv := or.R.(Atom).E.(expr.EventRef); !isEv {
		t.Error("req not resolved as event")
	}
	if _, err := Parse("unknown_zz", kindOf); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestParseLTLErrors(t *testing.T) {
	for _, src := range []string{
		"", "a &&", "&& a", "(a", "a)", "a b", "X", "G", "a U", "?", "a # b",
	} {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("source %q accepted", src)
		}
	}
}

func TestParsedFormulaChecks(t *testing.T) {
	// The parsed bounded-response assertion behaves like the built one.
	f := MustParse("G (!req || X ack)", nil)
	c := NewChecker(f)
	c.Step(st("req"))
	if v := c.Step(st("ack")); v != Pending {
		t.Errorf("verdict = %v", v)
	}
	c.Step(st("req"))
	if v := c.Step(st()); v != Violated {
		t.Errorf("verdict = %v, want violated", v)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("((", nil)
}
