package ltlmon

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/event"
	"repro/internal/expr"
)

// Parse parses a finite-trace LTL formula. Grammar (loosest first):
//
//	formula := until
//	until   := or ( "U" or )*            left-associative
//	or      := and ( ("||" | "or") and )*
//	and     := unary ( ("&&" | "and") unary )*
//	unary   := ("!" | "not") unary
//	         | ("X" | "next") unary
//	         | ("F" | "eventually") unary
//	         | ("G" | "always") unary
//	         | primary
//	primary := "true" | "false" | ident | "(" formula ")"
//
// Identifiers resolve through kindOf exactly as in expr.Parse (nil means
// every identifier is an event). The temporal operator names are
// case-sensitive single letters (X, F, G, U) or the spelled keywords.
func Parse(src string, kindOf expr.KindResolver) (Formula, error) {
	if kindOf == nil {
		kindOf = expr.EventsByDefault
	}
	p := &ltlParser{src: src, kindOf: kindOf}
	p.next()
	f, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	if p.tok != leof {
		return nil, p.errorf("unexpected %q after formula", p.lit)
	}
	return f, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string, kindOf expr.KindResolver) Formula {
	f, err := Parse(src, kindOf)
	if err != nil {
		panic(err)
	}
	return f
}

type ltlTok int

const (
	leof ltlTok = iota
	lident
	land
	lor
	lnot
	lnext
	lfinally
	lglobally
	luntil
	llparen
	lrparen
	lerror
)

type ltlParser struct {
	src    string
	pos    int
	tok    ltlTok
	lit    string
	kindOf expr.KindResolver
}

func (p *ltlParser) errorf(format string, args ...any) error {
	return fmt.Errorf("ltl: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *ltlParser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = leof, ""
		return
	}
	c := p.src[p.pos]
	switch c {
	case '&':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '&' {
			p.pos++
		}
		p.tok, p.lit = land, "&&"
		return
	case '|':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
		}
		p.tok, p.lit = lor, "||"
		return
	case '!':
		p.pos++
		p.tok, p.lit = lnot, "!"
		return
	case '(':
		p.pos++
		p.tok, p.lit = llparen, "("
		return
	case ')':
		p.pos++
		p.tok, p.lit = lrparen, ")"
		return
	}
	if !isLTLIdentStart(c) {
		p.tok, p.lit = lerror, string(c)
		return
	}
	start := p.pos
	for p.pos < len(p.src) && isLTLIdentPart(p.src[p.pos]) {
		p.pos++
	}
	word := p.src[start:p.pos]
	switch word {
	case "X", "next":
		p.tok, p.lit = lnext, word
	case "F", "eventually":
		p.tok, p.lit = lfinally, word
	case "G", "always":
		p.tok, p.lit = lglobally, word
	case "U", "until":
		p.tok, p.lit = luntil, word
	default:
		switch strings.ToLower(word) {
		case "and":
			p.tok, p.lit = land, word
		case "or":
			p.tok, p.lit = lor, word
		case "not":
			p.tok, p.lit = lnot, word
		default:
			p.tok, p.lit = lident, word
		}
	}
}

func isLTLIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isLTLIdentPart(c byte) bool {
	return isLTLIdentStart(c) || ('0' <= c && c <= '9')
}

func (p *ltlParser) parseUntil() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.tok == luntil {
		p.next()
		right, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		left = UntilF{L: left, R: right}
	}
	return left, nil
}

func (p *ltlParser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == lor {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *ltlParser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == land {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *ltlParser) parseUnary() (Formula, error) {
	switch p.tok {
	case lnot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	case lnext:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Next(x), nil
	case lfinally:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return EventuallyF{X: x}, nil
	case lglobally:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return AlwaysF{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *ltlParser) parsePrimary() (Formula, error) {
	switch p.tok {
	case llparen:
		p.next()
		f, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		if p.tok != lrparen {
			return nil, p.errorf("expected ')', got %q", p.lit)
		}
		p.next()
		return f, nil
	case lident:
		word := p.lit
		p.next()
		switch word {
		case "true":
			return TrueF, nil
		case "false":
			return FalseF, nil
		}
		kind, ok := p.kindOf(word)
		if !ok {
			return nil, p.errorf("unknown symbol %q", word)
		}
		if kind == event.KindProp {
			return Atom{E: expr.Pr(word)}, nil
		}
		return Atom{E: expr.Ev(word)}, nil
	case leof:
		return nil, p.errorf("unexpected end of formula")
	default:
		return nil, p.errorf("unexpected token %q", p.lit)
	}
}
