package synth

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// Synthesize compiles any single-clock chart into a monitor:
//
//   - SCESC: the paper's algorithm Tr (Translate);
//   - sequential / synchronous-parallel compositions of SCESCs: merged
//     into one pattern (concatenation / per-tick conjunction) so the full
//     algorithm, including scoreboard causality instrumentation, applies;
//   - alternative, loop and other nestings: compiled via a symbolic NFA
//     and subset construction into a deterministic detector (causality
//     arrows inside the leaves are enforced by the window semantics —
//     a fully matched window fixes the tick order of its events);
//   - implication: trigger detector chained to an exact-start consequent
//     obligation with an explicit violation state (assertion mode).
//
// Asynchronous (multi-clock) charts are handled by package mclock, which
// builds one local monitor per clock domain on top of this function.
func Synthesize(c chart.Chart, opts *Options) (*monitor.Monitor, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch v := c.(type) {
	case *chart.SCESC:
		return Translate(v, opts)
	case *chart.Seq, *chart.Par:
		if mp, err := mergePattern(c); err != nil {
			return nil, err
		} else if mp != nil {
			return synthesizeMerged(chartName(c, "composite"), clockOf(c), mp, opts)
		}
		return synthesizeNFA(c, opts)
	case *chart.Alt, *chart.Loop:
		return synthesizeNFA(c, opts)
	case *chart.Implies:
		return synthesizeImplies(v, opts)
	case *chart.Async:
		return nil, fmt.Errorf("synth: chart %q is multi-clock; synthesize it with package mclock", v.ChartName)
	default:
		return nil, fmt.Errorf("synth: unsupported chart node %T", c)
	}
}

func chartName(c chart.Chart, fallback string) string {
	if n := c.Name(); n != "" {
		return n
	}
	return fallback
}

func clockOf(c chart.Chart) string {
	cks := c.Clocks()
	if len(cks) > 0 {
		return cks[0]
	}
	return ""
}

// mergedPattern is a pattern plus the causality instrumentation sites
// gathered (with tick offsets) from the merged SCESC leaves.
type mergedPattern struct {
	p      Pattern
	addsAt map[int][]string
	chkAt  map[int][]string
}

// mergePattern flattens Seq (concatenation) and Par (per-tick overlay) of
// SCESC leaves into a single pattern with offset-adjusted causality
// sites. It returns (nil, nil) when the chart shape is not mergeable
// (e.g. contains Alt or Loop), and an error for malformed overlays.
func mergePattern(c chart.Chart) (*mergedPattern, error) {
	switch v := c.(type) {
	case *chart.SCESC:
		mp := &mergedPattern{
			p:      ExtractPattern(v),
			addsAt: make(map[int][]string),
			chkAt:  make(map[int][]string),
		}
		sites, err := resolveArrows(v)
		if err != nil {
			return nil, err
		}
		for _, s := range sites {
			mp.addsAt[s.srcTick] = append(mp.addsAt[s.srcTick], s.srcEvent)
			if s.dstTick != NoTick {
				mp.chkAt[s.dstTick] = append(mp.chkAt[s.dstTick], s.srcEvent)
			}
		}
		return mp, nil
	case *chart.Seq:
		out := &mergedPattern{addsAt: make(map[int][]string), chkAt: make(map[int][]string)}
		for _, ch := range v.Children {
			mp, err := mergePattern(ch)
			if err != nil || mp == nil {
				return nil, err
			}
			off := len(out.p)
			out.p = append(out.p, mp.p...)
			for t, evs := range mp.addsAt {
				out.addsAt[off+t] = append(out.addsAt[off+t], evs...)
			}
			for t, evs := range mp.chkAt {
				out.chkAt[off+t] = append(out.chkAt[off+t], evs...)
			}
		}
		return out, nil
	case *chart.Par:
		var parts []*mergedPattern
		width := -1
		for _, ch := range v.Children {
			mp, err := mergePattern(ch)
			if err != nil || mp == nil {
				return nil, err
			}
			if width == -1 {
				width = len(mp.p)
			} else if len(mp.p) != width {
				return nil, fmt.Errorf("synth: chart %q: par overlay children differ in tick count (%d vs %d)",
					v.ChartName, width, len(mp.p))
			}
			parts = append(parts, mp)
		}
		out := &mergedPattern{
			p:      make(Pattern, width),
			addsAt: make(map[int][]string),
			chkAt:  make(map[int][]string),
		}
		for i := 0; i < width; i++ {
			terms := make([]expr.Expr, len(parts))
			for j, mp := range parts {
				terms[j] = mp.p[i]
			}
			out.p[i] = expr.And(terms...)
		}
		for _, mp := range parts {
			for t, evs := range mp.addsAt {
				out.addsAt[t] = append(out.addsAt[t], evs...)
			}
			for t, evs := range mp.chkAt {
				out.chkAt[t] = append(out.chkAt[t], evs...)
			}
		}
		return out, nil
	default:
		return nil, nil
	}
}

func synthesizeMerged(name, clock string, mp *mergedPattern, opts *Options) (*monitor.Monitor, error) {
	m, err := ComputeTransitionFunc(name, clock, mp.p, opts)
	if err != nil {
		return nil, err
	}
	instrument(m, mp.addsAt, mp.chkAt)
	if opts.NameGuards {
		nameGuards(m)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: produced invalid monitor: %w", err)
	}
	return m, nil
}

// synthesizeNFA compiles the chart through the symbolic NFA and subset
// construction, producing a prefix detector (Sigma* . L).
func synthesizeNFA(c chart.Chart, opts *Options) (*monitor.Monitor, error) {
	a := newNFA()
	frag, err := buildFragment(a, c)
	if err != nil {
		return nil, err
	}
	a.start = frag.start
	a.accept = frag.accept
	if a.acceptsEmpty() {
		return nil, fmt.Errorf("synth: chart %q admits the empty window; its detector would accept vacuously at every tick",
			chartName(c, "composite"))
	}
	m, err := a.determinize(determinizeOpts{
		name:       chartName(c, "composite"),
		clock:      clockOf(c),
		prefixLoop: true,
	})
	if err != nil {
		return nil, err
	}
	if opts.NameGuards {
		nameGuards(m)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: produced invalid monitor: %w", err)
	}
	return m, nil
}

func buildFragment(a *nfa, c chart.Chart) (fragment, error) {
	switch v := c.(type) {
	case *chart.SCESC:
		return a.patternFragment(ExtractPattern(v)), nil
	case *chart.Seq:
		fs := make([]fragment, 0, len(v.Children))
		for _, ch := range v.Children {
			f, err := buildFragment(a, ch)
			if err != nil {
				return fragment{}, err
			}
			fs = append(fs, f)
		}
		return a.seqFragment(fs...), nil
	case *chart.Alt:
		fs := make([]fragment, 0, len(v.Children))
		for _, ch := range v.Children {
			f, err := buildFragment(a, ch)
			if err != nil {
				return fragment{}, err
			}
			fs = append(fs, f)
		}
		return a.altFragment(fs...), nil
	case *chart.Par:
		mp, err := mergePattern(v)
		if err != nil {
			return fragment{}, err
		}
		if mp != nil {
			return a.patternFragment(mp.p), nil
		}
		// General overlay: intersect the children's window languages via
		// DFA product and embed the result.
		d, err := parWindowDFA(v)
		if err != nil {
			return fragment{}, err
		}
		return dfaFragment(a, d), nil
	case *chart.Loop:
		var loopErr error
		max := v.Max
		if max == chart.Unbounded {
			max = unboundedMax
		}
		f := a.loopFragment(v.Min, max, func() fragment {
			bf, err := buildFragment(a, v.Body)
			if err != nil && loopErr == nil {
				loopErr = err
			}
			return bf
		})
		if loopErr != nil {
			return fragment{}, loopErr
		}
		return f, nil
	default:
		return fragment{}, fmt.Errorf("synth: chart node %T cannot appear inside a composed window language", c)
	}
}

// synthesizeImplies builds the assertion monitor for Trigger => Consequent:
// a detector for the trigger whose acceptances divert into an obligation
// for the consequent. With MaxDelay = k the consequent's first element
// may arrive up to k ticks late (wait states); failing the obligation —
// stalling past the deadline or breaking the consequent once started —
// enters an explicit violation state, completing it is the acceptance.
//
// The obligation commits to the first input matching the consequent's
// opening element; a trace where a later start would also have satisfied
// the deadline counts against the committed attempt (first-match
// semantics, the usual checker discipline).
func synthesizeImplies(v *chart.Implies, opts *Options) (*monitor.Monitor, error) {
	trig, err := Synthesize(v.Trigger, &Options{Strategy: opts.Strategy, History: opts.History})
	if err != nil {
		return nil, fmt.Errorf("synth: implies trigger: %w", err)
	}
	mp, err := mergePattern(v.Consequent)
	if err != nil {
		return nil, fmt.Errorf("synth: implies consequent: %w", err)
	}
	if mp == nil {
		return nil, fmt.Errorf("synth: chart %q: implies consequent must be pattern-shaped (SCESC/seq/par)",
			v.ChartName)
	}
	pc := mp.p
	if err := pc.Validate(); err != nil {
		return nil, fmt.Errorf("synth: implies consequent: %w", err)
	}

	nT := trig.States
	mLen := len(pc)
	delay := v.MaxDelay
	// Layout: [0, nT) trigger states; nT+i (i=0..delay) wait states
	// expecting the consequent's opening element; then chain states for
	// consequent positions 1..mLen-1; then satisfied; then violation.
	waitBase := nT
	chainBase := waitBase + delay + 1 // chainBase + (j-1) awaits PC[j]
	satisfied := chainBase + (mLen - 1)
	violation := satisfied + 1
	name := chartName(v, "implies")
	m := monitor.New(name, clockOf(v), violation+1)
	m.Initial = trig.Initial
	m.Final = satisfied
	m.Finals = []int{satisfied}
	m.Violation = violation
	m.Linear = false

	// afterOpen is where consuming PC[0] leads.
	afterOpen := chainBase
	if mLen == 1 {
		afterOpen = satisfied
	}
	redirect := func(to int) int {
		if trig.IsFinal(to) {
			return waitBase // trigger completed: obligation starts next tick
		}
		return to
	}
	for s := 0; s < nT; s++ {
		for _, t := range trig.Trans[s] {
			m.AddTransition(s, monitor.Transition{To: redirect(t.To), Guard: t.Guard, Actions: t.Actions})
		}
	}
	// Wait states: the opening element, a stall (within the deadline), or
	// a violation (past it).
	for i := 0; i <= delay; i++ {
		m.AddTransition(waitBase+i, monitor.Transition{To: afterOpen, Guard: pc[0]})
		stallTo := violation
		if i < delay {
			stallTo = waitBase + i + 1
		}
		m.AddTransition(waitBase+i, monitor.Transition{To: stallTo, Guard: expr.Not(pc[0])})
	}
	// Chain states: exact matching of the remaining consequent elements.
	for j := 1; j < mLen; j++ {
		to := chainBase + j
		if j == mLen-1 {
			to = satisfied
		}
		m.AddTransition(chainBase+j-1, monitor.Transition{To: to, Guard: pc[j]})
		m.AddTransition(chainBase+j-1, monitor.Transition{To: violation, Guard: expr.Not(pc[j])})
	}
	// The satisfied state resumes trigger detection with the initial
	// state's behaviour.
	for _, t := range trig.Trans[trig.Initial] {
		m.AddTransition(satisfied, monitor.Transition{To: redirect(t.To), Guard: t.Guard, Actions: t.Actions})
	}
	if opts.NameGuards {
		nameGuards(m)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: produced invalid implies monitor: %w", err)
	}
	return m, nil
}

// WindowPattern reports whether c is pattern-shaped — an SCESC, or a
// Seq/Par composition of pattern-shaped charts that merges into a single
// linear pattern — and returns the merged pattern. Pattern-shaped charts
// have an exact reference matcher (ExactMatcher), which the conformance
// harness uses to sandwich the history abstractions.
func WindowPattern(c chart.Chart) (Pattern, bool) {
	mp, err := mergePattern(c)
	if err != nil || mp == nil {
		return nil, false
	}
	return mp.p, true
}
