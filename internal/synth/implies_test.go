package synth

import (
	"testing"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// TestImpliesDeadlineSatisfiedWithinWindow: with MaxDelay = 2 the
// consequent may start up to two ticks late.
func TestImpliesDeadlineSatisfiedWithinWindow(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "deadline",
		Trigger:    leaf("t", "req"),
		Consequent: leaf("c", "resp"),
		MaxDelay:   2,
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lag := 0; lag <= 2; lag++ {
		b := trace.NewBuilder().Tick().Events("req").Idle(lag).Tick().Events("resp").Idle(2)
		tr := b.Build()
		eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
		st := eng.Run(tr)
		if st.Violations != 0 {
			t.Errorf("lag %d: %d violations on in-deadline response", lag, st.Violations)
		}
		if st.Accepts != 1 {
			t.Errorf("lag %d: accepts = %d, want 1", lag, st.Accepts)
		}
	}
}

func TestImpliesDeadlineMissed(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "deadline",
		Trigger:    leaf("t", "req"),
		Consequent: leaf("c", "resp"),
		MaxDelay:   2,
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Response three ticks late: one tick past the deadline.
	tr := trace.NewBuilder().Tick().Events("req").Idle(3).Tick().Events("resp").Build()
	eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
	st := eng.Run(tr)
	if st.Violations != 1 {
		t.Errorf("violations = %d, want 1 (deadline missed)", st.Violations)
	}
	if st.Accepts != 0 {
		t.Errorf("accepts = %d, want 0", st.Accepts)
	}
	// Oracle agrees there is a violation.
	if v := semantics.ImpliesViolations(c, tr); len(v) != 1 {
		t.Errorf("oracle violations = %v, want one", v)
	}
}

func TestImpliesDeadlineOracleAgreement(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "deadline",
		Trigger:    leaf("t", "a"),
		Consequent: leaf("c", "b", "c"),
		MaxDelay:   1,
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic probes around the deadline boundary.
	cases := []struct {
		tr       trace.Trace
		violated bool
	}{
		{trace.NewBuilder().Tick().Events("a").Tick().Events("b").Tick().Events("c").Idle(1).Build(), false},
		{trace.NewBuilder().Tick().Events("a").Idle(1).Tick().Events("b").Tick().Events("c").Idle(1).Build(), false},
		{trace.NewBuilder().Tick().Events("a").Idle(2).Tick().Events("b").Tick().Events("c").Idle(1).Build(), true},
		{trace.NewBuilder().Tick().Events("a").Tick().Events("b").Tick().Events("x").Idle(1).Build(), true},
	}
	for i, tc := range cases {
		eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
		st := eng.Run(tc.tr)
		if got := st.Violations > 0; got != tc.violated {
			t.Errorf("case %d: monitor violated=%v, want %v", i, got, tc.violated)
		}
		oracle := len(semantics.ImpliesViolations(c, tc.tr)) > 0
		if oracle != tc.violated {
			t.Errorf("case %d: oracle violated=%v, want %v", i, oracle, tc.violated)
		}
	}
}

func TestImpliesNegativeDelayRejected(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "bad",
		Trigger:    leaf("t", "a"),
		Consequent: leaf("c", "b"),
		MaxDelay:   -1,
	}
	if err := c.Validate(); err == nil {
		t.Error("negative deadline accepted")
	}
}

// TestImpliesWindowSemanticsWithDelay: the window-language reading also
// admits delayed instances.
func TestImpliesWindowSemanticsWithDelay(t *testing.T) {
	c := &chart.Implies{
		Trigger:    leaf("t", "a"),
		Consequent: leaf("c", "b"),
		MaxDelay:   1,
	}
	tr := trace.NewBuilder().Tick().Events("a").Idle(1).Tick().Events("b").Build()
	ls := semantics.MatchLengths(c, tr, 0)
	if len(ls) != 1 || ls[0] != 3 {
		t.Errorf("lengths = %v, want [3]", ls)
	}
}
