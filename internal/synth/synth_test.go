package synth

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// fig5 builds the paper's Figure 5 SCESC: tick 0 carries p1:e1 and e2,
// tick 1 is empty, tick 2 carries p3:e3, with a causality arrow e1 -> e3.
func fig5() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "fig5",
		Clock:     "clk",
		Instances: []string{"A", "B"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: "e1", Guard: expr.Pr("p1"), From: "A", To: "B"},
				{Event: "e2", From: "B", To: "A"},
			}},
			{},
			{Events: []chart.EventSpec{
				{Event: "e3", Guard: expr.Pr("p3"), From: "A", To: "B"},
			}},
		},
		Arrows: []chart.Arrow{{From: "e1", To: "e3"}},
	}
}

func TestExtractPattern(t *testing.T) {
	p := ExtractPattern(fig5())
	if len(p) != 3 {
		t.Fatalf("pattern length = %d, want 3", len(p))
	}
	if got := p[0].String(); got != "p1 & e1 & e2" {
		t.Errorf("P[0] = %q", got)
	}
	if got := p[1].String(); got != "true" {
		t.Errorf("P[1] = %q (empty grid line must be TRUE)", got)
	}
	if got := p[2].String(); got != "p3 & e3" {
		t.Errorf("P[2] = %q", got)
	}
}

func TestExtractPatternNegatedAndCond(t *testing.T) {
	sc := &chart.SCESC{
		ChartName: "neg", Clock: "clk",
		Lines: []chart.GridLine{
			{
				Events: []chart.EventSpec{
					{Event: "req"},
					{Event: "abort", Negated: true},
				},
				Cond: expr.Pr("ready"),
			},
		},
	}
	p := ExtractPattern(sc)
	if got := p[0].String(); got != "req & !abort & ready" {
		t.Errorf("pattern = %q", got)
	}
}

func TestPatternValidateRejectsUnsat(t *testing.T) {
	p := Pattern{expr.And(expr.Ev("x"), expr.Not(expr.Ev("x")))}
	if err := p.Validate(); err == nil {
		t.Error("contradictory grid line not rejected")
	}
}

func TestPatternOrthogonal(t *testing.T) {
	orth := Pattern{
		expr.And(expr.Ev("a"), expr.Not(expr.Ev("b"))),
		expr.And(expr.Ev("b"), expr.Not(expr.Ev("a"))),
	}
	if ok, err := orth.Orthogonal(); err != nil || !ok {
		t.Errorf("orthogonal pattern reported %v, %v", ok, err)
	}
	nonOrth := Pattern{expr.Ev("a"), expr.Ev("b")}
	if ok, _ := nonOrth.Orthogonal(); ok {
		t.Error("non-orthogonal pattern reported orthogonal")
	}
}

// TestFig5MonitorStructure checks the synthesized monitor against the
// paper's drawn automaton: 4 states, anchor guard a with Add_evt(e1),
// TRUE middle step, final guard conjoined with Chk_evt(e1), give-up edge
// carrying Del_evt(e1) (experiment E5).
func TestFig5MonitorStructure(t *testing.T) {
	m := MustTranslate(fig5(), &Options{NameGuards: true})
	if m.States != 4 || m.Initial != 0 || m.Final != 3 {
		t.Fatalf("shape = %d states initial %d final %d, want 4/0/3", m.States, m.Initial, m.Final)
	}
	// State 0: a / Add_evt(e1) -> 1, else stay.
	adv0 := findTransition(t, m, 0, 1)
	if got := adv0.Guard.String(); got != "p1 & e1 & e2" {
		t.Errorf("anchor guard = %q", got)
	}
	wantActions(t, adv0, "Add_evt(e1)")
	// State 1: TRUE -> 2 (b = TRUE).
	adv1 := findTransition(t, m, 1, 2)
	if got := adv1.Guard.String(); got != "true" {
		t.Errorf("middle guard = %q, want true", got)
	}
	if len(m.Trans[1]) != 1 {
		t.Errorf("state 1 has %d transitions, want only the TRUE advance", len(m.Trans[1]))
	}
	// State 2: c = p3 & e3 & Chk_evt(e1) -> 3.
	adv2 := findTransition(t, m, 2, 3)
	if got := adv2.Guard.String(); got != "p3 & e3 & Chk_evt(e1)" {
		t.Errorf("final guard = %q", got)
	}
	// State 2 re-anchor to 1 on a fresh anchor (paper's second `a` edge).
	re2 := findTransition(t, m, 2, 1)
	if !strings.Contains(re2.Guard.String(), "p1 & e1 & e2") {
		t.Errorf("re-anchor guard = %q", re2.Guard)
	}
	// State 2 give-up edge to 0 carries Del_evt(e1) (paper's d edge).
	giveup := findTransition(t, m, 2, 0)
	wantActions(t, giveup, "Del_evt(e1)")
	// From the final state, abandoning carries Del_evt(e1) too.
	fin := findTransition(t, m, 3, 0)
	wantActions(t, fin, "Del_evt(e1)")
	if ok, err := m.GuardsDisjoint(); !ok {
		t.Errorf("synthesized guards overlap: %v", err)
	}
	if ok, err := m.Total(); !ok {
		t.Errorf("synthesized automaton not total: %v", err)
	}
}

func findTransition(t *testing.T, m *monitor.Monitor, from, to int) monitor.Transition {
	t.Helper()
	for _, tr := range m.Trans[from] {
		if tr.To == to {
			return tr
		}
	}
	t.Fatalf("no transition %d -> %d in:\n%s", from, to, m)
	return monitor.Transition{}
}

func wantActions(t *testing.T, tr monitor.Transition, want ...string) {
	t.Helper()
	var got []string
	for _, a := range tr.Actions {
		got = append(got, a.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("actions = %v, want %v", got, want)
	}
}

// TestFig5MonitorRuns drives the Fig. 5 monitor over conforming and
// perturbed traces.
func TestFig5MonitorRuns(t *testing.T) {
	m := MustTranslate(fig5(), nil)
	good := trace.NewBuilder().
		Tick().Events("e1", "e2").Props("p1").
		Tick().
		Tick().Events("e3").Props("p3").
		Build()
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(good) {
		t.Fatal("conforming trace not accepted")
	}
	// Missing guard p3 at the last tick.
	bad := trace.NewBuilder().
		Tick().Events("e1", "e2").Props("p1").
		Tick().
		Tick().Events("e3").
		Build()
	if eng.Accepts(bad) {
		t.Error("trace missing p3 accepted")
	}
	// Scenario embedded after noise.
	noisy := trace.Concat(trace.NewBuilder().Idle(5).Build(), good, trace.NewBuilder().Idle(2).Build())
	if !eng.Accepts(noisy) {
		t.Error("embedded scenario not detected")
	}
}

func TestTranslateRejectsInvalidChart(t *testing.T) {
	bad := &chart.SCESC{ChartName: "empty", Clock: "clk"}
	if _, err := Translate(bad, nil); err == nil {
		t.Error("chart with no grid lines accepted")
	}
}

func TestTranslateRejectsUnsatisfiableLine(t *testing.T) {
	sc := &chart.SCESC{
		ChartName: "unsat", Clock: "clk",
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: "x"}, {Event: "x", Negated: true}}},
		},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("chart validation should reject contradictory line")
	}
}

func TestGuardNaming(t *testing.T) {
	m := MustTranslate(fig5(), &Options{NameGuards: true})
	legend := m.GuardLegend()
	if len(legend) == 0 {
		t.Fatal("no guard legend produced")
	}
	if !strings.HasPrefix(legend[0], "a = ") {
		t.Errorf("legend[0] = %q, want to start with 'a = '", legend[0])
	}
}

// --- randomized cross-validation ---------------------------------------

var poolSyms = []string{"a", "b", "c", "d"}

// randPattern draws a random satisfiable pattern of the given length over
// a small event pool, with elements that are conjunctions of 1-2 literals.
func randPattern(rng *rand.Rand, length int) Pattern {
	p := make(Pattern, length)
	for i := range p {
		for {
			nlits := 1 + rng.Intn(2)
			var terms []expr.Expr
			for j := 0; j < nlits; j++ {
				lit := expr.Ev(poolSyms[rng.Intn(len(poolSyms))])
				if rng.Intn(3) == 0 {
					lit = expr.Not(lit)
				}
				terms = append(terms, lit)
			}
			e := expr.And(terms...)
			if !expr.Equal(e, expr.False) {
				p[i] = e
				break
			}
		}
	}
	return p
}

// oneHotPattern draws a pattern whose elements each assert exactly one
// pool symbol and the absence of all others. When distinct is true the
// hot symbols are pairwise different (so the pattern is orthogonal and
// its length is capped by the pool size); otherwise repeats are allowed.
func oneHotPattern(rng *rand.Rand, length int, distinct bool) Pattern {
	if distinct && length > len(poolSyms) {
		length = len(poolSyms)
	}
	perm := rng.Perm(len(poolSyms))
	p := make(Pattern, length)
	for i := range p {
		var hot int
		if distinct {
			hot = perm[i]
		} else {
			hot = rng.Intn(len(poolSyms))
		}
		var terms []expr.Expr
		for j, s := range poolSyms {
			if j == hot {
				terms = append(terms, expr.Ev(s))
			} else {
				terms = append(terms, expr.Not(expr.Ev(s)))
			}
		}
		p[i] = expr.And(terms...)
	}
	return p
}

// eqTicks compares tick slices treating nil and empty as equal.
func eqTicks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func patternSupport(t *testing.T, p Pattern) *event.Support {
	t.Helper()
	sup, err := p.Support()
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

// acceptTicks runs the monitor over the trace and returns the ticks at
// which it accepted.
func acceptTicks(m *monitor.Monitor, tr trace.Trace) []int {
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	var out []int
	for i, s := range tr {
		if eng.Step(s).Outcome == monitor.Accepted {
			out = append(out, i)
		}
	}
	return out
}

func buildPatternMonitor(t *testing.T, p Pattern, opts *Options) *monitor.Monitor {
	t.Helper()
	m, err := ComputeTransitionFunc("rand", "clk", p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDirectVsEnumerateEquivalence cross-checks the symbolic construction
// against the paper's literal per-valuation pseudocode: same accept ticks
// on random traces, for both history abstractions (experiment E9).
func TestDirectVsEnumerateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		p := randPattern(rng, 2+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		for _, h := range []History{HistImplication, HistSatisfiable} {
			md := buildPatternMonitor(t, p, &Options{Strategy: StrategyDirect, History: h})
			me := buildPatternMonitor(t, p, &Options{Strategy: StrategyEnumerate, History: h})
			sup := patternSupport(t, p)
			gen := trace.NewGenerator(sup, int64(round*100+int(h)), 0.4)
			for reps := 0; reps < 5; reps++ {
				tr := gen.Trace(30)
				got := acceptTicks(md, tr)
				want := acceptTicks(me, tr)
				if !eqTicks(got, want) {
					t.Fatalf("round %d hist %v: direct %v != enumerate %v\npattern: %v\ntrace:\n%s",
						round, h, got, want, p, tr)
				}
			}
		}
	}
}

// TestSoundnessImplication: with the implication abstraction the monitor
// never accepts at a tick where no window actually ends (it may miss
// overlapping matches on non-orthogonal patterns).
func TestSoundnessImplication(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 60; round++ {
		p := randPattern(rng, 2+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		m := buildPatternMonitor(t, p, &Options{History: HistImplication})
		sup := patternSupport(t, p)
		gen := trace.NewGenerator(sup, int64(round), 0.5)
		tr := gen.Trace(40)
		exact := NewExactMatcher(p).MatchesIn(tr)
		exactSet := make(map[int]bool)
		for _, e := range exact {
			exactSet[e] = true
		}
		for _, a := range acceptTicks(m, tr) {
			if !exactSet[a] {
				t.Fatalf("round %d: monitor accepted at %d but no window ends there\npattern %v\ntrace:\n%s",
					round, a, p, tr)
			}
		}
	}
}

// TestCompletenessSatisfiable: with the satisfiability abstraction the
// monitor never misses a window (it may over-accept on non-orthogonal
// patterns).
func TestCompletenessSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 60; round++ {
		p := randPattern(rng, 2+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		m := buildPatternMonitor(t, p, &Options{History: HistSatisfiable})
		sup := patternSupport(t, p)
		gen := trace.NewGenerator(sup, int64(round), 0.5)
		tr := gen.Trace(40)
		acc := make(map[int]bool)
		for _, a := range acceptTicks(m, tr) {
			acc[a] = true
		}
		for _, e := range NewExactMatcher(p).MatchesIn(tr) {
			if !acc[e] {
				t.Fatalf("round %d: window ends at %d but monitor missed it\npattern %v\ntrace:\n%s",
					round, e, p, tr)
			}
		}
	}
}

// TestOrthogonalPatternsExact: on orthogonal patterns both abstractions
// agree exactly with the ground-truth matcher.
func TestOrthogonalPatternsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		p := oneHotPattern(rng, 2+rng.Intn(3), true)
		if ok, err := p.Orthogonal(); err != nil || !ok {
			t.Fatalf("one-hot pattern not orthogonal: %v", err)
		}
		sup := patternSupport(t, p)
		gen := trace.NewGenerator(sup, int64(round), 0.3)
		tr := gen.Trace(40)
		want := NewExactMatcher(p).MatchesIn(tr)
		for _, h := range []History{HistImplication, HistSatisfiable} {
			m := buildPatternMonitor(t, p, &Options{History: h})
			got := acceptTicks(m, tr)
			if !eqTicks(got, want) {
				t.Fatalf("round %d hist %v: accepts %v != exact %v\npattern %v", round, h, got, want, p)
			}
		}
	}
}

// TestTheoremSemanticCorrespondence is experiment E3: the paper's result
// [[C]] = Sigma* . L(M) . Sigma^omega, checked on random SCESCs against
// the denotational oracle — the monitor accepts at exactly the ticks
// where a satisfying window ends.
func TestTheoremSemanticCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 40; round++ {
		p := oneHotPattern(rng, 1+rng.Intn(5), false)
		sc := &chart.SCESC{ChartName: "rand", Clock: "clk", Lines: make([]chart.GridLine, len(p))}
		for i, e := range p {
			sc.Lines[i] = chart.GridLine{Cond: e}
		}
		m, err := Translate(sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		sup := patternSupport(t, p)
		gen := trace.NewGenerator(sup, int64(1000+round), 0.3)
		tr := gen.Trace(50)
		got := acceptTicks(m, tr)
		want := semantics.MatchEndTicks(sc, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: monitor %v != oracle %v\nchart pattern %v", round, got, want, p)
		}
	}
}

// TestSynthesizedAlwaysTotalAndDisjoint: structural invariants of the
// construction, randomized.
func TestSynthesizedAlwaysTotalAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 30; round++ {
		p := randPattern(rng, 1+rng.Intn(5))
		if p.Validate() != nil {
			continue
		}
		for _, h := range []History{HistImplication, HistSatisfiable} {
			m := buildPatternMonitor(t, p, &Options{History: h})
			if ok, err := m.Total(); !ok {
				t.Fatalf("round %d: not total: %v\n%s", round, err, m)
			}
			if ok, err := m.GuardsDisjoint(); !ok {
				t.Fatalf("round %d: guards overlap: %v\n%s", round, err, m)
			}
		}
	}
}

func TestExactMatcherWindowMatches(t *testing.T) {
	p := Pattern{expr.Ev("x"), expr.Ev("y")}
	tr := trace.NewBuilder().
		Tick().Events("x").
		Tick().Events("y").
		Tick().Events("x").
		Tick().Events("x").
		Tick().Events("y").
		Build()
	x := NewExactMatcher(p)
	got := x.MatchesIn(tr)
	want := []int{1, 4}
	if !eqTicks(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
	if x.Accepts() != 2 {
		t.Errorf("accepts = %d, want 2", x.Accepts())
	}
	if !WindowMatches(p, tr, 0) || WindowMatches(p, tr, 1) || !WindowMatches(p, tr, 3) {
		t.Error("WindowMatches misjudged windows")
	}
	if WindowMatches(p, tr, -1) || WindowMatches(p, tr, 4) {
		t.Error("WindowMatches out-of-range not rejected")
	}
}

func TestStrategyAndHistoryStrings(t *testing.T) {
	if StrategyDirect.String() != "direct" || StrategyEnumerate.String() != "enumerate" {
		t.Error("strategy names wrong")
	}
	if HistImplication.String() != "implication" || HistSatisfiable.String() != "satisfiable" {
		t.Error("history names wrong")
	}
}

func TestEnumerateSupportCap(t *testing.T) {
	p := make(Pattern, 1)
	var terms []expr.Expr
	for i := 0; i < maxEnumerateBits+1; i++ {
		terms = append(terms, expr.Ev(fmt.Sprintf("s%02d", i)))
	}
	p[0] = expr.And(terms...)
	if _, err := ComputeTransitionFunc("big", "clk", p, &Options{Strategy: StrategyEnumerate}); err == nil {
		t.Error("oversized support accepted by enumerate strategy")
	}
	if _, err := ComputeTransitionFunc("big", "clk", p, &Options{Strategy: StrategyDirect}); err != nil {
		t.Errorf("direct strategy should handle wide supports: %v", err)
	}
}
