package synth

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// nfa is a symbolic nondeterministic finite automaton over guard
// expressions, used to compile the structural constructs (alternative,
// loop, nested sequence) whose window languages are not single patterns.
// Construction is Thompson-style with a single start and accept state.
type nfa struct {
	states int
	edges  [][]nfaEdge
	eps    [][]int
	start  int
	accept int
}

type nfaEdge struct {
	to    int
	guard expr.Expr
}

func newNFA() *nfa { return &nfa{} }

func (a *nfa) addState() int {
	a.states++
	a.edges = append(a.edges, nil)
	a.eps = append(a.eps, nil)
	return a.states - 1
}

func (a *nfa) addEdge(from, to int, g expr.Expr) {
	a.edges[from] = append(a.edges[from], nfaEdge{to: to, guard: g})
}

func (a *nfa) addEps(from, to int) {
	a.eps[from] = append(a.eps[from], to)
}

// fragment is an NFA piece with dangling start/accept, composed
// Thompson-style inside one arena automaton.
type fragment struct {
	start, accept int
}

// patternFragment lays out a linear chain for a pattern.
func (a *nfa) patternFragment(p Pattern) fragment {
	start := a.addState()
	cur := start
	for _, e := range p {
		next := a.addState()
		a.addEdge(cur, next, e)
		cur = next
	}
	return fragment{start: start, accept: cur}
}

// seqFragment chains fragments with epsilon moves.
func (a *nfa) seqFragment(fs ...fragment) fragment {
	if len(fs) == 0 {
		s := a.addState()
		return fragment{start: s, accept: s}
	}
	for i := 0; i+1 < len(fs); i++ {
		a.addEps(fs[i].accept, fs[i+1].start)
	}
	return fragment{start: fs[0].start, accept: fs[len(fs)-1].accept}
}

// altFragment branches between fragments.
func (a *nfa) altFragment(fs ...fragment) fragment {
	start := a.addState()
	accept := a.addState()
	for _, f := range fs {
		a.addEps(start, f.start)
		a.addEps(f.accept, accept)
	}
	return fragment{start: start, accept: accept}
}

// loopFragment repeats body between min and max times (max = Unbounded
// for a Kleene-style tail). copies is the fragment factory, called once
// per unrolled instance, because fragments cannot be shared.
func (a *nfa) loopFragment(min, max int, copies func() fragment) fragment {
	start := a.addState()
	accept := a.addState()
	cur := start
	// Mandatory copies.
	for i := 0; i < min; i++ {
		f := copies()
		a.addEps(cur, f.start)
		cur = f.accept
	}
	if max == unboundedMax {
		// Kleene tail: loop one more copy any number of times.
		f := copies()
		a.addEps(cur, accept)
		a.addEps(cur, f.start)
		a.addEps(f.accept, cur)
	} else {
		// Optional copies up to max.
		for i := min; i < max; i++ {
			a.addEps(cur, accept)
			f := copies()
			a.addEps(cur, f.start)
			cur = f.accept
		}
		a.addEps(cur, accept)
	}
	return fragment{start: start, accept: accept}
}

const unboundedMax = -1

// closure computes the epsilon closure of a state set (bitmask over
// states, capped by maxNFAStates).
func (a *nfa) closure(set []bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// acceptsEmpty reports whether the accept state is epsilon-reachable from
// start — i.e. the window language contains the empty window, which would
// make a detector accept vacuously at every tick.
func (a *nfa) acceptsEmpty() bool {
	set := make([]bool, a.states)
	set[a.start] = true
	a.closure(set)
	return set[a.accept]
}

// support returns the union input support of all edge guards.
func (a *nfa) support() (*event.Support, error) {
	var syms []event.Symbol
	for _, es := range a.edges {
		for _, e := range es {
			syms = append(syms, expr.SupportSymbols(e.guard)...)
		}
	}
	return event.NewSupport(syms)
}

// determinizeOpts configures determinize.
type determinizeOpts struct {
	name  string
	clock string
	// prefixLoop adds a true self-loop on the NFA start before subset
	// construction, turning the window matcher into the paper's
	// Sigma*-prefixed detector.
	prefixLoop bool
}

// determinize runs subset construction over the valuation classes of the
// NFA's support, merging same-target classes back into symbolic guards.
// The result is a total deterministic monitor whose Finals are every
// subset containing the NFA accept state.
func (a *nfa) determinize(opts determinizeOpts) (*monitor.Monitor, error) {
	sup, err := a.support()
	if err != nil {
		return nil, err
	}
	if sup.Len() > maxEnumerateBits {
		return nil, fmt.Errorf("synth: composed chart support of %d symbols exceeds determinization limit %d",
			sup.Len(), maxEnumerateBits)
	}
	nv := sup.NumValuations()

	// Precompute guard satisfaction per edge per valuation.
	type edgeRef struct{ from, idx int }
	var refs []edgeRef
	for s, es := range a.edges {
		for i := range es {
			refs = append(refs, edgeRef{from: s, idx: i})
		}
	}
	sat := make([][]bool, len(refs))
	for ri, r := range refs {
		g := a.edges[r.from][r.idx].guard
		sat[ri] = make([]bool, nv)
		for v := uint64(0); v < nv; v++ {
			sat[ri][v] = g.Eval(event.ValuationContext{Sup: sup, Val: event.Valuation(v)})
		}
	}
	edgeIndex := make(map[[2]int]int, len(refs))
	for ri, r := range refs {
		edgeIndex[[2]int{r.from, r.idx}] = ri
	}

	keyOf := func(set []bool) string {
		b := make([]byte, (len(set)+7)/8)
		for i, in := range set {
			if in {
				b[i/8] |= 1 << uint(i%8)
			}
		}
		return string(b)
	}

	start := make([]bool, a.states)
	start[a.start] = true
	a.closure(start)
	if opts.prefixLoop {
		// The Sigma* prefix: start states stay live forever; model by
		// re-adding the start closure to every subset below.
	}

	type dstate struct {
		set []bool
		id  int
	}
	var dstates []dstate
	index := map[string]int{}
	addDState := func(set []bool) int {
		k := keyOf(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(dstates)
		cp := make([]bool, len(set))
		copy(cp, set)
		dstates = append(dstates, dstate{set: cp, id: id})
		index[k] = id
		return id
	}
	startID := addDState(start)

	type trans struct {
		to int
		ms []event.Valuation
	}
	var allTrans [][]trans

	for cur := 0; cur < len(dstates); cur++ {
		set := dstates[cur].set
		byTarget := map[string]*trans{}
		var order []string
		for v := uint64(0); v < nv; v++ {
			next := make([]bool, a.states)
			for s, in := range set {
				if !in {
					continue
				}
				for i := range a.edges[s] {
					ri := edgeIndex[[2]int{s, i}]
					if sat[ri][v] {
						next[a.edges[s][i].to] = true
					}
				}
			}
			if opts.prefixLoop {
				next[a.start] = true
			}
			a.closure(next)
			k := keyOf(next)
			t, ok := byTarget[k]
			if !ok {
				id := addDState(next)
				t = &trans{to: id}
				byTarget[k] = t
				order = append(order, k)
			}
			t.ms = append(t.ms, event.Valuation(v))
		}
		row := make([]trans, 0, len(order))
		for _, k := range order {
			row = append(row, *byTarget[k])
		}
		allTrans = append(allTrans, row)
	}

	m := monitor.New(opts.name, opts.clock, len(dstates))
	m.Initial = startID
	var finals []int
	for _, d := range dstates {
		if d.set[a.accept] {
			finals = append(finals, d.id)
		}
	}
	sort.Ints(finals)
	if len(finals) == 0 {
		return nil, fmt.Errorf("synth: composed chart %q has an empty language", opts.name)
	}
	m.Final = finals[0]
	m.Finals = finals
	for s, row := range allTrans {
		for _, t := range row {
			m.AddTransition(s, monitor.Transition{To: t.to, Guard: expr.FromMinterms(sup, t.ms)})
		}
	}
	return m, nil
}
