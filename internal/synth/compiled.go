package synth

import (
	"fmt"
	"sync"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
)

// CompiledSpec is the immutable per-chart artifact of synthesis on the
// fast path: the synthesized automaton, every guard compiled to a flat
// slot-indexed program, and the interned input support. One CompiledSpec
// is built when a chart is loaded and then shared — by reference, never
// copied — across every session running the monitor; sessions carry only
// mutable engine state bound to it (see monitor.Program.NewEngine and
// NewEngineVocab).
type CompiledSpec struct {
	Monitor *monitor.Monitor
	Program *monitor.Program

	tableOnce sync.Once
	table     *monitor.Table
	tableErr  error
}

// Support returns the interned input support of the compiled monitor;
// its slot order is the packing order for Program-bound engines.
func (cs *CompiledSpec) Support() *event.Support { return cs.Program.Support() }

// Table returns the shared transition table of the monitor, building it
// on first use (the table tier is optional: wide monitors exceed the
// compile cap and keep running on the program tier). The result is
// cached — every lane bank and scalar cursor of the spec shares one
// table — and safe for concurrent callers.
func (cs *CompiledSpec) Table() (*monitor.Table, error) {
	cs.tableOnce.Do(func() {
		cs.table, cs.tableErr = monitor.CompileTable(cs.Monitor)
	})
	return cs.table, cs.tableErr
}

// NewCompiledSpec compiles the guard programs of an already-synthesized
// monitor.
func NewCompiledSpec(m *monitor.Monitor) (*CompiledSpec, error) {
	p, err := monitor.CompileProgram(m)
	if err != nil {
		return nil, fmt.Errorf("synth: compiling %q: %w", m.Name, err)
	}
	return &CompiledSpec{Monitor: m, Program: p}, nil
}

// CompileSpec synthesizes a single-clock chart and compiles it into the
// shared immutable form.
func CompileSpec(c chart.Chart, opts *Options) (*CompiledSpec, error) {
	m, err := Synthesize(c, opts)
	if err != nil {
		return nil, err
	}
	return NewCompiledSpec(m)
}
