package synth

import (
	"math/rand"
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func TestMinimizePreservesBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for round := 0; round < 20; round++ {
		c := &chart.Alt{
			ChartName: "alt",
			Children: []chart.Chart{
				exactLeaf(rng, "a1", 1+rng.Intn(3)),
				exactLeaf(rng, "a2", 1+rng.Intn(3)),
			},
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		min, err := Minimize(m)
		if err != nil {
			t.Fatal(err)
		}
		if min.States > m.States {
			t.Fatalf("round %d: minimization grew the monitor: %d -> %d", round, m.States, min.States)
		}
		tr := randomTraceFor(t, c, int64(round+500), 50)
		if got, want := acceptTicks(min, tr), acceptTicks(m, tr); !eqTicks(got, want) {
			t.Fatalf("round %d: minimized accepts %v != original %v", round, got, want)
		}
	}
}

func TestMinimizeShrinksRedundantStates(t *testing.T) {
	// Hand-built monitor with two behaviourally identical intermediate
	// states: 0 -a-> 1, 0 -b-> 2, and both 1 and 2 advance to the final
	// state on c. The minimizer must merge 1 and 2.
	m := monitor.New("redundant", "clk", 4)
	a, b, c := expr.Ev("a"), expr.Ev("b"), expr.Ev("c")
	m.AddTransition(0, monitor.Transition{To: 1, Guard: expr.And(a, expr.Not(b))})
	m.AddTransition(0, monitor.Transition{To: 2, Guard: expr.And(b, expr.Not(a))})
	m.AddTransition(0, monitor.Transition{To: 0, Guard: expr.Or(expr.And(a, b), expr.And(expr.Not(a), expr.Not(b)))})
	for _, s := range []int{1, 2} {
		m.AddTransition(s, monitor.Transition{To: 3, Guard: c})
		m.AddTransition(s, monitor.Transition{To: 0, Guard: expr.Not(c)})
	}
	m.AddTransition(3, monitor.Transition{To: 0, Guard: expr.True})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.States != 3 {
		t.Fatalf("minimized states = %d, want 3 (1 and 2 equivalent)\n%s", min.States, min)
	}
	// Behaviour preserved.
	sup, err := m.Support()
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(sup, 4, 0.4)
	for i := 0; i < 10; i++ {
		tr := gen.Trace(40)
		if got, want := acceptTicks(min, tr), acceptTicks(m, tr); !eqTicks(got, want) {
			t.Fatalf("minimized diverged: %v vs %v", got, want)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	c := &chart.Alt{ChartName: "alt", Children: []chart.Chart{
		leaf("a", "p", "q"),
		leaf("b", "r"),
	}}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	min1, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	min2, err := Minimize(min1)
	if err != nil {
		t.Fatal(err)
	}
	if min2.States != min1.States {
		t.Errorf("second minimization changed state count: %d -> %d", min1.States, min2.States)
	}
}

func TestMinimizeLeavesScoreboardMonitorsAlone(t *testing.T) {
	m := MustTranslate(fig5(), nil) // carries Add/Del/Chk instrumentation
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min != m {
		t.Error("monitor with scoreboard actions was rewritten")
	}
}

func TestMinimizeActionFreeLinear(t *testing.T) {
	// An arrow-free SCESC monitor is action-free; minimization must
	// preserve detection exactly even if it restructures states.
	sc := leaf("plain", "a", "b", "a")
	m := MustTranslate(sc, nil)
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := event.NewSupport(chart.Symbols(sc))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(sup, 9, 0.5)
	for i := 0; i < 10; i++ {
		tr := gen.Trace(40)
		if got, want := acceptTicks(min, tr), acceptTicks(m, tr); !eqTicks(got, want) {
			t.Fatalf("minimized linear monitor diverged: %v vs %v", got, want)
		}
	}
	if _, err := monitor.NewEngine(min, nil, monitor.ModeDetect), error(nil); err != nil {
		t.Fatal(err)
	}
}
