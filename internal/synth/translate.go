package synth

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/monitor"
)

// Options configures the translation.
type Options struct {
	// Strategy selects the transition-function construction; the zero
	// value is StrategyDirect.
	Strategy Strategy
	// History selects the suffix_of history abstraction; the zero value
	// is HistImplication (matches the paper's drawn monitors).
	History History
	// NameGuards attaches a, b, c... legend names to the distinct guards
	// in paper-figure style.
	NameGuards bool
}

// Translate implements the paper's main routine of algorithm Tr for a
// single SCESC: n+1 states for n grid lines, the input alphabet is the
// pattern's support, initial state 0 and final state n, the transition
// function from compute_transition_func, and causality instrumentation
// for every arrow.
func Translate(sc *chart.SCESC, opts *Options) (*monitor.Monitor, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	p := ExtractPattern(sc)
	name := sc.ChartName
	if name == "" {
		name = "scesc"
	}
	m, err := ComputeTransitionFunc(name, sc.Clock, p, opts)
	if err != nil {
		return nil, fmt.Errorf("synth: chart %q: %w", sc.ChartName, err)
	}
	if err := AddCausalityCheck(m, p, sc); err != nil {
		return nil, err
	}
	if opts.NameGuards {
		nameGuards(m)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: produced invalid monitor: %w", err)
	}
	return m, nil
}

// MustTranslate is Translate that panics on error; for tests and fixtures.
func MustTranslate(sc *chart.SCESC, opts *Options) *monitor.Monitor {
	m, err := Translate(sc, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// nameGuards assigns single-letter names a, b, c... to distinct guard
// expressions in first-use order, mirroring the paper's figure legends.
func nameGuards(m *monitor.Monitor) {
	next := 0
	seen := make(map[string]bool)
	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			key := t.Guard.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			m.NameGuard(guardName(next), t.Guard)
			next++
		}
	}
}

func guardName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if i < len(letters) {
		return string(letters[i])
	}
	return fmt.Sprintf("g%d", i)
}
