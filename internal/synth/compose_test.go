package synth

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// leaf builds a one-or-more-tick SCESC whose lines require exactly the
// named events (one event per line).
func leaf(name string, events ...string) *chart.SCESC {
	sc := &chart.SCESC{ChartName: name, Clock: "clk"}
	for _, e := range events {
		sc.Lines = append(sc.Lines, chart.GridLine{
			Events: []chart.EventSpec{{Event: e}},
		})
	}
	return sc
}

// oracleEnds is the reference answer for detection ticks.
func oracleEnds(c chart.Chart, tr trace.Trace) []int {
	return semantics.MatchEndTicks(c, tr)
}

// exactLeaf builds an SCESC whose lines are one-hot over the pool (so
// monitors are exact and oracle comparison is an equality).
func exactLeaf(rng *rand.Rand, name string, length int) *chart.SCESC {
	sc := &chart.SCESC{ChartName: name, Clock: "clk"}
	p := oneHotPattern(rng, length, false)
	for _, e := range p {
		sc.Lines = append(sc.Lines, chart.GridLine{Cond: e})
	}
	return sc
}

func randomTraceFor(t *testing.T, c chart.Chart, seed int64, n int) trace.Trace {
	t.Helper()
	sup, err := event.NewSupport(chart.Symbols(c))
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewGenerator(sup, seed, 0.35).Trace(n)
}

func TestSeqCompositionMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 25; round++ {
		c := &chart.Seq{
			ChartName: "seq",
			Children: []chart.Chart{
				exactLeaf(rng, "s1", 1+rng.Intn(2)),
				exactLeaf(rng, "s2", 1+rng.Intn(2)),
			},
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTraceFor(t, c, int64(round), 40)
		got := acceptTicks(m, tr)
		want := oracleEnds(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: seq monitor %v != oracle %v", round, got, want)
		}
	}
}

func TestAltCompositionMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for round := 0; round < 25; round++ {
		c := &chart.Alt{
			ChartName: "alt",
			Children: []chart.Chart{
				exactLeaf(rng, "a1", 1+rng.Intn(2)),
				exactLeaf(rng, "a2", 2+rng.Intn(2)),
			},
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTraceFor(t, c, int64(round+100), 40)
		got := acceptTicks(m, tr)
		want := oracleEnds(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: alt monitor %v != oracle %v\nchart %s", round, got, want, chart.Describe(c))
		}
	}
}

func TestLoopBoundedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 20; round++ {
		c := &chart.Loop{
			ChartName: "loop",
			Body:      exactLeaf(rng, "body", 1+rng.Intn(2)),
			Min:       1,
			Max:       2 + rng.Intn(2),
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTraceFor(t, c, int64(round+200), 40)
		got := acceptTicks(m, tr)
		want := oracleEnds(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: loop monitor %v != oracle %v\nchart %s", round, got, want, chart.Describe(c))
		}
	}
}

func TestLoopUnboundedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 15; round++ {
		c := &chart.Loop{
			ChartName: "star",
			Body:      exactLeaf(rng, "body", 1+rng.Intn(2)),
			Min:       1,
			Max:       chart.Unbounded,
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTraceFor(t, c, int64(round+300), 35)
		got := acceptTicks(m, tr)
		want := oracleEnds(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: unbounded loop monitor %v != oracle %v", round, got, want)
		}
	}
}

func TestParOverlayMatchesOracle(t *testing.T) {
	// Overlay: one child requires the request events, the other requires
	// the grant events, on the same two ticks.
	c := &chart.Par{
		ChartName: "par",
		Children: []chart.Chart{
			leaf("reqs", "req", "gnt"),
			leaf("oks", "ok_a", "ok_b"),
		},
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Linear {
		t.Error("pattern-merged par should be a linear monitor")
	}
	good := trace.NewBuilder().
		Tick().Events("req", "ok_a").
		Tick().Events("gnt", "ok_b").
		Build()
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(good) {
		t.Error("overlay-conforming trace rejected")
	}
	half := trace.NewBuilder().
		Tick().Events("req").
		Tick().Events("gnt", "ok_b").
		Build()
	if eng.Accepts(half) {
		t.Error("trace satisfying only one overlay child accepted")
	}
}

func TestParUnequalWidthRejected(t *testing.T) {
	c := &chart.Par{
		ChartName: "bad",
		Children: []chart.Chart{
			leaf("one", "x"),
			leaf("two", "y", "z"),
		},
	}
	if _, err := Synthesize(c, nil); err == nil {
		t.Error("unequal overlay widths accepted")
	}
}

func TestSeqPreservesCausality(t *testing.T) {
	// A two-leaf sequence where the first leaf carries an arrow: the
	// merged monitor must still carry Add/Chk/Del instrumentation with
	// offset ticks.
	first := &chart.SCESC{
		ChartName: "first", Clock: "clk",
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: "start", Label: "s"}}},
			{Events: []chart.EventSpec{{Event: "ack", Label: "k"}}},
		},
		Arrows: []chart.Arrow{{From: "s", To: "k"}},
	}
	second := &chart.SCESC{
		ChartName: "second", Clock: "clk",
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: "done"}}},
		},
	}
	c := &chart.Seq{ChartName: "seq", Children: []chart.Chart{first, second}}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 4 {
		t.Fatalf("merged seq has %d states, want 4", m.States)
	}
	adv0 := findTransition(t, m, 0, 1)
	wantActions(t, adv0, "Add_evt(start)")
	adv1 := findTransition(t, m, 1, 2)
	if !strings.Contains(adv1.Guard.String(), "Chk_evt(start)") {
		t.Errorf("ack guard %q missing Chk_evt(start)", adv1.Guard)
	}
}

func TestImpliesMonitorAssertSemantics(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "req_then_resp",
		Trigger:    leaf("trigger", "req"),
		Consequent: leaf("consequent", "resp"),
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Violation == monitor.NoState {
		t.Fatal("implies monitor lacks a violation state")
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
	// req followed by resp: satisfied instance, no violation.
	ok := trace.NewBuilder().
		Tick().Events("req").
		Tick().Events("resp").
		Tick().
		Build()
	st := eng.Run(ok)
	if st.Violations != 0 {
		t.Errorf("conforming trace produced %d violations", st.Violations)
	}
	if st.Accepts != 1 {
		t.Errorf("conforming trace produced %d accepts, want 1", st.Accepts)
	}
	// req not followed by resp: violation.
	eng2 := monitor.NewEngine(m, nil, monitor.ModeAssert)
	bad := trace.NewBuilder().
		Tick().Events("req").
		Tick().
		Tick().
		Build()
	st2 := eng2.Run(bad)
	if st2.Violations != 1 {
		t.Errorf("violating trace produced %d violations, want 1", st2.Violations)
	}
}

func TestImpliesViolationsMatchOracle(t *testing.T) {
	c := &chart.Implies{
		ChartName:  "impl",
		Trigger:    leaf("t", "a"),
		Consequent: leaf("c", "b", "c"),
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for round := 0; round < 20; round++ {
		tr := randomTraceFor(t, c, int64(round+rng.Intn(1000)), 30)
		eng := monitor.NewEngine(m, nil, monitor.ModeAssert)
		st := eng.Run(tr)
		oracleViol := semantics.ImpliesViolations(c, tr)
		// The monitor processes triggers one at a time (no overlap
		// tracking), so exact counts can differ when triggers overlap;
		// require agreement on the zero/nonzero verdict for traces
		// without overlapping triggers.
		if !hasAdjacent(tr, "a") {
			gotViol := st.Violations > 0
			wantViol := len(oracleViol) > 0
			if gotViol != wantViol {
				t.Fatalf("round %d: violation presence %v != oracle %v\ntrace:\n%s",
					round, gotViol, wantViol, tr)
			}
		}
	}
}

// hasAdjacent reports whether the event occurs at two ticks within the
// consequent width of each other (overlapping trigger instances).
func hasAdjacent(tr trace.Trace, ev string) bool {
	last := -10
	for i, s := range tr {
		if s.Event(ev) {
			if i-last <= 2 {
				return true
			}
			last = i
		}
	}
	return false
}

func TestEmptyWindowLoopRejected(t *testing.T) {
	c := &chart.Loop{
		ChartName: "empty",
		Body:      leaf("b", "x"),
		Min:       0,
		Max:       3,
	}
	if _, err := Synthesize(c, nil); err == nil {
		t.Error("loop admitting the empty window accepted")
	}
}

func TestAsyncRejectedBySynthesize(t *testing.T) {
	a := &chart.Async{
		ChartName: "multi",
		Children: []chart.Chart{
			leaf("l", "x"),
			&chart.SCESC{ChartName: "r", Clock: "clk2", Lines: []chart.GridLine{{Events: []chart.EventSpec{{Event: "y"}}}}},
		},
	}
	if _, err := Synthesize(a, nil); err == nil {
		t.Error("async chart accepted by single-clock synthesis")
	} else if !strings.Contains(err.Error(), "mclock") {
		t.Errorf("error %q does not direct to mclock", err)
	}
}

func TestNestedCompositionMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 15; round++ {
		c := &chart.Seq{
			ChartName: "nested",
			Children: []chart.Chart{
				exactLeaf(rng, "head", 1),
				&chart.Alt{
					ChartName: "mid",
					Children: []chart.Chart{
						exactLeaf(rng, "m1", 1+rng.Intn(2)),
						exactLeaf(rng, "m2", 1+rng.Intn(2)),
					},
				},
				exactLeaf(rng, "tail", 1),
			},
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTraceFor(t, c, int64(round+400), 35)
		got := acceptTicks(m, tr)
		want := oracleEnds(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: nested monitor %v != oracle %v\nchart %s", round, got, want, chart.Describe(c))
		}
	}
}
