package synth

import (
	"repro/internal/event"
	"repro/internal/trace"
)

// ExactMatcher is the ground-truth sliding-window matcher used to
// validate the synthesized automata: it tracks the exact set of active
// match lengths rather than the single longest abstracted one. It
// corresponds to running the nondeterministic matcher for the pattern
// with full history, so it accepts at tick t iff the window ending at t
// satisfies every pattern element concretely.
//
// DESIGN.md §3.1: for patterns with pairwise-orthogonal elements the
// paper's KMP-style automaton agrees with this matcher exactly; in
// general the automaton may over-approximate (it never misses a window).
type ExactMatcher struct {
	p       Pattern
	active  []bool // active[k]: some window ending here matched P[0..k-1]
	scratch []bool
	accepts int
}

// NewExactMatcher returns a matcher for p.
func NewExactMatcher(p Pattern) *ExactMatcher {
	n := len(p)
	return &ExactMatcher{
		p:       p,
		active:  make([]bool, n+1),
		scratch: make([]bool, n+1),
	}
}

// Step consumes one trace element and reports whether a full window match
// ends at this tick.
func (x *ExactMatcher) Step(s event.State) bool {
	n := len(x.p)
	for k := range x.scratch {
		x.scratch[k] = false
	}
	// A fresh match can always start here (length-0 prefix), so extend
	// from every active length plus 0.
	x.active[0] = true
	for k := 0; k < n; k++ {
		if !x.active[k] {
			continue
		}
		if x.p[k].Eval(stateCtx{s}) {
			x.scratch[k+1] = true
		}
	}
	x.active, x.scratch = x.scratch, x.active
	if x.active[n] {
		x.accepts++
		return true
	}
	return false
}

// Accepts counts full matches seen so far.
func (x *ExactMatcher) Accepts() int { return x.accepts }

// Reset clears all active partial matches.
func (x *ExactMatcher) Reset() {
	for k := range x.active {
		x.active[k] = false
	}
}

// MatchesIn returns the ticks (end positions) of all window matches of p
// in t.
func (x *ExactMatcher) MatchesIn(t trace.Trace) []int {
	x.Reset()
	var out []int
	for i, s := range t {
		if x.Step(s) {
			out = append(out, i)
		}
	}
	return out
}

// WindowMatches reports directly whether the window of t starting at
// `from` satisfies the pattern element-by-element.
func WindowMatches(p Pattern, t trace.Trace, from int) bool {
	if from < 0 || from+len(p) > len(t) {
		return false
	}
	for i, e := range p {
		if !e.Eval(stateCtx{t[from+i]}) {
			return false
		}
	}
	return true
}

type stateCtx struct{ s event.State }

func (c stateCtx) Event(name string) bool { return c.s.Event(name) }
func (c stateCtx) Prop(name string) bool  { return c.s.Prop(name) }
func (c stateCtx) ChkEvt(string) bool     { return false }
